// Regenerates paper §V-A: the multiaddress-based network-size estimator —
// grouping PIDs by connected IP address, with the paper's headline numbers
// and the hydra / rotating-PID case studies.
#include <iostream>

#include "analysis/size_estimation.hpp"
#include "bench_support.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace ipfs;
  bench::print_header("§V-A — multiaddress grouping (P4)",
                      "Daniel & Tschorsch 2022, §V-A");

  std::cerr << "[sec5a] running P4...\n";
  const auto result = bench::run_period(scenario::PeriodSpec::P4());
  const auto grouping = analysis::group_by_multiaddr(*result.go_ipfs);

  common::TextTable table("Grouping PIDs by connected IP (paper values in parentheses)");
  table.set_header({"Metric", "Measured", "Paper"});
  table.add_row({"known PIDs", common::with_thousands(grouping.total_pids), "65'853"});
  table.add_row({"PIDs with connections", common::with_thousands(grouping.connected_pids),
                 "62'204"});
  table.add_row({"distinct IP addresses", common::with_thousands(grouping.distinct_ips),
                 "56'536"});
  table.add_row({"groups", common::with_thousands(grouping.groups), "47'516"});
  table.add_row({"single-PID groups", common::with_thousands(grouping.singleton_groups),
                 "44'301"});
  table.add_row({"PIDs with unique IPs", common::with_thousands(grouping.unique_ip_pids),
                 "40'193"});
  table.add_row({"largest group (rotating PIDs)",
                 common::with_thousands(grouping.largest_group), "2'156"});
  table.print(std::cout);

  std::cout << "\nLargest group sizes: ";
  for (std::size_t i = 0; i < std::min<std::size_t>(grouping.group_sizes.size(), 10);
       ++i) {
    std::cout << common::with_thousands(grouping.group_sizes[i]) << " ";
  }
  std::cout << "\n(paper: one 2'156-PID group; hydra's 1'026 heads on 11 IPs —\n"
               " 9x100, one 98, one 28 — plus two heads sharing an IP with two\n"
               " go-ipfs nodes; NAT households and small clouds fill the rest)\n";

  std::cout << "\n§V-A flaw the paper demonstrates: groups ("
            << common::with_thousands(grouping.groups)
            << ") are still ~3x the simultaneous connections, and hydra-style\n"
               "deployments collapse many active peers into a single group.\n";
  return 0;
}
