// Core performance suite — the recorded perf trajectory of this repo.
//
// Unlike the fig*/table* drivers (which reproduce paper numbers), this
// binary times the hot paths the simulator lives on and emits the
// results as machine-readable JSON (`BENCH_core.json`):
//
//   lookup       RoutingTable::closest throughput, new bucket-walk
//                selection vs. the old sort-everything baseline
//   event_queue  sim::Simulation schedule + drain churn
//   conditions   net::ConditionModel sampling (zoned one-way latency and
//                the composite dial gate) — the per-dial/per-send hot path
//   churn_model  scenario::ChurnModel pure per-(node, session) draws
//                (session lengths and diurnally modulated gaps)
//   content_model scenario::ContentModel pure per-(node, slot/fetch) draws
//                (publish counts and popularity-skewed fetch keys + gaps)
//   campaign     sequential vs. ParallelTrialRunner wall-clock for a
//                multi-seed campaign sweep
//   sharded_campaign
//                unsharded vs. intra-trial-sharded CampaignEngine
//                wall-clock for one churned campaign (DESIGN.md §13);
//                asserts the two exports are byte-identical before timing
//                means anything
//   phase_program
//                scenario::PhaseProgram::rates_at lookups (the per-draw
//                modulation hot path of DESIGN.md §14) plus the wall-clock
//                overhead a modulating program adds to one campaign
//
// Usage:  perf_suite [--smoke] [--out FILE] [--check-baseline FILE]
//   --smoke           tiny sizes for CI (seconds, no timing assertions)
//   --out             output path, default ./BENCH_core.json
//   --check-baseline  compare event_queue.ns_per_event against a committed
//                     BENCH_core.json; exit 1 on a >25% regression (the
//                     scheduler guardrail — see DESIGN.md §12) or when the
//                     baseline predates the sharded_campaign or
//                     phase_program sections
// IPFS_SCALE / IPFS_SEED tune the campaign section (see bench/README.md).
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "dht/routing_table.hpp"
#include "net/conditions.hpp"
#include "runtime/parallel.hpp"
#include "runtime/sharded.hpp"
#include "runtime/worker_budget.hpp"
#include "scenario/churn.hpp"
#include "scenario/content.hpp"
#include "scenario/phases.hpp"
#include "sim/reference_scheduler.hpp"
#include "sim/simulation.hpp"

namespace {

using ipfs::common::Rng;
using ipfs::dht::closer_to;
using ipfs::dht::RoutingTable;
using ipfs::p2p::PeerId;

double elapsed_ms(const std::chrono::steady_clock::time_point start) {
  const auto delta = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(delta).count();
}

// ---- lookup: closest() selection vs. sort-everything baseline --------------

struct LookupNumbers {
  std::size_t table_size = 0;
  std::size_t queries = 0;
  double closest_ns = 0.0;   ///< per query, bucket-walk selection
  double baseline_ns = 0.0;  ///< per query, all_peers() + full sort
};

/// The pre-optimization implementation, kept callable as the baseline.
std::vector<PeerId> sort_everything_closest(const RoutingTable& table,
                                            const PeerId& target, std::size_t count) {
  std::vector<PeerId> peers = table.all_peers();
  std::sort(peers.begin(), peers.end(), [&](const PeerId& a, const PeerId& b) {
    return closer_to(target, a, b);
  });
  if (peers.size() > count) peers.resize(count);
  return peers;
}

LookupNumbers bench_lookup(bool smoke) {
  Rng rng(0x100c0);
  const PeerId self = PeerId::random(rng);
  RoutingTable table(self);
  // Random identities fill the shallow buckets; near-self identities fill
  // the deep ones — together a realistically shaped table.
  const int inserts = smoke ? 5'000 : 200'000;
  for (int i = 0; i < inserts; ++i) {
    const PeerId peer =
        rng.bernoulli(0.2)
            ? PeerId::with_prefix(self.prefix64(),
                                  1 + static_cast<unsigned>(rng.uniform_u64(40)), rng)
            : PeerId::random(rng);
    table.add(peer, 0);
  }

  LookupNumbers numbers;
  numbers.table_size = table.size();
  numbers.queries = smoke ? 200 : 20'000;
  std::vector<PeerId> targets;
  targets.reserve(numbers.queries);
  for (std::size_t i = 0; i < numbers.queries; ++i) {
    targets.push_back(PeerId::random(rng));
  }

  std::size_t checksum = 0;
  auto start = std::chrono::steady_clock::now();
  for (const PeerId& target : targets) {
    checksum += table.closest(target, RoutingTable::kBucketSize).size();
  }
  numbers.closest_ns = elapsed_ms(start) * 1e6 / static_cast<double>(numbers.queries);

  std::size_t baseline_checksum = 0;
  start = std::chrono::steady_clock::now();
  for (const PeerId& target : targets) {
    baseline_checksum +=
        sort_everything_closest(table, target, RoutingTable::kBucketSize).size();
  }
  numbers.baseline_ns = elapsed_ms(start) * 1e6 / static_cast<double>(numbers.queries);

  if (checksum != baseline_checksum) {
    std::cerr << "lookup checksum mismatch: " << checksum << " vs "
              << baseline_checksum << "\n";
    std::exit(1);
  }
  return numbers;
}

// ---- event queue: schedule + drain churn -----------------------------------

struct EventQueueNumbers {
  std::size_t events = 0;
  double ns_per_event = 0.0;       ///< bulk load: schedule all, then drain
  double hold_ns_per_event = 0.0;  ///< steady state: each event reschedules
  double heap_ns_per_event = 0.0;  ///< ReferenceHeapSimulation, bulk workload
  double speedup_vs_heap = 0.0;
};

/// Bulk shape: schedule `events` one-shot events at uniform times, then drain.
/// This is the historical `ns_per_event` metric (guardrail continuity).
template <typename Sim>
double bulk_workload_ns(std::size_t events) {
  Rng rng(0xe7e);
  Sim simulation;
  volatile std::uint64_t sink_value = 0;

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < events; ++i) {
    simulation.schedule_at(
        static_cast<ipfs::common::SimTime>(rng.uniform_u64(events)),
        [&sink_value] { sink_value = sink_value + 1; });
  }
  simulation.run();
  const double ns = elapsed_ms(start) * 1e6 / static_cast<double>(events);

  if (simulation.executed_events() != events) {
    std::cerr << "event count mismatch\n";
    std::exit(1);
  }
  return ns;
}

/// Hold shape (classic event-queue benchmark): a steady queue of `depth`
/// pending events where every execution schedules one successor — the shape
/// of a running campaign, where timers reschedule and arena slots recycle.
double hold_workload_ns(std::size_t events) {
  struct Ctx {
    ipfs::sim::Simulation simulation;
    Rng rng{0x401d};
    std::uint64_t executed = 0;
  } ctx;
  constexpr std::size_t kDepth = 10'000;
  // Single-pointer capture: stays within std::function's inline buffer, so
  // the measurement is the queue, not closure heap allocation.
  const auto hop = [&ctx](auto&& self) -> void {
    ++ctx.executed;
    ctx.simulation.schedule_after(
        static_cast<ipfs::common::SimDuration>(ctx.rng.uniform_u64(10'000) + 1),
        [&ctx, self] { self(self); });
  };
  for (std::size_t i = 0; i < kDepth; ++i) {
    ctx.simulation.schedule_at(
        static_cast<ipfs::common::SimTime>(ctx.rng.uniform_u64(10'000)),
        [&ctx, hop] { hop(hop); });
  }

  const auto start = std::chrono::steady_clock::now();
  std::size_t steps = 0;
  while (steps < events && ctx.simulation.step()) ++steps;
  const double ns = elapsed_ms(start) * 1e6 / static_cast<double>(steps);

  if (ctx.executed < events) {
    std::cerr << "hold workload drained early\n";
    std::exit(1);
  }
  return ns;
}

EventQueueNumbers bench_event_queue(bool smoke) {
  EventQueueNumbers numbers;
  numbers.events = smoke ? 50'000 : 2'000'000;
  numbers.ns_per_event = bulk_workload_ns<ipfs::sim::Simulation>(numbers.events);
  numbers.hold_ns_per_event = hold_workload_ns(numbers.events);
  // Same workload, same process, same host: the retained binary-heap engine
  // (the oracle of tests/sim/scheduler_oracle_test.cpp) as the baseline.
  numbers.heap_ns_per_event =
      bulk_workload_ns<ipfs::sim::ReferenceHeapSimulation>(numbers.events);
  numbers.speedup_vs_heap = numbers.heap_ns_per_event / numbers.ns_per_event;
  return numbers;
}

// ---- conditions: ConditionModel sampling hot path ---------------------------

struct ConditionNumbers {
  std::size_t samples = 0;
  double one_way_ns = 0.0;  ///< per sample, zoned latency (zone lookup + jitter)
  double gate_ns = 0.0;     ///< per sample, composite dial_allowed verdict
};

ConditionNumbers bench_conditions(bool smoke) {
  // A representative zoned spec: four zones, partial link matrix, NAT
  // classes, loss, and one recurring degrade window — every branch of the
  // per-dial sampling path is live.
  ipfs::net::ConditionSpec spec;
  spec.zones = {
      {.name = "eu", .weight = 0.35, .intra_min = 8, .intra_max = 28},
      {.name = "na", .weight = 0.30, .intra_min = 10, .intra_max = 32},
      {.name = "ap", .weight = 0.25, .intra_min = 12, .intra_max = 36},
      {.name = "sa", .weight = 0.10, .intra_min = 14, .intra_max = 40},
  };
  spec.links = {
      {.from = "eu", .to = "na", .min_one_way = 40, .max_one_way = 70},
      {.from = "eu", .to = "ap", .min_one_way = 120, .max_one_way = 180},
  };
  spec.loss.dial_failure = 0.05;
  spec.nat.classes = {
      {.name = "public", .weight = 0.6, .accepts_inbound = true},
      {.name = "nat", .weight = 0.4, .accepts_inbound = false},
  };
  spec.disturbances = {{.kind = ipfs::net::DisturbanceSpec::Kind::kDegrade,
                        .zone = "ap",
                        .from = 2 * ipfs::common::kHour,
                        .until = 8 * ipfs::common::kHour,
                        .period = 24 * ipfs::common::kHour,
                        .latency_factor = 2.0,
                        .extra_loss = 0.1}};
  const ipfs::net::ConditionModel model(spec, 0xbe7c);

  ConditionNumbers numbers;
  numbers.samples = smoke ? 20'000 : 2'000'000;
  Rng rng(0xc07d);
  std::vector<PeerId> peers;
  peers.reserve(256);
  for (int i = 0; i < 256; ++i) peers.push_back(PeerId::random(rng));

  Rng jitter(0x177e4);
  std::uint64_t latency_checksum = 0;
  auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < numbers.samples; ++i) {
    const PeerId& a = peers[i % peers.size()];
    const PeerId& b = peers[(i * 31 + 7) % peers.size()];
    const auto now = static_cast<ipfs::common::SimTime>(i % (24 * 3600'000));
    latency_checksum +=
        static_cast<std::uint64_t>(model.one_way(a, b, now, jitter));
  }
  numbers.one_way_ns =
      elapsed_ms(start) * 1e6 / static_cast<double>(numbers.samples);

  std::size_t allowed = 0;
  start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < numbers.samples; ++i) {
    const PeerId& a = peers[i % peers.size()];
    const PeerId& b = peers[(i * 17 + 3) % peers.size()];
    const auto now = static_cast<ipfs::common::SimTime>(i % (24 * 3600'000));
    allowed += model.dial_allowed(a, b, now) ? 1 : 0;
  }
  numbers.gate_ns = elapsed_ms(start) * 1e6 / static_cast<double>(numbers.samples);

  if (latency_checksum == 0 || allowed == 0 || allowed == numbers.samples) {
    std::cerr << "conditions checksum implausible: latency=" << latency_checksum
              << " allowed=" << allowed << "/" << numbers.samples << "\n";
    std::exit(1);
  }
  return numbers;
}

// ---- churn_model: ChurnModel per-(node, session) sampling -------------------

struct ChurnModelNumbers {
  std::size_t samples = 0;
  double session_ns = 0.0;  ///< per draw, Weibull session length
  double gap_ns = 0.0;      ///< per draw, lognormal gap with diurnal modulation
};

ChurnModelNumbers bench_churn_model(bool smoke) {
  // A representative churned-campaign spec: heavy-tailed Weibull sessions,
  // lognormal gaps, a category override and diurnal modulation — every
  // branch of the per-lifecycle-event sampling path is live.
  ipfs::scenario::ChurnSpec spec;
  ipfs::scenario::ChurnCategorySpec core;
  core.category = ipfs::scenario::Category::kCoreServer;
  core.session = ipfs::scenario::SessionDistribution::weibull(0.9, 86'400'000.0);
  core.gap = ipfs::scenario::SessionDistribution::exponential(3'600'000.0);
  spec.categories = {core};
  spec.diurnal = ipfs::scenario::DiurnalSpec{
      .amplitude = 0.7, .period = 24 * ipfs::common::kHour,
      .phase = 12 * ipfs::common::kHour};
  const ipfs::scenario::ChurnModel model(spec, 0xc402);

  ChurnModelNumbers numbers;
  numbers.samples = smoke ? 20'000 : 2'000'000;

  std::uint64_t session_checksum = 0;
  auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < numbers.samples; ++i) {
    const auto node = static_cast<std::uint32_t>(i & 0x3fff);
    const auto session = static_cast<std::uint32_t>(i >> 14);
    session_checksum += static_cast<std::uint64_t>(model.session_length(
        node, session,
        (i & 7) != 0 ? ipfs::scenario::Category::kNormalUser
                     : ipfs::scenario::Category::kCoreServer));
  }
  numbers.session_ns =
      elapsed_ms(start) * 1e6 / static_cast<double>(numbers.samples);

  std::uint64_t gap_checksum = 0;
  start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < numbers.samples; ++i) {
    const auto node = static_cast<std::uint32_t>(i & 0x3fff);
    const auto session = static_cast<std::uint32_t>(i >> 14);
    const auto at = static_cast<ipfs::common::SimTime>(i % (48 * 3600'000));
    gap_checksum += static_cast<std::uint64_t>(model.gap_length(
        node, session, at,
        (i & 7) != 0 ? ipfs::scenario::Category::kNormalUser
                     : ipfs::scenario::Category::kCoreServer));
  }
  numbers.gap_ns = elapsed_ms(start) * 1e6 / static_cast<double>(numbers.samples);

  if (session_checksum == 0 || gap_checksum == 0) {
    std::cerr << "churn_model checksum implausible\n";
    std::exit(1);
  }
  return numbers;
}

// ---- content_model: ContentModel per-(node, slot/fetch) sampling ------------

struct ContentModelNumbers {
  std::size_t samples = 0;
  double publish_ns = 0.0;  ///< per draw, publish count + key + delay chain
  double fetch_ns = 0.0;    ///< per draw, fetch gap + skewed key + serve gate
};

ContentModelNumbers bench_content_model(bool smoke) {
  // A representative content-campaign spec: category overrides on both
  // rates so the per-draw override lookup is live, default keyspace.
  ipfs::scenario::ContentSpec spec;
  ipfs::scenario::ContentCategorySpec core;
  core.category = ipfs::scenario::Category::kCoreServer;
  core.publishes_per_peer = 8.0;
  core.fetches_per_hour = 0.25;
  spec.categories = {core};
  const ipfs::scenario::ContentModel model(spec, 0xc047);

  ContentModelNumbers numbers;
  numbers.samples = smoke ? 20'000 : 2'000'000;
  constexpr std::uint32_t kKeyspace = 512;

  std::uint64_t publish_checksum = 0;
  auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < numbers.samples; ++i) {
    const auto node = static_cast<std::uint32_t>(i & 0x3fff);
    const auto slot = static_cast<std::uint32_t>(i >> 14);
    const auto category = (i & 7) != 0 ? ipfs::scenario::Category::kNormalUser
                                       : ipfs::scenario::Category::kCoreServer;
    publish_checksum += model.publish_count(node, category);
    publish_checksum += model.key_for(node, slot, kKeyspace);
    publish_checksum +=
        static_cast<std::uint64_t>(model.initial_publish_delay(node, slot));
  }
  numbers.publish_ns =
      elapsed_ms(start) * 1e6 / static_cast<double>(numbers.samples);

  std::uint64_t fetch_checksum = 0;
  start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < numbers.samples; ++i) {
    const auto node = static_cast<std::uint32_t>(i & 0x3fff);
    const auto fetch = static_cast<std::uint32_t>(i >> 14);
    const auto category = (i & 7) != 0 ? ipfs::scenario::Category::kNormalUser
                                       : ipfs::scenario::Category::kCoreServer;
    fetch_checksum +=
        static_cast<std::uint64_t>(model.fetch_gap(node, fetch, category));
    fetch_checksum += model.fetch_key(node, fetch, kKeyspace);
    fetch_checksum += model.fetch_served(node, fetch) ? 1 : 0;
  }
  numbers.fetch_ns = elapsed_ms(start) * 1e6 / static_cast<double>(numbers.samples);

  if (publish_checksum == 0 || fetch_checksum == 0) {
    std::cerr << "content_model checksum implausible\n";
    std::exit(1);
  }
  return numbers;
}

// ---- campaign: sequential loop vs. ParallelTrialRunner ----------------------

struct CampaignNumbers {
  std::size_t trials = 0;
  double scale = 0.0;
  unsigned workers = 0;
  double sequential_ms = 0.0;
  double parallel_ms = 0.0;
};

CampaignNumbers bench_campaign(bool smoke) {
  namespace scenario = ipfs::scenario;
  namespace runtime = ipfs::runtime;

  scenario::CampaignConfig base;
  base.period = scenario::PeriodSpec::P4();
  base.period.duration = (smoke ? 1 : 6) * ipfs::common::kHour;
  // Default well below full December-2021 scale so the suite finishes in
  // seconds; IPFS_SCALE overrides.
  const double scale = std::getenv("IPFS_SCALE") != nullptr
                           ? ipfs::bench::env_scale()
                           : (smoke ? 0.005 : 0.05);
  base.population = scenario::PopulationSpec::test_scale(scale);

  const std::size_t trial_count = smoke ? 2 : 4;
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < trial_count; ++i) {
    seeds.push_back(ipfs::bench::env_seed() + i);
  }
  const auto trials = runtime::ParallelTrialRunner::seed_sweep(base, seeds);

  CampaignNumbers numbers;
  numbers.trials = trial_count;
  numbers.scale = scale;

  ipfs::measure::MeasurementSink devnull;  // hooks are no-ops by default
  auto start = std::chrono::steady_clock::now();
  for (const runtime::TrialSpec& trial : trials) {
    ipfs::bench::make_engine(trial.config).run(devnull);
  }
  numbers.sequential_ms = elapsed_ms(start);

  runtime::ParallelTrialRunner runner;
  numbers.workers = runner.resolve_workers(trial_count);
  start = std::chrono::steady_clock::now();
  const auto outcome = runner.run(trials, devnull);
  numbers.parallel_ms = elapsed_ms(start);
  if (!outcome.has_value()) {
    std::cerr << "parallel sweep failed: " << outcome.error() << "\n";
    std::exit(1);
  }
  return numbers;
}

// ---- sharded_campaign: unsharded vs. intra-trial-sharded engine -------------

struct ShardedCampaignNumbers {
  double scale = 0.0;
  unsigned shards = 0;
  unsigned workers = 0;
  double sequential_ms = 0.0;
  double sharded_ms = 0.0;
};

ShardedCampaignNumbers bench_sharded_campaign(bool smoke) {
  namespace scenario = ipfs::scenario;
  namespace runtime = ipfs::runtime;

  // One churned campaign (the workload the slab precompute exists for),
  // run twice: plain sequential engine, then with a ShardPlan injected.
  // Byte-identity of the two exports is asserted before the timings are
  // reported — a fast sharded engine that moved a byte is a bug, not a win.
  scenario::CampaignConfig config;
  config.period = scenario::PeriodSpec::P4();
  config.period.duration = (smoke ? 1 : 6) * ipfs::common::kHour;
  const double scale = std::getenv("IPFS_SCALE") != nullptr
                           ? ipfs::bench::env_scale()
                           : (smoke ? 0.005 : 0.05);
  config.population = scenario::PopulationSpec::test_scale(scale);
  config.seed = ipfs::bench::env_seed();
  config.churn.emplace();  // default ChurnSpec: the lifecycle engine is live

  ShardedCampaignNumbers numbers;
  numbers.scale = scale;
  numbers.shards = 4;
  numbers.workers = runtime::WorkerBudget::hardware();

  std::ostringstream sequential_out;
  auto start = std::chrono::steady_clock::now();
  {
    ipfs::measure::JsonExportSink sink(sequential_out);
    ipfs::bench::make_engine(config).run(sink);
  }
  numbers.sequential_ms = elapsed_ms(start);

  std::ostringstream sharded_out;
  start = std::chrono::steady_clock::now();
  {
    ipfs::measure::JsonExportSink sink(sharded_out);
    runtime::ShardedCampaignRunner runner(
        {.shards = numbers.shards, .workers = numbers.workers});
    const auto outcome = runner.run(config, sink);
    if (!outcome.has_value()) {
      std::cerr << "sharded campaign failed: " << outcome.error() << "\n";
      std::exit(1);
    }
  }
  numbers.sharded_ms = elapsed_ms(start);

  if (sequential_out.str() != sharded_out.str()) {
    std::cerr << "sharded_campaign: export bytes diverged from the "
                 "sequential oracle — determinism regression\n";
    std::exit(1);
  }
  return numbers;
}

// ---- phase_program: rates_at lookups + campaign modulation overhead ---------

struct PhaseProgramNumbers {
  std::size_t samples = 0;
  double rates_ns = 0.0;   ///< per rates_at lookup, 4-phase mixed program
  double plain_ms = 0.0;   ///< churn+content campaign, no phases
  double phased_ms = 0.0;  ///< same campaign with a modulating program
};

PhaseProgramNumbers bench_phase_program(bool smoke) {
  namespace scenario = ipfs::scenario;

  // A representative program exercising every mode branch of the lookup:
  // hold, ramp interpolation, burst cycle division, and the flash-crowd
  // spike fields.
  const ipfs::common::SimDuration hold = 90 * ipfs::common::kMinute;
  scenario::PhaseSpec calm;
  calm.hold = hold;
  scenario::PhaseSpec climb;
  climb.mode = scenario::PhaseMode::kRamp;
  climb.hold = hold;
  climb.churn_rate = 2.5;
  climb.fetch_rate = 3.0;
  scenario::PhaseSpec storm;
  storm.mode = scenario::PhaseMode::kBurst;
  storm.hold = hold;
  storm.fetch_rate = 4.0;
  storm.switch_interval = 20 * ipfs::common::kMinute;
  scenario::PhaseSpec flash;
  flash.mode = scenario::PhaseMode::kFlashCrowd;
  flash.hold = hold;
  flash.spike = 6.0;
  flash.hot_fraction = 0.8;
  scenario::PhaseProgramSpec spec;
  spec.program = {calm, climb, storm, flash};
  const scenario::PhaseProgram program(spec);

  PhaseProgramNumbers numbers;
  numbers.samples = smoke ? 20'000 : 2'000'000;

  // The engine queries at event times, which stride forward but revisit
  // nearby values constantly; i * 31 over the program span approximates
  // that without a predictable per-phase sweep.
  const auto span = static_cast<std::uint64_t>(program.total_duration());
  double checksum = 0.0;
  auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < numbers.samples; ++i) {
    const auto at = static_cast<ipfs::common::SimTime>((i * 31) % span);
    checksum += program.rates_at(at).fetch;
  }
  numbers.rates_ns = elapsed_ms(start) * 1e6 / static_cast<double>(numbers.samples);
  if (checksum <= 0.0) {
    std::cerr << "phase_program checksum implausible\n";
    std::exit(1);
  }

  // Modulation overhead: the same churn+content campaign with and without
  // a program whose every rate channel is live.
  scenario::CampaignConfig config;
  config.period = scenario::PeriodSpec::P4();
  config.period.duration = (smoke ? 1 : 6) * ipfs::common::kHour;
  const double scale = std::getenv("IPFS_SCALE") != nullptr
                           ? ipfs::bench::env_scale()
                           : (smoke ? 0.005 : 0.05);
  config.population = scenario::PopulationSpec::test_scale(scale);
  config.seed = ipfs::bench::env_seed();
  config.churn.emplace();
  config.content.emplace();

  ipfs::measure::MeasurementSink devnull;
  start = std::chrono::steady_clock::now();
  ipfs::bench::make_engine(config).run(devnull);
  numbers.plain_ms = elapsed_ms(start);

  // Rescale the program to the campaign horizon (validate requires the
  // total hold to fit the period).
  const ipfs::common::SimDuration quarter = config.period.duration / 4;
  for (scenario::PhaseSpec& phase : spec.program) phase.hold = quarter;
  spec.program[2].switch_interval = quarter / 4;
  config.phases = spec;
  start = std::chrono::steady_clock::now();
  ipfs::bench::make_engine(config).run(devnull);
  numbers.phased_ms = elapsed_ms(start);
  return numbers;
}

// ---- baseline guardrail -----------------------------------------------------

/// Compares a fresh event_queue measurement against the committed
/// BENCH_core.json.  Returns false (after printing why) when the scheduler
/// regressed more than 25% — the CI guardrail for the ladder-queue engine.
bool check_event_queue_baseline(const std::string& baseline_path,
                                const EventQueueNumbers& fresh) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::cerr << "check-baseline: cannot open " << baseline_path << "\n";
    return false;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto parsed = ipfs::common::JsonValue::parse(text);
  if (!parsed.has_value()) {
    std::cerr << "check-baseline: " << baseline_path << ": " << parsed.error()
              << "\n";
    return false;
  }
  const ipfs::common::JsonValue* section = parsed->find("event_queue");
  const ipfs::common::JsonValue* ns =
      section != nullptr ? section->find("ns_per_event") : nullptr;
  if (ns == nullptr || !ns->is_number()) {
    std::cerr << "check-baseline: " << baseline_path
              << " has no event_queue.ns_per_event\n";
    return false;
  }
  // Field-coverage guard: a committed baseline must carry every section
  // the suite emits, or a regeneration quietly dropped one.
  const ipfs::common::JsonValue* sharded = parsed->find("sharded_campaign");
  if (sharded == nullptr || sharded->find("sharded_ms") == nullptr ||
      sharded->find("sequential_ms") == nullptr ||
      sharded->find("shards") == nullptr) {
    std::cerr << "check-baseline: " << baseline_path
              << " predates the sharded_campaign section — regenerate "
              << "BENCH_core.json (bench/README.md)\n";
    return false;
  }
  const ipfs::common::JsonValue* phases = parsed->find("phase_program");
  if (phases == nullptr || phases->find("rates_ns_per_lookup") == nullptr ||
      phases->find("plain_campaign_ms") == nullptr ||
      phases->find("phased_campaign_ms") == nullptr) {
    std::cerr << "check-baseline: " << baseline_path
              << " predates the phase_program section — regenerate "
              << "BENCH_core.json (bench/README.md)\n";
    return false;
  }
  const double committed = ns->as_double();
  constexpr double kTolerance = 1.25;
  std::cout << "\ncheck-baseline: event_queue " << fresh.ns_per_event
            << " ns/event vs committed " << committed << " (limit "
            << committed * kTolerance << ")\n";
  if (fresh.ns_per_event > committed * kTolerance) {
    std::cerr << "check-baseline: FAIL — event_queue regressed more than 25% "
              << "(got " << fresh.ns_per_event << " ns/event, committed "
              << committed << "); if the change is intentional, regenerate "
              << "BENCH_core.json (bench/README.md)\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_core.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::cerr << "usage: perf_suite [--smoke] [--out FILE] "
                   "[--check-baseline FILE]\n";
      return 2;
    }
  }

  ipfs::bench::print_header("Core performance suite",
                            "perf trajectory (BENCH_core.json), not a paper figure");

  std::cout << "[1/8] lookup: RoutingTable::closest ...\n";
  const LookupNumbers lookup = bench_lookup(smoke);
  std::cout << "      table=" << lookup.table_size << " peers, "
            << lookup.closest_ns << " ns/query (sort-everything baseline: "
            << lookup.baseline_ns << " ns/query, "
            << lookup.baseline_ns / lookup.closest_ns << "x)\n";

  std::cout << "[2/8] event queue: schedule + drain ...\n";
  const EventQueueNumbers events = bench_event_queue(smoke);
  std::cout << "      " << events.events << " events, " << events.ns_per_event
            << " ns/event bulk (" << 1e9 / events.ns_per_event
            << " events/s), " << events.hold_ns_per_event
            << " ns/event hold; binary-heap baseline "
            << events.heap_ns_per_event << " ns/event ("
            << events.speedup_vs_heap << "x)\n";

  std::cout << "[3/8] conditions: ConditionModel sampling ...\n";
  const ConditionNumbers conditions = bench_conditions(smoke);
  std::cout << "      " << conditions.samples << " samples, "
            << conditions.one_way_ns << " ns/one_way, " << conditions.gate_ns
            << " ns/dial_allowed\n";

  std::cout << "[4/8] churn_model: ChurnModel sampling ...\n";
  const ChurnModelNumbers churn = bench_churn_model(smoke);
  std::cout << "      " << churn.samples << " samples, " << churn.session_ns
            << " ns/session, " << churn.gap_ns << " ns/gap\n";

  std::cout << "[5/8] content_model: ContentModel sampling ...\n";
  const ContentModelNumbers content = bench_content_model(smoke);
  std::cout << "      " << content.samples << " samples, " << content.publish_ns
            << " ns/publish-chain, " << content.fetch_ns << " ns/fetch-chain\n";

  std::cout << "[6/8] campaign: sequential vs parallel sweep ...\n";
  const CampaignNumbers campaign = bench_campaign(smoke);
  std::cout << "      " << campaign.trials << " trials @ scale "
            << campaign.scale << ": sequential " << campaign.sequential_ms
            << " ms, parallel " << campaign.parallel_ms << " ms ("
            << campaign.workers << " workers, "
            << campaign.sequential_ms / campaign.parallel_ms << "x)\n";

  std::cout << "[7/8] sharded_campaign: unsharded vs sharded engine ...\n";
  const ShardedCampaignNumbers sharded = bench_sharded_campaign(smoke);
  std::cout << "      scale " << sharded.scale << ": sequential "
            << sharded.sequential_ms << " ms, sharded " << sharded.sharded_ms
            << " ms (" << sharded.shards << " shards, " << sharded.workers
            << " workers, exports byte-identical)\n";

  std::cout << "[8/8] phase_program: rates_at lookups + campaign overhead ...\n";
  const PhaseProgramNumbers phases = bench_phase_program(smoke);
  std::cout << "      " << phases.samples << " lookups, " << phases.rates_ns
            << " ns/rates_at; campaign plain " << phases.plain_ms
            << " ms vs phased " << phases.phased_ms << " ms ("
            << phases.phased_ms / phases.plain_ms << "x)\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  ipfs::common::JsonWriter json(out, /*pretty=*/true);
  json.begin_object();
  json.field("suite", "core");
  json.field("smoke", smoke);
  json.key("lookup");
  json.begin_object();
  json.field("table_size", static_cast<std::uint64_t>(lookup.table_size));
  json.field("queries", static_cast<std::uint64_t>(lookup.queries));
  json.field("closest_ns_per_query", lookup.closest_ns);
  json.field("sort_baseline_ns_per_query", lookup.baseline_ns);
  json.field("speedup", lookup.baseline_ns / lookup.closest_ns);
  json.end_object();
  json.key("event_queue");
  json.begin_object();
  json.field("events", static_cast<std::uint64_t>(events.events));
  json.field("ns_per_event", events.ns_per_event);
  json.field("events_per_sec", 1e9 / events.ns_per_event);
  json.field("hold_ns_per_event", events.hold_ns_per_event);
  json.field("heap_baseline_ns_per_event", events.heap_ns_per_event);
  json.field("speedup_vs_heap", events.speedup_vs_heap);
  json.end_object();
  json.key("conditions");
  json.begin_object();
  json.field("samples", static_cast<std::uint64_t>(conditions.samples));
  json.field("one_way_ns_per_sample", conditions.one_way_ns);
  json.field("dial_gate_ns_per_sample", conditions.gate_ns);
  json.end_object();
  json.key("churn_model");
  json.begin_object();
  json.field("samples", static_cast<std::uint64_t>(churn.samples));
  json.field("session_ns_per_draw", churn.session_ns);
  json.field("gap_ns_per_draw", churn.gap_ns);
  json.end_object();
  json.key("content_model");
  json.begin_object();
  json.field("samples", static_cast<std::uint64_t>(content.samples));
  json.field("publish_chain_ns_per_draw", content.publish_ns);
  json.field("fetch_chain_ns_per_draw", content.fetch_ns);
  json.end_object();
  json.key("campaign");
  json.begin_object();
  json.field("trials", static_cast<std::uint64_t>(campaign.trials));
  json.field("scale", campaign.scale);
  json.field("workers", static_cast<std::uint64_t>(campaign.workers));
  json.field("hardware_concurrency",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.field("sequential_ms", campaign.sequential_ms);
  json.field("parallel_ms", campaign.parallel_ms);
  // On a single-core host a "speedup" number is noise about stream
  // buffering, not parallelism — keep the explanation, drop the figure.
  if (std::thread::hardware_concurrency() > 1) {
    json.field("speedup", campaign.sequential_ms / campaign.parallel_ms);
  } else {
    json.field("note",
               "single-core host (see hardware_concurrency): the parallel "
               "path degenerates to the sequential loop plus per-trial "
               "stream buffering, so a speedup figure would only measure "
               "buffering overhead and is omitted");
  }
  json.end_object();
  json.key("sharded_campaign");
  json.begin_object();
  json.field("scale", sharded.scale);
  json.field("shards", static_cast<std::uint64_t>(sharded.shards));
  json.field("workers", static_cast<std::uint64_t>(sharded.workers));
  json.field("hardware_concurrency",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.field("sequential_ms", sharded.sequential_ms);
  json.field("sharded_ms", sharded.sharded_ms);
  json.field("bytes_identical", true);  // asserted above, or we exited
  // Same single-core policy as the campaign section: without a second
  // core the fan-outs serialize onto the caller and a speedup figure
  // would only measure pool overhead.
  if (std::thread::hardware_concurrency() > 1) {
    json.field("speedup", sharded.sequential_ms / sharded.sharded_ms);
  } else {
    json.field("note",
               "single-core host (see hardware_concurrency): shard "
               "fan-outs serialize onto the calling thread, so a speedup "
               "figure would only measure fork-join overhead and is "
               "omitted");
  }
  json.end_object();
  json.key("phase_program");
  json.begin_object();
  json.field("samples", static_cast<std::uint64_t>(phases.samples));
  json.field("rates_ns_per_lookup", phases.rates_ns);
  json.field("plain_campaign_ms", phases.plain_ms);
  json.field("phased_campaign_ms", phases.phased_ms);
  json.field("overhead", phases.phased_ms / phases.plain_ms);
  json.end_object();
  json.end_object();
  out << "\n";

  std::cout << "\nwrote " << out_path << "\n";

  if (!baseline_path.empty() && !check_event_queue_baseline(baseline_path, events)) {
    return 1;
  }
  return 0;
}
