// Regenerates paper Table III: go-ipfs agent-version changes over the
// measurement (upgrades / downgrades / commit-changes; main/dirty
// transitions), plus the §IV-B role-flapping counts.
#include <iostream>

#include "analysis/metadata.hpp"
#include "bench_support.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "p2p/protocols.hpp"

int main() {
  using namespace ipfs;
  bench::print_header("TABLE III — go-ipfs version changes",
                      "Daniel & Tschorsch 2022, Table III + §IV-B");

  std::cerr << "[table3] running P4...\n";
  const auto result = bench::run_period(scenario::PeriodSpec::P4());
  const auto& dataset = *result.go_ipfs;
  const auto counts = analysis::count_version_changes(dataset);

  common::TextTable table("Version changes (paper values in parentheses)");
  table.set_header({"Version", "Count", "Type", "Count"});
  table.add_row({"Upgrade (218)", common::with_thousands(counts.upgrades),
                 "main-main (291)", common::with_thousands(counts.main_to_main)});
  table.add_row({"Downgrade (107)", common::with_thousands(counts.downgrades),
                 "dirty-main (9)", common::with_thousands(counts.dirty_to_main)});
  table.add_row({"Change (205)", common::with_thousands(counts.changes),
                 "main-dirty (5)", common::with_thousands(counts.main_to_dirty)});
  table.add_row({"", "", "dirty-dirty (225)",
                 common::with_thousands(counts.dirty_to_dirty)});
  table.add_rule();
  table.add_row({"Total (530)", common::with_thousands(counts.total()), "", ""});
  table.print(std::cout);

  std::cout << "\nNon-go-ipfs -> go-ipfs agent switches: "
            << common::with_thousands(counts.into_go_ipfs) << "  (paper: once)\n";

  const auto kad = analysis::protocol_flapping(dataset, p2p::protocols::kKad);
  const auto autonat = analysis::protocol_flapping(dataset, p2p::protocols::kAutonat);
  std::cout << "\nRole flapping (§IV-B):\n"
            << "  /ipfs/kad/1.0.0:        " << common::with_thousands(kad.peers)
            << " peers, " << common::with_thousands(kad.events)
            << " changes  (2'481 / 68'396)\n"
            << "  /libp2p/autonat/1.0.0:  " << common::with_thousands(autonat.peers)
            << " peers, " << common::with_thousands(autonat.events)
            << " changes  (3'603 / 86'651)\n";
  return 0;
}
