// Regenerates paper Table IV: connection-time classification of the P4
// peers into heavy / normal / light / one-time, with DHT-server splits,
// and the §V-B core-network bound.
#include <iostream>

#include "analysis/classification.hpp"
#include "bench_support.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace ipfs;
  bench::print_header("TABLE IV — peer classification (P4)",
                      "Daniel & Tschorsch 2022, Table IV + §V-B");

  std::cerr << "[table4] running P4...\n";
  const auto result = bench::run_period(scenario::PeriodSpec::P4());
  const auto counts = analysis::classify_peers(*result.go_ipfs);

  common::TextTable table("Classification (paper values in parentheses)");
  table.set_header({"Class", "Time", "# Conn.", "Peers", "DHT-Server"});
  const char* criteria_time[] = {"> 24 h", "> 2 h", "<= 2 h", "< 2 h"};
  const char* criteria_conn[] = {"-", "-", ">= 3", "< 3"};
  const char* paper_peers[] = {"(10'540)", "(15'895)", "(16'880)", "(18'889)"};
  const char* paper_servers[] = {"(1'449)", "(1'420)", "(9'755)", "(6'108)"};
  for (std::size_t c = 0; c < 4; ++c) {
    table.add_row({std::string(analysis::to_string(static_cast<analysis::PeerClass>(c))),
                   criteria_time[c], criteria_conn[c],
                   common::with_thousands(counts.peers[c]) + " " + paper_peers[c],
                   common::with_thousands(counts.dht_servers[c]) + " " +
                       paper_servers[c]});
  }
  table.add_rule();
  table.add_row({"Total", "", "", common::with_thousands(counts.total_peers()) +
                                      " (62'204)",
                 ""});
  table.print(std::cout);

  const auto heavy = static_cast<std::size_t>(analysis::PeerClass::kHeavy);
  std::cout << "\n§V-B conclusions:\n  heavy DHT servers: "
            << common::with_thousands(counts.dht_servers[heavy])
            << "  (paper ~1.5k)\n  heavy DHT clients (core user base): "
            << common::with_thousands(counts.peers[heavy] - counts.dht_servers[heavy])
            << "  (paper ~9k)\n  core network lower bound: "
            << common::with_thousands(counts.peers[heavy]) << "  (paper >= 10k)\n";
  return 0;
}
