// Regenerates paper Fig. 4: occurrences of announced protocols (protocols
// supported by few peers fold into "other"), plus §IV-B's protocol-count
// observations and anomaly fingerprints.
#include <iostream>

#include "analysis/metadata.hpp"
#include "bench_support.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "p2p/protocols.hpp"

int main() {
  using namespace ipfs;
  bench::print_header("FIG. 4 — protocol occurrences",
                      "Daniel & Tschorsch 2022, Fig. 4 + §IV-B");

  std::cerr << "[fig4] running P4...\n";
  const auto result = bench::run_period(scenario::PeriodSpec::P4());
  const auto& dataset = *result.go_ipfs;

  const auto histogram = analysis::protocol_histogram(dataset);
  const auto threshold =
      static_cast<std::uint64_t>(300.0 * ipfs::bench::env_scale());
  const auto rows = histogram.top_with_other(threshold);
  std::uint64_t max_count = 0;
  for (const auto& [label, count] : rows) max_count = std::max(max_count, count);

  common::TextTable table("Protocol occurrences (log-scale bars)");
  table.set_header({"Protocol", "Count", "log bar"});
  for (const auto& [label, count] : rows) {
    table.add_row({label, common::with_thousands(count),
                   common::log_bar(count, max_count, 32)});
  }
  table.print(std::cout);

  const auto summary = analysis::summarize_metadata(dataset);
  const auto anomalies = analysis::find_anomalies(dataset);
  std::cout << "\nHeadline counts (paper in parentheses):\n"
            << "  distinct protocols: "
            << common::with_thousands(summary.distinct_protocols) << "  (101)\n"
            << "  /ipfs/bitswap supporters: "
            << common::with_thousands(summary.bitswap_supporters) << "  (44'463)\n"
            << "  /ipfs/kad supporters (DHT servers): "
            << common::with_thousands(summary.kad_supporters) << "  (18'845)\n"
            << "\nAnomalies (§IV-B):\n"
            << "  go-ipfs agents without bitswap: "
            << common::with_thousands(anomalies.go_ipfs_without_bitswap)
            << "  (7'498 v0.8.0 clients)\n"
            << "  ... of which announce /sbptp/1.0.0 (storm): "
            << common::with_thousands(anomalies.go_ipfs_with_sbptp) << "\n"
            << "  overt storm agents: " << common::with_thousands(anomalies.storm_agents)
            << "\n  go-ethereum agents: "
            << common::with_thousands(anomalies.ethereum_agents) << "  (1)\n";
  return 0;
}
