// Regenerates paper Fig. 7: CDFs of (left) the maximum connection duration
// per PID and (right) the number of connections per PID, each for all PIDs
// and split into DHT servers / DHT clients.
#include <iostream>

#include "analysis/classification.hpp"
#include "bench_support.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace {

using namespace ipfs;

void print_cdf(const std::string& title, const common::Cdf& all,
               const common::Cdf& servers, const common::Cdf& clients,
               const std::vector<double>& anchors, const char* unit) {
  common::TextTable table(title);
  table.set_header({std::string("x (") + unit + ")", "all", "DHT-Server", "DHT-Client"});
  for (const double anchor : anchors) {
    table.add_row({common::format_fixed(anchor, 0),
                   common::format_percent(all.fraction_at_most(anchor)),
                   common::format_percent(servers.fraction_at_most(anchor)),
                   common::format_percent(clients.fraction_at_most(anchor))});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace ipfs;
  bench::print_header("FIG. 7 — connection-duration and connection-count CDFs (P4)",
                      "Daniel & Tschorsch 2022, Fig. 7 + §V-B");

  std::cerr << "[fig7] running P4...\n";
  const auto result = bench::run_period(scenario::PeriodSpec::P4());
  const auto& dataset = *result.go_ipfs;

  const auto all = analysis::connection_cdfs(dataset, -1);
  const auto servers = analysis::connection_cdfs(dataset, 1);
  const auto clients = analysis::connection_cdfs(dataset, 0);

  print_cdf("CDF of max connection duration per PID (30 s groups)",
            all.max_duration_s, servers.max_duration_s, clients.max_duration_s,
            {30, 60, 300, 900, 3600, 7200, 43200, 86400, 259200}, "s");
  print_cdf("CDF of number of connections per PID", all.connection_count,
            servers.connection_count, clients.connection_count,
            {1, 2, 3, 5, 10, 15, 50, 200}, "conns");

  std::cout << "\nPaper anchors: ~53 % below 1 h max duration; ~16 % above 24 h;\n"
            << "~50 % with one connection; ~10 % with more than 15.\n"
            << "Measured: "
            << common::format_percent(all.max_duration_s.fraction_at_most(3600.0))
            << " below 1 h; "
            << common::format_percent(
                   1.0 - all.max_duration_s.fraction_at_most(86400.0))
            << " above 24 h; "
            << common::format_percent(all.connection_count.fraction_at_most(1.0))
            << " with one connection; "
            << common::format_percent(
                   1.0 - all.connection_count.fraction_at_most(15.0))
            << " with more than 15.\n";
  return 0;
}
