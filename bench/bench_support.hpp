// Shared support for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper.  By
// default campaigns run at full December-2021 scale (the numbers printed
// next to each paper value); set IPFS_SCALE=0.1 for a quick pass and
// IPFS_SEED to vary the synthetic network.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "scenario/campaign.hpp"

namespace ipfs::bench {

inline double env_scale() {
  const char* text = std::getenv("IPFS_SCALE");
  if (text == nullptr) return 1.0;
  const double value = std::atof(text);
  return value > 0.0 ? value : 1.0;
}

inline std::uint64_t env_seed() {
  const char* text = std::getenv("IPFS_SEED");
  if (text == nullptr) return 20211203;
  return static_cast<std::uint64_t>(std::atoll(text));
}

inline scenario::CampaignConfig make_config(scenario::PeriodSpec period) {
  scenario::CampaignConfig config;
  config.period = std::move(period);
  config.population = scenario::PopulationSpec::test_scale(env_scale());
  config.seed = env_seed();
  return config;
}

/// Obtain an engine through the validating factory, exiting loudly on a
/// config error (benches are scripts; there is nothing to recover).
inline scenario::CampaignEngine make_engine(scenario::CampaignConfig config) {
  auto engine = scenario::CampaignEngine::create(std::move(config));
  if (!engine) {
    std::cerr << "invalid campaign config: " << engine.error() << "\n";
    std::exit(2);
  }
  return std::move(*engine);
}

inline scenario::CampaignResult run_period(scenario::PeriodSpec period) {
  return make_engine(make_config(std::move(period))).run();
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n" << std::string(78, '#') << "\n"
            << "# " << title << "\n"
            << "# Reproduces: " << paper_ref << "\n"
            << "# scale=" << env_scale() << " seed=" << env_seed() << "\n"
            << std::string(78, '#') << "\n";
}

}  // namespace ipfs::bench
