// Ablation: connection-manager watermark sweep.
//
// The paper's conclusion recommends revisiting the default LowWater /
// HighWater values for DHT servers.  This bench sweeps the vantage's
// watermarks over a one-day campaign and reports how churn metrics react —
// the experiment behind that recommendation.
#include <iostream>

#include "analysis/connection_stats.hpp"
#include "bench_support.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace ipfs;
  bench::print_header("ABLATION — watermark sweep (1-day campaigns)",
                      "Daniel & Tschorsch 2022, §VI recommendation");

  struct Setting {
    int low;
    int high;
  };
  const Setting settings[] = {{300, 450}, {600, 900}, {2000, 4000},
                              {9000, 10000}, {18000, 20000}};

  common::TextTable table("Churn vs watermarks (go-ipfs vantage)");
  table.set_header({"Low/High", "Connections", "All avg", "All median", "Local trims",
                    "Peers seen"});
  for (const Setting& setting : settings) {
    std::cerr << "[ablation-trim] low=" << setting.low << " high=" << setting.high
              << "...\n";
    auto period = scenario::PeriodSpec::P4();
    period.name = "sweep";
    period.duration = common::kDay;
    period.go_low_water = setting.low;
    period.go_high_water = setting.high;
    auto config = bench::make_config(period);
    config.enable_crawler = false;
    const auto result = bench::make_engine(std::move(config)).run();
    const auto stats = analysis::compute_connection_stats(*result.go_ipfs);
    const auto reasons = analysis::compute_close_reasons(*result.go_ipfs);
    table.add_row({std::to_string(setting.low) + "/" + std::to_string(setting.high),
                   common::with_thousands(stats.all.count),
                   common::format_fixed(stats.all.average_s, 1) + " s",
                   common::format_fixed(stats.all.median_s, 1) + " s",
                   common::with_thousands(reasons.local_trim),
                   common::with_thousands(stats.peer.count)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: raising the watermarks monotonically reduces\n"
               "local trims and raises average connection duration — the paper's\n"
               "case for higher DHT-server defaults.  Note how the peer horizon\n"
               "(PIDs seen) barely changes: trimming costs stability, not reach.\n";
  return 0;
}
