// Regenerates §V's headline conclusion: the combined network-size report —
// ~48k peers by IP grouping, a core network of at least ~10k by the
// connection-time classification.
#include <iostream>

#include "analysis/size_estimation.hpp"
#include "bench_support.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace ipfs;
  bench::print_header("§V — network-size estimate (P4)",
                      "Daniel & Tschorsch 2022, §V conclusion");

  std::cerr << "[size] running P4...\n";
  const auto result = bench::run_period(scenario::PeriodSpec::P4());
  const auto report = analysis::estimate_network_size(*result.go_ipfs);

  common::TextTable table("Network size (paper values in parentheses)");
  table.set_header({"Estimator", "Value", "Paper"});
  table.add_row({"observed PIDs", common::with_thousands(report.observed_pids),
                 "65'853"});
  table.add_row({"peers by IP grouping", common::with_thousands(report.estimated_peers_by_ip),
                 "~48k"});
  table.add_row({"PIDs per peer (group)",
                 common::format_fixed(report.pids_per_ip_group, 2), "~2 (Sec. V)"});
  table.add_row({"core network (heavy peers)",
                 common::with_thousands(report.core_network_lower_bound), ">= 10k"});
  table.add_row({"heavy DHT servers", common::with_thousands(report.heavy_dht_servers),
                 "~1.5k"});
  table.add_row({"core user base (heavy clients)",
                 common::with_thousands(report.core_user_base), "~9k"});
  table.print(std::cout);

  std::cout << "\nPaper conclusion: 'during our measurement period the network\n"
               "consisted of roughly 48k peers. Based on the classification the\n"
               "core network of IPFS has at least a size of 10k nodes.'\n";
  return 0;
}
