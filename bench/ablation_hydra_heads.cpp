// Ablation: hydra head-count sweep.
//
// §III-C argues that a hydra with more heads covers more of the keyspace
// ("two measurement nodes with strategically placed keys should be
// sufficient to cover almost the whole network").  This bench sweeps the
// head count over one-day campaigns and reports the union horizon.
#include <iostream>

#include "bench_support.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace ipfs;
  bench::print_header("ABLATION — hydra head-count sweep (1-day campaigns)",
                      "Daniel & Tschorsch 2022, §III-C");

  common::TextTable table("Union horizon vs head count");
  table.set_header({"Heads", "Union PIDs", "Per-head (min..max)", "go-ipfs PIDs"});
  for (const int heads : {1, 2, 3, 4}) {
    std::cerr << "[ablation-hydra] heads=" << heads << "...\n";
    auto period = scenario::PeriodSpec::P1();
    period.name = "sweep";
    period.duration = common::kDay;
    period.hydra_heads = heads;
    auto config = bench::make_config(period);
    config.enable_crawler = false;
    const auto result = bench::make_engine(std::move(config)).run();

    common::MinMaxBand head_band;
    for (const auto& head : result.hydra_heads) {
      head_band.add(head.peer_count(), head.peer_count());
    }
    table.add_row({std::to_string(heads),
                   common::with_thousands(result.hydra_union->peer_count()),
                   common::with_thousands(head_band.low()) + " .. " +
                       common::with_thousands(head_band.high()),
                   common::with_thousands(result.go_ipfs->peer_count())});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: the union grows with the head count with\n"
               "diminishing returns — two heads already approach the crawler's\n"
               "coverage in Fig. 2, matching the paper's vantage-point claim.\n";
  return 0;
}
