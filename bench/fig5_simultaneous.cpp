// Regenerates paper Fig. 5: simultaneous peer connections over the first
// 24 h for P0–P3 (go-ipfs and hydra heads), printed as a down-sampled
// series plus summary statistics.
#include <iostream>

#include "analysis/timeseries.hpp"
#include "bench_support.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace {

using namespace ipfs;

void print_series(const std::string& label, const measure::Dataset& dataset) {
  const auto series = analysis::simultaneous_connections(
      dataset, 30 * common::kMinute, 24 * common::kHour);
  const auto summary = analysis::summarize_series(series);
  std::cout << "  " << label << ": peak=" << common::with_thousands(summary.peak)
            << " mean=" << common::format_fixed(summary.mean, 0)
            << " final=" << common::with_thousands(summary.final_value) << "\n    ";
  for (std::size_t i = 0; i < series.size(); i += 4) {
    std::cout << series[i].count << " ";
  }
  std::cout << "(every 2 h)\n";
}

}  // namespace

int main() {
  using namespace ipfs;
  bench::print_header("FIG. 5 — simultaneous peer connections (first 24 h)",
                      "Daniel & Tschorsch 2022, Fig. 5 + §V");

  const std::vector<scenario::PeriodSpec> periods{
      scenario::PeriodSpec::P0(), scenario::PeriodSpec::P1(),
      scenario::PeriodSpec::P2(), scenario::PeriodSpec::P3()};
  for (const auto& period : periods) {
    std::cerr << "[fig5] running " << period.name << "...\n";
    const auto result = bench::run_period(period);
    std::cout << period.name << " (Low " << period.go_low_water << " / High "
              << period.go_high_water << "):\n";
    if (result.go_ipfs) print_series("go-ipfs", *result.go_ipfs);
    for (std::size_t h = 0; h < result.hydra_heads.size(); ++h) {
      print_series("Hydra H" + std::to_string(h), result.hydra_heads[h]);
    }
  }

  std::cout << "\nPaper Fig. 5 shape: P0/P1 pinned between the configured\n"
               "watermarks (own trimming visible); P2 plateaus around 15k-16k,\n"
               "below LowWater=18k; P3 (client) stays in the low hundreds.\n";
  return 0;
}
