// Regenerates paper Table I: overview and duration of the measurement
// periods with the connection-manager watermarks and deployed clients.
#include <iostream>

#include "bench_support.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace ipfs;
  bench::print_header("TABLE I — measurement periods",
                      "Daniel & Tschorsch 2022, Table I");

  common::TextTable table("Measurement periods (paper dates; simulated clocks start at 0)");
  table.set_header({"Period", "Dates", "Duration", "Low", "High", "go-ipfs", "Hydra"});
  for (const auto& period : scenario::PeriodSpec::table1()) {
    const std::string go_role = !period.go_ipfs_present ? "-"
                                : period.go_ipfs_mode == dht::Mode::kServer ? "Server"
                                                                            : "Client";
    table.add_row({period.name, period.dates, common::format_duration(period.duration),
                   common::with_thousands(static_cast<std::int64_t>(period.go_low_water)),
                   common::with_thousands(static_cast<std::int64_t>(period.go_high_water)),
                   go_role,
                   period.hydra_heads == 0 ? "-" : std::to_string(period.hydra_heads)});
  }
  const auto long_run = scenario::PeriodSpec::Long14d();
  table.add_rule();
  table.add_row({long_run.name, long_run.dates, common::format_duration(long_run.duration),
                 common::with_thousands(static_cast<std::int64_t>(long_run.go_low_water)),
                 common::with_thousands(static_cast<std::int64_t>(long_run.go_high_water)),
                 "Server", "-"});
  table.print(std::cout);
  std::cout << "\nPaper Table I: P0 600/900 Server+3 heads, P1 2k/4k Server+2,\n"
               "P2 18k/20k Server+2, P3 18k/20k Client, P4 18k/20k Server.\n";
  return 0;
}
