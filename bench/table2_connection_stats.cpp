// Regenerates paper Table II: connection statistics (Sum / Avg / Median,
// aggregation types "All" and "Peer") for go-ipfs and each hydra head over
// measurement periods P0–P3, plus the §IV-A direction breakdown.
#include <iostream>

#include "analysis/connection_stats.hpp"
#include "bench_support.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace {

using namespace ipfs;

void add_rows(common::TextTable& table, const std::string& period,
              const measure::Dataset& dataset) {
  const auto stats = analysis::compute_connection_stats(dataset);
  table.add_row({period, "All", common::with_thousands(stats.all.count),
                 common::format_fixed(stats.all.average_s, 3) + " s",
                 common::format_fixed(stats.all.median_s, 3) + " s"});
  table.add_row({period, "Peer", common::with_thousands(stats.peer.count),
                 common::format_fixed(stats.peer.average_s, 3) + " s",
                 common::format_fixed(stats.peer.median_s, 3) + " s"});
}

void direction_note(const std::string& period, const measure::Dataset& dataset) {
  const auto stats = analysis::compute_connection_stats(dataset);
  std::cout << "  " << period << " go-ipfs direction: inbound "
            << common::with_thousands(stats.direction.inbound_count) << " (avg "
            << common::format_fixed(stats.direction.inbound_avg_s, 1)
            << " s), outbound "
            << common::with_thousands(stats.direction.outbound_count) << " (avg "
            << common::format_fixed(stats.direction.outbound_avg_s, 1) << " s)\n";
}

}  // namespace

int main() {
  using namespace ipfs;
  bench::print_header("TABLE II — connection statistics",
                      "Daniel & Tschorsch 2022, Table II + §IV-A");

  common::TextTable go_table("go-ipfs");
  go_table.set_header({"Period", "Type", "Sum", "Avg.", "Median"});
  std::vector<common::TextTable> hydra_tables;
  std::vector<scenario::CampaignResult> results;

  const std::vector<scenario::PeriodSpec> periods{
      scenario::PeriodSpec::P0(), scenario::PeriodSpec::P1(),
      scenario::PeriodSpec::P2(), scenario::PeriodSpec::P3()};

  for (const auto& period : periods) {
    std::cerr << "[table2] running " << period.name << "...\n";
    results.push_back(bench::run_period(period));
    const auto& result = results.back();
    if (result.go_ipfs) add_rows(go_table, period.name, *result.go_ipfs);
    for (std::size_t h = 0; h < result.hydra_heads.size(); ++h) {
      if (hydra_tables.size() <= h) {
        hydra_tables.emplace_back("Hydra H" + std::to_string(h));
        hydra_tables.back().set_header({"Period", "Type", "Sum", "Avg.", "Median"});
      }
      add_rows(hydra_tables[h], period.name, result.hydra_heads[h]);
    }
  }

  go_table.print(std::cout);
  for (auto& table : hydra_tables) table.print(std::cout);

  std::cout << "\nDirection breakdown (§IV-A: 'vastly more inbound than outbound'):\n";
  for (std::size_t i = 0; i < periods.size(); ++i) {
    if (results[i].go_ipfs) direction_note(periods[i].name, *results[i].go_ipfs);
  }

  std::cout << "\nPaper Table II (go-ipfs): P0 All 1'285'513/196.556/73.732,"
               " P1 All 355'965/802.617/130.464,\n  P2 All 285'357/3883.828/85.404,"
               " P3 All 47'571/120.613/75.192.\nShape to check: Avg rises P0->P2 as"
               " watermarks rise; medians stay ~1 min;\nPeer-avg >> All-avg; P3"
               " (client) smallest and shortest.\n";
  return 0;
}
