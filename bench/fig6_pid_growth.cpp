// Regenerates paper Fig. 6: number of PIDs over time during the ~14-day
// measurement — all PIDs seen, PIDs gone for more than three days, and the
// currently-connected plateau.
#include <iostream>

#include "analysis/timeseries.hpp"
#include "bench_support.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace ipfs;
  bench::print_header("FIG. 6 — PIDs over time (14-day run)",
                      "Daniel & Tschorsch 2022, Fig. 6 + §V");

  std::cerr << "[fig6] running LONG14D (this is the long one)...\n";
  auto config = bench::make_config(scenario::PeriodSpec::Long14d());
  config.enable_crawler = false;  // not needed for this figure
  const auto result = bench::make_engine(std::move(config)).run();
  const auto& dataset = *result.go_ipfs;

  const auto growth = analysis::pid_growth(dataset, 12 * common::kHour, 3 * common::kDay);

  common::TextTable table("PIDs over time (12 h samples)");
  table.set_header({"t", "all PIDs", ">= 3 d gone", "connected"});
  for (std::size_t i = 0; i < growth.all_pids.size(); i += 2) {
    table.add_row({common::format_duration(growth.all_pids[i].at),
                   common::with_thousands(growth.all_pids[i].count),
                   common::with_thousands(growth.gone_pids[i].count),
                   common::with_thousands(growth.connected_pids[i].count)});
  }
  table.print(std::cout);

  const auto final_all = growth.all_pids.back().count;
  const auto final_gone = growth.gone_pids.back().count;
  std::cout << "\nFinal: " << common::with_thousands(final_all) << " PIDs seen, "
            << common::with_thousands(final_gone)
            << " gone >3 d ("
            << common::format_percent(static_cast<double>(final_gone) /
                                      static_cast<double>(final_all))
            << ").\nPaper Fig. 6 shape: continuous near-linear growth of seen PIDs\n"
               "(toward ~1.5e5), a growing gone-population trailing three days\n"
               "behind, and a connected plateau far below both.\n";
  return 0;
}
