// Micro-benchmarks (google-benchmark) for the hot substrate paths: the
// event queue, Kademlia routing table, connection-manager trim planning and
// the §V-A union-find grouping.  These bound the cost of campaign-scale
// simulation (20M+ events for P0).
#include <benchmark/benchmark.h>

#include <chrono>

#include "analysis/size_estimation.hpp"
#include "common/rng.hpp"
#include "dht/routing_table.hpp"
#include "p2p/conn_manager.hpp"
#include "runtime/testbed.hpp"

namespace {

using namespace ipfs;

void BM_SimulationScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    // A fresh clock per iteration; manual timing keeps the facade's
    // (network, address-space) wiring out of the measured region.
    auto testbed = runtime::TestbedBuilder().seed(1).build();
    sim::Simulation& sim = testbed.simulation();
    const auto events = static_cast<std::size_t>(state.range(0));
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < events; ++i) {
      sim.schedule_at(static_cast<common::SimTime>(i % 1000), [] {});
    }
    sim.run();
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(sim.executed_events());
    state.SetIterationTime(std::chrono::duration<double>(stop - start).count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulationScheduleRun)
    ->UseManualTime()
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

void BM_RoutingTableAdd(benchmark::State& state) {
  common::Rng rng(1);
  std::vector<p2p::PeerId> peers;
  for (int i = 0; i < 4096; ++i) peers.push_back(p2p::PeerId::random(rng));
  for (auto _ : state) {
    dht::RoutingTable table(p2p::PeerId::from_seed(42));
    for (const auto& peer : peers) benchmark::DoNotOptimize(table.add(peer, 0));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_RoutingTableAdd);

void BM_RoutingTableClosest(benchmark::State& state) {
  common::Rng rng(2);
  dht::RoutingTable table(p2p::PeerId::from_seed(42));
  for (int i = 0; i < 4096; ++i) table.add(p2p::PeerId::random(rng), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.closest(p2p::PeerId::random(rng), 20));
  }
}
BENCHMARK(BM_RoutingTableClosest);

void BM_ConnManagerPlanTrim(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<p2p::Connection> connections(count);
  for (std::size_t i = 0; i < count; ++i) {
    connections[i].id = i + 1;
    connections[i].remote = p2p::PeerId::from_seed(i + 1);
    connections[i].opened = 0;
  }
  std::vector<const p2p::Connection*> views;
  for (const auto& connection : connections) views.push_back(&connection);
  p2p::ConnManager manager(
      p2p::ConnManagerConfig::with_watermarks(static_cast<int>(count * 2 / 3),
                                              static_cast<int>(count - 1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.plan_trim(views, 1000 * common::kSecond));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ConnManagerPlanTrim)->Arg(900)->Arg(20000);

void BM_MultiaddrGrouping(benchmark::State& state) {
  const auto peer_count = static_cast<std::size_t>(state.range(0));
  common::Rng rng(3);
  measure::Dataset dataset;
  for (std::size_t i = 0; i < peer_count; ++i) {
    const auto index = dataset.intern(p2p::PeerId::from_seed(i + 1), 0);
    // 10 % of peers share one of 64 NAT addresses.
    const auto ip = rng.bernoulli(0.1)
                        ? p2p::IpAddress::v4(static_cast<std::uint32_t>(
                              0x0a000000u + rng.uniform_u64(64)))
                        : p2p::IpAddress::v4(static_cast<std::uint32_t>(rng()));
    dataset.record(index).connected_ips.insert(ip);
    dataset.add_connection({index, 0, 1000, p2p::Direction::kInbound,
                            p2p::CloseReason::kRemoteClose});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::group_by_multiaddr(dataset));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MultiaddrGrouping)->Arg(10000)->Arg(60000);

}  // namespace

BENCHMARK_MAIN();
