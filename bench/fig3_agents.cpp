// Regenerates paper Fig. 3: occurrences of agent-version strings (go-ipfs
// grouped by version number, rare agents folded into "other"), plus the
// §IV-B headline counts.
#include <iostream>

#include "analysis/metadata.hpp"
#include "bench_support.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace ipfs;
  bench::print_header("FIG. 3 — agent-version occurrences",
                      "Daniel & Tschorsch 2022, Fig. 3 + §IV-B");

  std::cerr << "[fig3] running P4...\n";
  const auto result = bench::run_period(scenario::PeriodSpec::P4());
  const auto& dataset = *result.go_ipfs;

  const auto histogram = analysis::agent_histogram(dataset);
  // Paper: agents used by <= 100 PIDs are grouped as "other" (scaled).
  const auto threshold =
      static_cast<std::uint64_t>(100.0 * ipfs::bench::env_scale());
  const auto rows = histogram.top_with_other(threshold);
  std::uint64_t max_count = 0;
  for (const auto& [label, count] : rows) max_count = std::max(max_count, count);

  common::TextTable table("Agent occurrences (log-scale bars)");
  table.set_header({"Agent", "Count", "log bar"});
  for (const auto& [label, count] : rows) {
    table.add_row({label, common::with_thousands(count),
                   common::log_bar(count, max_count, 32)});
  }
  table.print(std::cout);

  const auto summary = analysis::summarize_metadata(dataset);
  std::cout << "\nHeadline counts (paper in parentheses):\n"
            << "  distinct agent strings: "
            << common::with_thousands(summary.distinct_agent_strings) << "  (323)\n"
            << "  distinct go-ipfs versions: "
            << common::with_thousands(summary.go_ipfs_version_count) << "  (263)\n"
            << "  go-ipfs PIDs:   " << common::with_thousands(summary.go_ipfs_pids)
            << "  (50'254)\n"
            << "  hydra PIDs:     " << common::with_thousands(summary.hydra_pids)
            << "  (1'028)\n"
            << "  crawler PIDs:   " << common::with_thousands(summary.crawler_pids)
            << "  (586)\n"
            << "  other agents:   " << common::with_thousands(summary.other_agent_pids)
            << "  (10'926)\n"
            << "  missing agents: " << common::with_thousands(summary.missing_agent_pids)
            << "  (3'059)\n"
            << "  total PIDs:     " << common::with_thousands(summary.total_pids)
            << "  (65'853)\n";
  return 0;
}
