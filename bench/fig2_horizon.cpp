// Regenerates paper Fig. 2: number of PIDs seen per measurement period by
// the passive vantages (total + DHT servers) versus the active crawler's
// min/max band.
#include <iostream>

#include "bench_support.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace {

using namespace ipfs;

std::pair<std::uint64_t, std::uint64_t> pid_counts(const measure::Dataset& dataset) {
  std::uint64_t servers = 0;
  for (const auto& peer : dataset.peers()) {
    if (peer.ever_dht_server) ++servers;
  }
  return {dataset.peer_count(), servers};
}

}  // namespace

int main() {
  using namespace ipfs;
  bench::print_header("FIG. 2 — passive vs active measurement horizon",
                      "Daniel & Tschorsch 2022, Fig. 2 + §III-C");

  common::TextTable table("PIDs per period (total / DHT-server)");
  table.set_header({"Period", "go-ipfs", "Hydra union", "Crawler min-max (reached..learned)"});

  for (const auto& period : scenario::PeriodSpec::table1()) {
    std::cerr << "[fig2] running " << period.name << "...\n";
    const auto result = bench::run_period(period);
    std::string go = "-";
    if (result.go_ipfs) {
      const auto [total, servers] = pid_counts(*result.go_ipfs);
      go = common::with_thousands(total) + " / " + common::with_thousands(servers);
    }
    std::string hydra = "-";
    if (result.hydra_union) {
      const auto [total, servers] = pid_counts(*result.hydra_union);
      hydra = common::with_thousands(total) + " / " + common::with_thousands(servers);
    }
    const auto [crawl_min, crawl_max] = result.crawler_min_max();
    table.add_row({period.name, go, hydra,
                   common::with_thousands(static_cast<std::uint64_t>(crawl_min)) +
                       " .. " +
                       common::with_thousands(static_cast<std::uint64_t>(crawl_max))});
  }
  table.print(std::cout);

  std::cout << "\nPaper Fig. 2 shape: 40k-65k total PIDs for the passive nodes;\n"
               "multi-day periods see more DHT servers than any single crawl;\n"
               "hydra union >= go-ipfs; crawler reaches only DHT servers.\n";
  return 0;
}
