#include "runtime/parallel.hpp"

#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "measure/sink.hpp"

namespace ipfs::runtime {
namespace {

using common::kHour;

scenario::CampaignConfig cell(std::uint64_t seed) {
  scenario::CampaignConfig config;
  config.period = scenario::PeriodSpec::P4();
  config.period.duration = 3 * kHour;
  config.population = scenario::PopulationSpec::test_scale(0.02);
  config.seed = seed;
  return config;
}

constexpr std::array<std::uint64_t, 3> kSeeds = {11, 22, 33};

std::vector<TrialSpec> make_trials() {
  return ParallelTrialRunner::seed_sweep(cell(0), kSeeds);
}

/// Everything a run publishes: the in-memory stream plus a byte-exact JSON
/// trace of every dataset (the bit-identity witness).
struct StreamCapture {
  std::ostringstream json;
  measure::CollectingSink collected;
  measure::JsonExportSink exporter;
  measure::FanOutSink fan;

  StreamCapture()
      : exporter(json, [] {
          measure::JsonExportSink::Options options;
          options.include_connections = true;
          return options;
        }()),
        fan({&collected, &exporter}) {}
};

/// The reference: a plain sequential loop over the same trials.
void run_sequential(const std::vector<TrialSpec>& trials,
                    measure::MeasurementSink& sink) {
  for (const TrialSpec& trial : trials) {
    auto engine = scenario::CampaignEngine::create(trial.config);
    ASSERT_TRUE(engine.has_value()) << engine.error();
    engine->run(sink);
  }
}

TEST(ParallelTrialRunner, SeedSweepBuildsOneTrialPerSeed) {
  const auto trials = make_trials();
  ASSERT_EQ(trials.size(), kSeeds.size());
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(trials[i].config.seed, kSeeds[i]);
    EXPECT_NE(trials[i].name.find("seed=" + std::to_string(kSeeds[i])),
              std::string::npos);
  }
}

TEST(ParallelTrialRunner, MergedStreamBitIdenticalToSequential) {
  StreamCapture sequential;
  run_sequential(make_trials(), sequential.fan);

  StreamCapture parallel;
  ParallelTrialRunner runner(ParallelTrialRunner::Options{.workers = 4});
  const auto outcome = runner.run(make_trials(), parallel.fan);
  ASSERT_TRUE(outcome.has_value()) << outcome.error();

  // The JSON trace serialises every dataset field; byte equality here is
  // the "bit-identical merged output" acceptance bar.
  ASSERT_FALSE(sequential.json.str().empty());
  EXPECT_EQ(sequential.json.str(), parallel.json.str());

  // The in-memory stream must interleave identically too: crawls in trial
  // order with original timestamps, datasets in publication order.
  const auto& seq = sequential.collected;
  const auto& par = parallel.collected;
  ASSERT_EQ(par.crawls().size(), seq.crawls().size());
  for (std::size_t i = 0; i < seq.crawls().size(); ++i) {
    EXPECT_EQ(par.crawls()[i].at, seq.crawls()[i].at);
    EXPECT_EQ(par.crawls()[i].reached_servers, seq.crawls()[i].reached_servers);
    EXPECT_EQ(par.crawls()[i].learned_pids, seq.crawls()[i].learned_pids);
  }
  ASSERT_EQ(par.datasets().size(), seq.datasets().size());
  for (std::size_t i = 0; i < seq.datasets().size(); ++i) {
    EXPECT_EQ(par.datasets()[i].role, seq.datasets()[i].role);
    EXPECT_EQ(par.datasets()[i].dataset.vantage, seq.datasets()[i].dataset.vantage);
    EXPECT_EQ(par.datasets()[i].dataset.peer_count(),
              seq.datasets()[i].dataset.peer_count());
    EXPECT_EQ(par.datasets()[i].dataset.connection_count(),
              seq.datasets()[i].dataset.connection_count());
  }
  EXPECT_EQ(par.summary().population_size, seq.summary().population_size);
  EXPECT_EQ(par.summary().events_executed, seq.summary().events_executed);
}

TEST(ParallelTrialRunner, OutputIndependentOfWorkerCount) {
  StreamCapture one;
  ParallelTrialRunner single(ParallelTrialRunner::Options{.workers = 1});
  ASSERT_TRUE(single.run(make_trials(), one.fan).has_value());

  StreamCapture three;
  ParallelTrialRunner pooled(ParallelTrialRunner::Options{.workers = 3});
  ASSERT_TRUE(pooled.run(make_trials(), three.fan).has_value());

  ASSERT_FALSE(one.json.str().empty());
  EXPECT_EQ(one.json.str(), three.json.str());
}

TEST(ParallelTrialRunner, CollectingRunMatchesSequentialEngines) {
  ParallelTrialRunner runner;
  const auto results = runner.run(make_trials());
  ASSERT_TRUE(results.has_value()) << results.error();
  ASSERT_EQ(results->size(), kSeeds.size());

  const auto trials = make_trials();
  for (std::size_t i = 0; i < trials.size(); ++i) {
    auto engine = scenario::CampaignEngine::create(trials[i].config);
    ASSERT_TRUE(engine.has_value());
    const auto expected = engine->run();

    const TrialResult& got = (*results)[i];
    EXPECT_EQ(got.seed, kSeeds[i]);
    EXPECT_EQ(got.name, trials[i].name);
    ASSERT_TRUE(got.result.go_ipfs.has_value());
    EXPECT_EQ(got.result.go_ipfs->peer_count(), expected.go_ipfs->peer_count());
    EXPECT_EQ(got.result.go_ipfs->connection_count(),
              expected.go_ipfs->connection_count());
    EXPECT_EQ(got.result.events_executed, expected.events_executed);
    EXPECT_EQ(got.result.crawls.size(), expected.crawls.size());
  }
}

TEST(ParallelTrialRunner, InvalidCellRejectsWholeBatch) {
  auto trials = make_trials();
  trials[1].config.period.duration = 0;
  trials[1].name = "broken-cell";

  ParallelTrialRunner runner;
  measure::CollectingSink sink;
  const auto outcome = runner.run(std::move(trials), sink);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_NE(outcome.error().find("broken-cell"), std::string::npos);
  // Nothing ran: an invalid sweep must not partially execute.
  EXPECT_TRUE(sink.datasets().empty());
  EXPECT_TRUE(sink.crawls().empty());
}

}  // namespace
}  // namespace ipfs::runtime
