// Unit tests for the fork-join shard pool (DESIGN.md §13): strict-barrier
// fan-out, canonical slicing, exception policy, and pool reuse — the
// primitives the sharded CampaignEngine's byte-identity rests on.
#include "runtime/shard_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace ipfs::runtime {
namespace {

TEST(ShardPool, ClampsDegenerateCounts) {
  ShardPool zero(0, 0);
  EXPECT_EQ(zero.shards(), 1u);
  EXPECT_EQ(zero.workers(), 1u);

  // Workers clamp to shards: an idle helper could never claim work.
  ShardPool oversubscribed(3, 99);
  EXPECT_EQ(oversubscribed.shards(), 3u);
  EXPECT_EQ(oversubscribed.workers(), 3u);
}

TEST(ShardPool, RunsEveryShardExactlyOnce) {
  for (const unsigned workers : {1u, 2u, 4u}) {
    ShardPool pool(8, workers);
    std::vector<std::atomic<int>> hits(8);
    pool.run([&](unsigned shard) { hits[shard].fetch_add(1); });
    for (unsigned shard = 0; shard < 8; ++shard) {
      EXPECT_EQ(hits[shard].load(), 1) << "workers=" << workers
                                       << " shard=" << shard;
    }
  }
}

TEST(ShardPool, RunIsAStrictBarrier) {
  // After run() returns, every body effect must be visible to the caller —
  // no shard may still be in flight.
  ShardPool pool(16, 4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> done{0};
    pool.run([&](unsigned) { done.fetch_add(1); });
    EXPECT_EQ(done.load(), 16) << "round=" << round;
  }
}

TEST(ShardPool, PoolIsReusableAcrossJobs) {
  ShardPool pool(4, 2);
  long long total = 0;
  for (int round = 0; round < 100; ++round) {
    std::vector<long long> partial(4, 0);
    pool.run([&](unsigned shard) { partial[shard] = shard + round; });
    total += std::accumulate(partial.begin(), partial.end(), 0LL);
  }
  // sum over rounds of (0+1+2+3 + 4*round)
  EXPECT_EQ(total, 100LL * 6 + 4LL * (99 * 100 / 2));
}

TEST(ShardPool, LowestShardExceptionWinsTheRethrow) {
  ShardPool pool(6, 3);
  for (int round = 0; round < 20; ++round) {
    try {
      pool.run([](unsigned shard) {
        if (shard % 2 == 1) {
          throw std::runtime_error("shard " + std::to_string(shard));
        }
      });
      FAIL() << "run() must rethrow a body exception";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "shard 1");
    }
  }
}

TEST(ShardPool, PoolSurvivesAThrowingJob) {
  ShardPool pool(4, 2);
  EXPECT_THROW(pool.run([](unsigned) { throw std::logic_error("boom"); }),
               std::logic_error);
  // The next job must run normally — errors are per job, not sticky.
  std::atomic<int> done{0};
  pool.run([&](unsigned) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 4);
}

TEST(ShardPool, SingleWorkerRunsInlineAscending) {
  // workers == 1 degrades to an inline loop in ascending shard order (no
  // helper threads exist to race with).
  ShardPool pool(5, 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<unsigned> order;
  pool.run([&](unsigned shard) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(shard);
  });
  EXPECT_EQ(order, (std::vector<unsigned>{0, 1, 2, 3, 4}));
}

TEST(ShardPool, CallerParticipatesInMultiWorkerJobs) {
  // The calling thread is one of the workers: with long-enough jobs it
  // must claim at least one shard itself (it drains until the job ends).
  ShardPool pool(64, 2);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  pool.run([&](unsigned) {
    const std::lock_guard<std::mutex> hold(mutex);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_TRUE(seen.contains(std::this_thread::get_id()));
}

TEST(ShardPool, SliceIsACanonicalPartition) {
  // Contiguous, non-overlapping, concatenating to [0, count) in ascending
  // shard order, sizes differing by at most one.
  for (const std::size_t count : {0uz, 1uz, 7uz, 64uz, 1000uz}) {
    for (const unsigned shards : {1u, 2u, 3u, 8u, 13u}) {
      std::size_t cursor = 0;
      std::size_t smallest = count + 1, largest = 0;
      for (unsigned shard = 0; shard < shards; ++shard) {
        const auto [first, last] = ShardPool::slice(count, shards, shard);
        EXPECT_EQ(first, cursor) << count << "/" << shards << "@" << shard;
        EXPECT_LE(first, last);
        cursor = last;
        smallest = std::min(smallest, last - first);
        largest = std::max(largest, last - first);
      }
      EXPECT_EQ(cursor, count) << count << "/" << shards;
      EXPECT_LE(largest - smallest, 1u) << count << "/" << shards;
    }
  }
}

TEST(ShardPool, ShardLocalWritesNeedNoLocking) {
  // The engine's usage pattern: each body writes only its own slice of a
  // shared array plus its own partial slot.  Any data race here is the
  // race TSan hunts in CI (`ctest -L shard` under IPFS_SANITIZE=thread).
  constexpr std::size_t kItems = 10'000;
  ShardPool pool(8, 4);
  std::vector<std::uint64_t> values(kItems, 0);
  std::vector<std::uint64_t> partial(8, 0);
  pool.run([&](unsigned shard) {
    const auto [first, last] = ShardPool::slice(kItems, 8, shard);
    for (std::size_t i = first; i < last; ++i) {
      values[i] = i * 3 + 1;
      partial[shard] += values[i];
    }
  });
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(values[i], i * 3 + 1);
    expected += i * 3 + 1;
  }
  EXPECT_EQ(std::accumulate(partial.begin(), partial.end(), 0ULL), expected);
}

}  // namespace
}  // namespace ipfs::runtime
