// Unit tests for the process-wide worker budget (DESIGN.md §13): the
// accounting `ParallelTrialRunner` and sharded campaign engines share so
// nested trials x shards never commit more threads than the hardware has.
#include "runtime/worker_budget.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

namespace ipfs::runtime {
namespace {

TEST(WorkerBudget, TotalClampsToAtLeastOne) {
  // hardware_concurrency() may report 0; a zero budget must degrade to
  // strictly serial grants, not divide-by-zero or dead-lock semantics.
  EXPECT_EQ(WorkerBudget(0).total(), 1u);
  EXPECT_EQ(WorkerBudget(1).total(), 1u);
  EXPECT_EQ(WorkerBudget(8).total(), 8u);
}

TEST(WorkerBudget, HardwareIsNeverZero) {
  EXPECT_GE(WorkerBudget::hardware(), 1u);
}

TEST(WorkerBudget, CommittedStartsAtOwningThread) {
  WorkerBudget budget(4);
  EXPECT_EQ(budget.committed(), 1u);
}

TEST(WorkerBudget, LeaseGrantsCallerPlusUncommittedRemainder) {
  WorkerBudget budget(4);
  // 3 uncommitted slots; asking for 3 means caller + 2 extras.
  WorkerLease lease = budget.lease(3);
  EXPECT_EQ(lease.granted(), 3u);
  EXPECT_EQ(budget.committed(), 3u);

  // Only one slot left: a second consumer asking for 3 gets caller + 1.
  WorkerLease second = budget.lease(3);
  EXPECT_EQ(second.granted(), 2u);
  EXPECT_EQ(budget.committed(), 4u);

  // Budget exhausted: further leases degrade to the caller alone.
  WorkerLease third = budget.lease(5);
  EXPECT_EQ(third.granted(), 1u);
  EXPECT_EQ(budget.committed(), 4u);
}

TEST(WorkerBudget, GrantNeverExceedsRequestOrTotal) {
  WorkerBudget budget(16);
  WorkerLease lease = budget.lease(4);
  EXPECT_EQ(lease.granted(), 4u);  // request caps the grant below total
  EXPECT_EQ(budget.committed(), 4u);

  WorkerLease rest = budget.lease(99);
  EXPECT_EQ(rest.granted(), 13u);  // 12 uncommitted extras + the caller
  EXPECT_EQ(budget.committed(), 16u);
}

TEST(WorkerBudget, ZeroAndOneRequestsAreFreeGrants) {
  WorkerBudget budget(2);
  WorkerLease none = budget.lease(0);
  WorkerLease one = budget.lease(1);
  EXPECT_EQ(none.granted(), 1u);
  EXPECT_EQ(one.granted(), 1u);
  EXPECT_EQ(budget.committed(), 1u);  // the calling thread is pre-counted
}

TEST(WorkerBudget, ReleaseReturnsExtrasAndIsIdempotent) {
  WorkerBudget budget(4);
  WorkerLease lease = budget.lease(4);
  EXPECT_EQ(budget.committed(), 4u);
  lease.release();
  EXPECT_EQ(budget.committed(), 1u);
  lease.release();  // second release must be a no-op
  EXPECT_EQ(budget.committed(), 1u);
  EXPECT_EQ(lease.granted(), 1u) << "a released lease is the caller alone";
}

TEST(WorkerBudget, LeaseDestructorReleases) {
  WorkerBudget budget(4);
  {
    WorkerLease lease = budget.lease(4);
    EXPECT_EQ(budget.committed(), 4u);
  }
  EXPECT_EQ(budget.committed(), 1u);
}

TEST(WorkerBudget, LeaseMoveTransfersOwnership) {
  WorkerBudget budget(4);
  WorkerLease lease = budget.lease(3);
  WorkerLease moved = std::move(lease);
  EXPECT_EQ(moved.granted(), 3u);
  lease.release();  // moved-from lease must be inert
  EXPECT_EQ(budget.committed(), 3u);

  WorkerLease assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.granted(), 3u);
  assigned.release();
  EXPECT_EQ(budget.committed(), 1u);
}

TEST(WorkerBudget, MoveAssignReleasesThePreviousLease) {
  WorkerBudget budget(6);
  WorkerLease first = budget.lease(3);   // commits 2 extras
  WorkerLease second = budget.lease(3);  // commits 2 more
  EXPECT_EQ(budget.committed(), 5u);
  first = std::move(second);  // first's extras must return to the budget
  EXPECT_EQ(budget.committed(), 3u);
}

TEST(WorkerBudget, ConcurrentLeasingNeverOvercommits) {
  WorkerBudget budget(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&budget] {
      for (int round = 0; round < 500; ++round) {
        WorkerLease lease = budget.lease(3);
        EXPECT_GE(lease.granted(), 1u);
        EXPECT_LE(lease.granted(), 3u);
        EXPECT_LE(budget.committed(), budget.total());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(budget.committed(), 1u);
}

TEST(WorkerBudget, SplitEvenlyDividesWithFloorOfOne) {
  EXPECT_EQ(WorkerBudget::split(8, 2), 4u);
  EXPECT_EQ(WorkerBudget::split(8, 3), 2u);  // floor division
  EXPECT_EQ(WorkerBudget::split(4, 8), 1u);  // more siblings than budget
  EXPECT_EQ(WorkerBudget::split(0, 4), 1u);  // unknown hardware -> serial
  EXPECT_EQ(WorkerBudget::split(8, 0), 8u);  // ways clamps to 1
}

TEST(WorkerBudget, ProcessBudgetMatchesHardware) {
  WorkerBudget& process = WorkerBudget::process();
  EXPECT_EQ(process.total(), WorkerBudget::hardware());
  EXPECT_EQ(&process, &WorkerBudget::process());
}

}  // namespace
}  // namespace ipfs::runtime
