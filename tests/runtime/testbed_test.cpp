// Tests for the `ipfs::runtime` facade: quickstart-shaped smoke coverage,
// determinism of the seed-derived RNG tree, and sink publication.
#include "runtime/testbed.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "analysis/churn_stats.hpp"

namespace ipfs::runtime {
namespace {

using common::kMinute;

struct QuickstartCounters {
  std::size_t peers = 0;
  std::size_t connections = 0;
  std::size_t servers_seen = 0;
  std::size_t events = 0;
};

/// The quickstart example in miniature: one low-watermark vantage with a
/// recorder, 10 servers + 5 clients bootstrapping through it.
QuickstartCounters run_quickstart(std::uint64_t seed) {
  auto testbed = TestbedBuilder().seed(seed).build();
  auto vantage = testbed.add_server(node::NodeConfig::dht_server(8, 12));
  measure::Recorder& recorder = vantage.attach_recorder();
  testbed.add_servers(10).add_clients(5).bootstrap_all_via(vantage);
  testbed.run_for(30 * kMinute);
  recorder.finish();

  QuickstartCounters counters;
  counters.peers = recorder.dataset().peer_count();
  counters.connections = recorder.dataset().connection_count();
  for (const auto& peer : recorder.dataset().peers()) {
    if (peer.ever_dht_server) ++counters.servers_seen;
  }
  counters.events = testbed.simulation().executed_events();
  return counters;
}

TEST(Testbed, QuickstartSmoke) {
  const auto counters = run_quickstart(42);
  EXPECT_GE(counters.peers, 15u);
  EXPECT_GT(counters.connections, 0u);
  EXPECT_GE(counters.servers_seen, 10u);
  EXPECT_GT(counters.events, 100u);
}

TEST(Testbed, SameSeedRunsAreIdentical) {
  const auto a = run_quickstart(7);
  const auto b = run_quickstart(7);
  EXPECT_EQ(a.peers, b.peers);
  EXPECT_EQ(a.connections, b.connections);
  EXPECT_EQ(a.servers_seen, b.servers_seen);
  EXPECT_EQ(a.events, b.events);
}

TEST(Testbed, DifferentSeedsProduceDifferentNetworks) {
  auto testbed_a = TestbedBuilder().seed(1).build();
  auto testbed_b = TestbedBuilder().seed(2).build();
  EXPECT_NE(testbed_a.add_server().id(), testbed_b.add_server().id());
}

TEST(Testbed, NodesGetDistinctIdentitiesAndAddresses) {
  auto testbed = TestbedBuilder().seed(3).build();
  auto a = testbed.add_server();
  auto b = testbed.add_client();
  EXPECT_NE(a.id(), b.id());
  EXPECT_NE(a.swarm().listen_address().ip, b.swarm().listen_address().ip);
  EXPECT_EQ(testbed.node_count(), 2u);
  EXPECT_EQ(testbed.node(0).id(), a.id());
}

TEST(Testbed, BootstrapAllViaSkipsVantageAndAlreadyBootstrapped) {
  auto testbed = TestbedBuilder().seed(4).build();
  auto vantage = testbed.add_server();
  auto early = testbed.add_server();
  early.bootstrap({vantage.id()});
  testbed.add_servers(4).bootstrap_all_via(vantage);
  testbed.run_for(5 * kMinute);
  // Everyone (and only everyone else) connected through the vantage.
  EXPECT_GE(vantage.swarm().peerstore().size(), 5u);
}

TEST(Testbed, RecordersPublishThroughSink) {
  auto testbed = TestbedBuilder().seed(5).build();
  auto vantage = testbed.add_server();
  vantage.attach_recorder();
  EXPECT_TRUE(vantage.has_recorder());
  testbed.add_servers(5).bootstrap_all_via(vantage);
  testbed.run_for(10 * kMinute);

  measure::CollectingSink sink;
  testbed.publish_recorders(sink);
  ASSERT_EQ(sink.datasets().size(), 1u);
  EXPECT_EQ(sink.datasets().front().role, measure::DatasetRole::kOther);
  EXPECT_GE(sink.datasets().front().dataset.peer_count(), 5u);
}

TEST(Testbed, HydraAndCrawlerHandles) {
  auto testbed = TestbedBuilder().seed(6).build();
  auto bootstrap_node = testbed.add_server();
  hydra::HydraConfig hydra_config;
  hydra_config.head_count = 2;
  hydra::HydraNode& hydra = testbed.add_hydra(hydra_config);
  hydra.bootstrap({bootstrap_node.id()});
  testbed.add_servers(6).bootstrap_all_via(bootstrap_node);
  testbed.run_for(10 * kMinute);

  crawler::Crawler& crawler = testbed.add_crawler();
  crawler::CrawlResult crawl;
  crawler.crawl({bootstrap_node.id()},
                [&](crawler::CrawlResult r) { crawl = std::move(r); });
  testbed.run_for(10 * kMinute);

  EXPECT_EQ(hydra.head_count(), 2u);
  EXPECT_GT(hydra.union_known_pids().size(), 0u);
  // The crawler reaches the bootstrap node, the servers and both heads.
  EXPECT_GE(crawl.reached.size(), 7u);
  crawler.stop();
  hydra.stop();
}

/// Run a churned testbed and return (peer-offline closes seen by the
/// vantage, peers observed across >= 2 reconstructed sessions).
std::pair<std::size_t, std::size_t> run_churned_testbed(std::uint64_t seed) {
  scenario::ChurnSpec churn;
  // Short, light-tailed sessions so a 4 h run sees many leave/rejoin
  // cycles per node.
  churn.session = scenario::SessionDistribution::exponential(20.0 * 60 * 1000);
  churn.gap = scenario::SessionDistribution::exponential(15.0 * 60 * 1000);
  churn.initial_online = 0.8;
  auto testbed = TestbedBuilder().seed(seed).churn(churn).build();
  auto vantage = testbed.add_server(node::NodeConfig::dht_server(64, 96));
  measure::Recorder& recorder = vantage.attach_recorder();
  testbed.add_servers(10).add_clients(4).bootstrap_all_via(vantage);
  testbed.churn_all_except(vantage);
  testbed.run_for(4 * common::kHour);
  recorder.finish();

  const measure::Dataset& dataset = recorder.dataset();
  std::size_t offline_closes = 0;
  for (const auto& record : dataset.connections()) {
    if (record.reason == p2p::CloseReason::kPeerOffline) ++offline_closes;
  }
  const auto sessions =
      analysis::reconstruct_sessions(dataset, 5 * common::kMinute);
  return {offline_closes,
          analysis::compute_churn_stats(sessions).multi_session_peers};
}

TEST(Testbed, ChurnedNodesLeaveAndReturn) {
  const auto [offline_closes, returning_peers] = run_churned_testbed(11);
  // Leaves tear down real connections (vantage attributes them to the
  // peer going offline), and rejoins produce multi-session traces.
  EXPECT_GE(offline_closes, 5u);
  EXPECT_GE(returning_peers, 3u);
}

TEST(Testbed, ChurnLifecycleIsDeterministicPerSeed) {
  EXPECT_EQ(run_churned_testbed(12), run_churned_testbed(12));
}

TEST(Testbed, ChurnWithoutBuilderSpecIsANoOp) {
  auto testbed = TestbedBuilder().seed(13).build();
  auto vantage = testbed.add_server();
  testbed.add_servers(2).bootstrap_all_via(vantage);
  testbed.churn_all_except(vantage);  // no model declared: nothing scheduled
  const auto before = testbed.simulation().executed_events();
  testbed.run_for(30 * kMinute);
  EXPECT_GT(testbed.simulation().executed_events(), before);
}

}  // namespace
}  // namespace ipfs::runtime
