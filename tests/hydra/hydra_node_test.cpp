#include "hydra/hydra_node.hpp"

#include <gtest/gtest.h>

#include "../testing/fidelity.hpp"

namespace ipfs::hydra {
namespace {

using common::kSecond;
using ipfs::testing::FidelityNet;

TEST(HydraNode, HeadsHaveDistinctSpreadIdentities) {
  sim::Simulation sim;
  net::Network network(sim, common::Rng(1));
  HydraConfig config;
  config.head_count = 4;
  HydraNode hydra(sim, network, common::Rng(2), p2p::IpAddress::v4(42), config);
  ASSERT_EQ(hydra.head_count(), 4u);
  // Heads land in different sixteenths of the keyspace.
  std::set<std::uint64_t> top_nibbles;
  for (std::size_t i = 0; i < 4; ++i) {
    top_nibbles.insert(hydra.head(i).id().prefix64() >> 60);
  }
  EXPECT_GE(top_nibbles.size(), 3u);
}

TEST(HydraNode, HeadsShareIpDifferentPorts) {
  sim::Simulation sim;
  net::Network network(sim, common::Rng(1));
  HydraConfig config;
  config.head_count = 3;
  HydraNode hydra(sim, network, common::Rng(2), p2p::IpAddress::v4(42), config);
  std::set<std::uint16_t> ports;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto addr = hydra.head(i).swarm().listen_address();
    EXPECT_EQ(addr.ip, p2p::IpAddress::v4(42));
    ports.insert(addr.port);
  }
  EXPECT_EQ(ports.size(), 3u);
}

TEST(HydraNode, HeadsAreDhtServersWithHydraAgent) {
  sim::Simulation sim;
  net::Network network(sim, common::Rng(1));
  HydraNode hydra(sim, network, common::Rng(2), p2p::IpAddress::v4(42), {});
  for (std::size_t i = 0; i < hydra.head_count(); ++i) {
    EXPECT_TRUE(hydra.head(i).dht().is_server());
    EXPECT_EQ(hydra.head(i).agent(), "hydra-booster/0.7.4");
    // Heads serve the DHT, not content.
    const auto protocols = hydra.head(i).announced_protocols();
    for (const std::string& protocol : protocols) {
      EXPECT_FALSE(p2p::protocols::is_bitswap(protocol)) << protocol;
    }
  }
}

TEST(HydraNode, SharedBellyVisibleToAllHeads) {
  sim::Simulation sim;
  net::Network network(sim, common::Rng(1));
  HydraNode hydra(sim, network, common::Rng(2), p2p::IpAddress::v4(42), {});
  const dht::RecordKey key = dht::RecordKey::from_seed(7);
  hydra.put_record(key, p2p::PeerId::from_seed(8), 0);
  EXPECT_EQ(hydra.belly().get(key, 1000).size(), 1u);
  EXPECT_EQ(hydra.belly().key_count(), 1u);
}

TEST(HydraNode, UnionOfHeadPeerstores) {
  FidelityNet net;
  auto& a = net.add_node(node::NodeConfig::dht_server());
  auto& b = net.add_node(node::NodeConfig::dht_server());

  HydraConfig config;
  config.head_count = 2;
  HydraNode hydra(net.sim(), net.network(), common::Rng(3),
                  net.ips().unique_v4(), config);
  hydra.start();

  // Different peers connect to different heads.
  net.network().dial(a.id(), hydra.head(0).id());
  net.network().dial(b.id(), hydra.head(1).id());
  net.sim().run_until(10 * kSecond);

  const auto pids = hydra.union_known_pids();
  EXPECT_TRUE(pids.contains(a.id()));
  EXPECT_TRUE(pids.contains(b.id()));
  EXPECT_GE(hydra.total_open_connections(), 2u);
  hydra.stop();
}

TEST(HydraNode, BroaderHorizonThanSingleNode) {
  // The paper's Fig. 2 rationale: more heads -> more of the keyspace
  // contacts a head.  Here: peers dial whichever head/node is "closest";
  // two heads collect at least as many peers as one node.
  FidelityNet net;
  auto& single = net.add_node(node::NodeConfig::dht_server());

  HydraConfig config;
  config.head_count = 3;
  HydraNode hydra(net.sim(), net.network(), common::Rng(4),
                  net.ips().unique_v4(), config);
  hydra.start();
  hydra.bootstrap({single.id()});
  net.sim().run_until(10 * kSecond);

  for (int i = 0; i < 12; ++i) {
    auto& peer = net.add_node(node::NodeConfig::dht_server());
    // Every peer knows one head; the DHT spreads knowledge further.
    peer.bootstrap({hydra.head(static_cast<std::size_t>(i % 3)).id()});
  }
  net.sim().run_until(net.sim().now() + 10 * common::kMinute);

  EXPECT_GE(hydra.union_known_pids().size(),
            single.swarm().peerstore().size());
  hydra.stop();
}

}  // namespace
}  // namespace ipfs::hydra
