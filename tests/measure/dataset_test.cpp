#include "measure/dataset.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ipfs::measure {
namespace {

using common::kSecond;

TEST(Dataset, InternCreatesOnce) {
  Dataset dataset;
  const auto pid = p2p::PeerId::from_seed(1);
  const PeerIndex a = dataset.intern(pid, 100);
  const PeerIndex b = dataset.intern(pid, 200);
  EXPECT_EQ(a, b);
  EXPECT_EQ(dataset.peer_count(), 1u);
  EXPECT_EQ(dataset.record(a).first_seen, 100);
  EXPECT_EQ(dataset.record(a).last_seen, 200);
}

TEST(Dataset, FindByPid) {
  Dataset dataset;
  const auto pid = p2p::PeerId::from_seed(1);
  dataset.intern(pid, 5);
  ASSERT_NE(dataset.find(pid), nullptr);
  EXPECT_EQ(dataset.find(pid)->pid, pid);
  EXPECT_EQ(dataset.find(p2p::PeerId::from_seed(9)), nullptr);
}

TEST(Dataset, ConnectionsByPeerGroups) {
  Dataset dataset;
  const PeerIndex a = dataset.intern(p2p::PeerId::from_seed(1), 0);
  const PeerIndex b = dataset.intern(p2p::PeerId::from_seed(2), 0);
  dataset.add_connection({a, 0, 10, p2p::Direction::kInbound,
                          p2p::CloseReason::kRemoteClose});
  dataset.add_connection({b, 0, 20, p2p::Direction::kInbound,
                          p2p::CloseReason::kRemoteClose});
  dataset.add_connection({a, 30, 40, p2p::Direction::kOutbound,
                          p2p::CloseReason::kLocalClose});
  const auto& by_peer = dataset.connections_by_peer();
  ASSERT_EQ(by_peer.size(), 2u);
  EXPECT_EQ(by_peer[a].size(), 2u);
  EXPECT_EQ(by_peer[b].size(), 1u);
}

TEST(Dataset, ConnRecordDuration) {
  ConnRecord record;
  record.opened = 10 * kSecond;
  record.closed = 95 * kSecond;
  EXPECT_EQ(record.duration(), 85 * kSecond);
}

TEST(Dataset, MergeUnionsPeers) {
  Dataset a;
  a.vantage = "H0";
  a.measurement_start = 0;
  a.measurement_end = 100;
  const auto shared_pid = p2p::PeerId::from_seed(1);
  const auto a_only = p2p::PeerId::from_seed(2);
  const PeerIndex ai = a.intern(shared_pid, 10);
  a.intern(a_only, 20);
  a.record(ai).agent_history.push_back({10, "go-ipfs/0.11.0/x"});
  a.record(ai).protocols_ever.insert("/ipfs/kad/1.0.0");
  a.record(ai).ever_dht_server = true;
  a.add_connection({ai, 10, 50, p2p::Direction::kInbound,
                    p2p::CloseReason::kRemoteClose});

  Dataset b;
  b.vantage = "H1";
  b.measurement_start = 0;
  b.measurement_end = 200;
  const auto b_only = p2p::PeerId::from_seed(3);
  const PeerIndex bi = b.intern(shared_pid, 5);
  b.intern(b_only, 30);
  b.record(bi).agent_history.push_back({40, "go-ipfs/0.12.0/y"});
  b.add_connection({bi, 5, 25, p2p::Direction::kInbound,
                    p2p::CloseReason::kRemoteClose});

  Dataset merged;
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.peer_count(), 3u);
  EXPECT_EQ(merged.connection_count(), 2u);
  EXPECT_EQ(merged.measurement_end, 200);

  const PeerRecord* shared = merged.find(shared_pid);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->first_seen, 5);
  EXPECT_TRUE(shared->ever_dht_server);
  // Agent histories interleave in time order.
  ASSERT_EQ(shared->agent_history.size(), 2u);
  EXPECT_EQ(shared->agent_history[0].at, 10);
  EXPECT_EQ(shared->agent_history[1].at, 40);

  // Connection peer indices remapped into the merged dataset.
  for (const ConnRecord& record : merged.connections()) {
    EXPECT_LT(record.peer, merged.peer_count());
  }
}

TEST(Dataset, MergeRemapsConnectionIndices) {
  Dataset a;
  a.intern(p2p::PeerId::from_seed(10), 0);  // occupies index 0
  Dataset b;
  const PeerIndex bi = b.intern(p2p::PeerId::from_seed(20), 0);
  b.add_connection({bi, 0, 10, p2p::Direction::kInbound,
                    p2p::CloseReason::kRemoteClose});
  a.merge(b);
  ASSERT_EQ(a.connection_count(), 1u);
  const auto& record = a.connections()[0];
  EXPECT_EQ(a.record(record.peer).pid, p2p::PeerId::from_seed(20));
}

TEST(Dataset, ExportJsonIsWellFormedish) {
  Dataset dataset;
  dataset.vantage = "go-ipfs";
  dataset.measurement_end = 1000;
  const PeerIndex i = dataset.intern(p2p::PeerId::from_seed(1), 0);
  dataset.record(i).agent_history.push_back({0, "go-ipfs/0.11.0/x"});
  dataset.record(i).connected_ips.insert(p2p::IpAddress::v4(42));
  dataset.add_connection({i, 0, 500, p2p::Direction::kInbound,
                          p2p::CloseReason::kRemoteTrim});
  std::ostringstream out;
  dataset.export_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"vantage\": \"go-ipfs\""), std::string::npos);
  EXPECT_NE(json.find("\"agent\": \"go-ipfs/0.11.0/x\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"remote-trim\""), std::string::npos);
  // Balanced braces/brackets.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Dataset, ExportJsonWithoutConnections) {
  Dataset dataset;
  const PeerIndex i = dataset.intern(p2p::PeerId::from_seed(1), 0);
  dataset.add_connection({i, 0, 1, p2p::Direction::kInbound,
                          p2p::CloseReason::kRemoteClose});
  std::ostringstream out;
  dataset.export_json(out, /*include_connections=*/false);
  EXPECT_EQ(out.str().find("\"connections\""), std::string::npos);
}

}  // namespace
}  // namespace ipfs::measure
