#include "measure/recorder.hpp"

#include <gtest/gtest.h>

#include "p2p/protocols.hpp"

namespace ipfs::measure {
namespace {

using common::kMinute;
using common::kSecond;

class RecorderTest : public ::testing::Test {
 protected:
  RecorderTest()
      : swarm(sim, p2p::PeerId::from_seed(1),
              p2p::Multiaddr{p2p::IpAddress::v4(1), p2p::Transport::kTcp, 4001},
              {p2p::ConnManagerConfig::with_watermarks(0, 0), false}) {}

  Recorder make_recorder(bool quantize = true) {
    RecorderConfig config;
    config.vantage = "test";
    config.poll_interval = 30 * kSecond;
    config.quantize = quantize;
    return Recorder(sim, swarm, config);
  }

  p2p::Multiaddr addr(std::uint32_t ip) {
    return p2p::Multiaddr{p2p::IpAddress::v4(ip), p2p::Transport::kTcp, 4001};
  }

  sim::Simulation sim;
  p2p::Swarm swarm;
};

TEST_F(RecorderTest, RecordsClosedConnection) {
  Recorder recorder = make_recorder(/*quantize=*/false);
  recorder.start();
  const auto pid = p2p::PeerId::from_seed(2);
  const auto id = swarm.open_connection(pid, addr(2), p2p::Direction::kInbound);
  sim.run_until(90 * kSecond);
  swarm.close_connection(id, p2p::CloseReason::kRemoteTrim);
  recorder.finish();

  const Dataset& dataset = recorder.dataset();
  EXPECT_EQ(dataset.peer_count(), 1u);
  ASSERT_EQ(dataset.connection_count(), 1u);
  const ConnRecord& record = dataset.connections()[0];
  EXPECT_EQ(record.opened, 0);
  EXPECT_EQ(record.closed, 90 * kSecond);
  EXPECT_EQ(record.reason, p2p::CloseReason::kRemoteTrim);
  EXPECT_EQ(record.direction, p2p::Direction::kInbound);
}

TEST_F(RecorderTest, QuantizationRoundsUpToPollTicks) {
  Recorder recorder = make_recorder(/*quantize=*/true);
  recorder.start();
  sim.run_until(10 * kSecond);
  const auto id = swarm.open_connection(p2p::PeerId::from_seed(2), addr(2),
                                        p2p::Direction::kInbound);
  sim.run_until(95 * kSecond);
  swarm.close_connection(id, p2p::CloseReason::kRemoteClose);
  recorder.finish();
  const ConnRecord& record = recorder.dataset().connections()[0];
  // A 30 s poller first sees the open at t=30 s and the close at t=120 s.
  EXPECT_EQ(record.opened, 30 * kSecond);
  EXPECT_EQ(record.closed, 120 * kSecond);
}

TEST_F(RecorderTest, OpenConnectionsClosedAtMeasurementEnd) {
  Recorder recorder = make_recorder();
  recorder.start();
  swarm.open_connection(p2p::PeerId::from_seed(2), addr(2), p2p::Direction::kInbound);
  sim.run_until(10 * kMinute);
  recorder.finish();
  ASSERT_EQ(recorder.dataset().connection_count(), 1u);
  const ConnRecord& record = recorder.dataset().connections()[0];
  EXPECT_EQ(record.reason, p2p::CloseReason::kMeasurementEnd);
  EXPECT_EQ(record.closed, 10 * kMinute);
}

TEST_F(RecorderTest, IgnoresEventsBeforeStartAndAfterFinish) {
  Recorder recorder = make_recorder();
  // Connection opened before start: its close is not recorded.
  const auto early = swarm.open_connection(p2p::PeerId::from_seed(2), addr(2),
                                           p2p::Direction::kInbound);
  recorder.start();
  swarm.close_connection(early, p2p::CloseReason::kRemoteClose);
  recorder.finish();
  // After finish new activity is ignored.
  swarm.open_connection(p2p::PeerId::from_seed(3), addr(3), p2p::Direction::kInbound);
  EXPECT_EQ(recorder.dataset().connection_count(), 0u);
}

TEST_F(RecorderTest, CapturesConnectedIps) {
  Recorder recorder = make_recorder();
  recorder.start();
  const auto pid = p2p::PeerId::from_seed(2);
  swarm.open_connection(pid, addr(10), p2p::Direction::kInbound);
  swarm.open_connection(pid, addr(20), p2p::Direction::kInbound);
  recorder.finish();
  const PeerRecord* record = recorder.dataset().find(pid);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->connected_ips.size(), 2u);
}

TEST_F(RecorderTest, AgentHistoryFromPeerstore) {
  Recorder recorder = make_recorder(/*quantize=*/false);
  recorder.start();
  const auto pid = p2p::PeerId::from_seed(2);
  swarm.peerstore().set_agent(pid, "go-ipfs/0.10.0/a", sim.now());
  sim.run_until(5 * kMinute);
  swarm.peerstore().set_agent(pid, "go-ipfs/0.11.0/b", sim.now());
  recorder.finish();
  const PeerRecord* record = recorder.dataset().find(pid);
  ASSERT_NE(record, nullptr);
  ASSERT_EQ(record->agent_history.size(), 2u);
  EXPECT_EQ(record->agent_history[0].agent, "go-ipfs/0.10.0/a");
  EXPECT_EQ(record->agent_history[1].agent, "go-ipfs/0.11.0/b");
  EXPECT_EQ(record->agent_history[1].at, 5 * kMinute);
}

TEST_F(RecorderTest, ProtocolEventsAndServerFlag) {
  Recorder recorder = make_recorder(/*quantize=*/false);
  recorder.start();
  const auto pid = p2p::PeerId::from_seed(2);
  const std::string kad(p2p::protocols::kKad);
  swarm.peerstore().set_protocols(pid, {kad}, sim.now());
  sim.run_until(kMinute);
  swarm.peerstore().set_protocols(pid, {}, sim.now());
  recorder.finish();
  const PeerRecord* record = recorder.dataset().find(pid);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->ever_dht_server);
  ASSERT_EQ(record->protocol_events.size(), 2u);
  EXPECT_TRUE(record->protocol_events[0].added);
  EXPECT_FALSE(record->protocol_events[1].added);
  EXPECT_TRUE(record->protocols_ever.contains(kad));
}

TEST_F(RecorderTest, TakeDatasetMovesOut) {
  Recorder recorder = make_recorder();
  recorder.start();
  swarm.open_connection(p2p::PeerId::from_seed(2), addr(2), p2p::Direction::kInbound);
  recorder.finish();
  Dataset dataset = recorder.take_dataset();
  EXPECT_EQ(dataset.peer_count(), 1u);
}

TEST_F(RecorderTest, MeasurementWindowRecorded) {
  Recorder recorder = make_recorder();
  sim.run_until(kMinute);
  recorder.start();
  sim.run_until(11 * kMinute);
  recorder.finish();
  EXPECT_EQ(recorder.dataset().measurement_start, kMinute);
  EXPECT_EQ(recorder.dataset().measurement_end, 11 * kMinute);
  EXPECT_EQ(recorder.dataset().duration(), 10 * kMinute);
}

}  // namespace
}  // namespace ipfs::measure
