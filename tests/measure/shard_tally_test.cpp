// Unit tests for the per-shard partial tallies (DESIGN.md §13) that feed
// PopulationSample/ContentSample ground truth in sharded campaigns.
#include "measure/shard_tally.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ipfs::measure {
namespace {

TEST(ShardTally, FoldOfEmptySpanIsZero) {
  EXPECT_EQ(fold(std::span<const PopulationTally>{}).online, 0u);
  EXPECT_EQ(fold(std::span<const ContentTally>{}).true_records, 0u);
}

TEST(ShardTally, FoldSumsPartialsInShardOrder) {
  const std::vector<PopulationTally> population = {{3}, {0}, {41}, {7}};
  EXPECT_EQ(fold(std::span<const PopulationTally>(population)).online, 51u);

  const std::vector<ContentTally> content = {{10}, {2}, {0}};
  EXPECT_EQ(fold(std::span<const ContentTally>(content)).true_records, 12u);
}

TEST(ShardTally, FoldMatchesUnshardedSumForAnyPartition) {
  // Shard-count invariance in miniature: however a fixed per-peer online
  // predicate is partitioned into contiguous slices, the fold equals the
  // flat sum.
  constexpr std::size_t kPeers = 97;
  const auto online = [](std::size_t peer) { return peer % 3 != 0; };
  std::size_t flat = 0;
  for (std::size_t peer = 0; peer < kPeers; ++peer) flat += online(peer);

  for (const unsigned shards : {1u, 2u, 5u, 16u, 97u}) {
    std::vector<PopulationTally> partials(shards);
    for (unsigned shard = 0; shard < shards; ++shard) {
      const std::size_t first = kPeers * shard / shards;
      const std::size_t last = kPeers * (shard + 1) / shards;
      for (std::size_t peer = first; peer < last; ++peer) {
        partials[shard].online += online(peer);
      }
    }
    EXPECT_EQ(fold(std::span<const PopulationTally>(partials)).online, flat)
        << "shards=" << shards;
  }
}

TEST(ShardTally, MergeAccumulates) {
  PopulationTally population{5};
  population.merge(PopulationTally{7});
  EXPECT_EQ(population.online, 12u);

  ContentTally content{1};
  content.merge(ContentTally{0});
  content.merge(ContentTally{9});
  EXPECT_EQ(content.true_records, 10u);
}

}  // namespace
}  // namespace ipfs::measure
