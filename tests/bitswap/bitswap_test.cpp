#include "bitswap/bitswap.hpp"

#include <gtest/gtest.h>

#include "../testing/fidelity.hpp"

namespace ipfs::bitswap {
namespace {

using common::kSecond;
using ipfs::testing::FidelityNet;

TEST(Bitswap, StoreBasics) {
  sim::Simulation sim;
  net::Network network(sim, common::Rng(1));
  BitswapEngine engine(network, p2p::PeerId::from_seed(1));
  const Cid cid = Cid::from_seed(7);
  EXPECT_FALSE(engine.has_block(cid));
  engine.add_block(cid);
  EXPECT_TRUE(engine.has_block(cid));
  EXPECT_EQ(engine.store_size(), 1u);
}

TEST(Bitswap, BlockTransfersBetweenConnectedNodes) {
  FidelityNet net;
  auto& provider = net.add_node();
  auto& requester = net.add_node();
  net.bootstrap_all();

  const Cid cid = Cid::from_seed(42);
  provider.bitswap().add_block(cid);

  bool received = false;
  requester.bitswap().want_block(provider.id(), cid,
                                 [&](const Cid& got) { received = got == cid; });
  net.sim().run_until(net.sim().now() + 10 * kSecond);
  EXPECT_TRUE(received);
  EXPECT_TRUE(requester.bitswap().has_block(cid));
  EXPECT_EQ(requester.bitswap().pending_wants(), 0u);
}

TEST(Bitswap, LedgersTrackExchange) {
  FidelityNet net;
  auto& provider = net.add_node();
  auto& requester = net.add_node();
  net.bootstrap_all();

  const Cid cid = Cid::from_seed(42);
  provider.bitswap().add_block(cid);
  requester.bitswap().want_block(provider.id(), cid, {});
  net.sim().run_until(net.sim().now() + 10 * kSecond);

  const Ledger* provider_ledger = provider.bitswap().ledger_for(requester.id());
  ASSERT_NE(provider_ledger, nullptr);
  EXPECT_EQ(provider_ledger->blocks_sent, 1u);
  EXPECT_EQ(provider_ledger->bytes_sent, BitswapEngine::kBlockSize);

  const Ledger* requester_ledger = requester.bitswap().ledger_for(provider.id());
  ASSERT_NE(requester_ledger, nullptr);
  EXPECT_EQ(requester_ledger->blocks_received, 1u);
}

TEST(Bitswap, MissingBlockNeverDelivers) {
  FidelityNet net;
  auto& provider = net.add_node();
  auto& requester = net.add_node();
  net.bootstrap_all();

  bool received = false;
  requester.bitswap().want_block(provider.id(), Cid::from_seed(404),
                                 [&](const Cid&) { received = true; });
  net.sim().run_until(net.sim().now() + 30 * kSecond);
  EXPECT_FALSE(received);
  EXPECT_EQ(requester.bitswap().pending_wants(), 1u);
}

TEST(Bitswap, CancelWantsDropsOnlyThatPeersWants) {
  FidelityNet net;
  auto& provider = net.add_node();
  auto& other = net.add_node();
  auto& requester = net.add_node();
  net.bootstrap_all();

  bool fired = false;
  requester.bitswap().want_block(provider.id(), Cid::from_seed(404),
                                 [&](const Cid&) { fired = true; });
  requester.bitswap().want_block(other.id(), Cid::from_seed(405), {});
  ASSERT_EQ(requester.bitswap().pending_wants(), 2u);

  requester.bitswap().cancel_wants(provider.id());
  EXPECT_EQ(requester.bitswap().pending_wants(), 1u);
  // The dropped callback is destroyed without firing, even if the block
  // shows up later.
  provider.bitswap().add_block(Cid::from_seed(404));
  net.sim().run_until(net.sim().now() + 10 * kSecond);
  EXPECT_FALSE(fired);

  requester.bitswap().cancel_wants(other.id());
  EXPECT_EQ(requester.bitswap().pending_wants(), 0u);
}

TEST(Bitswap, CancelOnDisconnectKeepsPendingWantsBoundedUnderChurn) {
  // The leak satellite: a fetcher that wants blocks from peers that keep
  // departing must not accumulate wanted_ entries forever — cancelling on
  // each disconnect keeps pending_wants bounded by the in-flight set.
  FidelityNet net;
  auto& requester = net.add_node();
  net.bootstrap_all();
  for (std::uint64_t round = 0; round < 50; ++round) {
    const p2p::PeerId peer = p2p::PeerId::from_seed(1000 + round);
    requester.bitswap().want_block(peer, Cid::from_seed(2000 + round), {});
    // The peer goes away without ever answering.
    requester.bitswap().cancel_wants(peer);
    EXPECT_EQ(requester.bitswap().pending_wants(), 0u) << "round " << round;
  }
}

TEST(Bitswap, RemoveBlockEvictsFromTheStore) {
  sim::Simulation sim;
  net::Network network(sim, common::Rng(1));
  BitswapEngine engine(network, p2p::PeerId::from_seed(1));
  const Cid cid = Cid::from_seed(7);
  EXPECT_FALSE(engine.remove_block(cid));  // absent: no-op
  engine.add_block(cid);
  EXPECT_TRUE(engine.remove_block(cid));
  EXPECT_FALSE(engine.has_block(cid));
  EXPECT_EQ(engine.store_size(), 0u);
}

TEST(Bitswap, UnsolicitedBlocksDropped) {
  sim::Simulation sim;
  net::Network network(sim, common::Rng(1));
  BitswapEngine engine(network, p2p::PeerId::from_seed(1));
  BitswapMessage message;
  message.blocks.push_back(Cid::from_seed(5));
  net::Message envelope;
  envelope.protocol = std::string(p2p::protocols::kBitswap120);
  envelope.body = message;
  EXPECT_TRUE(engine.handle_message(p2p::PeerId::from_seed(2), envelope));
  EXPECT_FALSE(engine.has_block(Cid::from_seed(5)));
}

TEST(Bitswap, IgnoresForeignProtocols) {
  sim::Simulation sim;
  net::Network network(sim, common::Rng(1));
  BitswapEngine engine(network, p2p::PeerId::from_seed(1));
  net::Message envelope;
  envelope.protocol = "/ipfs/ping/1.0.0";
  EXPECT_FALSE(engine.handle_message(p2p::PeerId::from_seed(2), envelope));
}

TEST(Bitswap, MultiHopDistribution) {
  // a has the block; b fetches from a; c fetches from b.
  FidelityNet net;
  auto& a = net.add_node();
  auto& b = net.add_node();
  auto& c = net.add_node();
  net.bootstrap_all();
  // Ensure b<->c are connected as well (bootstrap wires everyone to a).
  net.network().dial(c.id(), b.id());
  net.sim().run_until(net.sim().now() + 5 * kSecond);

  const Cid cid = Cid::from_seed(1);
  a.bitswap().add_block(cid);
  b.bitswap().want_block(a.id(), cid, {});
  net.sim().run_until(net.sim().now() + 10 * kSecond);
  ASSERT_TRUE(b.bitswap().has_block(cid));

  bool c_received = false;
  c.bitswap().want_block(b.id(), cid, [&](const Cid&) { c_received = true; });
  net.sim().run_until(net.sim().now() + 10 * kSecond);
  EXPECT_TRUE(c_received);
}

}  // namespace
}  // namespace ipfs::bitswap
