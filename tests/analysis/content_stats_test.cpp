// analysis::content_stats: provide aggregates, provider-record
// availability over time, records-at-vantage coverage, and fetch
// success / latency CDFs (DESIGN.md §11).
#include <gtest/gtest.h>

#include <vector>

#include "analysis/content_stats.hpp"

namespace ipfs::analysis {
namespace {

using common::kHour;
using common::kMinute;
using measure::ContentSample;
using measure::FetchSample;
using measure::ProvideSample;

TEST(ContentStats, ProvideAggregatesCountKeysProvidersAndRepublishes) {
  const std::vector<ProvideSample> provides = {
      {.at = 0, .key = 3, .provider = 1, .republish = false},
      {.at = 1000, .key = 3, .provider = 2, .republish = false},
      {.at = 2000, .key = 7, .provider = 1, .republish = false},
      {.at = 3000, .key = 3, .provider = 1, .republish = true},
  };
  const ProvideStats stats = compute_provide_stats(provides);
  EXPECT_EQ(stats.provides, 4u);
  EXPECT_EQ(stats.republishes, 1u);
  EXPECT_EQ(stats.distinct_keys, 2u);
  EXPECT_EQ(stats.distinct_providers, 2u);
  EXPECT_DOUBLE_EQ(stats.provides_per_key, 2.0);
}

TEST(ContentStats, ProvideAggregatesOfNothingAreZero) {
  const ProvideStats stats = compute_provide_stats({});
  EXPECT_EQ(stats.provides, 0u);
  EXPECT_EQ(stats.distinct_keys, 0u);
  EXPECT_DOUBLE_EQ(stats.provides_per_key, 0.0);
}

TEST(ContentStats, AvailabilityCountsLiveRecordsWithHalfOpenTtls) {
  // Two records: [0, 2h) and [1h, 3h).  The grid hits 0, 1h, 2h, 3h.
  const std::vector<ProvideSample> provides = {
      {.at = 0, .key = 1, .provider = 1},
      {.at = 1 * kHour, .key = 2, .provider = 2},
  };
  const auto series =
      provider_availability_over_time(provides, /*ttl=*/2 * kHour,
                                      /*step=*/1 * kHour, 0, 3 * kHour);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[0].count, 1u);  // first record just published
  EXPECT_EQ(series[1].count, 2u);  // both alive
  EXPECT_EQ(series[2].count, 1u);  // first expired at exactly 2h (half-open)
  EXPECT_EQ(series[3].count, 0u);  // both expired
  EXPECT_EQ(series[1].at, 1 * kHour);
}

TEST(ContentStats, AvailabilityRejectsDegenerateGrids) {
  EXPECT_TRUE(provider_availability_over_time({}, 0, kHour, 0, kHour).empty());
  EXPECT_TRUE(provider_availability_over_time({}, kHour, 0, 0, kHour).empty());
  EXPECT_TRUE(provider_availability_over_time({}, kHour, kHour, kHour, 0).empty());
}

TEST(ContentStats, RepublishKeepsAvailabilityUp) {
  // One provider republishing every hour with a 2 h TTL never expires.
  std::vector<ProvideSample> provides;
  for (int cycle = 0; cycle < 6; ++cycle) {
    provides.push_back({.at = cycle * kHour, .key = 1, .provider = 1,
                        .republish = cycle > 0});
  }
  const auto series = provider_availability_over_time(
      provides, /*ttl=*/2 * kHour, /*step=*/30 * kMinute, 0, 5 * kHour);
  for (const CountSample& sample : series) {
    EXPECT_GE(sample.count, 1u) << "at=" << sample.at;
  }
}

TEST(ContentStats, RecordCoverageDividesVantageByTruth) {
  const std::vector<ContentSample> samples = {
      {.at = 0, .vantage_records = 0, .vantage_keys = 0, .true_records = 0},
      {.at = kHour, .vantage_records = 80, .vantage_keys = 40, .true_records = 100},
      {.at = 2 * kHour, .vantage_records = 120, .vantage_keys = 50,
       .true_records = 100},
  };
  const auto series = record_coverage(samples);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].coverage, 0.0);  // empty truth: defined as 0
  EXPECT_DOUBLE_EQ(series[1].coverage, 0.8);
  // Stale not-yet-expired records can push coverage above 1.
  EXPECT_DOUBLE_EQ(series[2].coverage, 1.2);
  EXPECT_EQ(series[1].vantage_keys, 40u);
}

TEST(ContentStats, FetchStatsSeparateLookupAndServeOutcomes) {
  const std::vector<FetchSample> fetches = {
      {.at = 0, .key = 1, .found_provider = true, .served = true, .latency = 120},
      {.at = 1, .key = 2, .found_provider = true, .served = true, .latency = 80},
      {.at = 2, .key = 3, .found_provider = true, .served = false, .latency = 0},
      {.at = 3, .key = 4, .found_provider = false, .served = false, .latency = 0},
  };
  const FetchStats stats = compute_fetch_stats(fetches);
  EXPECT_EQ(stats.fetches, 4u);
  EXPECT_EQ(stats.found_provider, 3u);
  EXPECT_EQ(stats.served, 2u);
  EXPECT_DOUBLE_EQ(stats.lookup_success_rate, 0.75);
  EXPECT_DOUBLE_EQ(stats.fetch_success_rate, 0.5);
  EXPECT_DOUBLE_EQ(stats.mean_latency_ms, 100.0);
  EXPECT_DOUBLE_EQ(stats.median_latency_ms, 100.0);
  // The latency CDF covers served fetches only.
  EXPECT_EQ(stats.latency_cdf.sorted_samples().size(), 2u);
  EXPECT_DOUBLE_EQ(stats.latency_cdf.fraction_at_most(80.0), 0.5);
  EXPECT_DOUBLE_EQ(stats.latency_cdf.fraction_at_most(120.0), 1.0);
}

TEST(ContentStats, FetchStatsOfNothingAreZero) {
  const FetchStats stats = compute_fetch_stats({});
  EXPECT_EQ(stats.fetches, 0u);
  EXPECT_DOUBLE_EQ(stats.lookup_success_rate, 0.0);
  EXPECT_DOUBLE_EQ(stats.fetch_success_rate, 0.0);
  EXPECT_TRUE(stats.latency_cdf.sorted_samples().empty());
}

}  // namespace
}  // namespace ipfs::analysis
