#include "analysis/classification.hpp"

#include <gtest/gtest.h>

namespace ipfs::analysis {
namespace {

using common::kHour;
using common::kMinute;
using common::kSecond;
using measure::Dataset;
using measure::PeerIndex;

/// Add a peer with `count` connections of `each` duration.
PeerIndex add_peer_with_conns(Dataset& dataset, std::uint64_t seed, int count,
                              common::SimDuration each, bool server = false) {
  const PeerIndex index = dataset.intern(p2p::PeerId::from_seed(seed), 0);
  dataset.record(index).ever_dht_server = server;
  for (int i = 0; i < count; ++i) {
    const auto start = static_cast<common::SimTime>(i) * (each + kMinute);
    dataset.add_connection({index, start, start + each, p2p::Direction::kInbound,
                            p2p::CloseReason::kRemoteClose});
  }
  return index;
}

TEST(Classify, PaperDefinitions) {
  ClassifierConfig config;
  EXPECT_EQ(classify({0, 25 * kHour, 1, false}, config), PeerClass::kHeavy);
  EXPECT_EQ(classify({0, 3 * kHour, 1, false}, config), PeerClass::kNormal);
  EXPECT_EQ(classify({0, kHour, 5, false}, config), PeerClass::kLight);
  EXPECT_EQ(classify({0, kHour, 2, false}, config), PeerClass::kOneTime);
  EXPECT_EQ(classify({0, kHour, 1, false}, config), PeerClass::kOneTime);
}

TEST(Classify, BoundaryCases) {
  ClassifierConfig config;
  // Exactly 24 h is NOT heavy (paper: "> 24 h").
  EXPECT_EQ(classify({0, 24 * kHour, 1, false}, config), PeerClass::kNormal);
  // Exactly 2 h is not normal; with >= 3 connections it is light.
  EXPECT_EQ(classify({0, 2 * kHour, 3, false}, config), PeerClass::kLight);
  EXPECT_EQ(classify({0, 2 * kHour, 2, false}, config), PeerClass::kOneTime);
  // Exactly 3 connections crosses into light.
  EXPECT_EQ(classify({0, kMinute, 3, false}, config), PeerClass::kLight);
}

TEST(ExtractFeatures, MaxDurationAndCount) {
  Dataset dataset;
  const PeerIndex index = dataset.intern(p2p::PeerId::from_seed(1), 0);
  dataset.add_connection({index, 0, 10 * kSecond, p2p::Direction::kInbound,
                          p2p::CloseReason::kRemoteClose});
  dataset.add_connection({index, 0, 90 * kSecond, p2p::Direction::kInbound,
                          p2p::CloseReason::kRemoteClose});
  const auto features = extract_features(dataset);
  ASSERT_EQ(features.size(), 1u);
  EXPECT_EQ(features[0].max_duration, 90 * kSecond);
  EXPECT_EQ(features[0].connection_count, 2u);
}

TEST(ExtractFeatures, NeverConnectedExcluded) {
  Dataset dataset;
  dataset.intern(p2p::PeerId::from_seed(1), 0);
  EXPECT_TRUE(extract_features(dataset).empty());
}

TEST(ClassifyPeers, TableIvShape) {
  Dataset dataset;
  std::uint64_t seed = 1;
  for (int i = 0; i < 5; ++i) {
    add_peer_with_conns(dataset, seed++, 1, 30 * kHour, i % 2 == 0);  // heavy
  }
  for (int i = 0; i < 7; ++i) {
    add_peer_with_conns(dataset, seed++, 2, 5 * kHour);  // normal
  }
  for (int i = 0; i < 9; ++i) {
    add_peer_with_conns(dataset, seed++, 6, 10 * kMinute, true);  // light
  }
  for (int i = 0; i < 11; ++i) {
    add_peer_with_conns(dataset, seed++, 1, 10 * kMinute);  // one-time
  }
  const auto counts = classify_peers(dataset);
  EXPECT_EQ(counts.peers[static_cast<std::size_t>(PeerClass::kHeavy)], 5u);
  EXPECT_EQ(counts.peers[static_cast<std::size_t>(PeerClass::kNormal)], 7u);
  EXPECT_EQ(counts.peers[static_cast<std::size_t>(PeerClass::kLight)], 9u);
  EXPECT_EQ(counts.peers[static_cast<std::size_t>(PeerClass::kOneTime)], 11u);
  EXPECT_EQ(counts.total_peers(), 32u);
  EXPECT_EQ(counts.dht_servers[static_cast<std::size_t>(PeerClass::kHeavy)], 3u);
  EXPECT_EQ(counts.dht_servers[static_cast<std::size_t>(PeerClass::kLight)], 9u);
}

TEST(ConnectionCdfs, SplitsByRole) {
  Dataset dataset;
  add_peer_with_conns(dataset, 1, 1, kHour, /*server=*/true);
  add_peer_with_conns(dataset, 2, 1, 10 * kHour, /*server=*/false);
  const auto all = connection_cdfs(dataset, -1);
  const auto servers = connection_cdfs(dataset, 1);
  const auto clients = connection_cdfs(dataset, 0);
  EXPECT_EQ(all.max_duration_s.size(), 2u);
  EXPECT_EQ(servers.max_duration_s.size(), 1u);
  EXPECT_EQ(clients.max_duration_s.size(), 1u);
  // The server's (grouped) max duration is 1 h.
  EXPECT_DOUBLE_EQ(servers.max_duration_s.sorted_samples()[0], 3600.0);
}

TEST(ConnectionCdfs, ThirtySecondGrouping) {
  Dataset dataset;
  const PeerIndex index = dataset.intern(p2p::PeerId::from_seed(1), 0);
  dataset.add_connection({index, 0, 44 * kSecond, p2p::Direction::kInbound,
                          p2p::CloseReason::kRemoteClose});
  const auto cdfs = connection_cdfs(dataset);
  // 44 s rounds up to the 60 s bucket (Fig. 7 groups into 30 s intervals).
  EXPECT_DOUBLE_EQ(cdfs.max_duration_s.sorted_samples()[0], 60.0);
}

TEST(ConnectionCdfs, FractionsMatchClassShares) {
  Dataset dataset;
  std::uint64_t seed = 1;
  for (int i = 0; i < 60; ++i) add_peer_with_conns(dataset, seed++, 1, 30 * kMinute);
  for (int i = 0; i < 40; ++i) add_peer_with_conns(dataset, seed++, 1, 30 * kHour);
  const auto cdfs = connection_cdfs(dataset);
  EXPECT_NEAR(cdfs.max_duration_s.fraction_at_most(3600.0), 0.6, 1e-9);
  EXPECT_NEAR(cdfs.connection_count.fraction_at_most(1.0), 1.0, 1e-9);
}

TEST(PeerClassNames, Stable) {
  EXPECT_EQ(to_string(PeerClass::kHeavy), "Heavy");
  EXPECT_EQ(to_string(PeerClass::kNormal), "Normal");
  EXPECT_EQ(to_string(PeerClass::kLight), "Light");
  EXPECT_EQ(to_string(PeerClass::kOneTime), "One-time");
}

}  // namespace
}  // namespace ipfs::analysis
