#include "analysis/metadata.hpp"

#include <gtest/gtest.h>

#include "p2p/protocols.hpp"

namespace ipfs::analysis {
namespace {

namespace proto = p2p::protocols;
using measure::Dataset;
using measure::PeerIndex;

PeerIndex add_peer(Dataset& dataset, std::uint64_t seed, const std::string& agent,
                   const std::vector<std::string>& protocols = {}) {
  const PeerIndex index = dataset.intern(p2p::PeerId::from_seed(seed), 0);
  if (!agent.empty()) dataset.record(index).agent_history.push_back({0, agent});
  for (const std::string& protocol : protocols) {
    dataset.record(index).protocols_ever.insert(protocol);
    dataset.record(index).protocol_events.push_back({0, protocol, true});
    if (proto::marks_dht_server(protocol)) dataset.record(index).ever_dht_server = true;
  }
  return index;
}

TEST(AgentGroupLabel, GoIpfsCollapsesToVersion) {
  EXPECT_EQ(agent_group_label("go-ipfs/0.11.0/0c2f9d5"), "0.11.0");
  EXPECT_EQ(agent_group_label("go-ipfs/0.11.0-dev/0c2f9d5-dirty"), "0.11.0-dev");
  EXPECT_EQ(agent_group_label("hydra-booster/0.7.4"), "hydra-booster/0.7.4");
  EXPECT_EQ(agent_group_label("storm"), "storm");
  EXPECT_EQ(agent_group_label(""), "missing");
}

TEST(AgentHistogram, CountsFirstObservedAgent) {
  Dataset dataset;
  add_peer(dataset, 1, "go-ipfs/0.11.0/a");
  add_peer(dataset, 2, "go-ipfs/0.11.0/b");  // same version, other commit
  add_peer(dataset, 3, "go-ipfs/0.8.0/c");
  add_peer(dataset, 4, "storm");
  add_peer(dataset, 5, "");
  const auto histogram = agent_histogram(dataset);
  EXPECT_EQ(histogram.count("0.11.0"), 2u);
  EXPECT_EQ(histogram.count("0.8.0"), 1u);
  EXPECT_EQ(histogram.count("storm"), 1u);
  EXPECT_EQ(histogram.count("missing"), 1u);
  EXPECT_EQ(histogram.total(), 5u);
}

TEST(ProtocolHistogram, CountsPerPeerOnce) {
  Dataset dataset;
  add_peer(dataset, 1, "a", {std::string(proto::kPing), std::string(proto::kKad)});
  add_peer(dataset, 2, "b", {std::string(proto::kPing)});
  const auto histogram = protocol_histogram(dataset);
  EXPECT_EQ(histogram.count(std::string(proto::kPing)), 2u);
  EXPECT_EQ(histogram.count(std::string(proto::kKad)), 1u);
}

TEST(MetadataSummary, CategorisesAgents) {
  Dataset dataset;
  add_peer(dataset, 1, "go-ipfs/0.11.0/a", {std::string(proto::kBitswap120)});
  add_peer(dataset, 2, "go-ipfs/0.8.0/b", {std::string(proto::kSbptp)});
  add_peer(dataset, 3, "hydra-booster/0.7.4", {std::string(proto::kKad)});
  add_peer(dataset, 4, "nebula-crawler/1.1.0");
  add_peer(dataset, 5, "ipfs crawler");
  add_peer(dataset, 6, "storm");
  add_peer(dataset, 7, "");
  const auto summary = summarize_metadata(dataset);
  EXPECT_EQ(summary.total_pids, 7u);
  EXPECT_EQ(summary.go_ipfs_pids, 2u);
  EXPECT_EQ(summary.hydra_pids, 1u);
  EXPECT_EQ(summary.crawler_pids, 2u);
  EXPECT_EQ(summary.other_agent_pids, 1u);
  EXPECT_EQ(summary.missing_agent_pids, 1u);
  EXPECT_EQ(summary.bitswap_supporters, 1u);
  EXPECT_EQ(summary.kad_supporters, 1u);
  EXPECT_EQ(summary.go_ipfs_version_count, 2u);
  EXPECT_EQ(summary.distinct_agent_strings, 6u);
}

TEST(VersionChanges, ClassifiesHistoryTransitions) {
  Dataset dataset;
  const PeerIndex upgrader = add_peer(dataset, 1, "go-ipfs/0.10.0/a");
  dataset.record(upgrader).agent_history.push_back({10, "go-ipfs/0.11.0/b"});
  const PeerIndex downgrader = add_peer(dataset, 2, "go-ipfs/0.11.0/a");
  dataset.record(downgrader).agent_history.push_back({10, "go-ipfs/0.10.0/b"});
  const PeerIndex changer = add_peer(dataset, 3, "go-ipfs/0.11.0/a-dirty");
  dataset.record(changer).agent_history.push_back({10, "go-ipfs/0.11.0/b-dirty"});
  const PeerIndex convert = add_peer(dataset, 4, "rust-libp2p/0.40.0");
  dataset.record(convert).agent_history.push_back({10, "go-ipfs/0.11.0/x"});
  add_peer(dataset, 5, "go-ipfs/0.11.0/stable");  // no change

  const auto counts = count_version_changes(dataset);
  EXPECT_EQ(counts.upgrades, 1u);
  EXPECT_EQ(counts.downgrades, 1u);
  EXPECT_EQ(counts.changes, 1u);
  EXPECT_EQ(counts.total(), 3u);
  EXPECT_EQ(counts.into_go_ipfs, 1u);
  EXPECT_EQ(counts.main_to_main, 2u);
  EXPECT_EQ(counts.dirty_to_dirty, 1u);
}

TEST(VersionChanges, MultipleChangesPerPeer) {
  Dataset dataset;
  const PeerIndex peer = add_peer(dataset, 1, "go-ipfs/0.10.0/a");
  dataset.record(peer).agent_history.push_back({10, "go-ipfs/0.11.0/b"});
  dataset.record(peer).agent_history.push_back({20, "go-ipfs/0.12.0/c"});
  dataset.record(peer).agent_history.push_back({30, "go-ipfs/0.11.0/d"});
  const auto counts = count_version_changes(dataset);
  EXPECT_EQ(counts.upgrades, 2u);
  EXPECT_EQ(counts.downgrades, 1u);
}

TEST(ProtocolFlapping, CountsTogglesBeyondInitialAnnouncement) {
  Dataset dataset;
  const std::string kad(proto::kKad);
  // Peer 1: announced once, never changed -> not a flapper.
  add_peer(dataset, 1, "a", {kad});
  // Peer 2: announce, retract, announce -> 2 toggles after the initial one.
  const PeerIndex flapper = add_peer(dataset, 2, "b", {kad});
  dataset.record(flapper).protocol_events.push_back({10, kad, false});
  dataset.record(flapper).protocol_events.push_back({20, kad, true});
  const auto stats = protocol_flapping(dataset, proto::kKad);
  EXPECT_EQ(stats.peers, 1u);
  EXPECT_EQ(stats.events, 2u);
}

TEST(Anomalies, DetectsStormFingerprint) {
  Dataset dataset;
  // Disguised storm: go-ipfs agent, sbptp, no bitswap.
  add_peer(dataset, 1, "go-ipfs/0.8.0/x",
           {std::string(proto::kSbptp), std::string(proto::kPing)});
  // Honest go-ipfs.
  add_peer(dataset, 2, "go-ipfs/0.11.0/y",
           {std::string(proto::kBitswap120), std::string(proto::kPing)});
  // Overt storm + the ethereum curiosity.
  add_peer(dataset, 3, "storm", {std::string(proto::kSfst1)});
  add_peer(dataset, 4, "go-ethereum/v1.10.13", {std::string(proto::kPing)});
  const auto report = find_anomalies(dataset);
  EXPECT_EQ(report.go_ipfs_without_bitswap, 1u);
  EXPECT_EQ(report.go_ipfs_with_sbptp, 1u);
  EXPECT_EQ(report.storm_agents, 1u);
  EXPECT_EQ(report.ethereum_agents, 1u);
}

TEST(Anomalies, PeerWithoutProtocolInfoNotFlagged) {
  Dataset dataset;
  add_peer(dataset, 1, "go-ipfs/0.11.0/x");  // identify gave agent only
  const auto report = find_anomalies(dataset);
  EXPECT_EQ(report.go_ipfs_without_bitswap, 0u);
}

}  // namespace
}  // namespace ipfs::analysis
