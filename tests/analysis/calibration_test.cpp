// Unit tests for the churn-calibration module (analysis/calibration.hpp):
// censored-MLE fitter recovery on synthetic draws from each distribution
// family, KS-based family selection with the parsimony tie-break, the
// goodness-of-fit statistics against analytic oracles, the multi-document
// splitter, and the strict malformed-trace corpus.
#include "analysis/calibration.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "scenario/churn.hpp"

namespace ipfs::analysis::calibrate {
namespace {

using scenario::SessionDistribution;

/// `count` uncensored draws from `dist` (deterministic per seed).
std::vector<Observation> draw(const SessionDistribution& dist,
                              std::uint64_t seed, std::size_t count) {
  common::Rng rng(seed);
  std::vector<Observation> sample;
  sample.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    sample.push_back({dist.sample(rng), false});
  }
  return sample;
}

/// Right-censor every draw above `horizon_ms` at the horizon, as a trace
/// that ends at a fixed time would.
std::vector<Observation> censor_at(std::vector<Observation> sample,
                                   double horizon_ms) {
  for (Observation& obs : sample) {
    if (obs.value_ms > horizon_ms) {
      obs.value_ms = horizon_ms;
      obs.censored = true;
    }
  }
  return sample;
}

constexpr std::uint64_t kSeeds[] = {7, 20211213, 987654321};

// ---- fitter recovery (3 seeds per family) ----------------------------------

TEST(CalibrationFit, RecoversExponentialParameters) {
  const auto truth = SessionDistribution::exponential(3.6e6);
  for (const std::uint64_t seed : kSeeds) {
    const auto fit = fit_exponential(draw(truth, seed, 4000));
    ASSERT_TRUE(fit.ok);
    EXPECT_NEAR(fit.dist.mean_ms, truth.mean_ms, 0.05 * truth.mean_ms)
        << "seed " << seed;
  }
}

TEST(CalibrationFit, RecoversWeibullParameters) {
  const auto truth = SessionDistribution::weibull(0.55, 7.2e6);
  for (const std::uint64_t seed : kSeeds) {
    const auto fit = fit_weibull(draw(truth, seed, 4000));
    ASSERT_TRUE(fit.ok);
    EXPECT_NEAR(fit.dist.shape, truth.shape, 0.05) << "seed " << seed;
    EXPECT_NEAR(fit.dist.scale_ms, truth.scale_ms, 0.10 * truth.scale_ms)
        << "seed " << seed;
  }
}

TEST(CalibrationFit, RecoversLognormalParameters) {
  const auto truth = SessionDistribution::lognormal(7.2e6, 1.1);
  for (const std::uint64_t seed : kSeeds) {
    const auto fit = fit_lognormal(draw(truth, seed, 4000));
    ASSERT_TRUE(fit.ok);
    EXPECT_NEAR(fit.dist.median_ms, truth.median_ms, 0.10 * truth.median_ms)
        << "seed " << seed;
    EXPECT_NEAR(fit.dist.sigma, truth.sigma, 0.05 * truth.sigma)
        << "seed " << seed;
  }
}

TEST(CalibrationFit, SelectsTheTrueFamilyByKs) {
  const SessionDistribution families[] = {
      SessionDistribution::exponential(3.6e6),
      SessionDistribution::weibull(0.55, 7.2e6),
      SessionDistribution::lognormal(7.2e6, 1.1),
  };
  for (const SessionDistribution& truth : families) {
    for (const std::uint64_t seed : kSeeds) {
      const auto selection = select_family(draw(truth, seed, 4000));
      ASSERT_TRUE(selection.any_ok());
      EXPECT_EQ(selection.selected, scenario::to_string(truth.kind))
          << "seed " << seed;
    }
  }
}

// ---- right-censoring -------------------------------------------------------

TEST(CalibrationFit, CensoredExponentialMleIsUnbiased) {
  // Censor at the mean: ~37% of the sample is right-censored.  The
  // censored MLE (total exposure / completed events) must still recover
  // the mean; the naive mean over the recorded values sits far below it.
  const auto truth = SessionDistribution::exponential(3.6e6);
  for (const std::uint64_t seed : kSeeds) {
    const auto sample = censor_at(draw(truth, seed, 4000), truth.mean_ms);
    double naive = 0.0;
    for (const Observation& obs : sample) naive += obs.value_ms;
    naive /= static_cast<double>(sample.size());

    const auto fit = fit_exponential(sample);
    ASSERT_TRUE(fit.ok);
    EXPECT_NEAR(fit.dist.mean_ms, truth.mean_ms, 0.08 * truth.mean_ms)
        << "seed " << seed;
    EXPECT_LT(naive, 0.75 * truth.mean_ms);  // the bias the MLE corrects
  }
}

TEST(CalibrationFit, CensoredWeibullMleRecoversTheShape) {
  const auto truth = SessionDistribution::weibull(0.55, 7.2e6);
  for (const std::uint64_t seed : kSeeds) {
    const auto sample =
        censor_at(draw(truth, seed, 4000), truth.analytic_mean() * 2.0);
    const auto fit = fit_weibull(sample);
    ASSERT_TRUE(fit.ok);
    EXPECT_NEAR(fit.dist.shape, truth.shape, 0.08) << "seed " << seed;
    EXPECT_NEAR(fit.dist.scale_ms, truth.scale_ms, 0.15 * truth.scale_ms)
        << "seed " << seed;
  }
}

TEST(CalibrationFit, CensoredLognormalEmRecoversTheParameters) {
  const auto truth = SessionDistribution::lognormal(7.2e6, 1.1);
  for (const std::uint64_t seed : kSeeds) {
    const auto sample =
        censor_at(draw(truth, seed, 4000), truth.analytic_mean() * 2.0);
    const auto fit = fit_lognormal(sample);
    ASSERT_TRUE(fit.ok);
    EXPECT_NEAR(fit.dist.median_ms, truth.median_ms, 0.12 * truth.median_ms)
        << "seed " << seed;
    EXPECT_NEAR(fit.dist.sigma, truth.sigma, 0.10 * truth.sigma)
        << "seed " << seed;
  }
}

TEST(CalibrationFit, TooFewUncensoredObservationsFailsCleanly) {
  std::vector<Observation> sample;
  for (int i = 0; i < 10; ++i) sample.push_back({1000.0 * (i + 1), true});
  sample.push_back({5000.0, false});
  for (const FitResult& fit :
       {fit_exponential(sample), fit_weibull(sample), fit_lognormal(sample)}) {
    EXPECT_FALSE(fit.ok);
    EXPECT_NE(fit.note.find("uncensored"), std::string::npos);
  }
  EXPECT_FALSE(select_family(sample).any_ok());
}

// ---- goodness-of-fit statistics --------------------------------------------

TEST(CalibrationStats, CdfMatchesTheAnalyticMedianOracle) {
  const SessionDistribution families[] = {
      SessionDistribution::exponential(3.6e6),
      SessionDistribution::weibull(0.55, 7.2e6),
      SessionDistribution::lognormal(7.2e6, 1.1),
  };
  for (const SessionDistribution& dist : families) {
    EXPECT_NEAR(distribution_cdf(dist, dist.analytic_median()), 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(distribution_cdf(dist, 0.0), 0.0);
  }
}

TEST(CalibrationStats, KsIsSmallForTheTrueFamilyAndLargeOtherwise) {
  const auto truth = SessionDistribution::weibull(0.55, 7.2e6);
  const auto sample = draw(truth, 42, 4000);
  EXPECT_LT(ks_statistic(sample, truth), 0.05);
  EXPECT_GT(ks_statistic(sample, SessionDistribution::exponential(1000.0)),
            0.5);
}

TEST(CalibrationStats, TwoSampleKsBounds) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(two_sample_ks(a, a), 0.0);
  EXPECT_DOUBLE_EQ(two_sample_ks({1, 2, 3}, {100, 200, 300}), 1.0);
  EXPECT_NEAR(two_sample_ks({1, 2, 3, 4}, {3, 4, 5, 6}), 0.5, 1e-12);
}

// ---- the document splitter -------------------------------------------------

TEST(CalibrationTrace, FirstDocumentStopsAtTheFirstBalancedClose) {
  const std::string text =
      "{\n  \"a\": \"}{ not a brace\",\n  \"b\": [1, 2]\n}\n{\n  \"second\": 1\n}\n";
  EXPECT_EQ(first_document(text),
            "{\n  \"a\": \"}{ not a brace\",\n  \"b\": [1, 2]\n}");
}

TEST(CalibrationTrace, FirstDocumentHandlesEscapedQuotes) {
  const std::string text = "{\"a\": \"\\\"}\"}{\"b\": 2}";
  EXPECT_EQ(first_document(text), "{\"a\": \"\\\"}\"}");
}

// ---- the malformed-trace corpus --------------------------------------------

/// A minimal two-peer trace; tests mutate pieces of it.
std::string valid_trace(const std::string& peers_json,
                        const std::string& extra = "") {
  return "{\"vantage\": \"go-ipfs\", \"measurement_start_ms\": 0, "
         "\"measurement_end_ms\": 86400000, \"peers\": [" +
         peers_json + "]" + extra + "}";
}

std::string peer_json(const std::string& overrides = "") {
  return "{\"pid\": \"QmPeer\", \"first_seen_ms\": 1000, "
         "\"last_seen_ms\": 2000" +
         overrides + "}";
}

TEST(CalibrationTrace, ParsesAValidTraceAndSynthesizesConnections) {
  const auto dataset = parse_trace(valid_trace(peer_json()));
  ASSERT_TRUE(dataset.has_value()) << dataset.error();
  EXPECT_EQ(dataset->vantage, "go-ipfs");
  EXPECT_EQ(dataset->peer_count(), 1u);
  // No "connections" array: presence approximated from first/last seen.
  ASSERT_EQ(dataset->connection_count(), 1u);
  EXPECT_EQ(dataset->connections()[0].opened, 1000);
  EXPECT_EQ(dataset->connections()[0].closed, 2000);
}

TEST(CalibrationTrace, ParsesExplicitConnections) {
  const auto dataset = parse_trace(valid_trace(
      peer_json(), ", \"connections\": [{\"peer\": 0, \"opened_ms\": 1000, "
                   "\"closed_ms\": 1500, \"direction\": \"inbound\", "
                   "\"reason\": \"none\"}]"));
  ASSERT_TRUE(dataset.has_value()) << dataset.error();
  ASSERT_EQ(dataset->connection_count(), 1u);
  EXPECT_EQ(dataset->connections()[0].closed, 1500);
}

TEST(CalibrationTrace, RejectsMissingRequiredFields) {
  const auto no_last_seen = parse_trace(valid_trace(
      "{\"pid\": \"QmPeer\", \"first_seen_ms\": 1000}"));
  ASSERT_FALSE(no_last_seen.has_value());
  EXPECT_EQ(no_last_seen.error(),
            "peers[0].last_seen_ms: missing required field");

  const auto no_vantage = parse_trace(
      "{\"measurement_start_ms\": 0, \"measurement_end_ms\": 1, "
      "\"peers\": [" + peer_json() + "]}");
  ASSERT_FALSE(no_vantage.has_value());
  EXPECT_EQ(no_vantage.error(), "vantage: missing required field");
}

TEST(CalibrationTrace, RejectsNonMonotoneSeenTimes) {
  const auto bad = parse_trace(valid_trace(
      "{\"pid\": \"QmPeer\", \"first_seen_ms\": 2000, \"last_seen_ms\": 1000}"));
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), "peers[0].last_seen_ms: must be >= first_seen_ms");
}

TEST(CalibrationTrace, RejectsNonMonotoneMeasurementWindow) {
  const auto bad = parse_trace(
      "{\"vantage\": \"v\", \"measurement_start_ms\": 10, "
      "\"measurement_end_ms\": 5, \"peers\": [" + peer_json() + "]}");
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), "measurement_end_ms: must be >= measurement_start_ms");
}

TEST(CalibrationTrace, RejectsAnEmptyDataset) {
  const auto empty = parse_trace(valid_trace(""));
  ASSERT_FALSE(empty.has_value());
  EXPECT_NE(empty.error().find("dataset is empty"), std::string::npos);
}

TEST(CalibrationTrace, RejectsUnknownFields) {
  const auto top = parse_trace(
      "{\"vantage\": \"v\", \"measurement_start_ms\": 0, "
      "\"measurement_end_ms\": 1, \"peers\": [" + peer_json() + "], "
      "\"bogus\": 1}");
  ASSERT_FALSE(top.has_value());
  EXPECT_EQ(top.error(), "trace: unknown field 'bogus'");

  const auto nested = parse_trace(valid_trace(peer_json(", \"typo\": true")));
  ASSERT_FALSE(nested.has_value());
  EXPECT_EQ(nested.error(), "peers[0]: unknown field 'typo'");
}

TEST(CalibrationTrace, RejectsBadConnections) {
  const auto out_of_range = parse_trace(valid_trace(
      peer_json(),
      ", \"connections\": [{\"peer\": 7, \"opened_ms\": 0, \"closed_ms\": 1}]"));
  ASSERT_FALSE(out_of_range.has_value());
  EXPECT_EQ(out_of_range.error(), "connections[0].peer: index out of range");

  const auto inverted = parse_trace(valid_trace(
      peer_json(),
      ", \"connections\": [{\"peer\": 0, \"opened_ms\": 5, \"closed_ms\": 1}]"));
  ASSERT_FALSE(inverted.has_value());
  EXPECT_EQ(inverted.error(), "connections[0].closed_ms: must be >= opened_ms");
}

TEST(CalibrationTrace, RejectsMalformedJson) {
  const auto bad = parse_trace("{\"vantage\": ");
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().rfind("trace: ", 0), 0u) << bad.error();
}

// ---- the pipeline on a synthetic trace -------------------------------------

TEST(CalibrationRun, EmitsAValidatingRoundTrippingScenario) {
  // 40 peers x 3 sessions each, exponential-ish spacing, explicit
  // connections.  Small but enough for the fitters.
  std::string peers;
  std::string connections;
  for (int p = 0; p < 40; ++p) {
    if (p > 0) {
      peers += ", ";
      connections += ", ";
    }
    const long base = 1000L * 60 * 60 * p / 4;
    peers += "{\"pid\": \"Qm" + std::to_string(p) +
             "\", \"first_seen_ms\": " + std::to_string(base) +
             ", \"last_seen_ms\": " + std::to_string(base + 20'000'000) + "}";
    for (int s = 0; s < 3; ++s) {
      if (s > 0) connections += ", ";
      const long open = base + s * 8'000'000L;
      const long close = open + 1'000'000L + 700'000L * ((p + s) % 5);
      connections += "{\"peer\": " + std::to_string(p) +
                     ", \"opened_ms\": " + std::to_string(open) +
                     ", \"closed_ms\": " + std::to_string(close) + "}";
    }
  }
  const std::string trace =
      "{\"vantage\": \"synthetic\", \"measurement_start_ms\": 0, "
      "\"measurement_end_ms\": 120000000, \"peers\": [" + peers +
      "], \"connections\": [" + connections + "]}";

  Options options;
  options.verify = false;  // unit scope: scenario assembly only
  const auto result = run(trace, options);
  ASSERT_TRUE(result.has_value()) << result.error();
  EXPECT_TRUE(result->groups.contains("all"));
  ASSERT_TRUE(result->scenario.churn.has_value());
  EXPECT_EQ(scenario::ScenarioSpec::validate(result->scenario), std::nullopt);

  // Byte-exact round trip through the scenario layer.
  const std::string emitted = result->scenario.to_json_string();
  const auto reparsed = scenario::ScenarioSpec::from_json(emitted);
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error();
  EXPECT_EQ(*reparsed, result->scenario);
  EXPECT_EQ(reparsed->to_json_string(), emitted);

  // The report is well-formed JSON with the documented top-level keys.
  const std::string report = result->report_json();
  const auto parsed_report = common::JsonValue::parse(report);
  ASSERT_TRUE(parsed_report.has_value()) << parsed_report.error();
  for (const std::string_view key :
       {"trace", "fits", "scenario", "closed_loop"}) {
    EXPECT_NE(parsed_report->find(key), nullptr) << key;
  }
}

TEST(CalibrationRun, FailsWhenEverySessionIsCensored) {
  // One connection running to trace end: censored, nothing to fit.
  const std::string trace =
      "{\"vantage\": \"v\", \"measurement_start_ms\": 0, "
      "\"measurement_end_ms\": 10000000, \"peers\": ["
      "{\"pid\": \"Qm0\", \"first_seen_ms\": 0, \"last_seen_ms\": 10000000}"
      "], \"connections\": [{\"peer\": 0, \"opened_ms\": 0, "
      "\"closed_ms\": 10000000}]}";
  const auto result = run(trace, {});
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().find("no completed sessions"), std::string::npos);
}

}  // namespace
}  // namespace ipfs::analysis::calibrate
