#include "analysis/timeseries.hpp"

#include <gtest/gtest.h>

namespace ipfs::analysis {
namespace {

using common::kDay;
using common::kHour;
using common::kMinute;
using common::kSecond;
using measure::Dataset;
using measure::PeerIndex;

TEST(SimultaneousConnections, CountsOverlaps) {
  Dataset dataset;
  dataset.measurement_start = 0;
  dataset.measurement_end = 100 * kSecond;
  const PeerIndex a = dataset.intern(p2p::PeerId::from_seed(1), 0);
  // Two overlapping connections: [0, 60) and [30, 90).
  dataset.add_connection({a, 0, 60 * kSecond, p2p::Direction::kInbound,
                          p2p::CloseReason::kRemoteClose});
  dataset.add_connection({a, 30 * kSecond, 90 * kSecond, p2p::Direction::kInbound,
                          p2p::CloseReason::kRemoteClose});
  const auto series =
      simultaneous_connections(dataset, 10 * kSecond, 100 * kSecond);
  ASSERT_EQ(series.size(), 11u);
  EXPECT_EQ(series[0].count, 1u);   // t=0
  EXPECT_EQ(series[4].count, 2u);   // t=40: both open
  EXPECT_EQ(series[7].count, 1u);   // t=70: only the second
  EXPECT_EQ(series[10].count, 0u);  // t=100: none
}

TEST(SimultaneousConnections, HorizonTruncates) {
  Dataset dataset;
  dataset.measurement_start = 0;
  dataset.measurement_end = 3 * kDay;
  const PeerIndex a = dataset.intern(p2p::PeerId::from_seed(1), 0);
  dataset.add_connection({a, 0, 3 * kDay, p2p::Direction::kInbound,
                          p2p::CloseReason::kMeasurementEnd});
  const auto series = simultaneous_connections(dataset, kHour, 24 * kHour);
  EXPECT_EQ(series.size(), 25u);  // the paper plots only the first 24 h
  EXPECT_EQ(series.back().at, 24 * kHour);
}

TEST(SimultaneousConnections, EmptyAndDegenerate) {
  Dataset dataset;
  dataset.measurement_start = 0;
  dataset.measurement_end = kHour;
  EXPECT_TRUE(simultaneous_connections(dataset, 0, kHour).empty());
  const auto series = simultaneous_connections(dataset, kMinute, kHour);
  for (const CountSample& sample : series) EXPECT_EQ(sample.count, 0u);
}

TEST(SeriesSummary, PeakMeanFinal) {
  std::vector<CountSample> series{{0, 1}, {1, 5}, {2, 3}};
  const auto summary = summarize_series(series);
  EXPECT_EQ(summary.peak, 5u);
  EXPECT_EQ(summary.final_value, 3u);
  EXPECT_DOUBLE_EQ(summary.mean, 3.0);
  EXPECT_EQ(summarize_series({}).peak, 0u);
}

TEST(PidGrowth, AllPidsMonotone) {
  Dataset dataset;
  dataset.measurement_start = 0;
  dataset.measurement_end = 10 * kDay;
  for (int i = 0; i < 50; ++i) {
    const PeerIndex p = dataset.intern(p2p::PeerId::from_seed(100 + i),
                                       static_cast<common::SimTime>(i) * 4 * kHour);
    dataset.add_connection({p, static_cast<common::SimTime>(i) * 4 * kHour,
                            static_cast<common::SimTime>(i) * 4 * kHour + kHour,
                            p2p::Direction::kInbound, p2p::CloseReason::kRemoteClose});
  }
  const auto growth = pid_growth(dataset, 6 * kHour);
  ASSERT_FALSE(growth.all_pids.empty());
  for (std::size_t i = 1; i < growth.all_pids.size(); ++i) {
    EXPECT_GE(growth.all_pids[i].count, growth.all_pids[i - 1].count);
    EXPECT_GE(growth.gone_pids[i].count, growth.gone_pids[i - 1].count);
  }
  EXPECT_EQ(growth.all_pids.back().count, 50u);
}

TEST(PidGrowth, GoneAfterThreeDaysDisconnected) {
  Dataset dataset;
  dataset.measurement_start = 0;
  dataset.measurement_end = 10 * kDay;
  // Peer leaves at day 1 and never returns: becomes "gone" at day 4.
  const PeerIndex leaver = dataset.intern(p2p::PeerId::from_seed(1), 0);
  dataset.add_connection({leaver, 0, 1 * kDay, p2p::Direction::kInbound,
                          p2p::CloseReason::kPeerOffline});
  // Peer stays connected the whole time: never gone.
  const PeerIndex stayer = dataset.intern(p2p::PeerId::from_seed(2), 0);
  dataset.add_connection({stayer, 0, 10 * kDay, p2p::Direction::kInbound,
                          p2p::CloseReason::kMeasurementEnd});

  const auto growth = pid_growth(dataset, kDay, 3 * kDay);
  ASSERT_EQ(growth.gone_pids.size(), 11u);
  EXPECT_EQ(growth.gone_pids[3].count, 0u);   // day 3: not yet gone
  EXPECT_EQ(growth.gone_pids[4].count, 1u);   // day 4: leaver counted
  EXPECT_EQ(growth.gone_pids[10].count, 1u);  // stayer never gone
}

TEST(PidGrowth, ReturningPeerNotGone) {
  Dataset dataset;
  dataset.measurement_start = 0;
  dataset.measurement_end = 10 * kDay;
  const PeerIndex returner = dataset.intern(p2p::PeerId::from_seed(1), 0);
  dataset.add_connection({returner, 0, kDay, p2p::Direction::kInbound,
                          p2p::CloseReason::kPeerOffline});
  dataset.add_connection({returner, 8 * kDay, 9 * kDay, p2p::Direction::kInbound,
                          p2p::CloseReason::kPeerOffline});
  const auto growth = pid_growth(dataset, kDay, 3 * kDay);
  // Last activity at day 9 -> would be gone at day 12, past the window.
  EXPECT_EQ(growth.gone_pids.back().count, 0u);
}

TEST(PidGrowth, ConnectedSeriesMergesPerPeerIntervals) {
  Dataset dataset;
  dataset.measurement_start = 0;
  dataset.measurement_end = 10 * kHour;
  const PeerIndex peer = dataset.intern(p2p::PeerId::from_seed(1), 0);
  // Two parallel connections of one peer count as one connected PID.
  dataset.add_connection({peer, 0, 5 * kHour, p2p::Direction::kInbound,
                          p2p::CloseReason::kRemoteClose});
  dataset.add_connection({peer, kHour, 6 * kHour, p2p::Direction::kOutbound,
                          p2p::CloseReason::kRemoteClose});
  const auto growth = pid_growth(dataset, kHour);
  EXPECT_EQ(growth.connected_pids[2].count, 1u);  // t=2h
  EXPECT_EQ(growth.connected_pids[8].count, 0u);  // t=8h: disconnected
}

}  // namespace
}  // namespace ipfs::analysis
