#include "analysis/connection_stats.hpp"

#include <gtest/gtest.h>

namespace ipfs::analysis {
namespace {

using common::kSecond;
using measure::ConnRecord;
using measure::Dataset;
using measure::PeerIndex;

ConnRecord conn(PeerIndex peer, common::SimTime opened_s, common::SimTime closed_s,
                p2p::Direction direction = p2p::Direction::kInbound,
                p2p::CloseReason reason = p2p::CloseReason::kRemoteClose) {
  return {peer, opened_s * kSecond, closed_s * kSecond, direction, reason};
}

TEST(ConnectionStats, EmptyDataset) {
  Dataset dataset;
  const auto stats = compute_connection_stats(dataset);
  EXPECT_EQ(stats.all.count, 0u);
  EXPECT_EQ(stats.peer.count, 0u);
  EXPECT_DOUBLE_EQ(stats.all.average_s, 0.0);
}

TEST(ConnectionStats, AllVersusPeerAggregation) {
  Dataset dataset;
  // Peer A: three connections of 10, 20, 30 s (avg 20).
  const PeerIndex a = dataset.intern(p2p::PeerId::from_seed(1), 0);
  dataset.add_connection(conn(a, 0, 10));
  dataset.add_connection(conn(a, 100, 120));
  dataset.add_connection(conn(a, 200, 230));
  // Peer B: one connection of 100 s.
  const PeerIndex b = dataset.intern(p2p::PeerId::from_seed(2), 0);
  dataset.add_connection(conn(b, 0, 100));

  const auto stats = compute_connection_stats(dataset);
  EXPECT_EQ(stats.all.count, 4u);
  EXPECT_DOUBLE_EQ(stats.all.average_s, 40.0);   // (10+20+30+100)/4
  EXPECT_DOUBLE_EQ(stats.all.median_s, 25.0);    // between 20 and 30
  EXPECT_EQ(stats.peer.count, 2u);
  EXPECT_DOUBLE_EQ(stats.peer.average_s, 60.0);  // (20 + 100) / 2
  EXPECT_DOUBLE_EQ(stats.peer.median_s, 60.0);
}

TEST(ConnectionStats, PeersWithoutConnectionsExcludedFromPeerType) {
  Dataset dataset;
  const PeerIndex a = dataset.intern(p2p::PeerId::from_seed(1), 0);
  dataset.intern(p2p::PeerId::from_seed(2), 0);  // known, never connected
  dataset.add_connection(conn(a, 0, 50));
  const auto stats = compute_connection_stats(dataset);
  EXPECT_EQ(stats.peer.count, 1u);
}

TEST(ConnectionStats, DirectionBreakdown) {
  Dataset dataset;
  const PeerIndex a = dataset.intern(p2p::PeerId::from_seed(1), 0);
  dataset.add_connection(conn(a, 0, 100, p2p::Direction::kInbound));
  dataset.add_connection(conn(a, 0, 200, p2p::Direction::kInbound));
  dataset.add_connection(conn(a, 0, 30, p2p::Direction::kOutbound));
  const auto stats = compute_connection_stats(dataset);
  EXPECT_EQ(stats.direction.inbound_count, 2u);
  EXPECT_EQ(stats.direction.outbound_count, 1u);
  EXPECT_DOUBLE_EQ(stats.direction.inbound_avg_s, 150.0);
  EXPECT_DOUBLE_EQ(stats.direction.outbound_avg_s, 30.0);
}

TEST(ConnectionStats, AllAverageBelowPeerAverageWithChurners) {
  // The paper's signature pattern: many short connections from few peers
  // pull the All average below the Peer average.
  Dataset dataset;
  const PeerIndex churner = dataset.intern(p2p::PeerId::from_seed(1), 0);
  for (int i = 0; i < 100; ++i) {
    dataset.add_connection(conn(churner, i * 100, i * 100 + 10));
  }
  for (int p = 2; p < 12; ++p) {
    const PeerIndex stable =
        dataset.intern(p2p::PeerId::from_seed(static_cast<std::uint64_t>(p)), 0);
    dataset.add_connection(conn(stable, 0, 5000));
  }
  const auto stats = compute_connection_stats(dataset);
  EXPECT_LT(stats.all.average_s, stats.peer.average_s);
  EXPECT_LT(stats.all.median_s, stats.all.average_s);
}

TEST(CloseReasons, CountsEveryCategory) {
  Dataset dataset;
  const PeerIndex a = dataset.intern(p2p::PeerId::from_seed(1), 0);
  using R = p2p::CloseReason;
  for (const R reason : {R::kLocalTrim, R::kLocalTrim, R::kRemoteTrim, R::kRemoteClose,
                         R::kLocalClose, R::kPeerOffline, R::kError,
                         R::kMeasurementEnd}) {
    dataset.add_connection(conn(a, 0, 10, p2p::Direction::kInbound, reason));
  }
  const auto breakdown = compute_close_reasons(dataset);
  EXPECT_EQ(breakdown.local_trim, 2u);
  EXPECT_EQ(breakdown.remote_trim, 1u);
  EXPECT_EQ(breakdown.remote_close, 1u);
  EXPECT_EQ(breakdown.local_close, 1u);
  EXPECT_EQ(breakdown.peer_offline, 1u);
  EXPECT_EQ(breakdown.error, 1u);
  EXPECT_EQ(breakdown.measurement_end, 1u);
  EXPECT_EQ(breakdown.total(), 8u);
}

}  // namespace
}  // namespace ipfs::analysis
