// Unit tests for session reconstruction and the churn statistics built on
// it (analysis/churn_stats.hpp): gap-threshold clustering, summary
// aggregation, availability sweeps and observed-vs-true alignment — all on
// hand-built datasets with known answers.
#include "analysis/churn_stats.hpp"

#include <gtest/gtest.h>

#include "measure/dataset.hpp"

namespace ipfs::analysis {
namespace {

using common::kMinute;
using common::kSecond;

measure::ConnRecord conn(measure::PeerIndex peer, common::SimTime opened,
                         common::SimTime closed) {
  measure::ConnRecord record;
  record.peer = peer;
  record.opened = opened;
  record.closed = closed;
  return record;
}

/// Two peers: peer 0 with two sessions split by a 2 h silence, peer 1 with
/// one session of two overlapping connections.
measure::Dataset two_peer_dataset() {
  measure::Dataset dataset;
  (void)dataset.intern(p2p::PeerId::from_seed(1), 0);
  (void)dataset.intern(p2p::PeerId::from_seed(2), 0);
  // Peer 0, session A: [0, 10 min] then [12 min, 20 min] (2 min gap).
  dataset.add_connection(conn(0, 0, 10 * kMinute));
  dataset.add_connection(conn(0, 12 * kMinute, 20 * kMinute));
  // Peer 0, session B after a 2 h silence: [140 min, 150 min].
  dataset.add_connection(conn(0, 140 * kMinute, 150 * kMinute));
  // Peer 1: overlapping connections, one session [5 min, 60 min].
  dataset.add_connection(conn(1, 5 * kMinute, 60 * kMinute));
  dataset.add_connection(conn(1, 10 * kMinute, 30 * kMinute));
  return dataset;
}

TEST(ChurnStats, ReconstructsSessionsByGapThreshold) {
  const auto sessions = reconstruct_sessions(two_peer_dataset(), 30 * kMinute);
  ASSERT_EQ(sessions.size(), 3u);

  EXPECT_EQ(sessions[0].peer, 0u);
  EXPECT_EQ(sessions[0].begin, 0);
  EXPECT_EQ(sessions[0].end, 20 * kMinute);
  EXPECT_EQ(sessions[0].connections, 2u);

  EXPECT_EQ(sessions[1].peer, 0u);
  EXPECT_EQ(sessions[1].begin, 140 * kMinute);
  EXPECT_EQ(sessions[1].end, 150 * kMinute);

  EXPECT_EQ(sessions[2].peer, 1u);
  EXPECT_EQ(sessions[2].begin, 5 * kMinute);
  EXPECT_EQ(sessions[2].end, 60 * kMinute);
  EXPECT_EQ(sessions[2].connections, 2u);
}

TEST(ChurnStats, GapThresholdControlsTheSplit) {
  // With a 3 h threshold the 2 h silence no longer splits peer 0.
  const auto sessions = reconstruct_sessions(two_peer_dataset(), 180 * kMinute);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].peer, 0u);
  EXPECT_EQ(sessions[0].end, 150 * kMinute);
  EXPECT_EQ(sessions[0].connections, 3u);
}

TEST(ChurnStats, SummaryCountsPeersAndMultiSessionPeers) {
  const auto sessions = reconstruct_sessions(two_peer_dataset(), 30 * kMinute);
  const ChurnStats stats = compute_churn_stats(sessions);
  EXPECT_EQ(stats.session_count, 3u);
  EXPECT_EQ(stats.peers, 2u);
  EXPECT_EQ(stats.multi_session_peers, 1u);  // only peer 0 returned
  // Lengths: 20, 10 and 55 minutes.
  EXPECT_NEAR(stats.median_session_s, 20.0 * 60.0, 1e-9);
  EXPECT_NEAR(stats.mean_session_s, (20.0 + 10.0 + 55.0) * 60.0 / 3.0, 1e-9);
  EXPECT_EQ(stats.session_length_cdf.size(), 3u);
  EXPECT_NEAR(stats.session_length_cdf.fraction_at_most(15.0 * 60.0), 1.0 / 3.0,
              1e-9);
}

TEST(ChurnStats, SessionsOpenAtTraceEndAreCensored) {
  // Same two peers, but with a real measurement window that closes 10
  // minutes after peer 0's last contact — inside the 30 min gap
  // threshold, so that final session could still have been open.
  measure::Dataset dataset = two_peer_dataset();
  dataset.measurement_start = 0;
  dataset.measurement_end = 160 * kMinute;
  const auto sessions = reconstruct_sessions(dataset, 30 * kMinute);
  ASSERT_EQ(sessions.size(), 3u);
  EXPECT_FALSE(sessions[0].censored);  // [0, 20 min]: gap closed at 50 min
  EXPECT_TRUE(sessions[1].censored);   // [140, 150 min]: 150 + 30 > 160
  EXPECT_FALSE(sessions[2].censored);  // [5, 60 min]: gap closed at 90 min
}

TEST(ChurnStats, CensoredSessionsExcludedFromLengthStats) {
  measure::Dataset dataset = two_peer_dataset();
  dataset.measurement_start = 0;
  dataset.measurement_end = 160 * kMinute;
  const auto sessions = reconstruct_sessions(dataset, 30 * kMinute);
  const ChurnStats stats = compute_churn_stats(sessions);
  EXPECT_EQ(stats.session_count, 3u);
  EXPECT_EQ(stats.censored_sessions, 1u);
  EXPECT_EQ(stats.completed_sessions(), 2u);
  EXPECT_EQ(stats.peers, 2u);
  EXPECT_EQ(stats.multi_session_peers, 1u);
  // Completed lengths: 20 and 55 minutes; the censored 10 min tail
  // observation must not drag the statistics down.
  EXPECT_EQ(stats.session_length_cdf.size(), 2u);
  EXPECT_NEAR(stats.mean_session_s, (20.0 + 55.0) * 60.0 / 2.0, 1e-9);
  EXPECT_NEAR(stats.median_session_s, (20.0 + 55.0) * 60.0 / 2.0, 1e-9);
  EXPECT_NEAR(stats.session_length_cdf.fraction_at_most(10.0 * 60.0), 0.0,
              1e-9);
}

TEST(ChurnStats, NoMeasurementWindowMeansNoCensoring) {
  // Hand-built datasets leave measurement_end at 0; the censoring rule
  // must not fire without a real window or every session would censor.
  const auto sessions = reconstruct_sessions(two_peer_dataset(), 30 * kMinute);
  for (const SessionTrace& session : sessions) {
    EXPECT_FALSE(session.censored);
  }
  EXPECT_EQ(compute_churn_stats(sessions).censored_sessions, 0u);
}

TEST(ChurnStats, EmptyDatasetYieldsEmptyStats) {
  const ChurnStats stats = compute_churn_stats({});
  EXPECT_EQ(stats.session_count, 0u);
  EXPECT_EQ(stats.peers, 0u);
  EXPECT_EQ(stats.multi_session_peers, 0u);
  EXPECT_EQ(stats.mean_session_s, 0.0);
}

TEST(ChurnStats, AvailabilitySweepCountsInSessionPeers) {
  const auto sessions = reconstruct_sessions(two_peer_dataset(), 30 * kMinute);
  const auto series =
      availability_over_time(sessions, 10 * kMinute, 0, 150 * kMinute);
  ASSERT_EQ(series.size(), 16u);
  EXPECT_EQ(series[0].count, 1u);   // t=0: peer 0 only
  EXPECT_EQ(series[1].count, 2u);   // t=10 min: both (session edges inclusive)
  EXPECT_EQ(series[3].count, 1u);   // t=30 min: peer 1 only
  EXPECT_EQ(series[7].count, 0u);   // t=70 min: silence
  EXPECT_EQ(series[14].count, 1u);  // t=140 min: peer 0 is back
  EXPECT_EQ(series[15].count, 1u);
}

TEST(ChurnStats, ObservedVsTrueEvaluatesOnTheTruthGrid) {
  const auto sessions = reconstruct_sessions(two_peer_dataset(), 30 * kMinute);
  std::vector<measure::PopulationSample> truth;
  for (int i = 0; i <= 5; ++i) {
    measure::PopulationSample sample;
    sample.at = i * 30 * kMinute;
    sample.online = 3;
    sample.total = 10;
    truth.push_back(sample);
  }
  const auto series = observed_vs_true(sessions, truth);
  ASSERT_EQ(series.size(), truth.size());
  EXPECT_EQ(series[0].at, 0);
  EXPECT_EQ(series[0].observed, 1u);  // t=0: peer 0 only
  EXPECT_EQ(series[1].observed, 1u);  // t=30 min: peer 1
  EXPECT_EQ(series[2].observed, 1u);  // t=60 min: peer 1 (session edges inclusive)
  EXPECT_EQ(series[3].observed, 0u);  // t=90 min: silence
  EXPECT_EQ(series[5].observed, 1u);  // t=150 min: peer 0 is back
  for (const ObservedVsTrueSample& sample : series) {
    EXPECT_EQ(sample.true_online, 3u);
    EXPECT_EQ(sample.true_total, 10u);
    EXPECT_LT(sample.observed, sample.true_total);
  }
}

TEST(ChurnStats, ObservedVsTrueHandlesNonUniformTruthGrids) {
  // Truth samples need not be evenly spaced (filtered series, merged
  // trials): each point must be evaluated at its own timestamp.
  const auto sessions = reconstruct_sessions(two_peer_dataset(), 30 * kMinute);
  std::vector<measure::PopulationSample> truth;
  for (const common::SimTime at :
       {0L, 30L * kMinute, 145L * kMinute}) {  // uneven spacing
    measure::PopulationSample sample;
    sample.at = at;
    sample.online = 2;
    sample.total = 10;
    truth.push_back(sample);
  }
  const auto series = observed_vs_true(sessions, truth);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].at, 0);
  EXPECT_EQ(series[0].observed, 1u);  // peer 0's first session
  EXPECT_EQ(series[1].at, 30 * kMinute);
  EXPECT_EQ(series[1].observed, 1u);  // peer 1
  EXPECT_EQ(series[2].at, 145 * kMinute);
  EXPECT_EQ(series[2].observed, 1u);  // peer 0's second session [140, 150]
}

}  // namespace
}  // namespace ipfs::analysis
