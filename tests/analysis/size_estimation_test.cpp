#include "analysis/size_estimation.hpp"

#include <gtest/gtest.h>

namespace ipfs::analysis {
namespace {

using common::kHour;
using measure::Dataset;
using measure::PeerIndex;

PeerIndex add_connected_peer(Dataset& dataset, std::uint64_t seed,
                             std::vector<std::uint32_t> ips) {
  const PeerIndex index = dataset.intern(p2p::PeerId::from_seed(seed), 0);
  for (const std::uint32_t ip : ips) {
    dataset.record(index).connected_ips.insert(p2p::IpAddress::v4(ip));
  }
  dataset.add_connection({index, 0, kHour, p2p::Direction::kInbound,
                          p2p::CloseReason::kRemoteClose});
  return index;
}

TEST(MultiaddrGrouping, SingletonsAndSharedIps) {
  Dataset dataset;
  add_connected_peer(dataset, 1, {100});
  add_connected_peer(dataset, 2, {200});
  // Two peers behind one NAT IP.
  add_connected_peer(dataset, 3, {300});
  add_connected_peer(dataset, 4, {300});
  // A known-but-never-connected PID.
  dataset.intern(p2p::PeerId::from_seed(5), 0);

  const auto grouping = group_by_multiaddr(dataset);
  EXPECT_EQ(grouping.total_pids, 5u);
  EXPECT_EQ(grouping.connected_pids, 4u);
  EXPECT_EQ(grouping.distinct_ips, 3u);
  EXPECT_EQ(grouping.groups, 3u);
  EXPECT_EQ(grouping.singleton_groups, 2u);
  EXPECT_EQ(grouping.unique_ip_pids, 2u);
  EXPECT_EQ(grouping.largest_group, 2u);
}

TEST(MultiaddrGrouping, DualHomedPeerMergesItsIps) {
  Dataset dataset;
  // One peer connecting from two IPs: one group, two IPs.
  add_connected_peer(dataset, 1, {100, 101});
  const auto grouping = group_by_multiaddr(dataset);
  EXPECT_EQ(grouping.distinct_ips, 2u);
  EXPECT_EQ(grouping.groups, 1u);
  EXPECT_EQ(grouping.singleton_groups, 1u);
  // Dual-homed: not counted as a unique-IP PID (paper: 40'193 < 44'301).
  EXPECT_EQ(grouping.unique_ip_pids, 0u);
}

TEST(MultiaddrGrouping, BridgePeerMergesTwoClusters) {
  Dataset dataset;
  add_connected_peer(dataset, 1, {100});
  add_connected_peer(dataset, 2, {200});
  // A peer seen on both IPs bridges the clusters into one group.
  add_connected_peer(dataset, 3, {100, 200});
  const auto grouping = group_by_multiaddr(dataset);
  EXPECT_EQ(grouping.groups, 1u);
  EXPECT_EQ(grouping.largest_group, 3u);
  EXPECT_EQ(grouping.singleton_groups, 0u);
  EXPECT_EQ(grouping.unique_ip_pids, 0u);
}

TEST(MultiaddrGrouping, RotatingPidOperator) {
  Dataset dataset;
  // The paper's 2'156-PID mega group: many PIDs, one IP.
  for (std::uint64_t i = 0; i < 50; ++i) add_connected_peer(dataset, 100 + i, {42});
  add_connected_peer(dataset, 1, {7});
  const auto grouping = group_by_multiaddr(dataset);
  EXPECT_EQ(grouping.groups, 2u);
  EXPECT_EQ(grouping.largest_group, 50u);
  ASSERT_EQ(grouping.group_sizes.size(), 2u);
  EXPECT_EQ(grouping.group_sizes[0], 50u);  // sorted descending
  EXPECT_EQ(grouping.group_sizes[1], 1u);
}

TEST(MultiaddrGrouping, EmptyDataset) {
  Dataset dataset;
  const auto grouping = group_by_multiaddr(dataset);
  EXPECT_EQ(grouping.total_pids, 0u);
  EXPECT_EQ(grouping.groups, 0u);
}

TEST(NetworkSizeReport, CombinesBothEstimators) {
  Dataset dataset;
  // Three heavy peers (one a DHT server), two singleton one-timers.
  for (std::uint64_t i = 0; i < 3; ++i) {
    const PeerIndex index = dataset.intern(p2p::PeerId::from_seed(i), 0);
    dataset.record(index).connected_ips.insert(
        p2p::IpAddress::v4(static_cast<std::uint32_t>(10 + i)));
    dataset.record(index).ever_dht_server = i == 0;
    dataset.add_connection({index, 0, 30 * kHour, p2p::Direction::kInbound,
                            p2p::CloseReason::kMeasurementEnd});
  }
  add_connected_peer(dataset, 100, {200});
  add_connected_peer(dataset, 101, {201});

  const auto report = estimate_network_size(dataset);
  EXPECT_EQ(report.observed_pids, 5u);
  EXPECT_EQ(report.estimated_peers_by_ip, 5u);
  EXPECT_EQ(report.core_network_lower_bound, 3u);
  EXPECT_EQ(report.heavy_dht_servers, 1u);
  EXPECT_EQ(report.core_user_base, 2u);
  EXPECT_DOUBLE_EQ(report.pids_per_ip_group, 1.0);
}

TEST(NetworkSizeReport, GroupingCompressesRotatingPids) {
  Dataset dataset;
  for (std::uint64_t i = 0; i < 20; ++i) add_connected_peer(dataset, i, {42});
  const auto report = estimate_network_size(dataset);
  EXPECT_EQ(report.observed_pids, 20u);
  EXPECT_EQ(report.estimated_peers_by_ip, 1u);
  EXPECT_DOUBLE_EQ(report.pids_per_ip_group, 20.0);
}

}  // namespace
}  // namespace ipfs::analysis
