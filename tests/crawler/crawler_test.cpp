#include "crawler/crawler.hpp"

#include <gtest/gtest.h>

#include "../testing/fidelity.hpp"

namespace ipfs::crawler {
namespace {

using common::kMinute;
using common::kSecond;
using ipfs::testing::FidelityNet;

class CrawlerTest : public ::testing::Test {
 protected:
  /// Build a small interconnected DHT of `servers` servers + `clients`
  /// clients and return a started crawler.
  std::unique_ptr<Crawler> make_network(int servers, int clients,
                                        CrawlerConfig config = {}) {
    for (int i = 0; i < servers; ++i) net.add_node(node::NodeConfig::dht_server());
    for (int i = 0; i < clients; ++i) net.add_node(node::NodeConfig::dht_client());
    net.bootstrap_all(time_to_settle);
    net.sim().run_until(net.sim().now() + 10 * kMinute);  // refresh cycles
    auto crawler = std::make_unique<Crawler>(
        net.sim(), net.network(), p2p::PeerId::random(net.rng()),
        net::swarm_tcp_addr(net.ips().unique_v4()), config);
    crawler->start();
    return crawler;
  }

  FidelityNet net;
  common::SimDuration time_to_settle = 2 * kMinute;
};

TEST_F(CrawlerTest, CrawlReachesAllServers) {
  auto crawler = make_network(25, 0);
  CrawlResult result;
  bool done = false;
  crawler->crawl({net.node(0).id()}, [&](CrawlResult r) {
    done = true;
    result = std::move(r);
  });
  net.sim().run_until(net.sim().now() + 30 * kMinute);
  ASSERT_TRUE(done);
  EXPECT_EQ(result.reached.size(), 25u);
  EXPECT_GE(result.queries_sent, 25u);
  EXPECT_GT(result.finished, result.started);
  crawler->stop();
}

TEST_F(CrawlerTest, ClientsAreInvisibleToCrawls) {
  auto crawler = make_network(10, 8);
  CrawlResult result;
  crawler->crawl({net.node(0).id()}, [&](CrawlResult r) { result = std::move(r); });
  net.sim().run_until(net.sim().now() + 30 * kMinute);
  // Only the 10 servers answer FIND_NODE; the 8 clients never appear as
  // reached peers (the paper's core passive-vs-active horizon gap).
  EXPECT_EQ(result.reached.size(), 10u);
  for (std::size_t i = 10; i < 18; ++i) {
    EXPECT_FALSE(result.reached.contains(net.node(i).id()));
  }
  crawler->stop();
}

TEST_F(CrawlerTest, OfflineNodesCountAsDialFailures) {
  auto crawler = make_network(12, 0);
  // Take three servers down right before the crawl; their routing-table
  // entries still point at them.
  net.node(3).stop();
  net.node(4).stop();
  net.node(5).stop();
  net.sim().run_until(net.sim().now() + 30 * kSecond);

  CrawlResult result;
  crawler->crawl({net.node(0).id()}, [&](CrawlResult r) { result = std::move(r); });
  net.sim().run_until(net.sim().now() + 40 * kMinute);
  EXPECT_EQ(result.reached.size(), 9u);
  EXPECT_GE(result.dial_failures, 1u);
  // The dead peers may still be *learned* from stale tables.
  EXPECT_GE(result.learned.size(), result.reached.size());
  crawler->stop();
}

TEST_F(CrawlerTest, PeriodicCrawlsAccumulateHistory) {
  CrawlerConfig config;
  auto crawler = make_network(8, 0, config);
  crawler->crawl_periodically({net.node(0).id()}, 8 * common::kHour);
  net.sim().run_until(net.sim().now() + 25 * common::kHour);
  // First crawl immediately + one per 8 h.
  EXPECT_GE(crawler->history().size(), 3u);
  const auto [min_reached, max_reached] = crawler->reached_min_max();
  EXPECT_GT(min_reached, 0u);
  EXPECT_LE(min_reached, max_reached);
  EXPECT_LE(max_reached, 8u);
  crawler->stop();
}

TEST_F(CrawlerTest, CrawlerConnectionsAreShortLived) {
  auto crawler = make_network(10, 0);
  CrawlResult result;
  crawler->crawl({net.node(0).id()}, [&](CrawlResult r) { result = std::move(r); });
  net.sim().run_until(net.sim().now() + 30 * kMinute);
  // After the crawl the crawler holds no connections: visit -> query ->
  // disconnect, the behaviour the paper attributes to crawler churn.
  EXPECT_EQ(crawler->swarm().open_count(), 0u);
  EXPECT_GE(crawler->swarm().opened_total(), result.reached.size());
  crawler->stop();
}

TEST_F(CrawlerTest, EmptyBootstrapFinishesEmpty) {
  auto crawler = make_network(3, 0);
  bool done = false;
  CrawlResult result;
  crawler->crawl({}, [&](CrawlResult r) {
    done = true;
    result = std::move(r);
  });
  net.sim().run_until(net.sim().now() + kMinute);
  EXPECT_TRUE(done);
  EXPECT_TRUE(result.reached.empty());
  crawler->stop();
}

}  // namespace
}  // namespace ipfs::crawler
