#include "net/ip_allocator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ipfs::net {
namespace {

TEST(IpAllocator, UniqueV4NeverRepeats) {
  IpAllocator allocator{common::Rng(1)};
  std::set<p2p::IpAddress> seen;
  for (int i = 0; i < 20000; ++i) {
    EXPECT_TRUE(seen.insert(allocator.unique_v4()).second);
  }
  EXPECT_EQ(allocator.allocated_count(), 20000u);
}

TEST(IpAllocator, UniqueV4AvoidsReservedRanges) {
  IpAllocator allocator{common::Rng(2)};
  for (int i = 0; i < 5000; ++i) {
    const auto text = allocator.unique_v4().to_string();
    EXPECT_NE(text.substr(0, 3), "10.");
    EXPECT_NE(text.substr(0, 4), "127.");
    EXPECT_NE(text.substr(0, 8), "192.168.");
    EXPECT_NE(text.substr(0, 2), "0.");
    // 224.0.0.0/3 (multicast + reserved) excluded.
    const int first_octet = std::stoi(text.substr(0, text.find('.')));
    EXPECT_LT(first_octet, 224);
  }
}

TEST(IpAllocator, UniqueV6IsGlobalUnicast) {
  IpAllocator allocator{common::Rng(3)};
  for (int i = 0; i < 1000; ++i) {
    const auto ip = allocator.unique_v6();
    EXPECT_TRUE(ip.is_v6());
    const auto text = ip.to_string();
    const char first = text[0];
    EXPECT_TRUE(first == '2' || first == '3') << text;
  }
}

TEST(IpAllocator, SharedPoolIsStable) {
  IpAllocator allocator{common::Rng(4)};
  const auto a = allocator.shared_v4("hydra-dc-1");
  const auto b = allocator.shared_v4("hydra-dc-1");
  const auto c = allocator.shared_v4("hydra-dc-2");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(IpAllocator, SharedPoolsNeverCollideWithUnique) {
  IpAllocator allocator{common::Rng(5)};
  std::set<p2p::IpAddress> all;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(all.insert(allocator.shared_v4("pool-" + std::to_string(i))).second);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(all.insert(allocator.unique_v4()).second);
  }
}

TEST(IpAllocator, DeterministicAcrossInstances) {
  IpAllocator a{common::Rng(6)};
  IpAllocator b{common::Rng(6)};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.unique_v4(), b.unique_v4());
}

TEST(SwarmTcpAddr, DefaultPort) {
  const auto addr = swarm_tcp_addr(p2p::IpAddress::v4(0x01020304));
  EXPECT_EQ(addr.to_string(), "/ip4/1.2.3.4/tcp/4001");
  const auto custom = swarm_tcp_addr(p2p::IpAddress::v4(0x01020304), 3001);
  EXPECT_EQ(custom.port, 3001);
}

}  // namespace
}  // namespace ipfs::net
