#include "net/network.hpp"

#include <gtest/gtest.h>

#include "testing/hosts.hpp"

namespace ipfs::net {
namespace {

using common::kSecond;
using p2p::CloseReason;
using p2p::Direction;
using p2p::PeerId;

/// Three scripted hosts (alice, bob, carol) on one fabric, built on the
/// shared `testing::HostNet` harness — which also bakes in the Host
/// lifetime contract (hosts outlive the Network) once, instead of every
/// fixture re-deriving it.
class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : net(3),
        alice(net.host(0)),
        bob(net.host(1)),
        carol(net.host(2)),
        sim(net.sim()),
        network(net.network()) {}

  ipfs::testing::HostNet net;
  ipfs::testing::ScriptedHost& alice;
  ipfs::testing::ScriptedHost& bob;
  ipfs::testing::ScriptedHost& carol;
  sim::Simulation& sim;
  Network& network;
};

TEST_F(NetworkTest, DialCreatesMirroredConnections) {
  bool done = false;
  bool ok = false;
  network.dial(alice.swarm().local_id(), bob.swarm().local_id(), [&](bool success) {
    done = true;
    ok = success;
  });
  EXPECT_FALSE(done);  // completes only after the RTT elapses
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(network.connected(alice.swarm().local_id(), bob.swarm().local_id()));
  EXPECT_EQ(alice.swarm().open_count(), 1u);
  EXPECT_EQ(bob.swarm().open_count(), 1u);
  EXPECT_EQ(alice.swarm().open_connections()[0]->direction, Direction::kOutbound);
  EXPECT_EQ(bob.swarm().open_connections()[0]->direction, Direction::kInbound);
}

TEST_F(NetworkTest, DialToOfflinePeerFails) {
  bool ok = true;
  network.dial(alice.swarm().local_id(), PeerId::from_seed(99),
               [&](bool success) { ok = success; });
  sim.run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(alice.swarm().open_count(), 0u);
}

TEST_F(NetworkTest, ConnectionGatingRefusesDial) {
  bob.accept = false;
  bool ok = true;
  network.dial(alice.swarm().local_id(), bob.swarm().local_id(),
               [&](bool success) { ok = success; });
  sim.run();
  EXPECT_FALSE(ok);
  EXPECT_FALSE(network.connected(alice.swarm().local_id(), bob.swarm().local_id()));
}

TEST_F(NetworkTest, DuplicateDialFails) {
  network.dial(alice.swarm().local_id(), bob.swarm().local_id());
  sim.run();
  bool ok = true;
  network.dial(alice.swarm().local_id(), bob.swarm().local_id(),
               [&](bool success) { ok = success; });
  sim.run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(alice.swarm().open_count(), 1u);
}

TEST_F(NetworkTest, MessageDeliveredWithLatency) {
  network.dial(alice.swarm().local_id(), bob.swarm().local_id());
  sim.run();
  Message message;
  message.protocol = "/test/1.0.0";
  message.body = 42;
  network.send(alice.swarm().local_id(), bob.swarm().local_id(), message);
  EXPECT_TRUE(bob.received.empty());  // not synchronous
  sim.run();
  ASSERT_EQ(bob.received.size(), 1u);
  EXPECT_EQ(bob.received[0].first, alice.swarm().local_id());
  EXPECT_EQ(bob.received[0].second, "/test/1.0.0");
}

TEST_F(NetworkTest, MessageDroppedWhenNotConnected) {
  Message message;
  message.protocol = "/test/1.0.0";
  network.send(alice.swarm().local_id(), bob.swarm().local_id(), message);
  sim.run();
  EXPECT_TRUE(bob.received.empty());
}

TEST_F(NetworkTest, DisconnectMirrorsToRemoteSide) {
  network.dial(alice.swarm().local_id(), bob.swarm().local_id());
  sim.run();
  network.disconnect(alice.swarm().local_id(), bob.swarm().local_id(),
                     CloseReason::kLocalClose);
  EXPECT_EQ(alice.swarm().open_count(), 0u);  // local close is synchronous
  sim.run();                                  // mirror arrives after latency
  EXPECT_EQ(bob.swarm().open_count(), 0u);
  EXPECT_FALSE(network.connected(alice.swarm().local_id(), bob.swarm().local_id()));
}

TEST_F(NetworkTest, LocalTrimSeenAsRemoteTrimByPeer) {
  network.dial(alice.swarm().local_id(), bob.swarm().local_id());
  sim.run();

  struct ReasonLog : p2p::SwarmObserver {
    CloseReason last = CloseReason::kNone;
    void on_connection_opened(const p2p::Connection&) override {}
    void on_connection_closed(const p2p::Connection& connection) override {
      last = connection.reason;
    }
  } bob_log;
  bob.swarm().add_observer(&bob_log);

  // Alice's connection manager trims the connection.
  const auto id = alice.swarm().open_connections()[0]->id;
  alice.swarm().close_connection(id, CloseReason::kLocalTrim);
  sim.run();
  EXPECT_EQ(bob_log.last, CloseReason::kRemoteTrim);
  bob.swarm().remove_observer(&bob_log);
}

TEST_F(NetworkTest, RemoveHostClosesConnectionsAsPeerOffline) {
  network.dial(alice.swarm().local_id(), bob.swarm().local_id());
  network.dial(carol.swarm().local_id(), bob.swarm().local_id());
  sim.run();
  EXPECT_EQ(bob.swarm().open_count(), 2u);

  network.remove_host(bob.swarm().local_id());
  EXPECT_FALSE(network.online(bob.swarm().local_id()));
  sim.run();
  EXPECT_EQ(alice.swarm().open_count(), 0u);
  EXPECT_EQ(carol.swarm().open_count(), 0u);
}

TEST_F(NetworkTest, MessageInFlightToDepartedHostIsDropped) {
  network.dial(alice.swarm().local_id(), bob.swarm().local_id());
  sim.run();
  Message message;
  message.protocol = "/test/1.0.0";
  network.send(alice.swarm().local_id(), bob.swarm().local_id(), message);
  network.remove_host(bob.swarm().local_id());
  sim.run();
  EXPECT_TRUE(bob.received.empty());
}

TEST_F(NetworkTest, LatencyIsSymmetricAndPositive) {
  const auto ab = network.latency(alice.swarm().local_id(), bob.swarm().local_id());
  EXPECT_GT(ab, 0);
  EXPECT_LE(ab, 200 * common::kMillisecond);
}

TEST(LatencyModel, DeterministicBasePerPair) {
  LatencyModel model;
  common::Rng rng(1);
  model.jitter_fraction = 0.0;
  const auto a = p2p::PeerId::from_seed(1);
  const auto b = p2p::PeerId::from_seed(2);
  EXPECT_EQ(model.one_way(a, b, rng), model.one_way(a, b, rng));
  EXPECT_EQ(model.one_way(a, b, rng), model.one_way(b, a, rng));
}

}  // namespace
}  // namespace ipfs::net
