#include "net/network.hpp"

#include <gtest/gtest.h>

namespace ipfs::net {
namespace {

using common::kSecond;
using p2p::CloseReason;
using p2p::Direction;
using p2p::PeerId;

/// Minimal host that records messages and optionally refuses dials.
struct TestHost : Host {
  TestHost(sim::Simulation& sim, std::uint64_t seed)
      : swarm_(sim, PeerId::from_seed(seed),
               p2p::Multiaddr{p2p::IpAddress::v4(static_cast<std::uint32_t>(seed)),
                              p2p::Transport::kTcp, 4001},
               {p2p::ConnManagerConfig::with_watermarks(0, 0), false}) {}

  p2p::Swarm& swarm() override { return swarm_; }
  bool accept_inbound(const PeerId&) override { return accept; }
  void handle_message(const PeerId& from, const Message& message) override {
    received.emplace_back(from, message.protocol);
  }

  p2p::Swarm swarm_;
  bool accept = true;
  std::vector<std::pair<PeerId, std::string>> received;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : alice(sim, 1), bob(sim, 2), carol(sim, 3), network(sim, common::Rng(1)) {
    network.add_host(alice);
    network.add_host(bob);
    network.add_host(carol);
  }

  sim::Simulation sim;
  // Hosts are declared before the network so they outlive it (the Host
  // lifetime contract): ~Network detaches its swarm taps through the
  // still-alive hosts.
  TestHost alice;
  TestHost bob;
  TestHost carol;
  Network network;
};

TEST_F(NetworkTest, DialCreatesMirroredConnections) {
  bool done = false;
  bool ok = false;
  network.dial(alice.swarm().local_id(), bob.swarm().local_id(), [&](bool success) {
    done = true;
    ok = success;
  });
  EXPECT_FALSE(done);  // completes only after the RTT elapses
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(network.connected(alice.swarm().local_id(), bob.swarm().local_id()));
  EXPECT_EQ(alice.swarm().open_count(), 1u);
  EXPECT_EQ(bob.swarm().open_count(), 1u);
  EXPECT_EQ(alice.swarm().open_connections()[0]->direction, Direction::kOutbound);
  EXPECT_EQ(bob.swarm().open_connections()[0]->direction, Direction::kInbound);
}

TEST_F(NetworkTest, DialToOfflinePeerFails) {
  bool ok = true;
  network.dial(alice.swarm().local_id(), PeerId::from_seed(99),
               [&](bool success) { ok = success; });
  sim.run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(alice.swarm().open_count(), 0u);
}

TEST_F(NetworkTest, ConnectionGatingRefusesDial) {
  bob.accept = false;
  bool ok = true;
  network.dial(alice.swarm().local_id(), bob.swarm().local_id(),
               [&](bool success) { ok = success; });
  sim.run();
  EXPECT_FALSE(ok);
  EXPECT_FALSE(network.connected(alice.swarm().local_id(), bob.swarm().local_id()));
}

TEST_F(NetworkTest, DuplicateDialFails) {
  network.dial(alice.swarm().local_id(), bob.swarm().local_id());
  sim.run();
  bool ok = true;
  network.dial(alice.swarm().local_id(), bob.swarm().local_id(),
               [&](bool success) { ok = success; });
  sim.run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(alice.swarm().open_count(), 1u);
}

TEST_F(NetworkTest, MessageDeliveredWithLatency) {
  network.dial(alice.swarm().local_id(), bob.swarm().local_id());
  sim.run();
  Message message;
  message.protocol = "/test/1.0.0";
  message.body = 42;
  network.send(alice.swarm().local_id(), bob.swarm().local_id(), message);
  EXPECT_TRUE(bob.received.empty());  // not synchronous
  sim.run();
  ASSERT_EQ(bob.received.size(), 1u);
  EXPECT_EQ(bob.received[0].first, alice.swarm().local_id());
  EXPECT_EQ(bob.received[0].second, "/test/1.0.0");
}

TEST_F(NetworkTest, MessageDroppedWhenNotConnected) {
  Message message;
  message.protocol = "/test/1.0.0";
  network.send(alice.swarm().local_id(), bob.swarm().local_id(), message);
  sim.run();
  EXPECT_TRUE(bob.received.empty());
}

TEST_F(NetworkTest, DisconnectMirrorsToRemoteSide) {
  network.dial(alice.swarm().local_id(), bob.swarm().local_id());
  sim.run();
  network.disconnect(alice.swarm().local_id(), bob.swarm().local_id(),
                     CloseReason::kLocalClose);
  EXPECT_EQ(alice.swarm().open_count(), 0u);  // local close is synchronous
  sim.run();                                  // mirror arrives after latency
  EXPECT_EQ(bob.swarm().open_count(), 0u);
  EXPECT_FALSE(network.connected(alice.swarm().local_id(), bob.swarm().local_id()));
}

TEST_F(NetworkTest, LocalTrimSeenAsRemoteTrimByPeer) {
  network.dial(alice.swarm().local_id(), bob.swarm().local_id());
  sim.run();

  struct ReasonLog : p2p::SwarmObserver {
    CloseReason last = CloseReason::kNone;
    void on_connection_opened(const p2p::Connection&) override {}
    void on_connection_closed(const p2p::Connection& connection) override {
      last = connection.reason;
    }
  } bob_log;
  bob.swarm().add_observer(&bob_log);

  // Alice's connection manager trims the connection.
  const auto id = alice.swarm().open_connections()[0]->id;
  alice.swarm().close_connection(id, CloseReason::kLocalTrim);
  sim.run();
  EXPECT_EQ(bob_log.last, CloseReason::kRemoteTrim);
  bob.swarm().remove_observer(&bob_log);
}

TEST_F(NetworkTest, RemoveHostClosesConnectionsAsPeerOffline) {
  network.dial(alice.swarm().local_id(), bob.swarm().local_id());
  network.dial(carol.swarm().local_id(), bob.swarm().local_id());
  sim.run();
  EXPECT_EQ(bob.swarm().open_count(), 2u);

  network.remove_host(bob.swarm().local_id());
  EXPECT_FALSE(network.online(bob.swarm().local_id()));
  sim.run();
  EXPECT_EQ(alice.swarm().open_count(), 0u);
  EXPECT_EQ(carol.swarm().open_count(), 0u);
}

TEST_F(NetworkTest, MessageInFlightToDepartedHostIsDropped) {
  network.dial(alice.swarm().local_id(), bob.swarm().local_id());
  sim.run();
  Message message;
  message.protocol = "/test/1.0.0";
  network.send(alice.swarm().local_id(), bob.swarm().local_id(), message);
  network.remove_host(bob.swarm().local_id());
  sim.run();
  EXPECT_TRUE(bob.received.empty());
}

TEST_F(NetworkTest, LatencyIsSymmetricAndPositive) {
  const auto ab = network.latency(alice.swarm().local_id(), bob.swarm().local_id());
  EXPECT_GT(ab, 0);
  EXPECT_LE(ab, 200 * common::kMillisecond);
}

TEST(LatencyModel, DeterministicBasePerPair) {
  LatencyModel model;
  common::Rng rng(1);
  model.jitter_fraction = 0.0;
  const auto a = p2p::PeerId::from_seed(1);
  const auto b = p2p::PeerId::from_seed(2);
  EXPECT_EQ(model.one_way(a, b, rng), model.one_way(a, b, rng));
  EXPECT_EQ(model.one_way(a, b, rng), model.one_way(b, a, rng));
}

}  // namespace
}  // namespace ipfs::net
