// Property and determinism tests for the pluggable condition model
// (net/conditions.hpp, DESIGN.md §9).  Mirrors the oracle style of the
// RoutingTable::closest property test: random peers, seeds and specs,
// checked against independently computed bounds and a byte-stable golden.
#include "net/conditions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "net/network.hpp"
#include "p2p/swarm.hpp"
#include "sim/simulation.hpp"
#include "testing/hosts.hpp"

namespace ipfs::net {
namespace {

using common::kHour;
using common::kMillisecond;
using common::Rng;
using common::SimDuration;
using common::SimTime;
using p2p::PeerId;

/// A zoned spec exercising every latency path: four zones, a partial link
/// matrix, and a default link for the unlisted pairs.
ConditionSpec zoned_spec() {
  ConditionSpec spec;
  spec.zones = {
      {.name = "eu", .weight = 0.4, .intra_min = 5, .intra_max = 25},
      {.name = "na", .weight = 0.3, .intra_min = 8, .intra_max = 30},
      {.name = "ap", .weight = 0.2, .intra_min = 10, .intra_max = 40},
      {.name = "sa", .weight = 0.1, .intra_min = 12, .intra_max = 45},
  };
  spec.default_link = {.min_one_way = 90, .max_one_way = 200};
  spec.links = {
      {.from = "eu", .to = "na", .min_one_way = 40, .max_one_way = 80},
      {.from = "eu", .to = "ap", .min_one_way = 110, .max_one_way = 170},
  };
  return spec;
}

/// The bounds the model promises for a pair, derived independently from
/// the spec (the "oracle" side of the property test).
std::pair<SimDuration, SimDuration> expected_range(const ConditionSpec& spec,
                                                   std::size_t zone_a,
                                                   std::size_t zone_b) {
  if (zone_a == zone_b) {
    return {spec.zones[zone_a].intra_min, spec.zones[zone_a].intra_max};
  }
  for (const ZoneLinkSpec& link : spec.links) {
    const auto matches = [&](std::string_view from, std::string_view to) {
      return spec.zones[zone_a].name == from && spec.zones[zone_b].name == to;
    };
    if (matches(link.from, link.to) || matches(link.to, link.from)) {
      return {link.min_one_way, link.max_one_way};
    }
  }
  return {spec.default_link.min_one_way, spec.default_link.max_one_way};
}

TEST(ConditionModel, FlatFallbackMatchesLatencyModelOracle) {
  // A zoneless model must be the legacy LatencyModel bit-for-bit: same
  // base, same single jitter draw, for any pair and any seed.
  Rng rng(0xfa11bac);
  for (int round = 0; round < 25; ++round) {
    LatencyModel flat;
    flat.min_one_way = 1 + static_cast<SimDuration>(rng.uniform_u64(20));
    flat.max_one_way = flat.min_one_way + static_cast<SimDuration>(rng.uniform_u64(300));
    flat.jitter_fraction = rng.uniform(0.0, 0.5);
    ConditionSpec spec;
    spec.latency = flat;
    const ConditionModel model(spec, rng());

    Rng jitter_a(42 + round);
    Rng jitter_b(42 + round);
    for (int i = 0; i < 50; ++i) {
      const PeerId a = PeerId::random(rng);
      const PeerId b = PeerId::random(rng);
      const SimTime now = static_cast<SimTime>(rng.uniform_u64(72 * kHour));
      EXPECT_EQ(model.one_way(a, b, now, jitter_a), flat.one_way(a, b, jitter_b));
    }
  }
}

TEST(ConditionModel, ZonedLatencyWithinConfiguredBounds) {
  Rng rng(0xb0317d5);
  for (int round = 0; round < 10; ++round) {
    ConditionSpec spec = zoned_spec();
    spec.latency.jitter_fraction = round % 2 == 0 ? 0.0 : 0.25;
    ASSERT_EQ(ConditionSpec::validate(spec), std::nullopt);
    const ConditionModel model(spec, rng());
    Rng jitter(rng());
    for (int i = 0; i < 400; ++i) {
      const PeerId a = PeerId::random(rng);
      const PeerId b = PeerId::random(rng);
      const auto [min, max] =
          expected_range(spec, model.zone_of(a), model.zone_of(b));
      const SimDuration sample = model.one_way(a, b, 0, jitter);
      const double f = spec.latency.jitter_fraction;
      const auto lo = std::max<SimDuration>(
          static_cast<SimDuration>(static_cast<double>(min) * (1.0 - f)), 1);
      const auto hi =
          static_cast<SimDuration>(static_cast<double>(max) * (1.0 + f)) + 1;
      EXPECT_GE(sample, lo) << "round=" << round;
      EXPECT_LE(sample, hi) << "round=" << round;
    }
  }
}

TEST(ConditionModel, BaseLatencySymmetricWhenSpecSaysSo) {
  ConditionSpec spec = zoned_spec();
  spec.latency.jitter_fraction = 0.0;  // isolate the base
  const ConditionModel symmetric(spec, 7);
  spec.symmetric = false;
  const ConditionModel asymmetric(spec, 7);

  Rng rng(0x5abb1e);
  Rng jitter(1);
  std::size_t differing = 0;
  for (int i = 0; i < 200; ++i) {
    const PeerId a = PeerId::random(rng);
    const PeerId b = PeerId::random(rng);
    EXPECT_EQ(symmetric.one_way(a, b, 0, jitter), symmetric.one_way(b, a, 0, jitter));
    // Asymmetric bases are still deterministic per direction.
    EXPECT_EQ(asymmetric.one_way(a, b, 0, jitter),
              asymmetric.one_way(a, b, 0, jitter));
    if (asymmetric.one_way(a, b, 0, jitter) != asymmetric.one_way(b, a, 0, jitter)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0u);  // direction must matter for *some* pair
}

TEST(ConditionModel, ZoneAssignmentStableAndRoughlyWeighted) {
  const ConditionSpec spec = zoned_spec();
  const ConditionModel model(spec, 99);
  const ConditionModel twin(spec, 99);
  const ConditionModel other_seed(spec, 100);

  Rng rng(0x20e5);
  std::array<std::size_t, 4> histogram{};
  std::size_t moved = 0;
  const std::size_t n = 4000;
  for (std::size_t i = 0; i < n; ++i) {
    const PeerId id = PeerId::random(rng);
    const std::size_t zone = model.zone_of(id);
    ASSERT_LT(zone, spec.zones.size());
    EXPECT_EQ(zone, twin.zone_of(id));  // same seed => same geography
    if (zone != other_seed.zone_of(id)) ++moved;
    ++histogram[zone];
  }
  for (std::size_t z = 0; z < spec.zones.size(); ++z) {
    const double expected = spec.zones[z].weight * static_cast<double>(n);
    EXPECT_NEAR(static_cast<double>(histogram[z]), expected, 0.25 * expected)
        << "zone " << spec.zones[z].name;
  }
  EXPECT_GT(moved, n / 4);  // a different seed reshuffles the map
}

TEST(ConditionModel, DialFailureZeroNeverFiresOneAlwaysFires) {
  ConditionSpec spec;
  const ConditionModel never(spec, 1);
  spec.loss.dial_failure = 1.0;
  spec.loss.message_loss = 1.0;
  const ConditionModel always(spec, 1);

  Rng rng(0xd1a7);
  for (int i = 0; i < 200; ++i) {
    const PeerId a = PeerId::random(rng);
    const PeerId b = PeerId::random(rng);
    const SimTime now = static_cast<SimTime>(rng.uniform_u64(24 * kHour));
    EXPECT_FALSE(never.dial_failure(a, b, now));
    EXPECT_FALSE(never.message_lost(a, b, now));
    EXPECT_TRUE(always.dial_failure(a, b, now));
    EXPECT_TRUE(always.message_lost(a, b, now));
  }
}

TEST(ConditionModel, DialFailureRateTracksProbability) {
  ConditionSpec spec;
  spec.loss.dial_failure = 0.3;
  const ConditionModel model(spec, 4);
  Rng rng(0x30a7e);
  std::size_t failed = 0;
  const std::size_t n = 5000;
  for (std::size_t i = 0; i < n; ++i) {
    const PeerId a = PeerId::random(rng);
    const PeerId b = PeerId::random(rng);
    if (model.dial_failure(a, b, static_cast<SimTime>(i))) ++failed;
  }
  EXPECT_NEAR(static_cast<double>(failed) / static_cast<double>(n), 0.3, 0.03);
}

TEST(ConditionModel, NatClassesGateInboundWithCategoryOverride) {
  ConditionSpec spec;
  spec.nat.classes = {
      {.name = "public", .weight = 0.5, .accepts_inbound = true},
      {.name = "nat", .weight = 0.5, .accepts_inbound = false},
  };
  spec.nat.categories = {{"light-client", "nat"}, {"core-server", "public"}};
  ASSERT_EQ(ConditionSpec::validate(spec), std::nullopt);
  const ConditionModel model(spec, 11);

  Rng rng(0xa47);
  std::size_t refused = 0;
  for (int i = 0; i < 1000; ++i) {
    const PeerId id = PeerId::random(rng);
    // The category mapping always wins over the hash assignment.
    EXPECT_FALSE(model.accepts_inbound(id, "light-client"));
    EXPECT_TRUE(model.accepts_inbound(id, "core-server"));
    // Unmapped categories fall back to the weighted hash.
    if (!model.accepts_inbound(id)) ++refused;
  }
  EXPECT_NEAR(static_cast<double>(refused) / 1000.0, 0.5, 0.08);
}

TEST(ConditionModel, OutageBlocksPathOnlyDuringWindow) {
  ConditionSpec spec = zoned_spec();
  spec.disturbances = {{.kind = DisturbanceSpec::Kind::kOutage,
                        .zone = "ap",
                        .from = 2 * kHour,
                        .until = 3 * kHour}};
  ASSERT_EQ(ConditionSpec::validate(spec), std::nullopt);
  const ConditionModel model(spec, 3);

  // Find one peer per side of the outage.
  Rng rng(0x07a6e);
  PeerId inside = PeerId::random(rng);
  while (model.zone_of(inside) != 2) inside = PeerId::random(rng);
  PeerId outside = PeerId::random(rng);
  while (model.zone_of(outside) == 2) outside = PeerId::random(rng);

  EXPECT_TRUE(model.path_open(inside, outside, 2 * kHour - 1));
  EXPECT_FALSE(model.path_open(inside, outside, 2 * kHour));
  EXPECT_FALSE(model.path_open(outside, inside, 3 * kHour - 1));
  EXPECT_TRUE(model.path_open(inside, outside, 3 * kHour));
  EXPECT_TRUE(model.zone_down(inside, 2 * kHour + 1));
  EXPECT_FALSE(model.zone_down(outside, 2 * kHour + 1));
  // Traffic not touching the zone is unaffected mid-window.
  EXPECT_TRUE(model.path_open(outside, outside, 2 * kHour + 1));
}

TEST(ConditionModel, PartitionCutsCrossBoundaryPairsOnly) {
  ConditionSpec spec = zoned_spec();
  spec.disturbances = {{.kind = DisturbanceSpec::Kind::kPartition,
                        .zones = {"eu", "na"},
                        .from = 0,
                        .until = kHour}};
  ASSERT_EQ(ConditionSpec::validate(spec), std::nullopt);
  const ConditionModel model(spec, 5);

  Rng rng(0x9a5);
  const auto peer_in_zone = [&](std::size_t zone) {
    PeerId id = PeerId::random(rng);
    while (model.zone_of(id) != zone) id = PeerId::random(rng);
    return id;
  };
  const PeerId eu = peer_in_zone(0);
  const PeerId na = peer_in_zone(1);
  const PeerId ap = peer_in_zone(2);
  const PeerId sa = peer_in_zone(3);

  // Within either side of the boundary: open.
  EXPECT_TRUE(model.path_open(eu, na, 1));
  EXPECT_TRUE(model.path_open(ap, sa, 1));
  // Across the boundary: cut while the window is active.
  EXPECT_FALSE(model.path_open(eu, ap, 1));
  EXPECT_FALSE(model.path_open(sa, na, 1));
  EXPECT_TRUE(model.path_open(eu, ap, kHour));  // window over
  // Members are cut from external observers (crawlers); the rest are not.
  EXPECT_TRUE(model.zone_partitioned(eu, 1));
  EXPECT_TRUE(model.zone_partitioned(na, 1));
  EXPECT_FALSE(model.zone_partitioned(ap, 1));
  EXPECT_FALSE(model.zone_partitioned(eu, kHour));
  // A partition is not an outage.
  EXPECT_FALSE(model.zone_down(eu, 1));
}

TEST(ConditionModel, RecurringWindowRepeatsEveryPeriod) {
  DisturbanceSpec diurnal;
  diurnal.kind = DisturbanceSpec::Kind::kDegrade;
  diurnal.from = 2 * kHour;
  diurnal.until = 8 * kHour;
  diurnal.period = 24 * kHour;
  for (int day = 0; day < 4; ++day) {
    const SimTime base = day * 24 * kHour;
    EXPECT_FALSE(diurnal.active_at(base + 2 * kHour - 1)) << day;
    EXPECT_TRUE(diurnal.active_at(base + 2 * kHour)) << day;
    EXPECT_TRUE(diurnal.active_at(base + 8 * kHour - 1)) << day;
    EXPECT_FALSE(diurnal.active_at(base + 8 * kHour)) << day;
  }
  EXPECT_FALSE(diurnal.active_at(0));  // never before the first window
}

TEST(ConditionModel, DegradeMultipliesLatencyAndAddsLoss) {
  ConditionSpec spec = zoned_spec();
  spec.latency.jitter_fraction = 0.0;
  spec.disturbances = {{.kind = DisturbanceSpec::Kind::kDegrade,
                        .zone = "eu",
                        .from = 0,
                        .until = kHour,
                        .latency_factor = 3.0,
                        .extra_loss = 1.0}};
  ASSERT_EQ(ConditionSpec::validate(spec), std::nullopt);
  const ConditionModel model(spec, 13);

  Rng rng(0xde64ade);
  PeerId eu = PeerId::random(rng);
  while (model.zone_of(eu) != 0) eu = PeerId::random(rng);
  PeerId na = PeerId::random(rng);
  while (model.zone_of(na) != 1) na = PeerId::random(rng);

  Rng jitter(1);
  const SimDuration calm = model.one_way(eu, na, kHour, jitter);
  const SimDuration degraded = model.one_way(eu, na, 0, jitter);
  EXPECT_EQ(degraded, 3 * calm);  // jitter off => exact factor
  // extra_loss folds into both probabilistic gates while active.
  EXPECT_TRUE(model.dial_failure(eu, na, 0));
  EXPECT_TRUE(model.message_lost(eu, na, 0));
  EXPECT_FALSE(model.dial_failure(eu, na, kHour));
  // Traffic not touching "eu" is unaffected.
  PeerId ap = PeerId::random(rng);
  while (model.zone_of(ap) != 2) ap = PeerId::random(rng);
  EXPECT_FALSE(model.dial_failure(na, ap, 0));
}

TEST(ConditionModel, DefaultModelIsNeutral) {
  const ConditionModel model;
  Rng rng(0xdefa017);
  for (int i = 0; i < 50; ++i) {
    const PeerId a = PeerId::random(rng);
    const PeerId b = PeerId::random(rng);
    EXPECT_EQ(model.zone_of(a), ConditionModel::kNoZone);
    EXPECT_EQ(model.nat_class_of(a), ConditionModel::kNoClass);
    EXPECT_TRUE(model.dial_allowed(a, b, 0));
    EXPECT_TRUE(model.path_open(a, b, 123456));
    EXPECT_FALSE(model.message_lost(a, b, 0));
    EXPECT_FALSE(model.zone_down(a, 0));
  }
}

TEST(ConditionModel, SamplingByteStableForFixedRngTree) {
  // The golden trace: latency samples and gate verdicts for a fixed spec,
  // seed and jitter stream must never drift (they feed every campaign
  // export).  Regenerating this constant is a determinism break — treat
  // it like a serialization format change.
  ConditionSpec spec = zoned_spec();
  spec.loss.dial_failure = 0.1;
  spec.loss.message_loss = 0.05;
  spec.nat.classes = {
      {.name = "public", .weight = 0.7, .accepts_inbound = true},
      {.name = "nat", .weight = 0.3, .accepts_inbound = false},
  };
  spec.disturbances = {{.kind = DisturbanceSpec::Kind::kDegrade,
                        .zone = "na",
                        .from = kHour,
                        .until = 2 * kHour,
                        .period = 6 * kHour,
                        .latency_factor = 2.0,
                        .extra_loss = 0.2}};
  ASSERT_EQ(ConditionSpec::validate(spec), std::nullopt);
  const ConditionModel model(spec, 0x601de2);

  Rng rng(0x7ace);
  Rng jitter(0x171e5);
  std::string trace;
  for (int i = 0; i < 500; ++i) {
    const PeerId a = PeerId::random(rng);
    const PeerId b = PeerId::random(rng);
    const SimTime now = static_cast<SimTime>(rng.uniform_u64(12 * kHour));
    trace += std::to_string(model.one_way(a, b, now, jitter));
    trace += model.dial_allowed(a, b, now) ? '+' : '-';
    trace += model.message_lost(a, b, now) ? 'x' : '.';
    trace += static_cast<char>('0' + model.zone_of(a));
  }
  EXPECT_EQ(common::hash64(trace), 0xd41b933439d13344ULL) << "trace hash drifted";
}

// ---- Network integration ----------------------------------------------------
//
// Fabric-level checks run on the shared `testing::HostNet` harness
// (tests/testing/hosts.hpp), which bakes in the Host lifetime contract —
// hosts outlive the Network — once for every suite.

TEST(ConditionModel, NetworkRefusesDialsToNatBlockedPeers) {
  ConditionSpec spec;
  spec.nat.classes = {{.name = "nat", .weight = 1.0, .accepts_inbound = false}};
  ipfs::testing::HostNet net(2, Rng(1), ConditionModel(spec, 2));

  bool ok = true;
  net.network().dial(net.id(0), net.id(1), [&](bool success) { ok = success; });
  net.sim().run();
  EXPECT_FALSE(ok);  // everyone is in the refusing class
  EXPECT_EQ(net.host(1).swarm().open_count(), 0u);
}

TEST(ConditionModel, NetworkDropsMessagesUnderFullLoss) {
  ConditionSpec spec;
  spec.loss.message_loss = 1.0;
  ipfs::testing::HostNet net(2, Rng(1), ConditionModel(spec, 2));

  net.network().dial(net.id(0), net.id(1));
  net.sim().run();
  ASSERT_TRUE(net.network().connected(net.id(0), net.id(1)));
  net.network().send(net.id(0), net.id(1), Message{.protocol = "/test/1.0.0"});
  net.sim().run();
  EXPECT_TRUE(net.host(1).received.empty());
}

TEST(ConditionModel, NetworkOutageDropsInFlightMessages) {
  // An already-connected pair stops exchanging messages while an outage
  // covers one endpoint's zone — send() consults the path, not just the
  // probabilistic loss gate.
  ConditionSpec spec;
  spec.zones = {{.name = "all", .weight = 1.0, .intra_min = 5, .intra_max = 30}};
  spec.disturbances = {{.kind = DisturbanceSpec::Kind::kOutage,
                        .zone = "all",
                        .from = 1 * kHour,
                        .until = 2 * kHour}};
  ASSERT_EQ(ConditionSpec::validate(spec), std::nullopt);
  ipfs::testing::HostNet net(2, Rng(1), ConditionModel(spec, 2));

  net.network().dial(net.id(0), net.id(1));
  net.sim().run();  // connects well before the outage
  ASSERT_TRUE(net.network().connected(net.id(0), net.id(1)));

  net.sim().run_until(1 * kHour + 1);  // inside the outage window
  net.network().send(net.id(0), net.id(1), Message{.protocol = "/test/1.0.0"});
  net.sim().run();
  EXPECT_TRUE(net.host(1).received.empty());

  net.sim().run_until(2 * kHour + 1);  // window over: traffic flows again
  net.network().send(net.id(0), net.id(1), Message{.protocol = "/test/1.0.0"});
  net.sim().run();
  EXPECT_EQ(net.host(1).received.size(), 1u);
}

TEST(ConditionSpec, ValidateRejectsProgrammaticMistakes) {
  // The JSON corpus lives in tests/scenario/network_section_test.cpp;
  // these are the same rules hit from C++-constructed specs.
  ConditionSpec bad = zoned_spec();
  bad.zones[1].weight = 0.0;
  EXPECT_NE(ConditionSpec::validate(bad), std::nullopt);

  bad = zoned_spec();
  bad.links.push_back({.from = "na", .to = "eu", .min_one_way = 1, .max_one_way = 2});
  ASSERT_TRUE(ConditionSpec::validate(bad).has_value());
  EXPECT_NE(ConditionSpec::validate(bad)->find("duplicate link"), std::string::npos);

  bad = zoned_spec();
  bad.disturbances = {
      {.kind = DisturbanceSpec::Kind::kOutage, .zone = "eu", .from = 0, .until = 10},
      {.kind = DisturbanceSpec::Kind::kOutage, .zone = "eu", .from = 5, .until = 15},
  };
  ASSERT_TRUE(ConditionSpec::validate(bad).has_value());
  EXPECT_NE(ConditionSpec::validate(bad)->find("overlaps"), std::string::npos);

  bad = zoned_spec();
  bad.disturbances = {{.kind = DisturbanceSpec::Kind::kPartition,
                       .zones = {"eu", "na", "ap", "sa"},
                       .from = 0,
                       .until = 10}};
  ASSERT_TRUE(ConditionSpec::validate(bad).has_value());
  EXPECT_NE(ConditionSpec::validate(bad)->find("outside"), std::string::npos);
}

}  // namespace
}  // namespace ipfs::net
