#include "p2p/multiaddr.hpp"

#include <gtest/gtest.h>

namespace ipfs::p2p {
namespace {

TEST(IpAddress, V4RoundTrip) {
  const auto ip = IpAddress::parse("147.28.0.5");
  ASSERT_TRUE(ip.has_value());
  EXPECT_FALSE(ip->is_v6());
  EXPECT_EQ(ip->to_string(), "147.28.0.5");
}

TEST(IpAddress, V4RejectsMalformed) {
  EXPECT_FALSE(IpAddress::parse("1.2.3").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(IpAddress::parse("256.1.1.1").has_value());
  EXPECT_FALSE(IpAddress::parse("a.b.c.d").has_value());
  EXPECT_FALSE(IpAddress::parse("").has_value());
}

TEST(IpAddress, V6RoundTrip) {
  const auto ip = IpAddress::parse("2001:db8:0:0:0:0:0:1");
  ASSERT_TRUE(ip.has_value());
  EXPECT_TRUE(ip->is_v6());
  EXPECT_EQ(ip->to_string(), "2001:db8:0:0:0:0:0:1");
}

TEST(IpAddress, V6RejectsWrongGroupCount) {
  EXPECT_FALSE(IpAddress::parse("2001:db8:0:0:1").has_value());
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7:8:9").has_value());
}

TEST(IpAddress, EqualityAndOrdering) {
  const auto a = IpAddress::v4(0x01020304);
  const auto b = IpAddress::v4(0x01020305);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, IpAddress::v4(0x01020304));
  // v4 and v6 with the same payload are distinct addresses.
  EXPECT_NE(a, IpAddress::v6(0, 0x01020304));
}

TEST(IpAddress, HashDistinguishesFamilies) {
  const auto v4 = IpAddress::v4(42);
  const auto v6 = IpAddress::v6(0, 42);
  EXPECT_NE(std::hash<IpAddress>{}(v4), std::hash<IpAddress>{}(v6));
}

TEST(Multiaddr, TcpToString) {
  const Multiaddr addr{IpAddress::v4(0x7f000001), Transport::kTcp, 4001};
  EXPECT_EQ(addr.to_string(), "/ip4/127.0.0.1/tcp/4001");
}

TEST(Multiaddr, QuicToString) {
  const Multiaddr addr{IpAddress::v4(0x01010101), Transport::kQuic, 4001};
  EXPECT_EQ(addr.to_string(), "/ip4/1.1.1.1/udp/4001/quic");
}

TEST(Multiaddr, WebsocketToString) {
  const Multiaddr addr{IpAddress::v4(0x01010101), Transport::kWebsocket, 8081};
  EXPECT_EQ(addr.to_string(), "/ip4/1.1.1.1/tcp/8081/ws");
}

struct RoundTripCase {
  const char* text;
};

class MultiaddrRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(MultiaddrRoundTrip, ParsePrintIdentity) {
  const auto addr = Multiaddr::parse(GetParam().text);
  ASSERT_TRUE(addr.has_value()) << GetParam().text;
  EXPECT_EQ(addr->to_string(), GetParam().text);
}

INSTANTIATE_TEST_SUITE_P(
    Addresses, MultiaddrRoundTrip,
    ::testing::Values(RoundTripCase{"/ip4/147.28.0.5/tcp/4001"},
                      RoundTripCase{"/ip4/10.0.0.1/udp/4001/quic"},
                      RoundTripCase{"/ip4/8.8.8.8/tcp/8081/ws"},
                      RoundTripCase{"/ip6/2001:db8:0:0:0:0:0:1/tcp/4001"}));

TEST(Multiaddr, ParseRejectsMalformed) {
  EXPECT_FALSE(Multiaddr::parse("").has_value());
  EXPECT_FALSE(Multiaddr::parse("ip4/1.2.3.4/tcp/1").has_value());
  EXPECT_FALSE(Multiaddr::parse("/ip5/1.2.3.4/tcp/1").has_value());
  EXPECT_FALSE(Multiaddr::parse("/ip4/1.2.3.4/tcp").has_value());
  EXPECT_FALSE(Multiaddr::parse("/ip4/1.2.3.4/udp/1").has_value());  // udp needs quic
  EXPECT_FALSE(Multiaddr::parse("/ip4/1.2.3.4/sctp/1").has_value());
  EXPECT_FALSE(Multiaddr::parse("/ip4/1.2.3.4/tcp/notaport").has_value());
}

TEST(Multiaddr, OrderingGroupsByIp) {
  const Multiaddr a{IpAddress::v4(1), Transport::kTcp, 1};
  const Multiaddr b{IpAddress::v4(1), Transport::kTcp, 2};
  const Multiaddr c{IpAddress::v4(2), Transport::kTcp, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(TransportNames, Stable) {
  EXPECT_EQ(to_string(Transport::kTcp), "tcp");
  EXPECT_EQ(to_string(Transport::kQuic), "quic");
  EXPECT_EQ(to_string(Transport::kWebsocket), "ws");
}

}  // namespace
}  // namespace ipfs::p2p
