#include "p2p/peerstore.hpp"

#include <gtest/gtest.h>

#include "p2p/protocols.hpp"

namespace ipfs::p2p {
namespace {

struct EventLog : PeerstoreObserver {
  struct AgentChange {
    PeerId peer;
    std::string previous;
    std::string current;
    common::SimTime at;
  };
  std::vector<PeerId> added_peers;
  std::vector<AgentChange> agent_changes;
  std::vector<std::pair<std::vector<std::string>, std::vector<std::string>>>
      protocol_changes;
  std::vector<Multiaddr> addresses;

  void on_peer_added(const PeerId& peer, common::SimTime) override {
    added_peers.push_back(peer);
  }
  void on_agent_changed(const PeerId& peer, const std::string& previous,
                        const std::string& current, common::SimTime at) override {
    agent_changes.push_back({peer, previous, current, at});
  }
  void on_protocols_changed(const PeerId&, const std::vector<std::string>& added,
                            const std::vector<std::string>& removed,
                            common::SimTime) override {
    protocol_changes.emplace_back(added, removed);
  }
  void on_address_added(const PeerId&, const Multiaddr& address,
                        common::SimTime) override {
    addresses.push_back(address);
  }
};

class PeerstoreTest : public ::testing::Test {
 protected:
  PeerstoreTest() { store.add_observer(&log); }
  Peerstore store;
  EventLog log;
  PeerId pid = PeerId::from_seed(1);
};

TEST_F(PeerstoreTest, TouchCreatesEntryOnce) {
  EXPECT_TRUE(store.touch(pid, 100));
  EXPECT_FALSE(store.touch(pid, 200));
  EXPECT_EQ(store.size(), 1u);
  ASSERT_EQ(log.added_peers.size(), 1u);
  const auto* entry = store.find(pid);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->first_seen, 100);
  EXPECT_EQ(entry->last_seen, 200);
}

TEST_F(PeerstoreTest, LastSeenNeverDecreases) {
  store.touch(pid, 500);
  store.touch(pid, 100);
  EXPECT_EQ(store.find(pid)->last_seen, 500);
}

TEST_F(PeerstoreTest, SetAgentFiresOnChangeOnly) {
  store.set_agent(pid, "go-ipfs/0.10.0/a", 10);
  store.set_agent(pid, "go-ipfs/0.10.0/a", 20);  // no-op
  store.set_agent(pid, "go-ipfs/0.11.0/b", 30);
  ASSERT_EQ(log.agent_changes.size(), 2u);
  EXPECT_EQ(log.agent_changes[0].previous, "");
  EXPECT_EQ(log.agent_changes[0].current, "go-ipfs/0.10.0/a");
  EXPECT_EQ(log.agent_changes[1].previous, "go-ipfs/0.10.0/a");
  EXPECT_EQ(log.agent_changes[1].current, "go-ipfs/0.11.0/b");
  EXPECT_EQ(log.agent_changes[1].at, 30);
}

TEST_F(PeerstoreTest, SetProtocolsComputesDiff) {
  store.set_protocols(pid, {"a", "b"}, 10);
  store.set_protocols(pid, {"b", "c"}, 20);
  ASSERT_EQ(log.protocol_changes.size(), 2u);
  EXPECT_EQ(log.protocol_changes[0].first, (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(log.protocol_changes[0].second.empty());
  EXPECT_EQ(log.protocol_changes[1].first, (std::vector<std::string>{"c"}));
  EXPECT_EQ(log.protocol_changes[1].second, (std::vector<std::string>{"a"}));
}

TEST_F(PeerstoreTest, SetProtocolsIdenticalIsSilent) {
  store.set_protocols(pid, {"a"}, 10);
  store.set_protocols(pid, {"a"}, 20);
  EXPECT_EQ(log.protocol_changes.size(), 1u);
}

TEST_F(PeerstoreTest, KadAnnouncementMarksServerForever) {
  store.set_protocols(pid, {std::string(protocols::kKad)}, 10);
  EXPECT_TRUE(store.find(pid)->ever_dht_server);
  store.set_protocols(pid, {}, 20);  // role switch to client
  EXPECT_TRUE(store.find(pid)->ever_dht_server);
  EXPECT_FALSE(store.supports(pid, protocols::kKad));
}

TEST_F(PeerstoreTest, SupportsChecksCurrentSet) {
  store.set_protocols(pid, {std::string(protocols::kPing)}, 10);
  EXPECT_TRUE(store.supports(pid, protocols::kPing));
  EXPECT_FALSE(store.supports(pid, protocols::kKad));
  EXPECT_FALSE(store.supports(PeerId::from_seed(99), protocols::kPing));
}

TEST_F(PeerstoreTest, AddressesDeduplicated) {
  const Multiaddr addr{IpAddress::v4(42), Transport::kTcp, 4001};
  store.add_address(pid, addr, 10);
  store.add_address(pid, addr, 20);
  EXPECT_EQ(log.addresses.size(), 1u);
  EXPECT_EQ(store.find(pid)->addresses.size(), 1u);
}

TEST_F(PeerstoreTest, FindUnknownReturnsNull) {
  EXPECT_EQ(store.find(PeerId::from_seed(7)), nullptr);
}

TEST_F(PeerstoreTest, MultiplePeersIndependent) {
  const PeerId other = PeerId::from_seed(2);
  store.set_agent(pid, "a", 1);
  store.set_agent(other, "b", 1);
  EXPECT_EQ(store.find(pid)->agent, "a");
  EXPECT_EQ(store.find(other)->agent, "b");
  EXPECT_EQ(store.size(), 2u);
}

}  // namespace
}  // namespace ipfs::p2p
