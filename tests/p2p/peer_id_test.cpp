#include "p2p/peer_id.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace ipfs::p2p {
namespace {

TEST(PeerId, DefaultIsZero) {
  PeerId id;
  EXPECT_TRUE(id.is_zero());
  EXPECT_EQ(id.leading_zero_bits(), 256u);
}

TEST(PeerId, FromSeedDeterministic) {
  EXPECT_EQ(PeerId::from_seed(1), PeerId::from_seed(1));
  EXPECT_NE(PeerId::from_seed(1), PeerId::from_seed(2));
}

TEST(PeerId, RandomIdsAreDistinct) {
  common::Rng rng(1);
  std::set<PeerId> ids;
  for (int i = 0; i < 10000; ++i) ids.insert(PeerId::random(rng));
  EXPECT_EQ(ids.size(), 10000u);
}

TEST(PeerId, XorSelfIsZero) {
  const PeerId id = PeerId::from_seed(99);
  EXPECT_TRUE((id ^ id).is_zero());
}

TEST(PeerId, XorIsInvolution) {
  const PeerId a = PeerId::from_seed(1);
  const PeerId b = PeerId::from_seed(2);
  EXPECT_EQ((a ^ b) ^ b, a);
}

TEST(PeerId, BitIndexingMatchesPrefix) {
  common::Rng rng(5);
  // An id with prefix 0xff00... must have its first 8 bits set.
  const PeerId id = PeerId::with_prefix(0xff00000000000000ULL, 8, rng);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_TRUE(id.bit(i)) << i;
}

TEST(PeerId, WithPrefixForcesTopBits) {
  common::Rng rng(6);
  for (int round = 0; round < 100; ++round) {
    const std::uint64_t prefix = rng();
    const PeerId id = PeerId::with_prefix(prefix, 16, rng);
    EXPECT_EQ(id.prefix64() >> 48, prefix >> 48);
  }
}

TEST(PeerId, WithPrefixZeroBitsIsUnconstrained) {
  common::Rng rng(7);
  const PeerId a = PeerId::with_prefix(0xffffffffffffffffULL, 0, rng);
  const PeerId b = PeerId::with_prefix(0xffffffffffffffffULL, 0, rng);
  EXPECT_NE(a, b);
}

TEST(PeerId, LeadingZeroBits) {
  common::Rng rng(8);
  const PeerId a = PeerId::with_prefix(0x8000000000000000ULL, 1, rng);
  EXPECT_EQ(a.leading_zero_bits(), 0u);
  // 0x0000800000000000 has 16 leading zero bits, then a one at bit 16;
  // forcing the top 33 bits makes them part of the id.
  const PeerId b = PeerId::with_prefix(0x0000800000000000ULL, 33, rng);
  EXPECT_EQ(b.leading_zero_bits(), 16u);
}

TEST(PeerId, OrderingIsTotal) {
  const PeerId a = PeerId::from_seed(1);
  const PeerId b = PeerId::from_seed(2);
  EXPECT_TRUE((a < b) != (b < a));
  EXPECT_TRUE(a == a);
}

TEST(PeerId, ToStringFormat) {
  const PeerId id = PeerId::from_seed(12345);
  const std::string text = id.to_string();
  EXPECT_EQ(text.substr(0, 8), "12D3KooW");
  EXPECT_EQ(text.size(), 19u);
  EXPECT_EQ(text, id.to_string());  // stable
}

TEST(PeerId, ToStringMostlyUnique) {
  common::Rng rng(9);
  std::set<std::string> names;
  for (int i = 0; i < 1000; ++i) names.insert(PeerId::random(rng).to_string());
  EXPECT_GT(names.size(), 995u);
}

TEST(PeerId, HashUsablePrefix) {
  const PeerId id = PeerId::from_seed(4);
  EXPECT_EQ(std::hash<PeerId>{}(id), static_cast<std::size_t>(id.prefix64()));
}

}  // namespace
}  // namespace ipfs::p2p
