#include "p2p/swarm.hpp"

#include <gtest/gtest.h>

namespace ipfs::p2p {
namespace {

using common::kSecond;

struct CloseLog : SwarmObserver {
  std::vector<Connection> opened;
  std::vector<Connection> closed;
  void on_connection_opened(const Connection& connection) override {
    opened.push_back(connection);
  }
  void on_connection_closed(const Connection& connection) override {
    closed.push_back(connection);
  }
};

class SwarmTest : public ::testing::Test {
 protected:
  SwarmTest()
      : swarm(sim, PeerId::from_seed(1),
              Multiaddr{IpAddress::v4(1), Transport::kTcp, 4001},
              {ConnManagerConfig::with_watermarks(2, 4), true}) {
    swarm.add_observer(&log);
  }

  Multiaddr remote_addr(std::uint32_t ip) {
    return Multiaddr{IpAddress::v4(ip), Transport::kTcp, 4001};
  }

  sim::Simulation sim;
  Swarm swarm;
  CloseLog log;
};

TEST_F(SwarmTest, OpenCloseLifecycle) {
  const auto id =
      swarm.open_connection(PeerId::from_seed(2), remote_addr(2), Direction::kInbound);
  EXPECT_EQ(swarm.open_count(), 1u);
  EXPECT_TRUE(swarm.connected_to(PeerId::from_seed(2)));
  ASSERT_NE(swarm.find(id), nullptr);
  EXPECT_TRUE(swarm.find(id)->is_open());

  sim.run_until(10 * kSecond);
  EXPECT_TRUE(swarm.close_connection(id, CloseReason::kRemoteClose));
  EXPECT_EQ(swarm.open_count(), 0u);
  EXPECT_FALSE(swarm.connected_to(PeerId::from_seed(2)));
  ASSERT_EQ(log.closed.size(), 1u);
  EXPECT_EQ(log.closed[0].reason, CloseReason::kRemoteClose);
  EXPECT_EQ(log.closed[0].closed, 10 * kSecond);
  EXPECT_EQ(log.closed[0].duration_at(sim.now()), 10 * kSecond);
}

TEST_F(SwarmTest, DoubleCloseReturnsFalse) {
  const auto id =
      swarm.open_connection(PeerId::from_seed(2), remote_addr(2), Direction::kInbound);
  EXPECT_TRUE(swarm.close_connection(id, CloseReason::kLocalClose));
  EXPECT_FALSE(swarm.close_connection(id, CloseReason::kLocalClose));
  EXPECT_FALSE(swarm.close_connection(9999, CloseReason::kLocalClose));
}

TEST_F(SwarmTest, PeerstoreLearnsAddressOnOpen) {
  swarm.open_connection(PeerId::from_seed(2), remote_addr(42), Direction::kInbound);
  const auto* entry = swarm.peerstore().find(PeerId::from_seed(2));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->addresses.count(remote_addr(42)), 1u);
}

TEST_F(SwarmTest, MultipleConnectionsPerPeer) {
  const PeerId remote = PeerId::from_seed(2);
  const auto a = swarm.open_connection(remote, remote_addr(2), Direction::kInbound);
  const auto b = swarm.open_connection(remote, remote_addr(2), Direction::kOutbound);
  EXPECT_NE(a, b);
  EXPECT_EQ(swarm.open_count(), 2u);
  swarm.close_connection(a, CloseReason::kLocalClose);
  EXPECT_TRUE(swarm.connected_to(remote));  // second connection remains
  swarm.close_connection(b, CloseReason::kLocalClose);
  EXPECT_FALSE(swarm.connected_to(remote));
}

TEST_F(SwarmTest, ClosePeerClosesAll) {
  const PeerId remote = PeerId::from_seed(2);
  swarm.open_connection(remote, remote_addr(2), Direction::kInbound);
  swarm.open_connection(remote, remote_addr(2), Direction::kInbound);
  swarm.open_connection(PeerId::from_seed(3), remote_addr(3), Direction::kInbound);
  EXPECT_EQ(swarm.close_peer(remote, CloseReason::kPeerOffline), 2u);
  EXPECT_EQ(swarm.open_count(), 1u);
}

TEST_F(SwarmTest, CloseAll) {
  for (int i = 2; i < 6; ++i) {
    swarm.open_connection(PeerId::from_seed(static_cast<std::uint64_t>(i)),
                          remote_addr(static_cast<std::uint32_t>(i)),
                          Direction::kInbound);
  }
  swarm.close_all(CloseReason::kMeasurementEnd);
  EXPECT_EQ(swarm.open_count(), 0u);
  EXPECT_EQ(log.closed.size(), 4u);
  for (const Connection& connection : log.closed) {
    EXPECT_EQ(connection.reason, CloseReason::kMeasurementEnd);
  }
}

TEST_F(SwarmTest, TrimOnHighWaterCrossing) {
  // HighWater = 4: the fifth connection triggers an immediate trim to
  // LowWater = 2, but only connections past the 20 s grace period close.
  for (int i = 2; i <= 5; ++i) {
    swarm.open_connection(PeerId::from_seed(static_cast<std::uint64_t>(i)),
                          remote_addr(static_cast<std::uint32_t>(i)),
                          Direction::kInbound);
  }
  EXPECT_EQ(swarm.open_count(), 4u);
  sim.run_until(30 * kSecond);  // all four leave the grace period
  swarm.open_connection(PeerId::from_seed(6), remote_addr(6), Direction::kInbound);
  // 5 open > HighWater=4 -> trim to LowWater=2.
  EXPECT_EQ(swarm.open_count(), 2u);
  for (const Connection& connection : log.closed) {
    EXPECT_EQ(connection.reason, CloseReason::kLocalTrim);
  }
}

TEST_F(SwarmTest, PeriodicTrimLoop) {
  swarm.start();
  for (int i = 2; i <= 6; ++i) {
    swarm.open_connection(PeerId::from_seed(static_cast<std::uint64_t>(i)),
                          remote_addr(static_cast<std::uint32_t>(i)),
                          Direction::kInbound);
  }
  // All inside grace: the on-open trim could not close anything yet.
  EXPECT_EQ(swarm.open_count(), 5u);
  sim.run_until(60 * kSecond);  // trim ticks run every 10 s
  EXPECT_EQ(swarm.open_count(), 2u);
  swarm.stop();
}

TEST_F(SwarmTest, TrimHonoursProtection) {
  sim.run_until(0);
  std::vector<ConnectionId> ids;
  for (int i = 2; i <= 6; ++i) {
    const PeerId remote = PeerId::from_seed(static_cast<std::uint64_t>(i));
    ids.push_back(swarm.open_connection(remote, remote_addr(2), Direction::kInbound));
    swarm.conn_manager().protect(remote);
  }
  sim.run_until(60 * kSecond);
  EXPECT_EQ(swarm.trim_now(), 0u);
  EXPECT_EQ(swarm.open_count(), 5u);
}

TEST_F(SwarmTest, OpenedTotalCounts) {
  for (int i = 0; i < 3; ++i) {
    const auto id = swarm.open_connection(PeerId::from_seed(2), remote_addr(2),
                                          Direction::kInbound);
    swarm.close_connection(id, CloseReason::kLocalClose);
  }
  EXPECT_EQ(swarm.opened_total(), 3u);
  EXPECT_EQ(swarm.open_count(), 0u);
}

TEST_F(SwarmTest, ObserverRemoval) {
  swarm.remove_observer(&log);
  swarm.open_connection(PeerId::from_seed(2), remote_addr(2), Direction::kInbound);
  EXPECT_TRUE(log.opened.empty());
}

TEST_F(SwarmTest, ConnectionIdsAreUniqueAndMonotonic) {
  ConnectionId previous = 0;
  for (int i = 0; i < 10; ++i) {
    const auto id = swarm.open_connection(PeerId::from_seed(2), remote_addr(2),
                                          Direction::kInbound);
    EXPECT_GT(id, previous);
    previous = id;
    swarm.close_connection(id, CloseReason::kLocalClose);
  }
}

TEST(SwarmNoTrim, DisabledTrimKeepsEverything) {
  sim::Simulation sim;
  Swarm swarm(sim, PeerId::from_seed(1),
              Multiaddr{IpAddress::v4(1), Transport::kTcp, 4001},
              {ConnManagerConfig::with_watermarks(1, 2), /*trim_enabled=*/false});
  swarm.start();
  for (int i = 2; i < 30; ++i) {
    swarm.open_connection(PeerId::from_seed(static_cast<std::uint64_t>(i)),
                          Multiaddr{IpAddress::v4(static_cast<std::uint32_t>(i)),
                                    Transport::kTcp, 4001},
                          Direction::kInbound);
  }
  sim.run_until(120 * kSecond);
  EXPECT_EQ(swarm.open_count(), 28u);
}

}  // namespace
}  // namespace ipfs::p2p
