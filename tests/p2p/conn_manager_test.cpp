#include "p2p/conn_manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ipfs::p2p {
namespace {

using common::kSecond;

/// Helper: build `count` open connections with ages spread one second apart
/// (oldest first), all older than the grace period by default.
std::vector<Connection> make_connections(std::size_t count,
                                         common::SimTime now = 1000 * kSecond) {
  std::vector<Connection> connections(count);
  for (std::size_t i = 0; i < count; ++i) {
    connections[i].id = i + 1;
    connections[i].remote = PeerId::from_seed(i + 1);
    connections[i].opened = now - static_cast<common::SimTime>(count - i) * kSecond -
                            30 * kSecond;
  }
  return connections;
}

std::vector<const Connection*> views(const std::vector<Connection>& connections) {
  std::vector<const Connection*> pointers;
  for (const Connection& connection : connections) pointers.push_back(&connection);
  return pointers;
}

TEST(ConnManager, NoTrimBelowHighWater) {
  ConnManager manager(ConnManagerConfig::with_watermarks(5, 10));
  const auto connections = make_connections(10);
  EXPECT_TRUE(manager.plan_trim(views(connections), 1000 * kSecond).empty());
}

TEST(ConnManager, TrimsDownToLowWater) {
  ConnManager manager(ConnManagerConfig::with_watermarks(5, 10));
  const auto connections = make_connections(14);
  const auto plan = manager.plan_trim(views(connections), 1000 * kSecond);
  EXPECT_EQ(plan.size(), 9u);  // 14 -> 5
}

TEST(ConnManager, GracePeriodProtectsNewConnections) {
  ConnManagerConfig config = ConnManagerConfig::with_watermarks(2, 4);
  ConnManager manager(config);
  const common::SimTime now = 1000 * kSecond;
  auto connections = make_connections(6, now);
  // Make every connection brand new: all inside the 20 s grace period.
  for (Connection& connection : connections) connection.opened = now - 5 * kSecond;
  EXPECT_TRUE(manager.plan_trim(views(connections), now).empty());
}

TEST(ConnManager, ProtectedPeersSurvive) {
  ConnManager manager(ConnManagerConfig::with_watermarks(0, 2));
  const auto connections = make_connections(5);
  for (const Connection& connection : connections) manager.protect(connection.remote);
  EXPECT_TRUE(manager.plan_trim(views(connections), 1000 * kSecond).empty());
  manager.unprotect(connections[0].remote);
  const auto plan = manager.plan_trim(views(connections), 1000 * kSecond);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], connections[0].id);
}

TEST(ConnManager, LowTagValuesTrimFirst) {
  ConnManager manager(ConnManagerConfig::with_watermarks(2, 4));
  const auto connections = make_connections(6);
  // Give the first four connections high tags; the last two default to 0.
  for (std::size_t i = 0; i < 4; ++i) manager.set_tag(connections[i].remote, 100);
  const auto plan = manager.plan_trim(views(connections), 1000 * kSecond);
  ASSERT_EQ(plan.size(), 4u);
  // The two untagged close first.
  EXPECT_TRUE(std::find(plan.begin(), plan.end(), connections[4].id) != plan.end());
  EXPECT_TRUE(std::find(plan.begin(), plan.end(), connections[5].id) != plan.end());
}

TEST(ConnManager, EqualTagVictimsArePseudoRandomButDeterministic) {
  ConnManager manager(ConnManagerConfig::with_watermarks(3, 4));
  const auto connections = make_connections(8);
  // Same instant -> same victims (determinism, DESIGN.md §5).
  const auto plan_a = manager.plan_trim(views(connections), 1000 * kSecond);
  const auto plan_b = manager.plan_trim(views(connections), 1000 * kSecond);
  ASSERT_EQ(plan_a.size(), 5u);
  EXPECT_EQ(plan_a, plan_b);
  // Different trim instants shuffle the equal-tag victim order (go-libp2p's
  // arbitrary in-segment order), giving lifetimes their geometric tail.
  std::set<std::vector<ConnectionId>> distinct_plans;
  for (int tick = 0; tick < 16; ++tick) {
    distinct_plans.insert(
        manager.plan_trim(views(connections), (1000 + tick) * kSecond));
  }
  EXPECT_GT(distinct_plans.size(), 1u);
}

TEST(ConnManager, TagLifecycle) {
  ConnManager manager(ConnManagerConfig{});
  const PeerId peer = PeerId::from_seed(1);
  EXPECT_EQ(manager.tag(peer), 0);
  manager.set_tag(peer, 42);
  EXPECT_EQ(manager.tag(peer), 42);
  manager.clear_tag(peer);
  EXPECT_EQ(manager.tag(peer), 0);
}

TEST(ConnManager, GoIpfsDefaults) {
  const auto config = ConnManagerConfig::go_ipfs_default();
  EXPECT_EQ(config.low_water, 600);
  EXPECT_EQ(config.high_water, 900);
  EXPECT_EQ(config.grace_period, 20 * kSecond);
}

TEST(ConnManager, ZeroHighWaterDisablesTrimming) {
  ConnManager manager(ConnManagerConfig::with_watermarks(0, 0));
  const auto connections = make_connections(10);
  EXPECT_TRUE(manager.plan_trim(views(connections), 1000 * kSecond).empty());
}

/// Property sweep: after applying the plan, the open count is LowWater
/// whenever enough non-grace candidates exist.
class TrimSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TrimSweep, PlanRestoresLowWater) {
  const auto [low, high, open_count] = GetParam();
  ConnManager manager(ConnManagerConfig::with_watermarks(low, high));
  const auto connections = make_connections(static_cast<std::size_t>(open_count));
  const auto plan = manager.plan_trim(views(connections), 1000 * kSecond);
  if (open_count <= high) {
    EXPECT_TRUE(plan.empty());
  } else {
    EXPECT_EQ(static_cast<int>(connections.size() - plan.size()), low);
  }
  // A plan never closes the same connection twice.
  std::set<ConnectionId> unique(plan.begin(), plan.end());
  EXPECT_EQ(unique.size(), plan.size());
}

INSTANTIATE_TEST_SUITE_P(
    Watermarks, TrimSweep,
    ::testing::Values(std::make_tuple(5, 10, 8), std::make_tuple(5, 10, 11),
                      std::make_tuple(5, 10, 50), std::make_tuple(600, 900, 901),
                      std::make_tuple(0, 3, 10), std::make_tuple(2, 2, 3),
                      std::make_tuple(1, 4, 4)));

}  // namespace
}  // namespace ipfs::p2p
