// Shared host-vs-Network test harness.
//
// Every fabric-level suite used to hand-roll the same minimal `net::Host`
// and — more dangerously — its own member ordering around the Host
// lifetime contract (network.hpp): registered hosts must outlive the
// `Network`, or deregister first, because ~Network detaches its swarm
// taps through the still-alive hosts.  Getting the order wrong aborts the
// whole suite under Debug+ASan (the PR-4 lesson).  `HostNet` bakes the
// correct destruction order in once: hosts are declared before the
// network, so the network is destroyed first.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hpp"

namespace ipfs::testing {

/// Minimal scripted host: records delivered messages and optionally
/// refuses inbound dials.
struct ScriptedHost : net::Host {
  ScriptedHost(sim::Simulation& sim, std::uint64_t seed)
      : swarm_(sim, p2p::PeerId::from_seed(seed),
               p2p::Multiaddr{p2p::IpAddress::v4(static_cast<std::uint32_t>(seed)),
                              p2p::Transport::kTcp, 4001},
               {p2p::ConnManagerConfig::with_watermarks(0, 0), false}) {}

  p2p::Swarm& swarm() override { return swarm_; }
  bool accept_inbound(const p2p::PeerId&) override { return accept; }
  void handle_message(const p2p::PeerId& from, const net::Message& message) override {
    received.emplace_back(from, message.protocol);
  }

  [[nodiscard]] const p2p::PeerId& id() { return swarm_.local_id(); }

  p2p::Swarm swarm_;
  bool accept = true;
  std::vector<std::pair<p2p::PeerId, std::string>> received;
};

/// One simulation + `count` scripted hosts (seeds 1..count) + a network,
/// in the contract-correct declaration order, with every host registered.
class HostNet {
 public:
  explicit HostNet(std::size_t count, common::Rng network_rng = common::Rng(1),
                   net::ConditionModel conditions = net::ConditionModel{})
      : network_(sim_, std::move(network_rng), std::move(conditions)) {
    hosts_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      hosts_.push_back(std::make_unique<ScriptedHost>(sim_, i + 1));
      network_.add_host(*hosts_.back());
    }
  }

  [[nodiscard]] sim::Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] net::Network& network() noexcept { return network_; }
  [[nodiscard]] ScriptedHost& host(std::size_t i) { return *hosts_.at(i); }
  [[nodiscard]] const p2p::PeerId& id(std::size_t i) { return host(i).id(); }

 private:
  sim::Simulation sim_;
  // Hosts before the network (the Host lifetime contract): ~Network runs
  // first and detaches its taps through the still-alive hosts.
  std::vector<std::unique_ptr<ScriptedHost>> hosts_;
  net::Network network_;
};

}  // namespace ipfs::testing
