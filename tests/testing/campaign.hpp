// Shared campaign test helpers.
//
// The scenario/integration suites all need the same three moves: build a
// small-scale `CampaignConfig`, run it through the validating factory
// (failing the test on a rejected config), and capture a run's JSON
// export for byte-level comparisons.  Keeping them here stops each suite
// from re-rolling its own copy.
#pragma once

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>

#include "measure/sink.hpp"
#include "runtime/parallel.hpp"
#include "scenario/campaign.hpp"
#include "scenario/scenario_spec.hpp"

namespace ipfs::testing {

/// A scaled-down config for `period` (tests run in milliseconds, not
/// minutes).
inline scenario::CampaignConfig small_config(scenario::PeriodSpec period,
                                             double scale = 0.02,
                                             std::uint64_t seed = 7) {
  scenario::CampaignConfig config;
  config.period = std::move(period);
  config.population = scenario::PopulationSpec::test_scale(scale);
  config.seed = seed;
  return config;
}

/// Factory + run in one step; fails the test on an invalid config.
inline scenario::CampaignResult run_campaign(scenario::CampaignConfig config) {
  auto engine = scenario::CampaignEngine::create(std::move(config));
  if (!engine) {
    ADD_FAILURE() << "invalid campaign config: " << engine.error();
    return {};
  }
  return engine->run();
}

/// Run `config` into a `measure::JsonExportSink` and return the bytes.
inline std::string run_to_json(const scenario::CampaignConfig& config) {
  auto engine = scenario::CampaignEngine::create(config);
  EXPECT_TRUE(engine.has_value()) << engine.error();
  if (!engine) return {};
  std::ostringstream out;
  measure::JsonExportSink sink(out);
  engine->run(sink);
  return out.str();
}

/// `run_to_json` over a builtin scenario at the given population scale.
inline std::string run_builtin(const char* name, double scale) {
  scenario::ScenarioSpec spec = *scenario::ScenarioSpec::builtin(name);
  spec.population.scale = scale;
  return run_to_json(spec.to_campaign_config());
}

/// `run_to_json` with an intra-trial `ShardPlan` injected (DESIGN.md §13).
/// `slab == 0` keeps the plan's default slab.  The shard-invariance suites
/// compare these bytes against the plain sequential `run_to_json`.
inline std::string run_sharded_json(scenario::CampaignConfig config,
                                    unsigned shards, unsigned workers,
                                    common::SimDuration slab = 0) {
  scenario::ShardPlan plan;
  plan.shards = shards;
  plan.workers = workers;
  if (slab > 0) plan.slab = slab;
  config.sharding = plan;
  return run_to_json(config);
}

/// Run the spec's seed sweep through `ParallelTrialRunner` with the given
/// worker count and return the merged JSON-export bytes — the probe the
/// worker-count-invariance tests compare across {1, 2, 4}.
inline std::string run_sweep_bytes(const scenario::ScenarioSpec& spec,
                                   std::uint32_t workers) {
  std::ostringstream out;
  measure::JsonExportSink sink(out);
  runtime::ParallelTrialRunner runner({.workers = workers});
  auto outcome = runner.run(
      runtime::ParallelTrialRunner::seed_sweep(spec.to_campaign_config(),
                                               spec.trial_seeds()),
      sink);
  EXPECT_TRUE(outcome.has_value()) << outcome.error();
  return out.str();
}

/// Assert the sweep is byte-identical at 1, 2 and 4 workers.
inline void expect_sweep_worker_invariant(const scenario::ScenarioSpec& spec) {
  const std::string baseline = run_sweep_bytes(spec, 1);
  ASSERT_FALSE(baseline.empty());
  for (const std::uint32_t workers : {2u, 4u}) {
    EXPECT_EQ(run_sweep_bytes(spec, workers), baseline)
        << "workers=" << workers;
  }
}

}  // namespace ipfs::testing
