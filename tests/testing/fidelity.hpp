// Shared harness for protocol-fidelity unit tests: a thin adapter over the
// `ipfs::runtime` facade that hands out raw node references and keeps a
// spare RNG for ad-hoc identities.
#pragma once

#include "runtime/testbed.hpp"

namespace ipfs::testing {

class FidelityNet {
 public:
  explicit FidelityNet(std::uint64_t seed = 99)
      : testbed_(runtime::TestbedBuilder().seed(seed).build()),
        rng_(seed ^ 0x5eedULL) {}

  node::GoIpfsNode& add_node(node::NodeConfig config = {}) {
    return testbed_.add_node(std::move(config)).node();
  }

  /// Dial every node into node 0 and run the boot lookups.
  void bootstrap_all(common::SimDuration settle = 30 * common::kSecond) {
    if (testbed_.node_count() > 1) testbed_.bootstrap_all_via(testbed_.node(0));
    testbed_.run_for(settle);
  }

  [[nodiscard]] runtime::Testbed& testbed() noexcept { return testbed_; }
  [[nodiscard]] sim::Simulation& sim() noexcept { return testbed_.simulation(); }
  [[nodiscard]] net::Network& network() noexcept { return testbed_.network(); }
  [[nodiscard]] node::GoIpfsNode& node(std::size_t i) {
    return testbed_.node(i).node();
  }
  [[nodiscard]] std::size_t size() const noexcept { return testbed_.node_count(); }
  [[nodiscard]] common::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] net::IpAllocator& ips() noexcept { return testbed_.ips(); }

 private:
  runtime::Testbed testbed_;
  common::Rng rng_;
};

}  // namespace ipfs::testing
