// Shared harness for protocol-fidelity tests: a message-level network of
// real GoIpfsNodes (full swarm / DHT / identify / bitswap stacks).
#pragma once

#include <memory>
#include <vector>

#include "net/ip_allocator.hpp"
#include "net/network.hpp"
#include "node/go_ipfs_node.hpp"
#include "sim/simulation.hpp"

namespace ipfs::testing {

class FidelityNet {
 public:
  explicit FidelityNet(std::uint64_t seed = 99)
      : network_(sim_, common::Rng(seed)), rng_(seed ^ 0x5eedULL),
        ips_(common::Rng(seed ^ 0x1bULL)) {}

  node::GoIpfsNode& add_node(node::NodeConfig config = {}) {
    const auto id = p2p::PeerId::random(rng_);
    const auto address = net::swarm_tcp_addr(ips_.unique_v4());
    nodes_.push_back(
        std::make_unique<node::GoIpfsNode>(sim_, network_, id, address, config));
    nodes_.back()->start();
    return *nodes_.back();
  }

  /// Dial every node into node 0 and run the boot lookups.
  void bootstrap_all(common::SimDuration settle = 30 * common::kSecond) {
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
      nodes_[i]->bootstrap({nodes_[0]->id()});
    }
    sim_.run_until(sim_.now() + settle);
  }

  [[nodiscard]] sim::Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] net::Network& network() noexcept { return network_; }
  [[nodiscard]] node::GoIpfsNode& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] common::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] net::IpAllocator& ips() noexcept { return ips_; }

 private:
  sim::Simulation sim_;
  net::Network network_;
  common::Rng rng_;
  net::IpAllocator ips_;
  std::vector<std::unique_ptr<node::GoIpfsNode>> nodes_;
};

}  // namespace ipfs::testing
