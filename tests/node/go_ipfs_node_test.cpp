#include "node/go_ipfs_node.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "../testing/fidelity.hpp"

namespace ipfs::node {
namespace {

using common::kMinute;
using common::kSecond;
using ipfs::testing::FidelityNet;
namespace proto = p2p::protocols;

TEST(GoIpfsNode, ConfigPresets) {
  const auto server = NodeConfig::dht_server(600, 900);
  EXPECT_EQ(server.dht_mode, dht::Mode::kServer);
  EXPECT_EQ(server.conn_manager.low_water, 600);
  EXPECT_EQ(server.conn_manager.high_water, 900);
  const auto client = NodeConfig::dht_client();
  EXPECT_EQ(client.dht_mode, dht::Mode::kClient);
}

TEST(GoIpfsNode, ServerAnnouncesKadClientDoesNot) {
  FidelityNet net;
  auto& server = net.add_node(NodeConfig::dht_server());
  auto& client = net.add_node(NodeConfig::dht_client());
  const auto server_protocols = server.announced_protocols();
  const auto client_protocols = client.announced_protocols();
  EXPECT_NE(std::find(server_protocols.begin(), server_protocols.end(),
                      std::string(proto::kKad)),
            server_protocols.end());
  EXPECT_EQ(std::find(client_protocols.begin(), client_protocols.end(),
                      std::string(proto::kKad)),
            client_protocols.end());
  // Both announce the core set.
  for (const auto* p : {&server_protocols, &client_protocols}) {
    EXPECT_NE(std::find(p->begin(), p->end(), std::string(proto::kIdentify)), p->end());
    EXPECT_NE(std::find(p->begin(), p->end(), std::string(proto::kPing)), p->end());
    EXPECT_NE(std::find(p->begin(), p->end(), std::string(proto::kBitswap120)),
              p->end());
  }
}

TEST(GoIpfsNode, IdentifyExchangesMetadataAfterConnect) {
  FidelityNet net;
  auto& a = net.add_node(NodeConfig::dht_server());
  auto& b = net.add_node(NodeConfig::dht_server());
  net.network().dial(a.id(), b.id());
  net.sim().run_until(5 * kSecond);

  const auto* a_entry = b.swarm().peerstore().find(a.id());
  ASSERT_NE(a_entry, nullptr);
  EXPECT_EQ(a_entry->agent, a.agent());
  EXPECT_TRUE(a_entry->protocols.contains(std::string(proto::kKad)));
  EXPECT_TRUE(a_entry->ever_dht_server);

  const auto* b_entry = a.swarm().peerstore().find(b.id());
  ASSERT_NE(b_entry, nullptr);
  EXPECT_EQ(b_entry->agent, b.agent());
}

TEST(GoIpfsNode, IdentifiedServersEnterRoutingTable) {
  FidelityNet net;
  auto& a = net.add_node(NodeConfig::dht_server());
  auto& b = net.add_node(NodeConfig::dht_server());
  auto& c = net.add_node(NodeConfig::dht_client());
  net.network().dial(b.id(), a.id());
  net.network().dial(c.id(), a.id());
  net.sim().run_until(5 * kSecond);
  EXPECT_TRUE(a.dht().routing_table().contains(b.id()));
  // Clients never enter the table.
  EXPECT_FALSE(a.dht().routing_table().contains(c.id()));
}

TEST(GoIpfsNode, AgentChangePushedToConnectedPeers) {
  FidelityNet net;
  auto& a = net.add_node(NodeConfig::dht_server());
  auto& b = net.add_node(NodeConfig::dht_server());
  net.network().dial(a.id(), b.id());
  net.sim().run_until(5 * kSecond);

  a.set_agent("go-ipfs/0.12.0/deadbeef");
  net.sim().run_until(net.sim().now() + 5 * kSecond);
  const auto* entry = b.swarm().peerstore().find(a.id());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->agent, "go-ipfs/0.12.0/deadbeef");
}

TEST(GoIpfsNode, RoleSwitchPushedViaIdentify) {
  FidelityNet net;
  auto& a = net.add_node(NodeConfig::dht_server());
  auto& b = net.add_node(NodeConfig::dht_server());
  net.network().dial(a.id(), b.id());
  net.sim().run_until(5 * kSecond);
  ASSERT_TRUE(b.swarm().peerstore().supports(a.id(), proto::kKad));

  a.set_dht_mode(dht::Mode::kClient);
  net.sim().run_until(net.sim().now() + 5 * kSecond);
  EXPECT_FALSE(b.swarm().peerstore().supports(a.id(), proto::kKad));
  // The paper's ever-server marker survives the role switch.
  EXPECT_TRUE(b.swarm().peerstore().find(a.id())->ever_dht_server);
  // And b's routing table drops the demoted peer.
  EXPECT_FALSE(b.dht().routing_table().contains(a.id()));
}

TEST(GoIpfsNode, AutonatToggleChangesAnnouncement) {
  FidelityNet net;
  auto& a = net.add_node(NodeConfig::dht_server());
  auto& b = net.add_node(NodeConfig::dht_server());
  net.network().dial(a.id(), b.id());
  net.sim().run_until(5 * kSecond);
  ASSERT_TRUE(b.swarm().peerstore().supports(a.id(), proto::kAutonat));
  a.set_autonat(false);
  net.sim().run_until(net.sim().now() + 5 * kSecond);
  EXPECT_FALSE(b.swarm().peerstore().supports(a.id(), proto::kAutonat));
}

TEST(GoIpfsNode, PingMeasuresRtt) {
  FidelityNet net;
  auto& a = net.add_node();
  auto& b = net.add_node();
  net.network().dial(a.id(), b.id());
  net.sim().run_until(5 * kSecond);

  common::SimDuration rtt = -1;
  a.ping(b.id(), [&](common::SimDuration measured) { rtt = measured; });
  net.sim().run_until(net.sim().now() + 5 * kSecond);
  EXPECT_GT(rtt, 0);
  EXPECT_LT(rtt, 1 * kSecond);
}

TEST(GoIpfsNode, StopDisconnectsFromNetwork) {
  FidelityNet net;
  auto& a = net.add_node();
  auto& b = net.add_node();
  net.network().dial(a.id(), b.id());
  net.sim().run_until(5 * kSecond);
  ASSERT_EQ(b.swarm().open_count(), 1u);

  a.stop();
  net.sim().run_until(net.sim().now() + 5 * kSecond);
  EXPECT_FALSE(net.network().online(a.id()));
  EXPECT_EQ(b.swarm().open_count(), 0u);
}

TEST(GoIpfsNode, BootstrapConnectsAndPopulatesTable) {
  FidelityNet net;
  auto& hub = net.add_node(NodeConfig::dht_server());
  auto& joiner = net.add_node(NodeConfig::dht_server());
  joiner.bootstrap({hub.id()});
  net.sim().run_until(30 * kSecond);
  EXPECT_TRUE(joiner.swarm().connected_to(hub.id()));
  EXPECT_TRUE(joiner.dht().routing_table().contains(hub.id()));
}

TEST(GoIpfsNode, ConnectionTrimmingUnderLowWatermarks) {
  FidelityNet net;
  // Tiny watermarks so the effect shows with few nodes: low=2, high=4.
  auto& hub = net.add_node(NodeConfig::dht_server(2, 4));
  std::vector<node::GoIpfsNode*> others;
  for (int i = 0; i < 8; ++i) {
    others.push_back(&net.add_node(NodeConfig::dht_client()));
  }
  for (auto* other : others) {
    net.network().dial(other->id(), hub.id());
  }
  net.sim().run_until(5 * common::kMinute);
  // The hub's connection manager must have trimmed to at most HighWater.
  EXPECT_LE(hub.swarm().open_count(), 4u);
  EXPECT_GE(hub.swarm().opened_total(), 8u);
}

TEST(GoIpfsNode, DhtServersSurviveTrimsLongerThanClients) {
  FidelityNet net;
  auto& hub = net.add_node(NodeConfig::dht_server(3, 6));
  std::vector<node::GoIpfsNode*> servers;
  std::vector<node::GoIpfsNode*> clients;
  for (int i = 0; i < 3; ++i) servers.push_back(&net.add_node(NodeConfig::dht_server()));
  for (int i = 0; i < 6; ++i) clients.push_back(&net.add_node(NodeConfig::dht_client()));
  for (auto* peer : servers) net.network().dial(peer->id(), hub.id());
  net.sim().run_until(10 * kSecond);  // identify completes; servers get tagged
  for (auto* peer : clients) net.network().dial(peer->id(), hub.id());
  net.sim().run_until(5 * kMinute);

  std::size_t servers_connected = 0;
  for (auto* peer : servers) {
    if (hub.swarm().connected_to(peer->id())) ++servers_connected;
  }
  // Tagged DHT servers survive; the untagged client overflow was trimmed.
  EXPECT_EQ(servers_connected, 3u);
  EXPECT_LE(hub.swarm().open_count(), 6u);
}

}  // namespace
}  // namespace ipfs::node
