#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ipfs::common {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table("TABLE X");
  table.set_header({"Period", "Sum", "Avg"});
  table.add_row({"P0", "1'285'513", "196.556 s"});
  table.add_rule();
  table.add_row({"P1", "355'965", "802.617 s"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("TABLE X"), std::string::npos);
  EXPECT_NE(text.find("Period"), std::string::npos);
  EXPECT_NE(text.find("1'285'513"), std::string::npos);
  EXPECT_NE(text.find("P1"), std::string::npos);
  // Columns are pipe-separated.
  EXPECT_NE(text.find(" | "), std::string::npos);
}

TEST(TextTable, CountsRows) {
  TextTable table("t");
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"a"});
  table.add_rule();
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(FormatPercent, OneDecimal) {
  EXPECT_EQ(format_percent(0.531), "53.1 %");
  EXPECT_EQ(format_percent(0.0), "0.0 %");
  EXPECT_EQ(format_percent(1.0), "100.0 %");
}

TEST(FormatFixed, RespectsDecimals) {
  EXPECT_EQ(format_fixed(196.5558, 3), "196.556");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(LogBar, MonotoneInCount) {
  const auto small = log_bar(10, 100000, 40).size();
  const auto medium = log_bar(1000, 100000, 40).size();
  const auto large = log_bar(100000, 100000, 40).size();
  EXPECT_LT(small, medium);
  EXPECT_LT(medium, large);
  EXPECT_EQ(large, 40u);
}

TEST(LogBar, EdgeCases) {
  EXPECT_TRUE(log_bar(0, 100, 40).empty());
  EXPECT_TRUE(log_bar(10, 0, 40).empty());
  EXPECT_TRUE(log_bar(10, 100, 0).empty());
  EXPECT_FALSE(log_bar(1, 100, 40).empty());  // nonzero count always visible
}

}  // namespace
}  // namespace ipfs::common
