#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ipfs::common {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ChildIsIndependentOfParentContinuation) {
  Rng parent(7);
  Rng child = parent.child(1);
  // The child must not replay the parent's stream.
  Rng parent_copy(7);
  (void)parent_copy();  // consume the value the child derivation consumed
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent_copy()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(4);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 58ULL, 1000003ULL}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.uniform_u64(bound), bound);
    }
  }
}

TEST(Rng, UniformU64CoversSmallRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(6);
  bool saw_low = false;
  bool saw_high = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_low |= v == -3;
    saw_high |= v == 3;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(8);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(50.0);
  const double mean = sum / kSamples;
  EXPECT_NEAR(mean, 50.0, 1.0);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(9);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.03);
}

TEST(Rng, ParetoLowerBoundHolds) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(2.5, 1.2), 2.5);
  }
}

TEST(Rng, BernoulliFrequencyMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(12);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_NEAR(counts[0] / double(kSamples), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(kSamples), 0.3, 0.012);
  EXPECT_NEAR(counts[2] / double(kSamples), 0.6, 0.012);
}

TEST(Rng, WeightedIndexHandlesZeroTotal) {
  Rng rng(13);
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(weights), 0u);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(14);
  for (int round = 0; round < 50; ++round) {
    const auto sample = rng.sample_without_replacement(100, 20);
    ASSERT_EQ(sample.size(), 20u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (const std::size_t s : sample) EXPECT_LT(s, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(15);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementClampsOversizedRequest) {
  Rng rng(16);
  const auto sample = rng.sample_without_replacement(5, 50);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(Hash64, StableAndDistinct) {
  EXPECT_EQ(hash64("go-ipfs"), hash64("go-ipfs"));
  EXPECT_NE(hash64("go-ipfs"), hash64("go-ipfs/"));
  EXPECT_NE(hash64(""), hash64("a"));
}

TEST(Mix64, OrderSensitive) {
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
}

}  // namespace
}  // namespace ipfs::common
