#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ipfs::common {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.max(), 0.0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(-3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), -3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), -3.5);
  EXPECT_DOUBLE_EQ(stats.max(), -3.5);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({42.0}), 42.0);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> data{0.0, 10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(data, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.125), 5.0);
}

TEST(Cdf, FractionAtMost) {
  Cdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(100.0), 1.0);
}

TEST(Cdf, EmptyIsSafe) {
  Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.value_at_fraction(0.5), 0.0);
}

TEST(Cdf, ValueAtFractionInverse) {
  Cdf cdf({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(cdf.value_at_fraction(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.value_at_fraction(1.0), 50.0);
  EXPECT_DOUBLE_EQ(cdf.value_at_fraction(0.5), 30.0);
}

TEST(Cdf, LogSpacedPointsMonotonic) {
  common::Rng rng(77);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.pareto(10.0, 1.1));
  Cdf cdf(std::move(samples));
  const auto points = cdf.log_spaced_points(1.0, 1e6, 50);
  ASSERT_EQ(points.size(), 50u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].first, points[i - 1].first);
    EXPECT_GE(points[i].second, points[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(points.back().second, cdf.fraction_at_most(1e6));
}

TEST(Cdf, LogSpacedPointsRejectsBadRange) {
  Cdf cdf({1.0});
  EXPECT_TRUE(cdf.log_spaced_points(0.0, 10.0, 5).empty());
  EXPECT_TRUE(cdf.log_spaced_points(10.0, 1.0, 5).empty());
  EXPECT_TRUE(cdf.log_spaced_points(1.0, 10.0, 1).empty());
}

TEST(CountedHistogram, CountsAndTotals) {
  CountedHistogram histogram;
  histogram.add("a");
  histogram.add("a");
  histogram.add("b", 5);
  EXPECT_EQ(histogram.count("a"), 2u);
  EXPECT_EQ(histogram.count("b"), 5u);
  EXPECT_EQ(histogram.count("c"), 0u);
  EXPECT_EQ(histogram.total(), 7u);
  EXPECT_EQ(histogram.distinct(), 2u);
}

TEST(CountedHistogram, TopWithOtherGroupsSmallCategories) {
  CountedHistogram histogram;
  histogram.add("big", 1000);
  histogram.add("mid", 200);
  histogram.add("tiny1", 3);
  histogram.add("tiny2", 2);
  const auto rows = histogram.top_with_other(100);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, "big");
  EXPECT_EQ(rows[1].first, "mid");
  EXPECT_EQ(rows[2].first, "other");
  EXPECT_EQ(rows[2].second, 5u);
}

TEST(CountedHistogram, TopWithOtherNoGrouping) {
  CountedHistogram histogram;
  histogram.add("x", 10);
  const auto rows = histogram.top_with_other(0);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].first, "x");
}

TEST(WithThousands, FormatsLikeThePaper) {
  EXPECT_EQ(with_thousands(std::uint64_t{0}), "0");
  EXPECT_EQ(with_thousands(std::uint64_t{999}), "999");
  EXPECT_EQ(with_thousands(std::uint64_t{1000}), "1'000");
  EXPECT_EQ(with_thousands(std::uint64_t{1285513}), "1'285'513");
  EXPECT_EQ(with_thousands(std::int64_t{-47516}), "-47'516");
}

}  // namespace
}  // namespace ipfs::common
