#include "common/json.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ipfs::common {
namespace {

TEST(JsonWriter, EmptyObject) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.end_object();
  EXPECT_EQ(out.str(), "{}");
}

TEST(JsonWriter, ScalarFields) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("name", "go-ipfs");
  json.field("count", std::int64_t{42});
  json.field("ratio", 0.5);
  json.field("flag", true);
  json.key("nothing");
  json.null();
  json.end_object();
  EXPECT_EQ(out.str(),
            R"({"name":"go-ipfs","count":42,"ratio":0.5,"flag":true,"nothing":null})");
}

TEST(JsonWriter, NestedArrays) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("values");
  json.begin_array();
  json.value(std::int64_t{1});
  json.value(std::int64_t{2});
  json.begin_array();
  json.value(std::int64_t{3});
  json.end_array();
  json.end_array();
  json.end_object();
  EXPECT_EQ(out.str(), R"({"values":[1,2,[3]]})");
}

TEST(JsonWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, EscapedStringValue) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("path", "/ipfs/kad/1.0.0");
  json.end_object();
  EXPECT_EQ(out.str(), R"({"path":"/ipfs/kad/1.0.0"})");
}

TEST(JsonWriter, NonFiniteDoubleBecomesNull) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.end_array();
  EXPECT_EQ(out.str(), "[null,null]");
}

TEST(JsonWriter, PrettyPrintingIndents) {
  std::ostringstream out;
  JsonWriter json(out, /*pretty=*/true);
  json.begin_object();
  json.field("a", std::int64_t{1});
  json.end_object();
  EXPECT_EQ(out.str(), "{\n  \"a\": 1\n}");
}

TEST(JsonWriter, ArrayOfObjects) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_array();
  for (int i = 0; i < 2; ++i) {
    json.begin_object();
    json.field("i", std::int64_t{i});
    json.end_object();
  }
  json.end_array();
  EXPECT_EQ(out.str(), R"([{"i":0},{"i":1}])");
}

TEST(JsonWriter, DoubleRoundTripsExactly) {
  // The writer picks the shortest precision that parses back to the same
  // double; many-digit values must survive write -> parse unchanged.
  for (const double value : {0.93, 1980.0, 0.1234567890123456, 1.0 / 3.0}) {
    std::ostringstream out;
    JsonWriter json(out);
    json.begin_array();
    json.value(value);
    json.end_array();
    const auto parsed = JsonValue::parse(out.str());
    ASSERT_TRUE(parsed.has_value()) << out.str();
    EXPECT_EQ(parsed->as_array()[0].as_double(), value) << out.str();
  }
}

TEST(JsonValue, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null")->is_null());
  EXPECT_EQ(JsonValue::parse("true")->as_bool(), true);
  EXPECT_EQ(JsonValue::parse("false")->as_bool(), false);
  EXPECT_EQ(JsonValue::parse("42")->as_int64(), 42);
  EXPECT_EQ(JsonValue::parse("-7")->as_int64(), -7);
  EXPECT_DOUBLE_EQ(JsonValue::parse("2.5")->as_double(), 2.5);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1e3")->as_double(), 1000.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonValue, IntegersKeepFullPrecision) {
  // 64-bit seeds must not drift through a double.
  const auto big = JsonValue::parse("18446744073709551615");
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(big->as_uint64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(big->as_int64(), std::nullopt);

  const auto negative = JsonValue::parse("-9223372036854775808");
  ASSERT_TRUE(negative.has_value());
  EXPECT_EQ(negative->as_int64(), std::numeric_limits<std::int64_t>::min());

  // Fractional forms are numbers but not integers.
  EXPECT_EQ(JsonValue::parse("2.0")->as_int64(), std::nullopt);
  EXPECT_FALSE(JsonValue::parse("2.0")->is_integer());
}

TEST(JsonValue, ParsesNestedStructures) {
  const auto doc = JsonValue::parse(
      R"({"name":"p4","nested":{"list":[1,2,3],"empty":{}},"ok":true})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->find("name")->as_string(), "p4");
  const JsonValue* nested = doc->find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->find("list")->as_array().size(), 3u);
  EXPECT_EQ(nested->find("list")->as_array()[2].as_int64(), 3);
  EXPECT_TRUE(nested->find("empty")->as_object().empty());
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(JsonValue, PreservesMemberOrder) {
  const auto doc = JsonValue::parse(R"({"z":1,"a":2,"m":3})");
  ASSERT_TRUE(doc.has_value());
  const JsonValue::Object& members = doc->as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonValue, DecodesStringEscapes) {
  const auto doc = JsonValue::parse(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(), "a\"b\\c\nd\teA");
}

TEST(JsonValue, ErrorsCarryLineAndColumn) {
  const auto doc = JsonValue::parse("{\n  \"a\": bogus\n}");
  ASSERT_FALSE(doc.has_value());
  EXPECT_TRUE(doc.error().starts_with("2:")) << doc.error();
}

TEST(JsonValue, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "01a", "\"unterminated",
        "[1] trailing", "{\"a\":1,}", "nan", "+1", "- 1", "1.e3", "01", "-007"}) {
    EXPECT_FALSE(JsonValue::parse(bad).has_value()) << bad;
  }
}

TEST(JsonValue, WriterOutputParsesBack) {
  std::ostringstream out;
  JsonWriter json(out, /*pretty=*/true);
  json.begin_object();
  json.field("name", "round trip");
  json.field("count", std::uint64_t{20211203});
  json.key("values");
  json.begin_array();
  json.value(0.93);
  json.value(false);
  json.null();
  json.end_array();
  json.end_object();

  const auto doc = JsonValue::parse(out.str());
  ASSERT_TRUE(doc.has_value()) << out.str();
  EXPECT_EQ(doc->find("name")->as_string(), "round trip");
  EXPECT_EQ(doc->find("count")->as_uint64(), 20211203u);
  const JsonValue::Array& values = doc->find("values")->as_array();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0].as_double(), 0.93);
  EXPECT_EQ(values[1].as_bool(), false);
  EXPECT_TRUE(values[2].is_null());
}

}  // namespace
}  // namespace ipfs::common
