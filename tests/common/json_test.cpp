#include "common/json.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ipfs::common {
namespace {

TEST(JsonWriter, EmptyObject) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.end_object();
  EXPECT_EQ(out.str(), "{}");
}

TEST(JsonWriter, ScalarFields) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("name", "go-ipfs");
  json.field("count", std::int64_t{42});
  json.field("ratio", 0.5);
  json.field("flag", true);
  json.key("nothing");
  json.null();
  json.end_object();
  EXPECT_EQ(out.str(),
            R"({"name":"go-ipfs","count":42,"ratio":0.5,"flag":true,"nothing":null})");
}

TEST(JsonWriter, NestedArrays) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("values");
  json.begin_array();
  json.value(std::int64_t{1});
  json.value(std::int64_t{2});
  json.begin_array();
  json.value(std::int64_t{3});
  json.end_array();
  json.end_array();
  json.end_object();
  EXPECT_EQ(out.str(), R"({"values":[1,2,[3]]})");
}

TEST(JsonWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, EscapedStringValue) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("path", "/ipfs/kad/1.0.0");
  json.end_object();
  EXPECT_EQ(out.str(), R"({"path":"/ipfs/kad/1.0.0"})");
}

TEST(JsonWriter, NonFiniteDoubleBecomesNull) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.end_array();
  EXPECT_EQ(out.str(), "[null,null]");
}

TEST(JsonWriter, PrettyPrintingIndents) {
  std::ostringstream out;
  JsonWriter json(out, /*pretty=*/true);
  json.begin_object();
  json.field("a", std::int64_t{1});
  json.end_object();
  EXPECT_EQ(out.str(), "{\n  \"a\": 1\n}");
}

TEST(JsonWriter, ArrayOfObjects) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_array();
  for (int i = 0; i < 2; ++i) {
    json.begin_object();
    json.field("i", std::int64_t{i});
    json.end_object();
  }
  json.end_array();
  EXPECT_EQ(out.str(), R"([{"i":0},{"i":1}])");
}

}  // namespace
}  // namespace ipfs::common
