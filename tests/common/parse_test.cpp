// Strict CLI numeric parsing (common/parse.hpp): the whole token must
// parse, signs and trailing garbage are named, and non-finite values are
// rejected — the contract behind `ipfs_sim`'s option errors.
#include <gtest/gtest.h>

#include "common/parse.hpp"

namespace ipfs::common {
namespace {

TEST(ParseU64, AcceptsPlainDecimals) {
  EXPECT_EQ(parse_u64("0").value_or(99), 0u);
  EXPECT_EQ(parse_u64("42").value_or(0), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615").value_or(0),
            18446744073709551615ULL);  // uint64 max, inclusive
}

TEST(ParseU64, RejectsWithNamedReasons) {
  const struct {
    const char* text;
    const char* expected;
  } cases[] = {
      {"", "expected a number, got ''"},
      {"abc", "expected a number, got 'abc'"},
      {"-3", "must be a non-negative integer, got '-3'"},
      {"+3", "must be a non-negative integer, got '+3'"},
      {"4x", "trailing characters after number: '4x'"},
      {"12 ", "trailing characters after number: '12 '"},
      {"3.5", "trailing characters after number: '3.5'"},
      {"0x10", "trailing characters after number: '0x10'"},
      {"18446744073709551616", "out of range: '18446744073709551616'"},
  };
  for (const auto& test_case : cases) {
    const auto parsed = parse_u64(test_case.text);
    ASSERT_FALSE(parsed.has_value()) << test_case.text;
    EXPECT_EQ(parsed.error(), test_case.expected);
  }
}

TEST(ParseFiniteDouble, AcceptsDecimalsAndExponents) {
  EXPECT_DOUBLE_EQ(parse_finite_double("0.002").value_or(0), 0.002);
  EXPECT_DOUBLE_EQ(parse_finite_double("-1.5").value_or(0), -1.5);
  EXPECT_DOUBLE_EQ(parse_finite_double("2e3").value_or(0), 2000.0);
}

TEST(ParseFiniteDouble, RejectsWithNamedReasons) {
  const struct {
    const char* text;
    const char* expected;
  } cases[] = {
      {"", "expected a number, got ''"},
      {"fast", "expected a number, got 'fast'"},
      {"1.5x", "trailing characters after number: '1.5x'"},
      {"1.5 ", "trailing characters after number: '1.5 '"},
      {"inf", "must be finite, got 'inf'"},
      {"-inf", "must be finite, got '-inf'"},
      {"nan", "must be finite, got 'nan'"},
      {"1e999", "out of range: '1e999'"},
  };
  for (const auto& test_case : cases) {
    const auto parsed = parse_finite_double(test_case.text);
    ASSERT_FALSE(parsed.has_value()) << test_case.text;
    EXPECT_EQ(parsed.error(), test_case.expected);
  }
}

}  // namespace
}  // namespace ipfs::common
