#include "common/version.hpp"

#include <gtest/gtest.h>

namespace ipfs::common {
namespace {

TEST(SemVer, ParseRelease) {
  const auto v = SemVer::parse("0.11.0");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->major, 0);
  EXPECT_EQ(v->minor, 11);
  EXPECT_EQ(v->patch, 0);
  EXPECT_TRUE(v->prerelease.empty());
}

TEST(SemVer, ParsePrerelease) {
  const auto v = SemVer::parse("0.13.0-dev");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->prerelease, "dev");
  EXPECT_EQ(v->to_string(), "0.13.0-dev");
}

TEST(SemVer, ParseRejectsMalformed) {
  EXPECT_FALSE(SemVer::parse("").has_value());
  EXPECT_FALSE(SemVer::parse("1").has_value());
  EXPECT_FALSE(SemVer::parse("1.2").has_value());
  EXPECT_FALSE(SemVer::parse("a.b.c").has_value());
  EXPECT_FALSE(SemVer::parse("1.2.x").has_value());
}

TEST(SemVer, OrderingNumeric) {
  EXPECT_LT(*SemVer::parse("0.4.23"), *SemVer::parse("0.5.0"));
  EXPECT_LT(*SemVer::parse("0.9.1"), *SemVer::parse("0.10.0"));
  EXPECT_GT(*SemVer::parse("1.0.0"), *SemVer::parse("0.99.99"));
}

TEST(SemVer, PrereleaseSortsBeforeRelease) {
  EXPECT_LT(*SemVer::parse("0.11.0-dev"), *SemVer::parse("0.11.0"));
  EXPECT_GT(*SemVer::parse("0.11.1-dev"), *SemVer::parse("0.11.0"));
}

TEST(AgentInfo, ParseFullGoIpfs) {
  const auto info = AgentInfo::parse("go-ipfs/0.11.0-dev/0c2f9d5");
  EXPECT_EQ(info.name, "go-ipfs");
  EXPECT_TRUE(info.is_go_ipfs());
  ASSERT_TRUE(info.version.has_value());
  EXPECT_EQ(info.version->minor, 11);
  EXPECT_EQ(info.commit, "0c2f9d5");
  EXPECT_FALSE(info.dirty);
}

TEST(AgentInfo, ParseDirtyBuild) {
  const auto info = AgentInfo::parse("go-ipfs/0.11.0/0c2f9d5-dirty");
  EXPECT_TRUE(info.dirty);
  EXPECT_EQ(info.commit, "0c2f9d5-dirty");
}

TEST(AgentInfo, ParseBareName) {
  const auto info = AgentInfo::parse("storm");
  EXPECT_EQ(info.name, "storm");
  EXPECT_FALSE(info.version.has_value());
  EXPECT_TRUE(info.commit.empty());
}

TEST(AgentInfo, ParseNameVersionOnly) {
  const auto info = AgentInfo::parse("hydra-booster/0.7.4");
  EXPECT_EQ(info.name, "hydra-booster");
  ASSERT_TRUE(info.version.has_value());
  EXPECT_EQ(info.version->to_string(), "0.7.4");
}

TEST(AgentInfo, ParseEmptyVersionPart) {
  const auto info = AgentInfo::parse("go-qkfile/0.9.1/");
  EXPECT_EQ(info.name, "go-qkfile");
  ASSERT_TRUE(info.version.has_value());
  EXPECT_TRUE(info.commit.empty());
}

TEST(VersionChange, UpgradeDetected) {
  const auto before = AgentInfo::parse("go-ipfs/0.10.0/abc");
  const auto after = AgentInfo::parse("go-ipfs/0.11.0/def");
  EXPECT_EQ(classify_version_change(before, after), VersionChangeKind::kUpgrade);
}

TEST(VersionChange, DowngradeDetected) {
  const auto before = AgentInfo::parse("go-ipfs/0.11.0/abc");
  const auto after = AgentInfo::parse("go-ipfs/0.10.0/def");
  EXPECT_EQ(classify_version_change(before, after), VersionChangeKind::kDowngrade);
}

TEST(VersionChange, CommitOnlyChange) {
  const auto before = AgentInfo::parse("go-ipfs/0.11.0/abc");
  const auto after = AgentInfo::parse("go-ipfs/0.11.0/def");
  EXPECT_EQ(classify_version_change(before, after), VersionChangeKind::kChange);
}

TEST(VersionChange, IdenticalIsNone) {
  const auto info = AgentInfo::parse("go-ipfs/0.11.0/abc");
  EXPECT_EQ(classify_version_change(info, info), VersionChangeKind::kNone);
}

TEST(VersionChange, NonGoIpfsIgnored) {
  const auto before = AgentInfo::parse("storm");
  const auto after = AgentInfo::parse("go-ipfs/0.11.0/abc");
  EXPECT_EQ(classify_version_change(before, after), VersionChangeKind::kNone);
}

TEST(VersionChange, DevToReleaseIsUpgrade) {
  const auto before = AgentInfo::parse("go-ipfs/0.11.0-dev/abc");
  const auto after = AgentInfo::parse("go-ipfs/0.11.0/def");
  EXPECT_EQ(classify_version_change(before, after), VersionChangeKind::kUpgrade);
}

struct DirtyCase {
  const char* before;
  const char* after;
  DirtyTransition expected;
};

class DirtyTransitionTest : public ::testing::TestWithParam<DirtyCase> {};

TEST_P(DirtyTransitionTest, Classifies) {
  const auto& param = GetParam();
  const auto before = AgentInfo::parse(param.before);
  const auto after = AgentInfo::parse(param.after);
  EXPECT_EQ(classify_dirty_transition(before, after), param.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllQuadrants, DirtyTransitionTest,
    ::testing::Values(
        DirtyCase{"go-ipfs/0.10.0/a", "go-ipfs/0.11.0/b", DirtyTransition::kMainToMain},
        DirtyCase{"go-ipfs/0.10.0/a", "go-ipfs/0.11.0/b-dirty",
                  DirtyTransition::kMainToDirty},
        DirtyCase{"go-ipfs/0.10.0/a-dirty", "go-ipfs/0.11.0/b",
                  DirtyTransition::kDirtyToMain},
        DirtyCase{"go-ipfs/0.10.0/a-dirty", "go-ipfs/0.11.0/b-dirty",
                  DirtyTransition::kDirtyToDirty}));

TEST(VersionStrings, ToStringLabels) {
  EXPECT_EQ(to_string(VersionChangeKind::kUpgrade), "upgrade");
  EXPECT_EQ(to_string(VersionChangeKind::kDowngrade), "downgrade");
  EXPECT_EQ(to_string(VersionChangeKind::kChange), "change");
  EXPECT_EQ(to_string(DirtyTransition::kMainToMain), "main-main");
  EXPECT_EQ(to_string(DirtyTransition::kDirtyToDirty), "dirty-dirty");
}

}  // namespace
}  // namespace ipfs::common
