#include "common/sim_time.hpp"

#include <gtest/gtest.h>

namespace ipfs::common {
namespace {

TEST(SimTime, UnitRelations) {
  EXPECT_EQ(kSecond, 1000);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
}

TEST(SimTime, ToSecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(1500), 1.5);
  EXPECT_EQ(from_seconds(1.5), 1500);
  EXPECT_EQ(from_seconds(to_seconds(73732)), 73732);
}

TEST(SimTime, FormatDurationWithoutDays) {
  EXPECT_EQ(format_duration(0), "00:00:00");
  EXPECT_EQ(format_duration(kHour + 2 * kMinute + 3 * kSecond), "01:02:03");
}

TEST(SimTime, FormatDurationWithDays) {
  EXPECT_EQ(format_duration(2 * kDay + 3 * kHour + 14 * kMinute + 15 * kSecond),
            "2d 03:14:15");
}

TEST(SimTime, FormatDurationNegative) {
  EXPECT_EQ(format_duration(-kMinute), "-00:01:00");
}

TEST(SimTime, FormatSeconds) {
  EXPECT_EQ(format_seconds(73732), "73.732 s");
  EXPECT_EQ(format_seconds(0), "0.000 s");
}

}  // namespace
}  // namespace ipfs::common
