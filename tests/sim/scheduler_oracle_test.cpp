// Oracle-backed scheduler property suite.
//
// Drives sim::Simulation (the ladder-queue engine) and
// sim::ReferenceHeapSimulation (the retained binary-heap original) through
// *identical* randomized command streams and asserts the execution traces —
// the full sequence of (event serial, firing time) pairs — are identical.
// That sequence is exactly the queue's pop order, so agreement proves the
// determinism contract of DESIGN.md §12: events pop in (when ascending,
// schedule order ascending), FIFO at equal timestamps, across schedule_at /
// schedule_after / schedule_every / cancel, in-action scheduling, clustered
// and sparse timestamps, and equal-time bursts.
//
// Cancellation targets are always indices into the issued-id list, never raw
// ids: the two engines use different TaskId encodings (monotonic counter vs
// generation|slot), so the *logical* task is the unit of comparison.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/reference_scheduler.hpp"
#include "sim/simulation.hpp"

namespace ipfs::sim {
namespace {

// splitmix64: cheap, high-quality deterministic stream for workload shaping.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// One command of the pre-generated workload; both engines replay the same
// list so any behavioural difference shows up as a trace divergence.
struct Command {
  enum class Op : std::uint8_t {
    kScheduleClustered,  ///< schedule_at near now (heavy ties)
    kScheduleSparse,     ///< schedule_at far in the future (upper wheels)
    kScheduleAfter,      ///< relative delay, sometimes zero/negative
    kScheduleEvery,      ///< periodic, self-cancelling after `arg2` firings
    kCancel,             ///< cancel issued[arg % issued.size()]
    kStep,               ///< step() arg times
    kRunUntil,           ///< run_until(now + arg)
  };
  Op op = Op::kStep;
  std::int64_t arg = 0;
  std::int64_t arg2 = 0;
  bool spawn_child = false;  ///< action schedules a clustered child on firing
};

std::vector<Command> make_workload(std::uint64_t seed, std::size_t commands) {
  std::vector<Command> workload;
  workload.reserve(commands);
  for (std::size_t i = 0; i < commands; ++i) {
    const std::uint64_t r = mix(seed + i);
    Command command;
    switch (r % 16) {
      case 0:
      case 1:
      case 2:
      case 3:
        command.op = Command::Op::kScheduleClustered;
        // 16 distinct offsets over a dense window: many exact ties.
        command.arg = static_cast<std::int64_t>((r >> 8) % 16);
        command.spawn_child = (r >> 16) % 4 == 0;
        break;
      case 4:
      case 5:
        command.op = Command::Op::kScheduleSparse;
        // Up to ~2^40 ms ahead: exercises the upper wheel levels and the
        // cascade path (HiEntry buckets included).
        command.arg = static_cast<std::int64_t>((r >> 8) % (1ull << 40));
        break;
      case 6:
      case 7:
      case 8:
        command.op = Command::Op::kScheduleAfter;
        // Includes 0 and negative delays (both clamp to now).
        command.arg = static_cast<std::int64_t>((r >> 8) % 4096) - 8;
        command.spawn_child = (r >> 24) % 4 == 0;
        break;
      case 9:
        command.op = Command::Op::kScheduleEvery;
        command.arg = static_cast<std::int64_t>((r >> 8) % 64);  // interval
        command.arg2 = static_cast<std::int64_t>((r >> 20) % 6) + 1;  // firings
        break;
      case 10:
      case 11:
        command.op = Command::Op::kCancel;
        command.arg = static_cast<std::int64_t>(r >> 8);
        break;
      case 12:
      case 13:
      case 14:
        command.op = Command::Op::kStep;
        command.arg = static_cast<std::int64_t>((r >> 8) % 8);
        break;
      default:
        command.op = Command::Op::kRunUntil;
        command.arg = static_cast<std::int64_t>((r >> 8) % 2048);
        break;
    }
    workload.push_back(command);
  }
  return workload;
}

/// Replays a workload on one engine, recording every firing as
/// (serial, when).  Serials are assigned in schedule order — identical
/// across engines exactly when execution order is identical.
template <typename Engine>
struct Trace {
  Engine sim;
  std::vector<TaskId> issued;
  std::vector<std::pair<std::uint64_t, common::SimTime>> firings;
  std::unordered_map<std::uint64_t, std::int64_t> remaining_firings;
  std::uint64_t next_serial = 0;

  void schedule_one_shot(common::SimTime when, bool relative, bool spawn) {
    const std::uint64_t serial = next_serial++;
    auto action = [this, serial, spawn] {
      firings.emplace_back(serial, sim.now());
      if (spawn) {
        // Child lands in the same dense window as other clustered events —
        // in-action scheduling must tie-break FIFO with driver scheduling.
        schedule_one_shot(
            sim.now() + static_cast<common::SimTime>(mix(serial) % 16),
            /*relative=*/false, /*spawn=*/false);
      }
    };
    issued.push_back(relative ? sim.schedule_after(when, action)
                              : sim.schedule_at(when, action));
  }

  void schedule_periodic(common::SimDuration interval, std::int64_t firings_left) {
    const std::uint64_t serial = next_serial++;
    remaining_firings[serial] = firings_left;
    const std::size_t index = issued.size();
    issued.push_back(kInvalidTask);  // patched below; self-cancel reads it
    issued[index] = sim.schedule_every(interval, [this, serial, index] {
      firings.emplace_back(serial, sim.now());
      // Firing counts live in the driver, not in mutable captures: the heap
      // engine copies the action per firing, the ladder invokes in place —
      // external state behaves identically under both.
      if (--remaining_firings[serial] <= 0) sim.cancel(issued[index]);
    });
  }

  void replay(const std::vector<Command>& workload) {
    for (const Command& command : workload) {
      switch (command.op) {
        case Command::Op::kScheduleClustered:
          schedule_one_shot(sim.now() + command.arg, /*relative=*/false,
                            command.spawn_child);
          break;
        case Command::Op::kScheduleSparse:
          schedule_one_shot(sim.now() + command.arg, /*relative=*/false,
                            /*spawn=*/false);
          break;
        case Command::Op::kScheduleAfter:
          schedule_one_shot(command.arg, /*relative=*/true, command.spawn_child);
          break;
        case Command::Op::kScheduleEvery:
          schedule_periodic(command.arg, command.arg2);
          break;
        case Command::Op::kCancel:
          // Only ever cancel previously-issued ids; raw guessed ids are not
          // part of the cross-engine contract (TaskId encodings differ).
          if (!issued.empty()) {
            sim.cancel(issued[static_cast<std::size_t>(command.arg) %
                              issued.size()]);
          }
          break;
        case Command::Op::kStep:
          for (std::int64_t i = 0; i < command.arg; ++i) sim.step();
          break;
        case Command::Op::kRunUntil:
          sim.run_until(sim.now() + command.arg);
          break;
      }
    }
    // Periodics self-cancel after their firing budget, so the drain ends.
    sim.run();
  }
};

void expect_identical_traces(std::uint64_t seed, std::size_t commands) {
  const std::vector<Command> workload = make_workload(seed, commands);

  Trace<Simulation> ladder;
  Trace<ReferenceHeapSimulation> heap;
  ladder.replay(workload);
  heap.replay(workload);

  ASSERT_EQ(ladder.firings.size(), heap.firings.size())
      << "seed " << seed << ": engines executed different event counts";
  for (std::size_t i = 0; i < ladder.firings.size(); ++i) {
    ASSERT_EQ(ladder.firings[i], heap.firings[i])
        << "seed " << seed << ": divergence at firing " << i << " — ladder ("
        << ladder.firings[i].first << " @ " << ladder.firings[i].second
        << ") vs heap (" << heap.firings[i].first << " @ "
        << heap.firings[i].second << ")";
  }
  EXPECT_EQ(ladder.sim.executed_events(), heap.sim.executed_events());
  EXPECT_EQ(ladder.sim.pending_events(), 0u);
  EXPECT_EQ(heap.sim.pending_events(), 0u);
  EXPECT_EQ(ladder.sim.now(), heap.sim.now());
}

TEST(SchedulerOracle, MixedWorkloadSeed1) { expect_identical_traces(0xa11ce, 4000); }
TEST(SchedulerOracle, MixedWorkloadSeed2) { expect_identical_traces(0xb0b, 4000); }
TEST(SchedulerOracle, MixedWorkloadSeed3) { expect_identical_traces(0xcafe, 4000); }
TEST(SchedulerOracle, MixedWorkloadSeed4) { expect_identical_traces(20211203, 4000); }

// Equal-time bursts: every event of a round lands on one timestamp, with a
// sprinkling of cancels — pure FIFO ordering under maximal tie pressure.
TEST(SchedulerOracle, EqualTimeBursts) {
  Trace<Simulation> ladder;
  Trace<ReferenceHeapSimulation> heap;
  auto drive = [](auto& trace) {
    for (int round = 0; round < 64; ++round) {
      const auto when = static_cast<common::SimTime>(round * 1000);
      for (int i = 0; i < 100; ++i) {
        trace.schedule_one_shot(when, /*relative=*/false, /*spawn=*/false);
      }
      // Cancel every 7th event of the round, from the middle outward.
      for (std::size_t i = trace.issued.size() - 100; i < trace.issued.size();
           i += 7) {
        trace.sim.cancel(trace.issued[i]);
      }
      trace.sim.run_until(when);
    }
    trace.sim.run();
  };
  drive(ladder);
  drive(heap);
  ASSERT_EQ(ladder.firings, heap.firings);
  EXPECT_EQ(ladder.sim.executed_events(), heap.sim.executed_events());
}

// Regression: reaping trailing cancelled records advances the ladder's
// wheel anchor without advancing the clock.  After the drain, scheduling at
// a time before the reaped records used to violate the anchor invariant
// (debug-assert on insert; out-of-order pops in release) — the heap accepts
// the same sequence, so the engines must agree.
TEST(SchedulerOracle, CancelDrainRescheduleEarlier) {
  Trace<Simulation> ladder;
  Trace<ReferenceHeapSimulation> heap;
  auto drive = [](auto& trace) {
    trace.schedule_one_shot(5, /*relative=*/false, /*spawn=*/false);
    trace.schedule_one_shot(9'999'000, /*relative=*/false, /*spawn=*/false);
    trace.sim.cancel(trace.issued[1]);
    trace.sim.run();  // drains via the cancelled far-future reap
    // now() is 5; the reaped record sat at 9'999'000.  Schedule earlier,
    // plus an event at the reaped time itself: against a stale anchor the
    // latter sits in the level-0 window and pops before the earlier one.
    trace.schedule_one_shot(trace.sim.now() + 2, /*relative=*/false,
                            /*spawn=*/false);
    trace.schedule_one_shot(9'999'000, /*relative=*/false, /*spawn=*/false);
    trace.sim.run();
    // Same shape through run_until: drain past the cancelled record only.
    trace.schedule_one_shot(7'777'000, /*relative=*/false, /*spawn=*/false);
    trace.sim.cancel(trace.issued.back());
    trace.sim.run_until(8'000'000);
    trace.schedule_one_shot(trace.sim.now() - 1'000'000, /*relative=*/false,
                            /*spawn=*/false);  // clamps to now()
    trace.schedule_one_shot(trace.sim.now() + 3, /*relative=*/false,
                            /*spawn=*/false);
    trace.sim.run();
  };
  drive(ladder);
  drive(heap);
  ASSERT_EQ(ladder.firings, heap.firings);
  EXPECT_EQ(ladder.sim.now(), heap.sim.now());
  EXPECT_EQ(ladder.sim.executed_events(), heap.sim.executed_events());
}

// Sparse far-future timestamps force multi-level cascades in the ladder
// queue; the heap is insensitive to clustering, so agreement pins the
// cascade's order preservation.
TEST(SchedulerOracle, SparseTimestampsCascadeInOrder) {
  Trace<Simulation> ladder;
  Trace<ReferenceHeapSimulation> heap;
  auto drive = [](auto& trace) {
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t r = mix(0x5ba55e + i);
      // Collide on purpose: only 256 distinct times over a 2^44 ms span.
      const auto when = static_cast<common::SimTime>(((r % 256) << 36) | (r % 7));
      trace.schedule_one_shot(when, /*relative=*/false, /*spawn=*/false);
    }
    trace.sim.run();
  };
  drive(ladder);
  drive(heap);
  ASSERT_EQ(ladder.firings, heap.firings);
}

// Recurring timers with identical intervals and phases: every firing of
// every timer ties with its cohort, indefinitely — the steady-state shape of
// campaign republish/refresh cycles.
TEST(SchedulerOracle, PeriodicCohortsKeepScheduleOrder) {
  Trace<Simulation> ladder;
  Trace<ReferenceHeapSimulation> heap;
  auto drive = [](auto& trace) {
    for (int i = 0; i < 50; ++i) trace.schedule_periodic(10, 20);
    for (int i = 0; i < 30; ++i) trace.schedule_periodic(15, 12);
    trace.sim.run();
  };
  drive(ladder);
  drive(heap);
  ASSERT_EQ(ladder.firings, heap.firings);
  EXPECT_EQ(ladder.sim.now(), heap.sim.now());
}

}  // namespace
}  // namespace ipfs::sim
