#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/reference_scheduler.hpp"

namespace ipfs::sim {
namespace {

/// Counts every special-member call so tests can pin down how the engine
/// handles callbacks: the ladder queue must move a closure exactly into its
/// arena slot and invoke it in place — never copy it (the original heap
/// engine copied on every pop, and once per firing for periodic tasks).
struct CountingCallable {
  struct Counters {
    int copies = 0;
    int moves = 0;
    int invokes = 0;
  };
  Counters* counters;

  explicit CountingCallable(Counters* c) : counters(c) {}
  CountingCallable(const CountingCallable& other) : counters(other.counters) {
    ++counters->copies;
  }
  CountingCallable(CountingCallable&& other) noexcept : counters(other.counters) {
    ++counters->moves;
  }
  CountingCallable& operator=(const CountingCallable& other) {
    counters = other.counters;
    ++counters->copies;
    return *this;
  }
  CountingCallable& operator=(CountingCallable&& other) noexcept {
    counters = other.counters;
    ++counters->moves;
    return *this;
  }
  void operator()() const { ++counters->invokes; }
};

TEST(Simulation, OneShotCallbackIsMovedNeverCopied) {
  Simulation sim;
  CountingCallable::Counters counters;
  sim.schedule_at(10, CountingCallable(&counters));
  sim.run();
  EXPECT_EQ(counters.invokes, 1);
  EXPECT_EQ(counters.copies, 0);
  EXPECT_GT(counters.moves, 0);  // into the wrapper, then into the arena
}

TEST(Simulation, PeriodicCallbackNeverCopiedAcrossFirings) {
  Simulation sim;
  CountingCallable::Counters counters;
  const TaskId id = sim.schedule_every(10, CountingCallable(&counters));
  sim.run_until(100);
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(counters.invokes, 10);
  EXPECT_EQ(counters.copies, 0);
  // The move count is fixed at hand-off: requeueing relinks the arena slot,
  // it does not touch the closure.
  const int moves_after_first_firing = counters.moves;
  EXPECT_GT(moves_after_first_firing, 0);
}

// Sensitivity check: the same probe on the retained heap engine reports the
// copies the overhaul removed (copy-out on pop; one more per periodic
// firing).  If this starts failing with zero copies, the oracle no longer
// models the original cost and the probe above has lost its witness.
TEST(Simulation, ProbeDetectsCopiesInHeapOracle) {
  ReferenceHeapSimulation heap;
  CountingCallable::Counters counters;
  heap.schedule_at(10, CountingCallable(&counters));
  heap.run();
  EXPECT_EQ(counters.invokes, 1);
  EXPECT_GT(counters.copies, 0);
}

TEST(Simulation, StartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulation, FifoAtEqualTimes) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulation, PastEventsClampToNow) {
  Simulation sim;
  sim.schedule_at(100, [&] {
    sim.schedule_at(10, [&] { EXPECT_EQ(sim.now(), 100); });
  });
  sim.run();
  EXPECT_EQ(sim.executed_events(), 2u);
}

TEST(Simulation, NegativeDelayClampsToZero) {
  Simulation sim;
  bool fired = false;
  sim.schedule_after(-100, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulation, RunUntilStopsAtLimit) {
  Simulation sim;
  int count = 0;
  sim.schedule_every(10, [&] { ++count; });
  sim.run_until(100);
  EXPECT_EQ(count, 10);  // fires at 10..100
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulation, RunUntilAdvancesClockWithoutEvents) {
  Simulation sim;
  sim.run_until(12345);
  EXPECT_EQ(sim.now(), 12345);
}

TEST(Simulation, CancelOneShot) {
  Simulation sim;
  bool fired = false;
  const TaskId id = sim.schedule_at(10, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelPeriodicStopsRepetition) {
  Simulation sim;
  int count = 0;
  TaskId id = kInvalidTask;
  id = sim.schedule_every(10, [&] {
    ++count;
    if (count == 3) sim.cancel(id);
  });
  sim.run_until(1000);
  EXPECT_EQ(count, 3);
}

TEST(Simulation, CancelUnknownIsNoOp) {
  Simulation sim;
  sim.cancel(9999);
  sim.cancel(kInvalidTask);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, PeriodicInitialDelay) {
  Simulation sim;
  std::vector<SimTime> fire_times;
  sim.schedule_every(100, [&] { fire_times.push_back(sim.now()); }, 7);
  sim.run_until(310);
  ASSERT_EQ(fire_times.size(), 4u);
  EXPECT_EQ(fire_times[0], 7);
  EXPECT_EQ(fire_times[1], 107);
  EXPECT_EQ(fire_times[3], 307);
}

TEST(Simulation, PeriodicDefaultInitialDelayIsOneInterval) {
  Simulation sim;
  std::vector<SimTime> fire_times;
  sim.schedule_every(100, [&] { fire_times.push_back(sim.now()); });
  sim.run_until(250);
  ASSERT_EQ(fire_times.size(), 2u);
  EXPECT_EQ(fire_times[0], 100);
  EXPECT_EQ(fire_times[1], 200);
}

TEST(Simulation, PeriodicZeroInitialDelayFiresImmediately) {
  Simulation sim;
  std::vector<SimTime> fire_times;
  sim.schedule_every(100, [&] { fire_times.push_back(sim.now()); }, 0);
  sim.run_until(150);
  ASSERT_EQ(fire_times.size(), 2u);
  EXPECT_EQ(fire_times[0], 0);
  EXPECT_EQ(fire_times[1], 100);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
}

TEST(Simulation, ExecutedEventsCounts) {
  Simulation sim;
  for (int i = 0; i < 25; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 25u);
}

// Regression: cancelled records advance the wheel anchor when reaped but
// never advance now(), so a drain ending in cancelled reaps left the anchor
// in the future and a subsequent earlier schedule violated the queue's
// anchor invariant (out-of-order pops; debug-assert on insert).
TEST(Simulation, RescheduleEarlierAfterCancelledTailDrains) {
  Simulation sim;
  std::vector<SimTime> fired;
  sim.schedule_at(5, [&] { fired.push_back(sim.now()); });
  const TaskId far = sim.schedule_at(9'999'000, [&] { fired.push_back(sim.now()); });
  sim.cancel(far);
  sim.run();  // reaps the cancelled tail; anchor must fall back to now()
  EXPECT_EQ(sim.now(), 5);
  // An event at the reaped record's exact time would land in the level-0
  // window of a stale anchor and pop before the earlier event.
  sim.schedule_at(9'999'000, [&] { fired.push_back(sim.now()); });
  sim.schedule_at(7, [&] { fired.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{5, 7, 9'999'000}));
  EXPECT_EQ(sim.now(), 9'999'000);
}

TEST(Simulation, ThrowingOneShotActionReleasesItsSlot) {
  Simulation sim;
  auto payload = std::make_shared<int>(42);
  std::weak_ptr<int> alive = payload;
  sim.schedule_at(10, [payload = std::move(payload)] {
    (void)payload;
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(sim.step(), std::runtime_error);
  // The closure is destroyed and the slot recycled during unwind, exactly
  // as the heap engine destroyed its copied-out Event.
  EXPECT_TRUE(alive.expired());
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.queue().free_slots(), sim.queue().arena_slots());
  // The engine stays usable after the unwind.
  bool fired = false;
  sim.schedule_at(20, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 20);
}

TEST(Simulation, ThrowingPeriodicActionStaysCancellable) {
  Simulation sim;
  int fired = 0;
  const TaskId id = sim.schedule_every(10, [&] {
    if (++fired == 2) throw std::runtime_error("boom");
  });
  EXPECT_TRUE(sim.step());
  EXPECT_THROW(sim.step(), std::runtime_error);
  // The record was requeued before the invoke, so after the unwind the task
  // is still live and cancellable, and the queue drains cleanly.
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.queue().free_slots(), sim.queue().arena_slots());
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulation sim;
    std::vector<SimTime> times;
    sim.schedule_every(17, [&] { times.push_back(sim.now()); });
    sim.schedule_every(11, [&] { times.push_back(-sim.now()); });
    sim.run_until(500);
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ipfs::sim
