// Scheduler soak test (`ctest -L slow`).
//
// Runs a ten-million-event mixed workload — recurring timers, hold-style
// one-shot chains, and a steady stream of cancellations — through the
// ladder-queue engine and asserts the arena stays bounded: slot high-water
// tracks the live event set (not total throughput), chunk count stops
// growing after warm-up, and after a full drain every slot is back on the
// free list (no dead-event leaks, cancelled or otherwise).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulation.hpp"

namespace ipfs::sim {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

TEST(SchedulerSoak, TenMillionEventsBoundedArenaNoLeaks) {
  constexpr std::size_t kTargetEvents = 10'000'000;
  constexpr std::size_t kPeriodicTimers = 20'000;
  constexpr std::size_t kHoldChains = 30'000;

  Simulation sim;
  std::uint64_t rng_state = 0x50a4;
  auto next = [&rng_state] { return mix(rng_state++); };

  // Recurring timers: live forever (cancelled at the end), recycle their
  // arena slot in place on every firing.
  std::vector<TaskId> periodics;
  periodics.reserve(kPeriodicTimers);
  std::uint64_t periodic_firings = 0;
  for (std::size_t i = 0; i < kPeriodicTimers; ++i) {
    periodics.push_back(sim.schedule_every(
        static_cast<common::SimDuration>(next() % 1000 + 1),
        [&periodic_firings] { ++periodic_firings; },
        static_cast<common::SimDuration>(next() % 1000)));
  }

  // Hold-style chains: every firing schedules a successor, so one-shot slots
  // churn through the free list at full throughput.  A ring of recent ids
  // feeds the cancellation stream; cancelled chains are reseeded so the
  // live-set size stays constant.
  std::vector<TaskId> recent(4096, kInvalidTask);
  std::uint64_t hold_firings = 0;
  std::uint64_t cancels = 0;
  std::function<void()> hop = [&] {
    ++hold_firings;
    const TaskId id = sim.schedule_after(
        static_cast<common::SimDuration>(next() % 5000 + 1), hop);
    recent[hold_firings % recent.size()] = id;
    if (hold_firings % 16 == 0) {
      // Cancel a recently scheduled chain link (sometimes already executed —
      // those cancels must be no-ops); reseed only when a live chain died,
      // so the live set stays exactly steady and the arena bound is tight.
      const TaskId victim = recent[next() % recent.size()];
      if (victim != kInvalidTask && sim.cancel(victim)) {
        ++cancels;
        sim.schedule_after(static_cast<common::SimDuration>(next() % 5000 + 1),
                           hop);
      }
    }
  };
  for (std::size_t i = 0; i < kHoldChains; ++i) {
    sim.schedule_after(static_cast<common::SimDuration>(next() % 5000 + 1), hop);
  }

  // Warm up to steady state, then record the arena footprint.
  while (sim.executed_events() < kTargetEvents / 10) sim.step();
  const std::size_t chunks_after_warmup = sim.queue().arena_chunks();

  while (sim.executed_events() < kTargetEvents) sim.step();

  // Bounded memory: 9M further events must not have grown the arena.  The
  // live set is fixed, so any growth would be a leak of dead records.
  EXPECT_EQ(sim.queue().arena_chunks(), chunks_after_warmup);
  // Bucket vectors keep their high-water capacity (clear() on cascade), so
  // they ratchet with the largest transient burst — but stay bounded by the
  // live-set geometry, never by throughput.  An O(events) leak here would
  // need hundreds of MB; tens are geometry.
  EXPECT_LE(sim.queue().bucket_capacity_bytes(), std::size_t{64} << 20);
  // Sanity on the workload mix: every component actually ran.  Short
  // periodic intervals dominate the rate (harmonic mean), so the chain share
  // is small but still hundreds of thousands of slot-churning events.
  EXPECT_GT(periodic_firings, kTargetEvents / 2);
  EXPECT_GT(hold_firings, kTargetEvents / 20);
  EXPECT_GT(cancels, kTargetEvents / 1000);

  // Teardown: stop the chains and timers, drain to empty.
  hop = [] {};  // executing chain links fire once more, scheduling nothing
  for (const TaskId id : periodics) sim.cancel(id);
  sim.run();

  EXPECT_EQ(sim.pending_events(), 0u);
  // Every arena slot ever allocated is back on the free list: no dead
  // events, no lost cancellation records, after ~10M mixed events.
  EXPECT_EQ(sim.queue().free_slots(), sim.queue().arena_slots());
}

}  // namespace
}  // namespace ipfs::sim
