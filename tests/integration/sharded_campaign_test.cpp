// Canonical-merge property tests for intra-trial sharding (DESIGN.md §13).
//
// Where shard_invariance_test.cpp pins the named scenario families on a
// fixed grid, this suite attacks the merge machinery itself:
//
//   * randomized (seed, slab-length, shard-count) campaigns against the
//     unsharded oracle — the slab length must never leak into the bytes;
//   * adversarial slab boundaries — constant-length sessions (lognormal
//     sigma = 0) tuned so every churn transition lands *exactly* on a slab
//     edge, the `at == horizon` case the lazy chain refill must absorb;
//   * republish cycles straddling slab edges;
//   * plan validation and the ShardedCampaignRunner facade's error paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>

#include "measure/sink.hpp"
#include "runtime/sharded.hpp"
#include "scenario/campaign.hpp"
#include "scenario/scenario_spec.hpp"
#include "testing/campaign.hpp"

namespace ipfs::scenario {
namespace {

using common::kHour;
using common::kMinute;
using testing::run_sharded_json;
using testing::run_to_json;

constexpr double kScale = 0.002;

CampaignConfig churned_content_config(std::uint64_t seed) {
  ScenarioSpec spec = *ScenarioSpec::builtin("content-baseline");
  spec.churn = ScenarioSpec::builtin("churn-baseline")->churn;
  spec.population.scale = kScale;
  CampaignConfig config = spec.to_campaign_config();
  config.seed = seed;
  return config;
}

TEST(ShardedCampaign, RandomizedSeedSlabShardTriplesMatchOracle) {
  // Deterministically-seeded fuzz over the three knobs that could plausibly
  // leak into the merge: the campaign seed (different event tapes), the
  // slab length (different refill cadences), the shard count (different
  // slice boundaries).  Each case compares full export bytes against the
  // unsharded oracle for the same seed.
  std::mt19937_64 fuzz(0x5eed5ab5ULL);
  std::uniform_int_distribution<std::uint64_t> seed_draw(1, 1u << 20);
  std::uniform_int_distribution<int> slab_minutes(1, 16 * 60);
  std::uniform_int_distribution<unsigned> shard_draw(1, 9);
  std::uniform_int_distribution<unsigned> worker_draw(1, 4);

  for (int round = 0; round < 6; ++round) {
    const std::uint64_t seed = seed_draw(fuzz);
    const common::SimDuration slab = slab_minutes(fuzz) * kMinute;
    const unsigned shards = shard_draw(fuzz);
    const unsigned workers = worker_draw(fuzz);

    const CampaignConfig config = churned_content_config(seed);
    const std::string oracle = run_to_json(config);
    ASSERT_FALSE(oracle.empty());
    EXPECT_EQ(run_sharded_json(config, shards, workers, slab), oracle)
        << "round=" << round << " seed=" << seed << " slab=" << slab
        << " shards=" << shards << " workers=" << workers;
  }
}

/// A churn spec with *constant* session and gap lengths (lognormal with
/// sigma = 0 collapses to its median) and everyone offline at t = 0, so
/// every peer's lifecycle is the exact same square wave: first join at
/// `gap`, transitions every `session`/`gap` thereafter.
ChurnSpec square_wave_churn(double session_ms, double gap_ms) {
  ChurnSpec churn;
  churn.session = SessionDistribution::lognormal(session_ms, 0.0);
  churn.gap = SessionDistribution::lognormal(gap_ms, 0.0);
  churn.categories.clear();
  churn.diurnal.reset();
  churn.initial_online = 0.0;
  return churn;
}

TEST(ShardedCampaign, TransitionsExactlyOnSlabEdgesMatchOracle) {
  // session = gap = 30 min, everyone offline at t = 0: the whole
  // population transitions in lockstep at exactly 30 min, 60 min, 90 min…
  // With slab = 30 min every one of those instants IS a slab horizon —
  // the precomputed chains stop strictly before the edge, so every single
  // pop exercises the lazy `extend(now + slab)` refill path.
  ScenarioSpec spec = *ScenarioSpec::builtin("churn-baseline");
  spec.population.scale = kScale;
  CampaignConfig config = spec.to_campaign_config();
  config.churn = square_wave_churn(30.0 * 60'000.0, 30.0 * 60'000.0);

  const std::string oracle = run_to_json(config);
  ASSERT_FALSE(oracle.empty());
  for (const unsigned shards : {1u, 3u, 8u}) {
    EXPECT_EQ(run_sharded_json(config, shards, 2, 30 * kMinute), oracle)
        << "shards=" << shards;
  }
}

TEST(ShardedCampaign, SessionEndOnSlabEdgeWithOnlineStartMatchesOracle) {
  // The complementary alignment: peers start *online* (first transition
  // inside the first 10 minutes), sessions are a constant 50 min, and the
  // slab is 1 h — session ends now land mid-slab and just-past-edge in
  // mixed phase, while rejoins drift across horizons.  Catches any
  // off-by-one in the `at < horizon` buffering cut.
  ScenarioSpec spec = *ScenarioSpec::builtin("churn-baseline");
  spec.population.scale = kScale;
  CampaignConfig config = spec.to_campaign_config();
  config.churn = square_wave_churn(50.0 * 60'000.0, 70.0 * 60'000.0);
  config.churn->initial_online = 1.0;

  const std::string oracle = run_to_json(config);
  ASSERT_FALSE(oracle.empty());
  EXPECT_EQ(run_sharded_json(config, 4, 2, kHour), oracle);
}

TEST(ShardedCampaign, RepublishCycleStraddlingSlabMatchesOracle) {
  // content-baseline republishes on a 12 h cadence; a 7 h slab puts every
  // republish cycle astride a slab boundary (publish in one slab, expire /
  // re-provide in the next).  The content machinery never reads the slab,
  // so the bytes must not move.
  ScenarioSpec spec = *ScenarioSpec::builtin("content-baseline");
  spec.population.scale = kScale;
  const CampaignConfig config = spec.to_campaign_config();

  const std::string oracle = run_to_json(config);
  ASSERT_FALSE(oracle.empty());
  EXPECT_EQ(run_sharded_json(config, 4, 2, 7 * kHour), oracle);
}

TEST(ShardedCampaign, TinySlabMatchesOracle) {
  // A pathological 1-minute slab on a churned run: chains buffer at most a
  // transition or two and refill constantly.  Slow, so keep it to one
  // configuration — the point is only that refill frequency is invisible.
  ScenarioSpec spec = *ScenarioSpec::builtin("churn-baseline");
  spec.population.scale = kScale;
  const CampaignConfig config = spec.to_campaign_config();
  EXPECT_EQ(run_sharded_json(config, 2, 2, kMinute), run_to_json(config));
}

TEST(ShardedCampaign, ValidateRejectsBadPlans) {
  CampaignConfig config = churned_content_config(7);

  config.sharding = ShardPlan{.shards = 0};
  auto error = CampaignEngine::validate(config);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("sharding.shards"), std::string::npos) << *error;

  config.sharding = ShardPlan{.shards = 2, .workers = 0, .slab = 0};
  error = CampaignEngine::validate(config);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("sharding.slab"), std::string::npos) << *error;

  config.sharding = ShardPlan{};
  EXPECT_EQ(CampaignEngine::validate(config), std::nullopt);
}

TEST(ShardedCampaign, RunnerValidatePropagatesConfigErrors) {
  CampaignConfig config = churned_content_config(7);
  config.population.scale = 0.0;  // invalid underlying config
  EXPECT_TRUE(
      runtime::ShardedCampaignRunner::validate(config, {}).has_value());

  EXPECT_EQ(runtime::ShardedCampaignRunner::validate(
                churned_content_config(7), {.shards = 5, .workers = 3}),
            std::nullopt);
}

TEST(ShardedCampaign, RunnerResolvesDefaultsToHardwareAndDefaultSlab) {
  const ShardPlan plan = runtime::ShardedCampaignRunner().resolve_plan();
  EXPECT_GE(plan.shards, 1u);
  EXPECT_EQ(plan.workers, 0u);  // auto -> budget lease at engine build
  EXPECT_EQ(plan.slab, ShardPlan{}.slab);

  const ShardPlan chosen =
      runtime::ShardedCampaignRunner({.shards = 6, .workers = 2, .slab = kHour})
          .resolve_plan();
  EXPECT_EQ(chosen.shards, 6u);
  EXPECT_EQ(chosen.workers, 2u);
  EXPECT_EQ(chosen.slab, kHour);
}

TEST(ShardedCampaign, CollectingRunMatchesEngineResult) {
  // The collecting facade must agree with the unsharded collecting run on
  // every monolithic field, including the event count — sharding adds no
  // simulation events.
  const CampaignConfig config = churned_content_config(21);
  const CampaignResult oracle = testing::run_campaign(config);

  auto sharded =
      runtime::ShardedCampaignRunner({.shards = 4, .workers = 2}).run(config);
  ASSERT_TRUE(sharded.has_value()) << sharded.error();
  EXPECT_EQ(sharded->events_executed, oracle.events_executed);
  EXPECT_EQ(sharded->population_size, oracle.population_size);
  EXPECT_EQ(sharded->population_samples.size(),
            oracle.population_samples.size());
  EXPECT_EQ(sharded->content_samples.size(), oracle.content_samples.size());
  EXPECT_EQ(sharded->crawls.size(), oracle.crawls.size());
}

TEST(ShardedCampaign, AutoWorkerPlansLeaseFromProcessBudget) {
  // workers = 0 resolves through the process WorkerBudget; whatever it
  // grants, the bytes must not depend on it.
  const CampaignConfig config = churned_content_config(3);
  const std::string oracle = run_to_json(config);
  ASSERT_FALSE(oracle.empty());
  EXPECT_EQ(run_sharded_json(config, 4, /*workers=*/0), oracle);
}

}  // namespace
}  // namespace ipfs::scenario
