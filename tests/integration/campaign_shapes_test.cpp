// Campaign-level shape assertions: small-scale versions of the paper's
// qualitative findings.  These lock in the *shape* claims of every table
// and figure (who wins, which direction, which ordering) so regressions in
// the population model or engine surface as test failures.
#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/classification.hpp"
#include "analysis/connection_stats.hpp"
#include "analysis/metadata.hpp"
#include "analysis/size_estimation.hpp"
#include "analysis/timeseries.hpp"
#include "p2p/protocols.hpp"
#include "scenario/campaign.hpp"

namespace ipfs {
namespace {

using common::kDay;
using common::kHour;
using scenario::CampaignConfig;
using scenario::CampaignEngine;
using scenario::CampaignResult;
using scenario::PeriodSpec;
using scenario::PopulationSpec;

/// One shared P4-style campaign (5 % scale, 1.5 days) reused by the shape
/// tests — campaigns are deterministic, so sharing is sound.
const CampaignResult& p4_result() {
  static const CampaignResult result = [] {
    CampaignConfig config;
    config.period = PeriodSpec::P4();  // full 3-day period, 5 % population
    config.population = PopulationSpec::test_scale(0.05);
    config.seed = 20211210;
    auto engine = CampaignEngine::create(config);
    if (!engine) throw std::runtime_error("invalid campaign config: " + engine.error());
    return engine->run();
  }();
  return result;
}

TEST(CampaignShapes, AllAverageBelowPeerAverage_TableII) {
  const auto stats = analysis::compute_connection_stats(*p4_result().go_ipfs);
  // §IV-A: "The lower average value of all connections indicates peers
  // initiating many short lasting connections."
  EXPECT_LT(stats.all.average_s, stats.peer.average_s);
  // Medians sit far below averages (heavy right tail).
  EXPECT_LT(stats.all.median_s, stats.all.average_s / 5.0);
}

TEST(CampaignShapes, InboundDominatesOutbound_TableII) {
  const auto stats = analysis::compute_connection_stats(*p4_result().go_ipfs);
  // §IV-A: "vastly more inbound than outbound connections" with longer
  // inbound durations.
  EXPECT_GT(stats.direction.inbound_count, 5 * stats.direction.outbound_count);
  EXPECT_GT(stats.direction.inbound_avg_s, stats.direction.outbound_avg_s);
}

TEST(CampaignShapes, ClassOrdering_TableIV) {
  const auto counts = analysis::classify_peers(*p4_result().go_ipfs);
  const auto heavy = counts.peers[static_cast<std::size_t>(analysis::PeerClass::kHeavy)];
  const auto normal =
      counts.peers[static_cast<std::size_t>(analysis::PeerClass::kNormal)];
  const auto light = counts.peers[static_cast<std::size_t>(analysis::PeerClass::kLight)];
  const auto one_time =
      counts.peers[static_cast<std::size_t>(analysis::PeerClass::kOneTime)];
  // Table IV: one-time > light > normal > heavy, all four non-trivial.
  EXPECT_GT(heavy, 0u);
  EXPECT_GT(normal, heavy);
  EXPECT_GT(one_time, light / 2);  // same order of magnitude
  // Light peers contribute the majority of DHT servers (9'755 of 16'880).
  const auto light_servers =
      counts.dht_servers[static_cast<std::size_t>(analysis::PeerClass::kLight)];
  EXPECT_GT(light_servers * 2, light);
}

TEST(CampaignShapes, CdfAnchors_Fig7) {
  const auto cdfs = analysis::connection_cdfs(*p4_result().go_ipfs, -1);
  // "Around 53 % are connected less than 1 h" (±12 points at test scale).
  EXPECT_NEAR(cdfs.max_duration_s.fraction_at_most(3600.0), 0.53, 0.12);
  // "Around 16 % maintained a connection longer than 24 h."
  EXPECT_NEAR(1.0 - cdfs.max_duration_s.fraction_at_most(24.0 * 3600.0), 0.16, 0.08);
  // "Around 50 % have one connection."
  EXPECT_NEAR(cdfs.connection_count.fraction_at_most(1.0), 0.45, 0.15);
  // "Only around 10 % have more than 15 connections."  Connection reuse
  // (needed for Table II's Peer-type averages) thins this tail in the
  // model; we assert it stays a small minority (see EXPERIMENTS.md).
  EXPECT_LT(1.0 - cdfs.connection_count.fraction_at_most(15.0), 0.12);
  EXPECT_GT(1.0 - cdfs.connection_count.fraction_at_most(15.0), 0.005);
}

TEST(CampaignShapes, ServersChurnShorterThanAll_Fig7) {
  const auto servers = analysis::connection_cdfs(*p4_result().go_ipfs, 1);
  const auto clients = analysis::connection_cdfs(*p4_result().go_ipfs, 0);
  // §V-B: DHT servers trend toward shorter max durations (trimming).
  EXPECT_GT(servers.max_duration_s.fraction_at_most(3600.0),
            clients.max_duration_s.fraction_at_most(3600.0));
}

TEST(CampaignShapes, GroupingCompressesPids_SecVA) {
  const auto grouping = analysis::group_by_multiaddr(*p4_result().go_ipfs);
  // 65'853 PIDs -> 47'516 groups in the paper: 0.72-0.82 compression.
  const double ratio = static_cast<double>(grouping.groups) /
                       static_cast<double>(grouping.connected_pids);
  EXPECT_GT(ratio, 0.65);
  EXPECT_LT(ratio, 0.92);
  // Most groups are singletons (44'301 / 47'516 = 93 %).
  EXPECT_NEAR(static_cast<double>(grouping.singleton_groups) /
                  static_cast<double>(grouping.groups),
              0.93, 0.05);
  // One mega-group from the rotating-PID operator dominates.
  EXPECT_GT(grouping.largest_group, 30u);
  // Unique-IP PIDs < singleton groups (dual-homed peers), as in the paper.
  EXPECT_LT(grouping.unique_ip_pids, grouping.singleton_groups);
}

TEST(CampaignShapes, AgentMixAnchors_Fig3) {
  const auto summary = analysis::summarize_metadata(*p4_result().go_ipfs);
  const double total = static_cast<double>(summary.total_pids);
  EXPECT_NEAR(static_cast<double>(summary.go_ipfs_pids) / total, 0.763, 0.06);
  EXPECT_NEAR(static_cast<double>(summary.missing_agent_pids) / total, 0.046, 0.025);
  EXPECT_GT(summary.hydra_pids, 0u);
  EXPECT_GT(summary.crawler_pids, 0u);
  EXPECT_GT(summary.distinct_agent_strings, 10u);
}

TEST(CampaignShapes, ProtocolAnchors_Fig4) {
  const auto histogram = analysis::protocol_histogram(*p4_result().go_ipfs);
  const auto kad = histogram.count(std::string(p2p::protocols::kKad));
  const auto bitswap = histogram.count(std::string(p2p::protocols::kBitswap120));
  const auto identify = histogram.count(std::string(p2p::protocols::kIdentify));
  // Identify > bitswap > kad, as in Fig. 4 (18'845 kad vs 44'463 bitswap).
  EXPECT_GT(identify, bitswap);
  EXPECT_GT(bitswap, kad);
  EXPECT_GT(kad, 0u);
}

TEST(CampaignShapes, StormFingerprint_SecIVB) {
  const auto anomalies = analysis::find_anomalies(*p4_result().go_ipfs);
  // The disguised-storm block: go-ipfs agents without bitswap, nearly all
  // of them announcing sbptp.
  EXPECT_GT(anomalies.go_ipfs_without_bitswap, 100u);
  EXPECT_GE(anomalies.go_ipfs_with_sbptp, anomalies.go_ipfs_without_bitswap * 9 / 10);
  EXPECT_EQ(anomalies.ethereum_agents, 1u);
}

TEST(CampaignShapes, VersionChanges_TableIII) {
  const auto changes = analysis::count_version_changes(*p4_result().go_ipfs);
  // Upgrades > changes > downgrades, all present (218/205/107 in Table III;
  // at 5 % scale the expected counts are ~11/10/5).
  EXPECT_GT(changes.upgrades, 0u);
  EXPECT_GT(changes.total(), 10u);
  // Dirty-transition split: main-main and dirty-dirty dominate.
  EXPECT_GT(changes.main_to_main + changes.dirty_to_dirty,
            5 * (changes.main_to_dirty + changes.dirty_to_main + 1));
}

TEST(CampaignShapes, RoleFlapping_SecIVB) {
  const auto kad_flaps =
      analysis::protocol_flapping(*p4_result().go_ipfs, p2p::protocols::kKad);
  const auto autonat_flaps =
      analysis::protocol_flapping(*p4_result().go_ipfs, p2p::protocols::kAutonat);
  // 2'481 kad flappers / 68'396 events; 3'603 autonat / 86'651 — both
  // populations flap many times per peer.
  EXPECT_GT(kad_flaps.peers, 20u);
  EXPECT_GT(kad_flaps.events, 5 * kad_flaps.peers);
  EXPECT_GT(autonat_flaps.peers, kad_flaps.peers / 2);
  EXPECT_GT(autonat_flaps.events, 5 * autonat_flaps.peers);
}

TEST(CampaignShapes, SimultaneousConnectionsPlateau_Fig5) {
  const auto series = analysis::simultaneous_connections(
      *p4_result().go_ipfs, 10 * common::kMinute, 24 * kHour);
  const auto summary = analysis::summarize_series(series);
  // P4-style run: simultaneous connections stay well below the total PID
  // count (the §V observation motivating the size estimators).
  EXPECT_GT(summary.peak, 100u);
  EXPECT_LT(summary.peak, p4_result().go_ipfs->peer_count() / 2);
  // Plateau: the second half of the day stays within 2x of the mean.
  EXPECT_LT(static_cast<double>(summary.peak), 2.5 * summary.mean + 50.0);
}

TEST(CampaignShapes, PidsKeepGrowing_Fig6) {
  const auto growth =
      analysis::pid_growth(*p4_result().go_ipfs, 2 * kHour, 12 * kHour);
  ASSERT_GT(growth.all_pids.size(), 4u);
  const auto quarter = growth.all_pids[growth.all_pids.size() / 4].count;
  const auto full = growth.all_pids.back().count;
  // Total PIDs grow throughout (one-time arrivals), while connected PIDs
  // plateau far below.
  EXPECT_GT(full, quarter + quarter / 4);
  const auto connected_final = growth.connected_pids.back().count;
  EXPECT_LT(connected_final, full / 2);
  // Gone-PIDs series becomes non-zero once the gone-window passes.
  EXPECT_GT(growth.gone_pids.back().count, 0u);
}

TEST(CampaignShapes, CrawlerSeesFewerThanPassive_Fig2) {
  const auto& result = p4_result();
  const auto [crawl_min, crawl_max] = result.crawler_min_max();
  // §III-C: for periods over 1 day, the passive node's historic snapshot
  // accumulates more PIDs than any single crawl reaches.
  EXPECT_GT(result.go_ipfs->peer_count(), crawl_max);
  EXPECT_GT(crawl_min, 0u);
}

}  // namespace
}  // namespace ipfs
