// Phased-campaign golden pins and execution-knob invariance
// (DESIGN.md §14).
//
// 1. The flash-crowd builtin's export is hash-pinned at the CI smoke
//    scale and must stay byte-identical across `ParallelTrialRunner`
//    worker counts {1, 2, 4} and `ShardPlan` shard counts {1, 4} — the
//    phase lookups are pure functions of (node, index, phase, seed), so
//    no execution knob may move a byte.
// 2. Every phased builtin must actually change the output against its
//    phases-stripped twin (no dead modulation paths), and the export must
//    carry the per-phase breakdown document.
// 3. Shrinking `period.duration` under a schedule (the `ipfs_sim run
//    --duration` path) must fail validation with a field-path error
//    instead of silently truncating — the bug this PR fixes.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "measure/sink.hpp"
#include "scenario/campaign.hpp"
#include "scenario/scenario_spec.hpp"
#include "testing/campaign.hpp"

namespace ipfs::scenario {
namespace {

using testing::run_builtin;
using testing::run_sharded_json;
using testing::run_to_json;

constexpr double kScale = 0.002;  // the CI smoke scale; minutes -> seconds

/// FNV-1a (common::hash64) of the flash-crowd export at scale 0.002,
/// default seed — vantage dataset, sample documents, and the trailing
/// phase_breakdown document — recorded when `scenario::PhaseProgram`
/// landed.  Every phase-modulated draw is pure per (node, index, phase,
/// seed), so this must never move — across worker counts, shard counts,
/// or rebuilds.
constexpr std::uint64_t kFlashCrowdPin = 0x1aaf008db917b14cULL;

TEST(PhasedCampaign, FlashCrowdExportMatchesPinnedHash) {
  const std::string exported = run_builtin("flash-crowd", kScale);
  ASSERT_FALSE(exported.empty());
  EXPECT_EQ(common::hash64(exported), kFlashCrowdPin)
      << "flash-crowd: phased campaign export drifted from its pin";
}

TEST(PhasedCampaign, PhasedScenariosActuallyChangeOutput) {
  // Sanity for the whole subsystem: each phased builtin with its section
  // stripped must differ from the real thing (otherwise the modulation
  // hooks are dead code).
  for (const char* name : {"flash-crowd", "load-ramp", "burst-storm"}) {
    ScenarioSpec spec = *ScenarioSpec::builtin(name);
    spec.population.scale = kScale;
    ScenarioSpec stripped = spec;
    stripped.phases.reset();
    EXPECT_NE(run_to_json(spec.to_campaign_config()),
              run_to_json(stripped.to_campaign_config()))
        << name;
  }
}

TEST(PhasedCampaign, ExportCarriesThePhaseBreakdownDocument) {
  const std::string exported = run_builtin("flash-crowd", kScale);
  EXPECT_NE(exported.find("\"phase_breakdown\""), std::string::npos);
  EXPECT_NE(exported.find("\"flash\""), std::string::npos);
  // ...and a phase-free run must not grow the document.
  EXPECT_EQ(run_builtin("p4", kScale).find("\"phase_breakdown\""),
            std::string::npos);
}

TEST(PhasedCampaign, SweepByteIdenticalAcrossWorkerCounts) {
  for (const char* name : {"flash-crowd", "burst-storm"}) {
    ScenarioSpec spec = *ScenarioSpec::builtin(name);
    spec.population.scale = kScale;
    spec.campaign.trials = 3;
    testing::expect_sweep_worker_invariant(spec);
  }
}

TEST(PhasedCampaign, ShardedRunsReproduceThePin) {
  // Intra-trial sharding is an execution knob, not a golden lineage: with
  // a ShardPlan engaged (any shard x worker point) the phased engine must
  // land on the sequential pin above.
  ScenarioSpec spec = *ScenarioSpec::builtin("flash-crowd");
  spec.population.scale = kScale;
  for (const unsigned shards : {1u, 4u}) {
    for (const unsigned workers : {1u, 2u, 4u}) {
      EXPECT_EQ(common::hash64(run_sharded_json(spec.to_campaign_config(),
                                                shards, workers)),
                kFlashCrowdPin)
          << "shards=" << shards << " workers=" << workers;
    }
  }
}

TEST(PhasedCampaign, LoadRampShardedMatchesSequentialBytes) {
  // The ramp interpolates across slab boundaries — the sharded bytes must
  // still equal the sequential run's exactly.
  ScenarioSpec spec = *ScenarioSpec::builtin("load-ramp");
  spec.population.scale = kScale;
  const std::string sequential = run_to_json(spec.to_campaign_config());
  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(run_sharded_json(spec.to_campaign_config(), 4, 2), sequential);
}

// ---- the --duration truncation fix ------------------------------------------

TEST(PhasedCampaign, ShrunkDurationFailsValidationWithFieldPath) {
  // `ipfs_sim run --duration` shortens `period.duration` after parsing and
  // re-validates; before this PR the truncated schedule ran silently.  The
  // horizon rules must name the field that no longer fits.
  ScenarioSpec churned = *ScenarioSpec::builtin("churn-baseline");
  churned.period.duration = churned.churn->sample_interval - 1;
  const auto churn_error = ScenarioSpec::validate(churned);
  ASSERT_TRUE(churn_error.has_value());
  EXPECT_NE(churn_error->find("churn.sample_interval_ms: exceeds "
                              "period.duration_ms"),
            std::string::npos)
      << *churn_error;

  ScenarioSpec content = *ScenarioSpec::builtin("content-baseline");
  content.period.duration = content.content->sample_interval - 1;
  const auto content_error = ScenarioSpec::validate(content);
  ASSERT_TRUE(content_error.has_value());
  EXPECT_NE(content_error->find("content.sample_interval_ms: exceeds "
                                "period.duration_ms"),
            std::string::npos)
      << *content_error;

  // Phased programs: a duration under the total hold cuts trailing phases.
  ScenarioSpec phased = *ScenarioSpec::builtin("flash-crowd");
  phased.period.duration = phased.phases->total_duration() - 1;
  const auto phased_error = ScenarioSpec::validate(phased);
  ASSERT_TRUE(phased_error.has_value());
  EXPECT_NE(phased_error->find("phases.program: total hold exceeds "
                               "period.duration_ms"),
            std::string::npos)
      << *phased_error;
}

}  // namespace
}  // namespace ipfs::scenario
