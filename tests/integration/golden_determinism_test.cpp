// Golden determinism pins for the condition-model PR.
//
// 1. Scenarios *without* a `"network"` section must produce campaign
//    exports byte-identical to the pre-conditions code (the hashes below
//    were recorded at the commit immediately before `net::ConditionModel`
//    landed).  If one of these ever changes, the flat fabric drifted —
//    that is a determinism regression, not a constant to refresh.
// 2. An engaged-but-default section must match an absent one exactly.
// 3. A conditioned scenario must stay byte-identical across worker counts
//    through `runtime::ParallelTrialRunner`.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "measure/sink.hpp"
#include "runtime/parallel.hpp"
#include "scenario/campaign.hpp"
#include "scenario/scenario_spec.hpp"

namespace ipfs::scenario {
namespace {

constexpr double kScale = 0.002;  // the CI smoke scale; minutes -> seconds

std::string run_to_json(const CampaignConfig& config) {
  auto engine = CampaignEngine::create(config);
  EXPECT_TRUE(engine.has_value()) << engine.error();
  std::ostringstream out;
  measure::JsonExportSink sink(out);
  engine->run(sink);
  return out.str();
}

std::string run_builtin(const char* name, double scale) {
  ScenarioSpec spec = *ScenarioSpec::builtin(name);
  spec.population.scale = scale;
  return run_to_json(spec.to_campaign_config());
}

TEST(GoldenDeterminism, CampaignExportsMatchPreConditionsHashes) {
  // FNV-1a (common::hash64) of the JSON export of each Table I period at
  // scale 0.002, default seed, recorded at HEAD before this subsystem.
  const struct {
    const char* name;
    std::uint64_t hash;
  } goldens[] = {
      {"p0", 0x78a4ac5991ecde93ULL}, {"p1", 0x6d91f304d5fac5e6ULL},
      {"p2", 0x6d91f304d5fac5e6ULL},  // P1 == P2 here: neither trims at 0.2%
      {"p3", 0x2cebfb16114cf92fULL}, {"p4", 0xcf1669de66317e98ULL},
  };
  for (const auto& golden : goldens) {
    const std::string exported = run_builtin(golden.name, kScale);
    ASSERT_FALSE(exported.empty()) << golden.name;
    EXPECT_EQ(common::hash64(exported), golden.hash)
        << golden.name
        << ": campaign export drifted from the pre-conditions baseline";
  }
}

TEST(GoldenDeterminism, DefaultNetworkSectionMatchesAbsentSection) {
  // Engaging the section with all-default conditions must not move a
  // single byte: every gate is neutral and no RNG branch shifts.
  ScenarioSpec plain = *ScenarioSpec::builtin("p4");
  plain.population.scale = kScale;
  ScenarioSpec conditioned = plain;
  conditioned.network.emplace();  // default ConditionSpec

  EXPECT_EQ(run_to_json(conditioned.to_campaign_config()),
            run_to_json(plain.to_campaign_config()));
}

TEST(GoldenDeterminism, ConditionedScenarioActuallyChangesOutput) {
  // Sanity for the whole subsystem: flaky-links with its section stripped
  // must differ from the real thing (otherwise the gates are dead code).
  ScenarioSpec spec = *ScenarioSpec::builtin("flaky-links");
  spec.population.scale = kScale;
  ScenarioSpec stripped = spec;
  stripped.network.reset();
  EXPECT_NE(run_to_json(spec.to_campaign_config()),
            run_to_json(stripped.to_campaign_config()));
}

TEST(GoldenDeterminism, GeoZonesLatencyMatrixIsLiveInCampaigns) {
  // The zone matrix must reach the campaign's duration data (query
  // connections stretch by RTT): moving the default link by seconds has
  // to move the export, or the geography would be dead configuration.
  ScenarioSpec spec = *ScenarioSpec::builtin("geo-zones");
  spec.population.scale = kScale;
  ScenarioSpec slow = spec;
  slow.network->default_link = {.min_one_way = 8000, .max_one_way = 9000};
  slow.network->links.clear();
  EXPECT_NE(run_to_json(spec.to_campaign_config()),
            run_to_json(slow.to_campaign_config()));
}

TEST(GoldenDeterminism, GeoZonesSweepByteIdenticalAcrossWorkerCounts) {
  ScenarioSpec spec = *ScenarioSpec::builtin("geo-zones");
  spec.population.scale = kScale;
  spec.campaign.trials = 3;

  std::string first;
  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    std::ostringstream out;
    measure::JsonExportSink sink(out);
    runtime::ParallelTrialRunner runner({.workers = workers});
    auto outcome = runner.run(
        runtime::ParallelTrialRunner::seed_sweep(spec.to_campaign_config(),
                                                 spec.trial_seeds()),
        sink);
    ASSERT_TRUE(outcome.has_value()) << outcome.error();
    if (first.empty()) {
      first = out.str();
      ASSERT_FALSE(first.empty());
    } else {
      EXPECT_EQ(out.str(), first) << "workers=" << workers;
    }
  }
}

}  // namespace
}  // namespace ipfs::scenario
