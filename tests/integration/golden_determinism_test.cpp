// Golden determinism pins for the condition-model and session-churn
// subsystems.
//
// 1. Scenarios *without* a `"network"` or `"churn"` section must produce
//    campaign exports byte-identical to the pre-subsystem code (the hashes
//    below were recorded at the commits immediately before
//    `net::ConditionModel` / `scenario::ChurnModel` landed).  If one of
//    these ever changes, the legacy path drifted — that is a determinism
//    regression, not a constant to refresh.
// 2. An engaged-but-default network section must match an absent one
//    exactly.
// 3. Conditioned and churned scenarios must stay byte-identical across
//    worker counts through `runtime::ParallelTrialRunner`, and the churned
//    export itself is hash-pinned.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "measure/sink.hpp"
#include "runtime/parallel.hpp"
#include "scenario/campaign.hpp"
#include "scenario/scenario_spec.hpp"
#include "testing/campaign.hpp"

namespace ipfs::scenario {
namespace {

using testing::run_builtin;
using testing::run_to_json;

constexpr double kScale = 0.002;  // the CI smoke scale; minutes -> seconds

TEST(GoldenDeterminism, CampaignExportsMatchPreConditionsHashes) {
  // FNV-1a (common::hash64) of the JSON export of each Table I period at
  // scale 0.002, default seed, recorded at HEAD before this subsystem.
  const struct {
    const char* name;
    std::uint64_t hash;
  } goldens[] = {
      {"p0", 0x78a4ac5991ecde93ULL}, {"p1", 0x6d91f304d5fac5e6ULL},
      {"p2", 0x6d91f304d5fac5e6ULL},  // P1 == P2 here: neither trims at 0.2%
      {"p3", 0x2cebfb16114cf92fULL}, {"p4", 0xcf1669de66317e98ULL},
  };
  for (const auto& golden : goldens) {
    const std::string exported = run_builtin(golden.name, kScale);
    ASSERT_FALSE(exported.empty()) << golden.name;
    EXPECT_EQ(common::hash64(exported), golden.hash)
        << golden.name
        << ": campaign export drifted from the pre-conditions baseline";
  }
}

TEST(GoldenDeterminism, DefaultNetworkSectionMatchesAbsentSection) {
  // Engaging the section with all-default conditions must not move a
  // single byte: every gate is neutral and no RNG branch shifts.
  ScenarioSpec plain = *ScenarioSpec::builtin("p4");
  plain.population.scale = kScale;
  ScenarioSpec conditioned = plain;
  conditioned.network.emplace();  // default ConditionSpec

  EXPECT_EQ(run_to_json(conditioned.to_campaign_config()),
            run_to_json(plain.to_campaign_config()));
}

TEST(GoldenDeterminism, ConditionedScenarioActuallyChangesOutput) {
  // Sanity for the whole subsystem: flaky-links with its section stripped
  // must differ from the real thing (otherwise the gates are dead code).
  ScenarioSpec spec = *ScenarioSpec::builtin("flaky-links");
  spec.population.scale = kScale;
  ScenarioSpec stripped = spec;
  stripped.network.reset();
  EXPECT_NE(run_to_json(spec.to_campaign_config()),
            run_to_json(stripped.to_campaign_config()));
}

TEST(GoldenDeterminism, GeoZonesLatencyMatrixIsLiveInCampaigns) {
  // The zone matrix must reach the campaign's duration data (query
  // connections stretch by RTT): moving the default link by seconds has
  // to move the export, or the geography would be dead configuration.
  ScenarioSpec spec = *ScenarioSpec::builtin("geo-zones");
  spec.population.scale = kScale;
  ScenarioSpec slow = spec;
  slow.network->default_link = {.min_one_way = 8000, .max_one_way = 9000};
  slow.network->links.clear();
  EXPECT_NE(run_to_json(spec.to_campaign_config()),
            run_to_json(slow.to_campaign_config()));
}

TEST(GoldenDeterminism, ChurnedScenarioActuallyChangesOutput) {
  // Sanity for the churn subsystem: churn-baseline with its section
  // stripped must differ from the real thing (otherwise the lifecycle
  // engine is dead code).
  ScenarioSpec spec = *ScenarioSpec::builtin("churn-baseline");
  spec.population.scale = kScale;
  ScenarioSpec stripped = spec;
  stripped.churn.reset();
  EXPECT_NE(run_to_json(spec.to_campaign_config()),
            run_to_json(stripped.to_campaign_config()));
}

TEST(GoldenDeterminism, ChurnedExportMatchesPinnedHash) {
  // FNV-1a (common::hash64) of the churn-baseline export at scale 0.002,
  // default seed — the vantage dataset plus the trailing
  // population_samples document — recorded when scenario::ChurnModel
  // landed.  The churned lifecycle is pure per (peer, session, seed), so
  // this must never move — across worker counts or rebuilds.
  const std::string exported = run_builtin("churn-baseline", kScale);
  ASSERT_FALSE(exported.empty());
  EXPECT_EQ(common::hash64(exported), 0x99fa022fd1bc8a95ULL)
      << "churn-baseline: churned campaign export drifted from its pin";
}

TEST(GoldenDeterminism, ChurnedSweepByteIdenticalAcrossWorkerCounts) {
  // The export bytes include the per-trial population_samples documents,
  // so the ground-truth stream is inside the invariance guarantee.
  ScenarioSpec spec = *ScenarioSpec::builtin("churn-baseline");
  spec.population.scale = kScale;
  spec.campaign.trials = 3;
  testing::expect_sweep_worker_invariant(spec);
}

TEST(GoldenDeterminism, GeoZonesSweepByteIdenticalAcrossWorkerCounts) {
  ScenarioSpec spec = *ScenarioSpec::builtin("geo-zones");
  spec.population.scale = kScale;
  spec.campaign.trials = 3;
  testing::expect_sweep_worker_invariant(spec);
}

TEST(GoldenDeterminism, ContentScenarioActuallyChangesOutput) {
  // Sanity for the content subsystem: content-baseline with its section
  // stripped must differ from the real thing (otherwise the workload
  // engine is dead code).
  ScenarioSpec spec = *ScenarioSpec::builtin("content-baseline");
  spec.population.scale = kScale;
  ScenarioSpec stripped = spec;
  stripped.content.reset();
  EXPECT_NE(run_to_json(spec.to_campaign_config()),
            run_to_json(stripped.to_campaign_config()));
}

TEST(GoldenDeterminism, ContentExportMatchesPinnedHash) {
  // FNV-1a (common::hash64) of the content-baseline export at scale 0.002,
  // default seed — vantage dataset plus population/provide/fetch/content
  // sample documents — recorded when scenario::ContentModel landed.  Every
  // content draw is pure per (node, slot/fetch, cycle, seed), so this must
  // never move — across worker counts or rebuilds.
  const std::string exported = run_builtin("content-baseline", kScale);
  ASSERT_FALSE(exported.empty());
  EXPECT_EQ(common::hash64(exported), 0xf4be5116cf725575ULL)
      << "content-baseline: content campaign export drifted from its pin";
}

TEST(GoldenDeterminism, ContentSweepByteIdenticalAcrossWorkerCounts) {
  ScenarioSpec spec = *ScenarioSpec::builtin("flash-fetch");
  spec.population.scale = kScale;
  spec.campaign.trials = 3;
  testing::expect_sweep_worker_invariant(spec);
}

/// content-baseline with churn-baseline's churn section grafted on: every
/// subsystem that schedules events — lifecycle sessions, publish/republish
/// cycles, fetch traffic, vantage probes — is live at once, the densest
/// tie-breaking load the scheduler sees in tests.
ScenarioSpec combined_churn_content_spec() {
  ScenarioSpec spec = *ScenarioSpec::builtin("content-baseline");
  spec.churn = ScenarioSpec::builtin("churn-baseline")->churn;
  spec.population.scale = kScale;
  return spec;
}

TEST(GoldenDeterminism, CombinedChurnContentExportMatchesPinnedHash) {
  // FNV-1a (common::hash64) of the combined churn+content export at scale
  // 0.002, default seed — recorded on the binary-heap scheduler immediately
  // before the ladder-queue engine replaced it (DESIGN.md §12).  The pin
  // holding across that swap is the event-ordering contract in one number:
  // any deviation in pop order under combined load moves these bytes.
  const std::string exported =
      testing::run_to_json(combined_churn_content_spec().to_campaign_config());
  ASSERT_FALSE(exported.empty());
  EXPECT_EQ(common::hash64(exported), 0x2a17c5a9a02a54a6ULL)
      << "combined churn+content export drifted from its pre-ladder-queue pin";
}

TEST(GoldenDeterminism, ShardedRunsReproduceTheSamePins) {
  // Intra-trial sharding (DESIGN.md §13) is an execution knob, not a new
  // golden lineage: with a ShardPlan engaged the engine must land on the
  // very hashes pinned above.  The full shard x worker grid lives in
  // `ctest -L shard`; this is the cross-check that keeps the sharded path
  // chained to this file's constants.
  const auto sharded_builtin = [](const char* name) {
    ScenarioSpec spec = *ScenarioSpec::builtin(name);
    spec.population.scale = kScale;
    return testing::run_sharded_json(spec.to_campaign_config(), 4, 2);
  };
  EXPECT_EQ(common::hash64(sharded_builtin("p4")), 0xcf1669de66317e98ULL)
      << "sharded p4 export drifted from the sequential pin";
  EXPECT_EQ(common::hash64(sharded_builtin("churn-baseline")),
            0x99fa022fd1bc8a95ULL)
      << "sharded churn-baseline export drifted from the sequential pin";
}

TEST(GoldenDeterminism, CombinedChurnContentSweepPinnedAndWorkerInvariant) {
  // Three-trial sweep of the combined scenario: byte-identical at 1, 2 and
  // 4 workers, and the worker-1 bytes themselves are pinned (recorded on
  // the pre-ladder-queue scheduler, like the single-run pin above).
  ScenarioSpec spec = combined_churn_content_spec();
  spec.campaign.trials = 3;
  const std::string baseline = testing::run_sweep_bytes(spec, 1);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(common::hash64(baseline), 0x67d1f01113ac2afbULL)
      << "combined churn+content sweep drifted from its pre-ladder-queue pin";
  for (const std::uint32_t workers : {2u, 4u}) {
    EXPECT_EQ(testing::run_sweep_bytes(spec, workers), baseline)
        << "workers=" << workers;
  }
}

}  // namespace
}  // namespace ipfs::scenario
