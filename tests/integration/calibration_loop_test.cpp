// Closed-loop calibration on the checked-in reference trace
// (scenarios/traces/passive_measurement_small.json): the full pipeline
// must fit every peer group, emit a scenario that validates and
// round-trips byte-exactly, pass the closed-loop KS check against a
// re-simulation, and produce identical bytes on every run.
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "analysis/calibration.hpp"
#include "common/sim_time.hpp"
#include "scenario/scenario_spec.hpp"

namespace ipfs::analysis::calibrate {
namespace {

constexpr const char* kTracePath =
    IPFS_SOURCE_DIR "/scenarios/traces/passive_measurement_small.json";

std::string read_trace() {
  std::ifstream in(kTracePath, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing reference trace " << kTracePath;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CalibrationLoop, ReferenceTraceCalibratesEndToEnd) {
  const std::string trace = read_trace();
  ASSERT_FALSE(trace.empty());

  const auto result = run(trace);
  ASSERT_TRUE(result.has_value()) << result.error();

  // The trace has a real measurement window, so sessions still open at
  // its end must have been censored rather than fitted as short.
  EXPECT_GT(result->measured.session_count, 100u);
  EXPECT_GT(result->measured.censored_sessions, 0u);
  EXPECT_LT(result->measured.censored_sessions, result->measured.session_count);

  // Every documented peer group fits both distributions.
  for (const std::string group : {"all", "dht_servers", "clients"}) {
    ASSERT_TRUE(result->groups.contains(group)) << group;
    const GroupFit& fit = result->groups.at(group);
    EXPECT_TRUE(fit.session.any_ok()) << group;
    EXPECT_TRUE(fit.gap.any_ok()) << group;
    EXPECT_LE(fit.session.best().ks, 0.2) << group;
  }

  // The closed loop: re-simulating the emitted scenario reproduces the
  // measured session-length CDF within the acceptance threshold.
  EXPECT_TRUE(result->loop.ran);
  EXPECT_GT(result->loop.simulated_sessions, 0u);
  EXPECT_LE(result->loop.ks, result->loop.threshold);
  EXPECT_TRUE(result->loop.pass);
}

TEST(CalibrationLoop, EmittedScenarioValidatesAndRoundTrips) {
  const auto result = run(read_trace());
  ASSERT_TRUE(result.has_value()) << result.error();

  const scenario::ScenarioSpec& spec = result->scenario;
  EXPECT_EQ(spec.name, "calibrated");
  ASSERT_TRUE(spec.churn.has_value());
  EXPECT_FALSE(spec.churn->categories.empty());
  EXPECT_EQ(scenario::ScenarioSpec::validate(spec), std::nullopt);

  // Byte-exact round trip through the strict scenario layer.
  const std::string emitted = spec.to_json_string();
  const auto reparsed = scenario::ScenarioSpec::from_json(emitted);
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error();
  EXPECT_EQ(*reparsed, spec);
  EXPECT_EQ(reparsed->to_json_string(), emitted);
}

TEST(CalibrationLoop, PipelineIsByteDeterministic) {
  const std::string trace = read_trace();
  const auto first = run(trace);
  const auto second = run(trace);
  ASSERT_TRUE(first.has_value()) << first.error();
  ASSERT_TRUE(second.has_value()) << second.error();
  EXPECT_EQ(first->scenario.to_json_string(), second->scenario.to_json_string());
  EXPECT_EQ(first->report_json(), second->report_json());
  EXPECT_EQ(first->loop.ks, second->loop.ks);
}

TEST(CalibrationLoop, GapOptionChangesTheCensoringHorizon) {
  const std::string trace = read_trace();
  Options wide;
  wide.max_gap = 2 * common::kHour;
  wide.verify = false;
  const auto narrow = run(trace, {.verify = false});
  const auto merged = run(trace, wide);
  ASSERT_TRUE(narrow.has_value()) << narrow.error();
  ASSERT_TRUE(merged.has_value()) << merged.error();
  // A wider gap threshold merges sessions: strictly fewer of them.
  EXPECT_LT(merged->measured.session_count, narrow->measured.session_count);
}

}  // namespace
}  // namespace ipfs::analysis::calibrate
