// End-to-end session-churn acceptance (DESIGN.md §10): a campaign with a
// `"churn"` section produces genuine first/last-seen session traces at
// the vantage (peers leave *and return*), the true network is never fully
// online nor fully observed, and churned sweeps stay byte-identical
// across ParallelTrialRunner worker counts.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/churn_stats.hpp"
#include "measure/sink.hpp"
#include "runtime/parallel.hpp"
#include "scenario/scenario_spec.hpp"
#include "testing/campaign.hpp"

namespace ipfs::scenario {
namespace {

using common::kHour;
using common::kMinute;

/// One shared churn-baseline run (campaigns are deterministic, so sharing
/// across the assertions below is sound).
const CampaignResult& churned_result() {
  static const CampaignResult result = [] {
    ScenarioSpec spec = *ScenarioSpec::builtin("churn-baseline");
    spec.population.scale = 0.01;
    return testing::run_campaign(spec.to_campaign_config());
  }();
  return result;
}

TEST(ChurnCampaign, SomePeersAreObservedAcrossMultipleSessions) {
  const CampaignResult& result = churned_result();
  ASSERT_TRUE(result.go_ipfs.has_value());
  const auto sessions = analysis::reconstruct_sessions(*result.go_ipfs, 30 * kMinute);
  const auto stats = analysis::compute_churn_stats(sessions);
  EXPECT_GT(stats.session_count, stats.peers);  // more sessions than peers...
  EXPECT_GE(stats.multi_session_peers, 5u);     // ...because peers come back
  EXPECT_GT(stats.mean_session_s, 0.0);
  EXPECT_GT(stats.median_session_s, 0.0);
  // A heavy-tailed session CDF: the mean sits right of the median.
  EXPECT_GT(stats.mean_session_s, stats.median_session_s);
}

TEST(ChurnCampaign, TrueNetworkIsNeverFullyOnlineNorFullyObserved) {
  const CampaignResult& result = churned_result();
  ASSERT_GE(result.population_samples.size(), 20u);  // hourly over a day
  for (const measure::PopulationSample& sample : result.population_samples) {
    EXPECT_GT(sample.online, 0u) << "at " << sample.at;
    EXPECT_LT(sample.online, sample.total) << "at " << sample.at;
    // The passive vantage connects to a strict subset of the truly online
    // peers: observed network size < true network size at all times.
    EXPECT_LT(sample.connected, sample.online) << "at " << sample.at;
    EXPECT_EQ(sample.total, result.population_size);
  }
}

TEST(ChurnCampaign, ObservedVsTrueSeriesAlignsWithGroundTruth) {
  const CampaignResult& result = churned_result();
  ASSERT_TRUE(result.go_ipfs.has_value());
  const auto sessions = analysis::reconstruct_sessions(*result.go_ipfs);
  const auto series =
      analysis::observed_vs_true(sessions, result.population_samples);
  ASSERT_EQ(series.size(), result.population_samples.size());
  std::size_t strictly_below = 0;
  for (const analysis::ObservedVsTrueSample& sample : series) {
    EXPECT_LT(sample.observed, sample.true_total);
    if (sample.observed < sample.true_online) ++strictly_below;
  }
  // Reconstruction bridges short offline gaps, so individual points may
  // exceed the instantaneous truth; the series as a whole must sit below.
  EXPECT_GT(strictly_below, series.size() / 2);
}

TEST(ChurnCampaign, DepartedPeersStayLearnedButUnreached) {
  // The crawler keeps learning PIDs it cannot reach: with churn engaged,
  // every crawl must report fewer reached servers than learned PIDs
  // (stale routing-table entries referencing departed peers).
  const CampaignResult& result = churned_result();
  ASSERT_FALSE(result.crawls.empty());
  for (const CrawlSnapshot& crawl : result.crawls) {
    EXPECT_LT(crawl.reached_servers, crawl.learned_pids) << "at " << crawl.at;
  }
}

TEST(ChurnCampaign, RejoiningDualHomedPeersRedrawAddresses) {
  // Rejoins may swap a dual-homed peer's primary IP, so multi-IP PIDs must
  // be visible in the dataset (the §V-A grouping key stays live).
  const CampaignResult& result = churned_result();
  ASSERT_TRUE(result.go_ipfs.has_value());
  std::size_t multi_ip_peers = 0;
  for (const auto& peer : result.go_ipfs->peers()) {
    if (peer.connected_ips.size() >= 2) ++multi_ip_peers;
  }
  EXPECT_GE(multi_ip_peers, 1u);
}

TEST(ChurnCampaign, AbsentChurnSectionPublishesNoPopulationSamples) {
  ScenarioSpec spec = *ScenarioSpec::builtin("p1");
  spec.population.scale = 0.002;
  const CampaignResult result = testing::run_campaign(spec.to_campaign_config());
  EXPECT_TRUE(result.population_samples.empty());
}

TEST(ChurnCampaign, ChurnedSweepByteIdenticalAcrossWorkerCounts) {
  ScenarioSpec spec = *ScenarioSpec::builtin("diurnal-churn");
  spec.population.scale = 0.002;
  spec.campaign.trials = 3;
  testing::expect_sweep_worker_invariant(spec);
}

TEST(ChurnCampaign, PopulationSamplesReachTheJsonExport) {
  // The CLI artifact must carry the observed-vs-true baseline: a churned
  // run's export ends with a population_samples document.
  ScenarioSpec spec = *ScenarioSpec::builtin("churn-baseline");
  spec.population.scale = 0.002;
  const std::string exported = testing::run_to_json(spec.to_campaign_config());
  EXPECT_NE(exported.find("\"population_samples\""), std::string::npos);
  EXPECT_NE(exported.find("\"online\""), std::string::npos);
  // ...and a legacy run's export carries none.
  ScenarioSpec plain = *ScenarioSpec::builtin("p1");
  plain.population.scale = 0.002;
  EXPECT_EQ(testing::run_to_json(plain.to_campaign_config())
                .find("population_samples"),
            std::string::npos);
}

}  // namespace
}  // namespace ipfs::scenario
