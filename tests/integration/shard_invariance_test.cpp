// Shard-invariance goldens (DESIGN.md §13).
//
// The contract under test: an intra-trial `scenario::ShardPlan` is purely
// an execution knob.  For every scenario family the engine supports —
// static Table I periods, churned lifecycles, content workloads, and the
// combined churn+content load — the JSON export must be byte-identical to
// the sequential engine (the oracle) at ANY shard count and ANY worker
// count.  The grid here is shards {1, 2, 4, 8} x workers {1, 2, 4}; the
// legacy hash pins from golden_determinism_test.cpp are additionally
// re-asserted *with sharding engaged*, so the sharded path can never fork
// the golden lineage.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "measure/sink.hpp"
#include "runtime/parallel.hpp"
#include "runtime/sharded.hpp"
#include "scenario/campaign.hpp"
#include "scenario/scenario_spec.hpp"
#include "testing/campaign.hpp"

namespace ipfs::scenario {
namespace {

using testing::run_sharded_json;
using testing::run_to_json;

constexpr double kScale = 0.002;  // the CI smoke scale; minutes -> seconds

constexpr unsigned kShardGrid[] = {1, 2, 4, 8};
constexpr unsigned kWorkerGrid[] = {1, 2, 4};

CampaignConfig builtin_config(const char* name) {
  ScenarioSpec spec = *ScenarioSpec::builtin(name);
  spec.population.scale = kScale;
  return spec.to_campaign_config();
}

/// content-baseline + churn-baseline's churn section: every event source
/// live at once (same construction as golden_determinism_test.cpp).
CampaignConfig combined_config() {
  ScenarioSpec spec = *ScenarioSpec::builtin("content-baseline");
  spec.churn = ScenarioSpec::builtin("churn-baseline")->churn;
  spec.population.scale = kScale;
  return spec.to_campaign_config();
}

/// Run the full shard x worker grid against the sequential oracle.
void expect_grid_invariant(const CampaignConfig& config, const char* label) {
  const std::string oracle = run_to_json(config);
  ASSERT_FALSE(oracle.empty()) << label;
  for (const unsigned shards : kShardGrid) {
    for (const unsigned workers : kWorkerGrid) {
      EXPECT_EQ(run_sharded_json(config, shards, workers), oracle)
          << label << ": shards=" << shards << " workers=" << workers;
    }
  }
}

TEST(ShardInvariance, PeriodExportsMatchSequentialOracle) {
  for (const char* period : {"p0", "p1", "p2", "p3", "p4"}) {
    expect_grid_invariant(builtin_config(period), period);
  }
}

TEST(ShardInvariance, ChurnedExportMatchesSequentialOracle) {
  expect_grid_invariant(builtin_config("churn-baseline"), "churn-baseline");
}

TEST(ShardInvariance, ContentExportMatchesSequentialOracle) {
  expect_grid_invariant(builtin_config("content-baseline"), "content-baseline");
}

TEST(ShardInvariance, CombinedChurnContentExportMatchesSequentialOracle) {
  expect_grid_invariant(combined_config(), "combined churn+content");
}

TEST(ShardInvariance, ConditionedExportMatchesSequentialOracle) {
  // The crawler classify->draw fan-out only splits when a condition model
  // gates reachability; flaky-links exercises that branch.
  expect_grid_invariant(builtin_config("flaky-links"), "flaky-links");
}

TEST(ShardInvariance, ShardedRunsReproduceLegacyGoldenPins) {
  // The exact constants pinned by golden_determinism_test.cpp, re-asserted
  // with sharding engaged: the sharded engine does not get its own golden
  // lineage, it must hit the sequential one.
  const struct {
    const char* name;
    std::uint64_t hash;
  } goldens[] = {
      {"p0", 0x78a4ac5991ecde93ULL},
      {"p1", 0x6d91f304d5fac5e6ULL},
      {"p2", 0x6d91f304d5fac5e6ULL},
      {"p3", 0x2cebfb16114cf92fULL},
      {"p4", 0xcf1669de66317e98ULL},
      {"churn-baseline", 0x99fa022fd1bc8a95ULL},
      {"content-baseline", 0xf4be5116cf725575ULL},
  };
  for (const auto& golden : goldens) {
    const std::string exported =
        run_sharded_json(builtin_config(golden.name), 4, 2);
    ASSERT_FALSE(exported.empty()) << golden.name;
    EXPECT_EQ(common::hash64(exported), golden.hash)
        << golden.name << ": sharded export drifted from the sequential pin";
  }
  EXPECT_EQ(common::hash64(run_sharded_json(combined_config(), 4, 2)),
            0x2a17c5a9a02a54a6ULL)
      << "combined churn+content: sharded export drifted from its pin";
}

TEST(ShardInvariance, ShardedSweepMatchesSequentialSweep) {
  // Nesting: a ParallelTrialRunner seed sweep whose cells each carry a
  // ShardPlan.  The merged stream must equal the plain sequential sweep of
  // unsharded cells — trial-level and shard-level parallelism compose
  // without moving a byte.
  ScenarioSpec spec = *ScenarioSpec::builtin("churn-baseline");
  spec.population.scale = kScale;
  spec.campaign.trials = 3;
  const std::string baseline = testing::run_sweep_bytes(spec, 1);
  ASSERT_FALSE(baseline.empty());

  CampaignConfig sharded_cell = spec.to_campaign_config();
  sharded_cell.sharding = ShardPlan{.shards = 4, .workers = 2};
  std::ostringstream out;
  measure::JsonExportSink sink(out);
  runtime::ParallelTrialRunner runner({.workers = 2});
  auto outcome = runner.run(
      runtime::ParallelTrialRunner::seed_sweep(sharded_cell,
                                               spec.trial_seeds()),
      sink);
  ASSERT_TRUE(outcome.has_value()) << outcome.error();
  EXPECT_EQ(out.str(), baseline);
}

TEST(ShardInvariance, ShardedRunnerFacadeMatchesOracle) {
  // The runtime::ShardedCampaignRunner facade (what `ipfs_sim --shards`
  // drives) must land on the same bytes as hand-injecting the plan.
  const CampaignConfig config = builtin_config("churn-baseline");
  const std::string oracle = run_to_json(config);
  ASSERT_FALSE(oracle.empty());

  runtime::ShardedCampaignRunner runner(
      {.shards = 3, .workers = 2, .slab = 2 * common::kHour});
  std::ostringstream out;
  measure::JsonExportSink sink(out);
  auto outcome = runner.run(config, sink);
  ASSERT_TRUE(outcome.has_value()) << outcome.error();
  EXPECT_EQ(out.str(), oracle);
}

}  // namespace
}  // namespace ipfs::scenario
