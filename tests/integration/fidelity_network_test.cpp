// End-to-end protocol-fidelity test: a message-level IPFS network with
// servers, clients, a hydra and an active crawler — the full §III setup at
// small scale, assembled through the `ipfs::runtime` facade.
#include <gtest/gtest.h>

#include "runtime/testbed.hpp"

namespace ipfs {
namespace {

using common::kMinute;
using common::kSecond;

/// Count peer-offline closes in a dataset.
std::size_t analysis_reason_count(const measure::Dataset& dataset) {
  std::size_t count = 0;
  for (const auto& record : dataset.connections()) {
    if (record.reason == p2p::CloseReason::kPeerOffline) ++count;
  }
  return count;
}

TEST(FidelityIntegration, PassiveMeasurementObservesLiveNetwork) {
  auto testbed = runtime::TestbedBuilder().seed(99).build();

  // The measurement node: a go-ipfs DHT server, as in §III-A.
  auto vantage = testbed.add_server();
  measure::RecorderConfig recorder_config;
  recorder_config.vantage = "go-ipfs";
  recorder_config.quantize = false;
  measure::Recorder& recorder = vantage.attach_recorder(recorder_config);

  // The network: 15 servers, 5 clients, everyone bootstrapping via the
  // vantage (it is a bootstrap node from the network's perspective).
  testbed.add_servers(15).add_clients(5).bootstrap_all_via(vantage);
  testbed.run_until(20 * kMinute);

  // One server leaves mid-measurement (node churn, not connection churn).
  testbed.node(4).stop();
  testbed.run_for(10 * kMinute);

  recorder.finish();
  const measure::Dataset& dataset = recorder.dataset();

  // The vantage saw every peer that dialed it, with agents and protocols.
  EXPECT_GE(dataset.peer_count(), 20u);
  EXPECT_GT(dataset.connection_count(), 0u);
  std::size_t servers_seen = 0;
  std::size_t identified = 0;
  for (const auto& peer : dataset.peers()) {
    if (peer.ever_dht_server) ++servers_seen;
    if (!peer.agent_history.empty()) ++identified;
  }
  EXPECT_GE(servers_seen, 15u);
  EXPECT_GE(identified, 20u);

  // The departed node's connection closed as peer-offline.
  const auto reasons = analysis_reason_count(dataset);
  EXPECT_GE(reasons, 1u);
}

TEST(FidelityIntegration, CrawlerAndPassiveHorizonsDiffer) {
  auto testbed = runtime::TestbedBuilder().seed(99).build();
  auto vantage = testbed.add_server();

  constexpr int kServers = 12;
  constexpr int kClients = 8;
  testbed.add_servers(kServers).add_clients(kClients).bootstrap_all_via(vantage);
  testbed.run_until(20 * kMinute);

  crawler::Crawler& crawler = testbed.add_crawler();
  crawler::CrawlResult crawl;
  crawler.crawl({vantage.id()}, [&](crawler::CrawlResult r) { crawl = std::move(r); });
  testbed.run_for(30 * kMinute);

  // Active view: DHT servers only (vantage + the 12 servers).
  EXPECT_EQ(crawl.reached.size(), kServers + 1u);

  // Passive view: the vantage's peerstore holds clients too.
  std::size_t clients_seen = 0;
  for (const auto& [pid, entry] : vantage.swarm().peerstore().entries()) {
    if (!entry.ever_dht_server && !entry.agent.empty()) ++clients_seen;
  }
  EXPECT_GE(clients_seen, static_cast<std::size_t>(kClients));
  crawler.stop();
}

TEST(FidelityIntegration, CrawlerStreamsObservationsIntoSink) {
  auto testbed = runtime::TestbedBuilder().seed(31).build();
  auto vantage = testbed.add_server();
  testbed.add_servers(8).bootstrap_all_via(vantage);
  testbed.run_until(20 * kMinute);

  measure::CollectingSink sink;
  crawler::Crawler& crawler = testbed.add_crawler();
  crawler.set_sink(&sink);
  crawler.crawl({vantage.id()}, {});
  testbed.run_for(30 * kMinute);

  ASSERT_EQ(sink.crawls().size(), 1u);
  EXPECT_EQ(sink.crawls().front().reached_servers, 9u);
  EXPECT_GE(sink.crawls().front().learned_pids,
            sink.crawls().front().reached_servers);
  crawler.stop();
}

TEST(FidelityIntegration, HydraHeadsWidenTheHorizon) {
  auto testbed = runtime::TestbedBuilder().seed(99).build();
  auto bootstrap_node = testbed.add_server();

  hydra::HydraConfig hydra_config;
  hydra_config.head_count = 2;
  hydra::HydraNode& hydra = testbed.add_hydra(hydra_config);
  hydra.bootstrap({bootstrap_node.id()});

  for (int i = 0; i < 16; ++i) {
    testbed.add_server().bootstrap({bootstrap_node.id()});
  }
  testbed.run_until(30 * kMinute);

  // Both heads participate in the DHT and collect peers; the union covers
  // at least what the single bootstrap node collected via inbound dials.
  EXPECT_GT(hydra.union_known_pids().size(), 2u);
  EXPECT_GT(hydra.head(0).dht().routing_table().size(), 0u);
  EXPECT_GT(hydra.head(1).dht().routing_table().size(), 0u);
  hydra.stop();
}

TEST(FidelityIntegration, TrimmingCausesConnectionChurnNotNodeChurn) {
  // The paper's headline finding at protocol fidelity: every node stays
  // online, yet connections churn because of the connection manager.
  auto testbed = runtime::TestbedBuilder().seed(99).build();
  auto vantage = testbed.add_server(node::NodeConfig::dht_server(3, 5));
  measure::RecorderConfig recorder_config;
  recorder_config.quantize = false;
  measure::Recorder& recorder = vantage.attach_recorder(recorder_config);

  testbed.add_clients(10).bootstrap_all_via(vantage);
  testbed.run_until(30 * kMinute);
  recorder.finish();

  const auto reasons = [&] {
    std::size_t trims = 0;
    for (const auto& record : recorder.dataset().connections()) {
      if (record.reason == p2p::CloseReason::kLocalTrim) ++trims;
    }
    return trims;
  }();
  // No node ever left, yet the vantage closed connections by trimming.
  EXPECT_GT(reasons, 0u);
  EXPECT_LE(vantage.swarm().open_count(), 5u);
}

}  // namespace
}  // namespace ipfs
