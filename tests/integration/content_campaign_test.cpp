// End-to-end content-workload acceptance (DESIGN.md §11): a campaign with
// a `"content"` section drives provide → republish → expire chains into
// the vantage record stores, real Bitswap want/block fetch traffic, and
// records-at-vantage samples against ground truth — all deterministically,
// byte-identical across ParallelTrialRunner worker counts.
#include <gtest/gtest.h>

#include "analysis/content_stats.hpp"
#include "measure/sink.hpp"
#include "scenario/scenario_spec.hpp"
#include "testing/campaign.hpp"

namespace ipfs::scenario {
namespace {

using common::kHour;

/// One shared content-baseline run (campaigns are deterministic, so
/// sharing across the assertions below is sound).
const CampaignResult& content_result() {
  static const CampaignResult result = [] {
    ScenarioSpec spec = *ScenarioSpec::builtin("content-baseline");
    spec.population.scale = 0.01;
    return testing::run_campaign(spec.to_campaign_config());
  }();
  return result;
}

TEST(ContentCampaign, ProvidesLandAndRepublishCyclesFollow) {
  const CampaignResult& result = content_result();
  const analysis::ProvideStats stats =
      analysis::compute_provide_stats(result.provide_samples);
  EXPECT_GT(stats.provides, 100u);
  // The keyspace scales with the population (512 keys * scale 0.01 -> 5),
  // and the workload covers essentially all of it.
  EXPECT_GE(stats.distinct_keys, 4u);
  EXPECT_GT(stats.distinct_providers, 50u);
  // A 1-day period on a 12 h republish cycle sees genuine republishes.
  EXPECT_GT(stats.republishes, 0u);
  EXPECT_LT(stats.republishes, stats.provides);
}

TEST(ContentCampaign, FetchesFindProvidersAndGetServed) {
  const CampaignResult& result = content_result();
  const analysis::FetchStats stats =
      analysis::compute_fetch_stats(result.fetch_samples);
  ASSERT_GT(stats.fetches, 100u);
  // Most fetches find a provider record at the vantage, and most of those
  // complete a genuine want/block exchange with a measured latency.
  EXPECT_GT(stats.lookup_success_rate, 0.3);
  EXPECT_GT(stats.served, 0u);
  EXPECT_LE(stats.served, stats.found_provider);
  EXPECT_GT(stats.mean_latency_ms, 0.0);
}

TEST(ContentCampaign, RecordsAtVantageTrackGroundTruth) {
  const CampaignResult& result = content_result();
  ASSERT_GE(result.content_samples.size(), 20u);  // hourly over a day
  const auto coverage = analysis::record_coverage(result.content_samples);
  std::size_t populated = 0;
  for (const analysis::RecordCoverageSample& sample : coverage) {
    EXPECT_LE(sample.vantage_keys, sample.vantage_records);
    if (sample.true_records > 0 && sample.vantage_records > 0) ++populated;
  }
  // Once the workload warms up the vantage holds records against a
  // non-empty ground truth for most of the period.
  EXPECT_GT(populated, coverage.size() / 2);
}

TEST(ContentCampaign, AbsentContentSectionPublishesNoContentStreams) {
  ScenarioSpec spec = *ScenarioSpec::builtin("p1");
  spec.population.scale = 0.002;
  const CampaignResult result = testing::run_campaign(spec.to_campaign_config());
  EXPECT_TRUE(result.provide_samples.empty());
  EXPECT_TRUE(result.fetch_samples.empty());
  EXPECT_TRUE(result.content_samples.empty());
}

TEST(ContentCampaign, ContentStreamsReachTheJsonExport) {
  ScenarioSpec spec = *ScenarioSpec::builtin("content-baseline");
  spec.population.scale = 0.005;
  const std::string exported = testing::run_to_json(spec.to_campaign_config());
  EXPECT_NE(exported.find("\"provide_samples\""), std::string::npos);
  EXPECT_NE(exported.find("\"fetch_samples\""), std::string::npos);
  EXPECT_NE(exported.find("\"content_samples\""), std::string::npos);
  // ...and a legacy run's export carries none of them.
  ScenarioSpec plain = *ScenarioSpec::builtin("p1");
  plain.population.scale = 0.002;
  const std::string legacy = testing::run_to_json(plain.to_campaign_config());
  EXPECT_EQ(legacy.find("provide_samples"), std::string::npos);
  EXPECT_EQ(legacy.find("fetch_samples"), std::string::npos);
  EXPECT_EQ(legacy.find("content_samples"), std::string::npos);
}

TEST(ContentCampaign, FlashFetchStressesTheReplacementCaches) {
  // The hot-keyspace builtin: short TTLs and a fetch rate an order of
  // magnitude above the provide rate still run to completion with
  // plausible streams.
  ScenarioSpec spec = *ScenarioSpec::builtin("flash-fetch");
  spec.population.scale = 0.005;
  const CampaignResult result = testing::run_campaign(spec.to_campaign_config());
  EXPECT_GT(result.fetch_samples.size(), result.provide_samples.size());
  EXPECT_FALSE(result.content_samples.empty());
}

TEST(ContentCampaign, ContentSweepByteIdenticalAcrossWorkerCounts) {
  ScenarioSpec spec = *ScenarioSpec::builtin("content-baseline");
  spec.population.scale = 0.002;
  spec.campaign.trials = 3;
  testing::expect_sweep_worker_invariant(spec);
}

TEST(ContentCampaign, ContentRunsAreReproducibleAndSeedSensitive) {
  ScenarioSpec spec = *ScenarioSpec::builtin("flash-fetch");
  spec.population.scale = 0.002;
  const std::string first = testing::run_to_json(spec.to_campaign_config());
  const std::string second = testing::run_to_json(spec.to_campaign_config());
  EXPECT_EQ(first, second);
  spec.campaign.seed += 1;
  EXPECT_NE(testing::run_to_json(spec.to_campaign_config()), first);
}

}  // namespace
}  // namespace ipfs::scenario
