#include "dht/record_store.hpp"

#include <gtest/gtest.h>

namespace ipfs::dht {
namespace {

using common::kHour;

TEST(RecordStore, PutAndGet) {
  RecordStore store;
  const RecordKey key = RecordKey::from_seed(1);
  const p2p::PeerId provider = p2p::PeerId::from_seed(2);
  store.put(key, provider, 0);
  const auto providers = store.get(key, 1000);
  ASSERT_EQ(providers.size(), 1u);
  EXPECT_EQ(providers[0], provider);
  EXPECT_EQ(store.key_count(), 1u);
  EXPECT_EQ(store.record_count(), 1u);
}

TEST(RecordStore, GetUnknownKeyIsEmpty) {
  RecordStore store;
  EXPECT_TRUE(store.get(RecordKey::from_seed(1), 0).empty());
}

TEST(RecordStore, RecordsExpire) {
  RecordStore store;
  const RecordKey key = RecordKey::from_seed(1);
  store.put(key, p2p::PeerId::from_seed(2), 0, 10 * kHour);
  EXPECT_EQ(store.get(key, 9 * kHour).size(), 1u);
  EXPECT_TRUE(store.get(key, 10 * kHour).empty());
}

TEST(RecordStore, ReannounceExtendsExpiry) {
  RecordStore store;
  const RecordKey key = RecordKey::from_seed(1);
  const p2p::PeerId provider = p2p::PeerId::from_seed(2);
  store.put(key, provider, 0, 10 * kHour);
  store.put(key, provider, 8 * kHour, 10 * kHour);
  EXPECT_EQ(store.get(key, 15 * kHour).size(), 1u);
  EXPECT_EQ(store.record_count(), 1u);  // same provider, not duplicated
}

TEST(RecordStore, MultipleProvidersPerKey) {
  RecordStore store;
  const RecordKey key = RecordKey::from_seed(1);
  store.put(key, p2p::PeerId::from_seed(2), 0);
  store.put(key, p2p::PeerId::from_seed(3), 0);
  EXPECT_EQ(store.get(key, 1).size(), 2u);
  EXPECT_EQ(store.key_count(), 1u);
  EXPECT_EQ(store.record_count(), 2u);
}

TEST(RecordStore, SweepRemovesExpired) {
  RecordStore store;
  for (int i = 0; i < 10; ++i) {
    store.put(RecordKey::from_seed(static_cast<std::uint64_t>(i)),
              p2p::PeerId::from_seed(100), 0, (i % 2 == 0) ? 1 * kHour : 100 * kHour);
  }
  EXPECT_EQ(store.sweep(50 * kHour), 5u);
  EXPECT_EQ(store.key_count(), 5u);
  EXPECT_EQ(store.record_count(), 5u);
}

TEST(RecordStore, DefaultTtlIsOneDay) {
  RecordStore store;
  const RecordKey key = RecordKey::from_seed(1);
  store.put(key, p2p::PeerId::from_seed(2), 0);
  EXPECT_EQ(store.get(key, 23 * kHour).size(), 1u);
  EXPECT_TRUE(store.get(key, 25 * kHour).empty());
}

}  // namespace
}  // namespace ipfs::dht
