#include "dht/record_store.hpp"

#include <gtest/gtest.h>

namespace ipfs::dht {
namespace {

using common::kHour;

TEST(RecordStore, PutAndGet) {
  RecordStore store;
  const RecordKey key = RecordKey::from_seed(1);
  const p2p::PeerId provider = p2p::PeerId::from_seed(2);
  store.put(key, provider, 0);
  const auto providers = store.get(key, 1000);
  ASSERT_EQ(providers.size(), 1u);
  EXPECT_EQ(providers[0], provider);
  EXPECT_EQ(store.key_count(), 1u);
  EXPECT_EQ(store.record_count(), 1u);
}

TEST(RecordStore, GetUnknownKeyIsEmpty) {
  RecordStore store;
  EXPECT_TRUE(store.get(RecordKey::from_seed(1), 0).empty());
}

TEST(RecordStore, RecordsExpire) {
  RecordStore store;
  const RecordKey key = RecordKey::from_seed(1);
  store.put(key, p2p::PeerId::from_seed(2), 0, 10 * kHour);
  EXPECT_EQ(store.get(key, 9 * kHour).size(), 1u);
  EXPECT_TRUE(store.get(key, 10 * kHour).empty());
}

TEST(RecordStore, ReannounceExtendsExpiry) {
  RecordStore store;
  const RecordKey key = RecordKey::from_seed(1);
  const p2p::PeerId provider = p2p::PeerId::from_seed(2);
  store.put(key, provider, 0, 10 * kHour);
  store.put(key, provider, 8 * kHour, 10 * kHour);
  EXPECT_EQ(store.get(key, 15 * kHour).size(), 1u);
  EXPECT_EQ(store.record_count(), 1u);  // same provider, not duplicated
}

TEST(RecordStore, MultipleProvidersPerKey) {
  RecordStore store;
  const RecordKey key = RecordKey::from_seed(1);
  store.put(key, p2p::PeerId::from_seed(2), 0);
  store.put(key, p2p::PeerId::from_seed(3), 0);
  EXPECT_EQ(store.get(key, 1).size(), 2u);
  EXPECT_EQ(store.key_count(), 1u);
  EXPECT_EQ(store.record_count(), 2u);
}

TEST(RecordStore, SweepRemovesExpired) {
  RecordStore store;
  for (int i = 0; i < 10; ++i) {
    store.put(RecordKey::from_seed(static_cast<std::uint64_t>(i)),
              p2p::PeerId::from_seed(100), 0, (i % 2 == 0) ? 1 * kHour : 100 * kHour);
  }
  EXPECT_EQ(store.sweep(50 * kHour), 5u);
  EXPECT_EQ(store.key_count(), 5u);
  EXPECT_EQ(store.record_count(), 5u);
}

TEST(RecordStore, SweepUnderRepublishLoadStaysBounded) {
  // Satellite for the content workload: providers re-announce on a 12 h
  // cycle against a 24 h TTL while a scheduled sweep runs every pass.
  // Live records survive every sweep, lapsed providers decay out, and the
  // store never grows beyond (keys x providers).
  RecordStore store;
  constexpr int kKeys = 16;
  constexpr int kProviders = 8;
  constexpr common::SimDuration kTtl = 24 * kHour;
  constexpr common::SimDuration kCycle = 12 * kHour;
  for (int cycle = 0; cycle < 9; ++cycle) {
    const common::SimTime now = cycle * kCycle;
    for (int k = 0; k < kKeys; ++k) {
      for (int p = 0; p < kProviders; ++p) {
        // Provider p stops republishing after cycle p (staggered churn).
        if (cycle > p) continue;
        store.put(RecordKey::from_seed(static_cast<std::uint64_t>(k)),
                  p2p::PeerId::from_seed(100 + static_cast<std::uint64_t>(p)),
                  now, kTtl);
      }
    }
    store.sweep(now);
    EXPECT_LE(store.record_count(),
              static_cast<std::size_t>(kKeys * kProviders));
    EXPECT_LE(store.key_count(), static_cast<std::size_t>(kKeys));
  }
  // Just before hour 108 every provider has lapsed except the longest
  // lived one (p=7, last announce at 7*12h=84h, expires at exactly 108h).
  const common::SimTime end = 9 * kCycle - kHour;
  store.sweep(end);
  for (int k = 0; k < kKeys; ++k) {
    const auto providers =
        store.get(RecordKey::from_seed(static_cast<std::uint64_t>(k)), end);
    ASSERT_EQ(providers.size(), 1u) << "key " << k;
    EXPECT_EQ(providers[0], p2p::PeerId::from_seed(107));
  }
  EXPECT_EQ(store.record_count(), static_cast<std::size_t>(kKeys));
  // One final sweep past every expiry empties the store completely.
  EXPECT_EQ(store.sweep(20 * kCycle), static_cast<std::size_t>(kKeys));
  EXPECT_EQ(store.key_count(), 0u);
  EXPECT_EQ(store.record_count(), 0u);
}

TEST(RecordStore, DefaultTtlIsOneDay) {
  RecordStore store;
  const RecordKey key = RecordKey::from_seed(1);
  store.put(key, p2p::PeerId::from_seed(2), 0);
  EXPECT_EQ(store.get(key, 23 * kHour).size(), 1u);
  EXPECT_TRUE(store.get(key, 25 * kHour).empty());
}

}  // namespace
}  // namespace ipfs::dht
