#include "dht/kad.hpp"

#include <gtest/gtest.h>

#include "../testing/fidelity.hpp"

namespace ipfs::dht {
namespace {

using common::kSecond;
using ipfs::testing::FidelityNet;

TEST(KadEngine, ServerAnnouncesAndAnswersQueries) {
  FidelityNet net;
  auto& a = net.add_node(node::NodeConfig::dht_server());
  auto& b = net.add_node(node::NodeConfig::dht_server());
  net.bootstrap_all();

  // b knows a via bootstrap; a lookup from b must query someone.
  bool done = false;
  LookupResult result;
  b.dht().lookup(p2p::PeerId::from_seed(1234), [&](LookupResult r) {
    done = true;
    result = std::move(r);
  });
  net.sim().run_until(net.sim().now() + 60 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.queried_count, 1u);
  EXPECT_GE(a.dht().queries_served(), 1u);
}

TEST(KadEngine, ClientDoesNotAnswerQueries) {
  FidelityNet net;
  net.add_node(node::NodeConfig::dht_server());
  auto& client = net.add_node(node::NodeConfig::dht_client());
  net.bootstrap_all();

  EXPECT_FALSE(client.dht().is_server());
  // Drive a query at the client directly.
  net::Message message;
  message.protocol = std::string(p2p::protocols::kKad);
  message.body = FindNodeRequest{p2p::PeerId::from_seed(1), 77};
  client.handle_message(net.node(0).id(), message);
  EXPECT_EQ(client.dht().queries_served(), 0u);
}

TEST(KadEngine, LookupFindsClosePeersInLargerNetwork) {
  FidelityNet net;
  for (int i = 0; i < 40; ++i) net.add_node(node::NodeConfig::dht_server());
  net.bootstrap_all(2 * common::kMinute);
  // Let refresh cycles interconnect the overlay.
  net.sim().run_until(net.sim().now() + 10 * common::kMinute);

  auto& searcher = net.node(5);
  const p2p::PeerId target = net.node(30).id();
  bool done = false;
  LookupResult result;
  searcher.dht().lookup(target, [&](LookupResult r) {
    done = true;
    result = std::move(r);
  });
  net.sim().run_until(net.sim().now() + 2 * common::kMinute);
  ASSERT_TRUE(done);
  ASSERT_FALSE(result.closest.empty());
  // The target itself must be discovered (it is a live DHT server).
  EXPECT_EQ(result.closest.front(), target);
}

TEST(KadEngine, LookupWithEmptyTableFinishesUnconverged) {
  sim::Simulation sim;
  net::Network network(sim, common::Rng(1));
  KadEngine engine(sim, network, p2p::PeerId::from_seed(1), Mode::kServer);
  bool done = false;
  LookupResult result;
  engine.lookup(p2p::PeerId::from_seed(2), [&](LookupResult r) {
    done = true;
    result = std::move(r);
  });
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.converged);
  EXPECT_TRUE(result.closest.empty());
}

TEST(KadEngine, TimeoutEvictsDeadPeers) {
  sim::Simulation sim;
  net::Network network(sim, common::Rng(1));
  KadEngine engine(sim, network, p2p::PeerId::from_seed(1), Mode::kServer);
  const p2p::PeerId dead = p2p::PeerId::from_seed(2);  // never registered
  engine.observe_peer(dead);
  EXPECT_TRUE(engine.routing_table().contains(dead));
  bool done = false;
  engine.lookup(p2p::PeerId::from_seed(3), [&](LookupResult) { done = true; });
  sim.run_until(sim.now() + 2 * KadEngine::kRequestTimeout + common::kMinute);
  EXPECT_TRUE(done);
  EXPECT_FALSE(engine.routing_table().contains(dead));
}

TEST(KadEngine, ModeSwitchTakesEffect) {
  sim::Simulation sim;
  net::Network network(sim, common::Rng(1));
  KadEngine engine(sim, network, p2p::PeerId::from_seed(1), Mode::kClient);
  EXPECT_FALSE(engine.is_server());
  engine.set_mode(Mode::kServer);
  EXPECT_TRUE(engine.is_server());
}

TEST(KadEngine, RefreshPopulatesTablesAcrossNetwork) {
  FidelityNet net;
  for (int i = 0; i < 20; ++i) net.add_node(node::NodeConfig::dht_server());
  net.bootstrap_all(30 * kSecond);
  net.sim().run_until(net.sim().now() + 15 * common::kMinute);
  // After bootstrap + refresh, every node's table holds several peers.
  std::size_t total = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    total += net.node(i).dht().routing_table().size();
  }
  EXPECT_GT(total / net.size(), 3u);
}

}  // namespace
}  // namespace ipfs::dht
