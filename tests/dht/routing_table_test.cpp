#include "dht/routing_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace ipfs::dht {
namespace {

TEST(XorDistance, CloserToSelfEvaluates) {
  const PeerId target = PeerId::from_seed(1);
  const PeerId near = target;  // distance 0
  const PeerId far = PeerId::from_seed(2);
  EXPECT_TRUE(closer_to(target, near, far));
  EXPECT_FALSE(closer_to(target, far, near));
  EXPECT_FALSE(closer_to(target, far, far));  // strict
}

TEST(BucketIndex, SelfHasNoBucket) {
  const PeerId self = PeerId::from_seed(1);
  EXPECT_FALSE(bucket_index(self, self).has_value());
}

TEST(BucketIndex, MatchesCommonPrefixLength) {
  common::Rng rng(7);
  const PeerId self = PeerId::with_prefix(0x0000000000000000ULL, 8, rng);
  const PeerId flipped_first = PeerId::with_prefix(0x8000000000000000ULL, 8, rng);
  const auto index = bucket_index(self, flipped_first);
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(*index, 0u);
}

TEST(RoutingTable, AddAndContains) {
  RoutingTable table(PeerId::from_seed(0));
  const PeerId peer = PeerId::from_seed(1);
  EXPECT_TRUE(table.add(peer, 0));
  EXPECT_TRUE(table.contains(peer));
  EXPECT_EQ(table.size(), 1u);
}

TEST(RoutingTable, AddSelfRejected) {
  const PeerId self = PeerId::from_seed(0);
  RoutingTable table(self);
  EXPECT_FALSE(table.add(self, 0));
  EXPECT_EQ(table.size(), 0u);
}

TEST(RoutingTable, ReAddRefreshesNotDuplicates) {
  RoutingTable table(PeerId::from_seed(0));
  const PeerId peer = PeerId::from_seed(1);
  EXPECT_TRUE(table.add(peer, 0));
  EXPECT_TRUE(table.add(peer, 100));
  EXPECT_EQ(table.size(), 1u);
}

TEST(RoutingTable, RemovePeer) {
  RoutingTable table(PeerId::from_seed(0));
  const PeerId peer = PeerId::from_seed(1);
  table.add(peer, 0);
  EXPECT_TRUE(table.remove(peer));
  EXPECT_FALSE(table.remove(peer));
  EXPECT_FALSE(table.contains(peer));
  EXPECT_EQ(table.size(), 0u);
}

TEST(RoutingTable, BucketCapacityEnforced) {
  // Fill bucket 0 (peers whose first bit differs from self's).
  common::Rng rng(3);
  const PeerId self = PeerId::with_prefix(0, 1, rng);
  RoutingTable table(self);
  std::size_t accepted = 0;
  for (int i = 0; i < 200; ++i) {
    const PeerId candidate = PeerId::with_prefix(0x8000000000000000ULL, 1, rng);
    if (table.add(candidate, 0)) ++accepted;
  }
  EXPECT_EQ(accepted, RoutingTable::kBucketSize);
  EXPECT_EQ(table.size(), RoutingTable::kBucketSize);
}

TEST(RoutingTable, ClosestReturnsSortedByDistance) {
  common::Rng rng(4);
  RoutingTable table(PeerId::from_seed(0));
  for (int i = 1; i <= 500; ++i) {
    table.add(PeerId::random(rng), 0);
  }
  const PeerId target = PeerId::random(rng);
  const auto closest = table.closest(target, 20);
  ASSERT_LE(closest.size(), 20u);
  ASSERT_GE(closest.size(), 1u);
  for (std::size_t i = 1; i < closest.size(); ++i) {
    EXPECT_TRUE(closer_to(target, closest[i - 1], closest[i]) ||
                closest[i - 1] == closest[i]);
  }
  // The returned set must be the true k-nearest of the table.
  const auto all = table.all_peers();
  std::size_t closer_count = 0;
  for (const PeerId& peer : all) {
    if (closer_to(target, peer, closest.back())) ++closer_count;
  }
  EXPECT_LT(closer_count, closest.size());
}

TEST(RoutingTable, ClosestWithFewerPeersThanRequested) {
  RoutingTable table(PeerId::from_seed(0));
  table.add(PeerId::from_seed(1), 0);
  table.add(PeerId::from_seed(2), 0);
  EXPECT_EQ(table.closest(PeerId::from_seed(3), 20).size(), 2u);
}

TEST(RoutingTable, AllPeersMatchesSize) {
  common::Rng rng(5);
  RoutingTable table(PeerId::from_seed(0));
  for (int i = 0; i < 300; ++i) table.add(PeerId::random(rng), 0);
  EXPECT_EQ(table.all_peers().size(), table.size());
}

/// The old sort-everything implementation, kept as the oracle: XOR
/// distances of distinct peers never tie, so its output is the unique
/// correct answer (set AND order).
std::vector<PeerId> reference_closest(const RoutingTable& table, const PeerId& target,
                                      std::size_t count) {
  std::vector<PeerId> peers = table.all_peers();
  std::sort(peers.begin(), peers.end(), [&](const PeerId& a, const PeerId& b) {
    return closer_to(target, a, b);
  });
  if (peers.size() > count) peers.resize(count);
  return peers;
}

TEST(RoutingTable, ClosestMatchesSortEverythingReference) {
  common::Rng rng(0xc105e57);
  for (int round = 0; round < 40; ++round) {
    const PeerId self = PeerId::random(rng);
    RoutingTable table(self);
    std::vector<PeerId> members;
    const auto inserts = static_cast<int>(rng.uniform_u64(2500));
    for (int i = 0; i < inserts; ++i) {
      // Mix in near-self peers so deep buckets populate too (purely random
      // identities only ever fill the shallow buckets).
      const PeerId peer =
          rng.bernoulli(0.25)
              ? PeerId::with_prefix(self.prefix64(),
                                    1 + static_cast<unsigned>(rng.uniform_u64(60)),
                                    rng)
              : PeerId::random(rng);
      if (table.add(peer, 0)) members.push_back(peer);
    }
    std::vector<PeerId> targets = {PeerId::random(rng), self,
                                   PeerId::with_prefix(self.prefix64(), 24, rng)};
    if (!members.empty()) {
      targets.push_back(members[rng.uniform_u64(members.size())]);
    }
    for (const PeerId& target : targets) {
      for (const std::size_t count :
           {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{20},
            std::size_t{100}, table.size() + 5}) {
        EXPECT_EQ(table.closest(target, count), reference_closest(table, target, count))
            << "round=" << round << " count=" << count;
      }
    }
  }
}

TEST(RoutingTable, DeepestBucketGrowsWithClosePeers) {
  common::Rng rng(6);
  const PeerId self = PeerId::from_seed(42);
  RoutingTable table(self);
  // A peer sharing the top 16 bits of self lands in a deep bucket.
  const PeerId close_peer = PeerId::with_prefix(self.prefix64(), 16, rng);
  if (close_peer != self) {
    table.add(close_peer, 0);
    EXPECT_GE(table.deepest_bucket(), 16u);
  }
}

}  // namespace
}  // namespace ipfs::dht
