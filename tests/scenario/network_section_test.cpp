// The `"network"` section of scenario files: strict parsing, field-path
// rejection of a malformed-input corpus, and exact to_json round-trips
// (docs/SCENARIOS.md, DESIGN.md §9).
#include <gtest/gtest.h>

#include "net/conditions.hpp"
#include "scenario/scenario_spec.hpp"

namespace ipfs::scenario {
namespace {

using common::kHour;

ScenarioSpec parse_or_die(const std::string& text) {
  auto spec = ScenarioSpec::from_json(text);
  EXPECT_TRUE(spec.has_value()) << spec.error();
  return spec.value_or(ScenarioSpec{});
}

/// Wrap a `"network"` body into a minimal valid scenario document.
std::string with_network(std::string_view network_body) {
  return std::string(R"({"name":"x","network":)") + std::string(network_body) + "}";
}

// ---- malformed-input corpus -------------------------------------------------

struct CorpusCase {
  const char* label;
  const char* network;            ///< the "network" section body
  const char* expected_fragment;  ///< must appear in the error (field path)
};

TEST(NetworkSection, MalformedCorpusRejectedWithFieldPaths) {
  const CorpusCase corpus[] = {
      {"not an object", R"("fast")", "network: expected an object"},
      {"unknown field", R"({"zoness":[]})", "network: unknown field 'zoness'"},
      {"latency typo", R"({"latency":{"flat_min":5}})",
       "network.latency: unknown field 'flat_min'"},
      {"inverted flat range", R"({"latency":{"flat_min_ms":50,"flat_max_ms":10}})",
       "network.latency: 0 < flat_min_ms <= flat_max_ms"},
      {"jitter above one", R"({"latency":{"jitter_fraction":1.5}})",
       "network.latency: jitter_fraction must be in [0, 1]"},
      {"zone weight zero", R"({"zones":[{"name":"eu","weight":0}]})",
       "network.zones[0]: weight must be > 0"},
      {"duplicate zone",
       R"({"zones":[{"name":"eu"},{"name":"eu"}]})",
       "network.zones[1]: duplicate zone name 'eu'"},
      {"zone bad intra range",
       R"({"zones":[{"name":"eu","intra_min_ms":30,"intra_max_ms":5}]})",
       "network.zones[0]: 0 < intra_min_ms <= intra_max_ms"},
      {"link without zones",
       R"({"links":[{"from":"eu","to":"na"}]})", "network.links[0]: links require zones"},
      {"link to unknown zone",
       R"({"zones":[{"name":"eu"},{"name":"na"}],"links":[{"from":"eu","to":"mars"}]})",
       "network.links[0]: unknown zone 'mars'"},
      {"self link",
       R"({"zones":[{"name":"eu"},{"name":"na"}],"links":[{"from":"eu","to":"eu"}]})",
       "network.links[0]: intra-zone latency belongs on the zone"},
      {"mirrored duplicate link",
       R"({"zones":[{"name":"eu"},{"name":"na"}],
           "links":[{"from":"eu","to":"na"},{"from":"na","to":"eu"}]})",
       "network.links[1]: duplicate link"},
      {"dial failure above one", R"({"loss":{"dial_failure":1.01}})",
       "network.loss: dial_failure must be in [0, 1]"},
      {"negative message loss", R"({"loss":{"message_loss":-0.1}})",
       "network.loss: message_loss must be in [0, 1]"},
      {"nat class weight", R"({"nat":{"classes":[{"name":"p","weight":-1}]}})",
       "network.nat.classes[0]: weight must be > 0"},
      {"nat category unknown class",
       R"({"nat":{"classes":[{"name":"p"}],"categories":{"crawler":"q"}}})",
       "network.nat.categories.crawler: unknown class 'q'"},
      {"nat category unknown category",
       R"({"nat":{"classes":[{"name":"p"}],"categories":{"warthog":"p"}}})",
       "network.nat.categories: unknown category name 'warthog'"},
      {"unknown disturbance kind",
       R"({"disturbances":[{"kind":"comet"}]})",
       "network.disturbances[0].kind: expected \"outage\", \"partition\" or \"degrade\""},
      {"outage with degrade fields",
       R"({"zones":[{"name":"eu"}],
           "disturbances":[{"kind":"outage","zone":"eu","until_ms":5,
                            "latency_factor":2}]})",
       "network.disturbances[0]: unknown field 'latency_factor'"},
      {"outage unknown zone",
       R"({"zones":[{"name":"eu"}],
           "disturbances":[{"kind":"outage","zone":"ap","until_ms":5}]})",
       "network.disturbances[0]: unknown zone 'ap'"},
      {"empty window",
       R"({"zones":[{"name":"eu"}],
           "disturbances":[{"kind":"outage","zone":"eu","from_ms":5,"until_ms":5}]})",
       "network.disturbances[0]: until_ms must be > from_ms"},
      {"window longer than period",
       R"({"disturbances":[{"kind":"degrade","from_ms":0,"until_ms":10,
                            "period_ms":5}]})",
       "network.disturbances[0]: window longer than period_ms"},
      {"degrade factor below one",
       R"({"disturbances":[{"kind":"degrade","until_ms":5,"latency_factor":0.5}]})",
       "network.disturbances[0]: latency_factor must be >= 1"},
      {"extra loss above one",
       R"({"disturbances":[{"kind":"degrade","until_ms":5,"extra_loss":2}]})",
       "network.disturbances[0]: extra_loss must be in [0, 1]"},
      {"overlapping windows",
       R"({"zones":[{"name":"eu"}],
           "disturbances":[{"kind":"outage","zone":"eu","from_ms":0,"until_ms":10},
                           {"kind":"outage","zone":"eu","from_ms":9,"until_ms":20}]})",
       "network.disturbances[1]: window overlaps disturbances[0]"},
      {"partition covering everything",
       R"({"zones":[{"name":"eu"}],
           "disturbances":[{"kind":"partition","zones":["eu"],"until_ms":5}]})",
       "network.disturbances[0]: partition must leave at least one zone outside"},
      {"equal-period recurrences overlapping in phase",
       R"({"disturbances":[
             {"kind":"degrade","from_ms":0,"until_ms":7200000,
              "period_ms":86400000},
             {"kind":"degrade","from_ms":3600000,"until_ms":10800000,
              "period_ms":86400000}]})",
       "network.disturbances[1]: window overlaps disturbances[0]"},
      {"one-shot landing inside a later recurrence cycle",
       R"({"disturbances":[
             {"kind":"degrade","from_ms":0,"until_ms":7200000,
              "period_ms":86400000},
             {"kind":"degrade","from_ms":90000000,"until_ms":91000000}]})",
       "network.disturbances[1]: window overlaps disturbances[0]"},
  };
  for (const CorpusCase& test_case : corpus) {
    const auto spec = ScenarioSpec::from_json(with_network(test_case.network));
    ASSERT_FALSE(spec.has_value()) << test_case.label;
    EXPECT_NE(spec.error().find(test_case.expected_fragment), std::string::npos)
        << test_case.label << ": got error '" << spec.error() << "'";
  }
}

// ---- round-tripping ---------------------------------------------------------

TEST(NetworkSection, RoundTripPreservesEveryConditionField) {
  ScenarioSpec spec;
  spec.name = "conditions-everything";
  net::ConditionSpec network;
  network.latency = {.min_one_way = 3, .max_one_way = 220, .jitter_fraction = 0.31};
  network.symmetric = false;
  network.zones = {
      {.name = "eu", .weight = 0.5, .intra_min = 4, .intra_max = 22},
      {.name = "ap", .weight = 0.5, .intra_min = 9, .intra_max = 44},
  };
  network.default_link = {.min_one_way = 77, .max_one_way = 190};
  network.links = {{.from = "eu", .to = "ap", .min_one_way = 101, .max_one_way = 175}};
  network.loss = {.dial_failure = 0.0625, .message_loss = 0.03125};
  network.nat.classes = {
      {.name = "public", .weight = 0.25, .accepts_inbound = true},
      {.name = "cgnat", .weight = 0.75, .accepts_inbound = false},
  };
  network.nat.categories = {{"normal-user", "cgnat"}, {"crawler", "public"}};
  network.disturbances = {
      {.kind = net::DisturbanceSpec::Kind::kOutage,
       .zone = "ap",
       .from = 1 * kHour,
       .until = 2 * kHour},
      {.kind = net::DisturbanceSpec::Kind::kPartition,
       .zones = {"eu"},
       .from = 3 * kHour,
       .until = 4 * kHour,
       .period = 12 * kHour},
      {.kind = net::DisturbanceSpec::Kind::kDegrade,
       .zone = "eu",
       .from = 5 * kHour,
       .until = 6 * kHour,
       .latency_factor = 1.75,
       .extra_loss = 0.125},
      {.kind = net::DisturbanceSpec::Kind::kDegrade,  // global variant
       .from = 7 * kHour,
       .until = 8 * kHour,
       .latency_factor = 2.0},
  };
  spec.network = std::move(network);
  ASSERT_EQ(ScenarioSpec::validate(spec), std::nullopt);

  const std::string text = spec.to_json_string();
  const ScenarioSpec reparsed = parse_or_die(text);
  EXPECT_EQ(reparsed, spec);
  EXPECT_EQ(reparsed.to_json_string(), text);  // serialisation is a fixpoint
}

TEST(NetworkSection, DifferentPeriodRecurrencesAreAcceptedAndCompose) {
  // Coincidences between recurrences of different periods are deliberate
  // composition (factors multiply, losses add), not a rejected overlap.
  const ScenarioSpec spec = parse_or_die(with_network(R"({
    "disturbances": [
      {"kind":"degrade","from_ms":0,"until_ms":7200000,"period_ms":86400000,
       "latency_factor":2.0},
      {"kind":"degrade","from_ms":0,"until_ms":3600000,"period_ms":21600000,
       "latency_factor":1.5}
    ]
  })"));
  ASSERT_TRUE(spec.network.has_value());
  EXPECT_EQ(spec.network->disturbances.size(), 2u);
}

TEST(NetworkSection, EmptySectionEngagesDefaultConditions) {
  const ScenarioSpec spec = parse_or_die(with_network("{}"));
  ASSERT_TRUE(spec.network.has_value());
  EXPECT_EQ(*spec.network, net::ConditionSpec{});
  // Engaged-but-default still round-trips with the section present.
  const ScenarioSpec reparsed = parse_or_die(spec.to_json_string());
  EXPECT_TRUE(reparsed.network.has_value());
  EXPECT_EQ(reparsed, spec);
}

TEST(NetworkSection, AbsentSectionStaysAbsentThroughSerialisation) {
  const ScenarioSpec spec = parse_or_die(R"({"name":"plain"})");
  EXPECT_FALSE(spec.network.has_value());
  EXPECT_EQ(spec.to_json_string().find("\"network\""), std::string::npos);
}

TEST(NetworkSection, ConditionBuiltinsCarrySectionsAndValidate) {
  for (const char* name : {"geo-zones", "flaky-links", "zone-partition"}) {
    const auto spec = ScenarioSpec::builtin(name);
    ASSERT_TRUE(spec.has_value()) << name;
    EXPECT_TRUE(spec->network.has_value()) << name;
    EXPECT_EQ(ScenarioSpec::validate(*spec), std::nullopt) << name;
    // And the engine accepts the derived config.
    EXPECT_TRUE(CampaignEngine::create(spec->to_campaign_config()).has_value())
        << name;
  }
}

}  // namespace
}  // namespace ipfs::scenario
