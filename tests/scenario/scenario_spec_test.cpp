#include "scenario/scenario_spec.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "runtime/parallel.hpp"
#include "scenario/campaign.hpp"

namespace ipfs::scenario {
namespace {

ScenarioSpec parse_or_die(const std::string& text) {
  auto spec = ScenarioSpec::from_json(text);
  EXPECT_TRUE(spec.has_value()) << spec.error();
  return spec.value_or(ScenarioSpec{});
}

// ---- round-tripping ---------------------------------------------------------

TEST(ScenarioSpec, RoundTripIdentityForEveryBuiltin) {
  for (const ScenarioSpec& spec : ScenarioSpec::builtins()) {
    const std::string text = spec.to_json_string();
    const ScenarioSpec reparsed = parse_or_die(text);
    EXPECT_EQ(reparsed, spec) << spec.name;
    // And serialisation is deterministic: a second trip is byte-identical.
    EXPECT_EQ(reparsed.to_json_string(), text) << spec.name;
  }
}

TEST(ScenarioSpec, RoundTripPreservesEveryField) {
  ScenarioSpec spec;
  spec.name = "custom";
  spec.description = "all fields set to non-default values";
  spec.period.name = "CUSTOM";
  spec.period.dates = "2026-01-01 - 2026-01-02";
  spec.period.duration = 36 * common::kHour + 123;
  spec.period.go_ipfs_mode = dht::Mode::kClient;
  spec.period.go_low_water = 111;
  spec.period.go_high_water = 222;
  spec.period.hydra_heads = 5;
  spec.period.hydra_low_water = 333;
  spec.period.hydra_high_water = 444;
  spec.population.scale = 0.1234567890123456;  // must not lose precision
  spec.population.counts.core_servers = 7;
  spec.population.counts.nat_group_max = 12;
  CategoryParams crawler = default_params(Category::kCrawler);
  crawler.session = SessionKind::kRecurring;
  crawler.mean_session = 90 * common::kMinute;
  crawler.mean_gap = 5 * common::kMinute;
  crawler.queries_per_hour = 17.25;
  spec.population.set_override(Category::kCrawler, crawler);
  spec.campaign.seed = 0xdeadbeefcafef00dULL;  // needs full 64-bit precision
  spec.campaign.trials = 3;
  spec.campaign.workers = 2;
  spec.campaign.vantage_visibility = 0.87;
  spec.campaign.enable_crawler = false;
  spec.campaign.crawl_interval = 90 * common::kMinute;
  spec.campaign.enable_metadata_dynamics = false;
  spec.campaign.client_dials_per_hour = 123.456;
  spec.output.pretty = false;
  spec.output.include_connections = true;
  spec.output.role_filter = measure::DatasetRole::kVantage;

  const ScenarioSpec reparsed = parse_or_die(spec.to_json_string());
  EXPECT_EQ(reparsed, spec);
}

TEST(ScenarioSpec, AbsentFieldsKeepDefaults) {
  const ScenarioSpec minimal = parse_or_die(R"({"name":"tiny"})");
  const ScenarioSpec defaults = [] {
    ScenarioSpec spec;
    spec.name = "tiny";
    return spec;
  }();
  EXPECT_EQ(minimal, defaults);
}

TEST(ScenarioSpec, CategoryOverrideFieldsDefaultToCalibratedValues) {
  const ScenarioSpec spec = parse_or_die(R"({
    "name": "partial-override",
    "population": {"categories": {"crawler": {"queries_per_hour": 9.5}}}
  })");
  const CategoryParams& params = spec.population.params(Category::kCrawler);
  EXPECT_DOUBLE_EQ(params.queries_per_hour, 9.5);
  // Every other field stays at the calibrated default.
  const CategoryParams& defaults = default_params(Category::kCrawler);
  EXPECT_EQ(params.session, defaults.session);
  EXPECT_EQ(params.query_duration_median, defaults.query_duration_median);
  EXPECT_EQ(params.crawl_visibility, defaults.crawl_visibility);
}

// ---- validation -------------------------------------------------------------

struct RejectionCase {
  const char* label;
  const char* document;
  const char* expected_fragment;
};

TEST(ScenarioSpec, RejectsInvalidSpecs) {
  const RejectionCase cases[] = {
      {"empty name", R"({"name":""})", "name must be non-empty"},
      {"negative duration", R"({"name":"x","period":{"duration_ms":-5}})",
       "duration must be positive"},
      {"zero duration", R"({"name":"x","period":{"duration_ms":0}})",
       "duration must be positive"},
      {"zero trials", R"({"name":"x","campaign":{"trials":0}})",
       "trials must be >= 1"},
      {"unknown category",
       R"({"name":"x","population":{"categories":{"warthog":{}}}})",
       "unknown category name 'warthog'"},
      {"unknown top-level field", R"({"name":"x","perod":{}})",
       "unknown field 'perod'"},
      {"unknown period field", R"({"name":"x","period":{"duration_hours":1}})",
       "unknown field 'duration_hours'"},
      {"inverted watermarks",
       R"({"name":"x","period":{"go_ipfs":{"low_water":10,"high_water":5}}})",
       "LowWater <= HighWater"},
      {"negative scale", R"({"name":"x","population":{"scale":-1}})",
       "scale must be positive"},
      {"zero scale", R"({"name":"x","population":{"scale":0}})",
       "scale must be positive"},
      {"bad session kind",
       R"({"name":"x","population":{"categories":{"crawler":{"session":"sometimes"}}}})",
       "expected \"always-on\", \"recurring\" or \"one-shot\""},
      {"probability out of range",
       R"({"name":"x","population":{"categories":{"crawler":{"maintain_probability":1.5}}}})",
       "maintain_probability must be in [0, 1]"},
      {"negative mean session",
       R"({"name":"x","population":{"categories":{"crawler":{"mean_session_ms":-1}}}})",
       "mean_session_ms must be >= 0"},
      {"nat group bounds",
       R"({"name":"x","population":{"counts":{"nat_group_min":6,"nat_group_max":2}}})",
       "nat_group_max must be >= nat_group_min"},
      {"storm exceeds light servers",
       R"({"name":"x","population":{"counts":{"light_servers":5,"disguised_storm":6}}})",
       "disguised_storm cannot exceed light_servers"},
      {"unknown role filter",
       R"({"name":"x","output":{"role_filter":"everything"}})",
       "unknown dataset role 'everything'"},
      {"vantage-less campaign",
       R"({"name":"x","period":{"go_ipfs":{"present":false},"hydra":{"heads":0}}})",
       "at least one vantage"},
      {"visibility above one", R"({"name":"x","campaign":{"vantage_visibility":1.5}})",
       "vantage_visibility must be in (0, 1]"},
      {"string where number expected",
       R"({"name":"x","period":{"duration_ms":"3d"}})",
       "expected an integer number of milliseconds"},
      {"syntax error", R"({"name":)", "1:9"},
  };
  for (const RejectionCase& test_case : cases) {
    const auto spec = ScenarioSpec::from_json(test_case.document);
    ASSERT_FALSE(spec.has_value()) << test_case.label;
    EXPECT_NE(spec.error().find(test_case.expected_fragment), std::string::npos)
        << test_case.label << ": got error '" << spec.error() << "'";
  }
}

// ---- preset equivalence -----------------------------------------------------

TEST(ScenarioSpec, CompiledPresetsAreThinWrappersOverBuiltins) {
  EXPECT_EQ(PeriodSpec::P0(), ScenarioSpec::builtin("p0")->period);
  EXPECT_EQ(PeriodSpec::P1(), ScenarioSpec::builtin("p1")->period);
  EXPECT_EQ(PeriodSpec::P2(), ScenarioSpec::builtin("p2")->period);
  EXPECT_EQ(PeriodSpec::P3(), ScenarioSpec::builtin("p3")->period);
  EXPECT_EQ(PeriodSpec::P4(), ScenarioSpec::builtin("p4")->period);
  EXPECT_EQ(PeriodSpec::Long14d(), ScenarioSpec::builtin("long14d")->period);
}

TEST(ScenarioSpec, DefaultCampaignConfigMatchesP4Builtin) {
  // CampaignConfig's defaults and the p4 builtin describe the same run.
  const CampaignConfig defaults;
  const CampaignConfig from_spec = ScenarioSpec::builtin("p4")->to_campaign_config();
  EXPECT_EQ(from_spec.period, defaults.period);
  EXPECT_EQ(from_spec.population, defaults.population);
  EXPECT_EQ(from_spec.seed, defaults.seed);
  EXPECT_EQ(from_spec.vantage_visibility, defaults.vantage_visibility);
  EXPECT_EQ(from_spec.enable_crawler, defaults.enable_crawler);
  EXPECT_EQ(from_spec.crawl_interval, defaults.crawl_interval);
  EXPECT_EQ(from_spec.enable_metadata_dynamics, defaults.enable_metadata_dynamics);
  EXPECT_EQ(from_spec.client_dials_per_hour, defaults.client_dials_per_hour);
}

TEST(ScenarioSpec, TrialSeedsAreSequentialFromBase) {
  ScenarioSpec spec = *ScenarioSpec::builtin("p1");
  spec.campaign.seed = 100;
  spec.campaign.trials = 4;
  EXPECT_EQ(spec.trial_seeds(), (std::vector<std::uint64_t>{100, 101, 102, 103}));
}

TEST(ScenarioSpec, BuiltinLookup) {
  EXPECT_TRUE(ScenarioSpec::builtin("nat-heavy").has_value());
  EXPECT_TRUE(ScenarioSpec::builtin("crawler-storm").has_value());
  EXPECT_TRUE(ScenarioSpec::builtin("weekend-diurnal").has_value());
  EXPECT_FALSE(ScenarioSpec::builtin("p9").has_value());
  for (const ScenarioSpec& spec : ScenarioSpec::builtins()) {
    EXPECT_EQ(ScenarioSpec::validate(spec), std::nullopt) << spec.name;
  }
}

// ---- checked-in files -------------------------------------------------------

std::string scenario_file_name(const ScenarioSpec& spec) {
  std::string file = spec.name;
  for (char& c : file) {
    if (c == '-') c = '_';
  }
  return file + ".json";
}

TEST(ScenarioSpec, CheckedInFilesMatchBuiltinsByteForByte) {
  for (const ScenarioSpec& spec : ScenarioSpec::builtins()) {
    const std::string path =
        std::string(IPFS_SOURCE_DIR) + "/scenarios/" + scenario_file_name(spec);
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing " << path
                           << " (regenerate with: ipfs_sim export --all)";
    std::ostringstream contents;
    contents << in.rdbuf();
    EXPECT_EQ(contents.str(), spec.to_json_string())
        << path << " drifted from the builtin spec "
        << "(regenerate with: ipfs_sim export --all)";
  }
}

// ---- campaign equivalence ---------------------------------------------------

std::string run_to_json(const CampaignConfig& config) {
  auto engine = CampaignEngine::create(config);
  EXPECT_TRUE(engine.has_value()) << engine.error();
  std::ostringstream out;
  measure::JsonExportSink sink(out);
  engine->run(sink);
  return out.str();
}

TEST(ScenarioSpec, SpecCampaignOutputByteIdenticalToCompiledPresets) {
  // The acceptance check of the scenario layer: running scenarios/pN.json
  // (here: its builtin twin, which the file-equality test above pins to the
  // checked-in bytes) produces exactly what the compiled preset produces.
  const struct {
    const char* builtin_name;
    PeriodSpec (*preset)();
  } periods[] = {
      {"p0", &PeriodSpec::P0}, {"p1", &PeriodSpec::P1}, {"p2", &PeriodSpec::P2},
      {"p3", &PeriodSpec::P3}, {"p4", &PeriodSpec::P4},
  };
  constexpr double kScale = 0.002;  // keep the five runs test-sized
  for (const auto& period : periods) {
    ScenarioSpec spec = *ScenarioSpec::builtin(period.builtin_name);
    spec.population.scale = kScale;

    CampaignConfig preset;
    preset.period = period.preset();
    preset.population = PopulationSpec::test_scale(kScale);

    const std::string from_spec = run_to_json(spec.to_campaign_config());
    const std::string from_preset = run_to_json(preset);
    ASSERT_FALSE(from_spec.empty()) << period.builtin_name;
    EXPECT_EQ(from_spec, from_preset) << period.builtin_name;
  }
}

TEST(ScenarioSpec, MultiTrialSweepMatchesSequentialLoop) {
  // ipfs_sim's multi-trial path: ParallelTrialRunner over the spec's seeds
  // must byte-match running each seed sequentially.
  ScenarioSpec spec = *ScenarioSpec::builtin("p1");
  spec.population.scale = 0.002;
  spec.campaign.trials = 2;
  spec.campaign.workers = 2;

  std::ostringstream sequential;
  for (const std::uint64_t seed : spec.trial_seeds()) {
    CampaignConfig config = spec.to_campaign_config();
    config.seed = seed;
    measure::JsonExportSink sink(sequential);
    auto engine = CampaignEngine::create(config);
    ASSERT_TRUE(engine.has_value()) << engine.error();
    engine->run(sink);
  }

  std::ostringstream parallel;
  measure::JsonExportSink sink(parallel);
  runtime::ParallelTrialRunner runner({.workers = spec.campaign.workers});
  auto outcome = runner.run(
      runtime::ParallelTrialRunner::seed_sweep(spec.to_campaign_config(),
                                               spec.trial_seeds()),
      sink);
  ASSERT_TRUE(outcome.has_value()) << outcome.error();
  EXPECT_EQ(parallel.str(), sequential.str());
}

}  // namespace
}  // namespace ipfs::scenario
