// The `"phases"` section of scenario files: strict parsing, field-path
// rejection of a malformed-input corpus, cross-section interaction rules,
// and exact to_json round-trips (docs/SCENARIOS.md, DESIGN.md §14).
#include <gtest/gtest.h>

#include "scenario/phases.hpp"
#include "scenario/scenario_spec.hpp"

namespace ipfs::scenario {
namespace {

using common::kHour;

ScenarioSpec parse_or_die(const std::string& text) {
  auto spec = ScenarioSpec::from_json(text);
  EXPECT_TRUE(spec.has_value()) << spec.error();
  return spec.value_or(ScenarioSpec{});
}

/// Wrap a `"phases"` body into a minimal valid scenario document.  The
/// churn and content sections are engaged so modulating programs pass the
/// engine's interaction rules; the corpus cases below fail at parse time,
/// long before those sections matter.
std::string with_phases(std::string_view phases_body) {
  return std::string(R"({"name":"x","churn":{},"content":{},"phases":)") +
         std::string(phases_body) + "}";
}

// ---- malformed-input corpus -------------------------------------------------

struct CorpusCase {
  const char* label;
  const char* phases;             ///< the "phases" section body
  const char* expected_fragment;  ///< must appear in the error (field path)
};

TEST(PhasesSection, MalformedCorpusRejectedWithFieldPaths) {
  const CorpusCase corpus[] = {
      {"not an object", R"("surge")", "phases: expected an object"},
      {"unknown field", R"({"programme":[]})",
       "phases: unknown field 'programme'"},
      {"program missing", R"({})", "phases.program: required"},
      {"program not an array", R"({"program":{}})",
       "phases.program: expected an array"},
      {"empty program", R"({"program":[]})",
       "phases.program: must contain at least one phase"},
      {"phase not an object", R"({"program":[7]})",
       "phases.program[0]: expected an object"},
      {"mode missing", R"({"program":[{"hold_ms":1}]})",
       "phases.program[0]: mode is required"},
      {"mode not a string", R"({"program":[{"mode":3}]})",
       "phases.program[0].mode: expected a string"},
      {"unknown mode", R"({"program":[{"mode":"surge"}]})",
       "phases.program[0].mode: expected \"hold\", \"ramp\", \"burst\" or "
       "\"flash_crowd\""},
      {"unknown phase field", R"({"program":[{"mode":"hold","dwell_ms":5}]})",
       "phases.program[0]: unknown field 'dwell_ms'"},
      {"switch_ms on a hold phase",
       R"({"program":[{"mode":"hold","switch_ms":60000}]})",
       "phases.program[0]: unknown field 'switch_ms'"},
      {"spike on a ramp phase", R"({"program":[{"mode":"ramp","spike":2}]})",
       "phases.program[0]: unknown field 'spike'"},
      {"hot_key on a burst phase",
       R"({"program":[{"mode":"burst","switch_ms":1,"hot_key":3}]})",
       "phases.program[0]: unknown field 'hot_key'"},
      {"name not a string", R"({"program":[{"mode":"hold","name":7}]})",
       "phases.program[0].name: expected a string"},
      {"hold_ms zero", R"({"program":[{"mode":"hold","hold_ms":0}]})",
       "phases.program[0]: hold_ms must be > 0"},
      {"hold_ms not an integer",
       R"({"program":[{"mode":"hold","hold_ms":"1h"}]})",
       "phases.program[0].hold_ms: expected an integer number of "
       "milliseconds"},
      {"churn_rate not a number",
       R"({"program":[{"mode":"hold","churn_rate":"fast"}]})",
       "phases.program[0].churn_rate: expected a number"},
      {"churn_rate zero", R"({"program":[{"mode":"hold","churn_rate":0}]})",
       "phases.program[0]: churn_rate must be > 0 and finite"},
      {"fetch_rate negative",
       R"({"program":[{"mode":"hold","fetch_rate":-2}]})",
       "phases.program[0]: fetch_rate must be > 0 and finite"},
      {"publish_rate zero", R"({"program":[{"mode":"hold","publish_rate":0}]})",
       "phases.program[0]: publish_rate must be > 0 and finite"},
      {"crawl_rate zero", R"({"program":[{"mode":"hold","crawl_rate":0}]})",
       "phases.program[0]: crawl_rate must be > 0 and finite"},
      {"population zero", R"({"program":[{"mode":"hold","population":0}]})",
       "phases.program[0]: population must be in (0, 1]"},
      {"population above one",
       R"({"program":[{"mode":"hold","population":1.5}]})",
       "phases.program[0]: population must be in (0, 1]"},
      {"burst without switch_ms", R"({"program":[{"mode":"burst"}]})",
       "phases.program[0]: switch_ms must be > 0"},
      {"burst switch_ms zero",
       R"({"program":[{"mode":"burst","switch_ms":0}]})",
       "phases.program[0]: switch_ms must be > 0"},
      {"flash spike zero",
       R"({"program":[{"mode":"flash_crowd","spike":0}]})",
       "phases.program[0]: spike must be > 0 and finite"},
      {"flash hot_fraction above one",
       R"({"program":[{"mode":"flash_crowd","hot_fraction":1.5}]})",
       "phases.program[0]: hot_fraction must be in [0, 1]"},
      {"flash hot_key negative",
       R"({"program":[{"mode":"flash_crowd","hot_key":-1}]})",
       "phases.program[0].hot_key: expected an integer in [0, 2^32)"},
      {"diurnal_clock wrong value",
       R"({"diurnal_clock":"phase","program":[{"mode":"hold"}]})",
       "phases.diurnal_clock: expected \"absolute\""},
      {"second phase carries the error index",
       R"({"program":[{"mode":"hold"},{"mode":"ramp","fetch_rate":0}]})",
       "phases.program[1]: fetch_rate must be > 0 and finite"},
  };
  for (const CorpusCase& test_case : corpus) {
    const auto spec = ScenarioSpec::from_json(with_phases(test_case.phases));
    ASSERT_FALSE(spec.has_value()) << test_case.label;
    EXPECT_NE(spec.error().find(test_case.expected_fragment), std::string::npos)
        << test_case.label << ": got '" << spec.error() << "'";
  }
}

// ---- cross-section interaction rules ----------------------------------------

TEST(PhasesSection, InteractionRulesRejectedWithFieldPaths) {
  const CorpusCase corpus[] = {
      {"churn modulation without a churn section",
       R"({"name":"x","phases":{"program":[{"mode":"hold","churn_rate":2}]}})",
       "phases: the program modulates churn rates or population"},
      {"population gating without a churn section",
       R"({"name":"x","phases":{"program":[{"mode":"hold","population":0.5}]}})",
       "phases: the program modulates churn rates or population"},
      {"fetch modulation without a content section",
       R"({"name":"x","phases":{"program":[{"mode":"hold","fetch_rate":2}]}})",
       "phases: the program modulates the content workload"},
      {"flash crowd without a content section",
       R"({"name":"x","phases":{"program":[{"mode":"flash_crowd"}]}})",
       "phases: the program modulates the content workload"},
      {"crawl modulation with the crawler disabled",
       R"({"name":"x","campaign":{"crawler":{"enabled":false}},
           "phases":{"program":[{"mode":"hold","crawl_rate":2}]}})",
       "phases: the program modulates crawl_rate"},
      {"total hold exceeds the period",
       R"({"name":"x","period":{"duration_ms":3600000},
           "phases":{"program":[{"mode":"hold","hold_ms":3600001}]}})",
       "phases.program: total hold exceeds period.duration_ms"},
      {"churn modulation next to diurnal without the clock acknowledgement",
       R"({"name":"x",
           "churn":{"diurnal":{"amplitude":0.5,"period_ms":86400000}},
           "phases":{"program":[{"mode":"hold","churn_rate":2}]}})",
       "requires \"diurnal_clock\": \"absolute\""},
      {"clock acknowledgement without a diurnal section",
       R"({"name":"x","churn":{},
           "phases":{"diurnal_clock":"absolute",
                     "program":[{"mode":"hold","churn_rate":2}]}})",
       "phases.diurnal_clock: \"absolute\" requires a churn.diurnal section"},
  };
  for (const CorpusCase& test_case : corpus) {
    const auto spec = ScenarioSpec::from_json(test_case.phases);
    ASSERT_FALSE(spec.has_value()) << test_case.label;
    EXPECT_NE(spec.error().find(test_case.expected_fragment), std::string::npos)
        << test_case.label << ": got '" << spec.error() << "'";
  }
}

TEST(PhasesSection, DiurnalClockAcknowledgementAccepted) {
  // The one defined composition: churn-modulating program + diurnal +
  // explicit absolute-clock acknowledgement.
  const ScenarioSpec spec = parse_or_die(
      R"({"name":"x",
          "churn":{"diurnal":{"amplitude":0.5,"period_ms":86400000}},
          "phases":{"diurnal_clock":"absolute",
                    "program":[{"mode":"hold","churn_rate":2}]}})");
  ASSERT_TRUE(spec.phases.has_value());
  EXPECT_TRUE(spec.phases->diurnal_clock_absolute);
}

// ---- acceptance and round-trips ---------------------------------------------

TEST(PhasesSection, AbsentSectionStaysAbsent) {
  const ScenarioSpec spec = parse_or_die(R"({"name":"x"})");
  EXPECT_FALSE(spec.phases.has_value());
  // ...and is omitted from the export, so pre-phases files round-trip
  // byte-identically (the legacy golden pins depend on this).
  EXPECT_EQ(spec.to_json_string().find("\"phases\""), std::string::npos);
}

TEST(PhasesSection, NeutralProgramNeedsNoOtherSections) {
  // An all-neutral hold program modulates nothing, so it may ride on a
  // scenario with no churn/content sections at all.
  const ScenarioSpec spec =
      parse_or_die(R"({"name":"x","phases":{"program":[{"mode":"hold"}]}})");
  ASSERT_TRUE(spec.phases.has_value());
  EXPECT_FALSE(spec.phases->modulates_churn());
  EXPECT_FALSE(spec.phases->modulates_content());
  EXPECT_FALSE(spec.phases->modulates_crawl());
}

TEST(PhasesSection, FullSectionRoundTripsExactly) {
  ScenarioSpec spec = parse_or_die(with_phases(R"({
    "program": [
      {"name": "calm", "mode": "hold", "hold_ms": 3600000},
      {"name": "climb", "mode": "ramp", "hold_ms": 7200000,
       "churn_rate": 2.5, "fetch_rate": 3.0, "publish_rate": 0.5,
       "crawl_rate": 2.0, "population": 0.8},
      {"name": "storm", "mode": "burst", "hold_ms": 3600000,
       "fetch_rate": 4.0, "switch_ms": 600000},
      {"name": "flash", "mode": "flash_crowd", "hold_ms": 1800000,
       "hot_key": 17, "spike": 6.0, "hot_fraction": 0.75}
    ]
  })"));
  ASSERT_TRUE(spec.phases.has_value());
  ASSERT_EQ(spec.phases->program.size(), 4u);
  EXPECT_EQ(spec.phases->program[1].mode, PhaseMode::kRamp);
  EXPECT_EQ(spec.phases->program[2].switch_interval, 600000);
  EXPECT_EQ(spec.phases->program[3].hot_key, 17u);
  EXPECT_EQ(spec.phases->total_duration(), 3600000 + 7200000 + 3600000 + 1800000);

  const std::string exported = spec.to_json_string();
  const auto reparsed = ScenarioSpec::from_json(exported);
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error();
  EXPECT_EQ(*reparsed, spec);
  EXPECT_EQ(reparsed->to_json_string(), exported);
}

TEST(PhasesSection, BuiltinPhasedScenariosValidateAndRoundTrip) {
  for (const char* name : {"flash-crowd", "load-ramp", "burst-storm"}) {
    const auto spec = ScenarioSpec::builtin(name);
    ASSERT_TRUE(spec.has_value()) << name;
    ASSERT_TRUE(spec->phases.has_value()) << name;
    EXPECT_EQ(ScenarioSpec::validate(*spec), std::nullopt) << name;
    const auto reparsed = ScenarioSpec::from_json(spec->to_json_string());
    ASSERT_TRUE(reparsed.has_value()) << name << ": " << reparsed.error();
    EXPECT_EQ(*reparsed, *spec) << name;
  }
}

}  // namespace
}  // namespace ipfs::scenario
