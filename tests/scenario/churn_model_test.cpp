// Property tests for the session-churn samplers (DESIGN.md §10): the
// empirical mean/median of Weibull, lognormal and exponential session
// draws must track the analytic values across seeds, the empirical CDF
// must be monotone, and every draw must be a pure function of
// (node, session, seed).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.hpp"
#include "scenario/churn.hpp"

namespace ipfs::scenario {
namespace {

using common::kHour;
using common::kMinute;

/// Draw `count` samples through the model's pure per-(node, session) API.
std::vector<double> draw_sessions(const ChurnModel& model, std::size_t count) {
  std::vector<double> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    samples.push_back(static_cast<double>(model.session_length(
        static_cast<std::uint32_t>(i % 512), static_cast<std::uint32_t>(i / 512))));
  }
  return samples;
}

struct DistributionCase {
  const char* label;
  SessionDistribution distribution;
};

const DistributionCase kCases[] = {
    {"exponential-2h", SessionDistribution::exponential(7'200'000.0)},
    {"exponential-5min", SessionDistribution::exponential(300'000.0)},
    {"weibull-heavy", SessionDistribution::weibull(0.55, 7'200'000.0)},
    {"weibull-light", SessionDistribution::weibull(1.5, 3'600'000.0)},
    {"lognormal-wide", SessionDistribution::lognormal(3'600'000.0, 1.1)},
    {"lognormal-narrow", SessionDistribution::lognormal(600'000.0, 0.4)},
};

TEST(ChurnSamplers, EmpiricalMeanTracksAnalyticAcrossSeeds) {
  constexpr std::size_t kSamples = 40'000;
  for (const DistributionCase& test_case : kCases) {
    ChurnSpec spec;
    spec.session = test_case.distribution;
    const double analytic = test_case.distribution.analytic_mean();
    ASSERT_GT(analytic, 0.0) << test_case.label;
    for (const std::uint64_t seed : {11ULL, 2021ULL, 0xc402ULL}) {
      const ChurnModel model(spec, seed);
      common::RunningStats stats;
      for (const double sample : draw_sessions(model, kSamples)) stats.add(sample);
      // Relative tolerance sized for 40k samples of the heaviest tail in
      // the set (Weibull k=0.55 has a finite but large variance).
      EXPECT_NEAR(stats.mean() / analytic, 1.0, 0.08)
          << test_case.label << " seed=" << seed;
    }
  }
}

TEST(ChurnSamplers, EmpiricalMedianTracksAnalyticAcrossSeeds) {
  constexpr std::size_t kSamples = 40'000;
  for (const DistributionCase& test_case : kCases) {
    ChurnSpec spec;
    spec.session = test_case.distribution;
    const double analytic = test_case.distribution.analytic_median();
    ASSERT_GT(analytic, 0.0) << test_case.label;
    for (const std::uint64_t seed : {11ULL, 2021ULL, 0xc402ULL}) {
      const ChurnModel model(spec, seed);
      const double empirical = common::median(draw_sessions(model, kSamples));
      EXPECT_NEAR(empirical / analytic, 1.0, 0.05)
          << test_case.label << " seed=" << seed;
    }
  }
}

TEST(ChurnSamplers, EmpiricalCdfIsMonotoneAndProper) {
  for (const DistributionCase& test_case : kCases) {
    ChurnSpec spec;
    spec.session = test_case.distribution;
    const ChurnModel model(spec, 99);
    const common::Cdf cdf(draw_sessions(model, 10'000));
    double previous = 0.0;
    const double max_sample = cdf.sorted_samples().back();
    for (int i = 0; i <= 50; ++i) {
      const double x = max_sample * static_cast<double>(i) / 50.0;
      const double fraction = cdf.fraction_at_most(x);
      EXPECT_GE(fraction, previous) << test_case.label << " at x=" << x;
      EXPECT_GE(fraction, 0.0);
      EXPECT_LE(fraction, 1.0);
      previous = fraction;
    }
    EXPECT_EQ(cdf.fraction_at_most(max_sample), 1.0) << test_case.label;
    // Sessions are lengths: never negative.
    EXPECT_GE(cdf.sorted_samples().front(), 0.0) << test_case.label;
  }
}

TEST(ChurnSamplers, DrawsArePureFunctionsOfNodeSessionSeed) {
  ChurnSpec spec;
  spec.diurnal = DiurnalSpec{.amplitude = 0.6, .period = 24 * kHour, .phase = 0};
  const ChurnModel model(spec, 42);
  const ChurnModel twin(spec, 42);

  // Same (node, session, seed) => same value, regardless of call order or
  // model instance; different coordinates decorrelate.
  const auto a = model.session_length(7, 3);
  (void)model.session_length(1000, 55);  // interleaved calls must not matter
  (void)model.gap_length(7, 3, 5 * kHour);
  EXPECT_EQ(model.session_length(7, 3), a);
  EXPECT_EQ(twin.session_length(7, 3), a);
  EXPECT_EQ(twin.gap_length(7, 3, 5 * kHour), model.gap_length(7, 3, 5 * kHour));
  EXPECT_NE(model.session_length(7, 4), a);
  EXPECT_NE(model.session_length(8, 3), a);

  const ChurnModel reseeded(spec, 43);
  EXPECT_NE(reseeded.session_length(7, 3), a);

  // Session and gap streams are decorrelated even at equal coordinates.
  EXPECT_NE(model.gap_length(7, 3, 0), model.session_length(7, 3));
}

TEST(ChurnSamplers, SameSeedProducesSameTrace) {
  // A full lifecycle trace — sessions and gaps for many (node, session)
  // pairs — must be bit-identical across model instances with equal seeds.
  ChurnSpec spec;
  spec.session = SessionDistribution::weibull(0.7, 2 * kHour);
  spec.gap = SessionDistribution::lognormal(1 * kHour, 0.9);
  const ChurnModel a(spec, 0x7ace);
  const ChurnModel b(spec, 0x7ace);
  for (std::uint32_t node = 0; node < 64; ++node) {
    for (std::uint32_t session = 0; session < 8; ++session) {
      ASSERT_EQ(a.session_length(node, session), b.session_length(node, session));
      ASSERT_EQ(a.gap_length(node, session, node * kMinute),
                b.gap_length(node, session, node * kMinute));
      ASSERT_EQ(a.initially_online(node), b.initially_online(node));
      ASSERT_EQ(a.redraw_address(node, session), b.redraw_address(node, session));
    }
  }
}

TEST(ChurnModel, CategoryOverridesSelectTheirDistribution) {
  ChurnSpec spec;
  spec.session = SessionDistribution::exponential(1 * kHour);
  ChurnCategorySpec core;
  core.category = Category::kCoreServer;
  core.session = SessionDistribution::exponential(100 * kHour);
  core.gap = spec.gap;
  spec.categories = {core};
  const ChurnModel model(spec, 5);

  common::RunningStats defaults;
  common::RunningStats overridden;
  for (std::uint32_t i = 0; i < 4'000; ++i) {
    defaults.add(static_cast<double>(
        model.session_length(i, 0, Category::kNormalUser)));
    overridden.add(static_cast<double>(
        model.session_length(i, 0, Category::kCoreServer)));
  }
  // Two orders of magnitude apart in the spec; at least 20x in the sample.
  EXPECT_GT(overridden.mean(), 20.0 * defaults.mean());
}

TEST(ChurnModel, DiurnalModulationShortensGapsAtThePeak) {
  ChurnSpec spec;
  spec.gap = SessionDistribution::exponential(2 * kHour);
  spec.diurnal = DiurnalSpec{.amplitude = 0.8, .period = 24 * kHour,
                             .phase = 12 * kHour};
  const ChurnModel model(spec, 9);

  EXPECT_NEAR(model.rate_multiplier(12 * kHour), 1.8, 1e-9);
  EXPECT_NEAR(model.rate_multiplier(0), 0.2, 1e-9);
  EXPECT_NEAR(model.rate_multiplier(36 * kHour), 1.8, 1e-9);  // periodic

  common::RunningStats at_peak;
  common::RunningStats at_trough;
  for (std::uint32_t i = 0; i < 4'000; ++i) {
    at_peak.add(static_cast<double>(model.gap_length(i, 0, 12 * kHour)));
    at_trough.add(static_cast<double>(model.gap_length(i, 0, 0)));
  }
  // Rate ratio 1.8 / 0.2 = 9x; the same underlying draws are scaled, so
  // the sample ratio is exact up to integer truncation.
  EXPECT_GT(at_trough.mean(), 8.0 * at_peak.mean());
}

TEST(ChurnModel, InitialOnlineFractionTracksProbability) {
  for (const double p : {0.0, 0.25, 0.6, 1.0}) {
    ChurnSpec spec;
    spec.initial_online = p;
    const ChurnModel model(spec, 123);
    std::size_t online = 0;
    constexpr std::uint32_t kNodes = 20'000;
    for (std::uint32_t node = 0; node < kNodes; ++node) {
      if (model.initially_online(node)) ++online;
    }
    EXPECT_NEAR(static_cast<double>(online) / kNodes, p, 0.02) << "p=" << p;
  }
}

TEST(ChurnSpec, ValidateAcceptsDefaultsAndRejectsProgrammaticMistakes) {
  EXPECT_EQ(ChurnSpec::validate(ChurnSpec{}), std::nullopt);

  ChurnSpec bad;
  bad.session = SessionDistribution::weibull(0.0, 1000.0);
  ASSERT_TRUE(ChurnSpec::validate(bad).has_value());
  EXPECT_NE(ChurnSpec::validate(bad)->find("shape must be > 0"), std::string::npos);

  bad = ChurnSpec{};
  bad.gap = SessionDistribution::lognormal(-5.0, 1.0);
  ASSERT_TRUE(ChurnSpec::validate(bad).has_value());
  EXPECT_NE(ChurnSpec::validate(bad)->find("churn.gap"), std::string::npos);

  bad = ChurnSpec{};
  bad.initial_online = 1.5;
  EXPECT_NE(ChurnSpec::validate(bad), std::nullopt);

  bad = ChurnSpec{};
  bad.diurnal = DiurnalSpec{.amplitude = 1.0};
  EXPECT_NE(ChurnSpec::validate(bad), std::nullopt);

  bad = ChurnSpec{};
  ChurnCategorySpec duplicate;
  duplicate.category = Category::kCrawler;
  duplicate.session = bad.session;
  duplicate.gap = bad.gap;
  bad.categories = {duplicate, duplicate};
  ASSERT_TRUE(ChurnSpec::validate(bad).has_value());
  EXPECT_NE(ChurnSpec::validate(bad)->find("duplicate category override"),
            std::string::npos);
}

}  // namespace
}  // namespace ipfs::scenario
