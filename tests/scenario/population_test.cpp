#include "scenario/population.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/version.hpp"
#include "p2p/protocols.hpp"

namespace ipfs::scenario {
namespace {

namespace proto = p2p::protocols;
using common::kDay;

class PopulationTest : public ::testing::Test {
 protected:
  Population build(double scale = 0.05, common::SimDuration duration = 3 * kDay) {
    return Population(PopulationSpec::test_scale(scale), duration, common::Rng(1));
  }
};

TEST_F(PopulationTest, DeterministicForSameSeed) {
  const Population a = build();
  const Population b = build();
  ASSERT_EQ(a.peers().size(), b.peers().size());
  for (std::size_t i = 0; i < a.peers().size(); ++i) {
    EXPECT_EQ(a.peers()[i].pid, b.peers()[i].pid);
    EXPECT_EQ(a.peers()[i].agent, b.peers()[i].agent);
    EXPECT_EQ(a.peers()[i].ip, b.peers()[i].ip);
  }
}

TEST_F(PopulationTest, ScaleControlsSize) {
  const Population small = build(0.02);
  const Population large = build(0.08);
  EXPECT_GT(large.peers().size(), 3 * small.peers().size());
}

TEST_F(PopulationTest, ArrivalCategoriesScaleWithDuration) {
  const Population short_run = build(0.05, 1 * kDay);
  const Population long_run = build(0.05, 6 * kDay);
  EXPECT_GT(long_run.count(Category::kOneTime),
            4 * short_run.count(Category::kOneTime));
  // Standing categories do not scale with duration.
  EXPECT_EQ(long_run.count(Category::kCoreClient),
            short_run.count(Category::kCoreClient));
}

TEST_F(PopulationTest, PidsAreUnique) {
  const Population population = build(0.1);
  std::set<p2p::PeerId> pids;
  for (const RemotePeer& peer : population.peers()) pids.insert(peer.pid);
  EXPECT_EQ(pids.size(), population.peers().size());
}

TEST_F(PopulationTest, IndicesAreDense) {
  const Population population = build();
  for (std::size_t i = 0; i < population.peers().size(); ++i) {
    EXPECT_EQ(population.peers()[i].index, i);
  }
}

TEST_F(PopulationTest, HydraHeadsClusterOnFewIps) {
  const Population population = build(0.2);
  std::map<p2p::IpAddress, int> hydra_ips;
  int hydra_count = 0;
  for (const RemotePeer& peer : population.peers()) {
    if (peer.category == Category::kHydra) {
      ++hydra_ips[peer.ip];
      ++hydra_count;
    }
  }
  EXPECT_GT(hydra_count, 100);
  // Far fewer IPs than heads (the paper's 1'026-heads-on-11-IPs pattern).
  EXPECT_LT(static_cast<int>(hydra_ips.size()), hydra_count / 5);
  for (const RemotePeer& peer : population.peers()) {
    if (peer.category == Category::kHydra) {
      EXPECT_EQ(peer.agent, "hydra-booster/0.7.4");
      EXPECT_TRUE(peer.dht_server);
    }
  }
}

TEST_F(PopulationTest, RotatingPidsShareOneIpAndAgent) {
  const Population population = build(0.2);
  std::set<p2p::IpAddress> ips;
  std::set<std::string> agents;
  std::size_t count = 0;
  for (const RemotePeer& peer : population.peers()) {
    if (peer.category == Category::kRotatingPid) {
      ips.insert(peer.ip);
      agents.insert(peer.agent);
      ++count;
    }
  }
  EXPECT_GT(count, 50u);
  EXPECT_EQ(ips.size(), 1u);
  EXPECT_EQ(agents.size(), 1u);
}

TEST_F(PopulationTest, EphemeralPeersHaveNoAgent) {
  const Population population = build();
  for (const RemotePeer& peer : population.peers()) {
    if (peer.category == Category::kEphemeral) {
      EXPECT_TRUE(peer.agent.empty());
      EXPECT_TRUE(peer.protocols.empty());
    }
  }
}

TEST_F(PopulationTest, DisguisedStormFingerprint) {
  const Population population = build(0.1);
  std::size_t disguised = 0;
  for (const RemotePeer& peer : population.peers()) {
    if (peer.category != Category::kLightServer) continue;
    const bool has_sbptp =
        std::find(peer.protocols.begin(), peer.protocols.end(),
                  std::string(proto::kSbptp)) != peer.protocols.end();
    if (!has_sbptp) continue;
    ++disguised;
    // The paper's fingerprint: claims go-ipfs v0.8.0, no bitswap.
    EXPECT_NE(peer.agent.find("go-ipfs/0.8.0"), std::string::npos);
    for (const std::string& protocol : peer.protocols) {
      EXPECT_FALSE(proto::is_bitswap(protocol));
    }
  }
  EXPECT_GT(disguised, 300u);  // ~7.5k at full scale
}

TEST_F(PopulationTest, ServersAnnounceKad) {
  const Population population = build();
  for (const RemotePeer& peer : population.peers()) {
    if (peer.agent.empty()) continue;
    const bool announces =
        std::find(peer.protocols.begin(), peer.protocols.end(),
                  std::string(proto::kKad)) != peer.protocols.end();
    EXPECT_EQ(announces, peer.dht_server) << to_string(peer.category);
  }
}

TEST_F(PopulationTest, OneShotWindowsInsideMeasurement) {
  const Population population = build(0.05, 3 * kDay);
  for (const RemotePeer& peer : population.peers()) {
    const auto& params = default_params(peer.category);
    if (params.session != SessionKind::kOneShot) continue;
    EXPECT_GE(peer.session_start, 0);
    EXPECT_LT(peer.session_start, 3 * kDay);
    EXPECT_GT(peer.session_length, 0);
  }
}

TEST_F(PopulationTest, NormalUserSessionsBetweenTwoAndTwentyFourHours) {
  const Population population = build(0.1);
  for (const RemotePeer& peer : population.peers()) {
    if (peer.category != Category::kNormalUser) continue;
    EXPECT_GT(peer.session_length, 2 * common::kHour);
    EXPECT_LT(peer.session_length, 24 * common::kHour);
  }
}

TEST_F(PopulationTest, AgentMixMatchesPaperShares) {
  const Population population = build(0.3);
  std::size_t go_ipfs = 0;
  std::size_t missing = 0;
  for (const RemotePeer& peer : population.peers()) {
    if (peer.agent.empty()) {
      ++missing;
    } else if (peer.agent.rfind("go-ipfs/", 0) == 0) {
      ++go_ipfs;
    }
  }
  const double total = static_cast<double>(population.peers().size());
  // Paper: 50'254 / 65'853 = 76 % go-ipfs, 3'059 / 65'853 = 4.6 % missing.
  EXPECT_NEAR(static_cast<double>(go_ipfs) / total, 0.76, 0.06);
  EXPECT_NEAR(static_cast<double>(missing) / total, 0.046, 0.02);
}

TEST_F(PopulationTest, GoIpfsAgentStringsParse) {
  const Population population = build(0.1);
  for (const RemotePeer& peer : population.peers()) {
    if (peer.agent.rfind("go-ipfs/", 0) != 0) continue;
    const auto info = common::AgentInfo::parse(peer.agent);
    EXPECT_TRUE(info.is_go_ipfs());
    EXPECT_TRUE(info.version.has_value()) << peer.agent;
    EXPECT_FALSE(info.commit.empty()) << peer.agent;
  }
}

TEST_F(PopulationTest, DhtServerShareNearPaper) {
  const Population population = build(0.3);
  const double share = static_cast<double>(population.dht_server_count()) /
                       static_cast<double>(population.peers().size());
  // Paper: 18'845 kad supporters of 65'853 PIDs = 28.6 %.
  EXPECT_NEAR(share, 0.286, 0.05);
}

TEST_F(PopulationTest, SomePeersAreDualHomed) {
  const Population population = build(0.2);
  std::size_t dual = 0;
  for (const RemotePeer& peer : population.peers()) {
    if (peer.has_alt_ip) {
      ++dual;
      EXPECT_NE(peer.alt_ip, peer.ip);
    }
  }
  EXPECT_GT(dual, 100u);
}

}  // namespace
}  // namespace ipfs::scenario
