// The `"churn"` section of scenario files: strict parsing, field-path
// rejection of a malformed-input corpus, and exact to_json round-trips
// (docs/SCENARIOS.md, DESIGN.md §10).
#include <gtest/gtest.h>

#include "scenario/churn.hpp"
#include "scenario/scenario_spec.hpp"

namespace ipfs::scenario {
namespace {

using common::kDay;
using common::kHour;

ScenarioSpec parse_or_die(const std::string& text) {
  auto spec = ScenarioSpec::from_json(text);
  EXPECT_TRUE(spec.has_value()) << spec.error();
  return spec.value_or(ScenarioSpec{});
}

/// Wrap a `"churn"` body into a minimal valid scenario document.
std::string with_churn(std::string_view churn_body) {
  return std::string(R"({"name":"x","churn":)") + std::string(churn_body) + "}";
}

// ---- malformed-input corpus -------------------------------------------------

struct CorpusCase {
  const char* label;
  const char* churn;              ///< the "churn" section body
  const char* expected_fragment;  ///< must appear in the error (field path)
};

TEST(ChurnSection, MalformedCorpusRejectedWithFieldPaths) {
  const CorpusCase corpus[] = {
      {"not an object", R"("heavy")", "churn: expected an object"},
      {"unknown field", R"({"sessions":{}})", "churn: unknown field 'sessions'"},
      {"session not an object", R"({"session":42})",
       "churn.session: expected an object"},
      {"unknown distribution kind", R"({"session":{"kind":"zipf"}})",
       "churn.session.kind: expected \"exponential\", \"weibull\" or "
       "\"lognormal\""},
      {"exponential missing mean", R"({"session":{"kind":"exponential"}})",
       "churn.session: mean_ms must be > 0"},
      {"exponential negative mean",
       R"({"session":{"kind":"exponential","mean_ms":-5}})",
       "churn.session: mean_ms must be > 0"},
      {"exponential with weibull field",
       R"({"session":{"kind":"exponential","mean_ms":1000,"shape":2}})",
       "churn.session: unknown field 'shape'"},
      {"weibull zero shape",
       R"({"session":{"kind":"weibull","shape":0,"scale_ms":1000}})",
       "churn.session: shape must be > 0"},
      {"weibull zero scale",
       R"({"session":{"kind":"weibull","shape":0.5,"scale_ms":0}})",
       "churn.session: scale_ms must be > 0"},
      {"weibull with lognormal field",
       R"({"session":{"kind":"weibull","shape":0.5,"scale_ms":9,"sigma":1}})",
       "churn.session: unknown field 'sigma'"},
      {"lognormal zero median",
       R"({"gap":{"kind":"lognormal","median_ms":0,"sigma":1}})",
       "churn.gap: median_ms must be > 0"},
      {"lognormal negative sigma",
       R"({"gap":{"kind":"lognormal","median_ms":1000,"sigma":-0.1}})",
       "churn.gap: sigma must be >= 0"},
      {"gap not an object", R"({"gap":[1,2]})", "churn.gap: expected an object"},
      {"initial_online above one", R"({"initial_online":1.01})",
       "churn: initial_online must be in [0, 1]"},
      {"initial_online negative", R"({"initial_online":-0.5})",
       "churn: initial_online must be in [0, 1]"},
      {"initial_online not a number", R"({"initial_online":"half"})",
       "churn.initial_online: expected a number"},
      {"sample interval zero", R"({"sample_interval_ms":0})",
       "churn: sample_interval_ms must be > 0"},
      {"diurnal unknown field", R"({"diurnal":{"amp":0.5}})",
       "churn.diurnal: unknown field 'amp'"},
      {"diurnal amplitude at one",
       R"({"diurnal":{"amplitude":1.0,"period_ms":86400000}})",
       "churn.diurnal: amplitude must be in [0, 1)"},
      {"diurnal amplitude negative",
       R"({"diurnal":{"amplitude":-0.2,"period_ms":86400000}})",
       "churn.diurnal: amplitude must be in [0, 1)"},
      {"diurnal zero period",
       R"({"diurnal":{"amplitude":0.5,"period_ms":0}})",
       "churn.diurnal: period_ms must be > 0"},
      {"diurnal phase outside the period",
       R"({"diurnal":{"amplitude":0.5,"period_ms":1000,"phase_ms":1000}})",
       "churn.diurnal: phase_ms must be in [0, period_ms)"},
      {"categories not an object", R"({"categories":[]})",
       "churn.categories: expected an object"},
      {"unknown category name", R"({"categories":{"warthog":{}}})",
       "churn.categories: unknown category name 'warthog'"},
      {"category entry not an object", R"({"categories":{"crawler":7}})",
       "churn.categories.crawler: expected an object"},
      {"category unknown field",
       R"({"categories":{"crawler":{"retention_ms":5}}})",
       "churn.categories.crawler: unknown field 'retention_ms'"},
      {"category nested distribution error",
       R"({"categories":{"core-server":
             {"session":{"kind":"weibull","shape":-1,"scale_ms":10}}}})",
       "churn.categories.core-server.session: shape must be > 0"},
      {"duplicate category override",
       R"({"categories":{"crawler":{},"crawler":{}}})",
       "churn.categories.crawler: duplicate category override"},
  };
  for (const CorpusCase& test_case : corpus) {
    const auto spec = ScenarioSpec::from_json(with_churn(test_case.churn));
    ASSERT_FALSE(spec.has_value()) << test_case.label;
    EXPECT_NE(spec.error().find(test_case.expected_fragment), std::string::npos)
        << test_case.label << ": got '" << spec.error() << "'";
  }
}

// ---- acceptance and round-trips ---------------------------------------------

TEST(ChurnSection, EmptySectionEngagesTheDefaults) {
  const ScenarioSpec spec = parse_or_die(with_churn("{}"));
  ASSERT_TRUE(spec.churn.has_value());
  EXPECT_EQ(*spec.churn, ChurnSpec{});
  EXPECT_EQ(spec.churn->session.kind, SessionDistribution::Kind::kWeibull);
  EXPECT_EQ(spec.churn->gap.kind, SessionDistribution::Kind::kLognormal);
}

TEST(ChurnSection, AbsentSectionStaysAbsent) {
  const ScenarioSpec spec = parse_or_die(R"({"name":"x"})");
  EXPECT_FALSE(spec.churn.has_value());
  // ...and is omitted from the export, so pre-churn files round-trip
  // byte-identically.
  EXPECT_EQ(spec.to_json_string().find("\"churn\""), std::string::npos);
}

TEST(ChurnSection, FullSectionRoundTripsExactly) {
  ScenarioSpec spec = parse_or_die(with_churn(R"({
    "session": {"kind": "weibull", "shape": 0.61, "scale_ms": 5400000},
    "gap": {"kind": "lognormal", "median_ms": 3600000, "sigma": 1.25},
    "initial_online": 0.42,
    "sample_interval_ms": 1800000,
    "diurnal": {"amplitude": 0.7, "period_ms": 86400000, "phase_ms": 43200000},
    "categories": {
      "core-server": {"session": {"kind": "exponential", "mean_ms": 86400000}},
      "crawler": {"gap": {"kind": "weibull", "shape": 2.5, "scale_ms": 60000}}
    }
  })"));
  ASSERT_TRUE(spec.churn.has_value());
  EXPECT_EQ(spec.churn->categories.size(), 2u);
  // Absent override fields inherit the section's top-level distribution.
  EXPECT_EQ(spec.churn->categories[0].gap, spec.churn->gap);
  EXPECT_EQ(spec.churn->categories[1].session, spec.churn->session);

  const std::string exported = spec.to_json_string();
  const auto reparsed = ScenarioSpec::from_json(exported);
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error();
  EXPECT_EQ(*reparsed, spec);
  EXPECT_EQ(reparsed->to_json_string(), exported);
}

TEST(ChurnSection, BuiltinChurnScenariosValidateAndRoundTrip) {
  for (const char* name : {"churn-baseline", "diurnal-churn"}) {
    const auto spec = ScenarioSpec::builtin(name);
    ASSERT_TRUE(spec.has_value()) << name;
    ASSERT_TRUE(spec->churn.has_value()) << name;
    EXPECT_EQ(ScenarioSpec::validate(*spec), std::nullopt) << name;
    const auto reparsed = ScenarioSpec::from_json(spec->to_json_string());
    ASSERT_TRUE(reparsed.has_value()) << name << ": " << reparsed.error();
    EXPECT_EQ(*reparsed, *spec) << name;
  }
}

}  // namespace
}  // namespace ipfs::scenario
