// Property tests for the content-workload samplers (DESIGN.md §11):
// publish counts track the configured rate, fetch gaps track the Poisson
// rate, fetch keys show the popularity skew, and every draw is a pure
// function of (node, slot/fetch, cycle, seed).
#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hpp"
#include "scenario/content.hpp"

namespace ipfs::scenario {
namespace {

using common::kHour;
using common::kMinute;

TEST(ContentModel, PublishCountTracksTheRateInExpectation) {
  for (const double rate : {0.0, 0.5, 1.5, 2.0, 3.75}) {
    ContentSpec spec;
    spec.publishes_per_peer = rate;
    const ContentModel model(spec, 77);
    std::uint64_t total = 0;
    constexpr std::uint32_t kNodes = 20'000;
    for (std::uint32_t node = 0; node < kNodes; ++node) {
      const std::uint32_t count = model.publish_count(node, Category::kNormalUser);
      // The integer part is guaranteed; the fraction is at most one extra.
      EXPECT_GE(count, static_cast<std::uint32_t>(rate));
      EXPECT_LE(count, static_cast<std::uint32_t>(rate) + 1);
      total += count;
    }
    EXPECT_NEAR(static_cast<double>(total) / kNodes, rate, 0.02) << "rate=" << rate;
  }
}

TEST(ContentModel, FetchGapsTrackThePoissonRate) {
  for (const double rate : {0.25, 1.0, 6.0}) {
    ContentSpec spec;
    spec.fetches_per_hour = rate;
    const ContentModel model(spec, 3);
    common::RunningStats stats;
    for (std::uint32_t i = 0; i < 40'000; ++i) {
      stats.add(static_cast<double>(
          model.fetch_gap(i % 512, i / 512, Category::kNormalUser)));
    }
    const double analytic = static_cast<double>(kHour) / rate;
    EXPECT_NEAR(stats.mean() / analytic, 1.0, 0.05) << "rate=" << rate;
  }
}

TEST(ContentModel, FetchGapIsZeroWhenTheRateIsZero) {
  ContentSpec spec;
  spec.fetches_per_hour = 0.0;
  const ContentModel model(spec, 1);
  EXPECT_EQ(model.fetch_gap(4, 2, Category::kNormalUser), 0);
}

TEST(ContentModel, FetchKeysAreSkewedTowardsTheKeyspaceHead) {
  const ContentModel model(ContentSpec{}, 9);
  constexpr std::uint32_t kKeyspace = 100;
  std::size_t head = 0;
  constexpr std::uint32_t kDraws = 40'000;
  for (std::uint32_t i = 0; i < kDraws; ++i) {
    const std::uint32_t key = model.fetch_key(i % 256, i / 256, kKeyspace);
    ASSERT_LT(key, kKeyspace);
    if (key < kKeyspace / 4) ++head;
  }
  // u^2 bias: P(key < keyspace/4) = sqrt(1/4) = 1/2, against 1/4 uniform.
  EXPECT_NEAR(static_cast<double>(head) / kDraws, 0.5, 0.02);
}

TEST(ContentModel, ProvidedKeysAreUniformOverTheKeyspace) {
  const ContentModel model(ContentSpec{}, 21);
  constexpr std::uint32_t kKeyspace = 16;
  std::vector<std::size_t> counts(kKeyspace, 0);
  constexpr std::uint32_t kDraws = 64'000;
  for (std::uint32_t i = 0; i < kDraws; ++i) {
    const std::uint32_t key = model.key_for(i % 512, i / 512, kKeyspace);
    ASSERT_LT(key, kKeyspace);
    ++counts[key];
  }
  for (const std::size_t count : counts) {
    EXPECT_NEAR(static_cast<double>(count) * kKeyspace / kDraws, 1.0, 0.1);
  }
}

TEST(ContentModel, FetchServedFractionTracksFetchSuccess) {
  for (const double p : {0.0, 0.5, 0.97, 1.0}) {
    ContentSpec spec;
    spec.fetch_success = p;
    const ContentModel model(spec, 5);
    std::size_t served = 0;
    constexpr std::uint32_t kDraws = 20'000;
    for (std::uint32_t i = 0; i < kDraws; ++i) {
      if (model.fetch_served(i % 256, i / 256)) ++served;
    }
    EXPECT_NEAR(static_cast<double>(served) / kDraws, p, 0.02) << "p=" << p;
  }
}

TEST(ContentModel, DrawsArePureFunctionsOfCoordinatesAndSeed) {
  const ContentModel model(ContentSpec{}, 42);
  const ContentModel twin(ContentSpec{}, 42);

  // Same coordinates => same value, regardless of call order or instance;
  // different coordinates decorrelate.
  const auto key = model.key_for(7, 3, 512);
  (void)model.fetch_key(1000, 55, 512);  // interleaved calls must not matter
  (void)model.initial_publish_delay(7, 3);
  EXPECT_EQ(model.key_for(7, 3, 512), key);
  EXPECT_EQ(twin.key_for(7, 3, 512), key);
  EXPECT_EQ(twin.initial_publish_delay(7, 3), model.initial_publish_delay(7, 3));
  EXPECT_EQ(twin.republish_jitter(7, 3, 2), model.republish_jitter(7, 3, 2));
  EXPECT_NE(model.republish_jitter(7, 3, 2), model.republish_jitter(7, 3, 3));
  EXPECT_EQ(twin.fetch_gap(9, 1, Category::kNormalUser),
            model.fetch_gap(9, 1, Category::kNormalUser));
  EXPECT_EQ(twin.key_cid(31), model.key_cid(31));
  EXPECT_NE(model.key_cid(31), model.key_cid(32));

  const ContentModel reseeded(ContentSpec{}, 43);
  EXPECT_NE(reseeded.key_cid(31), model.key_cid(31));
  EXPECT_NE(reseeded.initial_publish_delay(7, 3), model.initial_publish_delay(7, 3));
}

TEST(ContentModel, DelaysStayInsideThePublishSpread) {
  ContentSpec spec;
  spec.publish_spread = 10 * kMinute;
  const ContentModel model(spec, 8);
  for (std::uint32_t node = 0; node < 256; ++node) {
    EXPECT_GE(model.initial_publish_delay(node, 0), 0);
    EXPECT_LT(model.initial_publish_delay(node, 0), 10 * kMinute);
    EXPECT_GE(model.republish_jitter(node, 0, 1), 0);
    EXPECT_LT(model.republish_jitter(node, 0, 1), 10 * kMinute);
  }
}

TEST(ContentModel, CategoryOverridesSelectTheirRates) {
  ContentSpec spec;
  spec.publishes_per_peer = 1.0;
  spec.fetches_per_hour = 1.0;
  ContentCategorySpec server;
  server.category = Category::kCoreServer;
  server.publishes_per_peer = 8.0;
  server.fetches_per_hour = 0.0;
  spec.categories = {server};
  const ContentModel model(spec, 6);

  EXPECT_DOUBLE_EQ(model.publish_rate(Category::kNormalUser), 1.0);
  EXPECT_DOUBLE_EQ(model.publish_rate(Category::kCoreServer), 8.0);
  EXPECT_DOUBLE_EQ(model.fetch_rate(Category::kCoreServer), 0.0);
  EXPECT_EQ(model.publish_count(12, Category::kCoreServer), 8u);
  EXPECT_EQ(model.fetch_gap(12, 0, Category::kCoreServer), 0);
}

TEST(ContentSpec, ValidateAcceptsDefaultsAndRejectsProgrammaticMistakes) {
  EXPECT_EQ(ContentSpec::validate(ContentSpec{}), std::nullopt);

  ContentSpec bad;
  bad.keys = 0;
  ASSERT_TRUE(ContentSpec::validate(bad).has_value());
  EXPECT_NE(ContentSpec::validate(bad)->find("keys must be >= 1"),
            std::string::npos);

  bad = ContentSpec{};
  bad.republish_interval = bad.provider_ttl;
  ASSERT_TRUE(ContentSpec::validate(bad).has_value());
  EXPECT_NE(ContentSpec::validate(bad)->find(
                "republish_interval_ms must be < provider_ttl_ms"),
            std::string::npos);

  bad = ContentSpec{};
  bad.fetch_success = 1.5;
  EXPECT_NE(ContentSpec::validate(bad), std::nullopt);

  bad = ContentSpec{};
  ContentCategorySpec duplicate;
  duplicate.category = Category::kCrawler;
  bad.categories = {duplicate, duplicate};
  ASSERT_TRUE(ContentSpec::validate(bad).has_value());
  EXPECT_NE(ContentSpec::validate(bad)->find("duplicate category override"),
            std::string::npos);
}

}  // namespace
}  // namespace ipfs::scenario
