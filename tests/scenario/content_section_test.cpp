// The `"content"` section of scenario files: strict parsing, field-path
// rejection of a malformed-input corpus, and exact to_json round-trips
// (docs/SCENARIOS.md, DESIGN.md §11).
#include <gtest/gtest.h>

#include "scenario/content.hpp"
#include "scenario/scenario_spec.hpp"

namespace ipfs::scenario {
namespace {

using common::kHour;

ScenarioSpec parse_or_die(const std::string& text) {
  auto spec = ScenarioSpec::from_json(text);
  EXPECT_TRUE(spec.has_value()) << spec.error();
  return spec.value_or(ScenarioSpec{});
}

/// Wrap a `"content"` body into a minimal valid scenario document.
std::string with_content(std::string_view content_body) {
  return std::string(R"({"name":"x","content":)") + std::string(content_body) +
         "}";
}

// ---- malformed-input corpus -------------------------------------------------

struct CorpusCase {
  const char* label;
  const char* content;            ///< the "content" section body
  const char* expected_fragment;  ///< must appear in the error (field path)
};

TEST(ContentSection, MalformedCorpusRejectedWithFieldPaths) {
  const CorpusCase corpus[] = {
      {"not an object", R"("heavy")", "content: expected an object"},
      {"an array", R"([1,2,3])", "content: expected an object"},
      {"unknown field", R"({"key_count":64})",
       "content: unknown field 'key_count'"},
      {"keys zero", R"({"keys":0})", "content: keys must be >= 1"},
      {"keys not an integer", R"({"keys":"many"})",
       "content.keys: expected an integer in [0, 2^32)"},
      {"keys negative", R"({"keys":-4})",
       "content.keys: expected an integer in [0, 2^32)"},
      {"publishes_per_peer negative", R"({"publishes_per_peer":-0.5})",
       "content: publishes_per_peer must be >= 0"},
      {"publishes_per_peer not a number", R"({"publishes_per_peer":"two"})",
       "content.publishes_per_peer: expected a number"},
      {"fetches_per_hour negative", R"({"fetches_per_hour":-1})",
       "content: fetches_per_hour must be >= 0"},
      {"provider ttl zero", R"({"provider_ttl_ms":0})",
       "content: provider_ttl_ms must be > 0"},
      {"provider ttl not integer ms", R"({"provider_ttl_ms":"1d"})",
       "content.provider_ttl_ms: expected an integer number of milliseconds"},
      {"republish interval zero", R"({"republish_interval_ms":0})",
       "content: republish_interval_ms must be > 0"},
      {"republish not below ttl",
       R"({"provider_ttl_ms":3600000,"republish_interval_ms":3600000})",
       "content: republish_interval_ms must be < provider_ttl_ms"},
      {"republish above ttl",
       R"({"provider_ttl_ms":3600000,"republish_interval_ms":7200000})",
       "content: republish_interval_ms must be < provider_ttl_ms"},
      {"publish spread zero", R"({"publish_spread_ms":0})",
       "content: publish_spread_ms must be > 0"},
      {"publish spread negative", R"({"publish_spread_ms":-1000})",
       "content: publish_spread_ms must be > 0"},
      {"bucket refresh zero", R"({"bucket_refresh_interval_ms":0})",
       "content: bucket_refresh_interval_ms must be > 0"},
      {"replacement cache zero", R"({"replacement_cache_size":0})",
       "content: replacement_cache_size must be >= 1"},
      {"sample interval zero", R"({"sample_interval_ms":0})",
       "content: sample_interval_ms must be > 0"},
      {"fetch_success above one", R"({"fetch_success":1.01})",
       "content: fetch_success must be in [0, 1]"},
      {"fetch_success negative", R"({"fetch_success":-0.1})",
       "content: fetch_success must be in [0, 1]"},
      {"fetch_success not a number", R"({"fetch_success":"mostly"})",
       "content.fetch_success: expected a number"},
      {"categories not an object", R"({"categories":[]})",
       "content.categories: expected an object"},
      {"unknown category name", R"({"categories":{"warthog":{}}})",
       "content.categories: unknown category name 'warthog'"},
      {"category entry not an object", R"({"categories":{"crawler":7}})",
       "content.categories.crawler: expected an object"},
      {"category unknown field",
       R"({"categories":{"crawler":{"fetch_rate":5}}})",
       "content.categories.crawler: unknown field 'fetch_rate'"},
      {"category negative publishes",
       R"({"categories":{"core-server":{"publishes_per_peer":-2}}})",
       "content.categories.core-server: publishes_per_peer must be >= 0"},
      {"category negative fetches",
       R"({"categories":{"light-client":{"fetches_per_hour":-0.25}}})",
       "content.categories.light-client: fetches_per_hour must be >= 0"},
      {"duplicate category override",
       R"({"categories":{"crawler":{},"crawler":{}}})",
       "content.categories.crawler: duplicate category override"},
  };
  for (const CorpusCase& test_case : corpus) {
    const auto spec = ScenarioSpec::from_json(with_content(test_case.content));
    ASSERT_FALSE(spec.has_value()) << test_case.label;
    EXPECT_NE(spec.error().find(test_case.expected_fragment), std::string::npos)
        << test_case.label << ": got '" << spec.error() << "'";
  }
}

// ---- acceptance and round-trips ---------------------------------------------

TEST(ContentSection, EmptySectionEngagesTheDefaults) {
  const ScenarioSpec spec = parse_or_die(with_content("{}"));
  ASSERT_TRUE(spec.content.has_value());
  EXPECT_EQ(*spec.content, ContentSpec{});
  // The go-ipfs provider-record constants are the defaults.
  EXPECT_EQ(spec.content->provider_ttl, 24 * kHour);
  EXPECT_EQ(spec.content->republish_interval, 12 * kHour);
}

TEST(ContentSection, AbsentSectionStaysAbsent) {
  const ScenarioSpec spec = parse_or_die(R"({"name":"x"})");
  EXPECT_FALSE(spec.content.has_value());
  // ...and is omitted from the export, so pre-content files round-trip
  // byte-identically.
  EXPECT_EQ(spec.to_json_string().find("\"content\""), std::string::npos);
}

TEST(ContentSection, FullSectionRoundTripsExactly) {
  ScenarioSpec spec = parse_or_die(with_content(R"({
    "keys": 96,
    "publishes_per_peer": 1.5,
    "fetches_per_hour": 3.25,
    "provider_ttl_ms": 7200000,
    "republish_interval_ms": 3600000,
    "publish_spread_ms": 900000,
    "bucket_refresh_interval_ms": 300000,
    "replacement_cache_size": 8,
    "sample_interval_ms": 1800000,
    "fetch_success": 0.85,
    "categories": {
      "core-server": {"publishes_per_peer": 6},
      "one-time": {"fetches_per_hour": 0}
    }
  })"));
  ASSERT_TRUE(spec.content.has_value());
  ASSERT_EQ(spec.content->categories.size(), 2u);
  // Absent override fields inherit the section's top-level rates.
  EXPECT_DOUBLE_EQ(spec.content->categories[0].fetches_per_hour, 3.25);
  EXPECT_DOUBLE_EQ(spec.content->categories[1].publishes_per_peer, 1.5);

  const std::string exported = spec.to_json_string();
  const auto reparsed = ScenarioSpec::from_json(exported);
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error();
  EXPECT_EQ(*reparsed, spec);
  EXPECT_EQ(reparsed->to_json_string(), exported);
}

TEST(ContentSection, SectionReachesTheCampaignConfig) {
  const ScenarioSpec spec = parse_or_die(with_content(R"({"keys": 32})"));
  const CampaignConfig config = spec.to_campaign_config();
  ASSERT_TRUE(config.content.has_value());
  EXPECT_EQ(config.content->keys, 32u);
  // And an absent section stays absent through the conversion.
  EXPECT_FALSE(parse_or_die(R"({"name":"x"})").to_campaign_config().content);
}

TEST(ContentSection, BuiltinContentScenariosValidateAndRoundTrip) {
  for (const char* name : {"content-baseline", "flash-fetch"}) {
    const auto spec = ScenarioSpec::builtin(name);
    ASSERT_TRUE(spec.has_value()) << name;
    ASSERT_TRUE(spec->content.has_value()) << name;
    EXPECT_EQ(ScenarioSpec::validate(*spec), std::nullopt) << name;
    const auto reparsed = ScenarioSpec::from_json(spec->to_json_string());
    ASSERT_TRUE(reparsed.has_value()) << name << ": " << reparsed.error();
    EXPECT_EQ(*reparsed, *spec) << name;
  }
}

}  // namespace
}  // namespace ipfs::scenario
