#include "scenario/campaign.hpp"

#include <gtest/gtest.h>

#include "analysis/connection_stats.hpp"

namespace ipfs::scenario {
namespace {

using common::kDay;
using common::kHour;

CampaignConfig small_config(PeriodSpec period, double scale = 0.02,
                            std::uint64_t seed = 7) {
  CampaignConfig config;
  config.period = period;
  config.population = PopulationSpec::test_scale(scale);
  config.seed = seed;
  return config;
}

TEST(Campaign, PeriodPresetsMatchTableOne) {
  const auto p0 = PeriodSpec::P0();
  EXPECT_EQ(p0.duration, 3 * kDay);
  EXPECT_EQ(p0.go_low_water, 600);
  EXPECT_EQ(p0.go_high_water, 900);
  EXPECT_EQ(p0.hydra_heads, 3);

  const auto p2 = PeriodSpec::P2();
  EXPECT_EQ(p2.go_low_water, 18000);
  EXPECT_EQ(p2.hydra_heads, 2);

  const auto p3 = PeriodSpec::P3();
  EXPECT_EQ(p3.go_ipfs_mode, dht::Mode::kClient);
  EXPECT_EQ(p3.hydra_heads, 0);

  EXPECT_EQ(PeriodSpec::P4().duration, 3 * kDay);
  EXPECT_EQ(PeriodSpec::Long14d().duration, 14 * kDay);
  EXPECT_EQ(PeriodSpec::table1().size(), 5u);
}

TEST(Campaign, ProducesDatasetsPerVantage) {
  auto period = PeriodSpec::P1();
  period.duration = 6 * kHour;  // shorten for the test
  CampaignEngine engine(small_config(period));
  const auto result = engine.run();
  ASSERT_TRUE(result.go_ipfs.has_value());
  ASSERT_EQ(result.hydra_heads.size(), 2u);
  ASSERT_TRUE(result.hydra_union.has_value());
  EXPECT_GT(result.go_ipfs->peer_count(), 0u);
  EXPECT_GT(result.go_ipfs->connection_count(), 0u);
  EXPECT_GT(result.population_size, 0u);
  EXPECT_GT(result.events_executed, 1000u);
}

TEST(Campaign, DeterministicAcrossRuns) {
  auto period = PeriodSpec::P4();
  period.duration = 6 * kHour;
  const auto run = [&] {
    CampaignEngine engine(small_config(period));
    return engine.run();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.go_ipfs->peer_count(), b.go_ipfs->peer_count());
  EXPECT_EQ(a.go_ipfs->connection_count(), b.go_ipfs->connection_count());
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(Campaign, DifferentSeedsDiffer) {
  auto period = PeriodSpec::P4();
  period.duration = 6 * kHour;
  CampaignEngine engine_a(small_config(period, 0.02, 1));
  CampaignEngine engine_b(small_config(period, 0.02, 2));
  const auto a = engine_a.run();
  const auto b = engine_b.run();
  EXPECT_NE(a.go_ipfs->connection_count(), b.go_ipfs->connection_count());
}

TEST(Campaign, HydraUnionAtLeastEachHead) {
  auto period = PeriodSpec::P1();
  period.duration = 6 * kHour;
  CampaignEngine engine(small_config(period));
  const auto result = engine.run();
  for (const auto& head : result.hydra_heads) {
    EXPECT_GE(result.hydra_union->peer_count(), head.peer_count());
  }
  // The union's connection records are the concatenation of the heads'.
  std::size_t head_conns = 0;
  for (const auto& head : result.hydra_heads) head_conns += head.connection_count();
  EXPECT_EQ(result.hydra_union->connection_count(), head_conns);
}

TEST(Campaign, LowWatermarksCauseTrimming) {
  auto period = PeriodSpec::P0();  // 600/900 at full scale
  period.duration = 6 * kHour;
  period.hydra_heads = 0;
  period.go_low_water = 12;  // scaled-down equivalents
  period.go_high_water = 18;
  CampaignEngine engine(small_config(period));
  const auto result = engine.run();
  const auto reasons = analysis::compute_close_reasons(*result.go_ipfs);
  EXPECT_GT(reasons.local_trim, 0u);
}

TEST(Campaign, HighWatermarksAvoidOwnTrimming) {
  auto period = PeriodSpec::P4();  // 18k/20k: far above a 2 % population
  period.duration = 6 * kHour;
  CampaignEngine engine(small_config(period));
  const auto result = engine.run();
  const auto reasons = analysis::compute_close_reasons(*result.go_ipfs);
  EXPECT_EQ(reasons.local_trim, 0u);
  EXPECT_GT(reasons.remote_trim + reasons.remote_close, 0u);
}

TEST(Campaign, ClientVantageSeesFewerPeersWithOutboundConns) {
  auto server_period = PeriodSpec::P4();
  server_period.duration = 6 * kHour;
  auto client_period = PeriodSpec::P3();
  client_period.duration = 6 * kHour;

  CampaignEngine server_engine(small_config(server_period));
  CampaignEngine client_engine(small_config(client_period));
  const auto server_result = server_engine.run();
  const auto client_result = client_engine.run();

  EXPECT_LT(client_result.go_ipfs->peer_count(), server_result.go_ipfs->peer_count());

  // P3's connections are outbound dials from the vantage.
  const auto stats = analysis::compute_connection_stats(*client_result.go_ipfs);
  EXPECT_GT(stats.direction.outbound_count, stats.direction.inbound_count);
}

TEST(Campaign, CrawlerSnapshotsCollected) {
  auto period = PeriodSpec::P4();
  period.duration = 18 * kHour;
  CampaignEngine engine(small_config(period));
  const auto result = engine.run();
  EXPECT_GE(result.crawls.size(), 2u);
  for (const auto& crawl : result.crawls) {
    EXPECT_GT(crawl.reached_servers, 0u);
    EXPECT_GE(crawl.learned_pids, crawl.reached_servers);
  }
  const auto [low, high] = result.crawler_min_max();
  EXPECT_GT(low, 0u);
  EXPECT_GE(high, low);
}

TEST(Campaign, CrawlerDisabled) {
  auto period = PeriodSpec::P4();
  period.duration = 6 * kHour;
  auto config = small_config(period);
  config.enable_crawler = false;
  CampaignEngine engine(config);
  EXPECT_TRUE(engine.run().crawls.empty());
}

TEST(Campaign, MetadataDynamicsToggle) {
  auto period = PeriodSpec::P4();
  period.duration = 12 * kHour;
  auto config = small_config(period, 0.05);
  config.enable_metadata_dynamics = false;
  CampaignEngine engine(config);
  const auto result = engine.run();
  // Without dynamics no peer ever changes its agent string.
  for (const auto& peer : result.go_ipfs->peers()) {
    EXPECT_LE(peer.agent_history.size(), 1u);
  }
}

TEST(Campaign, RecorderQuantisesToPollGrid) {
  auto period = PeriodSpec::P4();
  period.duration = 6 * kHour;
  CampaignEngine engine(small_config(period));
  const auto result = engine.run();
  for (const auto& record : result.go_ipfs->connections()) {
    EXPECT_EQ(record.opened % (30 * common::kSecond), 0) << "30 s poll grid";
    EXPECT_GE(record.closed, record.opened);
  }
}

}  // namespace
}  // namespace ipfs::scenario
