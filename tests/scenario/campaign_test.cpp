#include "scenario/campaign.hpp"

#include <gtest/gtest.h>

#include "analysis/connection_stats.hpp"
#include "testing/campaign.hpp"

namespace ipfs::scenario {
namespace {

using common::kDay;
using common::kHour;
using testing::run_campaign;
using testing::small_config;

TEST(Campaign, PeriodPresetsMatchTableOne) {
  const auto p0 = PeriodSpec::P0();
  EXPECT_EQ(p0.duration, 3 * kDay);
  EXPECT_EQ(p0.go_low_water, 600);
  EXPECT_EQ(p0.go_high_water, 900);
  EXPECT_EQ(p0.hydra_heads, 3);

  const auto p2 = PeriodSpec::P2();
  EXPECT_EQ(p2.go_low_water, 18000);
  EXPECT_EQ(p2.hydra_heads, 2);

  const auto p3 = PeriodSpec::P3();
  EXPECT_EQ(p3.go_ipfs_mode, dht::Mode::kClient);
  EXPECT_EQ(p3.hydra_heads, 0);

  EXPECT_EQ(PeriodSpec::P4().duration, 3 * kDay);
  EXPECT_EQ(PeriodSpec::Long14d().duration, 14 * kDay);
  EXPECT_EQ(PeriodSpec::table1().size(), 5u);
}

TEST(Campaign, FactoryRejectsInvalidConfigs) {
  // Every Table I preset passes validation.
  for (const auto& period : PeriodSpec::table1()) {
    EXPECT_EQ(CampaignEngine::validate(small_config(period)), std::nullopt)
        << period.name;
  }

  auto no_duration = small_config(PeriodSpec::P4());
  no_duration.period.duration = 0;
  EXPECT_FALSE(CampaignEngine::create(no_duration).has_value());

  auto inverted_watermarks = small_config(PeriodSpec::P4());
  inverted_watermarks.period.go_low_water = 900;
  inverted_watermarks.period.go_high_water = 600;
  EXPECT_FALSE(CampaignEngine::create(inverted_watermarks).has_value());

  auto no_vantage = small_config(PeriodSpec::P4());
  no_vantage.period.go_ipfs_present = false;
  no_vantage.period.hydra_heads = 0;
  EXPECT_FALSE(CampaignEngine::create(no_vantage).has_value());

  auto bad_scale = small_config(PeriodSpec::P4(), 0.02);
  bad_scale.population.scale = 0.0;
  EXPECT_FALSE(CampaignEngine::create(bad_scale).has_value());

  auto bad_visibility = small_config(PeriodSpec::P4());
  bad_visibility.vantage_visibility = 1.5;
  const auto error = CampaignEngine::create(bad_visibility);
  ASSERT_FALSE(error.has_value());
  EXPECT_FALSE(error.error().empty());
}

TEST(Campaign, ProducesDatasetsPerVantage) {
  auto period = PeriodSpec::P1();
  period.duration = 6 * kHour;  // shorten for the test
  const auto result = run_campaign(small_config(period));
  ASSERT_TRUE(result.go_ipfs.has_value());
  ASSERT_EQ(result.hydra_heads.size(), 2u);
  ASSERT_TRUE(result.hydra_union.has_value());
  EXPECT_GT(result.go_ipfs->peer_count(), 0u);
  EXPECT_GT(result.go_ipfs->connection_count(), 0u);
  EXPECT_GT(result.population_size, 0u);
  EXPECT_GT(result.events_executed, 1000u);
}

TEST(Campaign, DeterministicAcrossRuns) {
  auto period = PeriodSpec::P4();
  period.duration = 6 * kHour;
  const auto a = run_campaign(small_config(period));
  const auto b = run_campaign(small_config(period));
  EXPECT_EQ(a.go_ipfs->peer_count(), b.go_ipfs->peer_count());
  EXPECT_EQ(a.go_ipfs->connection_count(), b.go_ipfs->connection_count());
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(Campaign, StreamingSinkMatchesMonolithicResult) {
  // The acceptance bar for the sink redesign: a same-seed run through the
  // streaming API reproduces the compatibility adapter's counters exactly.
  auto period = PeriodSpec::P1();
  period.duration = 6 * kHour;

  const auto via_result_api = run_campaign(small_config(period));

  auto engine = CampaignEngine::create(small_config(period));
  ASSERT_TRUE(engine.has_value());
  measure::CollectingSink sink;
  engine->run(sink);

  const auto* go_ipfs = sink.find(measure::DatasetRole::kVantage);
  ASSERT_NE(go_ipfs, nullptr);
  EXPECT_EQ(go_ipfs->peer_count(), via_result_api.go_ipfs->peer_count());
  EXPECT_EQ(go_ipfs->connection_count(), via_result_api.go_ipfs->connection_count());

  std::size_t heads = 0;
  for (const auto& entry : sink.datasets()) {
    if (entry.role == measure::DatasetRole::kHydraHead) {
      EXPECT_EQ(entry.dataset.peer_count(),
                via_result_api.hydra_heads[heads].peer_count());
      EXPECT_EQ(entry.dataset.connection_count(),
                via_result_api.hydra_heads[heads].connection_count());
      ++heads;
    }
  }
  EXPECT_EQ(heads, via_result_api.hydra_heads.size());

  const auto* hydra_union = sink.find(measure::DatasetRole::kHydraUnion);
  ASSERT_NE(hydra_union, nullptr);
  EXPECT_EQ(hydra_union->peer_count(), via_result_api.hydra_union->peer_count());

  ASSERT_EQ(sink.crawls().size(), via_result_api.crawls.size());
  for (std::size_t i = 0; i < sink.crawls().size(); ++i) {
    EXPECT_EQ(sink.crawls()[i].at, via_result_api.crawls[i].at);
    EXPECT_EQ(sink.crawls()[i].reached_servers,
              via_result_api.crawls[i].reached_servers);
    EXPECT_EQ(sink.crawls()[i].learned_pids, via_result_api.crawls[i].learned_pids);
  }

  EXPECT_EQ(sink.summary().population_size, via_result_api.population_size);
  EXPECT_EQ(sink.summary().events_executed, via_result_api.events_executed);
}

TEST(Campaign, DifferentSeedsDiffer) {
  auto period = PeriodSpec::P4();
  period.duration = 6 * kHour;
  const auto a = run_campaign(small_config(period, 0.02, 1));
  const auto b = run_campaign(small_config(period, 0.02, 2));
  EXPECT_NE(a.go_ipfs->connection_count(), b.go_ipfs->connection_count());
}

TEST(Campaign, HydraUnionAtLeastEachHead) {
  auto period = PeriodSpec::P1();
  period.duration = 6 * kHour;
  const auto result = run_campaign(small_config(period));
  for (const auto& head : result.hydra_heads) {
    EXPECT_GE(result.hydra_union->peer_count(), head.peer_count());
  }
  // The union's connection records are the concatenation of the heads'.
  std::size_t head_conns = 0;
  for (const auto& head : result.hydra_heads) head_conns += head.connection_count();
  EXPECT_EQ(result.hydra_union->connection_count(), head_conns);
}

TEST(Campaign, LowWatermarksCauseTrimming) {
  auto period = PeriodSpec::P0();  // 600/900 at full scale
  period.duration = 6 * kHour;
  period.hydra_heads = 0;
  period.go_low_water = 12;  // scaled-down equivalents
  period.go_high_water = 18;
  const auto result = run_campaign(small_config(period));
  const auto reasons = analysis::compute_close_reasons(*result.go_ipfs);
  EXPECT_GT(reasons.local_trim, 0u);
}

TEST(Campaign, HighWatermarksAvoidOwnTrimming) {
  auto period = PeriodSpec::P4();  // 18k/20k: far above a 2 % population
  period.duration = 6 * kHour;
  const auto result = run_campaign(small_config(period));
  const auto reasons = analysis::compute_close_reasons(*result.go_ipfs);
  EXPECT_EQ(reasons.local_trim, 0u);
  EXPECT_GT(reasons.remote_trim + reasons.remote_close, 0u);
}

TEST(Campaign, ClientVantageSeesFewerPeersWithOutboundConns) {
  auto server_period = PeriodSpec::P4();
  server_period.duration = 6 * kHour;
  auto client_period = PeriodSpec::P3();
  client_period.duration = 6 * kHour;

  const auto server_result = run_campaign(small_config(server_period));
  const auto client_result = run_campaign(small_config(client_period));

  EXPECT_LT(client_result.go_ipfs->peer_count(), server_result.go_ipfs->peer_count());

  // P3's connections are outbound dials from the vantage.
  const auto stats = analysis::compute_connection_stats(*client_result.go_ipfs);
  EXPECT_GT(stats.direction.outbound_count, stats.direction.inbound_count);
}

TEST(Campaign, CrawlerSnapshotsCollected) {
  auto period = PeriodSpec::P4();
  period.duration = 18 * kHour;
  const auto result = run_campaign(small_config(period));
  EXPECT_GE(result.crawls.size(), 2u);
  for (const auto& crawl : result.crawls) {
    EXPECT_GT(crawl.reached_servers, 0u);
    EXPECT_GE(crawl.learned_pids, crawl.reached_servers);
  }
  const auto [low, high] = result.crawler_min_max();
  EXPECT_GT(low, 0u);
  EXPECT_GE(high, low);
}

TEST(Campaign, CrawlerDisabled) {
  auto period = PeriodSpec::P4();
  period.duration = 6 * kHour;
  auto config = small_config(period);
  config.enable_crawler = false;
  EXPECT_TRUE(run_campaign(config).crawls.empty());
}

TEST(Campaign, MetadataDynamicsToggle) {
  auto period = PeriodSpec::P4();
  period.duration = 12 * kHour;
  auto config = small_config(period, 0.05);
  config.enable_metadata_dynamics = false;
  const auto result = run_campaign(config);
  // Without dynamics no peer ever changes its agent string.
  for (const auto& peer : result.go_ipfs->peers()) {
    EXPECT_LE(peer.agent_history.size(), 1u);
  }
}

TEST(Campaign, RecorderQuantisesToPollGrid) {
  auto period = PeriodSpec::P4();
  period.duration = 6 * kHour;
  const auto result = run_campaign(small_config(period));
  for (const auto& record : result.go_ipfs->connections()) {
    EXPECT_EQ(record.opened % (30 * common::kSecond), 0) << "30 s poll grid";
    EXPECT_GE(record.closed, record.opened);
  }
}

}  // namespace
}  // namespace ipfs::scenario
