// `scenario::PhaseProgram` semantics: boundary placement, ramp
// continuity, burst square-wave edges, flash-crowd locality, and the
// tail-hold rule (DESIGN.md §14).  These are the pure-lookup properties
// the campaign engine's byte-identical sharding leans on — `rates_at`
// must answer identically for any caller at any time.
#include <gtest/gtest.h>

#include "common/sim_time.hpp"
#include "scenario/phases.hpp"

namespace ipfs::scenario {
namespace {

using common::kHour;
using common::kMinute;
using common::SimTime;

PhaseSpec hold_phase(double churn, common::SimDuration hold = kHour) {
  PhaseSpec phase;
  phase.mode = PhaseMode::kHold;
  phase.hold = hold;
  phase.churn_rate = churn;
  return phase;
}

// ---- boundaries and tail ----------------------------------------------------

TEST(PhaseProgram, BoundariesAreLeftClosedCumulativeHolds) {
  PhaseProgramSpec spec;
  spec.program = {hold_phase(2.0, kHour), hold_phase(3.0, 2 * kHour),
                  hold_phase(0.5, kHour)};
  const PhaseProgram program(spec);

  EXPECT_EQ(program.total_duration(), 4 * kHour);
  EXPECT_EQ(program.phase_start(0), 0);
  EXPECT_EQ(program.phase_start(1), kHour);
  EXPECT_EQ(program.phase_start(2), 3 * kHour);

  EXPECT_EQ(program.phase_index_at(0), 0u);
  EXPECT_EQ(program.phase_index_at(kHour - 1), 0u);
  EXPECT_EQ(program.phase_index_at(kHour), 1u);  // left-closed: boundary
  EXPECT_EQ(program.phase_index_at(3 * kHour - 1), 1u);
  EXPECT_EQ(program.phase_index_at(3 * kHour), 2u);
  // Past the program: clamps to the last phase.
  EXPECT_EQ(program.phase_index_at(40 * kHour), 2u);
}

TEST(PhaseProgram, TailHoldsTheLastEndpointForever) {
  PhaseSpec flash;
  flash.mode = PhaseMode::kFlashCrowd;
  flash.hold = kHour;
  flash.fetch_rate = 2.0;
  flash.spike = 8.0;
  flash.hot_key = 5;
  flash.hot_fraction = 0.9;
  PhaseProgramSpec spec;
  spec.program = {flash};
  const PhaseProgram program(spec);

  // Inside the phase: spiked and redirected.
  const PhaseRates active = program.rates_at(kHour / 2);
  EXPECT_DOUBLE_EQ(active.fetch, 16.0);  // fetch_rate * spike
  EXPECT_TRUE(active.flash);
  EXPECT_EQ(active.hot_key, 5u);
  EXPECT_DOUBLE_EQ(active.hot_fraction, 0.9);

  // At and past the end: the plain endpoint — no spike, no redirect.
  for (const SimTime at : {program.total_duration(),
                           program.total_duration() + 17 * kHour}) {
    const PhaseRates tail = program.rates_at(at);
    EXPECT_DOUBLE_EQ(tail.fetch, 2.0) << at;
    EXPECT_FALSE(tail.flash) << at;
    EXPECT_DOUBLE_EQ(tail.hot_fraction, 0.0) << at;
  }
}

// ---- ramp -------------------------------------------------------------------

TEST(PhaseProgram, RampInterpolatesFromThePreviousEndpoint) {
  PhaseSpec ramp;
  ramp.mode = PhaseMode::kRamp;
  ramp.hold = 2 * kHour;
  ramp.churn_rate = 3.0;
  ramp.fetch_rate = 5.0;
  ramp.population = 0.5;
  PhaseProgramSpec spec;
  spec.program = {hold_phase(1.0, kHour), ramp};
  const PhaseProgram program(spec);

  // Ramp start: continuous with the previous phase's endpoint (all 1.0).
  const PhaseRates at_start = program.rates_at(kHour);
  EXPECT_DOUBLE_EQ(at_start.churn, 1.0);
  EXPECT_DOUBLE_EQ(at_start.fetch, 1.0);
  EXPECT_DOUBLE_EQ(at_start.population, 1.0);

  // Midpoint: halfway to the target on every channel.
  const PhaseRates mid = program.rates_at(2 * kHour);
  EXPECT_DOUBLE_EQ(mid.churn, 2.0);
  EXPECT_DOUBLE_EQ(mid.fetch, 3.0);
  EXPECT_DOUBLE_EQ(mid.population, 0.75);

  // End: the target, and the tail holds it (continuity at the far edge).
  const PhaseRates end = program.rates_at(3 * kHour);
  EXPECT_DOUBLE_EQ(end.churn, 3.0);
  EXPECT_DOUBLE_EQ(end.fetch, 5.0);
  EXPECT_DOUBLE_EQ(end.population, 0.5);
}

TEST(PhaseProgram, FirstPhaseRampStartsFromTheNeutralBaseline) {
  PhaseSpec ramp;
  ramp.mode = PhaseMode::kRamp;
  ramp.hold = kHour;
  ramp.churn_rate = 9.0;
  PhaseProgramSpec spec;
  spec.program = {ramp};
  const PhaseProgram program(spec);
  EXPECT_DOUBLE_EQ(program.rates_at(0).churn, 1.0);
  EXPECT_DOUBLE_EQ(program.rates_at(kHour / 2).churn, 5.0);
}

TEST(PhaseProgram, RampIsMonotoneAndContinuousAcrossTheWindow) {
  PhaseSpec ramp;
  ramp.mode = PhaseMode::kRamp;
  ramp.hold = kHour;
  ramp.fetch_rate = 4.0;
  PhaseProgramSpec spec;
  spec.program = {hold_phase(1.0, kHour), ramp};
  const PhaseProgram program(spec);

  double previous = 0.0;
  for (SimTime at = kHour; at <= 2 * kHour; at += kMinute) {
    const double fetch = program.rates_at(at).fetch;
    EXPECT_GE(fetch, previous) << "at=" << at;
    // Continuity bound: one minute of a 3.0-wide, one-hour ramp moves the
    // multiplier by exactly 3/60 = 0.05.
    if (at > kHour) EXPECT_NEAR(fetch - previous, 0.05, 1e-12) << "at=" << at;
    previous = fetch;
  }
}

// ---- burst ------------------------------------------------------------------

TEST(PhaseProgram, BurstTogglesOnLeftClosedSwitchEdges) {
  PhaseSpec burst;
  burst.mode = PhaseMode::kBurst;
  burst.hold = 4 * kHour;
  burst.fetch_rate = 5.0;
  burst.switch_interval = kHour;
  PhaseProgramSpec spec;
  spec.program = {hold_phase(1.0, kHour), burst};
  const PhaseProgram program(spec);

  // Starts hi; each edge lands exactly on a switch_interval multiple past
  // the phase start (= slab boundaries when switch_interval is the slab).
  EXPECT_DOUBLE_EQ(program.rates_at(kHour).fetch, 5.0);           // hi edge
  EXPECT_DOUBLE_EQ(program.rates_at(2 * kHour - 1).fetch, 5.0);   // hi tail
  EXPECT_DOUBLE_EQ(program.rates_at(2 * kHour).fetch, 1.0);       // lo edge
  EXPECT_DOUBLE_EQ(program.rates_at(3 * kHour - 1).fetch, 1.0);   // lo tail
  EXPECT_DOUBLE_EQ(program.rates_at(3 * kHour).fetch, 5.0);       // hi again
  EXPECT_DOUBLE_EQ(program.rates_at(4 * kHour).fetch, 1.0);
}

TEST(PhaseProgram, BurstLowIsThePreviousEndpointNotNeutral) {
  PhaseSpec burst;
  burst.mode = PhaseMode::kBurst;
  burst.hold = 2 * kHour;
  burst.churn_rate = 6.0;
  burst.switch_interval = kHour;
  PhaseProgramSpec spec;
  spec.program = {hold_phase(2.0, kHour), burst};
  const PhaseProgram program(spec);
  EXPECT_DOUBLE_EQ(program.rates_at(kHour).churn, 6.0);      // hi = target
  EXPECT_DOUBLE_EQ(program.rates_at(2 * kHour).churn, 2.0);  // lo = previous
}

// ---- flash crowd ------------------------------------------------------------

TEST(PhaseProgram, FlashSpikeAndRedirectStayLocalToThePhase) {
  PhaseSpec flash;
  flash.mode = PhaseMode::kFlashCrowd;
  flash.hold = kHour;
  flash.spike = 4.0;
  flash.hot_key = 3;
  flash.hot_fraction = 1.0;
  PhaseSpec after;
  after.mode = PhaseMode::kRamp;
  after.hold = kHour;
  after.fetch_rate = 2.0;
  PhaseProgramSpec spec;
  spec.program = {flash, after};
  const PhaseProgram program(spec);

  // The following ramp starts from the flash phase's *endpoint* — the
  // plain fetch_rate (1.0), not the spiked 4.0 — and carries no redirect.
  const PhaseRates at_ramp_start = program.rates_at(kHour);
  EXPECT_DOUBLE_EQ(at_ramp_start.fetch, 1.0);
  EXPECT_FALSE(at_ramp_start.flash);
  EXPECT_DOUBLE_EQ(at_ramp_start.hot_fraction, 0.0);
}

// ---- purity -----------------------------------------------------------------

TEST(PhaseProgram, LookupIsPureAcrossRepeatedQueries) {
  PhaseSpec burst;
  burst.mode = PhaseMode::kBurst;
  burst.hold = 3 * kHour;
  burst.fetch_rate = 7.0;
  burst.switch_interval = 20 * kMinute;
  PhaseProgramSpec spec;
  spec.program = {hold_phase(1.5, kHour), burst};
  const PhaseProgram program(spec);

  // Out-of-order and repeated queries must agree — no hidden cursor.
  const SimTime probes[] = {4 * kHour, 0, 90 * kMinute, kHour, 90 * kMinute};
  for (const SimTime at : probes) {
    EXPECT_EQ(program.rates_at(at), program.rates_at(at)) << "at=" << at;
  }
  EXPECT_EQ(program.rates_at(90 * kMinute), program.rates_at(90 * kMinute));
}

// ---- spec validation --------------------------------------------------------

TEST(PhaseProgram, ValidateRejectsOutOfModeFields) {
  PhaseProgramSpec spec;
  spec.program = {hold_phase(1.0)};
  spec.program[0].spike = 2.0;  // flash_crowd-only field on a hold phase
  const auto error = PhaseProgramSpec::validate(spec);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("phases.program[0]"), std::string::npos);
  EXPECT_NE(error->find("flash_crowd"), std::string::npos);
}

TEST(PhaseProgram, ValidateRejectsNonFiniteRates) {
  PhaseProgramSpec spec;
  spec.program = {hold_phase(1.0)};
  spec.program[0].fetch_rate = std::numeric_limits<double>::infinity();
  const auto error = PhaseProgramSpec::validate(spec);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("fetch_rate must be > 0 and finite"),
            std::string::npos);
}

}  // namespace
}  // namespace ipfs::scenario
