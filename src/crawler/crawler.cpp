#include "crawler/crawler.hpp"

#include "common/stats.hpp"
#include "p2p/protocols.hpp"

namespace ipfs::crawler {

namespace proto = p2p::protocols;

Crawler::Crawler(sim::Simulation& simulation, net::Network& network, p2p::PeerId id,
                 p2p::Multiaddr address, CrawlerConfig config)
    : simulation_(simulation),
      network_(network),
      config_(config),
      swarm_(simulation, id, address,
             p2p::Swarm::Config{p2p::ConnManagerConfig::with_watermarks(0, 0),
                                /*trim_enabled=*/false}) {}

void Crawler::start() { network_.add_host(*this); }

void Crawler::stop() {
  if (periodic_task_ != sim::kInvalidTask) {
    simulation_.cancel(periodic_task_);
    periodic_task_ = sim::kInvalidTask;
  }
  network_.remove_host(swarm_.local_id());
}

void Crawler::crawl(const std::vector<p2p::PeerId>& bootstrap,
                    std::function<void(CrawlResult)> done) {
  if (crawling_) return;  // one crawl at a time
  crawling_ = true;
  current_ = CrawlResult{};
  current_.started = simulation_.now();
  done_ = std::move(done);
  frontier_.clear();
  enqueued_.clear();
  visiting_.clear();
  pending_requests_.clear();
  for (const p2p::PeerId& peer : bootstrap) enqueue(peer);
  visit_next();
}

void Crawler::crawl_periodically(const std::vector<p2p::PeerId>& bootstrap,
                                 common::SimDuration interval) {
  auto run = [this, bootstrap] {
    crawl(bootstrap, [this](CrawlResult result) { history_.push_back(result); });
  };
  run();
  periodic_task_ = simulation_.schedule_every(interval, run);
}

std::pair<std::size_t, std::size_t> Crawler::reached_min_max() const {
  common::MinMaxBand band;
  for (const CrawlResult& result : history_) {
    band.add(result.reached.size(), result.reached.size());
  }
  return band.band();
}

void Crawler::enqueue(const p2p::PeerId& peer) {
  if (peer == swarm_.local_id()) return;
  if (!enqueued_.insert(peer).second) return;
  current_.learned.insert(peer);
  frontier_.push_back(peer);
}

void Crawler::visit_next() {
  if (!crawling_) return;
  while (visiting_.size() < config_.max_in_flight && !frontier_.empty()) {
    const p2p::PeerId peer = frontier_.back();
    frontier_.pop_back();
    begin_visit(peer);
  }
  if (visiting_.empty() && frontier_.empty()) {
    // Crawl complete.
    crawling_ = false;
    current_.finished = simulation_.now();
    if (sink_ != nullptr) {
      sink_->on_crawl({current_.finished, current_.reached.size(),
                       current_.learned.size()});
    }
    auto done = std::move(done_);
    if (done) done(current_);
  }
}

void Crawler::begin_visit(const p2p::PeerId& peer) {
  visiting_.emplace(peer, Visit{});
  // A leftover connection from a previous crawl can be reused directly.
  if (network_.connected(swarm_.local_id(), peer)) {
    send_probes(peer);
    return;
  }
  network_.dial(swarm_.local_id(), peer, [this, peer](bool ok) {
    if (!crawling_) return;
    const auto it = visiting_.find(peer);
    if (it == visiting_.end()) return;
    if (!ok) {
      ++current_.dial_failures;
      visiting_.erase(it);
      visit_next();
      return;
    }
    send_probes(peer);
  });
}

void Crawler::send_probes(const p2p::PeerId& peer) {
  const auto it = visiting_.find(peer);
  if (it == visiting_.end()) return;
  // Dump the routing table with prefix-targeted probes.
  Visit& visit = it->second;
  for (std::size_t depth = 0; depth < config_.bucket_probes; ++depth) {
    const std::uint64_t request_id = next_request_id_++;
    pending_requests_[request_id] = peer;
    ++visit.outstanding;
    ++current_.queries_sent;
    dht::FindNodeRequest request;
    // Derive a probe target deterministically from the peer and depth so
    // successive probes land in different buckets of the target peer.
    request.target = p2p::PeerId::from_seed(
        common::mix64(peer.prefix64(), 0x9e3779b97f4a7c15ULL * (depth + 1)));
    request.request_id = request_id;
    net::Message message;
    message.protocol = std::string(proto::kKad);
    message.body = request;
    network_.send(swarm_.local_id(), peer, std::move(message));

    simulation_.schedule_after(config_.request_timeout, [this, request_id] {
      const auto pending_it = pending_requests_.find(request_id);
      if (pending_it == pending_requests_.end()) return;
      const p2p::PeerId timed_out_peer = pending_it->second;
      pending_requests_.erase(pending_it);
      const auto visit_it = visiting_.find(timed_out_peer);
      if (visit_it == visiting_.end()) return;
      if (--visit_it->second.outstanding == 0) finish_visit(timed_out_peer);
    });
  }
}

bool Crawler::accept_inbound(const p2p::PeerId& from) {
  (void)from;
  return false;
}

void Crawler::finish_visit(const p2p::PeerId& peer) {
  visiting_.erase(peer);
  network_.disconnect(swarm_.local_id(), peer);  // query done: close (§IV-A)
  visit_next();
}

void Crawler::handle_message(const p2p::PeerId& from, const net::Message& message) {
  if (message.protocol != proto::kKad) return;
  const auto* response = std::any_cast<dht::FindNodeResponse>(&message.body);
  if (response == nullptr) return;
  const auto pending_it = pending_requests_.find(response->request_id);
  if (pending_it == pending_requests_.end()) return;
  pending_requests_.erase(pending_it);

  current_.reached.insert(from);
  for (const p2p::PeerId& peer : response->closer_peers) enqueue(peer);

  const auto visit_it = visiting_.find(from);
  if (visit_it != visiting_.end() && --visit_it->second.outstanding == 0) {
    finish_visit(from);
  }
  visit_next();
}

}  // namespace ipfs::crawler
