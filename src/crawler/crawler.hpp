// Active DHT crawler — the measurement baseline the paper compares against
// (§II, §III-C: the Weizenbaum crawler and the Nebula crawler).
//
// The crawler walks the Kademlia graph: it dials every discovered DHT
// server, dumps the peer's routing table with prefix-targeted FIND_NODE
// queries, enqueues newly learned peers and disconnects.  Each crawl is a
// fresh snapshot that only contains *online DHT servers* — clients and
// departed peers are invisible to it, which is the crux of the
// passive-vs-active horizon comparison in Fig. 2.
#pragma once

#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dht/kad.hpp"
#include "measure/sink.hpp"
#include "net/network.hpp"
#include "p2p/swarm.hpp"
#include "sim/simulation.hpp"

namespace ipfs::crawler {

/// Outcome of one full crawl.
struct CrawlResult {
  common::SimTime started = 0;
  common::SimTime finished = 0;
  std::set<p2p::PeerId> reached;      ///< servers that answered
  std::set<p2p::PeerId> learned;      ///< every PID seen in any response
  std::size_t dial_failures = 0;
  std::size_t queries_sent = 0;
};

/// Configuration of the crawl strategy.
struct CrawlerConfig {
  /// Parallel peer visits (nebula uses on the order of hundreds; the
  /// simulated network is happy with less).
  std::size_t max_in_flight = 32;
  /// Routing-table dump depth: one FIND_NODE per flipped-prefix target.
  std::size_t bucket_probes = 16;
  common::SimDuration request_timeout = 10 * common::kSecond;
  std::string agent = "nebula-crawler/1.0.0";
};

/// The crawler node.  One instance performs repeated crawls (the paper's
/// reference crawler runs every 8 h).
class Crawler : public net::Host {
 public:
  Crawler(sim::Simulation& simulation, net::Network& network, p2p::PeerId id,
          p2p::Multiaddr address, CrawlerConfig config);

  void start();  ///< register with the network
  void stop();

  /// Crawl once, starting from the bootstrap peers; `done` receives the
  /// snapshot when the frontier is exhausted.
  void crawl(const std::vector<p2p::PeerId>& bootstrap,
             std::function<void(CrawlResult)> done);

  /// Crawl every `interval` (first immediately); results accumulate in
  /// `history()`.
  void crawl_periodically(const std::vector<p2p::PeerId>& bootstrap,
                          common::SimDuration interval);

  [[nodiscard]] const std::vector<CrawlResult>& history() const noexcept {
    return history_;
  }

  /// Publish every completed crawl (from `crawl` or `crawl_periodically`)
  /// as a `CrawlObservation` the moment its frontier drains.  Pass nullptr
  /// to detach.
  void set_sink(measure::MeasurementSink* sink) noexcept { sink_ = sink; }

  /// Smallest / largest number of reached servers across crawls — the
  /// min/max band the paper plots in Fig. 2.
  [[nodiscard]] std::pair<std::size_t, std::size_t> reached_min_max() const;

  // net::Host
  [[nodiscard]] p2p::Swarm& swarm() override { return swarm_; }
  /// Crawlers never serve anything: inbound dials are refused (peers learn
  /// the crawler's PID from its queries and do try to dial back).
  [[nodiscard]] bool accept_inbound(const p2p::PeerId& from) override;
  void handle_message(const p2p::PeerId& from, const net::Message& message) override;

 private:
  struct Visit {
    std::size_t outstanding = 0;  ///< FIND_NODE replies still expected
  };

  void visit_next();
  void begin_visit(const p2p::PeerId& peer);
  void send_probes(const p2p::PeerId& peer);
  void finish_visit(const p2p::PeerId& peer);
  void enqueue(const p2p::PeerId& peer);

  sim::Simulation& simulation_;
  net::Network& network_;
  CrawlerConfig config_;
  p2p::Swarm swarm_;

  // State of the crawl in progress.
  bool crawling_ = false;
  CrawlResult current_;
  std::function<void(CrawlResult)> done_;
  std::vector<p2p::PeerId> frontier_;
  std::unordered_set<p2p::PeerId> enqueued_;
  std::unordered_map<p2p::PeerId, Visit> visiting_;
  std::unordered_map<std::uint64_t, p2p::PeerId> pending_requests_;
  std::uint64_t next_request_id_ = 1;

  std::vector<CrawlResult> history_;
  sim::TaskId periodic_task_ = sim::kInvalidTask;
  measure::MeasurementSink* sink_ = nullptr;
};

}  // namespace ipfs::crawler
