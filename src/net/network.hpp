// Message-level simulated network ("protocol fidelity" mode, DESIGN.md §2).
//
// Hosts register under their PeerId; dials complete after a sampled RTT,
// successful dials create a mirrored pair of `Connection`s in both swarms,
// and `send()` delivers typed messages after one-way latency.  When either
// side closes (deliberately or via its connection manager), the counterpart
// observes the close with the mirrored reason — exactly the asymmetry the
// paper leans on when attributing short connections to *remote* trimming.
//
// Latency, loss, NAT reachability and scheduled disturbances all come from
// the pluggable `net::ConditionModel` (conditions.hpp, DESIGN.md §9); the
// default model reproduces the original flat `LatencyModel` fabric
// bit-for-bit.
#pragma once

#include <any>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "net/conditions.hpp"
#include "p2p/swarm.hpp"
#include "sim/simulation.hpp"

namespace ipfs::net {

/// Typed message envelope; `body` is a protocol-specific struct.
struct Message {
  std::string protocol;
  std::any body;
};

/// A network participant: owns a swarm and handles inbound messages.
///
/// Lifetime contract: a registered host must either outlive the `Network`
/// or deregister (`Network::remove_host`) before it is destroyed — the
/// network detaches its swarm taps through the virtual `swarm()` accessor
/// on both paths.  The shipped hosts (GoIpfsNode, HydraNode, Crawler)
/// deregister in their destructors via `stop()`.
class Host {
 public:
  virtual ~Host() = default;
  [[nodiscard]] virtual p2p::Swarm& swarm() = 0;
  /// Connection gating; return false to refuse an inbound dial.
  [[nodiscard]] virtual bool accept_inbound(const p2p::PeerId& from) {
    (void)from;
    return true;
  }
  virtual void handle_message(const p2p::PeerId& from, const Message& message) {
    (void)from;
    (void)message;
  }
};

/// The simulated transport fabric connecting registered hosts.
class Network {
 public:
  Network(sim::Simulation& simulation, common::Rng rng,
          ConditionModel conditions = ConditionModel{});
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register a host (keyed by its swarm's local id) and begin observing
  /// its swarm so closes propagate to counterparts.
  void add_host(Host& host);

  /// Remove a host; all of its connections close as kPeerOffline on the
  /// remote side (the node left the network).
  void remove_host(const p2p::PeerId& id);

  [[nodiscard]] bool online(const p2p::PeerId& id) const {
    return hosts_.contains(id);
  }
  [[nodiscard]] std::size_t host_count() const noexcept { return hosts_.size(); }

  /// Asynchronously dial `to` from `from`.  `on_done(success)` fires after
  /// one RTT.  Fails when either side is offline, the target refuses, the
  /// pair is already connected (one net-level connection per pair), or the
  /// condition model vetoes it (NAT class, outage/partition, dial loss).
  void dial(const p2p::PeerId& from, const p2p::PeerId& to,
            std::function<void(bool)> on_done = {});

  /// Deliver a message after one-way latency; dropped silently when the
  /// pair is not connected at send time, the condition model loses it
  /// (message loss, outage, partition), or the target is gone on arrival.
  void send(const p2p::PeerId& from, const p2p::PeerId& to, Message message);

  /// Close the pair's connection, initiated by `initiator`.
  void disconnect(const p2p::PeerId& initiator, const p2p::PeerId& other,
                  p2p::CloseReason reason = p2p::CloseReason::kLocalClose);

  [[nodiscard]] bool connected(const p2p::PeerId& a, const p2p::PeerId& b) const;

  [[nodiscard]] common::SimDuration latency(const p2p::PeerId& a,
                                            const p2p::PeerId& b);

  [[nodiscard]] const ConditionModel& conditions() const noexcept {
    return conditions_;
  }

 private:
  struct Link {
    p2p::ConnectionId conn_in_a = 0;  ///< connection id in the lower peer's swarm
    p2p::ConnectionId conn_in_b = 0;  ///< connection id in the higher peer's swarm
  };
  /// Key with deterministic order so (a,b) and (b,a) collide.
  using LinkKey = std::pair<p2p::PeerId, p2p::PeerId>;
  struct LinkKeyHash {
    std::size_t operator()(const LinkKey& key) const noexcept {
      return key.first.prefix64() ^ (key.second.prefix64() * 0x9e3779b97f4a7c15ULL);
    }
  };

  static LinkKey make_key(const p2p::PeerId& a, const p2p::PeerId& b) {
    return a < b ? LinkKey{a, b} : LinkKey{b, a};
  }

  /// Per-host observer adapter: tells the network *which* swarm closed a
  /// connection so the counterpart side can be mirrored.
  struct SwarmTap final : p2p::SwarmObserver {
    Network* network = nullptr;
    p2p::PeerId local;
    void on_connection_opened(const p2p::Connection& connection) override;
    void on_connection_closed(const p2p::Connection& connection) override;
  };

  void handle_local_close(const p2p::PeerId& local, const p2p::Connection& connection);

  sim::Simulation& simulation_;
  common::Rng rng_;
  ConditionModel conditions_;
  std::unordered_map<p2p::PeerId, Host*> hosts_;
  std::unordered_map<p2p::PeerId, std::unique_ptr<SwarmTap>> taps_;
  std::unordered_map<LinkKey, Link, LinkKeyHash> links_;
  /// True while the network itself is closing a counterpart connection;
  /// suppresses infinite mirror recursion.
  bool mirroring_ = false;
};

}  // namespace ipfs::net
