// IP address allocation for simulated peers.
//
// The paper's multiaddress-based size estimator (§V-A) hinges on how PIDs
// map to IP addresses: most peers have a unique public address, but NAT'd
// households, cloud tenants and hydra deployments share addresses, and
// rotating-PID peers produce many PIDs behind one address.  The allocator
// provides unique addresses and named shared pools for those cases.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.hpp"
#include "p2p/multiaddr.hpp"

namespace ipfs::net {

/// Deterministic allocator of distinct public-looking addresses.
class IpAllocator {
 public:
  explicit IpAllocator(common::Rng rng) : rng_(rng) {}

  /// A fresh globally-unique public IPv4 address.
  [[nodiscard]] p2p::IpAddress unique_v4();

  /// A fresh globally-unique public IPv6 address.
  [[nodiscard]] p2p::IpAddress unique_v6();

  /// The stable address of a named shared pool ("hydra-dc-3", "nat-17").
  /// First use allocates; later uses return the same address.
  [[nodiscard]] p2p::IpAddress shared_v4(const std::string& pool);

  [[nodiscard]] std::size_t allocated_count() const noexcept { return used_.size(); }

 private:
  common::Rng rng_;
  std::unordered_set<p2p::IpAddress> used_;
  std::unordered_map<std::string, p2p::IpAddress> pools_;
};

/// Convenience: default IPFS swarm listen address on the given IP.
[[nodiscard]] inline p2p::Multiaddr swarm_tcp_addr(p2p::IpAddress ip,
                                                   std::uint16_t port = 4001) {
  return p2p::Multiaddr{ip, p2p::Transport::kTcp, port};
}

}  // namespace ipfs::net
