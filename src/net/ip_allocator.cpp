#include "net/ip_allocator.hpp"

namespace ipfs::net {

namespace {

/// True for ranges we must not hand out as "public" addresses (so printed
/// multiaddresses look plausible and never collide with reserved space).
bool is_reserved_v4(std::uint32_t address) {
  const auto octet1 = (address >> 24) & 0xff;
  if (octet1 == 0 || octet1 == 10 || octet1 == 127 || octet1 >= 224) return true;
  if (octet1 == 172 && ((address >> 16) & 0xf0) == 16) return true;
  if (octet1 == 192 && ((address >> 16) & 0xff) == 168) return true;
  if (octet1 == 169 && ((address >> 16) & 0xff) == 254) return true;
  return false;
}

}  // namespace

p2p::IpAddress IpAllocator::unique_v4() {
  for (;;) {
    const auto candidate = static_cast<std::uint32_t>(rng_());
    if (is_reserved_v4(candidate)) continue;
    const auto ip = p2p::IpAddress::v4(candidate);
    if (used_.insert(ip).second) return ip;
  }
}

p2p::IpAddress IpAllocator::unique_v6() {
  for (;;) {
    // 2000::/3 global unicast space.
    const std::uint64_t hi = (rng_() & 0x1fffffffffffffffULL) | 0x2000000000000000ULL;
    const auto ip = p2p::IpAddress::v6(hi, rng_());
    if (used_.insert(ip).second) return ip;
  }
}

p2p::IpAddress IpAllocator::shared_v4(const std::string& pool) {
  const auto it = pools_.find(pool);
  if (it != pools_.end()) return it->second;
  const auto ip = unique_v4();
  pools_.emplace(pool, ip);
  return ip;
}

}  // namespace ipfs::net
