#include "net/conditions.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ipfs::net {

namespace {

// Fixed salts decorrelate the model's hash families from each other and
// from every other RNG-tree branch (DESIGN.md §5).
constexpr std::uint64_t kZoneSalt = 0x9e0a11;
constexpr std::uint64_t kNatSalt = 0x0a47ab;
constexpr std::uint64_t kDialSalt = 0xd1a1f4;
constexpr std::uint64_t kLossSalt = 0x105505;

/// Deterministic Bernoulli: hash as a uniform in [0, 1) against `p`.
bool hash_bernoulli(std::uint64_t hash, double p) noexcept {
  return static_cast<double>(hash) <
         p * static_cast<double>(std::numeric_limits<std::uint64_t>::max());
}

std::string at(std::string_view section, std::size_t index) {
  return "network." + std::string(section) + "[" + std::to_string(index) + "]";
}

bool valid_probability(double p) noexcept {
  return std::isfinite(p) && p >= 0.0 && p <= 1.0;
}

/// Intersection of two arcs [a, a+wa) and [b, b+wb) on a ring of size p.
bool ring_overlap(common::SimTime a, common::SimDuration wa, common::SimTime b,
                  common::SimDuration wb, common::SimDuration p) noexcept {
  const common::SimTime forward = ((b - a) % p + p) % p;   // a -> b distance
  const common::SimTime backward = ((a - b) % p + p) % p;  // b -> a distance
  return forward < wa || backward < wb;
}

/// Do any occurrences of two disturbance windows coincide?  One-shots are
/// compared as intervals, equal-period recurrences by phase, and a
/// one-shot against a recurrence by its post-start remainder.  Two
/// recurrences with *different* periods are treated as non-overlapping:
/// their coincidences are intentional composition (degrade factors
/// multiply, extra losses add), not a configuration mistake this check
/// could attribute to either window.
bool windows_overlap(const DisturbanceSpec& x, const DisturbanceSpec& y) noexcept {
  if (x.period <= 0 && y.period <= 0) {
    return x.from < y.until && y.from < x.until;
  }
  if (x.period > 0 && y.period > 0) {
    if (x.period != y.period) return false;
    return ring_overlap(x.from % x.period, x.until - x.from, y.from % x.period,
                        y.until - y.from, x.period);
  }
  const DisturbanceSpec& recurring = x.period > 0 ? x : y;
  const DisturbanceSpec& one_shot = x.period > 0 ? y : x;
  if (one_shot.until <= recurring.from) return false;  // over before it begins
  const common::SimTime start = std::max(one_shot.from, recurring.from);
  const common::SimDuration width = one_shot.until - start;
  if (width >= recurring.period) return true;  // spans a whole cycle
  return ring_overlap(start % recurring.period, width,
                      recurring.from % recurring.period,
                      recurring.until - recurring.from, recurring.period);
}

}  // namespace

common::SimDuration LatencyModel::one_way(const p2p::PeerId& a, const p2p::PeerId& b,
                                          common::Rng& jitter_rng) const {
  // Deterministic per-pair base latency: hash the unordered pair.
  const std::uint64_t pair_hash =
      common::mix64(a.prefix64() ^ b.prefix64(), a.prefix64() + b.prefix64());
  const auto span = static_cast<std::uint64_t>(max_one_way - min_one_way + 1);
  const auto base = min_one_way + static_cast<common::SimDuration>(pair_hash % span);
  const double jitter = 1.0 + jitter_fraction * (2.0 * jitter_rng.uniform() - 1.0);
  const auto with_jitter =
      static_cast<common::SimDuration>(static_cast<double>(base) * jitter);
  return std::max<common::SimDuration>(with_jitter, 1);
}

bool DisturbanceSpec::active_at(common::SimTime now) const noexcept {
  if (now < from) return false;
  if (period <= 0) return now < until;
  return (now - from) % period < until - from;
}

std::string_view to_string(DisturbanceSpec::Kind kind) noexcept {
  switch (kind) {
    case DisturbanceSpec::Kind::kOutage: return "outage";
    case DisturbanceSpec::Kind::kPartition: return "partition";
    case DisturbanceSpec::Kind::kDegrade: return "degrade";
  }
  return "degrade";
}

std::optional<DisturbanceSpec::Kind> disturbance_kind_from_string(
    std::string_view name) noexcept {
  if (name == "outage") return DisturbanceSpec::Kind::kOutage;
  if (name == "partition") return DisturbanceSpec::Kind::kPartition;
  if (name == "degrade") return DisturbanceSpec::Kind::kDegrade;
  return std::nullopt;
}

// ---- validation -------------------------------------------------------------

std::optional<std::string> ConditionSpec::validate(const ConditionSpec& spec) {
  const auto valid_range = [](common::SimDuration min, common::SimDuration max) {
    return min > 0 && max >= min;
  };
  if (!valid_range(spec.latency.min_one_way, spec.latency.max_one_way)) {
    return "network.latency: 0 < flat_min_ms <= flat_max_ms required";
  }
  if (!valid_probability(spec.latency.jitter_fraction)) {
    return "network.latency: jitter_fraction must be in [0, 1]";
  }

  const auto zone_index = [&spec](std::string_view name) -> std::size_t {
    for (std::size_t i = 0; i < spec.zones.size(); ++i) {
      if (spec.zones[i].name == name) return i;
    }
    return ConditionModel::kNoZone;
  };
  for (std::size_t i = 0; i < spec.zones.size(); ++i) {
    const ZoneSpec& zone = spec.zones[i];
    if (zone.name.empty()) return at("zones", i) + ": name must be non-empty";
    if (zone_index(zone.name) != i) {
      return at("zones", i) + ": duplicate zone name '" + zone.name + "'";
    }
    if (!(zone.weight > 0.0) || !std::isfinite(zone.weight)) {
      return at("zones", i) + ": weight must be > 0";
    }
    if (!valid_range(zone.intra_min, zone.intra_max)) {
      return at("zones", i) + ": 0 < intra_min_ms <= intra_max_ms required";
    }
  }

  if (!valid_range(spec.default_link.min_one_way, spec.default_link.max_one_way)) {
    return "network.default_link: 0 < min_ms <= max_ms required";
  }
  for (std::size_t i = 0; i < spec.links.size(); ++i) {
    const ZoneLinkSpec& link = spec.links[i];
    if (spec.zones.empty()) return at("links", i) + ": links require zones";
    if (zone_index(link.from) == ConditionModel::kNoZone) {
      return at("links", i) + ": unknown zone '" + link.from + "'";
    }
    if (zone_index(link.to) == ConditionModel::kNoZone) {
      return at("links", i) + ": unknown zone '" + link.to + "'";
    }
    if (link.from == link.to) {
      return at("links", i) + ": intra-zone latency belongs on the zone, not a link";
    }
    if (!valid_range(link.min_one_way, link.max_one_way)) {
      return at("links", i) + ": 0 < min_ms <= max_ms required";
    }
    for (std::size_t j = 0; j < i; ++j) {
      const bool same = spec.links[j].from == link.from && spec.links[j].to == link.to;
      const bool mirrored =
          spec.links[j].from == link.to && spec.links[j].to == link.from;
      if (same || (spec.symmetric && mirrored)) {
        return at("links", i) + ": duplicate link " + link.from + " <-> " + link.to;
      }
    }
  }

  if (!valid_probability(spec.loss.dial_failure)) {
    return "network.loss: dial_failure must be in [0, 1]";
  }
  if (!valid_probability(spec.loss.message_loss)) {
    return "network.loss: message_loss must be in [0, 1]";
  }

  const auto class_known = [&spec](std::string_view name) {
    return std::any_of(spec.nat.classes.begin(), spec.nat.classes.end(),
                       [&](const NatClassSpec& c) { return c.name == name; });
  };
  for (std::size_t i = 0; i < spec.nat.classes.size(); ++i) {
    const NatClassSpec& nat_class = spec.nat.classes[i];
    if (nat_class.name.empty()) {
      return at("nat.classes", i) + ": name must be non-empty";
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (spec.nat.classes[j].name == nat_class.name) {
        return at("nat.classes", i) + ": duplicate class name '" + nat_class.name +
               "'";
      }
    }
    if (!(nat_class.weight > 0.0) || !std::isfinite(nat_class.weight)) {
      return at("nat.classes", i) + ": weight must be > 0";
    }
  }
  for (std::size_t i = 0; i < spec.nat.categories.size(); ++i) {
    const auto& [category, class_name] = spec.nat.categories[i];
    if (spec.nat.classes.empty()) {
      return "network.nat.categories: mappings require nat.classes";
    }
    if (!class_known(class_name)) {
      return "network.nat.categories." + category + ": unknown class '" +
             class_name + "'";
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (spec.nat.categories[j].first == category) {
        return "network.nat.categories: duplicate category '" + category + "'";
      }
    }
  }

  for (std::size_t i = 0; i < spec.disturbances.size(); ++i) {
    const DisturbanceSpec& d = spec.disturbances[i];
    const std::string path = at("disturbances", i);
    if (d.from < 0) return path + ": from_ms must be >= 0";
    if (d.until <= d.from) return path + ": until_ms must be > from_ms";
    if (d.period < 0) return path + ": period_ms must be >= 0";
    if (d.period > 0 && d.until - d.from > d.period) {
      return path + ": window longer than period_ms";
    }
    switch (d.kind) {
      case DisturbanceSpec::Kind::kOutage:
        if (zone_index(d.zone) == ConditionModel::kNoZone) {
          return path + ": unknown zone '" + d.zone + "'";
        }
        break;
      case DisturbanceSpec::Kind::kPartition:
        if (d.zones.empty()) return path + ": partition needs at least one zone";
        for (const std::string& zone : d.zones) {
          if (zone_index(zone) == ConditionModel::kNoZone) {
            return path + ": unknown zone '" + zone + "'";
          }
        }
        for (std::size_t a = 0; a < d.zones.size(); ++a) {
          for (std::size_t b = 0; b < a; ++b) {
            if (d.zones[a] == d.zones[b]) {
              return path + ": duplicate zone '" + d.zones[a] + "'";
            }
          }
        }
        if (d.zones.size() >= spec.zones.size()) {
          return path + ": partition must leave at least one zone outside";
        }
        break;
      case DisturbanceSpec::Kind::kDegrade:
        if (!d.zone.empty() && zone_index(d.zone) == ConditionModel::kNoZone) {
          return path + ": unknown zone '" + d.zone + "'";
        }
        if (!(d.latency_factor >= 1.0) || !std::isfinite(d.latency_factor)) {
          return path + ": latency_factor must be >= 1";
        }
        if (!valid_probability(d.extra_loss)) {
          return path + ": extra_loss must be in [0, 1]";
        }
        break;
    }
    // Overlap rule: two windows of the same kind on the same target must
    // never fire simultaneously (see `windows_overlap` for how
    // recurrences are compared), or the schedule is ambiguous about which
    // one "owns" the window.
    for (std::size_t j = 0; j < i; ++j) {
      const DisturbanceSpec& other = spec.disturbances[j];
      if (other.kind != d.kind) continue;
      const bool shares_target = [&] {
        if (d.kind == DisturbanceSpec::Kind::kPartition) {
          return std::any_of(d.zones.begin(), d.zones.end(), [&](const auto& z) {
            return std::find(other.zones.begin(), other.zones.end(), z) !=
                   other.zones.end();
          });
        }
        return other.zone == d.zone;
      }();
      if (!shares_target) continue;
      if (windows_overlap(d, other)) {
        return path + ": window overlaps disturbances[" + std::to_string(j) +
               "] (same " + std::string(to_string(d.kind)) + " target)";
      }
    }
  }
  return std::nullopt;
}

// ---- ConditionModel ---------------------------------------------------------

ConditionModel::ConditionModel(ConditionSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
  double running = 0.0;
  for (const ZoneSpec& zone : spec_.zones) {
    running += zone.weight;
    zone_cumulative_.push_back(running);
  }
  running = 0.0;
  for (const NatClassSpec& nat_class : spec_.nat.classes) {
    running += nat_class.weight;
    nat_cumulative_.push_back(running);
  }

  const std::size_t n = spec_.zones.size();
  link_matrix_.assign(n * n, Range{});
  const auto zone_index = [this](std::string_view name) -> std::size_t {
    for (std::size_t i = 0; i < spec_.zones.size(); ++i) {
      if (spec_.zones[i].name == name) return i;
    }
    return kNoZone;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      link_matrix_[i * n + j] =
          i == j ? Range{spec_.zones[i].intra_min, spec_.zones[i].intra_max}
                 : Range{spec_.default_link.min_one_way,
                         spec_.default_link.max_one_way};
    }
  }
  for (const ZoneLinkSpec& link : spec_.links) {
    const std::size_t from = zone_index(link.from);
    const std::size_t to = zone_index(link.to);
    if (from == kNoZone || to == kNoZone) continue;  // validate() rejects these
    link_matrix_[from * n + to] = Range{link.min_one_way, link.max_one_way};
    if (spec_.symmetric) {
      link_matrix_[to * n + from] = Range{link.min_one_way, link.max_one_way};
    }
  }

  for (const DisturbanceSpec& d : spec_.disturbances) {
    CompiledDisturbance compiled;
    compiled.members.assign(n, false);
    if (d.kind == DisturbanceSpec::Kind::kPartition) {
      for (const std::string& zone : d.zones) {
        const std::size_t index = zone_index(zone);
        if (index != kNoZone) compiled.members[index] = true;
      }
    } else if (!d.zone.empty()) {
      compiled.zone = zone_index(d.zone);
    }
    if (d.kind != DisturbanceSpec::Kind::kDegrade) has_blocking_ = true;
    if (d.kind == DisturbanceSpec::Kind::kOutage) has_outage_ = true;
    if (d.kind == DisturbanceSpec::Kind::kPartition) has_partition_ = true;
    compiled_.push_back(std::move(compiled));
  }
}

std::size_t ConditionModel::weighted_pick(
    std::uint64_t hash, const std::vector<double>& cumulative) const noexcept {
  // Map the hash to [0, total) and walk the prefix sums; the last slot
  // absorbs floating-point slack.
  const double u = static_cast<double>(hash >> 11) * 0x1.0p-53;
  const double x = u * cumulative.back();
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    if (x < cumulative[i]) return i;
  }
  return cumulative.size() - 1;
}

std::size_t ConditionModel::zone_of(const p2p::PeerId& id) const noexcept {
  if (zone_cumulative_.empty()) return kNoZone;
  return weighted_pick(common::mix64(id.prefix64(), seed_ ^ kZoneSalt),
                       zone_cumulative_);
}

std::size_t ConditionModel::nat_class_of(const p2p::PeerId& id,
                                         std::string_view category) const noexcept {
  if (nat_cumulative_.empty()) return kNoClass;
  if (!category.empty()) {
    for (std::size_t i = 0; i < spec_.nat.categories.size(); ++i) {
      if (spec_.nat.categories[i].first != category) continue;
      for (std::size_t c = 0; c < spec_.nat.classes.size(); ++c) {
        if (spec_.nat.classes[c].name == spec_.nat.categories[i].second) return c;
      }
    }
  }
  return weighted_pick(common::mix64(id.prefix64(), seed_ ^ kNatSalt),
                       nat_cumulative_);
}

bool ConditionModel::accepts_inbound(const p2p::PeerId& id,
                                     std::string_view category) const noexcept {
  const std::size_t nat_class = nat_class_of(id, category);
  return nat_class == kNoClass || spec_.nat.classes[nat_class].accepts_inbound;
}

bool ConditionModel::path_open(const p2p::PeerId& a, const p2p::PeerId& b,
                               common::SimTime now) const noexcept {
  if (!has_blocking_) return true;
  const std::size_t zone_a = zone_of(a);
  const std::size_t zone_b = zone_of(b);
  for (std::size_t i = 0; i < spec_.disturbances.size(); ++i) {
    const DisturbanceSpec& d = spec_.disturbances[i];
    switch (d.kind) {
      case DisturbanceSpec::Kind::kOutage:
        if ((compiled_[i].zone == zone_a || compiled_[i].zone == zone_b) &&
            d.active_at(now)) {
          return false;
        }
        break;
      case DisturbanceSpec::Kind::kPartition:
        if (zone_a != kNoZone && zone_b != kNoZone &&
            compiled_[i].members[zone_a] != compiled_[i].members[zone_b] &&
            d.active_at(now)) {
          return false;
        }
        break;
      case DisturbanceSpec::Kind::kDegrade:
        break;
    }
  }
  return true;
}

bool ConditionModel::zone_down(const p2p::PeerId& id,
                               common::SimTime now) const noexcept {
  if (!has_outage_) return false;
  const std::size_t zone = zone_of(id);
  if (zone == kNoZone) return false;
  for (std::size_t i = 0; i < spec_.disturbances.size(); ++i) {
    if (spec_.disturbances[i].kind == DisturbanceSpec::Kind::kOutage &&
        compiled_[i].zone == zone && spec_.disturbances[i].active_at(now)) {
      return true;
    }
  }
  return false;
}

bool ConditionModel::zone_partitioned(const p2p::PeerId& id,
                                      common::SimTime now) const noexcept {
  if (!has_partition_) return false;
  const std::size_t zone = zone_of(id);
  if (zone == kNoZone) return false;
  for (std::size_t i = 0; i < spec_.disturbances.size(); ++i) {
    if (spec_.disturbances[i].kind == DisturbanceSpec::Kind::kPartition &&
        compiled_[i].members[zone] && spec_.disturbances[i].active_at(now)) {
      return true;
    }
  }
  return false;
}

double ConditionModel::degrade_factor(std::size_t zone_a, std::size_t zone_b,
                                      common::SimTime now) const noexcept {
  double factor = 1.0;
  for (std::size_t i = 0; i < spec_.disturbances.size(); ++i) {
    const DisturbanceSpec& d = spec_.disturbances[i];
    if (d.kind != DisturbanceSpec::Kind::kDegrade) continue;
    const std::size_t target = compiled_[i].zone;
    if (target != kNoZone && target != zone_a && target != zone_b) continue;
    if (d.active_at(now)) factor *= d.latency_factor;
  }
  return factor;
}

double ConditionModel::extra_loss(const p2p::PeerId& a, const p2p::PeerId& b,
                                  common::SimTime now) const noexcept {
  if (compiled_.empty()) return 0.0;
  double loss = 0.0;
  std::size_t zone_a = kNoZone;
  std::size_t zone_b = kNoZone;
  bool zones_resolved = false;
  for (std::size_t i = 0; i < spec_.disturbances.size(); ++i) {
    const DisturbanceSpec& d = spec_.disturbances[i];
    if (d.kind != DisturbanceSpec::Kind::kDegrade || d.extra_loss <= 0.0) continue;
    const std::size_t target = compiled_[i].zone;
    if (target != kNoZone) {
      if (!zones_resolved) {
        zone_a = zone_of(a);
        zone_b = zone_of(b);
        zones_resolved = true;
      }
      if (target != zone_a && target != zone_b) continue;
    }
    if (d.active_at(now)) loss += d.extra_loss;
  }
  return loss;
}

bool ConditionModel::dial_failure(const p2p::PeerId& from, const p2p::PeerId& to,
                                  common::SimTime now) const noexcept {
  const double p = spec_.loss.dial_failure + extra_loss(from, to, now);
  if (p <= 0.0) return false;
  const std::uint64_t hash =
      common::mix64(common::mix64(from.prefix64(), to.prefix64()),
                    common::mix64(seed_ ^ kDialSalt, static_cast<std::uint64_t>(now)));
  return hash_bernoulli(hash, std::min(p, 1.0));
}

bool ConditionModel::message_lost(const p2p::PeerId& from, const p2p::PeerId& to,
                                  common::SimTime now) const noexcept {
  const double p = spec_.loss.message_loss + extra_loss(from, to, now);
  if (p <= 0.0) return false;
  const std::uint64_t hash =
      common::mix64(common::mix64(from.prefix64(), to.prefix64()),
                    common::mix64(seed_ ^ kLossSalt, static_cast<std::uint64_t>(now)));
  return hash_bernoulli(hash, std::min(p, 1.0));
}

common::SimDuration ConditionModel::one_way(const p2p::PeerId& a, const p2p::PeerId& b,
                                            common::SimTime now,
                                            common::Rng& jitter_rng) const {
  if (spec_.zones.empty()) {
    // Flat fallback: the legacy fabric, bit-for-bit (no degrade lookup —
    // a zoneless degrade is necessarily global and still applies below).
    if (spec_.disturbances.empty()) {
      return spec_.latency.one_way(a, b, jitter_rng);
    }
    const common::SimDuration flat = spec_.latency.one_way(a, b, jitter_rng);
    const double factor = degrade_factor(kNoZone, kNoZone, now);
    return std::max<common::SimDuration>(
        static_cast<common::SimDuration>(static_cast<double>(flat) * factor), 1);
  }

  const std::size_t zone_a = zone_of(a);
  const std::size_t zone_b = zone_of(b);
  const Range& range = link_matrix_[zone_a * spec_.zones.size() + zone_b];
  const std::uint64_t pair_hash =
      spec_.symmetric
          ? common::mix64(a.prefix64() ^ b.prefix64(), a.prefix64() + b.prefix64())
          : common::mix64(a.prefix64(), b.prefix64());
  const auto span = static_cast<std::uint64_t>(range.max - range.min + 1);
  const auto base = range.min + static_cast<common::SimDuration>(pair_hash % span);
  const double factor = degrade_factor(zone_a, zone_b, now);
  const double jitter =
      1.0 + spec_.latency.jitter_fraction * (2.0 * jitter_rng.uniform() - 1.0);
  return std::max<common::SimDuration>(
      static_cast<common::SimDuration>(static_cast<double>(base) * factor * jitter),
      1);
}

}  // namespace ipfs::net
