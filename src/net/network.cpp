#include "net/network.hpp"

#include <utility>

namespace ipfs::net {

Network::Network(sim::Simulation& simulation, common::Rng rng,
                 ConditionModel conditions)
    : simulation_(simulation), rng_(rng), conditions_(std::move(conditions)) {}

Network::~Network() {
  for (auto& [id, host] : hosts_) {
    host->swarm().remove_observer(taps_[id].get());
  }
}

void Network::add_host(Host& host) {
  const p2p::PeerId id = host.swarm().local_id();
  hosts_[id] = &host;
  auto tap = std::make_unique<SwarmTap>();
  tap->network = this;
  tap->local = id;
  host.swarm().add_observer(tap.get());
  taps_[id] = std::move(tap);
}

void Network::remove_host(const p2p::PeerId& id) {
  const auto it = hosts_.find(id);
  if (it == hosts_.end()) return;
  Host* host = it->second;
  // Departing node: close all its connections; remotes see kPeerOffline.
  host->swarm().close_all(p2p::CloseReason::kPeerOffline);
  host->swarm().remove_observer(taps_[id].get());
  taps_.erase(id);
  hosts_.erase(it);
}

common::SimDuration Network::latency(const p2p::PeerId& a, const p2p::PeerId& b) {
  return conditions_.one_way(a, b, simulation_.now(), rng_);
}

void Network::dial(const p2p::PeerId& from, const p2p::PeerId& to,
                   std::function<void(bool)> on_done) {
  const auto rtt = 2 * latency(from, to);
  // The condition verdict is taken at attempt time (a dial launched into
  // an outage fails even if the window closes mid-flight); it is a pure
  // hash, so the jitter RNG stream is untouched by any veto.
  const bool admitted = conditions_.dial_allowed(from, to, simulation_.now());
  simulation_.schedule_after(rtt, [this, from, to, admitted,
                                   on_done = std::move(on_done)] {
    const auto from_it = hosts_.find(from);
    const auto to_it = hosts_.find(to);
    bool success = admitted && from_it != hosts_.end() && to_it != hosts_.end() &&
                   !connected(from, to) && to_it->second->accept_inbound(from);
    if (success) {
      p2p::Swarm& dialer = from_it->second->swarm();
      p2p::Swarm& listener = to_it->second->swarm();
      // Register the link before the swarms fire their open observers, so
      // protocol handlers (identify!) can already send() over it.
      Link& link = links_[make_key(from, to)];
      const auto out_id = dialer.open_connection(to, listener.listen_address(),
                                                 p2p::Direction::kOutbound);
      const auto in_id = listener.open_connection(from, dialer.listen_address(),
                                                  p2p::Direction::kInbound);
      if (from < to) {
        link.conn_in_a = out_id;
        link.conn_in_b = in_id;
      } else {
        link.conn_in_a = in_id;
        link.conn_in_b = out_id;
      }
    }
    if (on_done) on_done(success);
  });
}

bool Network::connected(const p2p::PeerId& a, const p2p::PeerId& b) const {
  return links_.contains(make_key(a, b));
}

void Network::send(const p2p::PeerId& from, const p2p::PeerId& to, Message message) {
  if (!connected(from, to)) return;
  // Loss verdict before the latency sample: lost messages consume no
  // jitter draw, and a default model never loses anything.  Outages and
  // partitions drop in-flight traffic too, not just new dials.
  if (!conditions_.path_open(from, to, simulation_.now()) ||
      conditions_.message_lost(from, to, simulation_.now())) {
    return;
  }
  simulation_.schedule_after(
      latency(from, to), [this, from, to, message = std::move(message)] {
        const auto it = hosts_.find(to);
        // Deliver only if the pair is still connected on arrival.
        if (it == hosts_.end() || !connected(from, to)) return;
        it->second->handle_message(from, message);
      });
}

void Network::disconnect(const p2p::PeerId& initiator, const p2p::PeerId& other,
                         p2p::CloseReason reason) {
  const auto it = hosts_.find(initiator);
  if (it == hosts_.end()) return;
  // Closing our side triggers the tap, which mirrors to the counterpart.
  it->second->swarm().close_peer(other, reason);
}

void Network::SwarmTap::on_connection_opened(const p2p::Connection& connection) {
  (void)connection;  // opens are driven by Network::dial; nothing to mirror
}

void Network::SwarmTap::on_connection_closed(const p2p::Connection& connection) {
  network->handle_local_close(local, connection);
}

void Network::handle_local_close(const p2p::PeerId& local,
                                 const p2p::Connection& connection) {
  if (mirroring_) return;  // this close *is* the mirror of a remote close
  const auto key = make_key(local, connection.remote);
  const auto it = links_.find(key);
  if (it == links_.end()) return;
  links_.erase(it);

  // The counterpart experiences the close with the remote-attributed reason.
  p2p::CloseReason mirrored;
  switch (connection.reason) {
    case p2p::CloseReason::kLocalTrim: mirrored = p2p::CloseReason::kRemoteTrim; break;
    case p2p::CloseReason::kLocalClose: mirrored = p2p::CloseReason::kRemoteClose; break;
    default: mirrored = connection.reason; break;
  }
  const p2p::PeerId remote = connection.remote;
  const auto delay = latency(local, remote);
  simulation_.schedule_after(delay, [this, remote, local, mirrored] {
    const auto host_it = hosts_.find(remote);
    if (host_it == hosts_.end()) return;
    mirroring_ = true;
    host_it->second->swarm().close_peer(local, mirrored);
    mirroring_ = false;
  });
}

}  // namespace ipfs::net
