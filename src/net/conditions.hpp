// Pluggable network-condition models (DESIGN.md §9).
//
// `ConditionSpec` is the declarative description of everything the
// simulated fabric does to traffic beyond "deliver it after a flat
// latency": geographic zones with an inter/intra-zone latency matrix,
// dial-failure and message-loss probabilities, NAT reachability classes
// that gate inbound dials, and scheduled disturbances (zone outages,
// partitions, degradation windows) driven by the simulation clock.
// `ConditionModel` is the compiled runtime form sampled by `net::Network`
// on every dial/send and consulted by `scenario::CampaignEngine` when a
// scenario file carries a `"network"` section (docs/SCENARIOS.md).
//
// Determinism contract (DESIGN.md §5): every gate is a *pure hash* of
// (endpoints, time, model seed) — no mutable RNG state — so verdicts are
// independent of call order, and parallel trial runners stay
// byte-identical at any worker count.  Latency jitter is the one sampled
// quantity; it draws from the caller-owned jitter RNG exactly like the
// flat `LatencyModel` always did, so a default-constructed model is
// bit-for-bit the pre-conditions fabric.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "p2p/peer_id.hpp"

namespace ipfs::net {

/// Pairwise latency model: deterministic base per pair plus jitter.  The
/// flat fallback used when a `ConditionSpec` declares no zones, and the
/// carrier of the jitter fraction shared by the zoned path.
struct LatencyModel {
  common::SimDuration min_one_way = 5 * common::kMillisecond;
  common::SimDuration max_one_way = 150 * common::kMillisecond;
  double jitter_fraction = 0.2;

  [[nodiscard]] common::SimDuration one_way(const p2p::PeerId& a, const p2p::PeerId& b,
                                            common::Rng& jitter_rng) const;

  [[nodiscard]] bool operator==(const LatencyModel&) const = default;
};

/// A geographic zone; nodes are assigned by weighted hash of their PeerId.
struct ZoneSpec {
  std::string name;
  double weight = 1.0;  ///< share of nodes landing here (normalised)
  /// One-way latency range between two nodes of this zone.
  common::SimDuration intra_min = 5 * common::kMillisecond;
  common::SimDuration intra_max = 30 * common::kMillisecond;

  [[nodiscard]] bool operator==(const ZoneSpec&) const = default;
};

/// One-way latency range for an inter-zone pair.  Pairs without an entry
/// use `ConditionSpec::default_link`.
struct ZoneLinkSpec {
  std::string from;
  std::string to;
  common::SimDuration min_one_way = 40 * common::kMillisecond;
  common::SimDuration max_one_way = 180 * common::kMillisecond;

  [[nodiscard]] bool operator==(const ZoneLinkSpec&) const = default;
};

/// Latency range applied to inter-zone pairs with no explicit link entry.
struct DefaultLinkSpec {
  common::SimDuration min_one_way = 40 * common::kMillisecond;
  common::SimDuration max_one_way = 180 * common::kMillisecond;

  [[nodiscard]] bool operator==(const DefaultLinkSpec&) const = default;
};

/// Probabilistic impairments applied to every dial / message.
struct LossSpec {
  double dial_failure = 0.0;  ///< P(dial attempt fails outright)
  double message_loss = 0.0;  ///< P(sent message silently dropped)

  [[nodiscard]] bool operator==(const LossSpec&) const = default;
};

/// A NAT reachability class; nodes are assigned by weighted hash unless a
/// category mapping overrides the class (campaign populations).
struct NatClassSpec {
  std::string name;
  double weight = 1.0;
  bool accepts_inbound = true;  ///< false: inbound dials to members fail

  [[nodiscard]] bool operator==(const NatClassSpec&) const = default;
};

struct NatSpec {
  std::vector<NatClassSpec> classes;  ///< empty: everyone is reachable
  /// Category name -> class name; keys are opaque strings to net/ (the
  /// scenario layer validates them against `scenario::Category` names).
  std::vector<std::pair<std::string, std::string>> categories;

  [[nodiscard]] bool operator==(const NatSpec&) const = default;
};

/// A scheduled disturbance window, driven by the simulation clock.  With
/// `period > 0` the window recurs every period (diurnal degradation);
/// otherwise it fires once.
struct DisturbanceSpec {
  enum class Kind : std::uint8_t {
    kOutage,     ///< `zone` is fully offline: dials fail, messages drop
    kPartition,  ///< traffic crossing the `zones` boundary fails
    kDegrade,    ///< latency x factor, extra loss, in `zone` ("" = global)
  };

  Kind kind = Kind::kDegrade;
  std::string zone;                ///< outage/degrade target ("" = global degrade)
  std::vector<std::string> zones;  ///< partition members (cut from the rest)
  common::SimTime from = 0;
  common::SimTime until = 0;
  common::SimDuration period = 0;  ///< 0 = one-shot; else recur every period
  double latency_factor = 1.0;     ///< degrade only, >= 1
  double extra_loss = 0.0;         ///< degrade only, added to both loss gates

  /// True when the window (including recurrences) covers `now`.
  [[nodiscard]] bool active_at(common::SimTime now) const noexcept;

  [[nodiscard]] bool operator==(const DisturbanceSpec&) const = default;
};

[[nodiscard]] std::string_view to_string(DisturbanceSpec::Kind kind) noexcept;
[[nodiscard]] std::optional<DisturbanceSpec::Kind> disturbance_kind_from_string(
    std::string_view name) noexcept;

/// The full declarative condition description — the `"network"` section of
/// a scenario file, or the argument of `TestbedBuilder::conditions`.
/// Default-constructed, it reproduces the legacy flat fabric exactly.
struct ConditionSpec {
  LatencyModel latency;  ///< flat fallback + the shared jitter fraction
  bool symmetric = true;  ///< zoned base latency identical in both directions

  std::vector<ZoneSpec> zones;  ///< empty: flat latency, no geography
  DefaultLinkSpec default_link;
  std::vector<ZoneLinkSpec> links;

  LossSpec loss;
  NatSpec nat;
  std::vector<DisturbanceSpec> disturbances;

  [[nodiscard]] bool operator==(const ConditionSpec&) const = default;

  /// Why this spec cannot run, or nullopt when valid.  Errors carry the
  /// scenario-file field path ("network.zones[1]: weight must be > 0").
  /// Rules: non-empty unique zone names, positive weights, 0 < min <= max
  /// latency ranges, links referencing declared zones exactly once per
  /// unordered pair, probabilities in [0, 1], NAT category mappings naming
  /// declared classes, disturbance windows with from < until (fitting the
  /// period when recurring), degrade factors >= 1, and no coinciding
  /// windows of the same kind on the same zone (one-shots compared as
  /// intervals, equal-period recurrences by phase, one-shot vs recurrence
  /// by its post-start remainder).  Recurrences with *different* periods
  /// are allowed: when they coincide at runtime they compose — degrade
  /// factors multiply, extra losses add, outage/partition effects OR.
  [[nodiscard]] static std::optional<std::string> validate(
      const ConditionSpec& spec);
};

/// The compiled runtime form of a `ConditionSpec`: O(1)-ish pure sampling
/// of zone assignment, reachability, loss gates and latency.  Cheap to
/// copy; thread-safe because it is immutable after construction.
class ConditionModel {
 public:
  static constexpr std::size_t kNoZone = static_cast<std::size_t>(-1);
  static constexpr std::size_t kNoClass = static_cast<std::size_t>(-1);

  /// `seed` decorrelates zone/NAT assignment and the loss gates from every
  /// other RNG-tree branch; the spec is assumed valid (callers run
  /// `ConditionSpec::validate` first — the scenario layer always does).
  explicit ConditionModel(ConditionSpec spec = {}, std::uint64_t seed = 0);

  [[nodiscard]] const ConditionSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] bool has_zones() const noexcept { return !spec_.zones.empty(); }

  /// Zone index of `id` (stable weighted hash), kNoZone without zones.
  [[nodiscard]] std::size_t zone_of(const p2p::PeerId& id) const noexcept;

  /// NAT class of `id`; a non-empty `category` with a spec mapping forces
  /// the mapped class, otherwise the weighted hash decides.  kNoClass
  /// (always reachable) without classes.
  [[nodiscard]] std::size_t nat_class_of(const p2p::PeerId& id,
                                         std::string_view category = {}) const noexcept;

  /// Whether inbound dials to `id` are admitted by its NAT class.
  [[nodiscard]] bool accepts_inbound(const p2p::PeerId& id,
                                     std::string_view category = {}) const noexcept;

  /// No outage or partition separates `a` and `b` at `now`.
  [[nodiscard]] bool path_open(const p2p::PeerId& a, const p2p::PeerId& b,
                               common::SimTime now) const noexcept;

  /// `id`'s zone is inside an active outage window (crawler reachability).
  [[nodiscard]] bool zone_down(const p2p::PeerId& id,
                               common::SimTime now) const noexcept;

  /// `id`'s zone is a member of an active partition — cut off from "the
  /// rest" of the network, where external observers (crawlers) sit.
  [[nodiscard]] bool zone_partitioned(const p2p::PeerId& id,
                                      common::SimTime now) const noexcept;

  /// Pure pseudo-random dial-failure gate for one (from, to, now) attempt:
  /// base dial_failure plus any active degrade extra_loss on the path.
  [[nodiscard]] bool dial_failure(const p2p::PeerId& from, const p2p::PeerId& to,
                                  common::SimTime now) const noexcept;

  /// Pure pseudo-random message-loss gate (base message_loss + degrades).
  [[nodiscard]] bool message_lost(const p2p::PeerId& from, const p2p::PeerId& to,
                                  common::SimTime now) const noexcept;

  /// The composite dial verdict `Network::dial` applies: target NAT class,
  /// outages/partitions, then the dial-failure gate.
  [[nodiscard]] bool dial_allowed(const p2p::PeerId& from, const p2p::PeerId& to,
                                  common::SimTime now,
                                  std::string_view to_category = {}) const noexcept {
    return accepts_inbound(to, to_category) && path_open(from, to, now) &&
           !dial_failure(from, to, now);
  }

  /// One-way latency at `now`.  Flat specs delegate to `LatencyModel`
  /// bit-for-bit; zoned specs draw the base from the pair's zone-matrix
  /// range (deterministic per pair), multiply by active degrade factors,
  /// then apply jitter.  Exactly one `jitter_rng` draw either way.
  [[nodiscard]] common::SimDuration one_way(const p2p::PeerId& a, const p2p::PeerId& b,
                                            common::SimTime now,
                                            common::Rng& jitter_rng) const;

 private:
  struct Range {
    common::SimDuration min = 0;
    common::SimDuration max = 0;
  };

  [[nodiscard]] double degrade_factor(std::size_t zone_a, std::size_t zone_b,
                                      common::SimTime now) const noexcept;
  [[nodiscard]] double extra_loss(const p2p::PeerId& a, const p2p::PeerId& b,
                                  common::SimTime now) const noexcept;
  [[nodiscard]] std::size_t weighted_pick(std::uint64_t hash,
                                          const std::vector<double>& cumulative)
      const noexcept;

  ConditionSpec spec_;
  std::uint64_t seed_ = 0;
  std::vector<double> zone_cumulative_;  ///< prefix sums of zone weights
  std::vector<double> nat_cumulative_;   ///< prefix sums of class weights
  std::vector<Range> link_matrix_;       ///< zones x zones latency ranges
  /// Disturbance zone targets resolved to indices (kNoZone = global); the
  /// partition membership is a per-disturbance zone bitset.
  struct CompiledDisturbance {
    std::size_t zone = kNoZone;
    std::vector<bool> members;  ///< partition membership by zone index
  };
  std::vector<CompiledDisturbance> compiled_;
  // Hot-path short circuits: degrade-only specs (the common case) skip
  // zone resolution and the disturbance scan in path_open / zone_down.
  bool has_blocking_ = false;   ///< any outage or partition declared
  bool has_outage_ = false;     ///< any outage declared
  bool has_partition_ = false;  ///< any partition declared
};

}  // namespace ipfs::net
