// Connection-churn statistics (paper §IV-A, Table II).
//
// Two aggregation types, exactly as the paper defines them:
//   "All"  — every connection contributes its duration (peers with many
//            connections contribute many values);
//   "Peer" — each peer contributes the *average* duration of its
//            connections (one value per peer).
#pragma once

#include <cstdint>
#include <string>

#include "measure/dataset.hpp"

namespace ipfs::analysis {

/// Sum / average / median triple as printed in Table II.
struct DurationStats {
  std::uint64_t count = 0;   ///< the table's "Sum" column (number of values)
  double average_s = 0.0;    ///< seconds
  double median_s = 0.0;     ///< seconds
};

/// Per-direction breakdown backing the §IV-A observation that inbound
/// connections outnumber and outlive outbound ones.
struct DirectionStats {
  std::uint64_t inbound_count = 0;
  std::uint64_t outbound_count = 0;
  double inbound_avg_s = 0.0;
  double outbound_avg_s = 0.0;
};

struct ConnectionStats {
  DurationStats all;    ///< Type "All"
  DurationStats peer;   ///< Type "Peer"
  DirectionStats direction;
};

/// Compute Table II's rows for one vantage dataset.
[[nodiscard]] ConnectionStats compute_connection_stats(const measure::Dataset& dataset);

/// Breakdown of close reasons (diagnoses *why* churn happens — the paper's
/// conclusion blames connection trimming rather than node churn).
struct CloseReasonBreakdown {
  std::uint64_t local_trim = 0;
  std::uint64_t remote_trim = 0;
  std::uint64_t remote_close = 0;
  std::uint64_t local_close = 0;
  std::uint64_t peer_offline = 0;
  std::uint64_t error = 0;
  std::uint64_t measurement_end = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return local_trim + remote_trim + remote_close + local_close + peer_offline +
           error + measurement_end;
  }
};

[[nodiscard]] CloseReasonBreakdown compute_close_reasons(const measure::Dataset& dataset);

}  // namespace ipfs::analysis
