#include "analysis/churn_stats.hpp"

#include <algorithm>

namespace ipfs::analysis {

using common::SimDuration;
using common::SimTime;

std::vector<SessionTrace> reconstruct_sessions(const measure::Dataset& dataset,
                                               SimDuration max_gap) {
  std::vector<SessionTrace> sessions;
  // A session whose last contact is within `max_gap` of trace end is
  // right-censored: had the trace run longer, the same peer might have
  // reconnected and extended it.  Hand-built datasets without a real
  // measurement window (end <= start) never censor.
  const bool has_window = dataset.measurement_end > dataset.measurement_start;
  auto finish = [&](SessionTrace session) {
    session.censored =
        has_window && session.end + max_gap > dataset.measurement_end;
    sessions.push_back(session);
  };
  const auto& by_peer = dataset.connections_by_peer();
  for (measure::PeerIndex peer = 0; peer < by_peer.size(); ++peer) {
    const std::vector<std::uint32_t>& conn_ids = by_peer[peer];
    if (conn_ids.empty()) continue;
    // Connections are recorded in close order; clustering needs open order.
    std::vector<std::pair<SimTime, SimTime>> intervals;
    intervals.reserve(conn_ids.size());
    for (const std::uint32_t id : conn_ids) {
      const measure::ConnRecord& record = dataset.connections()[id];
      intervals.emplace_back(record.opened, record.closed);
    }
    std::sort(intervals.begin(), intervals.end());

    SessionTrace current;
    current.peer = peer;
    current.begin = intervals.front().first;
    current.end = intervals.front().second;
    current.connections = 1;
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      const auto& [opened, closed] = intervals[i];
      if (opened - current.end <= max_gap) {
        current.end = std::max(current.end, closed);
        ++current.connections;
      } else {
        finish(current);
        current.begin = opened;
        current.end = closed;
        current.connections = 1;
      }
    }
    finish(current);
  }
  return sessions;
}

ChurnStats compute_churn_stats(const std::vector<SessionTrace>& sessions) {
  ChurnStats stats;
  stats.session_count = sessions.size();
  std::vector<double> lengths_s;
  lengths_s.reserve(sessions.size());
  // Sessions arrive grouped by peer (reconstruct_sessions' order).
  std::size_t run_length = 0;
  measure::PeerIndex run_peer = 0;
  auto close_run = [&] {
    if (run_length == 0) return;
    ++stats.peers;
    if (run_length >= 2) ++stats.multi_session_peers;
  };
  for (const SessionTrace& session : sessions) {
    if (session.censored) {
      ++stats.censored_sessions;
    } else {
      lengths_s.push_back(static_cast<double>(session.length()) / 1000.0);
    }
    if (run_length == 0 || session.peer != run_peer) {
      close_run();
      run_peer = session.peer;
      run_length = 0;
    }
    ++run_length;
  }
  close_run();
  stats.median_session_s = common::median(lengths_s);
  common::RunningStats moments;
  for (const double length : lengths_s) moments.add(length);
  stats.mean_session_s = moments.mean();
  stats.session_length_cdf = common::Cdf(std::move(lengths_s));
  return stats;
}

namespace {

/// ±1 session-boundary events sorted by time, joins before leaves at
/// equal times (a session [begin, end] covers both endpoints).
std::vector<std::pair<SimTime, int>> session_edges(
    const std::vector<SessionTrace>& sessions) {
  std::vector<std::pair<SimTime, int>> edges;
  edges.reserve(sessions.size() * 2);
  for (const SessionTrace& session : sessions) {
    edges.emplace_back(session.begin, +1);
    edges.emplace_back(session.end, -1);
  }
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first : a.second > b.second;
            });
  return edges;
}

/// Number of sessions covering each of `times` (must be non-decreasing):
/// one sweep over the edges instead of testing every session per query.
std::vector<std::uint64_t> active_at(
    const std::vector<std::pair<SimTime, int>>& edges,
    const std::vector<SimTime>& times) {
  std::vector<std::uint64_t> counts;
  counts.reserve(times.size());
  std::size_t next_edge = 0;
  std::int64_t active = 0;
  for (const SimTime at : times) {
    // Apply every +1 with time <= at and every -1 with time < at.
    while (next_edge < edges.size() &&
           (edges[next_edge].first < at ||
            (edges[next_edge].first == at && edges[next_edge].second > 0))) {
      active += edges[next_edge].second;
      ++next_edge;
    }
    counts.push_back(static_cast<std::uint64_t>(std::max<std::int64_t>(active, 0)));
  }
  return counts;
}

}  // namespace

std::vector<CountSample> availability_over_time(
    const std::vector<SessionTrace>& sessions, SimDuration step, SimTime start,
    SimTime end) {
  std::vector<CountSample> series;
  if (step <= 0 || end < start) return series;
  std::vector<SimTime> grid;
  for (SimTime at = start; at <= end; at += step) grid.push_back(at);
  const std::vector<std::uint64_t> counts = active_at(session_edges(sessions), grid);
  series.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    series.push_back({grid[i], counts[i]});
  }
  return series;
}

std::vector<ObservedVsTrueSample> observed_vs_true(
    const std::vector<SessionTrace>& sessions,
    const std::vector<measure::PopulationSample>& truth) {
  std::vector<ObservedVsTrueSample> series;
  series.reserve(truth.size());
  if (truth.empty()) return series;
  // Evaluate at each ground-truth timestamp exactly (no uniform-grid
  // assumption).  Engine samples arrive in time order; sort an index
  // permutation anyway so filtered or merged series stay correct.
  std::vector<std::size_t> order(truth.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&truth](std::size_t a, std::size_t b) {
    return truth[a].at < truth[b].at;
  });
  std::vector<SimTime> times;
  times.reserve(truth.size());
  for (const std::size_t i : order) times.push_back(truth[i].at);
  const std::vector<std::uint64_t> counts = active_at(session_edges(sessions), times);

  series.resize(truth.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    ObservedVsTrueSample& sample = series[order[rank]];
    sample.at = truth[order[rank]].at;
    sample.observed = static_cast<std::size_t>(counts[rank]);
    sample.true_online = truth[order[rank]].online;
    sample.true_total = truth[order[rank]].total;
  }
  return series;
}

}  // namespace ipfs::analysis
