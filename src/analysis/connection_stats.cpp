#include "analysis/connection_stats.hpp"

#include "common/stats.hpp"

namespace ipfs::analysis {

ConnectionStats compute_connection_stats(const measure::Dataset& dataset) {
  ConnectionStats stats;

  std::vector<double> all_durations;
  all_durations.reserve(dataset.connection_count());
  common::RunningStats all_running;
  common::RunningStats inbound;
  common::RunningStats outbound;

  // Per-peer accumulation: sum + count per peer index.
  std::vector<double> per_peer_sum(dataset.peer_count(), 0.0);
  std::vector<std::uint32_t> per_peer_count(dataset.peer_count(), 0);

  for (const measure::ConnRecord& record : dataset.connections()) {
    const double seconds = common::to_seconds(record.duration());
    all_durations.push_back(seconds);
    all_running.add(seconds);
    if (record.direction == p2p::Direction::kInbound) {
      inbound.add(seconds);
    } else {
      outbound.add(seconds);
    }
    per_peer_sum[record.peer] += seconds;
    ++per_peer_count[record.peer];
  }

  stats.all.count = all_running.count();
  stats.all.average_s = all_running.mean();
  stats.all.median_s = common::median(all_durations);

  std::vector<double> peer_averages;
  peer_averages.reserve(dataset.peer_count());
  common::RunningStats peer_running;
  for (std::size_t i = 0; i < dataset.peer_count(); ++i) {
    if (per_peer_count[i] == 0) continue;  // known PID but never connected
    const double average = per_peer_sum[i] / per_peer_count[i];
    peer_averages.push_back(average);
    peer_running.add(average);
  }
  stats.peer.count = peer_running.count();
  stats.peer.average_s = peer_running.mean();
  stats.peer.median_s = common::median(std::move(peer_averages));

  stats.direction.inbound_count = inbound.count();
  stats.direction.outbound_count = outbound.count();
  stats.direction.inbound_avg_s = inbound.mean();
  stats.direction.outbound_avg_s = outbound.mean();
  return stats;
}

CloseReasonBreakdown compute_close_reasons(const measure::Dataset& dataset) {
  CloseReasonBreakdown breakdown;
  for (const measure::ConnRecord& record : dataset.connections()) {
    switch (record.reason) {
      case p2p::CloseReason::kLocalTrim: ++breakdown.local_trim; break;
      case p2p::CloseReason::kRemoteTrim: ++breakdown.remote_trim; break;
      case p2p::CloseReason::kRemoteClose: ++breakdown.remote_close; break;
      case p2p::CloseReason::kLocalClose: ++breakdown.local_close; break;
      case p2p::CloseReason::kPeerOffline: ++breakdown.peer_offline; break;
      case p2p::CloseReason::kError: ++breakdown.error; break;
      case p2p::CloseReason::kMeasurementEnd: ++breakdown.measurement_end; break;
      case p2p::CloseReason::kNone: break;
    }
  }
  return breakdown;
}

}  // namespace ipfs::analysis
