// Meta-data analysis (paper §IV-B): agent-version and protocol histograms
// (Fig. 3, Fig. 4), go-ipfs version-change classification (Table III),
// role-flapping counts, and the anomaly fingerprints the paper highlights.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/version.hpp"
#include "measure/dataset.hpp"

namespace ipfs::analysis {

/// Fig. 3: occurrences of agent strings, with go-ipfs grouped by version
/// number (the paper plots "0.11.0", "0.8.0", … for go-ipfs and the full
/// string for other agents; PIDs with no identify result count as
/// "missing").
[[nodiscard]] common::CountedHistogram agent_histogram(const measure::Dataset& dataset);

/// Fig. 4: occurrences of announced protocols (each PID counts once per
/// protocol it ever announced).
[[nodiscard]] common::CountedHistogram protocol_histogram(
    const measure::Dataset& dataset);

/// Headline metadata counts quoted in §IV-B's prose.
struct MetadataSummary {
  std::uint64_t total_pids = 0;
  std::uint64_t distinct_agent_strings = 0;
  std::uint64_t distinct_protocols = 0;
  std::uint64_t go_ipfs_pids = 0;          ///< "50'254 claim to use go-ipfs"
  std::uint64_t go_ipfs_version_count = 0; ///< "263 different go-ipfs versions"
  std::uint64_t hydra_pids = 0;            ///< 1'028
  std::uint64_t crawler_pids = 0;          ///< 586
  std::uint64_t other_agent_pids = 0;      ///< 10'926
  std::uint64_t missing_agent_pids = 0;    ///< 3'059
  std::uint64_t bitswap_supporters = 0;    ///< 44'463
  std::uint64_t kad_supporters = 0;        ///< 18'845 (DHT servers)
};

[[nodiscard]] MetadataSummary summarize_metadata(const measure::Dataset& dataset);

/// Table III: go-ipfs agent-version changes.
struct VersionChangeCounts {
  std::uint64_t upgrades = 0;
  std::uint64_t downgrades = 0;
  std::uint64_t changes = 0;  ///< same version, different commit
  std::uint64_t main_to_main = 0;
  std::uint64_t main_to_dirty = 0;
  std::uint64_t dirty_to_main = 0;
  std::uint64_t dirty_to_dirty = 0;
  /// Changes from a non-go-ipfs agent to go-ipfs (the paper saw one).
  std::uint64_t into_go_ipfs = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return upgrades + downgrades + changes;
  }
};

[[nodiscard]] VersionChangeCounts count_version_changes(const measure::Dataset& dataset);

/// §IV-B role flapping: peers toggling a protocol announcement and the sum
/// of toggle events (kad: 2'481 peers / 68'396 changes; autonat: 3'603 /
/// 86'651).
struct FlappingStats {
  std::uint64_t peers = 0;
  std::uint64_t events = 0;
};

[[nodiscard]] FlappingStats protocol_flapping(const measure::Dataset& dataset,
                                              std::string_view protocol);

/// Anomaly fingerprints from §IV-B's curiosity hunt.
struct AnomalyReport {
  /// go-ipfs agents that never announced any /ipfs/bitswap variant —
  /// suspected disguised storm nodes (7'498 of v0.8.0 in the paper).
  std::uint64_t go_ipfs_without_bitswap = 0;
  /// …of which also announced /sbptp/1.0.0 (the storm protocol).
  std::uint64_t go_ipfs_with_sbptp = 0;
  /// PIDs announcing the storm agent string outright.
  std::uint64_t storm_agents = 0;
  /// Agents containing "ethereum" (the paper found a go-ethereum node).
  std::uint64_t ethereum_agents = 0;
};

[[nodiscard]] AnomalyReport find_anomalies(const measure::Dataset& dataset);

/// Group label used by `agent_histogram` for one agent string: go-ipfs
/// collapses to its version number, others keep name(/version); empty
/// becomes "missing".
[[nodiscard]] std::string agent_group_label(const std::string& agent);

}  // namespace ipfs::analysis
