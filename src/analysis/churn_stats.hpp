// Session-level churn statistics (DESIGN.md §10).
//
// The paper observes churn from a passive vantage: per-PID first/last-seen
// times and connection intervals.  This module reconstructs *sessions*
// from those intervals (gap-threshold clustering, the standard technique
// on passive traces), summarises their length distribution as a CDF,
// derives availability-over-time, and — unique to the simulator — compares
// the observed network size against the true one using the
// `measure::PopulationSample` ground truth a churned campaign publishes.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/timeseries.hpp"
#include "common/stats.hpp"
#include "measure/dataset.hpp"
#include "measure/sink.hpp"

namespace ipfs::analysis {

/// One reconstructed peer session: a maximal run of a peer's connections
/// in which consecutive contacts are separated by at most the clustering
/// gap.
struct SessionTrace {
  measure::PeerIndex peer = 0;
  common::SimTime begin = 0;
  common::SimTime end = 0;
  std::uint32_t connections = 0;
  /// Right-censored: the trace window closed before the clustering gap
  /// after the last contact elapsed, so the session may still have been
  /// open at trace end — `length()` is a lower bound, not a completed
  /// session length.  Only set when the dataset carries a real
  /// measurement window (`measurement_end > measurement_start`).
  bool censored = false;

  [[nodiscard]] common::SimDuration length() const noexcept { return end - begin; }
};

/// Cluster a dataset's connection records into per-peer sessions: two
/// consecutive connections of one peer belong to the same session when the
/// silence between them is <= `max_gap`.  Sessions are returned grouped by
/// peer, in time order within each peer.  A session whose last contact sits
/// within `max_gap` of the dataset's `measurement_end` is flagged
/// `censored` — the trace ended before its completion could be confirmed.
[[nodiscard]] std::vector<SessionTrace> reconstruct_sessions(
    const measure::Dataset& dataset,
    common::SimDuration max_gap = 30 * common::kMinute);

/// Aggregate session statistics for one vantage.  Length statistics
/// (`mean`, `median`, the CDF) cover *completed* sessions only; sessions
/// still open at trace end are counted in `censored_sessions` and excluded
/// — treating a truncated tail observation as a completed session biases
/// every length statistic downward.
struct ChurnStats {
  std::size_t session_count = 0;        ///< all sessions, censored included
  std::size_t censored_sessions = 0;    ///< sessions still open at trace end
  std::size_t peers = 0;                ///< peers with >= 1 session
  std::size_t multi_session_peers = 0;  ///< peers observed leaving *and* returning
  double mean_session_s = 0.0;
  double median_session_s = 0.0;
  /// Empirical *completed*-session-length CDF in seconds (Fig. 7-style,
  /// log-x ready via `common::Cdf::log_spaced_points`).
  common::Cdf session_length_cdf;

  [[nodiscard]] std::size_t completed_sessions() const noexcept {
    return session_count - censored_sessions;
  }
};

[[nodiscard]] ChurnStats compute_churn_stats(
    const std::vector<SessionTrace>& sessions);

/// Availability over time: the number of distinct peers inside a session
/// at each grid point `start, start+step, …, end`.
[[nodiscard]] std::vector<CountSample> availability_over_time(
    const std::vector<SessionTrace>& sessions, common::SimDuration step,
    common::SimTime start, common::SimTime end);

/// One aligned observed-vs-true point: how many peers the vantage believed
/// were present versus how many truly were.
struct ObservedVsTrueSample {
  common::SimTime at = 0;
  std::size_t observed = 0;     ///< peers inside a *reconstructed* session at `at`
  std::size_t true_online = 0;  ///< ground truth from the engine
  std::size_t true_total = 0;   ///< full population size
};

/// Evaluate the reconstructed sessions at each ground-truth sample time
/// (exactly — the truth series need not be uniformly spaced or sorted).
/// Observed <= true_online up to reconstruction error; observed <
/// true_total always, because a passive vantage never sees everyone.
[[nodiscard]] std::vector<ObservedVsTrueSample> observed_vs_true(
    const std::vector<SessionTrace>& sessions,
    const std::vector<measure::PopulationSample>& truth);

}  // namespace ipfs::analysis
