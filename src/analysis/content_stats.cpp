#include "analysis/content_stats.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace ipfs::analysis {

using common::SimDuration;
using common::SimTime;

ProvideStats compute_provide_stats(
    const std::vector<measure::ProvideSample>& provides) {
  ProvideStats stats;
  stats.provides = provides.size();
  std::unordered_set<std::uint32_t> keys;
  std::unordered_set<std::uint32_t> providers;
  for (const measure::ProvideSample& provide : provides) {
    if (provide.republish) ++stats.republishes;
    keys.insert(provide.key);
    providers.insert(provide.provider);
  }
  stats.distinct_keys = keys.size();
  stats.distinct_providers = providers.size();
  stats.provides_per_key =
      keys.empty() ? 0.0
                   : static_cast<double>(stats.provides) /
                         static_cast<double>(keys.size());
  return stats;
}

std::vector<CountSample> provider_availability_over_time(
    const std::vector<measure::ProvideSample>& provides, SimDuration ttl,
    SimDuration step, SimTime start, SimTime end) {
  std::vector<CountSample> series;
  if (ttl <= 0 || step <= 0 || end < start) return series;
  // ±1 record-lifetime edges: a provide at `t` is live on [t, t+ttl).
  std::vector<std::pair<SimTime, int>> edges;
  edges.reserve(provides.size() * 2);
  for (const measure::ProvideSample& provide : provides) {
    edges.emplace_back(provide.at, +1);
    edges.emplace_back(provide.at + ttl, -1);
  }
  std::sort(edges.begin(), edges.end());

  std::size_t next_edge = 0;
  std::int64_t live = 0;
  for (SimTime at = start; at <= end; at += step) {
    // Half-open lifetimes: expiry edges at exactly `at` apply first.
    while (next_edge < edges.size() && edges[next_edge].first <= at) {
      live += edges[next_edge].second;
      ++next_edge;
    }
    series.push_back({at, static_cast<std::uint64_t>(std::max<std::int64_t>(live, 0))});
  }
  return series;
}

std::vector<RecordCoverageSample> record_coverage(
    const std::vector<measure::ContentSample>& samples) {
  std::vector<RecordCoverageSample> series;
  series.reserve(samples.size());
  for (const measure::ContentSample& sample : samples) {
    RecordCoverageSample point;
    point.at = sample.at;
    point.vantage_records = sample.vantage_records;
    point.vantage_keys = sample.vantage_keys;
    point.true_records = sample.true_records;
    point.coverage = sample.true_records == 0
                         ? 0.0
                         : static_cast<double>(sample.vantage_records) /
                               static_cast<double>(sample.true_records);
    series.push_back(point);
  }
  return series;
}

FetchStats compute_fetch_stats(
    const std::vector<measure::FetchSample>& fetches) {
  FetchStats stats;
  stats.fetches = fetches.size();
  std::vector<double> latencies_ms;
  for (const measure::FetchSample& fetch : fetches) {
    if (fetch.found_provider) ++stats.found_provider;
    if (fetch.served) {
      ++stats.served;
      latencies_ms.push_back(static_cast<double>(fetch.latency));
    }
  }
  if (stats.fetches > 0) {
    stats.lookup_success_rate = static_cast<double>(stats.found_provider) /
                                static_cast<double>(stats.fetches);
    stats.fetch_success_rate =
        static_cast<double>(stats.served) / static_cast<double>(stats.fetches);
  }
  stats.median_latency_ms = common::median(latencies_ms);
  common::RunningStats moments;
  for (const double latency : latencies_ms) moments.add(latency);
  stats.mean_latency_ms = moments.mean();
  stats.latency_cdf = common::Cdf(std::move(latencies_ms));
  return stats;
}

}  // namespace ipfs::analysis
