// Connection-time peer classification (paper §V-B, Fig. 7, Table IV).
//
// Per PID, two features: the *maximum* connection duration and the *number*
// of connections with the vantage.  Four classes:
//   Heavy    — max duration > 24 h            (stable, constantly active)
//   Normal   — max duration > 2 h (≤ 24 h)
//   Light    — max duration ≤ 2 h, ≥ 3 connections (recurring/experimental)
//   One-time — max duration < 2 h, < 3 connections
// Heavy ∪ Normal DHT-clients form the paper's "core user base"; heavy
// DHT-servers its ≥10k core network bound.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "measure/dataset.hpp"

namespace ipfs::analysis {

enum class PeerClass : std::uint8_t { kHeavy = 0, kNormal = 1, kLight = 2, kOneTime = 3 };

[[nodiscard]] std::string_view to_string(PeerClass cls) noexcept;

/// Classification thresholds (the paper's Table IV definitions).
struct ClassifierConfig {
  common::SimDuration heavy_min_duration = 24 * common::kHour;
  common::SimDuration normal_min_duration = 2 * common::kHour;
  std::uint32_t light_min_connections = 3;
};

/// Per-peer classification features.
struct PeerFeatures {
  measure::PeerIndex peer = 0;
  common::SimDuration max_duration = 0;
  std::uint32_t connection_count = 0;
  bool dht_server = false;
};

/// Features for every PID with at least one recorded connection.
[[nodiscard]] std::vector<PeerFeatures> extract_features(
    const measure::Dataset& dataset);

[[nodiscard]] PeerClass classify(const PeerFeatures& features,
                                 const ClassifierConfig& config = {});

/// Table IV: per-class peer counts and DHT-server sub-counts.
struct ClassCounts {
  std::array<std::uint64_t, 4> peers{};        ///< indexed by PeerClass
  std::array<std::uint64_t, 4> dht_servers{};

  [[nodiscard]] std::uint64_t total_peers() const noexcept {
    return peers[0] + peers[1] + peers[2] + peers[3];
  }
};

[[nodiscard]] ClassCounts classify_peers(const measure::Dataset& dataset,
                                         const ClassifierConfig& config = {});

/// Fig. 7 inputs: CDFs over max connection duration (seconds, grouped into
/// 30 s bins as the paper does) and over connection counts, computed for a
/// peer subset selected by `server_filter` (-1 all, 0 clients, 1 servers).
struct ConnectionCdfs {
  common::Cdf max_duration_s;
  common::Cdf connection_count;
};

[[nodiscard]] ConnectionCdfs connection_cdfs(const measure::Dataset& dataset,
                                             int server_filter = -1);

}  // namespace ipfs::analysis
