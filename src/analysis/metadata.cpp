#include "analysis/metadata.hpp"

#include <set>

#include "p2p/protocols.hpp"

namespace ipfs::analysis {

namespace proto = p2p::protocols;

std::string agent_group_label(const std::string& agent) {
  if (agent.empty()) return "missing";
  const auto info = common::AgentInfo::parse(agent);
  if (info.is_go_ipfs() && info.version) {
    return info.version->to_string();  // paper groups go-ipfs by version number
  }
  return agent;
}

common::CountedHistogram agent_histogram(const measure::Dataset& dataset) {
  common::CountedHistogram histogram;
  for (const measure::PeerRecord& peer : dataset.peers()) {
    // A peer counts under its *first* observed agent (the paper's per-PID
    // tally; later changes feed Table III instead).
    const std::string& agent =
        peer.agent_history.empty() ? std::string() : peer.agent_history.front().agent;
    histogram.add(agent_group_label(agent));
  }
  return histogram;
}

common::CountedHistogram protocol_histogram(const measure::Dataset& dataset) {
  common::CountedHistogram histogram;
  for (const measure::PeerRecord& peer : dataset.peers()) {
    for (const std::string& protocol : peer.protocols_ever) histogram.add(protocol);
  }
  return histogram;
}

MetadataSummary summarize_metadata(const measure::Dataset& dataset) {
  MetadataSummary summary;
  summary.total_pids = dataset.peer_count();

  std::set<std::string> agent_strings;
  std::set<std::string> go_ipfs_versions;
  std::set<std::string> protocols;

  for (const measure::PeerRecord& peer : dataset.peers()) {
    for (const std::string& protocol : peer.protocols_ever) protocols.insert(protocol);
    bool counted_bitswap = false;
    for (const std::string& protocol : peer.protocols_ever) {
      if (!counted_bitswap && proto::is_bitswap(protocol)) {
        ++summary.bitswap_supporters;
        counted_bitswap = true;
      }
    }
    if (peer.protocols_ever.contains(std::string(proto::kKad))) {
      ++summary.kad_supporters;
    }

    if (peer.agent_history.empty()) {
      ++summary.missing_agent_pids;
      continue;
    }
    for (const measure::AgentEvent& event : peer.agent_history) {
      agent_strings.insert(event.agent);
      const auto info = common::AgentInfo::parse(event.agent);
      if (info.is_go_ipfs()) go_ipfs_versions.insert(event.agent);
    }
    const auto info = common::AgentInfo::parse(peer.agent_history.front().agent);
    if (info.is_go_ipfs()) {
      ++summary.go_ipfs_pids;
    } else if (info.name == "hydra-booster") {
      ++summary.hydra_pids;
    } else if (info.name.find("crawler") != std::string::npos) {
      ++summary.crawler_pids;
    } else {
      ++summary.other_agent_pids;
    }
  }
  summary.distinct_agent_strings = agent_strings.size();
  summary.distinct_protocols = protocols.size();
  summary.go_ipfs_version_count = go_ipfs_versions.size();
  return summary;
}

VersionChangeCounts count_version_changes(const measure::Dataset& dataset) {
  VersionChangeCounts counts;
  for (const measure::PeerRecord& peer : dataset.peers()) {
    for (std::size_t i = 1; i < peer.agent_history.size(); ++i) {
      const auto before = common::AgentInfo::parse(peer.agent_history[i - 1].agent);
      const auto after = common::AgentInfo::parse(peer.agent_history[i].agent);
      if (!before.is_go_ipfs() && after.is_go_ipfs()) {
        ++counts.into_go_ipfs;
        continue;
      }
      const auto kind = common::classify_version_change(before, after);
      if (kind == common::VersionChangeKind::kNone) continue;
      switch (kind) {
        case common::VersionChangeKind::kUpgrade: ++counts.upgrades; break;
        case common::VersionChangeKind::kDowngrade: ++counts.downgrades; break;
        case common::VersionChangeKind::kChange: ++counts.changes; break;
        case common::VersionChangeKind::kNone: break;
      }
      switch (common::classify_dirty_transition(before, after)) {
        case common::DirtyTransition::kMainToMain: ++counts.main_to_main; break;
        case common::DirtyTransition::kMainToDirty: ++counts.main_to_dirty; break;
        case common::DirtyTransition::kDirtyToMain: ++counts.dirty_to_main; break;
        case common::DirtyTransition::kDirtyToDirty: ++counts.dirty_to_dirty; break;
      }
    }
  }
  return counts;
}

FlappingStats protocol_flapping(const measure::Dataset& dataset,
                                std::string_view protocol) {
  FlappingStats stats;
  for (const measure::PeerRecord& peer : dataset.peers()) {
    std::uint64_t toggles = 0;
    for (const measure::ProtocolEvent& event : peer.protocol_events) {
      if (event.protocol == protocol) ++toggles;
    }
    // The first "added" event is the initial announcement, not a change.
    if (toggles > 1) {
      ++stats.peers;
      stats.events += toggles - 1;
    }
  }
  return stats;
}

AnomalyReport find_anomalies(const measure::Dataset& dataset) {
  AnomalyReport report;
  for (const measure::PeerRecord& peer : dataset.peers()) {
    const std::string& agent = peer.current_agent();
    if (agent.empty()) continue;
    const auto info = common::AgentInfo::parse(agent);
    if (info.name == "storm") ++report.storm_agents;
    if (info.name.find("ethereum") != std::string::npos) ++report.ethereum_agents;
    if (info.is_go_ipfs()) {
      bool has_bitswap = false;
      for (const std::string& protocol : peer.protocols_ever) {
        if (proto::is_bitswap(protocol)) {
          has_bitswap = true;
          break;
        }
      }
      if (!has_bitswap && !peer.protocols_ever.empty()) {
        ++report.go_ipfs_without_bitswap;
        if (peer.protocols_ever.contains(std::string(proto::kSbptp))) {
          ++report.go_ipfs_with_sbptp;
        }
      }
    }
  }
  return report;
}

}  // namespace ipfs::analysis
