#include "analysis/size_estimation.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace ipfs::analysis {

namespace {

/// Disjoint-set forest with path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void merge(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[b] = a;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

MultiaddrGrouping group_by_multiaddr(const measure::Dataset& dataset) {
  MultiaddrGrouping result;
  result.total_pids = dataset.peer_count();

  // Collect connected peers and their IPs.
  std::vector<std::size_t> connected;  // peer indices with >= 1 connected IP
  connected.reserve(dataset.peer_count());
  for (std::size_t i = 0; i < dataset.peer_count(); ++i) {
    if (!dataset.record(static_cast<std::uint32_t>(i)).connected_ips.empty()) {
      connected.push_back(i);
    }
  }
  result.connected_pids = connected.size();

  // Union peers that share an IP: remember the first peer seen per IP.
  UnionFind forest(connected.size());
  std::unordered_map<p2p::IpAddress, std::size_t> ip_owner;  // ip -> slot
  std::unordered_map<p2p::IpAddress, std::uint64_t> pids_per_ip;
  for (std::size_t slot = 0; slot < connected.size(); ++slot) {
    const auto& record = dataset.record(static_cast<std::uint32_t>(connected[slot]));
    for (const p2p::IpAddress& ip : record.connected_ips) {
      ++pids_per_ip[ip];
      const auto [it, inserted] = ip_owner.emplace(ip, slot);
      if (!inserted) forest.merge(it->second, slot);
    }
  }
  result.distinct_ips = ip_owner.size();

  // Group sizes.
  std::unordered_map<std::size_t, std::uint64_t> group_size;
  for (std::size_t slot = 0; slot < connected.size(); ++slot) {
    ++group_size[forest.find(slot)];
  }
  result.groups = group_size.size();
  result.group_sizes.reserve(group_size.size());
  for (const auto& [root, size] : group_size) {
    result.group_sizes.push_back(size);
    if (size == 1) ++result.singleton_groups;
    result.largest_group = std::max(result.largest_group, size);
  }
  std::sort(result.group_sizes.begin(), result.group_sizes.end(),
            std::greater<std::uint64_t>());

  // PIDs "with unique IP addresses": exactly one connected IP, hosting only
  // them.  Dual-homed PIDs are singleton *groups* but not unique-IP PIDs,
  // which is why the paper's 40'193 sits below its 44'301 singletons.
  for (const std::size_t peer_index : connected) {
    const auto& record = dataset.record(static_cast<std::uint32_t>(peer_index));
    if (record.connected_ips.size() != 1) continue;
    if (pids_per_ip[*record.connected_ips.begin()] == 1) ++result.unique_ip_pids;
  }
  return result;
}

NetworkSizeReport estimate_network_size(const measure::Dataset& dataset) {
  NetworkSizeReport report;
  const MultiaddrGrouping grouping = group_by_multiaddr(dataset);
  const ClassCounts classes = classify_peers(dataset);

  report.observed_pids = grouping.total_pids;
  report.estimated_peers_by_ip = grouping.groups;
  const auto heavy = static_cast<std::size_t>(PeerClass::kHeavy);
  report.core_network_lower_bound = classes.peers[heavy];
  report.heavy_dht_servers = classes.dht_servers[heavy];
  report.core_user_base = classes.peers[heavy] - classes.dht_servers[heavy];
  report.pids_per_ip_group =
      grouping.groups == 0
          ? 0.0
          : static_cast<double>(grouping.connected_pids) /
                static_cast<double>(grouping.groups);
  return report;
}

}  // namespace ipfs::analysis
