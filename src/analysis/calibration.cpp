#include "analysis/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "common/json.hpp"
#include "scenario/campaign.hpp"

namespace ipfs::analysis::calibrate {

using common::JsonValue;
using common::JsonWriter;
using common::SimDuration;
using common::SimTime;
using scenario::SessionDistribution;

namespace {

// ---- small math helpers ----------------------------------------------------

/// Standard-normal CDF via erfc (stable in both tails).
double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_pdf(double x) {
  static const double kInvSqrt2Pi = 1.0 / std::sqrt(2.0 * std::acos(-1.0));
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

/// Inverse Mills ratio phi(a) / (1 - Phi(a)), with the asymptotic
/// expansion in the far right tail where both terms underflow.
double inverse_mills(double a) {
  if (a > 6.0) return a + 1.0 / a;
  const double tail = 0.5 * std::erfc(a / std::sqrt(2.0));
  if (tail <= 0.0) return a + 1.0 / std::max(a, 1.0);
  return normal_pdf(a) / tail;
}

/// Uncensored values, clamped to the 1 ms trace resolution and sorted.
std::vector<double> sorted_uncensored(const std::vector<Observation>& sample) {
  std::vector<double> values;
  values.reserve(sample.size());
  for (const Observation& obs : sample) {
    if (!obs.censored) values.push_back(std::max(obs.value_ms, 1.0));
  }
  std::sort(values.begin(), values.end());
  return values;
}

FitResult failed_fit(SessionDistribution::Kind kind, std::string note) {
  FitResult fit;
  fit.dist.kind = kind;
  fit.ok = false;
  fit.note = std::move(note);
  return fit;
}

/// Shared tail of every fitter: attach goodness-of-fit statistics and
/// sanity-check the parameters against the analytic oracles.
FitResult finish_fit(SessionDistribution dist,
                     const std::vector<Observation>& sample) {
  const double mean = dist.analytic_mean();
  const double median = dist.analytic_median();
  if (!std::isfinite(mean) || mean <= 0.0 || !std::isfinite(median) ||
      median <= 0.0) {
    return failed_fit(dist.kind, "degenerate parameters (analytic oracle)");
  }
  FitResult fit;
  fit.dist = dist;
  fit.ks = ks_statistic(sample, dist);
  fit.ad = ad_statistic(sample, dist);
  fit.ok = true;
  return fit;
}

std::string_view family_name(SessionDistribution::Kind kind) {
  return scenario::to_string(kind);
}

// ---- trace parsing helpers (strict, field-path errors) ---------------------

using ParseError = std::optional<std::string>;

std::string join(const std::string& path, std::string_view key) {
  return path.empty() ? std::string(key) : path + "." + std::string(key);
}

std::string indexed(const std::string& path, std::string_view key,
                    std::size_t index) {
  return join(path, key) + "[" + std::to_string(index) + "]";
}

ParseError check_keys(const JsonValue& value, const std::string& path,
                      std::initializer_list<std::string_view> allowed) {
  for (const JsonValue::Member& member : value.as_object()) {
    bool known = false;
    for (const std::string_view key : allowed) {
      if (member.first == key) {
        known = true;
        break;
      }
    }
    if (!known) return path + ": unknown field '" + member.first + "'";
  }
  return std::nullopt;
}

ParseError require_object(const JsonValue& value, const std::string& path) {
  if (value.is_object()) return std::nullopt;
  return path + ": expected an object, got " + std::string(value.type_name());
}

ParseError require_string(const JsonValue& object, std::string_view key,
                          const std::string& path, std::string& out) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return join(path, key) + ": missing required field";
  if (!value->is_string()) return join(path, key) + ": expected a string";
  out = value->as_string();
  return std::nullopt;
}

ParseError require_time(const JsonValue& object, std::string_view key,
                        const std::string& path, SimTime& out) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return join(path, key) + ": missing required field";
  const auto integral = value->is_number() ? value->as_int64() : std::nullopt;
  if (!integral) return join(path, key) + ": expected an integer";
  out = *integral;
  return std::nullopt;
}

ParseError optional_bool(const JsonValue& object, std::string_view key,
                         const std::string& path, bool& out) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return std::nullopt;
  if (!value->is_bool()) return join(path, key) + ": expected true or false";
  out = value->as_bool();
  return std::nullopt;
}

ParseError require_array(const JsonValue& object, std::string_view key,
                         const std::string& path, const JsonValue*& out) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return join(path, key) + ": missing required field";
  if (!value->is_array()) return join(path, key) + ": expected an array";
  out = value;
  return std::nullopt;
}

ParseError parse_peer(const JsonValue& value, const std::string& path,
                      SimTime& first_seen, SimTime& last_seen,
                      bool& ever_dht_server,
                      std::vector<measure::AgentEvent>& agents) {
  if (auto error = require_object(value, path)) return error;
  if (auto error = check_keys(value, path,
                              {"pid", "first_seen_ms", "last_seen_ms",
                               "ever_dht_server", "agents", "protocols_ever",
                               "connected_ips"})) {
    return error;
  }
  std::string pid;
  if (auto error = require_string(value, "pid", path, pid)) return error;
  if (auto error = require_time(value, "first_seen_ms", path, first_seen)) {
    return error;
  }
  if (auto error = require_time(value, "last_seen_ms", path, last_seen)) {
    return error;
  }
  if (last_seen < first_seen) {
    return join(path, "last_seen_ms") + ": must be >= first_seen_ms";
  }
  if (auto error = optional_bool(value, "ever_dht_server", path,
                                 ever_dht_server)) {
    return error;
  }
  if (const JsonValue* list = value.find("agents")) {
    if (!list->is_array()) return join(path, "agents") + ": expected an array";
    for (std::size_t i = 0; i < list->as_array().size(); ++i) {
      const JsonValue& entry = list->as_array()[i];
      const std::string entry_path = indexed(path, "agents", i);
      if (auto error = require_object(entry, entry_path)) return error;
      if (auto error = check_keys(entry, entry_path, {"at_ms", "agent"})) {
        return error;
      }
      measure::AgentEvent event;
      if (auto error = require_time(entry, "at_ms", entry_path, event.at)) {
        return error;
      }
      if (auto error = require_string(entry, "agent", entry_path, event.agent)) {
        return error;
      }
      agents.push_back(std::move(event));
    }
  }
  for (const std::string_view key : {"protocols_ever", "connected_ips"}) {
    if (const JsonValue* list = value.find(key)) {
      if (!list->is_array()) return join(path, key) + ": expected an array";
      for (std::size_t i = 0; i < list->as_array().size(); ++i) {
        if (!list->as_array()[i].is_string()) {
          return join(path, key) + "[" + std::to_string(i) +
                 "]: expected a string";
        }
      }
    }
  }
  return std::nullopt;
}

// ---- observation extraction ------------------------------------------------

struct GroupObservations {
  std::vector<Observation> sessions;
  std::vector<Observation> gaps;
};

/// Split the reconstructed sessions into the report groups and derive the
/// per-peer intersession gaps.  The final silence after a peer's last
/// *completed* session is a right-censored gap observation (the peer had
/// not returned by trace end); gaps are left-truncated at `max_gap` by
/// construction, which DESIGN.md §15 documents as a known limitation.
std::map<std::string, GroupObservations> extract_observations(
    const measure::Dataset& dataset, const std::vector<SessionTrace>& sessions) {
  std::map<std::string, GroupObservations> groups;
  const bool has_window = dataset.measurement_end > dataset.measurement_start;
  auto add = [&groups](const std::string& name, const Observation& obs,
                       bool is_gap) {
    auto& group = groups[name];
    (is_gap ? group.gaps : group.sessions).push_back(obs);
  };
  auto add_both = [&](bool dht_server, const Observation& obs, bool is_gap) {
    add("all", obs, is_gap);
    add(dht_server ? "dht_servers" : "clients", obs, is_gap);
  };
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const SessionTrace& session = sessions[i];
    const bool dht = dataset.record(session.peer).ever_dht_server;
    add_both(dht,
             {std::max(static_cast<double>(session.length()), 1.0),
              session.censored},
             /*is_gap=*/false);
    const bool last_of_peer =
        i + 1 == sessions.size() || sessions[i + 1].peer != session.peer;
    if (!last_of_peer) {
      const double gap_ms =
          static_cast<double>(sessions[i + 1].begin - session.end);
      add_both(dht, {std::max(gap_ms, 1.0), false}, /*is_gap=*/true);
    } else if (has_window && !session.censored) {
      const double silence_ms =
          static_cast<double>(dataset.measurement_end - session.end);
      add_both(dht, {std::max(silence_ms, 1.0), true}, /*is_gap=*/true);
    }
  }
  return groups;
}

std::size_t censored_count(const std::vector<Observation>& sample) {
  std::size_t count = 0;
  for (const Observation& obs : sample) count += obs.censored ? 1 : 0;
  return count;
}

// ---- report rendering ------------------------------------------------------

void write_distribution(JsonWriter& json, const SessionDistribution& dist) {
  json.begin_object();
  json.field("kind", family_name(dist.kind));
  switch (dist.kind) {
    case SessionDistribution::Kind::kExponential:
      json.field("mean_ms", dist.mean_ms);
      break;
    case SessionDistribution::Kind::kWeibull:
      json.field("shape", dist.shape);
      json.field("scale_ms", dist.scale_ms);
      break;
    case SessionDistribution::Kind::kLognormal:
      json.field("median_ms", dist.median_ms);
      json.field("sigma", dist.sigma);
      break;
  }
  json.end_object();
}

void write_fit(JsonWriter& json, const FitResult& fit) {
  json.begin_object();
  json.field("ok", fit.ok);
  if (fit.ok) {
    json.key("params");
    write_distribution(json, fit.dist);
    json.field("ks", fit.ks);
    json.field("ad", fit.ad);
    json.field("analytic_mean_ms", fit.dist.analytic_mean());
    json.field("analytic_median_ms", fit.dist.analytic_median());
  } else {
    json.field("note", fit.note);
  }
  json.end_object();
}

void write_selection(JsonWriter& json, const FamilySelection& selection,
                     std::size_t observations, std::size_t censored) {
  json.begin_object();
  json.field("observations", static_cast<std::uint64_t>(observations));
  json.field("censored", static_cast<std::uint64_t>(censored));
  if (selection.any_ok()) {
    json.field("selected", selection.selected);
  } else {
    json.key("selected");
    json.null();
  }
  json.key("candidates");
  json.begin_object();
  json.key("exponential");
  write_fit(json, selection.exponential);
  json.key("weibull");
  write_fit(json, selection.weibull);
  json.key("lognormal");
  write_fit(json, selection.lognormal);
  json.end_object();
  json.end_object();
}

}  // namespace

// ---- family selection ------------------------------------------------------

const FitResult& FamilySelection::best() const {
  if (selected == "weibull") return weibull;
  if (selected == "lognormal") return lognormal;
  return exponential;
}

FitResult fit_exponential(const std::vector<Observation>& sample) {
  double total = 0.0;
  std::size_t uncensored = 0;
  for (const Observation& obs : sample) {
    total += std::max(obs.value_ms, 1.0);
    uncensored += obs.censored ? 0 : 1;
  }
  if (uncensored < kMinUncensored) {
    return failed_fit(SessionDistribution::Kind::kExponential,
                      "needs >= " + std::to_string(kMinUncensored) +
                          " uncensored observations, got " +
                          std::to_string(uncensored));
  }
  // Censored MLE: every observation contributes its exposure time, only
  // completed ones count as events — mean = total exposure / events.
  const double mean = total / static_cast<double>(uncensored);
  return finish_fit(SessionDistribution::exponential(mean), sample);
}

FitResult fit_weibull(const std::vector<Observation>& sample) {
  std::vector<double> values;     // all, normalized by the max for stability
  std::vector<double> completed;  // uncensored only
  double max_value = 0.0;
  for (const Observation& obs : sample) {
    max_value = std::max(max_value, std::max(obs.value_ms, 1.0));
  }
  for (const Observation& obs : sample) {
    const double v = std::max(obs.value_ms, 1.0) / max_value;
    values.push_back(v);
    if (!obs.censored) completed.push_back(v);
  }
  if (completed.size() < kMinUncensored) {
    return failed_fit(SessionDistribution::Kind::kWeibull,
                      "needs >= " + std::to_string(kMinUncensored) +
                          " uncensored observations, got " +
                          std::to_string(completed.size()));
  }
  const double m = static_cast<double>(completed.size());
  double mean_log_completed = 0.0;
  for (const double v : completed) mean_log_completed += std::log(v);
  mean_log_completed /= m;
  // Profile likelihood in the shape k (right-censoring drops the
  // censored terms from the log mean but keeps them in the power sums):
  //   f(k) = sum(t^k ln t)/sum(t^k) - 1/k - mean(ln t | uncensored) = 0.
  // f is increasing: f(0+) = -inf and f(inf) -> -mean_log_completed >= 0,
  // so bisection is safe whenever a sign change exists.
  auto profile = [&](double k) {
    double weighted_log = 0.0;
    double power_sum = 0.0;
    for (const double v : values) {
      const double p = std::pow(v, k);
      weighted_log += p * std::log(v);
      power_sum += p;
    }
    return weighted_log / power_sum - 1.0 / k - mean_log_completed;
  };
  double lo = 1e-3;
  double hi = 100.0;
  if (!(profile(lo) < 0.0) || !(profile(hi) > 0.0)) {
    return failed_fit(SessionDistribution::Kind::kWeibull,
                      "profile-likelihood estimator did not converge");
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (profile(mid) < 0.0 ? lo : hi) = mid;
  }
  const double shape = 0.5 * (lo + hi);
  double power_sum = 0.0;
  for (const double v : values) power_sum += std::pow(v, shape);
  const double scale =
      max_value * std::pow(power_sum / m, 1.0 / shape);
  return finish_fit(SessionDistribution::weibull(shape, scale), sample);
}

FitResult fit_lognormal(const std::vector<Observation>& sample) {
  std::vector<double> completed_log;
  std::vector<double> censored_log;
  for (const Observation& obs : sample) {
    const double x = std::log(std::max(obs.value_ms, 1.0));
    (obs.censored ? censored_log : completed_log).push_back(x);
  }
  if (completed_log.size() < kMinUncensored) {
    return failed_fit(SessionDistribution::Kind::kLognormal,
                      "needs >= " + std::to_string(kMinUncensored) +
                          " uncensored observations, got " +
                          std::to_string(completed_log.size()));
  }
  const double n =
      static_cast<double>(completed_log.size() + censored_log.size());
  double mu = 0.0;
  for (const double x : completed_log) mu += x;
  mu /= static_cast<double>(completed_log.size());
  double var = 0.0;
  for (const double x : completed_log) var += (x - mu) * (x - mu);
  var /= static_cast<double>(completed_log.size());
  double sigma = std::max(std::sqrt(var), 1e-3);
  // EM for the right-censored normal on ln t: each censored observation
  // contributes the conditional moments of X | X > c through the inverse
  // Mills ratio h = phi(a)/(1 - Phi(a)), a = (c - mu)/sigma:
  //   E[X | X > c]  = mu + sigma h,
  //   E[X^2 | X > c] = mu^2 + sigma^2 + sigma (c + mu) h.
  for (int iter = 0; iter < 500 && !censored_log.empty(); ++iter) {
    double s1 = 0.0;
    double s2 = 0.0;
    for (const double x : completed_log) {
      s1 += x;
      s2 += x * x;
    }
    for (const double c : censored_log) {
      const double a = (c - mu) / sigma;
      const double h = inverse_mills(a);
      s1 += mu + sigma * h;
      s2 += mu * mu + sigma * sigma + sigma * (c + mu) * h;
    }
    const double next_mu = s1 / n;
    const double next_var = std::max(s2 / n - next_mu * next_mu, 1e-12);
    const double next_sigma = std::sqrt(next_var);
    const double delta =
        std::abs(next_mu - mu) + std::abs(next_sigma - sigma);
    mu = next_mu;
    sigma = next_sigma;
    if (delta < 1e-12) break;
  }
  return finish_fit(SessionDistribution::lognormal(std::exp(mu), sigma), sample);
}

double distribution_cdf(const SessionDistribution& dist, double t_ms) {
  if (t_ms <= 0.0) return 0.0;
  switch (dist.kind) {
    case SessionDistribution::Kind::kExponential:
      return 1.0 - std::exp(-t_ms / dist.mean_ms);
    case SessionDistribution::Kind::kWeibull:
      return 1.0 - std::exp(-std::pow(t_ms / dist.scale_ms, dist.shape));
    case SessionDistribution::Kind::kLognormal: {
      if (dist.sigma <= 0.0) return t_ms >= dist.median_ms ? 1.0 : 0.0;
      return normal_cdf((std::log(t_ms) - std::log(dist.median_ms)) /
                        dist.sigma);
    }
  }
  return 0.0;
}

double ks_statistic(const std::vector<Observation>& sample,
                    const SessionDistribution& dist) {
  const std::vector<double> values = sorted_uncensored(sample);
  if (values.empty()) return 1.0;
  const double n = static_cast<double>(values.size());
  double d = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double f = distribution_cdf(dist, values[i]);
    d = std::max(d, std::abs(static_cast<double>(i + 1) / n - f));
    d = std::max(d, std::abs(f - static_cast<double>(i) / n));
  }
  return d;
}

double ad_statistic(const std::vector<Observation>& sample,
                    const SessionDistribution& dist) {
  const std::vector<double> values = sorted_uncensored(sample);
  if (values.empty()) return std::numeric_limits<double>::infinity();
  const std::size_t n = values.size();
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lower =
        std::clamp(distribution_cdf(dist, values[i]), 1e-12, 1.0 - 1e-12);
    const double upper = std::clamp(distribution_cdf(dist, values[n - 1 - i]),
                                    1e-12, 1.0 - 1e-12);
    sum += static_cast<double>(2 * i + 1) *
           (std::log(lower) + std::log(1.0 - upper));
  }
  return -static_cast<double>(n) - sum / static_cast<double>(n);
}

double two_sample_ks(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return 1.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  double d = 0.0;
  while (ia < a.size() && ib < b.size()) {
    const double x = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] <= x) ++ia;
    while (ib < b.size() && b[ib] <= x) ++ib;
    d = std::max(d, std::abs(static_cast<double>(ia) / na -
                             static_cast<double>(ib) / nb));
  }
  return d;
}

FamilySelection select_family(const std::vector<Observation>& sample) {
  FamilySelection selection;
  selection.exponential = fit_exponential(sample);
  selection.weibull = fit_weibull(sample);
  selection.lognormal = fit_lognormal(sample);

  struct Candidate {
    const FitResult* fit;
    std::string_view name;
    int parameters;
  };
  const Candidate candidates[] = {
      {&selection.exponential, "exponential", 1},
      {&selection.weibull, "weibull", 2},
      {&selection.lognormal, "lognormal", 2},
  };
  double best_ks = std::numeric_limits<double>::infinity();
  for (const Candidate& c : candidates) {
    if (c.fit->ok) best_ks = std::min(best_ks, c.fit->ks);
  }
  const Candidate* chosen = nullptr;
  for (const Candidate& c : candidates) {
    if (!c.fit->ok || c.fit->ks > best_ks + kKsTieTolerance) continue;
    // Within the KS tie band: fewer parameters beat more (parsimony, so
    // truly-exponential data is not claimed by Weibull's extra degree of
    // freedom), then the lower AD, then declaration order.
    if (chosen == nullptr || c.parameters < chosen->parameters ||
        (c.parameters == chosen->parameters && c.fit->ad < chosen->fit->ad)) {
      chosen = &c;
    }
  }
  if (chosen != nullptr) selection.selected = std::string(chosen->name);
  return selection;
}

// ---- trace ingestion -------------------------------------------------------

std::string_view first_document(std::string_view text) {
  std::size_t start = 0;
  while (start < text.size() &&
         (text[start] == ' ' || text[start] == '\t' || text[start] == '\n' ||
          text[start] == '\r')) {
    ++start;
  }
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (std::size_t i = start; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      if (depth == 0) return text.substr(start, i - start + 1);
    }
  }
  return text.substr(start);  // unbalanced — let the parser report it
}

std::expected<measure::Dataset, std::string> parse_trace(std::string_view text) {
  const auto parsed = JsonValue::parse(first_document(text));
  if (!parsed) return std::unexpected("trace: " + parsed.error());
  const JsonValue& root = *parsed;
  if (auto error = require_object(root, "trace")) return std::unexpected(*error);
  if (auto error = check_keys(root, "trace",
                              {"vantage", "measurement_start_ms",
                               "measurement_end_ms", "peers", "connections"})) {
    return std::unexpected(*error);
  }
  measure::Dataset dataset;
  if (auto error = require_string(root, "vantage", "", dataset.vantage)) {
    return std::unexpected(*error);
  }
  if (auto error = require_time(root, "measurement_start_ms", "",
                                dataset.measurement_start)) {
    return std::unexpected(*error);
  }
  if (auto error = require_time(root, "measurement_end_ms", "",
                                dataset.measurement_end)) {
    return std::unexpected(*error);
  }
  if (dataset.measurement_end < dataset.measurement_start) {
    return std::unexpected(
        "measurement_end_ms: must be >= measurement_start_ms");
  }
  const JsonValue* peers = nullptr;
  if (auto error = require_array(root, "peers", "", peers)) {
    return std::unexpected(*error);
  }
  if (peers->as_array().empty()) {
    return std::unexpected("peers: dataset is empty — nothing to calibrate");
  }
  for (std::size_t i = 0; i < peers->as_array().size(); ++i) {
    const std::string path = "peers[" + std::to_string(i) + "]";
    SimTime first_seen = 0;
    SimTime last_seen = 0;
    bool ever_dht_server = false;
    std::vector<measure::AgentEvent> agents;
    if (auto error = parse_peer(peers->as_array()[i], path, first_seen,
                                last_seen, ever_dht_server, agents)) {
      return std::unexpected(*error);
    }
    // The PID string is identity only here; re-intern a synthetic PeerId
    // per index (PeerIds are opaque hashes, not parseable strings).
    const measure::PeerIndex index =
        dataset.intern(p2p::PeerId::from_seed(i), first_seen);
    measure::PeerRecord& record = dataset.record(index);
    record.first_seen = first_seen;
    record.last_seen = last_seen;
    record.ever_dht_server = ever_dht_server;
    record.agent_history = std::move(agents);
  }
  if (const JsonValue* connections = root.find("connections")) {
    if (!connections->is_array()) {
      return std::unexpected("connections: expected an array");
    }
    for (std::size_t i = 0; i < connections->as_array().size(); ++i) {
      const JsonValue& entry = connections->as_array()[i];
      const std::string path = "connections[" + std::to_string(i) + "]";
      if (auto error = require_object(entry, path)) {
        return std::unexpected(*error);
      }
      if (auto error = check_keys(
              entry, path, {"peer", "opened_ms", "closed_ms", "direction",
                            "reason"})) {
        return std::unexpected(*error);
      }
      measure::ConnRecord record;
      SimTime peer_index = 0;
      if (auto error = require_time(entry, "peer", path, peer_index)) {
        return std::unexpected(*error);
      }
      if (peer_index < 0 ||
          static_cast<std::size_t>(peer_index) >= dataset.peer_count()) {
        return std::unexpected(join(path, "peer") + ": index out of range");
      }
      record.peer = static_cast<measure::PeerIndex>(peer_index);
      if (auto error = require_time(entry, "opened_ms", path, record.opened)) {
        return std::unexpected(*error);
      }
      if (auto error = require_time(entry, "closed_ms", path, record.closed)) {
        return std::unexpected(*error);
      }
      if (record.closed < record.opened) {
        return std::unexpected(join(path, "closed_ms") +
                               ": must be >= opened_ms");
      }
      for (const std::string_view key : {"direction", "reason"}) {
        if (const JsonValue* field = entry.find(key)) {
          if (!field->is_string()) {
            return std::unexpected(join(path, key) + ": expected a string");
          }
        }
      }
      dataset.add_connection(record);
    }
  } else {
    // Peer-record-only traces (the JsonExportSink default): approximate
    // each peer's presence by one connection spanning first..last seen.
    for (measure::PeerIndex i = 0; i < dataset.peer_count(); ++i) {
      const measure::PeerRecord& record = dataset.record(i);
      measure::ConnRecord conn;
      conn.peer = i;
      conn.opened = record.first_seen;
      conn.closed = record.last_seen;
      dataset.add_connection(conn);
    }
  }
  return dataset;
}

// ---- the pipeline ----------------------------------------------------------

std::expected<Result, std::string> run(std::string_view trace_text,
                                       const Options& options) {
  auto dataset = parse_trace(trace_text);
  if (!dataset) return std::unexpected(dataset.error());

  Result result;
  result.trace = std::move(*dataset);
  result.max_gap = options.max_gap;
  const std::vector<SessionTrace> sessions =
      reconstruct_sessions(result.trace, options.max_gap);
  result.measured = compute_churn_stats(sessions);
  if (result.measured.completed_sessions() == 0) {
    return std::unexpected(
        "trace: no completed sessions after censoring — cannot fit");
  }
  const auto observations = extract_observations(result.trace, sessions);
  for (const auto& [name, group] : observations) {
    GroupFit fit;
    fit.session_observations = group.sessions.size();
    fit.session_censored = censored_count(group.sessions);
    fit.gap_observations = group.gaps.size();
    fit.gap_censored = censored_count(group.gaps);
    fit.session = select_family(group.sessions);
    fit.gap = select_family(group.gaps);
    result.groups.emplace(name, std::move(fit));
  }
  const GroupFit& all = result.groups.at("all");
  if (!all.session.any_ok()) {
    return std::unexpected(
        "trace: too few completed sessions to fit any distribution family");
  }

  // ---- assemble the calibrated scenario ------------------------------------
  scenario::ScenarioSpec& spec = result.scenario;
  spec.name = options.name;
  spec.description =
      "Churn model calibrated from trace '" + result.trace.vantage + "'";
  spec.period.name = "calibrated";
  spec.period.dates = "calibration source window";
  spec.period.duration = result.trace.duration() > 0
                             ? result.trace.duration()
                             : common::kDay;

  scenario::ChurnSpec churn;
  churn.session = all.session.best().dist;
  if (all.gap.any_ok()) churn.gap = all.gap.best().dist;
  // Per-group overrides: DHT servers map onto the core-server category,
  // everything else onto normal users.  A group only overrides when its
  // own session fit converged; its gap falls back to the trace-wide one.
  const struct {
    const char* group;
    scenario::Category category;
  } group_categories[] = {
      {"dht_servers", scenario::Category::kCoreServer},
      {"clients", scenario::Category::kNormalUser},
  };
  for (const auto& mapping : group_categories) {
    const auto it = result.groups.find(mapping.group);
    if (it == result.groups.end() || !it->second.session.any_ok()) continue;
    scenario::ChurnCategorySpec category;
    category.category = mapping.category;
    category.session = it->second.session.best().dist;
    category.gap =
        it->second.gap.any_ok() ? it->second.gap.best().dist : churn.gap;
    churn.categories.push_back(category);
  }
  // Steady-state availability of the fitted alternating process: a peer
  // is online mean_session / (mean_session + mean_gap) of the time.
  const double mean_session = churn.session.analytic_mean();
  const double mean_gap = churn.gap.analytic_mean();
  churn.initial_online =
      std::clamp(mean_session / (mean_session + mean_gap), 0.05, 0.95);
  churn.sample_interval = std::min<SimDuration>(common::kHour,
                                                spec.period.duration);
  spec.churn = churn;

  spec.population = scenario::PopulationSpec::test_scale(options.verify_scale);
  spec.campaign.seed = options.seed;
  spec.campaign.trials = 1;
  spec.output.pretty = true;
  spec.output.include_connections = true;
  spec.output.role_filter = measure::DatasetRole::kVantage;

  if (auto error = scenario::ScenarioSpec::validate(spec)) {
    return std::unexpected("emitted scenario failed validation: " + *error);
  }

  // ---- closed loop: re-simulate and compare the session CDFs ---------------
  result.loop.threshold = options.ks_threshold;
  if (options.verify) {
    auto engine = scenario::CampaignEngine::create(spec.to_campaign_config());
    if (!engine) {
      return std::unexpected("closed-loop campaign rejected: " + engine.error());
    }
    scenario::CampaignResultSink sink;
    engine->run(sink);
    const scenario::CampaignResult campaign = sink.take_result();
    if (!campaign.go_ipfs) {
      return std::unexpected("closed-loop campaign produced no vantage dataset");
    }
    const std::vector<SessionTrace> simulated =
        reconstruct_sessions(*campaign.go_ipfs, options.max_gap);
    std::vector<double> simulated_ms;
    for (const SessionTrace& session : simulated) {
      if (!session.censored) {
        simulated_ms.push_back(
            std::max(static_cast<double>(session.length()), 1.0));
      }
    }
    std::vector<double> measured_ms;
    for (const SessionTrace& session : sessions) {
      if (!session.censored) {
        measured_ms.push_back(
            std::max(static_cast<double>(session.length()), 1.0));
      }
    }
    result.loop.ran = true;
    result.loop.scale = options.verify_scale;
    result.loop.seed = options.seed;
    result.loop.simulated_sessions = simulated_ms.size();
    result.loop.ks = two_sample_ks(std::move(measured_ms),
                                   std::move(simulated_ms));
    result.loop.pass = result.loop.ks <= options.ks_threshold;
  }
  return result;
}

std::string Result::report_json() const {
  std::ostringstream out;
  JsonWriter json(out, /*pretty=*/true);
  json.begin_object();
  json.key("trace");
  json.begin_object();
  json.field("vantage", trace.vantage);
  json.field("measurement_start_ms", trace.measurement_start);
  json.field("measurement_end_ms", trace.measurement_end);
  json.field("peers", static_cast<std::uint64_t>(trace.peer_count()));
  json.field("connections", static_cast<std::uint64_t>(trace.connection_count()));
  json.field("max_gap_ms", max_gap);
  json.field("sessions", static_cast<std::uint64_t>(measured.session_count));
  json.field("censored_sessions",
             static_cast<std::uint64_t>(measured.censored_sessions));
  json.field("completed_sessions",
             static_cast<std::uint64_t>(measured.completed_sessions()));
  json.field("mean_session_s", measured.mean_session_s);
  json.field("median_session_s", measured.median_session_s);
  json.end_object();

  json.key("fits");
  json.begin_object();
  for (const auto& [name, group] : groups) {
    json.key(name);
    json.begin_object();
    json.key("session");
    write_selection(json, group.session, group.session_observations,
                    group.session_censored);
    json.key("gap");
    write_selection(json, group.gap, group.gap_observations,
                    group.gap_censored);
    json.end_object();
  }
  json.end_object();

  json.key("scenario");
  json.begin_object();
  json.field("name", scenario.name);
  if (scenario.churn) {
    json.key("session");
    write_distribution(json, scenario.churn->session);
    json.key("gap");
    write_distribution(json, scenario.churn->gap);
    json.field("initial_online", scenario.churn->initial_online);
  }
  json.field("population_scale", scenario.population.scale);
  json.field("seed", scenario.campaign.seed);
  json.end_object();

  json.key("closed_loop");
  json.begin_object();
  json.field("ran", loop.ran);
  if (loop.ran) {
    json.field("scale", loop.scale);
    json.field("seed", loop.seed);
    json.field("simulated_sessions",
               static_cast<std::uint64_t>(loop.simulated_sessions));
    json.field("ks", loop.ks);
  }
  json.field("threshold", loop.threshold);
  json.field("pass", loop.pass);
  json.end_object();

  json.end_object();
  out << '\n';
  return out.str();
}

}  // namespace ipfs::analysis::calibrate
