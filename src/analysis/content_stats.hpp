// Content-routing workload statistics (DESIGN.md §11).
//
// A content-enabled campaign publishes three streams: per-provide events
// (`measure::ProvideSample`), per-fetch outcomes (`measure::FetchSample`)
// and periodic records-at-vantage snapshots (`measure::ContentSample`).
// This module turns those streams into the figures the content model was
// built for: provider-record availability over time (how many unexpired
// records exist at each instant, given the TTL), the vantage's record
// coverage against ground truth, and fetch success / latency CDFs.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/timeseries.hpp"
#include "common/sim_time.hpp"
#include "common/stats.hpp"
#include "measure/sink.hpp"

namespace ipfs::analysis {

/// Aggregate provide statistics for one run.
struct ProvideStats {
  std::size_t provides = 0;        ///< all provide events (initial + republish)
  std::size_t republishes = 0;     ///< events from a republish cycle
  std::size_t distinct_keys = 0;   ///< keys provided at least once
  std::size_t distinct_providers = 0;  ///< peers that provided at least once
  /// Mean provides per provided key (> 1 when replication or republish
  /// cycles are present).
  double provides_per_key = 0.0;
};

[[nodiscard]] ProvideStats compute_provide_stats(
    const std::vector<measure::ProvideSample>& provides);

/// Number of *live* provider records at each grid point `start,
/// start+step, …, end`: a provide at `t` covers [t, t+ttl).  Republish
/// chains keep records alive; a provider that departs before its next
/// cycle decays out after one TTL — the availability-over-time figure.
[[nodiscard]] std::vector<CountSample> provider_availability_over_time(
    const std::vector<measure::ProvideSample>& provides,
    common::SimDuration ttl, common::SimDuration step, common::SimTime start,
    common::SimTime end);

/// One records-at-vantage coverage point: how many provider records the
/// vantage stores hold versus how many the ground-truth population would
/// publish if every online provider's records were visible.
struct RecordCoverageSample {
  common::SimTime at = 0;
  std::size_t vantage_records = 0;
  std::size_t vantage_keys = 0;
  std::size_t true_records = 0;
  /// vantage_records / true_records (0 when the truth is empty).  Below
  /// 1.0 from visibility/NAT gating; above it transiently when departed
  /// providers' records have not yet expired.
  double coverage = 0.0;
};

/// Evaluate coverage at each engine snapshot (`measure::ContentSample`).
[[nodiscard]] std::vector<RecordCoverageSample> record_coverage(
    const std::vector<measure::ContentSample>& samples);

/// Aggregate fetch statistics for one run.
struct FetchStats {
  std::size_t fetches = 0;
  std::size_t found_provider = 0;  ///< lookups that found >= 1 live record
  std::size_t served = 0;          ///< fetches that received the block
  double lookup_success_rate = 0.0;  ///< found_provider / fetches
  double fetch_success_rate = 0.0;   ///< served / fetches
  double mean_latency_ms = 0.0;      ///< served fetches only
  double median_latency_ms = 0.0;    ///< served fetches only
  /// Empirical latency CDF of *served* fetches, in milliseconds.
  common::Cdf latency_cdf;
};

[[nodiscard]] FetchStats compute_fetch_stats(
    const std::vector<measure::FetchSample>& fetches);

}  // namespace ipfs::analysis
