// Time-series reconstructions (paper Fig. 5 and Fig. 6).
//
// Both figures are computable post-hoc from the dataset: simultaneous
// connections by sweeping connection intervals over a sampling grid, and
// PID growth from first-seen / last-activity times.
#pragma once

#include <vector>

#include "measure/dataset.hpp"

namespace ipfs::analysis {

/// One sample of a counting series.
struct CountSample {
  common::SimTime at = 0;
  std::uint64_t count = 0;
};

/// Fig. 5: number of simultaneously open connections over time, sampled
/// every `step` from measurement start to `horizon` past it (the paper
/// plots the first 24 h).
[[nodiscard]] std::vector<CountSample> simultaneous_connections(
    const measure::Dataset& dataset, common::SimDuration step,
    common::SimDuration horizon);

/// Peak / plateau diagnostics for a series.
struct SeriesSummary {
  std::uint64_t peak = 0;
  std::uint64_t final_value = 0;
  double mean = 0.0;
};

[[nodiscard]] SeriesSummary summarize_series(const std::vector<CountSample>& series);

/// Fig. 6's three series on a shared grid.
struct PidGrowthSeries {
  std::vector<CountSample> all_pids;        ///< PIDs seen so far
  std::vector<CountSample> gone_pids;       ///< disconnected > `gone_after`
                                            ///< and never returned
  std::vector<CountSample> connected_pids;  ///< currently connected
};

/// Compute Fig. 6 over the full measurement with the given sampling step;
/// `gone_after` is the paper's "more than three days disconnected".
[[nodiscard]] PidGrowthSeries pid_growth(const measure::Dataset& dataset,
                                         common::SimDuration step,
                                         common::SimDuration gone_after =
                                             3 * common::kDay);

}  // namespace ipfs::analysis
