// Churn-model calibration from a measured trace (DESIGN.md §15).
//
// Closes ROADMAP item 2: instead of hand-tuning the per-category session
// machinery, point this module at the peer-record JSON a passive
// measurement run exports (`measure::JsonExportSink`, the
// `examples/passive_measurement` artefact) and get back (a) a calibrated
// strict `"churn"` scenario section that round-trips byte-exactly through
// `scenario::ScenarioSpec`, and (b) a fit report with per-group
// parameters, goodness-of-fit statistics and censoring counts.
//
// Pipeline: parse the trace (strict, field-path errors) → reconstruct
// sessions with the gap-threshold logic of `analysis::churn_stats` →
// fit exponential / Weibull / lognormal session-length and
// intersession-gap distributions by maximum likelihood *with
// right-censoring* of sessions still open at trace end → select the best
// family by Kolmogorov–Smirnov distance (Anderson–Darling as tie-break)
// → emit the scenario and, optionally, re-run it and compare the
// simulated session-length CDF against the measured one (two-sample KS —
// the closed loop).
//
// Determinism contract (DESIGN.md §5/§15): no entropy source appears
// anywhere in this module — the fits are pure functions of the trace
// bytes, the closed-loop run is an ordinary seeded campaign, and the
// emitted scenario/report bytes are identical across repeated runs,
// worker counts and machines.
#pragma once

#include <cstdint>
#include <expected>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/churn_stats.hpp"
#include "measure/dataset.hpp"
#include "scenario/churn.hpp"
#include "scenario/scenario_spec.hpp"

namespace ipfs::analysis::calibrate {

/// One duration observation (milliseconds).  `censored` marks a
/// right-censored value: the true duration is *at least* `value_ms`, the
/// trace ended before its completion could be confirmed.
struct Observation {
  double value_ms = 0.0;
  bool censored = false;
};

/// One fitted candidate family.
struct FitResult {
  scenario::SessionDistribution dist;
  double ks = 1.0;   ///< KS distance, uncensored sample vs fitted CDF
  double ad = 0.0;   ///< Anderson–Darling A² on the same sample
  bool ok = false;   ///< enough data and the estimator converged
  std::string note;  ///< why not ok ("" when ok)
};

/// All three candidates plus the selected family.
struct FamilySelection {
  FitResult exponential;
  FitResult weibull;
  FitResult lognormal;
  /// "exponential" / "weibull" / "lognormal", or "" when nothing fit.
  std::string selected;

  [[nodiscard]] bool any_ok() const noexcept { return !selected.empty(); }
  [[nodiscard]] const FitResult& best() const;
};

// ---- estimators (exposed for tests; all pure functions) --------------------

/// Censored MLE per family.  Each needs >= `kMinUncensored` uncensored
/// observations; values are clamped to >= 1 ms (the trace resolution).
inline constexpr std::size_t kMinUncensored = 5;

[[nodiscard]] FitResult fit_exponential(const std::vector<Observation>& sample);
[[nodiscard]] FitResult fit_weibull(const std::vector<Observation>& sample);
[[nodiscard]] FitResult fit_lognormal(const std::vector<Observation>& sample);

/// Fit all three families and select the best by KS with a parsimony
/// tie-break: within `kKsTieTolerance` the family with fewer parameters
/// wins (exponential < weibull/lognormal), then the lower AD, then the
/// fixed order exponential, weibull, lognormal.
inline constexpr double kKsTieTolerance = 0.01;

[[nodiscard]] FamilySelection select_family(const std::vector<Observation>& sample);

/// KS distance between the uncensored part of `sample` and `dist`'s CDF.
[[nodiscard]] double ks_statistic(const std::vector<Observation>& sample,
                                  const scenario::SessionDistribution& dist);

/// Anderson–Darling A² of the uncensored part of `sample` under `dist`.
[[nodiscard]] double ad_statistic(const std::vector<Observation>& sample,
                                  const scenario::SessionDistribution& dist);

/// Two-sample KS distance between empirical CDFs (the closed-loop metric).
[[nodiscard]] double two_sample_ks(std::vector<double> a, std::vector<double> b);

/// CDF of `dist` at `t_ms` (the analytic form the KS/AD statistics use;
/// exposed so tests can cross-check against `analytic_median`).
[[nodiscard]] double distribution_cdf(const scenario::SessionDistribution& dist,
                                      double t_ms);

// ---- trace ingestion -------------------------------------------------------

/// The first standalone JSON document in `text` — a JsonExportSink file
/// carries the dataset document first, then optional sample-stream
/// documents (`population_samples`, …), which calibration ignores.
[[nodiscard]] std::string_view first_document(std::string_view text);

/// Parse a peer-record trace (the `Dataset::export_json` schema) back into
/// a `measure::Dataset`.  Strict: unknown fields, wrong types, a
/// non-monotone `first_seen_ms`/`last_seen_ms` pair, out-of-range
/// connection peer indices and an empty `peers` array all fail with a
/// field-path error ("peers[3].last_seen_ms: must be >= first_seen_ms").
/// Traces without a `connections` array get one synthesized connection per
/// peer spanning [first_seen, last_seen].  PIDs are re-interned as
/// synthetic `PeerId`s (identity only; calibration never reads PID bytes).
[[nodiscard]] std::expected<measure::Dataset, std::string> parse_trace(
    std::string_view text);

// ---- the pipeline ----------------------------------------------------------

struct Options {
  /// Gap-threshold for session reconstruction (and the censoring horizon).
  common::SimDuration max_gap = 30 * common::kMinute;
  /// Name of the emitted scenario (its `"name"` field).
  std::string name = "calibrated";
  /// Base seed of the emitted scenario (and the closed-loop run).
  std::uint64_t seed = 20211203;
  /// Population scale of the emitted scenario / closed-loop run.
  double verify_scale = 0.01;
  /// Run the closed loop (re-simulate and compare CDFs)?
  bool verify = true;
  /// Closed-loop acceptance: two-sample KS must stay <= this.
  double ks_threshold = 0.35;
};

/// Session/gap fits of one peer group ("all", "dht_servers", "clients").
struct GroupFit {
  std::size_t session_observations = 0;  ///< incl. censored
  std::size_t session_censored = 0;
  std::size_t gap_observations = 0;  ///< incl. the censored final silence
  std::size_t gap_censored = 0;
  FamilySelection session;
  FamilySelection gap;
};

/// Closed-loop verification outcome.
struct ClosedLoop {
  bool ran = false;
  double scale = 0.0;
  std::uint64_t seed = 0;
  std::size_t simulated_sessions = 0;  ///< completed sessions, re-simulated
  double ks = 0.0;                     ///< two-sample KS, measured vs simulated
  double threshold = 0.0;
  bool pass = true;  ///< ks <= threshold (true when !ran)
};

/// Everything `run` produces: the emitted scenario plus report inputs.
struct Result {
  scenario::ScenarioSpec scenario;
  measure::Dataset trace;         ///< the parsed dataset
  common::SimDuration max_gap = 0;
  ChurnStats measured;            ///< stats over the reconstructed sessions
  /// Group name -> fits, in report order ("all", "dht_servers", "clients";
  /// groups without sessions are omitted).
  std::map<std::string, GroupFit> groups;
  ClosedLoop loop;

  /// The pretty-printed fit report (stable key order, trailing newline).
  [[nodiscard]] std::string report_json() const;
};

/// The full calibration pipeline over raw trace bytes.  Errors carry the
/// trace field path (parse stage) or a pipeline-stage description ("no
/// completed sessions in trace — cannot fit").
[[nodiscard]] std::expected<Result, std::string> run(std::string_view trace_text,
                                                     const Options& options = {});

}  // namespace ipfs::analysis::calibrate
