// Network-size estimation (paper §V).
//
// Method 1 (§V-A): group PIDs by connected IP address — PIDs sharing any IP
// collapse into one group (union-find).  Method 2 (§V-B): the
// connection-time classification of classification.hpp; heavy peers bound
// the core network from below.  `NetworkSizeReport` combines both with the
// headline numbers the paper quotes.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/classification.hpp"
#include "measure/dataset.hpp"

namespace ipfs::analysis {

/// §V-A results.
struct MultiaddrGrouping {
  std::uint64_t total_pids = 0;          ///< 65'853 in P4
  std::uint64_t connected_pids = 0;      ///< 62'204 — PIDs with a connection
  std::uint64_t distinct_ips = 0;        ///< 56'536
  std::uint64_t groups = 0;              ///< 47'516 — IP-connected components
  std::uint64_t singleton_groups = 0;    ///< 44'301 — groups of exactly one PID
  std::uint64_t unique_ip_pids = 0;      ///< 40'193 — PIDs alone on their IPs
  std::uint64_t largest_group = 0;       ///< 2'156 PIDs behind one IP
  /// Size of each group, descending (for inspection / tests).
  std::vector<std::uint64_t> group_sizes;
};

[[nodiscard]] MultiaddrGrouping group_by_multiaddr(const measure::Dataset& dataset);

/// Combined §V headline report.
struct NetworkSizeReport {
  std::uint64_t observed_pids = 0;
  std::uint64_t estimated_peers_by_ip = 0;   ///< group count (≈48k conclusion)
  std::uint64_t core_network_lower_bound = 0;  ///< heavy peers (≥10k)
  std::uint64_t heavy_dht_servers = 0;
  std::uint64_t core_user_base = 0;  ///< heavy DHT clients
  double pids_per_ip_group = 0.0;
};

[[nodiscard]] NetworkSizeReport estimate_network_size(const measure::Dataset& dataset);

}  // namespace ipfs::analysis
