#include "analysis/classification.hpp"

#include <algorithm>
#include <cmath>

namespace ipfs::analysis {

std::string_view to_string(PeerClass cls) noexcept {
  switch (cls) {
    case PeerClass::kHeavy: return "Heavy";
    case PeerClass::kNormal: return "Normal";
    case PeerClass::kLight: return "Light";
    case PeerClass::kOneTime: return "One-time";
  }
  return "?";
}

std::vector<PeerFeatures> extract_features(const measure::Dataset& dataset) {
  std::vector<PeerFeatures> features(dataset.peer_count());
  for (std::size_t i = 0; i < dataset.peer_count(); ++i) {
    features[i].peer = static_cast<measure::PeerIndex>(i);
    features[i].dht_server = dataset.record(static_cast<std::uint32_t>(i)).ever_dht_server;
  }
  for (const measure::ConnRecord& record : dataset.connections()) {
    PeerFeatures& f = features[record.peer];
    f.max_duration = std::max(f.max_duration, record.duration());
    ++f.connection_count;
  }
  // Only peers with recorded connections enter the classification (the
  // paper classifies the 62'204 connected PIDs of P4, not all 65'853).
  std::vector<PeerFeatures> connected;
  connected.reserve(features.size());
  for (const PeerFeatures& f : features) {
    if (f.connection_count > 0) connected.push_back(f);
  }
  return connected;
}

PeerClass classify(const PeerFeatures& features, const ClassifierConfig& config) {
  if (features.max_duration > config.heavy_min_duration) return PeerClass::kHeavy;
  if (features.max_duration > config.normal_min_duration) return PeerClass::kNormal;
  if (features.connection_count >= config.light_min_connections) {
    return PeerClass::kLight;
  }
  return PeerClass::kOneTime;
}

ClassCounts classify_peers(const measure::Dataset& dataset,
                           const ClassifierConfig& config) {
  ClassCounts counts;
  for (const PeerFeatures& features : extract_features(dataset)) {
    const auto cls = static_cast<std::size_t>(classify(features, config));
    ++counts.peers[cls];
    if (features.dht_server) ++counts.dht_servers[cls];
  }
  return counts;
}

ConnectionCdfs connection_cdfs(const measure::Dataset& dataset, int server_filter) {
  std::vector<double> durations;
  std::vector<double> connection_counts;
  for (const PeerFeatures& features : extract_features(dataset)) {
    if (server_filter == 0 && features.dht_server) continue;
    if (server_filter == 1 && !features.dht_server) continue;
    // Group durations into 30 s intervals as the paper's Fig. 7 caption
    // specifies (ceil to the next 30 s boundary).
    const double grouped_s =
        std::ceil(common::to_seconds(features.max_duration) / 30.0) * 30.0;
    durations.push_back(grouped_s);
    connection_counts.push_back(static_cast<double>(features.connection_count));
  }
  ConnectionCdfs cdfs;
  cdfs.max_duration_s = common::Cdf(std::move(durations));
  cdfs.connection_count = common::Cdf(std::move(connection_counts));
  return cdfs;
}

}  // namespace ipfs::analysis
