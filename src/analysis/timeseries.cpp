#include "analysis/timeseries.hpp"

#include <algorithm>

namespace ipfs::analysis {

std::vector<CountSample> simultaneous_connections(const measure::Dataset& dataset,
                                                  common::SimDuration step,
                                                  common::SimDuration horizon) {
  std::vector<CountSample> series;
  if (step <= 0) return series;
  const common::SimTime start = dataset.measurement_start;
  const common::SimTime end = std::min(dataset.measurement_end, start + horizon);

  // Difference array over grid indices.  A connection counts at sample
  // time t iff opened <= t < closed, so it contributes to the first sample
  // at-or-after `opened` up to (exclusive) the first sample at-or-after
  // `closed`; connections that span no sample point contribute nothing —
  // otherwise the mass of sub-step query connections would inflate every
  // bucket they merely touch.
  const auto grid_size = static_cast<std::size_t>((end - start) / step) + 1;
  const auto first_sample_at_or_after = [&](common::SimTime t) {
    const common::SimTime clamped = std::max<common::SimTime>(t - start, 0);
    return static_cast<std::size_t>((clamped + step - 1) / step);
  };
  std::vector<std::int64_t> delta(grid_size + 1, 0);
  for (const measure::ConnRecord& record : dataset.connections()) {
    if (record.opened > end || record.closed < start) continue;
    const auto from = std::min(first_sample_at_or_after(record.opened), grid_size);
    const auto to = std::min(first_sample_at_or_after(record.closed), grid_size);
    if (from >= to) continue;
    ++delta[from];
    --delta[to];
  }

  series.reserve(grid_size);
  std::int64_t open = 0;
  for (std::size_t i = 0; i < grid_size; ++i) {
    open += delta[i];
    series.push_back({start + static_cast<common::SimTime>(i) * step,
                      static_cast<std::uint64_t>(std::max<std::int64_t>(open, 0))});
  }
  return series;
}

SeriesSummary summarize_series(const std::vector<CountSample>& series) {
  SeriesSummary summary;
  if (series.empty()) return summary;
  double sum = 0.0;
  for (const CountSample& sample : series) {
    summary.peak = std::max(summary.peak, sample.count);
    sum += static_cast<double>(sample.count);
  }
  summary.final_value = series.back().count;
  summary.mean = sum / static_cast<double>(series.size());
  return summary;
}

PidGrowthSeries pid_growth(const measure::Dataset& dataset, common::SimDuration step,
                           common::SimDuration gone_after) {
  PidGrowthSeries result;
  if (step <= 0) return result;
  const common::SimTime start = dataset.measurement_start;
  const common::SimTime end = dataset.measurement_end;
  const auto grid_size = static_cast<std::size_t>((end - start) / step) + 1;

  // Per-peer first-seen and last-activity (last connection close, or
  // last_seen when the peer never connected).
  std::vector<std::int64_t> first_seen_delta(grid_size + 1, 0);
  std::vector<std::int64_t> gone_delta(grid_size + 1, 0);

  const auto& by_peer = dataset.connections_by_peer();
  for (std::size_t p = 0; p < dataset.peer_count(); ++p) {
    const measure::PeerRecord& peer = dataset.record(static_cast<std::uint32_t>(p));
    const auto first_index = static_cast<std::size_t>(
        std::clamp<common::SimTime>(peer.first_seen - start, 0, end - start) / step);
    ++first_seen_delta[first_index];

    common::SimTime last_activity = peer.last_seen;
    for (const std::uint32_t ci : by_peer[p]) {
      last_activity = std::max(last_activity, dataset.connections()[ci].closed);
    }
    // The peer becomes "gone" once `gone_after` passes with no return —
    // only meaningful if that happens within the measurement.
    const common::SimTime gone_at = last_activity + gone_after;
    if (gone_at <= end) {
      const auto gone_index =
          static_cast<std::size_t>(std::max<common::SimTime>(gone_at - start, 0) / step);
      if (gone_index < grid_size) ++gone_delta[gone_index];
    }
  }

  // Connected series: interval sweep like simultaneous_connections but
  // counting distinct peers is costly; connections per peer rarely overlap,
  // so we approximate by sweeping per-peer merged intervals exactly.
  std::vector<std::int64_t> connected_delta(grid_size + 1, 0);
  for (std::size_t p = 0; p < dataset.peer_count(); ++p) {
    // Merge the peer's connection intervals.
    std::vector<std::pair<common::SimTime, common::SimTime>> intervals;
    for (const std::uint32_t ci : by_peer[p]) {
      const measure::ConnRecord& record = dataset.connections()[ci];
      intervals.emplace_back(record.opened, record.closed);
    }
    std::sort(intervals.begin(), intervals.end());
    common::SimTime merged_start = -1;
    common::SimTime merged_end = -1;
    auto flush = [&] {
      if (merged_start < 0) return;
      // Same at-sample-time semantics as simultaneous_connections above.
      const auto sample_at_or_after = [&](common::SimTime t) {
        const common::SimTime clamped = std::max<common::SimTime>(t - start, 0);
        return static_cast<std::size_t>((clamped + step - 1) / step);
      };
      const auto from = std::min(sample_at_or_after(merged_start), grid_size);
      const auto to = std::min(sample_at_or_after(merged_end), grid_size);
      if (from < to) {
        ++connected_delta[from];
        --connected_delta[to];
      }
    };
    for (const auto& [open, close] : intervals) {
      if (merged_start < 0) {
        merged_start = open;
        merged_end = close;
      } else if (open <= merged_end) {
        merged_end = std::max(merged_end, close);
      } else {
        flush();
        merged_start = open;
        merged_end = close;
      }
    }
    flush();
  }

  result.all_pids.reserve(grid_size);
  result.gone_pids.reserve(grid_size);
  result.connected_pids.reserve(grid_size);
  std::int64_t seen = 0;
  std::int64_t gone = 0;
  std::int64_t connected = 0;
  for (std::size_t i = 0; i < grid_size; ++i) {
    seen += first_seen_delta[i];
    gone += gone_delta[i];
    connected += connected_delta[i];
    const auto at = start + static_cast<common::SimTime>(i) * step;
    result.all_pids.push_back({at, static_cast<std::uint64_t>(seen)});
    result.gone_pids.push_back({at, static_cast<std::uint64_t>(gone)});
    result.connected_pids.push_back(
        {at, static_cast<std::uint64_t>(std::max<std::int64_t>(connected, 0))});
  }
  return result;
}

}  // namespace ipfs::analysis
