#include "dht/kad.hpp"

#include <algorithm>

#include "p2p/protocols.hpp"

namespace ipfs::dht {

KadEngine::KadEngine(sim::Simulation& simulation, net::Network& network, PeerId self,
                     Mode mode)
    : simulation_(simulation), network_(network), self_(self), mode_(mode),
      table_(self) {}

void KadEngine::observe_peer(const PeerId& peer) {
  table_.add(peer, simulation_.now());
}

void KadEngine::forget_peer(const PeerId& peer) { table_.remove(peer); }

bool KadEngine::handle_message(const PeerId& from, const net::Message& message) {
  if (message.protocol != p2p::protocols::kKad) return false;
  if (const auto* request = std::any_cast<FindNodeRequest>(&message.body)) {
    if (!is_server()) return true;  // clients do not answer routing queries
    ++queries_served_;
    FindNodeResponse response;
    response.request_id = request->request_id;
    response.closer_peers = table_.closest(request->target, kReplication);
    net::Message reply;
    reply.protocol = std::string(p2p::protocols::kKad);
    reply.body = std::move(response);
    network_.send(self_, from, std::move(reply));
    // Querying peers are useful contacts; servers learn them too (the
    // requester may be a server — our caller cannot know yet, so Kademlia
    // optimistically inserts and evicts on failure).
    table_.add(from, simulation_.now());
    return true;
  }
  if (const auto* response = std::any_cast<FindNodeResponse>(&message.body)) {
    const auto it = pending_.find(response->request_id);
    if (it == pending_.end()) return true;  // late or duplicate reply
    const auto [lookup_id, peer] = it->second;
    pending_.erase(it);
    if (peer == from) on_response(lookup_id, from, *response);
    return true;
  }
  return false;
}

void KadEngine::lookup(const PeerId& target, std::function<void(LookupResult)> done) {
  const std::uint64_t lookup_id = next_lookup_id_++;
  LookupState state;
  state.target = target;
  state.done = std::move(done);
  state.frontier = table_.closest(target, kReplication);  // ascending distance
  state.in_frontier.insert(state.frontier.begin(), state.frontier.end());
  lookups_.emplace(lookup_id, std::move(state));
  advance_lookup(lookup_id);
}

void KadEngine::send_find_node(std::uint64_t lookup_id, const PeerId& to) {
  const std::uint64_t request_id = next_request_id_++;
  pending_.emplace(request_id, std::make_pair(lookup_id, to));
  FindNodeRequest request;
  request.target = lookups_.at(lookup_id).target;
  request.request_id = request_id;
  net::Message message;
  message.protocol = std::string(p2p::protocols::kKad);
  message.body = request;

  // Dial-then-query when not yet connected; the short-lived query
  // connections this creates are precisely the churn signature the paper
  // attributes to crawlers and DHT traffic (§IV-A).
  if (network_.connected(self_, to)) {
    network_.send(self_, to, std::move(message));
  } else {
    network_.dial(self_, to, [this, to, message = std::move(message)](bool ok) mutable {
      if (ok) network_.send(self_, to, std::move(message));
    });
  }

  // Timeout: treat as failure, drop the peer from the table.
  simulation_.schedule_after(kRequestTimeout, [this, request_id] {
    const auto it = pending_.find(request_id);
    if (it == pending_.end()) return;
    const auto [timed_out_lookup, peer] = it->second;
    pending_.erase(it);
    table_.remove(peer);
    const auto lookup_it = lookups_.find(timed_out_lookup);
    if (lookup_it == lookups_.end()) return;
    LookupState& state = lookup_it->second;
    if (state.finished) return;
    --state.in_flight;
    advance_lookup(timed_out_lookup);
  });
}

void KadEngine::advance_lookup(std::uint64_t lookup_id) {
  const auto it = lookups_.find(lookup_id);
  if (it == lookups_.end()) return;
  LookupState& state = it->second;
  if (state.finished) return;

  // Query up to alpha closest uncontacted candidates (the frontier is
  // maintained in ascending-distance order, so iteration order is rank).
  std::size_t started = 0;
  for (const PeerId& candidate : state.frontier) {
    if (state.in_flight >= kAlpha) break;
    if (state.contacted.contains(candidate)) continue;
    state.contacted.insert(candidate);
    ++state.in_flight;
    ++state.queried;
    ++started;
    send_find_node(lookup_id, candidate);
  }

  if (state.in_flight == 0 && started == 0) {
    finish_lookup(lookup_id, !state.frontier.empty());
  }
}

void KadEngine::on_response(std::uint64_t lookup_id, const PeerId& from,
                            const FindNodeResponse& response) {
  const auto it = lookups_.find(lookup_id);
  if (it == lookups_.end()) return;
  LookupState& state = it->second;
  if (state.finished) return;
  --state.in_flight;
  table_.add(from, simulation_.now());
  for (const PeerId& peer : response.closer_peers) {
    if (peer == self_) continue;
    if (!state.in_frontier.insert(peer).second) continue;  // already known
    // Sorted insertion preserves the ascending-distance invariant; distinct
    // peers never tie under the XOR metric, so the resulting order is the
    // same one a full re-sort used to produce.
    const auto at = std::lower_bound(
        state.frontier.begin(), state.frontier.end(), peer,
        [&](const PeerId& a, const PeerId& b) {
          return closer_to(state.target, a, b);
        });
    state.frontier.insert(at, peer);
  }
  advance_lookup(lookup_id);
}

void KadEngine::finish_lookup(std::uint64_t lookup_id, bool converged) {
  const auto it = lookups_.find(lookup_id);
  if (it == lookups_.end()) return;
  LookupState& state = it->second;
  state.finished = true;
  LookupResult result;
  result.closest = state.frontier;  // already ascending by distance
  if (result.closest.size() > kReplication) result.closest.resize(kReplication);
  result.queried_count = state.queried;
  result.converged = converged;
  auto done = std::move(state.done);
  lookups_.erase(it);
  if (done) done(std::move(result));
}

void KadEngine::refresh() {
  // Self-lookup keeps the neighbourhood fresh…
  lookup(self_, {});
  // …and one random target per populated prefix keeps distant buckets warm.
  const std::size_t deepest = table_.deepest_bucket();
  for (std::size_t prefix = 0; prefix <= deepest && prefix < 16; ++prefix) {
    PeerId random_target = PeerId::from_seed(
        common::mix64(self_.prefix64(), simulation_.now() + static_cast<long>(prefix)));
    lookup(random_target, {});
  }
}

}  // namespace ipfs::dht
