// Provider-record store: hydra-booster's shared "belly" (§III-B).
//
// Hydra heads store and serve DHT provider records from one common store;
// we model records as (key → providers with expiry).  The store is also
// used by go-ipfs server nodes for the records they are responsible for.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/sim_time.hpp"
#include "p2p/peer_id.hpp"

namespace ipfs::dht {

/// A content key in the DHT keyspace (same 256-bit space as peer ids).
using RecordKey = p2p::PeerId;

/// One provider announcement.
struct ProviderRecord {
  p2p::PeerId provider;
  common::SimTime expires = 0;
};

/// Key → provider set, with lazy expiry.
class RecordStore {
 public:
  /// go-ipfs default provider-record validity.
  static constexpr common::SimDuration kDefaultTtl = 24 * common::kHour;

  void put(const RecordKey& key, const p2p::PeerId& provider, common::SimTime now,
           common::SimDuration ttl = kDefaultTtl);

  /// Unexpired providers for the key at time `now`.
  [[nodiscard]] std::vector<p2p::PeerId> get(const RecordKey& key,
                                             common::SimTime now) const;

  /// Drop expired entries; returns how many records were removed.
  std::size_t sweep(common::SimTime now);

  [[nodiscard]] std::size_t key_count() const noexcept { return records_.size(); }
  [[nodiscard]] std::size_t record_count() const noexcept { return record_count_; }

 private:
  std::unordered_map<RecordKey, std::vector<ProviderRecord>> records_;
  std::size_t record_count_ = 0;
};

}  // namespace ipfs::dht
