#include "dht/routing_table.hpp"

#include <algorithm>

namespace ipfs::dht {

bool closer_to(const PeerId& target, const PeerId& a, const PeerId& b) noexcept {
  const PeerId da = a ^ target;
  const PeerId db = b ^ target;
  return da < db;  // lexicographic word compare == big-endian numeric compare
}

std::optional<std::size_t> bucket_index(const PeerId& self, const PeerId& peer) noexcept {
  const PeerId d = self ^ peer;
  if (d.is_zero()) return std::nullopt;
  const std::size_t common_prefix = d.leading_zero_bits();
  return std::min(common_prefix, RoutingTable::kBucketCount - 1);
}

bool RoutingTable::add(const PeerId& peer, common::SimTime now) {
  const auto index = bucket_index(self_, peer);
  if (!index) return false;
  auto& bucket = buckets_[*index];
  for (BucketEntry& entry : bucket) {
    if (entry.peer == peer) {
      entry.last_seen = now;
      return true;
    }
  }
  if (bucket.size() >= kBucketSize) return false;
  bucket.push_back({peer, now});
  ++size_;
  return true;
}

bool RoutingTable::remove(const PeerId& peer) {
  const auto index = bucket_index(self_, peer);
  if (!index) return false;
  auto& bucket = buckets_[*index];
  const auto it = std::find_if(bucket.begin(), bucket.end(),
                               [&](const BucketEntry& e) { return e.peer == peer; });
  if (it == bucket.end()) return false;
  bucket.erase(it);
  --size_;
  return true;
}

bool RoutingTable::contains(const PeerId& peer) const {
  const auto index = bucket_index(self_, peer);
  if (!index) return false;
  const auto& bucket = buckets_[*index];
  return std::any_of(bucket.begin(), bucket.end(),
                     [&](const BucketEntry& e) { return e.peer == peer; });
}

// Selection walks buckets outward from the target's bucket instead of
// sorting the whole table.  Correctness rests on how the XOR metric
// partitions buckets relative to `target` (let b* = bucket_index(self,
// target), i.e. the length of the common prefix of self and target):
//
//   - peers in bucket b* share b*+1 leading bits with the target — they
//     are strictly closer than everything else;
//   - peers in any bucket deeper than b* first differ from the target at
//     bit b*, so the deep buckets form ONE group whose members interleave
//     with each other but all rank after bucket b*;
//   - peers in a bucket b < b* first differ from the target at bit b, so
//     each shallow bucket is its own group and groups rank by descending b.
//
// Groups are therefore emitted in order (bucket b*, union of deeper
// buckets, b*-1, b*-2, …); within a group members are selected with
// nth_element and sorted.  Distinct peers never tie under the XOR metric,
// so the output is exactly the prefix the old sort-everything
// implementation produced — same peers, same order.  The walk stops as
// soon as `count` peers are collected: cost is O(g log g) over the few
// groups actually touched instead of O(n log n) over the whole table.
std::vector<PeerId> RoutingTable::closest(const PeerId& target,
                                          std::size_t count) const {
  std::vector<PeerId> out;
  if (count == 0) return out;
  out.reserve(std::min(count, size_));

  const auto cmp = [&](const PeerId& a, const PeerId& b) {
    return closer_to(target, a, b);
  };
  std::vector<PeerId> group;
  // Select the (count - out.size()) closest members of `group` and append
  // them to `out` in ascending distance order.
  const auto take_group = [&] {
    if (group.empty()) return;
    const std::size_t need = count - out.size();
    if (group.size() > need) {
      std::nth_element(group.begin(),
                       group.begin() + static_cast<std::ptrdiff_t>(need),
                       group.end(), cmp);
      group.resize(need);
    }
    std::sort(group.begin(), group.end(), cmp);
    out.insert(out.end(), group.begin(), group.end());
    group.clear();
  };
  const auto add_bucket = [&](std::size_t b) {
    for (const BucketEntry& entry : buckets_[b]) group.push_back(entry.peer);
  };

  const auto index = bucket_index(self_, target);
  if (index) {
    const std::size_t b = *index;
    add_bucket(b);
    take_group();
    if (out.size() < count) {
      for (std::size_t i = b + 1; i < kBucketCount; ++i) add_bucket(i);
      take_group();
    }
    for (std::size_t i = b; i-- > 0 && out.size() < count;) {
      add_bucket(i);
      take_group();
    }
  } else {
    // target == self: distance order is exactly descending bucket depth.
    for (std::size_t i = kBucketCount; i-- > 0 && out.size() < count;) {
      add_bucket(i);
      take_group();
    }
  }
  return out;
}

std::size_t RoutingTable::deepest_bucket() const noexcept {
  for (std::size_t i = kBucketCount; i-- > 0;) {
    if (!buckets_[i].empty()) return i;
  }
  return 0;
}

std::vector<PeerId> RoutingTable::all_peers() const {
  std::vector<PeerId> peers;
  peers.reserve(size_);
  for (const auto& bucket : buckets_) {
    for (const BucketEntry& entry : bucket) peers.push_back(entry.peer);
  }
  return peers;
}

}  // namespace ipfs::dht
