#include "dht/routing_table.hpp"

#include <algorithm>

namespace ipfs::dht {

bool closer_to(const PeerId& target, const PeerId& a, const PeerId& b) noexcept {
  const PeerId da = a ^ target;
  const PeerId db = b ^ target;
  return da < db;  // lexicographic word compare == big-endian numeric compare
}

std::optional<std::size_t> bucket_index(const PeerId& self, const PeerId& peer) noexcept {
  const PeerId d = self ^ peer;
  if (d.is_zero()) return std::nullopt;
  const std::size_t common_prefix = d.leading_zero_bits();
  return std::min(common_prefix, RoutingTable::kBucketCount - 1);
}

bool RoutingTable::add(const PeerId& peer, common::SimTime now) {
  const auto index = bucket_index(self_, peer);
  if (!index) return false;
  auto& bucket = buckets_[*index];
  for (BucketEntry& entry : bucket) {
    if (entry.peer == peer) {
      entry.last_seen = now;
      return true;
    }
  }
  if (bucket.size() >= kBucketSize) return false;
  bucket.push_back({peer, now});
  ++size_;
  return true;
}

bool RoutingTable::remove(const PeerId& peer) {
  const auto index = bucket_index(self_, peer);
  if (!index) return false;
  auto& bucket = buckets_[*index];
  const auto it = std::find_if(bucket.begin(), bucket.end(),
                               [&](const BucketEntry& e) { return e.peer == peer; });
  if (it == bucket.end()) return false;
  bucket.erase(it);
  --size_;
  return true;
}

bool RoutingTable::contains(const PeerId& peer) const {
  const auto index = bucket_index(self_, peer);
  if (!index) return false;
  const auto& bucket = buckets_[*index];
  return std::any_of(bucket.begin(), bucket.end(),
                     [&](const BucketEntry& e) { return e.peer == peer; });
}

std::vector<PeerId> RoutingTable::closest(const PeerId& target,
                                          std::size_t count) const {
  std::vector<PeerId> peers = all_peers();
  std::sort(peers.begin(), peers.end(), [&](const PeerId& a, const PeerId& b) {
    return closer_to(target, a, b);
  });
  if (peers.size() > count) peers.resize(count);
  return peers;
}

std::size_t RoutingTable::deepest_bucket() const noexcept {
  for (std::size_t i = kBucketCount; i-- > 0;) {
    if (!buckets_[i].empty()) return i;
  }
  return 0;
}

std::vector<PeerId> RoutingTable::all_peers() const {
  std::vector<PeerId> peers;
  peers.reserve(size_);
  for (const auto& bucket : buckets_) {
    for (const BucketEntry& entry : bucket) peers.push_back(entry.peer);
  }
  return peers;
}

}  // namespace ipfs::dht
