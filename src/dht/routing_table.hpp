// Kademlia routing table (k-buckets over the 256-bit XOR metric).
//
// go-ipfs peers that announce /ipfs/kad/1.0.0 participate in this structure
// as DHT servers; the crawler baseline (§III-C) walks it, and the
// measurement node's position in it determines which peers seek connections
// to the node (§III-A).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/sim_time.hpp"
#include "p2p/peer_id.hpp"

namespace ipfs::dht {

using p2p::PeerId;

/// XOR distance comparison: is `a` strictly closer to `target` than `b`?
[[nodiscard]] bool closer_to(const PeerId& target, const PeerId& a, const PeerId& b) noexcept;

/// Bucket index of `peer` relative to `self`: the length of the common
/// prefix (0..255); `self` itself has no bucket.
[[nodiscard]] std::optional<std::size_t> bucket_index(const PeerId& self,
                                                      const PeerId& peer) noexcept;

/// k-bucket routing table.
class RoutingTable {
 public:
  static constexpr std::size_t kBucketSize = 20;  ///< Kademlia k
  static constexpr std::size_t kBucketCount = 256;

  explicit RoutingTable(PeerId self) : self_(self) {}

  [[nodiscard]] const PeerId& self() const noexcept { return self_; }

  /// Try to insert a peer.  Returns true when inserted or refreshed; false
  /// when the bucket is full (classic Kademlia drops the newcomer — the
  /// long-lived bucket head stays, which is why stable peers accumulate
  /// inbound connections).
  bool add(const PeerId& peer, common::SimTime now);

  /// Remove a peer (connection lost / probe failed).
  bool remove(const PeerId& peer);

  [[nodiscard]] bool contains(const PeerId& peer) const;

  /// Up to `count` peers closest to `target`, ascending by XOR distance.
  /// Walks buckets outward from the target's bucket and selects per
  /// distance-group with nth_element — O(g log g) in the few entries
  /// actually examined, not O(n log n) in the table (DESIGN.md §7).
  [[nodiscard]] std::vector<PeerId> closest(const PeerId& target,
                                            std::size_t count) const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Index of the deepest non-empty bucket (for refresh scheduling).
  [[nodiscard]] std::size_t deepest_bucket() const noexcept;

  /// All peers currently in the table.
  [[nodiscard]] std::vector<PeerId> all_peers() const;

 private:
  struct BucketEntry {
    PeerId peer;
    common::SimTime last_seen = 0;
  };

  PeerId self_;
  std::vector<BucketEntry> buckets_[kBucketCount];
  std::size_t size_ = 0;
};

}  // namespace ipfs::dht
