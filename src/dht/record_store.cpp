#include "dht/record_store.hpp"

#include <algorithm>

namespace ipfs::dht {

void RecordStore::put(const RecordKey& key, const p2p::PeerId& provider,
                      common::SimTime now, common::SimDuration ttl) {
  auto& providers = records_[key];
  for (ProviderRecord& record : providers) {
    if (record.provider == provider) {
      record.expires = now + ttl;
      return;
    }
  }
  providers.push_back({provider, now + ttl});
  ++record_count_;
}

std::vector<p2p::PeerId> RecordStore::get(const RecordKey& key,
                                          common::SimTime now) const {
  std::vector<p2p::PeerId> result;
  const auto it = records_.find(key);
  if (it == records_.end()) return result;
  for (const ProviderRecord& record : it->second) {
    if (record.expires > now) result.push_back(record.provider);
  }
  return result;
}

std::size_t RecordStore::sweep(common::SimTime now) {
  std::size_t removed = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    auto& providers = it->second;
    const auto new_end =
        std::remove_if(providers.begin(), providers.end(),
                       [now](const ProviderRecord& r) { return r.expires <= now; });
    removed += static_cast<std::size_t>(providers.end() - new_end);
    providers.erase(new_end, providers.end());
    if (providers.empty()) {
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
  record_count_ -= removed;
  return removed;
}

}  // namespace ipfs::dht
