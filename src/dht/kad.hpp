// Kademlia DHT engine: FIND_NODE request handling and iterative lookups.
//
// A node in *server* mode announces /ipfs/kad/1.0.0, answers FIND_NODE and
// appears in other peers' routing tables; a *client* only issues queries.
// The paper's role-flapping observation (§IV-B: peers toggling their kad
// announcement 68'396 times) maps to `set_mode` calls here.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dht/routing_table.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace ipfs::dht {

/// DHT participation mode.
enum class Mode : std::uint8_t { kServer, kClient };

/// FIND_NODE RPC bodies carried in net::Message::body.
struct FindNodeRequest {
  PeerId target;
  std::uint64_t request_id = 0;
};

struct FindNodeResponse {
  std::uint64_t request_id = 0;
  std::vector<PeerId> closer_peers;
};

/// Result of an iterative lookup.
struct LookupResult {
  std::vector<PeerId> closest;      ///< up to k peers, ascending distance
  std::size_t queried_count = 0;    ///< distinct peers queried
  bool converged = false;           ///< false if aborted (no progress/peers)
};

/// Kademlia query/routing engine for one node.
///
/// The engine does not own connections; it sends messages through the
/// network and learns peers from its host's swarm events.
class KadEngine {
 public:
  static constexpr std::size_t kAlpha = 3;       ///< lookup parallelism
  static constexpr std::size_t kReplication = 20;  ///< k closest returned
  static constexpr common::SimDuration kRequestTimeout = 10 * common::kSecond;

  KadEngine(sim::Simulation& simulation, net::Network& network, PeerId self,
            Mode mode);

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  void set_mode(Mode mode) noexcept { mode_ = mode; }
  [[nodiscard]] bool is_server() const noexcept { return mode_ == Mode::kServer; }

  [[nodiscard]] RoutingTable& routing_table() noexcept { return table_; }
  [[nodiscard]] const RoutingTable& routing_table() const noexcept { return table_; }

  /// Feed a peer discovered via any channel (connection opened, lookup
  /// response).  Only peers known to run kad in server mode belong in the
  /// table; the caller performs that check.
  void observe_peer(const PeerId& peer);

  /// Drop a peer (disconnected and unreachable).
  void forget_peer(const PeerId& peer);

  /// Handle an inbound kad message; returns true when consumed.
  bool handle_message(const PeerId& from, const net::Message& message);

  /// Iterative FIND_NODE toward `target`; `done` fires once with the result.
  void lookup(const PeerId& target, std::function<void(LookupResult)> done);

  /// Kick off a routing-table refresh: a self-lookup plus one random lookup
  /// per non-empty bucket prefix (cheap approximation of go-libp2p's
  /// refresh manager).
  void refresh();

  [[nodiscard]] std::uint64_t queries_served() const noexcept {
    return queries_served_;
  }

 private:
  struct LookupState {
    PeerId target;
    std::function<void(LookupResult)> done;
    /// Peers already queried or in flight.
    std::unordered_set<PeerId> contacted;
    /// Candidate frontier, kept sorted ascending by distance to target
    /// (sorted insertion on response; never re-sorted wholesale).
    std::vector<PeerId> frontier;
    /// Membership index over `frontier` — O(1) dedup of response peers.
    std::unordered_set<PeerId> in_frontier;
    std::size_t in_flight = 0;
    std::size_t queried = 0;
    bool finished = false;
  };

  void send_find_node(std::uint64_t lookup_id, const PeerId& to);
  void advance_lookup(std::uint64_t lookup_id);
  void finish_lookup(std::uint64_t lookup_id, bool converged);
  void on_response(std::uint64_t lookup_id, const PeerId& from,
                   const FindNodeResponse& response);

  sim::Simulation& simulation_;
  net::Network& network_;
  PeerId self_;
  Mode mode_;
  RoutingTable table_;
  std::unordered_map<std::uint64_t, LookupState> lookups_;
  /// request_id -> (lookup_id, peer); outstanding FIND_NODE RPCs.
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, PeerId>> pending_;
  std::uint64_t next_lookup_id_ = 1;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t queries_served_ = 0;
};

}  // namespace ipfs::dht
