// Bitswap protocol surface.
//
// The paper does not analyse Bitswap content exchange, but it *does* use
// the /ipfs/bitswap/* announcements to fingerprint peers (§IV-B: 7'498
// alleged go-ipfs v0.8.0 clients announcing /sbptp/1.0.0 instead of
// Bitswap unmasked as storm botnet nodes).  This engine implements the
// want-list / block message flow so examples and tests can exercise a real
// exchange, and so nodes have an authentic protocol announcement.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/network.hpp"
#include "p2p/peer_id.hpp"

namespace ipfs::bitswap {

/// A content identifier (CID); same 256-bit space as peer ids.
using Cid = p2p::PeerId;

/// One want-list entry.
struct WantEntry {
  Cid cid;
  bool cancel = false;
  /// want-have (1.2.0 feature) vs want-block.
  bool want_have_only = false;
};

/// Bitswap message: wants plus blocks, as in the wire format.
struct BitswapMessage {
  std::vector<WantEntry> wants;
  std::vector<Cid> blocks;      ///< block payloads reduced to their CID
  std::vector<Cid> have;        ///< HAVE responses (1.2.0)
  std::vector<Cid> dont_have;   ///< DONT_HAVE responses (1.2.0)
};

/// Per-peer exchange accounting (go-bitswap's ledger).
struct Ledger {
  std::uint64_t blocks_sent = 0;
  std::uint64_t blocks_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

/// Minimal but functional Bitswap engine for one node.
class BitswapEngine {
 public:
  static constexpr std::uint64_t kBlockSize = 262144;  ///< default 256 KiB

  BitswapEngine(net::Network& network, p2p::PeerId self)
      : network_(network), self_(self) {}

  /// Add a block to the local store (we can now serve it).
  void add_block(const Cid& cid) { store_.insert(cid); }
  /// Drop a block from the local store (replacement-cache eviction);
  /// true when it was present.
  bool remove_block(const Cid& cid) { return store_.erase(cid) > 0; }
  [[nodiscard]] bool has_block(const Cid& cid) const { return store_.contains(cid); }
  [[nodiscard]] std::size_t store_size() const noexcept { return store_.size(); }

  /// Request a block from a connected peer; `on_block` fires when it
  /// arrives (never fires if the peer lacks it or disconnects).
  void want_block(const p2p::PeerId& from, const Cid& cid,
                  std::function<void(const Cid&)> on_block);

  /// Drop every pending want addressed to `peer`.  Call when the session
  /// to a serving peer closes: without this, `wanted_` entries for
  /// never-answered wants pile up forever under churn.  The dropped
  /// callbacks are destroyed without firing.
  void cancel_wants(const p2p::PeerId& peer);

  /// Handle an inbound /ipfs/bitswap message; true when consumed.
  bool handle_message(const p2p::PeerId& from, const net::Message& message);

  [[nodiscard]] const Ledger* ledger_for(const p2p::PeerId& peer) const;
  [[nodiscard]] std::size_t pending_wants() const noexcept { return wanted_.size(); }

 private:
  /// One outstanding `want_block`, remembered with the peer it was sent
  /// to so disconnects can cancel exactly their own wants.
  struct PendingWant {
    p2p::PeerId peer;
    std::function<void(const Cid&)> callback;
  };

  void send(const p2p::PeerId& to, BitswapMessage message);

  net::Network& network_;
  p2p::PeerId self_;
  std::unordered_set<Cid> store_;
  std::unordered_map<Cid, std::vector<PendingWant>> wanted_;
  std::unordered_map<p2p::PeerId, Ledger> ledgers_;
};

}  // namespace ipfs::bitswap
