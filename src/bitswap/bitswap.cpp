#include "bitswap/bitswap.hpp"

#include <iterator>

#include "p2p/protocols.hpp"

namespace ipfs::bitswap {

void BitswapEngine::want_block(const p2p::PeerId& from, const Cid& cid,
                               std::function<void(const Cid&)> on_block) {
  wanted_[cid].push_back({from, std::move(on_block)});
  BitswapMessage message;
  message.wants.push_back({cid, /*cancel=*/false, /*want_have_only=*/false});
  send(from, std::move(message));
}

void BitswapEngine::cancel_wants(const p2p::PeerId& peer) {
  for (auto it = wanted_.begin(); it != wanted_.end();) {
    std::erase_if(it->second,
                  [&peer](const PendingWant& want) { return want.peer == peer; });
    it = it->second.empty() ? wanted_.erase(it) : std::next(it);
  }
}

bool BitswapEngine::handle_message(const p2p::PeerId& from,
                                   const net::Message& envelope) {
  if (!p2p::protocols::is_bitswap(envelope.protocol)) return false;
  const auto* message = std::any_cast<BitswapMessage>(&envelope.body);
  if (message == nullptr) return true;

  Ledger& ledger = ledgers_[from];

  // Serve wants we can satisfy; answer want-have probes either way.
  BitswapMessage reply;
  for (const WantEntry& want : message->wants) {
    if (want.cancel) continue;
    if (store_.contains(want.cid)) {
      if (want.want_have_only) {
        reply.have.push_back(want.cid);
      } else {
        reply.blocks.push_back(want.cid);
        ++ledger.blocks_sent;
        ledger.bytes_sent += kBlockSize;
      }
    } else {
      reply.dont_have.push_back(want.cid);
    }
  }

  // Accept blocks we asked for.
  for (const Cid& block : message->blocks) {
    const auto it = wanted_.find(block);
    if (it == wanted_.end()) continue;  // unsolicited block: drop
    ++ledger.blocks_received;
    ledger.bytes_received += kBlockSize;
    store_.insert(block);
    auto pending = std::move(it->second);
    wanted_.erase(it);
    for (PendingWant& want : pending) {
      if (want.callback) want.callback(block);
    }
  }

  if (!reply.blocks.empty() || !reply.have.empty() || !reply.dont_have.empty()) {
    send(from, std::move(reply));
  }
  return true;
}

const Ledger* BitswapEngine::ledger_for(const p2p::PeerId& peer) const {
  const auto it = ledgers_.find(peer);
  return it == ledgers_.end() ? nullptr : &it->second;
}

void BitswapEngine::send(const p2p::PeerId& to, BitswapMessage message) {
  net::Message envelope;
  envelope.protocol = std::string(p2p::protocols::kBitswap120);
  envelope.body = std::move(message);
  network_.send(self_, to, std::move(envelope));
}

}  // namespace ipfs::bitswap
