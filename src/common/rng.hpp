// Deterministic random number generation for the simulator.
//
// All randomness in the library flows from a single 64-bit seed through a
// tree of `Rng` instances (see DESIGN.md §5).  The generator is
// xoshiro256**, seeded via splitmix64, both public-domain algorithms by
// Blackman & Vigna.  We deliberately do not use <random> engines for the
// core generator so that results are bit-identical across standard library
// implementations; <random>-style distributions are re-implemented here in
// a portable way.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace ipfs::common {

/// splitmix64 step; used for seeding and for cheap hash mixing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mix two 64-bit values into one (for deriving child seeds).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Satisfies std::uniform_random_bit_generator, so it can also be used with
/// standard algorithms where portability of the *distribution* does not
/// matter (e.g. std::shuffle in tests).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xda3e39cb94b95bdbULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child generator; `label` keeps sibling children
  /// decorrelated even when created in different orders.
  [[nodiscard]] Rng child(std::uint64_t label) noexcept {
    return Rng(mix64((*this)(), label));
  }

  /// Uniform integer in [0, bound), bound > 0.  Lemire's method without the
  /// rejection refinement is fine for simulation purposes.
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t bound) noexcept {
    // 128-bit multiply-shift maps the 64-bit output to [0, bound).
    const unsigned __int128 product =
        static_cast<unsigned __int128>((*this)()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_u64(span));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponential with the given mean (= 1/rate).
  [[nodiscard]] double exponential(double mean) noexcept {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Log-normal parameterised by the underlying normal's mu/sigma.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept {
    return std::exp(mu + sigma * normal());
  }

  /// Standard normal via Box–Muller (single value; we keep it stateless and
  /// discard the pair's twin for determinism-by-construction).
  [[nodiscard]] double normal() noexcept {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Pareto (Lomax-shifted) with scale x_m > 0 and shape alpha > 0; heavy
  /// tails model peer session durations (see scenario/population_spec).
  [[nodiscard]] double pareto(double x_m, double alpha) noexcept {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return x_m / std::pow(u, 1.0 / alpha);
  }

  /// Index drawn according to non-negative weights (at least one positive).
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// Choose k distinct indices out of n (k <= n), in selection order.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                                    std::size_t k) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Stable 64-bit hash of a string (FNV-1a); used for deriving per-name seeds.
[[nodiscard]] std::uint64_t hash64(std::string_view text) noexcept;

}  // namespace ipfs::common
