// Minimal streaming JSON writer.  The paper's measurement clients export
// their records periodically to JSON files; `measure::Dataset` uses this
// writer for the same purpose.  Writing is streaming (no DOM) so multi-day
// campaign exports stay O(1) in memory.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ipfs::common {

/// Streaming JSON writer with explicit begin/end nesting.
///
/// Usage:
///   JsonWriter w(stream);
///   w.begin_object();
///   w.key("peers"); w.begin_array();
///   ...
///   w.end_array();
///   w.end_object();
///
/// The writer validates nesting depth in debug builds via assertions; it is
/// the caller's responsibility to alternate key()/value in objects.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, bool pretty = false)
      : out_(out), pretty_(pretty) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(bool b);
  void value(std::int64_t n);
  void value(std::uint64_t n);
  void value(int n) { value(static_cast<std::int64_t>(n)); }
  void value(double d);
  void null();

  /// Convenience: key + scalar value in one call.
  template <typename T>
  void field(std::string_view name, T&& v) {
    key(name);
    value(std::forward<T>(v));
  }

  /// Escape a string per RFC 8259 (quotes not included).
  [[nodiscard]] static std::string escape(std::string_view text);

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void separator();
  void newline_indent();

  std::ostream& out_;
  bool pretty_ = false;
  bool need_comma_ = false;
  bool after_key_ = false;
  std::vector<Scope> scopes_;
};

}  // namespace ipfs::common
