// Minimal JSON support: a streaming writer and a small DOM parser.
//
// The paper's measurement clients export their records periodically to JSON
// files; `measure::Dataset` uses the writer for the same purpose.  Writing
// is streaming (no DOM) so multi-day campaign exports stay O(1) in memory.
// Reading is DOM-based (`JsonValue::parse`): configuration inputs such as
// `scenario::ScenarioSpec` files are tiny, and a DOM makes validation
// errors precise ("period.duration_ms: expected a number").
#pragma once

#include <cstdint>
#include <expected>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace ipfs::common {

/// Streaming JSON writer with explicit begin/end nesting.
///
/// Usage:
///   JsonWriter w(stream);
///   w.begin_object();
///   w.key("peers"); w.begin_array();
///   ...
///   w.end_array();
///   w.end_object();
///
/// The writer validates nesting depth in debug builds via assertions; it is
/// the caller's responsibility to alternate key()/value in objects.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, bool pretty = false)
      : out_(out), pretty_(pretty) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(bool b);
  void value(std::int64_t n);
  void value(std::uint64_t n);
  void value(int n) { value(static_cast<std::int64_t>(n)); }
  void value(double d);
  void null();

  /// Convenience: key + scalar value in one call.
  template <typename T>
  void field(std::string_view name, T&& v) {
    key(name);
    value(std::forward<T>(v));
  }

  /// Escape a string per RFC 8259 (quotes not included).
  [[nodiscard]] static std::string escape(std::string_view text);

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void separator();
  void newline_indent();

  std::ostream& out_;
  bool pretty_ = false;
  bool need_comma_ = false;
  bool after_key_ = false;
  std::vector<Scope> scopes_;
};

/// A parsed JSON document (RFC 8259 subset: no duplicate-key policy beyond
/// first-wins, no \uXXXX surrogate pairs outside the BMP).
///
/// Numbers remember whether their lexical form was integral so that 64-bit
/// seeds survive a parse → write round trip without drifting through a
/// double.  Object member order is preserved (needed for byte-exact
/// re-serialisation of scenario files).
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;  // null

  /// Parse a complete document.  Errors carry a 1-based line:column prefix,
  /// e.g. "3:17: expected ':' after object key".
  [[nodiscard]] static std::expected<JsonValue, std::string> parse(
      std::string_view text);

  [[nodiscard]] Type type() const noexcept;
  [[nodiscard]] std::string_view type_name() const noexcept;

  [[nodiscard]] bool is_null() const noexcept { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type() == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return type() == Type::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type() == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type() == Type::kObject; }

  // Typed accessors; callers check the type first (asserted in debug).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Integral view of a number: engaged only when the lexical form was an
  /// integer that fits the destination type exactly.
  [[nodiscard]] std::optional<std::int64_t> as_int64() const;
  [[nodiscard]] std::optional<std::uint64_t> as_uint64() const;
  /// True when the number was written without '.' or exponent.
  [[nodiscard]] bool is_integer() const noexcept;

  /// Object member lookup (first match), nullptr when absent or not an
  /// object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  // Construction helpers (tests and programmatic building).
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_integer(std::int64_t n);
  static JsonValue make_unsigned(std::uint64_t n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(Array a);
  static JsonValue make_object(Object o);

 private:
  struct Number {
    double value = 0.0;
    bool integral = false;        ///< lexical form had no '.'/exponent
    bool negative = false;        ///< lexical form began with '-'
    std::uint64_t magnitude = 0;  ///< |value| when integral and in range
  };

  std::variant<std::monostate, bool, Number, std::string, Array, Object> node_;
};

}  // namespace ipfs::common
