#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ipfs::common {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  const double m = mean();
  const double v = sum_sq_ / static_cast<double>(count_) - m * m;
  return v < 0.0 ? 0.0 : v;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double median(std::vector<double> samples) { return quantile(std::move(samples), 0.5); }

double quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double position = q * static_cast<double>(samples.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= samples.size()) return samples.back();
  return samples[lower] * (1.0 - fraction) + samples[lower + 1] * fraction;
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::fraction_at_most(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Cdf::value_at_fraction(double fraction) const noexcept {
  if (sorted_.empty()) return 0.0;
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto index = static_cast<std::size_t>(
      fraction * static_cast<double>(sorted_.size() - 1) + 0.5);
  return sorted_[std::min(index, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> Cdf::log_spaced_points(
    double x_min, double x_max, std::size_t point_count) const {
  std::vector<std::pair<double, double>> points;
  if (point_count < 2 || x_min <= 0.0 || x_max <= x_min) return points;
  points.reserve(point_count);
  const double log_min = std::log10(x_min);
  const double log_max = std::log10(x_max);
  for (std::size_t i = 0; i < point_count; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(point_count - 1);
    const double x = std::pow(10.0, log_min + t * (log_max - log_min));
    points.emplace_back(x, fraction_at_most(x));
  }
  return points;
}

void MinMaxBand::add(std::size_t low_candidate, std::size_t high_candidate) noexcept {
  if (count_ == 0) {
    low_ = low_candidate;
    high_ = high_candidate;
  } else {
    low_ = std::min(low_, low_candidate);
    high_ = std::max(high_, high_candidate);
  }
  ++count_;
}

void CountedHistogram::add(const std::string& key, std::uint64_t weight) {
  counts_[key] += weight;
  total_ += weight;
}

std::uint64_t CountedHistogram::count(const std::string& key) const noexcept {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> CountedHistogram::top_with_other(
    std::uint64_t group_threshold) const {
  std::vector<std::pair<std::string, std::uint64_t>> rows;
  std::uint64_t other = 0;
  for (const auto& [key, count] : counts_) {
    if (count <= group_threshold) {
      other += count;
    } else {
      rows.emplace_back(key, count);
    }
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (other > 0) rows.emplace_back("other", other);
  return rows;
}

namespace {
std::string with_thousands_impl(std::uint64_t magnitude, bool negative) {
  std::string digits = std::to_string(magnitude);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) out.push_back('\'');
    out.push_back(digits[i]);
  }
  return negative ? "-" + out : out;
}
}  // namespace

std::string with_thousands(std::uint64_t value) {
  return with_thousands_impl(value, false);
}

std::string with_thousands(std::int64_t value) {
  const bool negative = value < 0;
  const auto magnitude =
      negative ? static_cast<std::uint64_t>(-(value + 1)) + 1 : static_cast<std::uint64_t>(value);
  return with_thousands_impl(magnitude, negative);
}

}  // namespace ipfs::common
