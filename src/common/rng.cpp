#include "common/rng.hpp"

#include <numeric>

namespace ipfs::common {

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0 || weights.empty()) return 0;
  double point = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    point -= weights[i];
    if (point < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) noexcept {
  if (k > n) k = n;
  // Floyd's algorithm: O(k) expected draws, no O(n) scratch when k << n.
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(uniform_u64(j + 1));
    bool seen = false;
    for (std::size_t c : chosen) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    chosen.push_back(seen ? j : t);
  }
  return chosen;
}

std::uint64_t hash64(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace ipfs::common
