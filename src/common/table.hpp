// ASCII table rendering for the benchmark harnesses.  Every bench binary
// prints the rows of the paper table/figure it regenerates; this printer
// keeps their output uniform.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ipfs::common {

/// Column-aligned ASCII table with a title, header row and footer rule.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header) { header_ = std::move(header); }
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }
  /// A separator rule between row groups (e.g. go-ipfs vs hydra blocks).
  void add_rule() { rows_.push_back({}); }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  void print(std::ostream& out) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a unit-interval fraction as a percentage string, e.g. "53.1 %".
[[nodiscard]] std::string format_percent(double fraction);

/// Fixed-point formatting with the given number of decimals.
[[nodiscard]] std::string format_fixed(double value, int decimals);

/// An inline bar for log-scale histograms in terminal output.
[[nodiscard]] std::string log_bar(std::uint64_t count, std::uint64_t max_count,
                                  std::size_t width);

}  // namespace ipfs::common
