#include "common/parse.hpp"

#include <charconv>
#include <cmath>
#include <system_error>

namespace ipfs::common {

namespace {

std::string quoted(std::string_view text) {
  return "'" + std::string(text) + "'";
}

}  // namespace

std::expected<std::uint64_t, std::string> parse_u64(std::string_view text) {
  if (text.empty()) return std::unexpected("expected a number, got ''");
  if (text.front() == '+' || text.front() == '-') {
    // from_chars would reject '-' anyway, but with the same generic error
    // as garbage; name the actual problem.
    return std::unexpected("must be a non-negative integer, got " +
                           quoted(text));
  }
  std::uint64_t value = 0;
  const char* const first = text.data();
  const char* const last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range) {
    return std::unexpected("out of range: " + quoted(text));
  }
  if (ec != std::errc() || ptr == first) {
    return std::unexpected("expected a number, got " + quoted(text));
  }
  if (ptr != last) {
    return std::unexpected("trailing characters after number: " + quoted(text));
  }
  return value;
}

std::expected<double, std::string> parse_finite_double(std::string_view text) {
  if (text.empty()) return std::unexpected("expected a number, got ''");
  double value = 0.0;
  const char* const first = text.data();
  const char* const last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range) {
    return std::unexpected("out of range: " + quoted(text));
  }
  if (ec != std::errc() || ptr == first) {
    return std::unexpected("expected a number, got " + quoted(text));
  }
  if (ptr != last) {
    return std::unexpected("trailing characters after number: " + quoted(text));
  }
  if (!std::isfinite(value)) {
    // from_chars accepts "inf"/"nan" spellings; a CLI option never wants
    // them.
    return std::unexpected("must be finite, got " + quoted(text));
  }
  return value;
}

}  // namespace ipfs::common
