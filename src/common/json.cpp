#include "common/json.hpp"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace ipfs::common {

void JsonWriter::begin_object() {
  separator();
  out_ << '{';
  scopes_.push_back(Scope::kObject);
  need_comma_ = false;
}

void JsonWriter::end_object() {
  assert(!scopes_.empty() && scopes_.back() == Scope::kObject);
  scopes_.pop_back();
  if (pretty_) newline_indent();
  out_ << '}';
  need_comma_ = true;
}

void JsonWriter::begin_array() {
  separator();
  out_ << '[';
  scopes_.push_back(Scope::kArray);
  need_comma_ = false;
}

void JsonWriter::end_array() {
  assert(!scopes_.empty() && scopes_.back() == Scope::kArray);
  scopes_.pop_back();
  if (pretty_) newline_indent();
  out_ << ']';
  need_comma_ = true;
}

void JsonWriter::key(std::string_view name) {
  assert(!scopes_.empty() && scopes_.back() == Scope::kObject);
  if (need_comma_) out_ << ',';
  if (pretty_) newline_indent();
  out_ << '"' << escape(name) << "\":";
  if (pretty_) out_ << ' ';
  need_comma_ = false;
  after_key_ = true;
}

void JsonWriter::separator() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_) out_ << ',';
  if (pretty_ && !scopes_.empty() && scopes_.back() == Scope::kArray) newline_indent();
}

void JsonWriter::newline_indent() {
  out_ << '\n';
  for (std::size_t i = 0; i < scopes_.size(); ++i) out_ << "  ";
}

void JsonWriter::value(std::string_view text) {
  separator();
  out_ << '"' << escape(text) << '"';
  need_comma_ = true;
}

void JsonWriter::value(bool b) {
  separator();
  out_ << (b ? "true" : "false");
  need_comma_ = true;
}

void JsonWriter::value(std::int64_t n) {
  separator();
  out_ << n;
  need_comma_ = true;
}

void JsonWriter::value(std::uint64_t n) {
  separator();
  out_ << n;
  need_comma_ = true;
}

void JsonWriter::value(double d) {
  separator();
  if (std::isfinite(d)) {
    // Shortest decimal form that parses back to exactly `d`, so that
    // write → parse → write is the identity (scenario files depend on it).
    char buffer[32];
    for (int precision = 6; precision <= 17; ++precision) {
      std::snprintf(buffer, sizeof(buffer), "%.*g", precision, d);
      if (std::strtod(buffer, nullptr) == d) break;
    }
    out_ << buffer;
  } else {
    out_ << "null";  // JSON has no NaN/Inf
  }
  need_comma_ = true;
}

void JsonWriter::null() {
  separator();
  out_ << "null";
  need_comma_ = true;
}

// ---- JsonValue --------------------------------------------------------------

namespace {

/// Recursive-descent parser over a string_view with line:column tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::expected<JsonValue, std::string> run() {
    skip_whitespace();
    auto value = parse_value();
    if (!value) return value;
    skip_whitespace();
    if (pos_ != text_.size()) return fail("trailing content after document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[nodiscard]] std::unexpected<std::string> fail(std::string message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    return std::unexpected(std::to_string(line) + ":" + std::to_string(column) +
                           ": " + std::move(message));
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::expected<JsonValue, std::string> parse_value() {
    if (at_end()) return fail("unexpected end of input");
    if (depth_ > kMaxDepth) return fail("nesting deeper than 128 levels");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto text = parse_string();
        if (!text) return std::unexpected(std::move(text).error());
        return JsonValue::make_string(std::move(*text));
      }
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        return fail("invalid literal (expected 'true')");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        return fail("invalid literal (expected 'false')");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        return fail("invalid literal (expected 'null')");
      default: return parse_number();
    }
  }

  std::expected<JsonValue, std::string> parse_object() {
    ++pos_;  // '{'
    ++depth_;
    JsonValue::Object members;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      --depth_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      if (at_end() || peek() != '"') return fail("expected '\"' to start object key");
      auto key = parse_string();
      if (!key) return std::unexpected(std::move(key).error());
      skip_whitespace();
      if (at_end() || peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      skip_whitespace();
      auto value = parse_value();
      if (!value) return value;
      members.emplace_back(std::move(*key), std::move(*value));
      skip_whitespace();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return JsonValue::make_object(std::move(members));
      }
      return fail("expected ',' or '}' in object");
    }
  }

  std::expected<JsonValue, std::string> parse_array() {
    ++pos_;  // '['
    ++depth_;
    JsonValue::Array elements;
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      ++pos_;
      --depth_;
      return JsonValue::make_array(std::move(elements));
    }
    while (true) {
      skip_whitespace();
      auto value = parse_value();
      if (!value) return value;
      elements.push_back(std::move(*value));
      skip_whitespace();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return JsonValue::make_array(std::move(elements));
      }
      return fail("expected ',' or ']' in array");
    }
  }

  std::expected<std::string, std::string> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (at_end()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) return fail("unterminated escape sequence");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("invalid hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // scenario files are ASCII in practice).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: return fail("invalid escape character");
      }
    }
  }

  std::expected<JsonValue, std::string> parse_number() {
    const std::size_t start = pos_;
    bool integral = true;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      pos_ = start;
      return fail("invalid value");
    }
    const std::size_t int_part = pos_;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (text_[int_part] == '0' && pos_ - int_part > 1) {
      return fail("leading zeros are not allowed");  // RFC 8259
    }
    if (!at_end() && peek() == '.') {
      integral = false;
      ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit expected after decimal point");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit expected in exponent");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string lexeme(text_.substr(start, pos_ - start));
    if (integral) {
      const bool negative = lexeme[0] == '-';
      errno = 0;
      char* end = nullptr;
      const std::uint64_t magnitude =
          std::strtoull(negative ? lexeme.c_str() + 1 : lexeme.c_str(), &end, 10);
      const auto int64_min_magnitude =
          static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()) + 1;
      if (errno == 0 && end != nullptr && *end == '\0') {
        if (!negative) return JsonValue::make_unsigned(magnitude);
        if (magnitude <= int64_min_magnitude) {
          return JsonValue::make_integer(
              magnitude == int64_min_magnitude
                  ? std::numeric_limits<std::int64_t>::min()
                  : -static_cast<std::int64_t>(magnitude));
        }
      }
      // Out-of-range integers fall back to double semantics.
    }
    const double parsed = std::strtod(lexeme.c_str(), nullptr);
    return JsonValue::make_number(parsed);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue::Type JsonValue::type() const noexcept {
  switch (node_.index()) {
    case 0: return Type::kNull;
    case 1: return Type::kBool;
    case 2: return Type::kNumber;
    case 3: return Type::kString;
    case 4: return Type::kArray;
    default: return Type::kObject;
  }
}

std::string_view JsonValue::type_name() const noexcept {
  switch (type()) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

bool JsonValue::as_bool() const {
  assert(is_bool());
  return std::get<bool>(node_);
}

double JsonValue::as_double() const {
  assert(is_number());
  return std::get<Number>(node_).value;
}

const std::string& JsonValue::as_string() const {
  assert(is_string());
  return std::get<std::string>(node_);
}

const JsonValue::Array& JsonValue::as_array() const {
  assert(is_array());
  return std::get<Array>(node_);
}

const JsonValue::Object& JsonValue::as_object() const {
  assert(is_object());
  return std::get<Object>(node_);
}

bool JsonValue::is_integer() const noexcept {
  return is_number() && std::get<Number>(node_).integral;
}

std::optional<std::int64_t> JsonValue::as_int64() const {
  if (!is_integer()) return std::nullopt;
  const Number& number = std::get<Number>(node_);
  if (number.negative) {
    const auto limit = static_cast<std::uint64_t>(
                           std::numeric_limits<std::int64_t>::max()) +
                       1;
    if (number.magnitude > limit) return std::nullopt;
    if (number.magnitude == limit) return std::numeric_limits<std::int64_t>::min();
    return -static_cast<std::int64_t>(number.magnitude);
  }
  if (number.magnitude >
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(number.magnitude);
}

std::optional<std::uint64_t> JsonValue::as_uint64() const {
  if (!is_integer()) return std::nullopt;
  const Number& number = std::get<Number>(node_);
  if (number.negative && number.magnitude != 0) return std::nullopt;
  return number.magnitude;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const Member& member : std::get<Object>(node_)) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue value;
  value.node_ = b;
  return value;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue value;
  Number number;
  number.value = d;
  value.node_ = number;
  return value;
}

JsonValue JsonValue::make_integer(std::int64_t n) {
  JsonValue value;
  Number number;
  number.value = static_cast<double>(n);
  number.integral = true;
  number.negative = n < 0;
  number.magnitude = n < 0 ? ~static_cast<std::uint64_t>(n) + 1
                           : static_cast<std::uint64_t>(n);
  value.node_ = number;
  return value;
}

JsonValue JsonValue::make_unsigned(std::uint64_t n) {
  JsonValue value;
  Number number;
  number.value = static_cast<double>(n);
  number.integral = true;
  number.negative = false;
  number.magnitude = n;
  value.node_ = number;
  return value;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue value;
  value.node_ = std::move(s);
  return value;
}

JsonValue JsonValue::make_array(Array a) {
  JsonValue value;
  value.node_ = std::move(a);
  return value;
}

JsonValue JsonValue::make_object(Object o) {
  JsonValue value;
  value.node_ = std::move(o);
  return value;
}

std::expected<JsonValue, std::string> JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace ipfs::common
