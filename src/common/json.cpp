#include "common/json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace ipfs::common {

void JsonWriter::begin_object() {
  separator();
  out_ << '{';
  scopes_.push_back(Scope::kObject);
  need_comma_ = false;
}

void JsonWriter::end_object() {
  assert(!scopes_.empty() && scopes_.back() == Scope::kObject);
  scopes_.pop_back();
  if (pretty_) newline_indent();
  out_ << '}';
  need_comma_ = true;
}

void JsonWriter::begin_array() {
  separator();
  out_ << '[';
  scopes_.push_back(Scope::kArray);
  need_comma_ = false;
}

void JsonWriter::end_array() {
  assert(!scopes_.empty() && scopes_.back() == Scope::kArray);
  scopes_.pop_back();
  if (pretty_) newline_indent();
  out_ << ']';
  need_comma_ = true;
}

void JsonWriter::key(std::string_view name) {
  assert(!scopes_.empty() && scopes_.back() == Scope::kObject);
  if (need_comma_) out_ << ',';
  if (pretty_) newline_indent();
  out_ << '"' << escape(name) << "\":";
  if (pretty_) out_ << ' ';
  need_comma_ = false;
  after_key_ = true;
}

void JsonWriter::separator() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_) out_ << ',';
  if (pretty_ && !scopes_.empty() && scopes_.back() == Scope::kArray) newline_indent();
}

void JsonWriter::newline_indent() {
  out_ << '\n';
  for (std::size_t i = 0; i < scopes_.size(); ++i) out_ << "  ";
}

void JsonWriter::value(std::string_view text) {
  separator();
  out_ << '"' << escape(text) << '"';
  need_comma_ = true;
}

void JsonWriter::value(bool b) {
  separator();
  out_ << (b ? "true" : "false");
  need_comma_ = true;
}

void JsonWriter::value(std::int64_t n) {
  separator();
  out_ << n;
  need_comma_ = true;
}

void JsonWriter::value(std::uint64_t n) {
  separator();
  out_ << n;
  need_comma_ = true;
}

void JsonWriter::value(double d) {
  separator();
  if (std::isfinite(d)) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.6g", d);
    out_ << buffer;
  } else {
    out_ << "null";  // JSON has no NaN/Inf
  }
  need_comma_ = true;
}

void JsonWriter::null() {
  separator();
  out_ << "null";
  need_comma_ = true;
}

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace ipfs::common
