// Parsing and comparison of libp2p agent-version strings.
//
// The paper (§IV-B, Table III) classifies go-ipfs agent strings such as
//   "go-ipfs/0.11.0-dev/0c2f9d5"            (main version)
//   "go-ipfs/0.11.0-dev/0c2f9d5-dirty"      (dirty version)
// into upgrades / downgrades / commit-only changes, and tracks whether each
// endpoint of a change was a main or a dirty build.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ipfs::common {

/// Semantic version with an optional pre-release tag ("0.11.0-dev").
struct SemVer {
  int major = 0;
  int minor = 0;
  int patch = 0;
  std::string prerelease;  ///< empty for a release version

  /// SemVer ordering: numeric fields first; a pre-release sorts *before*
  /// the corresponding release (0.11.0-dev < 0.11.0).
  [[nodiscard]] std::strong_ordering operator<=>(const SemVer& other) const noexcept;
  [[nodiscard]] bool operator==(const SemVer& other) const noexcept = default;

  [[nodiscard]] std::string to_string() const;

  /// Parse "MAJOR.MINOR.PATCH[-pre]"; returns nullopt on malformed input.
  [[nodiscard]] static std::optional<SemVer> parse(std::string_view text);
};

/// A decomposed agent-version string "name/version/commit".
struct AgentInfo {
  std::string raw;      ///< the full agent string as announced
  std::string name;     ///< e.g. "go-ipfs", "hydra-booster", "storm"
  std::optional<SemVer> version;
  std::string commit;   ///< commit part, may be empty
  bool dirty = false;   ///< commit carries a "-dirty" marker

  [[nodiscard]] bool is_go_ipfs() const noexcept { return name == "go-ipfs"; }

  /// Split an announced agent string on '/'.  Never fails: unparseable
  /// version parts simply leave `version` empty.
  [[nodiscard]] static AgentInfo parse(std::string_view raw);
};

/// Kind of a go-ipfs agent-version change (paper Table III, left column).
enum class VersionChangeKind : std::uint8_t {
  kNone,       ///< identical strings
  kUpgrade,    ///< version number increased
  kDowngrade,  ///< version number decreased
  kChange,     ///< same version number, different commit part
};

/// main/dirty transition of a change (paper Table III, right column).
enum class DirtyTransition : std::uint8_t {
  kMainToMain,
  kMainToDirty,
  kDirtyToMain,
  kDirtyToDirty,
};

[[nodiscard]] std::string_view to_string(VersionChangeKind kind) noexcept;
[[nodiscard]] std::string_view to_string(DirtyTransition transition) noexcept;

/// Classify a change between two parsed agent strings per the paper's
/// definitions.  Returns kNone when either side is not a comparable go-ipfs
/// version or the strings are identical.
[[nodiscard]] VersionChangeKind classify_version_change(const AgentInfo& before,
                                                        const AgentInfo& after) noexcept;

[[nodiscard]] DirtyTransition classify_dirty_transition(const AgentInfo& before,
                                                        const AgentInfo& after) noexcept;

}  // namespace ipfs::common
