#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ipfs::common {

void TextTable::print(std::ostream& out) const {
  // Compute column widths across header and all rows.
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  absorb(header_);
  for (const auto& row : rows_) absorb(row);

  std::size_t total = widths.empty() ? 0 : 3 * (widths.size() - 1);
  for (const std::size_t w : widths) total += w;

  out << title_ << '\n';
  out << std::string(std::max<std::size_t>(total, title_.size()), '=') << '\n';
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << " | ";
      out << row[i];
      const std::size_t pad = widths[i] - row[i].size();
      if (i + 1 < row.size()) out << std::string(pad, ' ');
    }
    out << '\n';
  };
  if (!header_.empty()) {
    print_row(header_);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) {
    if (row.empty()) {
      out << std::string(total, '-') << '\n';
    } else {
      print_row(row);
    }
  }
  out << std::string(total, '=') << '\n';
}

std::string format_percent(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f %%", fraction * 100.0);
  return buffer;
}

std::string format_fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string log_bar(std::uint64_t count, std::uint64_t max_count, std::size_t width) {
  if (count == 0 || max_count == 0 || width == 0) return "";
  const double ratio = std::log10(static_cast<double>(count) + 1.0) /
                       std::log10(static_cast<double>(max_count) + 1.0);
  const auto bars = static_cast<std::size_t>(
      std::ceil(ratio * static_cast<double>(width)));
  return std::string(std::clamp<std::size_t>(bars, 1, width), '#');
}

}  // namespace ipfs::common
