// Simulated time.  The entire library uses integer milliseconds since the
// start of a run; no component ever reads the wall clock (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <string>

namespace ipfs::common {

/// A point in simulated time, in milliseconds since simulation start.
using SimTime = std::int64_t;

/// A span of simulated time, in milliseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kMillisecond = 1;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;
inline constexpr SimDuration kDay = 24 * kHour;

[[nodiscard]] constexpr double to_seconds(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

[[nodiscard]] constexpr SimDuration from_seconds(double seconds) noexcept {
  return static_cast<SimDuration>(seconds * static_cast<double>(kSecond));
}

/// Render a duration as "2d 03:14:15" (days shown only when non-zero).
[[nodiscard]] std::string format_duration(SimDuration d);

/// Render a time-of-run as seconds with millisecond precision, e.g. "73.732 s".
[[nodiscard]] std::string format_seconds(SimDuration d);

}  // namespace ipfs::common
