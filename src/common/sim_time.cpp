#include "common/sim_time.hpp"

#include <cstdio>

namespace ipfs::common {

std::string format_duration(SimDuration d) {
  const bool negative = d < 0;
  if (negative) d = -d;
  const std::int64_t days = d / kDay;
  const std::int64_t hours = (d % kDay) / kHour;
  const std::int64_t minutes = (d % kHour) / kMinute;
  const std::int64_t seconds = (d % kMinute) / kSecond;
  char buffer[64];
  if (days > 0) {
    std::snprintf(buffer, sizeof(buffer), "%s%lldd %02lld:%02lld:%02lld",
                  negative ? "-" : "", static_cast<long long>(days),
                  static_cast<long long>(hours), static_cast<long long>(minutes),
                  static_cast<long long>(seconds));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%s%02lld:%02lld:%02lld", negative ? "-" : "",
                  static_cast<long long>(hours), static_cast<long long>(minutes),
                  static_cast<long long>(seconds));
  }
  return buffer;
}

std::string format_seconds(SimDuration d) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f s", to_seconds(d));
  return buffer;
}

}  // namespace ipfs::common
