// Strict numeric parsing for CLI options.
//
// `std::stod`-style parsing silently tolerates trailing garbage, rounds
// through infinities, and leaves sign policy to every call site.  These
// helpers centralise one strict contract — the whole token must parse,
// the value must be finite and in range — and return the rejection reason
// so `tools/ipfs_sim.cpp` can print "--shards: trailing characters after
// number: '4x'" instead of swallowing the suffix.
#pragma once

#include <cstdint>
#include <expected>
#include <string>
#include <string_view>

namespace ipfs::common {

/// Parse an unsigned decimal integer.  Rejects empty input, signs,
/// trailing characters, and values that overflow `std::uint64_t`.
[[nodiscard]] std::expected<std::uint64_t, std::string> parse_u64(
    std::string_view text);

/// Parse a finite decimal number.  Rejects empty input, trailing
/// characters, "inf"/"nan" spellings, and values that overflow double.
[[nodiscard]] std::expected<double, std::string> parse_finite_double(
    std::string_view text);

}  // namespace ipfs::common
