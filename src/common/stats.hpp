// Small statistics toolkit used by the analysis layer: running moments,
// order statistics, empirical CDFs and counted histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ipfs::common {

/// Incrementally accumulated first/second moments plus extrema.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Population variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Median of a sample (averages the two middle elements for even sizes).
/// The input is copied; returns 0 for an empty sample.
[[nodiscard]] double median(std::vector<double> samples);

/// q-quantile (q in [0,1]) by linear interpolation; 0 for an empty sample.
[[nodiscard]] double quantile(std::vector<double> samples, double q);

/// Empirical cumulative distribution function over a sample.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  /// Fraction of samples <= x.
  [[nodiscard]] double fraction_at_most(double x) const noexcept;

  /// Value at the given cumulative fraction (inverse CDF).
  [[nodiscard]] double value_at_fraction(double fraction) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] const std::vector<double>& sorted_samples() const noexcept {
    return sorted_;
  }

  /// Sample the CDF at logarithmically spaced x values (for log-x plots such
  /// as the paper's Fig. 7); returns (x, F(x)) pairs.
  [[nodiscard]] std::vector<std::pair<double, double>> log_spaced_points(
      double x_min, double x_max, std::size_t point_count) const;

 private:
  std::vector<double> sorted_;
};

/// Accumulates the min/max band the paper plots in Fig. 2: the smallest
/// low-candidate and the largest high-candidate over a series of
/// observations (e.g. reached servers vs learned PIDs per crawl).
class MinMaxBand {
 public:
  /// Fold one observation into the band.  `low_candidate` competes for the
  /// band's minimum, `high_candidate` for its maximum; pass the same value
  /// twice to track a single series.
  void add(std::size_t low_candidate, std::size_t high_candidate) noexcept;

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t low() const noexcept { return count_ == 0 ? 0 : low_; }
  [[nodiscard]] std::size_t high() const noexcept { return count_ == 0 ? 0 : high_; }

  /// The (low, high) pair; (0, 0) when nothing was added.
  [[nodiscard]] std::pair<std::size_t, std::size_t> band() const noexcept {
    return {low(), high()};
  }

 private:
  std::size_t count_ = 0;
  std::size_t low_ = 0;
  std::size_t high_ = 0;
};

/// Counted histogram over string categories (agent versions, protocols).
class CountedHistogram {
 public:
  void add(const std::string& key, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t count(const std::string& key) const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t distinct() const noexcept { return counts_.size(); }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counts() const noexcept {
    return counts_;
  }

  /// Rows sorted by descending count; categories with count <= threshold are
  /// merged into a synthetic "other" row, as in the paper's Fig. 3/4.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> top_with_other(
      std::uint64_t group_threshold) const;

 private:
  std::map<std::string, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Format an integer with apostrophe thousands separators ("1'285'513"),
/// matching the paper's table style.
[[nodiscard]] std::string with_thousands(std::uint64_t value);
[[nodiscard]] std::string with_thousands(std::int64_t value);

}  // namespace ipfs::common
