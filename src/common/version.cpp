#include "common/version.hpp"

#include <charconv>

namespace ipfs::common {

namespace {

bool parse_int(std::string_view text, int& out) {
  if (text.empty()) return false;
  const auto result = std::from_chars(text.data(), text.data() + text.size(), out);
  return result.ec == std::errc{} && result.ptr == text.data() + text.size();
}

}  // namespace

std::strong_ordering SemVer::operator<=>(const SemVer& other) const noexcept {
  if (const auto c = major <=> other.major; c != 0) return c;
  if (const auto c = minor <=> other.minor; c != 0) return c;
  if (const auto c = patch <=> other.patch; c != 0) return c;
  // Release (empty prerelease) sorts after any pre-release build.
  if (prerelease.empty() != other.prerelease.empty()) {
    return prerelease.empty() ? std::strong_ordering::greater
                              : std::strong_ordering::less;
  }
  return prerelease <=> other.prerelease;
}

std::string SemVer::to_string() const {
  std::string out = std::to_string(major) + "." + std::to_string(minor) + "." +
                    std::to_string(patch);
  if (!prerelease.empty()) {
    out += "-";
    out += prerelease;
  }
  return out;
}

std::optional<SemVer> SemVer::parse(std::string_view text) {
  SemVer version;
  const auto dash = text.find('-');
  if (dash != std::string_view::npos) {
    version.prerelease = std::string(text.substr(dash + 1));
    text = text.substr(0, dash);
  }
  const auto first_dot = text.find('.');
  if (first_dot == std::string_view::npos) return std::nullopt;
  const auto second_dot = text.find('.', first_dot + 1);
  if (second_dot == std::string_view::npos) return std::nullopt;
  if (!parse_int(text.substr(0, first_dot), version.major)) return std::nullopt;
  if (!parse_int(text.substr(first_dot + 1, second_dot - first_dot - 1), version.minor))
    return std::nullopt;
  if (!parse_int(text.substr(second_dot + 1), version.patch)) return std::nullopt;
  return version;
}

AgentInfo AgentInfo::parse(std::string_view raw) {
  AgentInfo info;
  info.raw = std::string(raw);
  const auto first_slash = raw.find('/');
  if (first_slash == std::string_view::npos) {
    info.name = std::string(raw);
    return info;
  }
  info.name = std::string(raw.substr(0, first_slash));
  auto rest = raw.substr(first_slash + 1);
  const auto second_slash = rest.find('/');
  std::string_view version_part = rest;
  if (second_slash != std::string_view::npos) {
    version_part = rest.substr(0, second_slash);
    info.commit = std::string(rest.substr(second_slash + 1));
  }
  info.version = SemVer::parse(version_part);
  constexpr std::string_view kDirty = "dirty";
  info.dirty = info.commit.size() >= kDirty.size() &&
               std::string_view(info.commit).substr(info.commit.size() - kDirty.size()) ==
                   kDirty;
  return info;
}

std::string_view to_string(VersionChangeKind kind) noexcept {
  switch (kind) {
    case VersionChangeKind::kNone: return "none";
    case VersionChangeKind::kUpgrade: return "upgrade";
    case VersionChangeKind::kDowngrade: return "downgrade";
    case VersionChangeKind::kChange: return "change";
  }
  return "?";
}

std::string_view to_string(DirtyTransition transition) noexcept {
  switch (transition) {
    case DirtyTransition::kMainToMain: return "main-main";
    case DirtyTransition::kMainToDirty: return "main-dirty";
    case DirtyTransition::kDirtyToMain: return "dirty-main";
    case DirtyTransition::kDirtyToDirty: return "dirty-dirty";
  }
  return "?";
}

VersionChangeKind classify_version_change(const AgentInfo& before,
                                          const AgentInfo& after) noexcept {
  if (before.raw == after.raw) return VersionChangeKind::kNone;
  if (!before.is_go_ipfs() || !after.is_go_ipfs()) return VersionChangeKind::kNone;
  if (!before.version || !after.version) return VersionChangeKind::kNone;
  if (*after.version > *before.version) return VersionChangeKind::kUpgrade;
  if (*after.version < *before.version) return VersionChangeKind::kDowngrade;
  // Same version number: the paper counts a commit-part change as "Change".
  if (before.commit != after.commit) return VersionChangeKind::kChange;
  return VersionChangeKind::kNone;
}

DirtyTransition classify_dirty_transition(const AgentInfo& before,
                                          const AgentInfo& after) noexcept {
  if (before.dirty) {
    return after.dirty ? DirtyTransition::kDirtyToDirty : DirtyTransition::kDirtyToMain;
  }
  return after.dirty ? DirtyTransition::kMainToDirty : DirtyTransition::kMainToMain;
}

}  // namespace ipfs::common
