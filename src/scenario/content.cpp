#include "scenario/content.hpp"

#include <cmath>
#include <limits>
#include <utility>

namespace ipfs::scenario {

using common::SimDuration;

// ---- ContentSpec::validate --------------------------------------------------

std::optional<std::string> ContentSpec::validate(const ContentSpec& spec) {
  if (spec.keys < 1) return "content: keys must be >= 1";
  if (spec.publishes_per_peer < 0.0) {
    return "content: publishes_per_peer must be >= 0";
  }
  if (spec.fetches_per_hour < 0.0) {
    return "content: fetches_per_hour must be >= 0";
  }
  if (spec.provider_ttl <= 0) return "content: provider_ttl_ms must be > 0";
  if (spec.republish_interval <= 0) {
    return "content: republish_interval_ms must be > 0";
  }
  if (spec.republish_interval >= spec.provider_ttl) {
    return "content: republish_interval_ms must be < provider_ttl_ms";
  }
  if (spec.publish_spread <= 0) return "content: publish_spread_ms must be > 0";
  if (spec.bucket_refresh_interval <= 0) {
    return "content: bucket_refresh_interval_ms must be > 0";
  }
  if (spec.replacement_cache_size < 1) {
    return "content: replacement_cache_size must be >= 1";
  }
  if (spec.sample_interval <= 0) return "content: sample_interval_ms must be > 0";
  if (spec.fetch_success < 0.0 || spec.fetch_success > 1.0) {
    return "content: fetch_success must be in [0, 1]";
  }
  std::array<bool, kCategoryCount> seen{};
  for (std::size_t i = 0; i < spec.categories.size(); ++i) {
    const ContentCategorySpec& entry = spec.categories[i];
    const std::string prefix =
        "content.categories." + std::string(to_string(entry.category));
    const auto slot = static_cast<std::size_t>(entry.category);
    if (slot >= kCategoryCount) return prefix + ": unknown category";
    if (seen[slot]) return prefix + ": duplicate category override";
    seen[slot] = true;
    if (entry.publishes_per_peer < 0.0) {
      return prefix + ": publishes_per_peer must be >= 0";
    }
    if (entry.fetches_per_hour < 0.0) {
      return prefix + ": fetches_per_hour must be >= 0";
    }
  }
  return std::nullopt;
}

// ---- ContentModel -----------------------------------------------------------

ContentModel::ContentModel(ContentSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
  override_slot_.fill(-1);
  for (std::size_t i = 0; i < spec_.categories.size(); ++i) {
    override_slot_[static_cast<std::size_t>(spec_.categories[i].category)] =
        static_cast<std::int32_t>(i);
  }
}

common::Rng ContentModel::draw_rng(std::uint64_t salt, std::uint32_t node,
                                   std::uint32_t index) const noexcept {
  // A fresh generator per draw keeps every sample a pure function of
  // (node, index, seed) — independent of call order (DESIGN.md §5).
  const std::uint64_t key =
      (static_cast<std::uint64_t>(node) << 32) | static_cast<std::uint64_t>(index);
  return common::Rng(common::mix64(common::mix64(seed_, salt), key));
}

double ContentModel::publish_rate(Category category) const noexcept {
  const std::int32_t slot = override_slot_[static_cast<std::size_t>(category)];
  return slot < 0
             ? spec_.publishes_per_peer
             : spec_.categories[static_cast<std::size_t>(slot)].publishes_per_peer;
}

double ContentModel::fetch_rate(Category category) const noexcept {
  const std::int32_t slot = override_slot_[static_cast<std::size_t>(category)];
  return slot < 0
             ? spec_.fetches_per_hour
             : spec_.categories[static_cast<std::size_t>(slot)].fetches_per_hour;
}

std::uint32_t ContentModel::publish_count(std::uint32_t node,
                                          Category category) const noexcept {
  const double rate = publish_rate(category);
  const auto base = static_cast<std::uint32_t>(rate);
  const double fraction = rate - static_cast<double>(base);
  if (fraction <= 0.0) return base;
  // Stable-hash coin for the fractional key, so an average of e.g. 1.5
  // keys per peer holds exactly in expectation without mutable state.
  const std::uint64_t h = common::mix64(common::mix64(seed_, 0x9b1c), node);
  const bool extra =
      static_cast<double>(h) <
      fraction * static_cast<double>(std::numeric_limits<std::uint64_t>::max());
  return base + (extra ? 1u : 0u);
}

std::uint32_t ContentModel::key_for(std::uint32_t node, std::uint32_t slot,
                                    std::uint32_t keyspace) const noexcept {
  if (keyspace == 0) return 0;
  common::Rng rng = draw_rng(0x6e15, node, slot);
  return static_cast<std::uint32_t>(rng.uniform_u64(keyspace));
}

common::SimDuration ContentModel::initial_publish_delay(
    std::uint32_t node, std::uint32_t slot) const noexcept {
  common::Rng rng = draw_rng(0xde1a, node, slot);
  return static_cast<SimDuration>(
      rng.uniform_u64(static_cast<std::uint64_t>(spec_.publish_spread)));
}

common::SimDuration ContentModel::republish_jitter(
    std::uint32_t node, std::uint32_t slot, std::uint32_t cycle) const noexcept {
  common::Rng rng = draw_rng(common::mix64(0x4e91, cycle), node, slot);
  return static_cast<SimDuration>(
      rng.uniform_u64(static_cast<std::uint64_t>(spec_.publish_spread)));
}

common::SimDuration ContentModel::fetch_gap(std::uint32_t node,
                                            std::uint32_t fetch,
                                            Category category) const {
  const double rate = fetch_rate(category);
  if (rate <= 0.0) return 0;
  common::Rng rng = draw_rng(0xfe7c, node, fetch);
  return static_cast<SimDuration>(
      rng.exponential(static_cast<double>(common::kHour) / rate));
}

std::uint32_t ContentModel::fetch_key(std::uint32_t node, std::uint32_t fetch,
                                      std::uint32_t keyspace) const noexcept {
  if (keyspace == 0) return 0;
  common::Rng rng = draw_rng(0xfe7b, node, fetch);
  // u^2 skews demand towards low key indices (a crude Zipf): the keyspace
  // head is fetched often, the tail rarely — so replacement caches and
  // provider-record churn see realistic popularity contrast.
  const double u = rng.uniform();
  return static_cast<std::uint32_t>(u * u * static_cast<double>(keyspace));
}

bool ContentModel::fetch_served(std::uint32_t node,
                                std::uint32_t fetch) const noexcept {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(node) << 32) | static_cast<std::uint64_t>(fetch);
  const std::uint64_t h = common::mix64(common::mix64(seed_, 0x5e4d), key);
  return static_cast<double>(h) <
         spec_.fetch_success *
             static_cast<double>(std::numeric_limits<std::uint64_t>::max());
}

p2p::PeerId ContentModel::key_cid(std::uint32_t key) const noexcept {
  return p2p::PeerId::from_seed(common::mix64(common::mix64(seed_, 0xc1d0), key));
}

}  // namespace ipfs::scenario
