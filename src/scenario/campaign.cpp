#include "scenario/campaign.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "bitswap/bitswap.hpp"
#include "common/stats.hpp"
#include "common/version.hpp"
#include "dht/record_store.hpp"
#include "measure/shard_tally.hpp"
#include "net/network.hpp"
#include "p2p/protocols.hpp"
// Leaf runtime headers (no scenario includes): the sharded engine draws
// its fork-join pool and worker accounting from the runtime layer without
// creating an include cycle (DESIGN.md §13).
#include "runtime/shard_pool.hpp"
#include "runtime/worker_budget.hpp"

namespace ipfs::scenario {

namespace proto = p2p::protocols;
using common::kDay;
using common::kHour;
using common::kMinute;
using common::kSecond;
using common::SimDuration;
using common::SimTime;

namespace {

/// Deterministic per-(peer, vantage) visibility gate.
bool pair_visible(const p2p::PeerId& pid, std::uint64_t vantage_salt, double p) {
  const std::uint64_t h = common::mix64(pid.prefix64(), vantage_salt);
  return static_cast<double>(h) <
         p * static_cast<double>(std::numeric_limits<std::uint64_t>::max());
}

/// Rewrite a go-ipfs agent string per the version-change kind (Table III).
std::string mutate_agent(common::Rng& rng, const std::string& agent,
                         common::VersionChangeKind kind) {
  const auto info = common::AgentInfo::parse(agent);
  if (!info.version) return agent;
  common::SemVer version = *info.version;
  switch (kind) {
    case common::VersionChangeKind::kUpgrade:
      if (rng.bernoulli(0.7)) {
        ++version.minor;
        version.patch = 0;
      } else {
        ++version.patch;
      }
      version.prerelease.clear();
      break;
    case common::VersionChangeKind::kDowngrade:
      if (version.minor > 0 && rng.bernoulli(0.7)) {
        --version.minor;
      } else if (version.patch > 0) {
        --version.patch;
      } else if (version.minor > 0) {
        --version.minor;
      } else {
        return agent;  // cannot downgrade below 0.0.0
      }
      version.prerelease.clear();
      break;
    case common::VersionChangeKind::kChange:
    case common::VersionChangeKind::kNone:
      break;  // same version, new commit below
  }
  // Dirty transition, conditional on the current build (calibrated to
  // Table III: main→dirty and dirty→main are rare).
  const bool after_dirty =
      info.dirty ? rng.bernoulli(225.0 / 234.0) : rng.bernoulli(5.0 / 296.0);
  char commit[24];
  if (after_dirty || kind == common::VersionChangeKind::kChange) {
    // Self-built: a novel commit hash (required for a commit-part change).
    std::snprintf(commit, sizeof(commit), "%08llx",
                  static_cast<unsigned long long>(rng() & 0xffffffffULL));
  } else {
    // Release binaries of one version share the release commit, so
    // up/downgrades move between *existing* agent strings (Fig. 3 stays at
    // ~323 distinct strings despite Table III's 530 changes).
    std::snprintf(commit, sizeof(commit), "%08llx",
                  static_cast<unsigned long long>(
                      common::hash64(version.to_string()) & 0xffffffffULL));
  }
  std::string result = "go-ipfs/" + version.to_string() + "/" + commit;
  if (after_dirty) result += "-dirty";
  return result;
}

}  // namespace

namespace {
/// The address a peer dials from right now (dual-homed peers alternate).
p2p::Multiaddr dial_address(const RemotePeer& peer, common::Rng& prng) {
  const p2p::IpAddress ip =
      (peer.has_alt_ip && prng.bernoulli(kDualHomeAlternateProbability))
          ? peer.alt_ip
          : peer.ip;
  return p2p::Multiaddr{ip, p2p::Transport::kTcp, peer.port};
}
}  // namespace

std::pair<std::size_t, std::size_t> CampaignResult::crawler_min_max() const {
  common::MinMaxBand band;
  for (const CrawlSnapshot& crawl : crawls) {
    band.add(crawl.reached_servers, crawl.learned_pids);
  }
  return band.band();
}

void CampaignResultSink::on_crawl(const measure::CrawlObservation& crawl) {
  result_.crawls.push_back(crawl);
}

void CampaignResultSink::on_population(const measure::PopulationSample& sample) {
  result_.population_samples.push_back(sample);
}

void CampaignResultSink::on_provide(const measure::ProvideSample& sample) {
  result_.provide_samples.push_back(sample);
}

void CampaignResultSink::on_fetch(const measure::FetchSample& sample) {
  result_.fetch_samples.push_back(sample);
}

void CampaignResultSink::on_content(const measure::ContentSample& sample) {
  result_.content_samples.push_back(sample);
}

void CampaignResultSink::on_dataset(measure::DatasetRole role,
                                    measure::Dataset dataset) {
  switch (role) {
    case measure::DatasetRole::kVantage:
      result_.go_ipfs = std::move(dataset);
      break;
    case measure::DatasetRole::kHydraHead:
      result_.hydra_heads.push_back(std::move(dataset));
      break;
    case measure::DatasetRole::kHydraUnion:
      result_.hydra_union = std::move(dataset);
      break;
    case measure::DatasetRole::kOther:
      break;  // campaigns never publish ad-hoc datasets
  }
}

void CampaignResultSink::on_run_end(const measure::RunSummary& summary) {
  result_.population_size = summary.population_size;
  result_.events_executed = summary.events_executed;
}

struct CampaignEngine::Impl {
  explicit Impl(CampaignConfig config_in)
      : config(std::move(config_in)),
        rng(config.seed),
        population(config.population, config.period.duration, rng.child(0x707)) {
    if (config.conditions) {
      // Seeded off the campaign seed directly (not the rng stream) so that
      // engaging the section never shifts any other RNG-tree branch.
      conditions.emplace(*config.conditions, common::mix64(config.seed, 0x2c0de));
    }
    if (config.churn) {
      // Same principle as `conditions`: the lifecycle model hangs off the
      // campaign seed directly, so engaging it only replaces the session
      // scheduling branch and shifts nothing else.
      churn.emplace(*config.churn, common::mix64(config.seed, 0xc4021));
    }
    if (config.content) {
      // Same principle again: the content workload hangs off the campaign
      // seed directly, so engaging it adds provide/fetch branches without
      // shifting any legacy draw (hash-pinned by the golden tests).
      content.emplace(*config.content, common::mix64(config.seed, 0xc047e47));
      content_keyspace = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(std::llround(
                 static_cast<double>(content->spec().keys) *
                 config.population.scale)));
    }
    if (config.phases) {
      // Compiled once up front; `rates_at` is a pure const lookup, so the
      // program can be consulted from sharded pure phases without
      // synchronisation and never shifts any RNG-tree branch.
      phases.emplace(*config.phases);
      phase_counters.resize(phases->size());
      for (std::size_t i = 0; i < phases->size(); ++i) {
        const PhaseSpec& phase = phases->spec().program[i];
        phase_counters[i].name = phase.name;
        phase_counters[i].mode = std::string(to_string(phase.mode));
        phase_counters[i].start = phases->phase_start(i);
        phase_counters[i].hold = phase.hold;
      }
    }
    if (config.sharding) {
      const unsigned shards = std::max(config.sharding->shards, 1u);
      unsigned workers = config.sharding->workers;
      if (workers == 0) {
        // Auto: claim workers from the process-wide budget that
        // ParallelTrialRunner draws on too, so nested trial x shard
        // pools never oversubscribe the machine (DESIGN.md §13).
        shard_lease = runtime::WorkerBudget::process().lease(shards);
        workers = shard_lease.granted();
      }
      shard_pool = std::make_unique<runtime::ShardPool>(shards, workers);
    }
  }

  // ---- types -------------------------------------------------------------

  struct ConnMeta {
    std::uint32_t peer = 0;
    bool maintained = false;
  };

  struct VantageTap;  // forward

  struct Vantage {
    std::string name;
    bool is_server = true;
    std::uint64_t salt = 0;
    std::unique_ptr<p2p::Swarm> swarm;
    std::unique_ptr<measure::Recorder> recorder;
    std::unique_ptr<VantageTap> tap;
    std::unordered_map<p2p::ConnectionId, ConnMeta> conns;
  };

  struct VantageTap final : p2p::SwarmObserver {
    Impl* impl = nullptr;
    std::size_t vantage_index = 0;
    void on_connection_opened(const p2p::Connection& connection) override {
      (void)connection;  // engine registers metadata at open itself
    }
    void on_connection_closed(const p2p::Connection& connection) override {
      impl->handle_vantage_close(vantage_index, connection);
    }
  };

  /// Hot per-peer campaign state, struct-of-arrays.  The periodic
  /// whole-population sweeps — the ground-truth online count every churn
  /// sample interval, the true-record count every content sample interval,
  /// the gossip staleness walk — each read one or two fields for *every*
  /// peer; parallel arrays keep those sweeps dense (one byte per peer for
  /// the online scan) instead of striding a five-field record, which is
  /// what lets million-peer populations sample at full cadence.
  struct PeerStates {
    std::vector<std::uint8_t> online;          ///< 0/1, dense for population scans
    std::vector<SimTime> session_end;
    std::vector<SimTime> last_online;          ///< for stale routing entries
    std::vector<std::uint32_t> session_index;  ///< sessions started (churn mode)
    std::vector<std::uint32_t> fetch_index;    ///< fetches drawn (content mode)
    std::vector<std::uint32_t> publish_slots;  ///< provider slots this session

    void assign(std::size_t count) {
      online.assign(count, 0);
      session_end.assign(count, 0);
      last_online.assign(count, -common::kDay);
      session_index.assign(count, 0);
      fetch_index.assign(count, 0);
      publish_slots.assign(count, 0);
    }
  };

  /// A minimal Bitswap participant on the content network: one swarm (for
  /// the network's connection mirroring) and one engine.  Server vantages
  /// get one to serve blocks; fetching remote peers get one lazily.
  struct BitswapHost final : net::Host {
    BitswapHost(sim::Simulation& simulation, net::Network& network,
                p2p::PeerId pid, p2p::Multiaddr address)
        : swarm_(simulation, pid, std::move(address), p2p::Swarm::Config{}),
          engine_(network, pid) {}

    [[nodiscard]] p2p::Swarm& swarm() override { return swarm_; }
    void handle_message(const p2p::PeerId& from,
                        const net::Message& message) override {
      engine_.handle_message(from, message);
    }

    p2p::Swarm swarm_;
    bitswap::BitswapEngine engine_;
  };

  /// Content-routing state of one *server* vantage: the provider-record
  /// store its DHT serves (the hydra "belly" / go-ipfs record slice) and
  /// the Bitswap host that serves the published blocks.
  struct ContentVantage {
    std::size_t vantage = 0;  ///< index into `vantages`
    std::unique_ptr<dht::RecordStore> records;
    std::unique_ptr<BitswapHost> host;
  };

  // ---- setup -------------------------------------------------------------

  void setup_vantages() {
    common::Rng vrng = rng.child(0x5a1);
    auto make_vantage = [&](const std::string& name, bool server, int low, int high,
                            SimDuration poll, std::uint16_t port) {
      Vantage vantage;
      vantage.name = name;
      vantage.is_server = server;
      vantage.salt = common::mix64(common::hash64(name), config.seed);
      p2p::Swarm::Config swarm_config;
      swarm_config.conn_manager = p2p::ConnManagerConfig::with_watermarks(low, high);
      swarm_config.trim_enabled = true;
      const auto pid = p2p::PeerId::random(vrng);
      const auto addr = p2p::Multiaddr{p2p::IpAddress::v4(0x93200000u + port),
                                       p2p::Transport::kTcp, port};
      vantage.swarm = std::make_unique<p2p::Swarm>(simulation, pid, addr, swarm_config);
      measure::RecorderConfig recorder_config;
      recorder_config.vantage = name;
      recorder_config.poll_interval = poll;
      vantage.recorder = std::make_unique<measure::Recorder>(simulation, *vantage.swarm,
                                                             recorder_config);
      vantage.tap = std::make_unique<VantageTap>();
      vantage.tap->impl = this;
      vantage.tap->vantage_index = vantages.size();
      vantage.swarm->add_observer(vantage.tap.get());
      vantages.push_back(std::move(vantage));
    };

    if (config.period.go_ipfs_present) {
      make_vantage("go-ipfs", config.period.go_ipfs_mode == dht::Mode::kServer,
                   config.period.go_low_water, config.period.go_high_water,
                   30 * kSecond, 4001);
    }
    for (int head = 0; head < config.period.hydra_heads; ++head) {
      make_vantage("Hydra H" + std::to_string(head), true,
                   config.period.hydra_low_water, config.period.hydra_high_water,
                   1 * kMinute, static_cast<std::uint16_t>(3001 + head));
    }

    peer_states.assign(population.peers().size());
    maintained_flags.assign(population.peers().size() * vantages.size(), 0);
    for (const RemotePeer& peer : population.peers()) {
      pid_to_peer.emplace(peer.pid, peer.index);
    }
  }

  [[nodiscard]] bool visible(const RemotePeer& peer, const Vantage& vantage) const {
    return pair_visible(peer.pid, vantage.salt, config.vantage_visibility);
  }

  // ---- network-condition gates (DESIGN.md §9) ------------------------------
  //
  // The vantage is treated as publicly reachable (it is the measuring
  // node), so remote->vantage contact is gated on the path (outages,
  // partitions) and the dial-failure hash only; vantage->remote dials
  // additionally respect the target's NAT reachability class.  All three
  // verdicts are pure hashes — no RNG stream is consumed — so an absent
  // `config.conditions` leaves every draw of the engine untouched.

  /// May `peer` open an inbound connection onto vantage `v` right now?
  [[nodiscard]] bool contact_allowed(const RemotePeer& peer, std::size_t v) const {
    if (!conditions) return true;
    const p2p::PeerId& vantage_pid = vantages[v].swarm->local_id();
    return conditions->path_open(peer.pid, vantage_pid, simulation.now()) &&
           !conditions->dial_failure(peer.pid, vantage_pid, simulation.now());
  }

  /// May vantage `v` dial out to `peer` right now (NAT class included)?
  [[nodiscard]] bool outbound_allowed(const RemotePeer& peer, std::size_t v) const {
    if (!conditions) return true;
    return conditions->dial_allowed(vantages[v].swarm->local_id(), peer.pid,
                                    simulation.now(), to_string(peer.category));
  }

  [[nodiscard]] std::uint8_t& maintained_flag(std::uint32_t peer, std::size_t v) {
    return maintained_flags[peer * vantages.size() + v];
  }

  // ---- time-varying phase program (DESIGN.md §14) --------------------------
  //
  // Every modulation below is a pure reshaping of an already-pure draw:
  // the base sample stays a function of (node, index, seed), and the
  // multiplier is a function of the deterministic query time only, so
  // phased runs inherit the engine's worker/shard byte-invariance
  // unchanged.  An absent `config.phases` short-circuits every helper to
  // the legacy value — bit-for-bit (hash-pinned by the golden tests).

  /// `interval / rate`, with the legacy integer untouched at rate 1 so an
  /// all-neutral phase cannot perturb a draw through rounding.
  [[nodiscard]] static SimDuration modulate(SimDuration interval, double rate) {
    if (rate == 1.0) return interval;
    return static_cast<SimDuration>(static_cast<double>(interval) / rate);
  }

  /// The churned offline gap beginning at `gap_start`, divided by the
  /// phase program's churn rate there and floor-clamped exactly like the
  /// legacy draw.  One definition serves both the slab chain walk and the
  /// sequential callback, so the two paths modulate identically by
  /// construction (the gap's phase input is the chain's own deterministic
  /// gap-start time, never the wall clock of the precompute).
  [[nodiscard]] SimDuration churned_gap(std::uint32_t index, std::uint32_t session,
                                        SimTime gap_start, Category category) {
    SimDuration gap = churn->gap_length(index, session, gap_start, category);
    if (phases) gap = modulate(gap, phases->rates_at(gap_start).churn);
    return std::max<SimDuration>(gap, kMinute);
  }

  /// The per-phase tally bucket covering the clock, nullptr when no
  /// program runs (so every bump site is a no-op on legacy runs).
  [[nodiscard]] measure::PhaseSummary* current_phase() {
    if (!phases) return nullptr;
    return &phase_counters[phases->phase_index_at(simulation.now())];
  }

  // ---- intra-trial sharding (DESIGN.md §13) --------------------------------
  //
  // The event loop itself never forks: what fans out across the shard
  // pool is *pure* whole-population computation — the slab-stepped
  // churn-chain walks, the sample tallies, the crawler's per-peer
  // classification — executed to a barrier inside a single event and
  // merged in canonical ascending shard order.  Every sharded value is a
  // pure function of (peer, index, seed) consumed at the exact call site
  // the sequential engine draws it, so the export is byte-identical at
  // any shard count and any worker count; the RNG-stream-dependent
  // machinery (`peer_rng` children mutate the parent) stays sequential.

  /// Fan `body(shard, first, last)` over `count` items: one contiguous
  /// slice per shard on the pool (strict barrier), or a single inline
  /// call covering everything when sharding is off.
  template <typename Body>
  void for_shards(std::size_t count, Body&& body) {
    if (!shard_pool) {
      body(0u, std::size_t{0}, count);
      return;
    }
    const unsigned shards = shard_pool->shards();
    shard_pool->run([&](unsigned shard) {
      const auto [first, last] = runtime::ShardPool::slice(count, shards, shard);
      body(shard, first, last);
    });
  }

  [[nodiscard]] unsigned shard_count() const noexcept {
    return shard_pool ? shard_pool->shards() : 1;
  }

  [[nodiscard]] bool sharded_churn() const noexcept {
    return shard_pool != nullptr && churn.has_value();
  }

  /// One precomputed churn lifecycle transition: the values the
  /// sequential `schedule_churn_session` callback would draw when it
  /// fires at `at`.
  struct ChurnTransition {
    SimTime at = 0;          ///< absolute session start
    SimDuration length = 0;  ///< session length, floor-clamped
    SimDuration gap = 0;     ///< following offline gap, floor-clamped
    bool redraw = false;     ///< dual-homed address redraw on this rejoin
  };

  /// Slab-buffered churn chains, one cursor + FIFO window per peer.
  /// Chains extend in parallel (each draw is a pure function of
  /// (peer, session, seed); the gap's diurnal input is the chain's own
  /// deterministic time) and are consumed strictly in per-peer time
  /// order by the scheduling callbacks.  Only the window between the
  /// consumed prefix and `horizon` is buffered, so memory stays
  /// O(population x slab / mean-cycle) on 14-day runs.
  struct ChurnChains {
    std::vector<SimTime> next_at;            ///< cursor: next unwalked transition
    std::vector<std::uint32_t> next_session;
    std::vector<std::vector<ChurnTransition>> buffered;
    std::vector<std::uint32_t> consumed;     ///< per-peer FIFO head
    SimTime horizon = 0;  ///< transitions strictly before this are buffered
  };

  /// Parallel phase of `schedule_churned_population`: size the chain
  /// state and compute every peer's pure first-transition delay into the
  /// `next_at` cursors.  Scheduling stays sequential in peer order
  /// (insertion order is the queue's FIFO tie-break).
  void seed_churn_chains() {
    const std::size_t count = population.peers().size();
    churn_chains.next_at.assign(count, 0);
    churn_chains.next_session.assign(count, 0);
    churn_chains.buffered.assign(count, {});
    churn_chains.consumed.assign(count, 0);
    for_shards(count, [&](unsigned, std::size_t first, std::size_t last) {
      for (std::size_t i = first; i < last; ++i) {
        const auto index = static_cast<std::uint32_t>(i);
        if (churn->initially_online(index)) {
          churn_chains.next_at[i] = static_cast<SimDuration>(
              common::mix64(common::mix64(config.seed, 0x0ff5e7), index) %
              static_cast<std::uint64_t>(10 * kMinute));
        } else {
          churn_chains.next_at[i] =
              churned_gap(index, 0, 0, population.peers()[i].category);
        }
      }
    });
  }

  /// Extend every peer's buffered chain to `horizon` (absolute, one
  /// shard per slice, barrier).  A no-op when `horizon` is not ahead of
  /// the buffered one.
  void extend_churn_chains(SimTime horizon) {
    if (horizon <= churn_chains.horizon) return;
    churn_chains.horizon = horizon;
    for_shards(population.peers().size(),
               [&](unsigned, std::size_t first, std::size_t last) {
                 for (std::size_t i = first; i < last; ++i) {
                   extend_churn_chain(i, horizon);
                 }
               });
  }

  /// Walk one peer's chain up to `horizon`: exactly the draw sequence of
  /// the sequential callback, replayed ahead of time.
  void extend_churn_chain(std::size_t i, SimTime horizon) {
    std::vector<ChurnTransition>& buffer = churn_chains.buffered[i];
    if (const std::uint32_t consumed = churn_chains.consumed[i];
        consumed > 0) {
      buffer.erase(buffer.begin(),
                   buffer.begin() + static_cast<std::ptrdiff_t>(consumed));
      churn_chains.consumed[i] = 0;
    }
    const RemotePeer& peer = population.peers()[i];
    const auto index = static_cast<std::uint32_t>(i);
    SimTime at = churn_chains.next_at[i];
    std::uint32_t session = churn_chains.next_session[i];
    while (at < horizon && at < config.period.duration) {
      ChurnTransition tr;
      tr.at = at;
      tr.redraw = peer.has_alt_ip && churn->redraw_address(index, session);
      tr.length = std::max<SimDuration>(
          churn->session_length(index, session, peer.category), 30 * kSecond);
      tr.gap = churned_gap(index, session + 1, at + tr.length, peer.category);
      buffer.push_back(tr);
      at += tr.length + tr.gap;
      ++session;
    }
    churn_chains.next_at[i] = at;
    churn_chains.next_session[i] = session;
  }

  /// The precomputed transition for `index` firing right now.  Refills
  /// the whole population one slab past the clock when this peer's
  /// window ran dry — triggered by event state only, so refill times are
  /// as deterministic as the events themselves.
  [[nodiscard]] ChurnTransition take_churn_transition(std::uint32_t index) {
    if (churn_chains.consumed[index] == churn_chains.buffered[index].size()) {
      extend_churn_chains(simulation.now() + config.sharding->slab);
    }
    const ChurnTransition tr =
        churn_chains.buffered[index][churn_chains.consumed[index]++];
    assert(tr.at == simulation.now());
    return tr;
  }

  /// Ground-truth online count: per-shard partial tallies folded in
  /// canonical shard order (equal to the sequential sweep — contiguous
  /// slices in index order, integer sum).
  [[nodiscard]] std::size_t true_online_count() {
    std::vector<measure::PopulationTally> partials(shard_count());
    for_shards(peer_states.online.size(),
               [&](unsigned shard, std::size_t first, std::size_t last) {
                 std::size_t online = 0;
                 for (std::size_t i = first; i < last; ++i) {
                   online += peer_states.online[i];
                 }
                 partials[shard].online = online;
               });
    return measure::fold(std::span<const measure::PopulationTally>(partials))
        .online;
  }

  /// Ground-truth provider-slot count (content sample), same pattern.
  [[nodiscard]] std::size_t true_record_count() {
    std::vector<measure::ContentTally> partials(shard_count());
    for_shards(population.peers().size(),
               [&](unsigned shard, std::size_t first, std::size_t last) {
                 std::size_t records = 0;
                 for (std::size_t i = first; i < last; ++i) {
                   if (peer_states.online[i] == 0) continue;
                   // The slot count materialised at session start (equal to
                   // `content->publish_count` on legacy runs; phase-scaled
                   // on phased ones) — ground truth must count what the
                   // session actually published.
                   records += peer_states.publish_slots[i];
                 }
                 partials[shard].true_records = records;
               });
    return measure::fold(std::span<const measure::ContentTally>(partials))
        .true_records;
  }

  // ---- session machinery ---------------------------------------------------

  void schedule_population() {
    if (churn) {
      // The lifecycle model replaces the static per-category session
      // machinery wholesale: every peer — always-on categories included —
      // joins and leaves on the simulation clock (DESIGN.md §10).
      schedule_churned_population();
      return;
    }
    common::Rng srng = rng.child(0x5e5);
    for (const RemotePeer& peer : population.peers()) {
      const CategoryParams& params = config.population.params(peer.category);
      switch (params.session) {
        case SessionKind::kAlwaysOn: {
          // Ramp the always-on population in over the first 30 minutes so
          // the vantage's connection table fills the way a freshly
          // bootstrapped node's does (Fig. 5's initial climb).
          const auto offset =
              static_cast<SimDuration>(srng.uniform(0.0, 30.0 * kMinute));
          const std::uint32_t index = peer.index;
          simulation.schedule_at(offset, [this, index] {
            start_session(index, config.period.duration + kDay);
          });
          break;
        }
        case SessionKind::kOneShot: {
          const std::uint32_t index = peer.index;
          simulation.schedule_at(peer.session_start, [this, index] {
            const RemotePeer& p = population.peers()[index];
            start_session(index, simulation.now() + p.session_length);
          });
          break;
        }
        case SessionKind::kRecurring: {
          const auto first =
              static_cast<SimDuration>(srng.exponential(
                  static_cast<double>(std::max<SimDuration>(params.mean_gap, kMinute))));
          schedule_recurring_session(peer.index, first);
          break;
        }
      }
    }
  }

  void schedule_recurring_session(std::uint32_t index, SimDuration delay) {
    simulation.schedule_after(delay, [this, index] {
      if (simulation.now() >= config.period.duration) return;
      const CategoryParams& params =
          config.population.params(population.peers()[index].category);
      common::Rng prng = peer_rng(index);
      const auto length = std::max<SimDuration>(
          static_cast<SimDuration>(
              prng.exponential(static_cast<double>(params.mean_session))),
          30 * kSecond);
      start_session(index, simulation.now() + length);
      // Next cycle: after this session plus an offline gap.
      const auto gap = static_cast<SimDuration>(
          prng.exponential(static_cast<double>(std::max<SimDuration>(
              params.mean_gap, kMinute))));
      schedule_recurring_session(index, length + gap);
    });
  }

  // ---- churned lifecycle (DESIGN.md §10) -----------------------------------
  //
  // Every draw below is a pure function of (peer, session-index, campaign
  // seed): the model derives a fresh generator per draw, and the only other
  // input — the time a gap starts — is itself deterministic under the same
  // seed.  Session teardown rides the existing machinery: connections
  // opened during a session were scheduled to close no later than
  // the peer's `session_end`, so a departing peer's links die with it and the
  // vantage attributes them to `kPeerOffline`.

  void schedule_churned_population() {
    if (sharded_churn()) {
      // Parallel pure phase: every first-transition delay at once.  The
      // scheduling below then runs in plain peer order, so the queue's
      // FIFO tie-break order matches the sequential engine exactly.
      seed_churn_chains();
      for (const RemotePeer& peer : population.peers()) {
        // The clock is 0 here, so the absolute cursor IS the delay.
        schedule_churn_session(peer.index, churn_chains.next_at[peer.index]);
      }
      extend_churn_chains(config.sharding->slab);
      return;
    }
    for (const RemotePeer& peer : population.peers()) {
      const std::uint32_t index = peer.index;
      if (churn->initially_online(index)) {
        // Spread the initial joins over the first 10 minutes (pure hash)
        // so the vantage's connection table fills the way a freshly
        // bootstrapped node's does rather than in one burst.
        const auto offset = static_cast<SimDuration>(
            common::mix64(common::mix64(config.seed, 0x0ff5e7), index) %
            static_cast<std::uint64_t>(10 * kMinute));
        schedule_churn_session(index, offset);
      } else {
        schedule_churn_session(index, churned_gap(index, 0, 0, peer.category));
      }
    }
  }

  void schedule_churn_session(std::uint32_t index, SimDuration delay) {
    simulation.schedule_after(delay, [this, index] {
      if (simulation.now() >= config.period.duration) return;
      const std::uint32_t session = peer_states.session_index[index]++;
      RemotePeer& peer = population.peers()[index];
      // Sharded runs consume the slab-precomputed transition; the values
      // are equal by purity (the chain walk replays these exact draws),
      // with the clock match asserted inside take_churn_transition.
      ChurnTransition tr;
      if (sharded_churn()) {
        tr = take_churn_transition(index);
      } else {
        tr.redraw = peer.has_alt_ip && churn->redraw_address(index, session);
        tr.length = std::max<SimDuration>(
            churn->session_length(index, session, peer.category), 30 * kSecond);
        // The following offline gap, with diurnal and phase modulation
        // evaluated where the gap begins.
        tr.gap = churned_gap(index, session + 1, simulation.now() + tr.length,
                             peer.category);
      }
      // Rejoining peers keep their PeerId but may come back from their
      // other IP — the §V-A dual-homing rules applied per session (the
      // per-connection alternation still applies on top).
      if (tr.redraw) {
        std::swap(peer.ip, peer.alt_ip);
      }
      // A phase program's `population` target admits only a fraction of
      // the churned population: a pure per-(peer, session) hash decides
      // whether this session actually starts.  The chain itself — draws,
      // redraw swap, next-cycle schedule — advances unconditionally, so
      // admitting a peer later never replays or shifts a draw (and the
      // sharded precompute needs no admission knowledge at all).
      bool admitted = true;
      if (phases) {
        const double fraction = phases->rates_at(simulation.now()).population;
        if (fraction < 1.0) {
          const std::uint64_t h = common::mix64(
              common::mix64(config.seed, 0x909a7e),
              (static_cast<std::uint64_t>(index) << 32) |
                  static_cast<std::uint64_t>(session));
          admitted = static_cast<double>(h) <
                     fraction * static_cast<double>(
                                    std::numeric_limits<std::uint64_t>::max());
        }
      }
      if (admitted) start_session(index, simulation.now() + tr.length);
      // The next cycle: this session plus the following offline gap.
      schedule_churn_session(index, tr.length + tr.gap);
    });
  }

  /// Publish one `measure::PopulationSample` per sample interval: the
  /// ground truth (who is truly in-session) next to the vantage's view
  /// (who is currently connected) — the observed-vs-true baseline the
  /// paper could never record.
  void schedule_population_samples(measure::MeasurementSink& sink) {
    if (!churn) return;
    population_task = simulation.schedule_every(
        churn->spec().sample_interval, [this, &sink] {
          measure::PopulationSample sample;
          sample.at = simulation.now();
          sample.total = population.peers().size();
          sample.online = true_online_count();
          std::unordered_set<std::uint32_t> connected;
          for (const Vantage& vantage : vantages) {
            for (const auto& [conn_id, meta] : vantage.conns) {
              connected.insert(meta.peer);
            }
          }
          sample.connected = connected.size();
          sink.on_population(sample);
        });
  }

  // ---- content-routing workload (DESIGN.md §11) ----------------------------
  //
  // Publish → provide → republish → expire chains drive the server
  // vantages' `dht::RecordStore`s, and fetches run real Bitswap
  // want/block exchanges over a dedicated message-level network whose
  // participants reuse the existing identities (vantage swarm ids, remote
  // peer pids) — no extra RNG draw, so an absent `config.content` leaves
  // every legacy branch untouched.  All workload draws are pure
  // (node, slot/fetch, cycle, seed) functions of the content model;
  // the only mutable state (`fetch_index`) advances in deterministic
  // event order.

  void setup_content() {
    if (!content) return;
    // The Bitswap fabric uses flat default conditions: loss and NAT gating
    // happen at the scheduling layer through the campaign's own
    // `contact_allowed` / `fetch_served` verdicts, so outcomes stay pure.
    content_network = std::make_unique<net::Network>(
        simulation, common::Rng(common::mix64(config.seed, 0xb175)));
    for (std::size_t v = 0; v < vantages.size(); ++v) {
      if (!vantages[v].is_server) continue;
      ContentVantage cv;
      cv.vantage = v;
      cv.records = std::make_unique<dht::RecordStore>();
      cv.host = std::make_unique<BitswapHost>(
          simulation, *content_network, vantages[v].swarm->local_id(),
          vantages[v].swarm->listen_address());
      content_network->add_host(*cv.host);
      content_vantages.push_back(std::move(cv));
    }
  }

  /// Session hook: schedule this session's provides and its fetch chain.
  void start_content_session(std::uint32_t index) {
    const RemotePeer& peer = population.peers()[index];
    std::uint32_t count = content->publish_count(index, peer.category);
    if (phases) {
      // The publish rate scales this session's slot count: integer floor
      // plus a pure per-(peer, session-start) coin for the fraction, so
      // the expectation matches the multiplier exactly and the draw stays
      // shard/worker invariant.  Rate 1 leaves `count` untouched.
      const double rate = phases->rates_at(simulation.now()).publish;
      if (rate != 1.0) {
        const double scaled = static_cast<double>(count) * rate;
        count = static_cast<std::uint32_t>(scaled);
        const double fraction = scaled - static_cast<double>(count);
        if (fraction > 0.0) {
          const std::uint64_t h = common::mix64(
              common::mix64(config.seed, 0x9ab115),
              (static_cast<std::uint64_t>(index) << 20) ^
                  static_cast<std::uint64_t>(simulation.now()));
          if (static_cast<double>(h) <
              fraction * static_cast<double>(
                             std::numeric_limits<std::uint64_t>::max())) {
            ++count;
          }
        }
      }
    }
    peer_states.publish_slots[index] = count;
    const SimTime session_end = peer_states.session_end[index];
    for (std::uint32_t slot = 0; slot < count; ++slot) {
      const SimTime at =
          simulation.now() + content->initial_publish_delay(index, slot);
      if (at >= session_end || at >= config.period.duration) continue;
      simulation.schedule_at(at, [this, index, slot, session_end] {
        provide(index, slot, /*cycle=*/0, session_end);
      });
    }
    schedule_next_fetch(index);
  }

  /// Put provider records for (index, slot) at every vantage the peer can
  /// reach, push the block so the vantage can serve it, and chain the next
  /// 12 h republish cycle while the session lasts.
  void provide(std::uint32_t index, std::uint32_t slot, std::uint32_t cycle,
               SimTime session_end) {
    if (peer_states.online[index] == 0 ||
        peer_states.session_end[index] != session_end) {
      return;
    }
    if (simulation.now() >= config.period.duration) return;
    const RemotePeer& peer = population.peers()[index];
    const std::uint32_t key = content->key_for(index, slot, content_keyspace);
    const bitswap::Cid cid = content->key_cid(key);
    bool landed = false;
    for (ContentVantage& cv : content_vantages) {
      if (!visible(peer, vantages[cv.vantage])) continue;
      if (!contact_allowed(peer, cv.vantage)) continue;  // provide RPC lost
      cv.records->put(cid, peer.pid, simulation.now(),
                      content->spec().provider_ttl);
      cv.host->engine_.add_block(cid);
      landed = true;
    }
    if (landed && content_sink != nullptr) {
      content_sink->on_provide({simulation.now(), key, index, cycle > 0});
      if (auto* phase = current_phase()) ++phase->provides;
    }
    const SimTime next = simulation.now() + content->spec().republish_interval +
                         content->republish_jitter(index, slot, cycle + 1);
    if (next >= session_end || next >= config.period.duration) return;
    simulation.schedule_at(next, [this, index, slot, cycle, session_end] {
      provide(index, slot, cycle + 1, session_end);
    });
  }

  void schedule_next_fetch(std::uint32_t index) {
    const RemotePeer& peer = population.peers()[index];
    if (content->fetch_rate(peer.category) <= 0.0) return;
    const std::uint32_t fetch = peer_states.fetch_index[index];
    SimDuration gap = content->fetch_gap(index, fetch, peer.category);
    if (phases) {
      // The fetch rate (a flash crowd's spike folded in) divides the gap
      // where the wait begins — a pure function of the event time.
      gap = modulate(gap, phases->rates_at(simulation.now()).fetch);
    }
    gap = std::max<SimDuration>(gap, kSecond);
    const SimTime at = simulation.now() + gap;
    if (at >= peer_states.session_end[index] || at >= config.period.duration) {
      return;
    }
    peer_states.fetch_index[index] = fetch + 1;
    simulation.schedule_at(at, [this, index, fetch] {
      if (peer_states.online[index] == 0) return;
      do_fetch(index, fetch);
      schedule_next_fetch(index);
    });
  }

  /// One fetch: provider lookup at a deterministically chosen visible
  /// vantage, then — when a live record exists and the pure service gate
  /// passes — a real want/block exchange on the content network.
  void do_fetch(std::uint32_t index, std::uint32_t fetch) {
    if (simulation.now() >= config.period.duration) return;
    const RemotePeer& peer = population.peers()[index];
    std::uint32_t key = content->fetch_key(index, fetch, content_keyspace);
    if (phases) {
      // An active flash crowd redirects a `hot_fraction` slice of fetches
      // onto the hot key — a pure per-(peer, fetch) hash, so the same
      // fetches converge at any worker or shard count.
      const PhaseRates rates = phases->rates_at(simulation.now());
      if (rates.flash && rates.hot_fraction > 0.0) {
        const std::uint64_t h = common::mix64(
            common::mix64(config.seed, 0xf1a54),
            (static_cast<std::uint64_t>(index) << 32) |
                static_cast<std::uint64_t>(fetch));
        if (static_cast<double>(h) <
            rates.hot_fraction * static_cast<double>(
                                     std::numeric_limits<std::uint64_t>::max())) {
          key = rates.hot_key % std::max<std::uint32_t>(content_keyspace, 1);
        }
      }
    }
    const bitswap::Cid cid = content->key_cid(key);

    measure::FetchSample sample;
    sample.at = simulation.now();
    sample.key = key;

    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < content_vantages.size(); ++i) {
      if (visible(peer, vantages[content_vantages[i].vantage])) {
        candidates.push_back(i);
      }
    }
    if (candidates.empty()) {
      emit_fetch(sample);
      return;
    }
    const std::uint64_t pick_key = (static_cast<std::uint64_t>(index) << 32) |
                                   static_cast<std::uint64_t>(fetch);
    ContentVantage& cv = content_vantages[candidates[static_cast<std::size_t>(
        common::mix64(common::mix64(config.seed, 0xfe7d), pick_key) %
        candidates.size())]];
    if (!contact_allowed(peer, cv.vantage)) {
      emit_fetch(sample);  // the lookup RPC never reached the vantage
      return;
    }
    sample.found_provider = !cv.records->get(cid, simulation.now()).empty();
    if (!sample.found_provider || !content->fetch_served(index, fetch)) {
      emit_fetch(sample);
      return;
    }

    // Real exchange: dial (first fetch of the session), send the want,
    // record the block arrival.  The fetcher host reuses the remote's own
    // PeerId so the vantage's Bitswap ledgers are per-peer, as in go-bitswap.
    const p2p::PeerId vantage_pid = vantages[cv.vantage].swarm->local_id();
    BitswapHost& fetcher = fetcher_host(index);
    const SimTime start = simulation.now();
    auto send_want = [this, index, key, start, vantage_pid, cid] {
      const auto it = fetcher_hosts.find(index);
      if (it == fetcher_hosts.end()) return;  // left before the dial finished
      it->second->engine_.want_block(
          vantage_pid, cid, [this, key, start](const bitswap::Cid&) {
            measure::FetchSample served;
            served.at = simulation.now();
            served.key = key;
            served.found_provider = true;
            served.served = true;
            served.latency = simulation.now() - start;
            emit_fetch(served);
          });
    };
    if (content_network->connected(fetcher.swarm_.local_id(), vantage_pid)) {
      send_want();
    } else {
      content_network->dial(fetcher.swarm_.local_id(), vantage_pid,
                            [this, key, start, send_want](bool ok) {
                              if (!ok) {
                                measure::FetchSample failed;
                                failed.at = simulation.now();
                                failed.key = key;
                                failed.found_provider = true;
                                emit_fetch(failed);
                                return;
                              }
                              send_want();
                            });
    }
  }

  void emit_fetch(const measure::FetchSample& sample) {
    if (content_sink != nullptr) content_sink->on_fetch(sample);
    if (auto* phase = current_phase()) ++phase->fetches;
  }

  [[nodiscard]] BitswapHost& fetcher_host(std::uint32_t index) {
    auto it = fetcher_hosts.find(index);
    if (it == fetcher_hosts.end()) {
      const RemotePeer& peer = population.peers()[index];
      auto host = std::make_unique<BitswapHost>(
          simulation, *content_network, peer.pid,
          p2p::Multiaddr{peer.ip, p2p::Transport::kTcp, peer.port});
      content_network->add_host(*host);
      it = fetcher_hosts.emplace(index, std::move(host)).first;
    }
    return *it->second;
  }

  /// Session hook: a departing fetcher cancels its in-flight wants (the
  /// bound on `pending_wants()` under churn) and leaves the network.
  void end_content_session(std::uint32_t index) {
    const auto it = fetcher_hosts.find(index);
    if (it == fetcher_hosts.end()) return;
    for (const ContentVantage& cv : content_vantages) {
      it->second->engine_.cancel_wants(vantages[cv.vantage].swarm->local_id());
    }
    content_network->remove_host(it->second->swarm_.local_id());
    fetcher_hosts.erase(it);
  }

  /// The vantage maintenance cadence (go-ipfs bucket refresh): sweep
  /// expired provider records on a schedule — not just lazily on `get` —
  /// and evict up to `replacement_cache_size` orphaned blocks per pass, so
  /// 14-day runs stay bounded.
  void schedule_content_maintenance() {
    for (std::size_t i = 0; i < content_vantages.size(); ++i) {
      content_tasks.push_back(simulation.schedule_every(
          content->spec().bucket_refresh_interval, [this, i] {
            ContentVantage& cv = content_vantages[i];
            cv.records->sweep(simulation.now());
            std::uint32_t evicted = 0;
            for (std::uint32_t key = 0; key < content_keyspace; ++key) {
              if (evicted >= content->spec().replacement_cache_size) break;
              const bitswap::Cid cid = content->key_cid(key);
              if (cv.host->engine_.has_block(cid) &&
                  cv.records->get(cid, simulation.now()).empty()) {
                cv.host->engine_.remove_block(cid);
                ++evicted;
              }
            }
          }));
    }
  }

  /// Publish one `measure::ContentSample` per sample interval: the record
  /// counts actually held at the server vantages next to the ground truth
  /// (provider slots of peers truly in-session right now).
  void schedule_content_samples() {
    content_tasks.push_back(simulation.schedule_every(
        content->spec().sample_interval, [this] {
          measure::ContentSample sample;
          sample.at = simulation.now();
          for (const ContentVantage& cv : content_vantages) {
            sample.vantage_records += cv.records->record_count();
            sample.vantage_keys += cv.records->key_count();
          }
          sample.true_records = true_record_count();
          if (content_sink != nullptr) content_sink->on_content(sample);
        }));
  }

  [[nodiscard]] common::Rng peer_rng(std::uint32_t index) {
    return rng.child(common::mix64(0x9e11, (static_cast<std::uint64_t>(index) << 20) +
                                               static_cast<std::uint64_t>(
                                                   simulation.now() & 0xfffff)));
  }

  void start_session(std::uint32_t index, SimTime session_end) {
    if (peer_states.online[index] != 0) return;
    peer_states.online[index] = 1;
    peer_states.session_end[index] = session_end;
    if (auto* phase = current_phase()) ++phase->sessions;
    const RemotePeer& peer = population.peers()[index];
    const CategoryParams& params = config.population.params(peer.category);
    common::Rng prng = peer_rng(index);

    if (peer.dht_server) add_online_server(index);

    for (std::size_t v = 0; v < vantages.size(); ++v) {
      if (!vantages[v].is_server) continue;  // client vantages dial out
      if (!visible(peer, vantages[v])) continue;
      if (params.maintain_probability > 0.0 &&
          prng.bernoulli(params.maintain_probability)) {
        const auto delay = static_cast<SimDuration>(prng.uniform(
            1.0 * kSecond, static_cast<double>(90 * kSecond)));
        schedule_maintained_open(index, v, delay);
      }
      if (params.queries_per_hour > 0.0) schedule_next_query(index, v);
    }

    if (content) start_content_session(index);

    // Session end.
    simulation.schedule_at(session_end, [this, index, session_end] {
      end_session(index, session_end);
    });
  }

  void end_session(std::uint32_t index, SimTime expected_end) {
    if (peer_states.online[index] == 0 ||
        peer_states.session_end[index] != expected_end) {
      return;
    }
    peer_states.online[index] = 0;
    peer_states.last_online[index] = simulation.now();
    const RemotePeer& peer = population.peers()[index];
    if (peer.dht_server) remove_online_server(index);
    if (content) end_content_session(index);
    // Close whatever maintained connections remain (queries close on their
    // own schedule, clamped to the session).
    for (std::size_t v = 0; v < vantages.size(); ++v) {
      // Maintained connections die with the session: the node left.
      // (Conn ids are not stored per peer; the close was scheduled at open
      // time for exactly this moment, so nothing to do here.)
      (void)v;
    }
  }

  // ---- connection processes ------------------------------------------------

  void schedule_maintained_open(std::uint32_t index, std::size_t v, SimDuration delay) {
    simulation.schedule_after(delay, [this, index, v] { open_maintained(index, v); });
  }

  void open_maintained(std::uint32_t index, std::size_t v) {
    if (peer_states.online[index] == 0 ||
        simulation.now() >= config.period.duration) {
      return;
    }
    if (maintained_flag(index, v) != 0) return;  // already maintained
    const RemotePeer& peer = population.peers()[index];
    // A vetoed maintained open is simply lost for this session (the next
    // session, or a post-trim reconnect, tries again).
    if (!contact_allowed(peer, v)) return;
    const CategoryParams& params = config.population.params(peer.category);
    Vantage& vantage = vantages[v];
    common::Rng prng = peer_rng(index ^ 0x40000000u);

    const auto conn_id = vantage.swarm->open_connection(
        peer.pid, dial_address(peer, prng), p2p::Direction::kInbound);
    vantage.conns[conn_id] = {index, /*maintained=*/true};
    maintained_flag(index, v) = 1;
    schedule_identify(index, v, conn_id);

    // The connection ends at the earlier of the remote's own trim
    // (retention) and the session end.
    const auto retention = static_cast<SimDuration>(prng.exponential(
        static_cast<double>(std::max<SimDuration>(params.retention_mean, kSecond))));
    const SimTime retention_end = simulation.now() + retention;
    const SimTime session_end = peer_states.session_end[index];
    const SimTime close_at = std::min(retention_end, session_end);
    const auto reason = close_at == session_end ? p2p::CloseReason::kPeerOffline
                                                : p2p::CloseReason::kRemoteTrim;
    simulation.schedule_at(close_at, [this, v, conn_id, reason] {
      vantages[v].swarm->close_connection(conn_id, reason);
    });
  }

  void schedule_next_query(std::uint32_t index, std::size_t v) {
    if (peer_states.online[index] == 0) return;
    const RemotePeer& peer = population.peers()[index];
    const CategoryParams& params = config.population.params(peer.category);
    common::Rng prng = peer_rng(index ^ 0x20000000u);
    const double mean_gap_s = 3600.0 / params.queries_per_hour;
    const auto delay =
        static_cast<SimDuration>(prng.exponential(mean_gap_s) * kSecond);
    const SimTime fire_at = simulation.now() + delay;
    if (fire_at >= peer_states.session_end[index] ||
        fire_at >= config.period.duration) {
      return;
    }
    simulation.schedule_at(fire_at, [this, index, v] {
      if (peer_states.online[index] == 0) return;
      open_query(index, v);
      schedule_next_query(index, v);
    });
  }

  void open_query(std::uint32_t index, std::size_t v) {
    // libp2p reuses an existing connection for new streams: a peer that
    // already maintains a connection to the vantage queries over it
    // instead of dialing a fresh one.
    if (maintained_flag(index, v) != 0) return;
    const RemotePeer& peer = population.peers()[index];
    if (!contact_allowed(peer, v)) return;  // this query attempt is lost
    const CategoryParams& params = config.population.params(peer.category);
    Vantage& vantage = vantages[v];
    common::Rng prng = peer_rng(index ^ 0x10000000u);

    const auto conn_id = vantage.swarm->open_connection(
        peer.pid, dial_address(peer, prng), p2p::Direction::kInbound);
    vantage.conns[conn_id] = {index, /*maintained=*/false};
    schedule_identify(index, v, conn_id);

    // Query connections close once the remote got its answers (lognormal
    // around the category's median; §IV-A's "crawler-like" short contacts).
    const double median_s = common::to_seconds(params.query_duration_median);
    double duration_s = median_s * std::exp(0.65 * prng.normal());
    duration_s = std::clamp(duration_s, 3.0, 15.0 * 60.0);
    SimTime close_at = simulation.now() + common::from_seconds(duration_s);
    if (conditions) {
      // Geography reaches the contact-duration data: a query exchange
      // spans round trips, so stretch the connection by one sampled RTT
      // from the condition model's zone matrix.
      close_at += 2 * conditions->one_way(peer.pid, vantage.swarm->local_id(),
                                          simulation.now(), prng);
    }
    close_at = std::min(close_at, peer_states.session_end[index]);
    simulation.schedule_at(close_at, [this, v, conn_id] {
      vantages[v].swarm->close_connection(conn_id, p2p::CloseReason::kRemoteClose);
    });
  }

  void schedule_identify(std::uint32_t index, std::size_t v,
                         p2p::ConnectionId conn_id) {
    // Identify completes roughly one round-trip after the connection opens.
    common::Rng prng = peer_rng(index ^ 0x08000000u);
    auto delay = static_cast<SimDuration>(
        prng.uniform(0.4 * kSecond, 2.5 * kSecond));
    if (conditions) {
      // The handshake RTT rides on the condition model's latency, so
      // inter-zone identifies land measurably later than intra-zone ones.
      delay += 2 * conditions->one_way(population.peers()[index].pid,
                                       vantages[v].swarm->local_id(),
                                       simulation.now(), prng);
    }
    simulation.schedule_after(delay, [this, index, v, conn_id] {
      Vantage& vantage = vantages[v];
      const p2p::Connection* connection = vantage.swarm->find(conn_id);
      if (connection == nullptr) return;  // closed before identify finished
      const RemotePeer& peer = population.peers()[index];
      if (peer.agent.empty()) return;  // the "missing" stream never identifies
      const SimTime now = simulation.now();
      vantage.swarm->peerstore().set_agent(peer.pid, peer.agent, now);
      vantage.swarm->peerstore().set_protocols(peer.pid, peer.protocols, now);
      // A slice of the identified DHT servers lands in the vantage's
      // routing table; go-ipfs tags those peers and their connections
      // survive trims — the paper's long-lived remnant (Peer-type averages
      // of 696 s / 2'445 s in P0 despite a 73 s median).  Stable servers
      // dominate routing tables because flaky ones get evicted.
      if (peer.dht_server && vantage.is_server) {
        const double rt_probability = [&] {
          switch (peer.category) {
            // Calibrated so the tagged population stays below the
            // smallest LowWater in Table I (600): ~330 tagged peers.
            case Category::kHydra:
            case Category::kCoreServer:
            case Category::kEthereum: return 0.22;
            case Category::kLightServer: return 0.015;
            default: return 0.01;
          }
        }();
        if (pair_visible(peer.pid, vantage.salt ^ 0x7ab1ULL, rt_probability)) {
          vantage.swarm->conn_manager().set_tag(peer.pid, 50);
        }
      }
    });
  }

  void handle_vantage_close(std::size_t v, const p2p::Connection& connection) {
    Vantage& vantage = vantages[v];
    const auto it = vantage.conns.find(connection.id);
    if (it == vantage.conns.end()) return;
    const ConnMeta meta = it->second;
    vantage.conns.erase(it);
    if (!meta.maintained) return;
    maintained_flag(meta.peer, v) = 0;

    // Maintained peers come back: after *our* trim they redial once their
    // routing needs us again; after their own trim likewise (§IV-A — this
    // is what turns low watermarks into high connection churn).
    const RemotePeer& peer = population.peers()[meta.peer];
    const CategoryParams& params = config.population.params(peer.category);
    if (!params.reconnect_after_trim) return;
    if (connection.reason != p2p::CloseReason::kLocalTrim &&
        connection.reason != p2p::CloseReason::kRemoteTrim) {
      return;
    }
    if (peer_states.online[meta.peer] == 0) return;
    common::Rng prng = peer_rng(meta.peer ^ 0x04000000u);
    const auto backoff = std::max<SimDuration>(
        static_cast<SimDuration>(prng.exponential(
            static_cast<double>(params.reconnect_backoff_mean))),
        30 * kSecond);
    schedule_maintained_open(meta.peer, v, backoff);
  }

  // ---- online-server index (client-vantage dial targets) -------------------

  void add_online_server(std::uint32_t index) {
    server_pos[index] = online_servers.size();
    online_servers.push_back(index);
  }

  void remove_online_server(std::uint32_t index) {
    const auto it = server_pos.find(index);
    if (it == server_pos.end()) return;
    const std::size_t pos = it->second;
    const std::uint32_t last = online_servers.back();
    online_servers[pos] = last;
    server_pos[last] = pos;
    online_servers.pop_back();
    server_pos.erase(it);
  }

  void schedule_client_dials() {
    // Only DHT-client vantages dial out at a high rate (P3): the node's own
    // lookups and gossip are its sole contact with the network.
    for (std::size_t v = 0; v < vantages.size(); ++v) {
      if (!vantages[v].is_server) schedule_next_client_dial(v);
    }
  }

  void schedule_next_client_dial(std::size_t v) {
    common::Rng prng = rng.child(common::mix64(0xd1a1, simulation.now() + v));
    const double mean_gap_s = 3600.0 / config.client_dials_per_hour;
    const auto delay = std::max<SimDuration>(
        static_cast<SimDuration>(prng.exponential(mean_gap_s) * kSecond), 20);
    simulation.schedule_after(delay, [this, v] {
      if (simulation.now() >= config.period.duration) return;
      client_dial(v);
      schedule_next_client_dial(v);
    });
  }

  void client_dial(std::size_t v) {
    if (online_servers.empty()) return;
    common::Rng prng = rng.child(common::mix64(0xd1a2, simulation.now()));
    const std::uint32_t index = online_servers[static_cast<std::size_t>(
        prng.uniform_u64(online_servers.size()))];
    const RemotePeer& peer = population.peers()[index];
    if (!outbound_allowed(peer, v)) return;  // NAT'd / cut off / dial lost
    Vantage& vantage = vantages[v];

    const auto conn_id = vantage.swarm->open_connection(
        peer.pid, p2p::Multiaddr{peer.ip, p2p::Transport::kTcp, peer.port},
        p2p::Direction::kOutbound);
    vantage.conns[conn_id] = {index, /*maintained=*/false};
    schedule_identify(index, v, conn_id);

    // A DHT client is the first thing the remote's connection manager
    // trims; durations stay short (P3's 120 s average, §IV-A).
    const auto retention = std::max<SimDuration>(
        static_cast<SimDuration>(prng.exponential(135.0) * kSecond), 5 * kSecond);
    const SimTime close_at =
        std::min(simulation.now() + retention, peer_states.session_end[index]);
    simulation.schedule_at(close_at, [this, v, conn_id] {
      vantages[v].swarm->close_connection(conn_id, p2p::CloseReason::kRemoteTrim);
    });
  }

  void schedule_server_outbound() {
    // Server vantages also dial out a little (their own DHT refreshes);
    // the paper observes "vastly more inbound than outbound" with shorter
    // outbound durations — these are those outbound queries.
    for (std::size_t v = 0; v < vantages.size(); ++v) {
      if (!vantages[v].is_server) continue;
      simulation.schedule_every(
          45 * kSecond,
          [this, v] {
            if (online_servers.empty()) return;
            common::Rng prng = rng.child(common::mix64(0x0b1, simulation.now() + v));
            // The vantage's own refresh pace scales with the replica size so
            // the inbound:outbound ratio matches at any population scale.
            if (!prng.bernoulli(std::min(config.population.scale, 1.0))) return;
            const std::uint32_t index = online_servers[static_cast<std::size_t>(
                prng.uniform_u64(online_servers.size()))];
            const RemotePeer& peer = population.peers()[index];
            if (!visible(peer, vantages[v])) return;
            if (!outbound_allowed(peer, v)) return;
            Vantage& vantage = vantages[v];
            const auto conn_id = vantage.swarm->open_connection(
                peer.pid, p2p::Multiaddr{peer.ip, p2p::Transport::kTcp, peer.port},
                p2p::Direction::kOutbound);
            vantage.conns[conn_id] = {index, false};
            schedule_identify(index, v, conn_id);
            const auto duration = std::max<SimDuration>(
                static_cast<SimDuration>(prng.exponential(75.0) * kSecond),
                3 * kSecond);
            const SimTime close_at = std::min(simulation.now() + duration,
                                              peer_states.session_end[index]);
            simulation.schedule_at(close_at, [this, v, conn_id] {
              vantages[v].swarm->close_connection(conn_id,
                                                  p2p::CloseReason::kLocalClose);
            });
          });
    }
  }

  // ---- routing gossip: PIDs known without connections ----------------------

  void schedule_gossip() {
    for (std::size_t v = 0; v < vantages.size(); ++v) {
      if (!vantages[v].is_server) continue;
      simulation.schedule_every(
          60 * kSecond,
          [this, v] {
            common::Rng prng = rng.child(common::mix64(0x905, simulation.now() + v));
            // Routing responses and gossip mention peers the vantage may
            // never connect to — the paper's ~3.6k known-but-unconnected
            // PIDs.  Stale records reference offline peers too.  The touch
            // rate scales with the population so scaled-down test runs keep
            // the same observed/unobserved mix.
            const double expected = 4.0 * config.population.scale;
            int touches = static_cast<int>(expected);
            if (prng.bernoulli(expected - touches)) ++touches;
            for (int i = 0; i < touches; ++i) {
              const auto index = static_cast<std::uint32_t>(
                  prng.uniform_u64(population.peers().size()));
              const RemotePeer& peer = population.peers()[index];
              if (peer_states.online[index] != 0 ||
                  peer_states.last_online[index] > simulation.now() - 24 * kHour ||
                  peer.category == Category::kCoreServer) {
                vantages[v].swarm->peerstore().touch(peer.pid, simulation.now());
              }
            }
          });
    }
  }

  // ---- active-crawler baseline ---------------------------------------------

  /// Parallel pure phase of a sharded crawl: classify every peer (skip /
  /// online / stale) and precompute the conditions reachability verdict.
  /// Everything read here — protocol lists, online flags, condition
  /// hashes — is stable for the duration of the event; no RNG stream is
  /// touched, so the sequential draw phase consumes the exact prng
  /// sequence of the unsharded loop.
  enum class CrawlClass : std::uint8_t { kSkip = 0, kOnline = 1, kStale = 2 };

  void classify_crawl_targets() {
    const std::size_t count = population.peers().size();
    crawl_classes.assign(count, 0);
    crawl_reachable.assign(count, 0);
    const SimTime now = simulation.now();
    const std::string kad_protocol(proto::kKad);
    for_shards(count, [&](unsigned, std::size_t first, std::size_t last) {
      for (std::size_t i = first; i < last; ++i) {
        const RemotePeer& peer = population.peers()[i];
        if (!peer.dht_server) continue;
        const bool announces_kad =
            std::find(peer.protocols.begin(), peer.protocols.end(),
                      kad_protocol) != peer.protocols.end();
        if (!announces_kad) continue;
        if (peer_states.online[i] != 0) {
          crawl_classes[i] = static_cast<std::uint8_t>(CrawlClass::kOnline);
          const bool reachable =
              conditions == std::nullopt ||
              (conditions->accepts_inbound(peer.pid, to_string(peer.category)) &&
               !conditions->zone_down(peer.pid, now) &&
               !conditions->zone_partitioned(peer.pid, now));
          crawl_reachable[i] = reachable ? 1 : 0;
        } else if (now - peer_states.last_online[i] < 24 * kHour) {
          crawl_classes[i] = static_cast<std::uint8_t>(CrawlClass::kStale);
        }
      }
    });
  }

  /// One crawl: the body the periodic task fires, extracted so the phased
  /// cadence below can invoke the identical sweep on a varying schedule.
  void run_crawl(measure::MeasurementSink& sink) {
    common::Rng prng = rng.child(common::mix64(0xc4a1, simulation.now()));
    CrawlSnapshot snapshot;
    snapshot.at = simulation.now();
    if (auto* phase = current_phase()) ++phase->crawls;
    if (shard_pool) {
      // Two-phase sharded sweep: parallel classification, then a
      // sequential draw/tally walk in peer order whose bernoulli
      // call sites mirror the unsharded loop below one-for-one.
      classify_crawl_targets();
      for (const RemotePeer& peer : population.peers()) {
        switch (static_cast<CrawlClass>(crawl_classes[peer.index])) {
          case CrawlClass::kSkip:
            break;
          case CrawlClass::kOnline: {
            const CategoryParams& params =
                config.population.params(peer.category);
            if (prng.bernoulli(params.crawl_visibility)) {
              if (crawl_reachable[peer.index] != 0) {
                ++snapshot.reached_servers;
              }
              ++snapshot.learned_pids;
            }
            break;
          }
          case CrawlClass::kStale:
            if (prng.bernoulli(0.5)) ++snapshot.learned_pids;
            break;
        }
      }
      sink.on_crawl(snapshot);
      return;
    }
    const std::string kad_protocol(proto::kKad);
    for (const RemotePeer& peer : population.peers()) {
      if (!peer.dht_server) continue;
      const bool announces_kad =
          std::find(peer.protocols.begin(), peer.protocols.end(), kad_protocol) !=
          peer.protocols.end();
      if (!announces_kad) continue;
      const CategoryParams& params = config.population.params(peer.category);
      if (peer_states.online[peer.index] != 0) {
        if (prng.bernoulli(params.crawl_visibility)) {
          // Conditions narrow the crawler's *reach*, never what it
          // has learned: outage and partitioned zones are cut off
          // from the crawler (it sits in "the rest" of the network)
          // and NAT classes refuse its dials, but routing tables
          // keep mentioning those PIDs either way.
          const bool reachable =
              conditions == std::nullopt ||
              (conditions->accepts_inbound(peer.pid,
                                           to_string(peer.category)) &&
               !conditions->zone_down(peer.pid, simulation.now()) &&
               !conditions->zone_partitioned(peer.pid, simulation.now()));
          if (reachable) ++snapshot.reached_servers;
          ++snapshot.learned_pids;
        }
      } else if (simulation.now() - peer_states.last_online[peer.index] <
                 24 * kHour) {
        // Stale routing-table entries: learned but not reachable.
        if (prng.bernoulli(0.5)) ++snapshot.learned_pids;
      }
    }
    sink.on_crawl(snapshot);
  }

  void schedule_crawler(measure::MeasurementSink& sink) {
    if (!config.enable_crawler) return;
    if (phases && phases->spec().modulates_crawl()) {
      // Phased cadence: the crawl interval divided by the program's crawl
      // rate where the wait begins, self-chained so the pace follows the
      // phase windows.  A program that never touches crawl_rate keeps the
      // legacy periodic task (identical event schedule).
      schedule_phased_crawl(sink, config.crawl_interval / 2);
      return;
    }
    crawler_task = simulation.schedule_every(
        config.crawl_interval, [this, &sink] { run_crawl(sink); },
        config.crawl_interval / 2);
  }

  void schedule_phased_crawl(measure::MeasurementSink& sink, SimDuration delay) {
    // Each hop replaces `crawler_task`, so run() can always cancel the
    // pending crawl exactly like it cancels the periodic task.
    crawler_task = simulation.schedule_after(delay, [this, &sink] {
      if (simulation.now() >= config.period.duration) return;
      run_crawl(sink);
      const auto next = std::max<SimDuration>(
          modulate(config.crawl_interval,
                   phases->rates_at(simulation.now()).crawl),
          kMinute);
      schedule_phased_crawl(sink, next);
    });
  }

  // ---- §IV-B metadata dynamics ---------------------------------------------

  void schedule_metadata_dynamics() {
    if (!config.enable_metadata_dynamics) return;
    common::Rng mrng = rng.child(0x3e7a);
    const double days =
        static_cast<double>(config.period.duration) / static_cast<double>(kDay);
    const double factor = config.population.scale * days / 3.0;

    // Candidate pools.
    std::vector<std::uint32_t> go_ipfs_stable;
    std::vector<std::uint32_t> kad_flappers;
    std::vector<std::uint32_t> autonat_candidates;
    std::vector<std::uint32_t> non_go_ipfs;
    for (const RemotePeer& peer : population.peers()) {
      const bool go = peer.agent.rfind("go-ipfs/", 0) == 0;
      switch (peer.category) {
        case Category::kCoreServer:
        case Category::kCoreClient:
          // Always-on peers: their identify pushes are reliably observed,
          // matching the paper's counted version changes.
          if (go) go_ipfs_stable.push_back(peer.index);
          break;
        default:
          break;
      }
      if (peer.dht_server && (peer.category == Category::kLightServer ||
                              peer.category == Category::kOneTime)) {
        kad_flappers.push_back(peer.index);
      }
      if (go) autonat_candidates.push_back(peer.index);
      if (!go && !peer.agent.empty() && peer.category == Category::kNormalUser) {
        non_go_ipfs.push_back(peer.index);
      }
    }

    auto pick = [&mrng](const std::vector<std::uint32_t>& pool) {
      return pool[static_cast<std::size_t>(mrng.uniform_u64(pool.size()))];
    };
    auto rounds = [factor](double base) {
      return static_cast<std::size_t>(std::llround(base * factor));
    };

    // Version-change events (Table III): upgrades / downgrades / commit
    // changes.  "Change" peers get a dirty build up front so dirty–dirty
    // dominates that kind, as in the paper.
    struct PlannedChange {
      std::uint32_t peer;
      common::VersionChangeKind kind;
    };
    std::vector<PlannedChange> planned;
    if (!go_ipfs_stable.empty()) {
      for (std::size_t i = 0; i < rounds(230); ++i) {
        planned.push_back({pick(go_ipfs_stable), common::VersionChangeKind::kUpgrade});
      }
      for (std::size_t i = 0; i < rounds(113); ++i) {
        planned.push_back({pick(go_ipfs_stable), common::VersionChangeKind::kDowngrade});
      }
      for (std::size_t i = 0; i < rounds(216); ++i) {
        const std::uint32_t index = pick(go_ipfs_stable);
        RemotePeer& peer = population.peers()[index];
        if (peer.agent.find("-dirty") == std::string::npos && mrng.bernoulli(0.96)) {
          peer.agent += "-dirty";  // pre-seed a dirty build
        }
        planned.push_back({index, common::VersionChangeKind::kChange});
      }
    }
    for (const PlannedChange& change : planned) {
      const auto at = static_cast<SimTime>(
          mrng.uniform(0.08, 0.95) * static_cast<double>(config.period.duration));
      simulation.schedule_at(at, [this, change] {
        apply_version_change(change.peer, change.kind);
      });
    }

    // One agent switched from a non-go-ipfs agent to go-ipfs (§IV-B).
    if (!non_go_ipfs.empty() && factor >= 0.4) {
      const std::uint32_t index = pick(non_go_ipfs);
      const auto at = static_cast<SimTime>(
          mrng.uniform(0.2, 0.8) * static_cast<double>(config.period.duration));
      simulation.schedule_at(at, [this, index] {
        common::Rng prng = peer_rng(index ^ 0x02000000u);
        set_peer_agent(index, sample_go_ipfs_agent(prng));
      });
    }

    // Protocol flapping: kad (server<->client role switches) and autonat.
    schedule_flapping(mrng, kad_flappers, rounds(2481), 34.0 * days / 3.0,
                      std::string(proto::kKad));
    schedule_flapping(mrng, autonat_candidates, rounds(3603), 30.0 * days / 3.0,
                      std::string(proto::kAutonat));
  }

  void schedule_flapping(common::Rng& mrng, const std::vector<std::uint32_t>& pool,
                         std::size_t peer_count, double toggles_per_peer,
                         const std::string& protocol) {
    if (pool.empty() || peer_count == 0 || toggles_per_peer <= 0.0) return;
    peer_count = std::min(peer_count, pool.size());
    // Deterministic choice of flapping peers: sample without replacement.
    common::Rng sampler = mrng.child(common::hash64(protocol));
    const auto chosen = sampler.sample_without_replacement(pool.size(), peer_count);
    const double mean_interval =
        static_cast<double>(config.period.duration) / toggles_per_peer;
    for (const std::size_t slot : chosen) {
      const std::uint32_t index = pool[slot];
      schedule_next_toggle(index, protocol, mean_interval,
                           sampler.child(index)());
    }
  }

  void schedule_next_toggle(std::uint32_t index, const std::string& protocol,
                            double mean_interval, std::uint64_t seed) {
    common::Rng prng(seed);
    const auto delay = std::max<SimDuration>(
        static_cast<SimDuration>(prng.exponential(mean_interval)), kMinute);
    const std::uint64_t next_seed = prng();
    simulation.schedule_after(delay, [this, index, protocol, mean_interval,
                                      next_seed] {
      if (simulation.now() >= config.period.duration) return;
      toggle_protocol(index, protocol);
      schedule_next_toggle(index, protocol, mean_interval, next_seed);
    });
  }

  void toggle_protocol(std::uint32_t index, const std::string& protocol) {
    RemotePeer& peer = population.peers()[index];
    const auto it = std::find(peer.protocols.begin(), peer.protocols.end(), protocol);
    if (it == peer.protocols.end()) {
      peer.protocols.push_back(protocol);
    } else {
      peer.protocols.erase(it);
    }
    publish_protocols(index);
  }

  void apply_version_change(std::uint32_t index, common::VersionChangeKind kind) {
    RemotePeer& peer = population.peers()[index];
    common::Rng prng = peer_rng(index ^ 0x01000000u);
    set_peer_agent(index, mutate_agent(prng, peer.agent, kind));
  }

  void set_peer_agent(std::uint32_t index, std::string agent) {
    RemotePeer& peer = population.peers()[index];
    if (peer.agent == agent) return;
    peer.agent = std::move(agent);
    // Identify-push to every vantage that already knows the peer.
    for (Vantage& vantage : vantages) {
      if (vantage.swarm->peerstore().find(peer.pid) != nullptr) {
        vantage.swarm->peerstore().set_agent(peer.pid, peer.agent, simulation.now());
      }
    }
  }

  void publish_protocols(std::uint32_t index) {
    const RemotePeer& peer = population.peers()[index];
    for (Vantage& vantage : vantages) {
      const auto* entry = vantage.swarm->peerstore().find(peer.pid);
      // Only identified peers re-announce (we have no channel otherwise).
      if (entry != nullptr && !entry->agent.empty()) {
        vantage.swarm->peerstore().set_protocols(peer.pid, peer.protocols,
                                                 simulation.now());
      }
    }
  }

  // ---- run -----------------------------------------------------------------

  void run(measure::MeasurementSink& sink) {
    sink.on_run_begin("campaign " + config.period.name);
    setup_vantages();
    setup_content();
    content_sink = &sink;
    for (Vantage& vantage : vantages) {
      vantage.recorder->start();
      vantage.swarm->start();
    }
    schedule_population();
    schedule_client_dials();
    schedule_server_outbound();
    schedule_gossip();
    schedule_crawler(sink);
    schedule_population_samples(sink);
    if (content) {
      schedule_content_maintenance();
      schedule_content_samples();
    }
    schedule_metadata_dynamics();

    simulation.run_until(config.period.duration);
    // The crawler, population-sample and content lambdas hold references
    // to `sink`, which dies with this call; cancel them so manual post-run
    // stepping cannot fire them.
    simulation.cancel(crawler_task);
    crawler_task = sim::kInvalidTask;
    simulation.cancel(population_task);
    population_task = sim::kInvalidTask;
    for (const sim::TaskId task : content_tasks) simulation.cancel(task);
    content_tasks.clear();
    content_sink = nullptr;

    for (Vantage& vantage : vantages) {
      vantage.recorder->finish();
      vantage.swarm->stop();
    }
    // Publish the per-head datasets, then the union the paper reports
    // (§III-C).  Heads are merged before publication so the union can be
    // built without keeping published datasets around.
    std::vector<measure::Dataset> heads;
    for (Vantage& vantage : vantages) {
      measure::Dataset dataset = vantage.recorder->take_dataset();
      if (vantage.name == "go-ipfs") {
        sink.on_dataset(measure::DatasetRole::kVantage, std::move(dataset));
      } else {
        heads.push_back(std::move(dataset));
      }
    }
    if (!heads.empty()) {
      measure::Dataset merged;
      merged.vantage = "Hydra (union)";
      for (const measure::Dataset& head : heads) merged.merge(head);
      for (measure::Dataset& head : heads) {
        sink.on_dataset(measure::DatasetRole::kHydraHead, std::move(head));
      }
      sink.on_dataset(measure::DatasetRole::kHydraUnion, std::move(merged));
    }
    measure::RunSummary summary;
    summary.population_size = population.peers().size();
    summary.events_executed = simulation.executed_events();
    if (phases) summary.phases = phase_counters;
    sink.on_run_end(summary);
  }

  // ---- members -------------------------------------------------------------

  CampaignConfig config;
  common::Rng rng;
  sim::Simulation simulation;
  Population population;
  std::optional<net::ConditionModel> conditions;
  std::optional<ChurnModel> churn;
  std::optional<ContentModel> content;
  // Phase program (DESIGN.md §14); empty unless `config.phases` is engaged.
  std::optional<PhaseProgram> phases;
  std::vector<measure::PhaseSummary> phase_counters;  ///< per-phase tallies
  std::uint32_t content_keyspace = 0;
  // Hosts must outlive the content network (net::Host lifetime contract),
  // so the network is declared *after* every host container below.
  std::vector<ContentVantage> content_vantages;
  std::unordered_map<std::uint32_t, std::unique_ptr<BitswapHost>> fetcher_hosts;
  std::unique_ptr<net::Network> content_network;
  std::vector<sim::TaskId> content_tasks;
  measure::MeasurementSink* content_sink = nullptr;  ///< valid during run()
  std::vector<Vantage> vantages;
  PeerStates peer_states;
  std::vector<std::uint8_t> maintained_flags;
  std::unordered_map<p2p::PeerId, std::uint32_t> pid_to_peer;
  std::vector<std::uint32_t> online_servers;
  std::unordered_map<std::uint32_t, std::size_t> server_pos;
  sim::TaskId crawler_task = sim::kInvalidTask;
  sim::TaskId population_task = sim::kInvalidTask;
  // Intra-trial sharding (DESIGN.md §13); all empty/null unless
  // `config.sharding` is engaged.
  runtime::WorkerLease shard_lease;
  std::unique_ptr<runtime::ShardPool> shard_pool;
  ChurnChains churn_chains;
  std::vector<std::uint8_t> crawl_classes;    ///< CrawlClass scratch per crawl
  std::vector<std::uint8_t> crawl_reachable;  ///< 0/1 scratch per crawl
};

std::optional<std::string> CampaignEngine::validate(const CampaignConfig& config) {
  const PeriodSpec& period = config.period;
  if (period.duration <= 0) return "period duration must be positive";
  if (!period.go_ipfs_present && period.hydra_heads <= 0) {
    return "campaign needs at least one vantage (go-ipfs or hydra heads)";
  }
  if (period.go_ipfs_present &&
      (period.go_low_water < 0 || period.go_high_water < period.go_low_water)) {
    return "go-ipfs watermarks must satisfy 0 <= LowWater <= HighWater";
  }
  if (period.hydra_heads < 0) return "hydra head count cannot be negative";
  if (period.hydra_heads > 0 &&
      (period.hydra_low_water < 0 ||
       period.hydra_high_water < period.hydra_low_water)) {
    return "hydra watermarks must satisfy 0 <= LowWater <= HighWater";
  }
  if (!(config.population.scale > 0.0)) return "population scale must be positive";
  if (config.vantage_visibility <= 0.0 || config.vantage_visibility > 1.0) {
    return "vantage_visibility must be in (0, 1]";
  }
  if (config.enable_crawler && config.crawl_interval <= 0) {
    return "crawl_interval must be positive when the crawler is enabled";
  }
  if (!(config.client_dials_per_hour > 0.0)) {
    return "client_dials_per_hour must be positive";
  }
  if (config.conditions) {
    if (auto error = net::ConditionSpec::validate(*config.conditions)) return error;
  }
  if (config.churn) {
    if (auto error = ChurnSpec::validate(*config.churn)) return error;
  }
  if (config.content) {
    if (auto error = ContentSpec::validate(*config.content)) return error;
  }
  if (config.phases) {
    if (auto error = PhaseProgramSpec::validate(*config.phases)) return error;
    const PhaseProgramSpec& phases = *config.phases;
    if (phases.total_duration() > config.period.duration) {
      return "phases.program: total hold exceeds period.duration_ms — "
             "trailing phases would never run";
    }
    if (phases.modulates_churn() && !config.churn) {
      return "phases: the program modulates churn rates or population but "
             "no churn section is engaged";
    }
    if (phases.modulates_content() && !config.content) {
      return "phases: the program modulates the content workload but no "
             "content section is engaged";
    }
    if (phases.modulates_crawl() && !config.enable_crawler) {
      return "phases: the program modulates crawl_rate but the crawler is "
             "disabled";
    }
    // Composing a churn-modulating program with diurnal churn is ambiguous
    // unless the scenario pins both modulations to the absolute simulation
    // clock (the only composition the engine defines; see
    // ChurnModel::rate_multiplier and docs/SCENARIOS.md).
    const bool diurnal = config.churn && config.churn->diurnal.has_value();
    if (phases.modulates_churn() && diurnal && !phases.diurnal_clock_absolute) {
      return "phases: a churn-modulating program combined with "
             "churn.diurnal requires \"diurnal_clock\": \"absolute\"";
    }
    if (phases.diurnal_clock_absolute && !diurnal) {
      return "phases.diurnal_clock: \"absolute\" requires a churn.diurnal "
             "section to acknowledge";
    }
  }
  if (config.sharding) {
    if (config.sharding->shards == 0) return "sharding.shards must be >= 1";
    if (config.sharding->slab <= 0) return "sharding.slab must be positive";
  }
  return std::nullopt;
}

std::expected<CampaignEngine, std::string> CampaignEngine::create(
    CampaignConfig config) {
  if (auto error = validate(config)) return std::unexpected(std::move(*error));
  return CampaignEngine(std::move(config));
}

CampaignEngine::CampaignEngine(CampaignConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

CampaignEngine::CampaignEngine(CampaignEngine&&) noexcept = default;
CampaignEngine& CampaignEngine::operator=(CampaignEngine&&) noexcept = default;
CampaignEngine::~CampaignEngine() = default;

void CampaignEngine::run(measure::MeasurementSink& sink) { impl_->run(sink); }

CampaignResult CampaignEngine::run() {
  CampaignResultSink sink;
  impl_->run(sink);
  return sink.take_result();
}

sim::Simulation& CampaignEngine::simulation() { return impl_->simulation; }

}  // namespace ipfs::scenario
