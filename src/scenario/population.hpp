// Population builder: materialises the synthetic peer population described
// by a `PopulationSpec` (identities, IPs, agents, protocol sets, session
// windows) for a measurement period of a given duration.
//
// Behaviour is read through `PopulationSpec::params`, so per-category
// overrides — whether set in C++ or parsed from a scenario file by
// `scenario::ScenarioSpec` — reshape the materialised population without
// code changes.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "net/ip_allocator.hpp"
#include "scenario/population_spec.hpp"

namespace ipfs::scenario {

/// The materialised population for one campaign.
class Population {
 public:
  /// Build a population for a run of `duration`.  Arrival-stream categories
  /// (one-time, ephemeral, rotating) scale with duration; standing
  /// categories are duration-independent.
  Population(const PopulationSpec& spec, common::SimDuration duration,
             common::Rng rng);

  [[nodiscard]] const std::vector<RemotePeer>& peers() const noexcept {
    return peers_;
  }
  [[nodiscard]] std::vector<RemotePeer>& peers() noexcept { return peers_; }
  [[nodiscard]] const PopulationSpec& spec() const noexcept { return spec_; }

  [[nodiscard]] std::size_t count(Category category) const;

  /// Peers announcing /ipfs/kad/1.0.0 (potential crawler targets).
  [[nodiscard]] std::size_t dht_server_count() const;

 private:
  void build(common::SimDuration duration);
  std::uint32_t scaled(std::uint32_t base) const;

  RemotePeer& emplace_peer(Category category, common::Rng& rng);
  void assign_one_shot_window(RemotePeer& peer, common::SimDuration duration,
                              common::Rng& rng);
  void assign_nat_groups(common::Rng& rng);

  PopulationSpec spec_;
  common::Rng rng_;
  net::IpAllocator ips_;
  std::vector<RemotePeer> peers_;
};

}  // namespace ipfs::scenario
