#include "scenario/population_spec.hpp"

#include <array>
#include <cstdio>

#include "p2p/protocols.hpp"

namespace ipfs::scenario {

namespace proto = p2p::protocols;
using common::kHour;
using common::kMinute;
using common::kSecond;

std::string_view to_string(Category category) noexcept {
  switch (category) {
    case Category::kHydra: return "hydra";
    case Category::kCoreServer: return "core-server";
    case Category::kCoreClient: return "core-client";
    case Category::kNormalUser: return "normal-user";
    case Category::kLightServer: return "light-server";
    case Category::kLightClient: return "light-client";
    case Category::kCrawler: return "crawler";
    case Category::kOneTime: return "one-time";
    case Category::kRotatingPid: return "rotating-pid";
    case Category::kEphemeral: return "ephemeral";
    case Category::kEthereum: return "ethereum";
  }
  return "?";
}

std::optional<Category> category_from_string(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    const auto category = static_cast<Category>(i);
    if (to_string(category) == name) return category;
  }
  return std::nullopt;
}

std::string_view to_string(SessionKind kind) noexcept {
  switch (kind) {
    case SessionKind::kAlwaysOn: return "always-on";
    case SessionKind::kRecurring: return "recurring";
    case SessionKind::kOneShot: return "one-shot";
  }
  return "?";
}

std::optional<SessionKind> session_kind_from_string(std::string_view name) noexcept {
  for (const SessionKind kind :
       {SessionKind::kAlwaysOn, SessionKind::kRecurring, SessionKind::kOneShot}) {
    if (to_string(kind) == name) return kind;
  }
  return std::nullopt;
}

const CategoryParams& default_params(Category category) {
  // Calibration notes (all targets from the paper; see header comment):
  //  - retention means set so that P4-style runs (no local trim) yield
  //    Table II's All-avg ≈ 1 h, Peer-avg ≈ 5.5 h, median ≈ 85 s;
  //  - reconnect backoffs set so that P0-style runs (600/900 watermarks)
  //    yield ~20 connections per core peer over 3 d (1.28 M total);
  //  - query rates set so a 1-day run produces ≈ 285 k connections.
  static const std::array<CategoryParams, kCategoryCount> kTable = [] {
    std::array<CategoryParams, kCategoryCount> table{};

    CategoryParams hydra;
    hydra.category = Category::kHydra;
    hydra.session = SessionKind::kAlwaysOn;
    hydra.dht_server = true;
    hydra.maintain_probability = 1.0;
    hydra.retention_mean = 60 * kHour;  // hydras run high watermarks
    hydra.queries_per_hour = 0.8;
    hydra.reconnect_after_trim = true;
    hydra.reconnect_backoff_mean = 30 * kMinute;
    hydra.crawl_visibility = 0.99;
    table[static_cast<std::size_t>(Category::kHydra)] = hydra;

    CategoryParams core_server;
    core_server.category = Category::kCoreServer;
    core_server.session = SessionKind::kAlwaysOn;
    core_server.dht_server = true;
    core_server.maintain_probability = 1.0;
    core_server.retention_mean = 40 * kHour;
    core_server.queries_per_hour = 0.4;
    core_server.reconnect_after_trim = true;
    core_server.reconnect_backoff_mean = 25 * kMinute;
    core_server.crawl_visibility = 0.98;
    table[static_cast<std::size_t>(Category::kCoreServer)] = core_server;

    CategoryParams core_client;
    core_client.category = Category::kCoreClient;
    core_client.session = SessionKind::kAlwaysOn;
    core_client.dht_server = false;
    core_client.maintain_probability = 1.0;
    core_client.retention_mean = 36 * kHour;
    core_client.queries_per_hour = 0.10;
    core_client.reconnect_after_trim = true;
    core_client.reconnect_backoff_mean = 35 * kMinute;
    core_client.crawl_visibility = 0.0;  // clients are invisible to crawls
    table[static_cast<std::size_t>(Category::kCoreClient)] = core_client;

    CategoryParams normal;
    normal.category = Category::kNormalUser;
    normal.session = SessionKind::kOneShot;
    normal.mean_session = 9 * kHour;  // clipped into (2 h, 24 h) at build
    normal.dht_server = false;        // 9 % become servers at build time
    normal.maintain_probability = 1.0;
    normal.retention_mean = 7 * kHour;
    normal.queries_per_hour = 0.04;
    normal.reconnect_after_trim = true;
    normal.reconnect_backoff_mean = 40 * kMinute;
    normal.crawl_visibility = 0.85;
    table[static_cast<std::size_t>(Category::kNormalUser)] = normal;

    CategoryParams light_server;
    light_server.category = Category::kLightServer;
    light_server.session = SessionKind::kRecurring;
    light_server.mean_session = 12 * kHour;
    light_server.mean_gap = 5 * kHour;
    light_server.dht_server = true;
    light_server.maintain_probability = 0.25;
    light_server.retention_mean = 25 * kMinute;
    light_server.queries_per_hour = 0.12;
    light_server.reconnect_after_trim = false;
    light_server.crawl_visibility = 0.75;
    table[static_cast<std::size_t>(Category::kLightServer)] = light_server;

    CategoryParams light_client;
    light_client.category = Category::kLightClient;
    light_client.session = SessionKind::kRecurring;
    light_client.mean_session = 6 * kHour;
    light_client.mean_gap = 8 * kHour;
    light_client.dht_server = false;
    light_client.maintain_probability = 0.25;
    light_client.retention_mean = 15 * kMinute;
    light_client.queries_per_hour = 0.25;
    light_client.reconnect_after_trim = false;
    light_client.crawl_visibility = 0.0;
    table[static_cast<std::size_t>(Category::kLightClient)] = light_client;

    CategoryParams crawler;
    crawler.category = Category::kCrawler;
    crawler.session = SessionKind::kAlwaysOn;
    crawler.dht_server = false;
    crawler.maintain_probability = 0.0;
    crawler.retention_mean = 0;
    crawler.queries_per_hour = 5.5;  // ≈ 130 visits/day — crawl sweeps
    crawler.query_duration_median = 45 * kSecond;
    crawler.reconnect_after_trim = false;
    crawler.crawl_visibility = 0.0;
    table[static_cast<std::size_t>(Category::kCrawler)] = crawler;

    CategoryParams one_time;
    one_time.category = Category::kOneTime;
    one_time.session = SessionKind::kOneShot;
    one_time.mean_session = 35 * kMinute;
    one_time.dht_server = false;  // 32 % become servers at build time
    one_time.maintain_probability = 0.75;
    one_time.retention_mean = 25 * kMinute;
    one_time.queries_per_hour = 0.1;
    one_time.reconnect_after_trim = false;
    one_time.crawl_visibility = 0.5;
    table[static_cast<std::size_t>(Category::kOneTime)] = one_time;

    CategoryParams rotating;
    rotating.category = Category::kRotatingPid;
    rotating.session = SessionKind::kOneShot;
    rotating.mean_session = 4 * kMinute;
    rotating.dht_server = false;
    rotating.maintain_probability = 1.0;
    rotating.retention_mean = 3 * kMinute;
    rotating.queries_per_hour = 0.0;
    rotating.reconnect_after_trim = false;
    rotating.crawl_visibility = 0.0;
    table[static_cast<std::size_t>(Category::kRotatingPid)] = rotating;

    CategoryParams ephemeral;
    ephemeral.category = Category::kEphemeral;
    ephemeral.session = SessionKind::kOneShot;
    ephemeral.mean_session = 150 * kSecond;  // a couple of minutes, no identify
    ephemeral.dht_server = false;
    ephemeral.maintain_probability = 1.0;
    ephemeral.retention_mean = 100 * kSecond;
    ephemeral.queries_per_hour = 0.0;
    ephemeral.reconnect_after_trim = false;
    ephemeral.crawl_visibility = 0.0;
    table[static_cast<std::size_t>(Category::kEphemeral)] = ephemeral;

    CategoryParams ethereum;
    ethereum.category = Category::kEthereum;
    ethereum.session = SessionKind::kAlwaysOn;
    ethereum.dht_server = false;
    ethereum.maintain_probability = 1.0;
    ethereum.retention_mean = 30 * kHour;
    ethereum.queries_per_hour = 0.1;
    ethereum.reconnect_after_trim = true;
    ethereum.crawl_visibility = 0.0;
    table[static_cast<std::size_t>(Category::kEthereum)] = ethereum;

    return table;
  }();
  return kTable[static_cast<std::size_t>(category)];
}

const CategoryParams& PopulationSpec::params(Category category) const {
  const auto& overridden = overrides[static_cast<std::size_t>(category)];
  return overridden ? *overridden : default_params(category);
}

namespace {

struct VersionWeight {
  const char* version;
  double weight;
};

/// Fig. 3's go-ipfs version mix (grouped bars), normalised weights.
constexpr VersionWeight kGoIpfsVersions[] = {
    {"0.8.0", 21.0},     // largest bar (includes the disguised storm block)
    {"0.11.0", 18.0},   {"0.10.0", 13.0},    {"0.9.1", 7.0},
    {"0.7.0", 5.0},     {"0.4.22", 4.4},     {"0.6.0", 3.6},
    {"0.4.23", 3.0},    {"0.9.0", 1.8},      {"0.4.21", 1.6},
    {"0.11.0-dev", 0.9},{"0.5.0-dev", 0.8},  {"0.12.0-dev", 0.4},
    {"0.5.1", 1.1},     {"0.6.1", 0.6},
};

struct OtherAgentWeight {
  const char* agent;
  double weight;
};

/// Fig. 3's non-go-ipfs mix ("other" block + named curiosities).
constexpr OtherAgentWeight kOtherAgents[] = {
    {"storm", 38.0},
    {"ioi", 22.0},
    {"go-qkfile/0.9.1/", 6.0},
    {"ant/0.2.1/fe027af", 4.0},
    {"rust-libp2p/0.40.0", 5.0},
    {"js-libp2p/0.30.0", 4.0},
    {"lotus-1.13.0", 3.0},
    {"go-libp2p/0.15.0", 3.5},
    {"berty/2.0", 1.5},
    {"iroha/0.3", 1.0},
    {"edgevpn/0.8", 1.0},
    {"keep-client/1.3", 1.0},
    {"textile/2.6", 1.0},
    {"p2pd/0.5", 0.8},
    {"openbazaar-go/0.14", 0.7},
};

std::string random_commit(common::Rng& rng, bool dirty) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%08llx",
                static_cast<unsigned long long>(rng() & 0xffffffffULL));
  std::string commit = buffer;
  if (dirty) commit += "-dirty";
  return commit;
}

/// Release builds of the same version share one commit hash; only people
/// building from source produce novel commit strings.  This keeps the
/// distinct-agent-string count near the paper's 323.
std::string release_commit(std::string_view version) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%08llx",
                static_cast<unsigned long long>(common::hash64(version)) &
                    0xffffffffULL);
  return buffer;
}

}  // namespace

std::string sample_go_ipfs_agent(common::Rng& rng) {
  double total = 0.0;
  for (const VersionWeight& vw : kGoIpfsVersions) total += vw.weight;
  // 6 % of go-ipfs agents carry a rare long-tail version drawn from a
  // bounded pool of ~270 pre-release builds; this is how the dataset
  // reaches the paper's 263 distinct go-ipfs version strings.
  if (rng.bernoulli(0.015)) {
    char version[32];
    std::snprintf(version, sizeof(version), "0.%d.%d-rc%d",
                  static_cast<int>(rng.uniform_int(4, 12)),
                  static_cast<int>(rng.uniform_int(0, 2)),
                  static_cast<int>(rng.uniform_int(1, 3)));
    return std::string("go-ipfs/") + version + "/" + release_commit(version);
  }
  double point = rng.uniform() * total;
  const char* chosen = kGoIpfsVersions[0].version;
  for (const VersionWeight& vw : kGoIpfsVersions) {
    point -= vw.weight;
    if (point < 0.0) {
      chosen = vw.version;
      break;
    }
  }
  // ~4 % of users run self-built binaries with novel (often dirty) commits;
  // everyone else announces the shared release commit of their version.
  if (rng.bernoulli(0.002)) {
    return std::string("go-ipfs/") + chosen + "/" +
           random_commit(rng, rng.bernoulli(0.5));
  }
  return std::string("go-ipfs/") + chosen + "/" + release_commit(chosen);
}

std::string sample_other_agent(common::Rng& rng) {
  double total = 0.0;
  for (const OtherAgentWeight& aw : kOtherAgents) total += aw.weight;
  double point = rng.uniform() * total;
  for (const OtherAgentWeight& aw : kOtherAgents) {
    point -= aw.weight;
    if (point < 0.0) return aw.agent;
  }
  return kOtherAgents[0].agent;
}

std::vector<std::string> protocols_for(Category category, bool dht_server,
                                       const std::string& agent, common::Rng& rng) {
  std::vector<std::string> protocols;
  auto add = [&protocols](std::string_view p) { protocols.emplace_back(p); };

  if (agent.empty()) return protocols;  // identify never completed

  // Baseline libp2p surface nearly everyone announces (Fig. 4: id/ping/
  // relay at ≈ full height).
  add(proto::kIdentify);
  add(proto::kIdentifyPush);
  add(proto::kPing);
  add(proto::kRelayV1);
  if (rng.bernoulli(0.35)) add(proto::kRelayV2Stop);

  if (dht_server) add(proto::kKad);

  const bool is_go_ipfs = agent.rfind("go-ipfs/", 0) == 0;
  const bool is_disguised_storm = is_go_ipfs && category == Category::kLightServer &&
                                  agent.find("/0.8.0/") != std::string::npos;
  const bool is_storm = agent == "storm";
  const bool is_ioi = agent == "ioi";
  const bool is_hydra = agent.rfind("hydra-booster", 0) == 0;
  const bool is_crawler = category == Category::kCrawler;

  if (is_storm || is_disguised_storm) {
    // The §IV-B fingerprint: storm-family nodes announce sbptp/sfst and,
    // crucially, *no* bitswap even when claiming to be go-ipfs.
    add(proto::kSbptp);
    add(proto::kSfst1);
    if (rng.bernoulli(0.5)) add(proto::kSfst2);
    return protocols;
  }
  if (is_ioi) {
    add(proto::kIoiDial);
    add(proto::kIoiPortssub);
    add(proto::kFloodsub);
    return protocols;
  }
  if (is_hydra) {
    return protocols;  // heads serve DHT + base protocols only
  }
  if (is_crawler) {
    return protocols;  // crawlers identify but serve nothing
  }

  if (is_go_ipfs) {
    add(proto::kBitswap100);
    add(proto::kBitswap110);
    add(proto::kBitswap120);
    add(proto::kBitswap);
    add(proto::kMeshsub10);
    if (rng.bernoulli(0.7)) add(proto::kMeshsub11);
    if (rng.bernoulli(0.72)) add(proto::kAutonat);
    if (rng.bernoulli(0.2)) add(proto::kFetch);
    if (rng.bernoulli(0.1)) add(proto::kDelta);
    if (rng.bernoulli(0.03)) add(std::string(proto::kX) + "custom/1.0");
  } else {
    // Other libp2p stacks: partial surfaces.
    if (rng.bernoulli(0.55)) add(proto::kBitswap120);
    if (rng.bernoulli(0.4)) add(proto::kMeshsub11);
    if (rng.bernoulli(0.3)) add(proto::kFloodsub);
    if (rng.bernoulli(0.25)) add(proto::kAutonat);
  }
  return protocols;
}

}  // namespace ipfs::scenario
