#include "scenario/churn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ipfs::scenario {

using common::SimDuration;
using common::SimTime;

// ---- SessionDistribution ----------------------------------------------------

double SessionDistribution::sample(common::Rng& rng) const noexcept {
  switch (kind) {
    case Kind::kExponential:
      return rng.exponential(mean_ms);
    case Kind::kWeibull: {
      // Inverse CDF: lambda * (-ln(1-u))^(1/k); u in [0, 1) keeps the log
      // argument in (0, 1].
      const double u = rng.uniform();
      return scale_ms * std::pow(-std::log1p(-u), 1.0 / shape);
    }
    case Kind::kLognormal:
      return median_ms * std::exp(sigma * rng.normal());
  }
  return 0.0;
}

double SessionDistribution::analytic_mean() const noexcept {
  switch (kind) {
    case Kind::kExponential:
      return mean_ms;
    case Kind::kWeibull:
      return scale_ms * std::tgamma(1.0 + 1.0 / shape);
    case Kind::kLognormal:
      return median_ms * std::exp(0.5 * sigma * sigma);
  }
  return 0.0;
}

double SessionDistribution::analytic_median() const noexcept {
  constexpr double kLn2 = 0.6931471805599453;
  switch (kind) {
    case Kind::kExponential:
      return mean_ms * kLn2;
    case Kind::kWeibull:
      return scale_ms * std::pow(kLn2, 1.0 / shape);
    case Kind::kLognormal:
      return median_ms;
  }
  return 0.0;
}

std::string_view to_string(SessionDistribution::Kind kind) noexcept {
  switch (kind) {
    case SessionDistribution::Kind::kExponential: return "exponential";
    case SessionDistribution::Kind::kWeibull: return "weibull";
    case SessionDistribution::Kind::kLognormal: break;
  }
  return "lognormal";
}

std::optional<SessionDistribution::Kind> distribution_kind_from_string(
    std::string_view name) noexcept {
  for (const auto kind : {SessionDistribution::Kind::kExponential,
                          SessionDistribution::Kind::kWeibull,
                          SessionDistribution::Kind::kLognormal}) {
    if (to_string(kind) == name) return kind;
  }
  return std::nullopt;
}

// ---- ChurnSpec::validate ----------------------------------------------------

namespace {

std::optional<std::string> validate_distribution(const SessionDistribution& d,
                                                 const std::string& path) {
  switch (d.kind) {
    case SessionDistribution::Kind::kExponential:
      if (!(d.mean_ms > 0.0)) return path + ": mean_ms must be > 0";
      break;
    case SessionDistribution::Kind::kWeibull:
      if (!(d.shape > 0.0)) return path + ": shape must be > 0";
      if (!(d.scale_ms > 0.0)) return path + ": scale_ms must be > 0";
      break;
    case SessionDistribution::Kind::kLognormal:
      if (!(d.median_ms > 0.0)) return path + ": median_ms must be > 0";
      if (d.sigma < 0.0) return path + ": sigma must be >= 0";
      break;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> ChurnSpec::validate(const ChurnSpec& spec) {
  if (auto error = validate_distribution(spec.session, "churn.session")) {
    return error;
  }
  if (auto error = validate_distribution(spec.gap, "churn.gap")) return error;
  if (spec.initial_online < 0.0 || spec.initial_online > 1.0) {
    return "churn: initial_online must be in [0, 1]";
  }
  if (spec.sample_interval <= 0) {
    return "churn: sample_interval_ms must be > 0";
  }
  if (spec.diurnal) {
    const DiurnalSpec& diurnal = *spec.diurnal;
    if (diurnal.amplitude < 0.0 || diurnal.amplitude >= 1.0) {
      return "churn.diurnal: amplitude must be in [0, 1)";
    }
    if (diurnal.period <= 0) return "churn.diurnal: period_ms must be > 0";
    if (diurnal.phase < 0 || diurnal.phase >= diurnal.period) {
      return "churn.diurnal: phase_ms must be in [0, period_ms)";
    }
  }
  std::array<bool, kCategoryCount> seen{};
  for (std::size_t i = 0; i < spec.categories.size(); ++i) {
    const ChurnCategorySpec& entry = spec.categories[i];
    const std::string prefix =
        "churn.categories." + std::string(to_string(entry.category));
    const auto slot = static_cast<std::size_t>(entry.category);
    if (slot >= kCategoryCount) return prefix + ": unknown category";
    if (seen[slot]) return prefix + ": duplicate category override";
    seen[slot] = true;
    if (auto error = validate_distribution(entry.session, prefix + ".session")) {
      return error;
    }
    if (auto error = validate_distribution(entry.gap, prefix + ".gap")) {
      return error;
    }
  }
  return std::nullopt;
}

// ---- ChurnModel -------------------------------------------------------------

ChurnModel::ChurnModel(ChurnSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
  override_slot_.fill(-1);
  for (std::size_t i = 0; i < spec_.categories.size(); ++i) {
    override_slot_[static_cast<std::size_t>(spec_.categories[i].category)] =
        static_cast<std::int32_t>(i);
  }
}

const SessionDistribution& ChurnModel::session_for(Category category) const {
  const std::int32_t slot = override_slot_[static_cast<std::size_t>(category)];
  return slot < 0 ? spec_.session
                  : spec_.categories[static_cast<std::size_t>(slot)].session;
}

const SessionDistribution& ChurnModel::gap_for(Category category) const {
  const std::int32_t slot = override_slot_[static_cast<std::size_t>(category)];
  return slot < 0 ? spec_.gap
                  : spec_.categories[static_cast<std::size_t>(slot)].gap;
}

common::Rng ChurnModel::draw_rng(std::uint64_t salt, std::uint32_t node,
                                 std::uint32_t session) const noexcept {
  // A fresh generator per draw keeps every sample a pure function of
  // (node, session, seed) — independent of call order (DESIGN.md §5).
  const std::uint64_t key =
      (static_cast<std::uint64_t>(node) << 32) | static_cast<std::uint64_t>(session);
  return common::Rng(common::mix64(common::mix64(seed_, salt), key));
}

common::SimDuration ChurnModel::session_length(std::uint32_t node,
                                               std::uint32_t session) const {
  common::Rng rng = draw_rng(0x5e55, node, session);
  return static_cast<SimDuration>(spec_.session.sample(rng));
}

common::SimDuration ChurnModel::session_length(std::uint32_t node,
                                               std::uint32_t session,
                                               Category category) const {
  common::Rng rng = draw_rng(0x5e55, node, session);
  return static_cast<SimDuration>(session_for(category).sample(rng));
}

common::SimDuration ChurnModel::gap_length(std::uint32_t node,
                                           std::uint32_t session,
                                           common::SimTime at) const {
  common::Rng rng = draw_rng(0x6a90, node, session);
  return static_cast<SimDuration>(spec_.gap.sample(rng) / rate_multiplier(at));
}

common::SimDuration ChurnModel::gap_length(std::uint32_t node,
                                           std::uint32_t session,
                                           common::SimTime at,
                                           Category category) const {
  common::Rng rng = draw_rng(0x6a90, node, session);
  return static_cast<SimDuration>(gap_for(category).sample(rng) /
                                  rate_multiplier(at));
}

bool ChurnModel::initially_online(std::uint32_t node) const noexcept {
  const std::uint64_t h = common::mix64(common::mix64(seed_, 0x071e), node);
  return static_cast<double>(h) <
         spec_.initial_online *
             static_cast<double>(std::numeric_limits<std::uint64_t>::max());
}

bool ChurnModel::redraw_address(std::uint32_t node,
                                std::uint32_t session) const noexcept {
  if (session == 0) return false;  // the first session uses the built address
  const std::uint64_t key =
      (static_cast<std::uint64_t>(node) << 32) | static_cast<std::uint64_t>(session);
  const std::uint64_t h = common::mix64(common::mix64(seed_, 0xadd2), key);
  return static_cast<double>(h) <
         kDualHomeAlternateProbability *
             static_cast<double>(std::numeric_limits<std::uint64_t>::max());
}

// Clock contract (DESIGN.md §14): `at` is the ABSOLUTE simulation time —
// `phase_ms` offsets the wave from t = 0 and is never rebased by a
// `"phases"` program.  When a churn-modulating phase program runs next to
// a diurnal spec, both multipliers read this same absolute clock and the
// engine multiplies them (gap / (diurnal * phase_churn)); the scenario
// must carry `"diurnal_clock": "absolute"` to acknowledge that — every
// other composition is rejected by `CampaignEngine::validate`.
double ChurnModel::rate_multiplier(common::SimTime at) const noexcept {
  if (!spec_.diurnal) return 1.0;
  const DiurnalSpec& diurnal = *spec_.diurnal;
  constexpr double kTwoPi = 6.283185307179586;
  const double angle = kTwoPi *
                       static_cast<double>(at - diurnal.phase) /
                       static_cast<double>(diurnal.period);
  return 1.0 + diurnal.amplitude * std::cos(angle);
}

}  // namespace ipfs::scenario
