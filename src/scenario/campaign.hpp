// Campaign engine: runs one measurement period (Table I) of the synthetic
// network against the vantage nodes and returns their datasets.
//
// This is the "campaign fidelity" mode of DESIGN.md §2: remote peers are
// population processes that interact *only* with the vantage swarms (whose
// connection managers, peerstores and recorders are the real
// implementations from p2p/ and measure/).  Remote-to-remote traffic is not
// simulated — the paper's dataset never contains it either.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "measure/recorder.hpp"
#include "scenario/period.hpp"
#include "scenario/population.hpp"
#include "sim/simulation.hpp"

namespace ipfs::scenario {

/// One active-crawler snapshot (the Fig. 2 baseline).
struct CrawlSnapshot {
  common::SimTime at = 0;
  std::size_t reached_servers = 0;  ///< online, reachable DHT servers
  std::size_t learned_pids = 0;     ///< incl. stale routing-table entries
};

/// Campaign configuration.
struct CampaignConfig {
  PeriodSpec period = PeriodSpec::P4();
  PopulationSpec population = PopulationSpec::paper_scale();
  std::uint64_t seed = 20211203;

  /// Probability that a given remote peer's DHT position brings it into
  /// contact with a given vantage identity at all (§III-C's horizon).
  double vantage_visibility = 0.93;

  bool enable_crawler = true;
  common::SimDuration crawl_interval = 8 * common::kHour;

  /// §IV-B dynamics: version changes and kad/autonat flapping.
  bool enable_metadata_dynamics = true;

  /// Outbound dial rate of a DHT-client vantage (P3's behaviour), per hour.
  double client_dials_per_hour = 1980.0;
};

/// Datasets and baselines produced by a campaign run.
struct CampaignResult {
  std::optional<measure::Dataset> go_ipfs;
  std::vector<measure::Dataset> hydra_heads;
  std::optional<measure::Dataset> hydra_union;
  std::vector<CrawlSnapshot> crawls;

  std::size_t population_size = 0;
  std::size_t events_executed = 0;

  /// Crawler min/max of reached servers across snapshots (Fig. 2 band).
  [[nodiscard]] std::pair<std::size_t, std::size_t> crawler_min_max() const;
};

/// Runs one campaign.  Use a fresh engine per run.
class CampaignEngine {
 public:
  explicit CampaignEngine(CampaignConfig config);
  ~CampaignEngine();

  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  /// Execute the full period and collect the results.
  [[nodiscard]] CampaignResult run();

  /// The simulation clock (exposed for tests that step manually).
  [[nodiscard]] sim::Simulation& simulation();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ipfs::scenario
