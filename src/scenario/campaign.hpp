// Campaign engine: runs one measurement period (Table I) of the synthetic
// network against the vantage nodes and streams their observations.
//
// This is the "campaign fidelity" mode of DESIGN.md §2: remote peers are
// population processes that interact *only* with the vantage swarms (whose
// connection managers, peerstores and recorders are the real
// implementations from p2p/ and measure/).  Remote-to-remote traffic is not
// simulated — the paper's dataset never contains it either.
//
// Engines are obtained through the config-validating factory
// `CampaignEngine::create` and publish through a `measure::MeasurementSink`
// (crawl snapshots as they happen, per-vantage datasets at the end).  The
// monolithic `CampaignResult` of the original API is rebuilt by
// `CampaignResultSink`, which `run()` uses as a compatibility adapter.
//
// Configs come from C++ directly or from a declarative JSON scenario:
// `scenario::ScenarioSpec::to_campaign_config()` (scenario_spec.hpp) is
// how the `ipfs_sim` CLI assembles engines from `scenarios/*.json` files,
// and `runtime::ParallelTrialRunner` fans seed sweeps of one config across
// cores.
#pragma once

#include <expected>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "measure/recorder.hpp"
#include "measure/sink.hpp"
#include "net/conditions.hpp"
#include "scenario/churn.hpp"
#include "scenario/content.hpp"
#include "scenario/period.hpp"
#include "scenario/phases.hpp"
#include "scenario/population.hpp"
#include "sim/simulation.hpp"

namespace ipfs::scenario {

/// One active-crawler snapshot (the Fig. 2 baseline).
using CrawlSnapshot = measure::CrawlObservation;

/// Deterministic intra-trial sharding of the remote population
/// (DESIGN.md §13).  The engine's event loop stays single-threaded and
/// structurally identical to the unsharded engine; what shards is the
/// *pure* whole-population work — slab-stepped churn-chain precompute,
/// sample tallies, crawler classification — fanned across contiguous
/// population slices on a fork-join `runtime::ShardPool` and merged in
/// canonical ascending shard order.  The export is byte-identical to the
/// unsharded run at ANY shard count and ANY worker count (the sequential
/// engine is the oracle; enforced by `ctest -L shard`).
struct ShardPlan {
  /// Contiguous population slices advanced per fan-out.  Must be >= 1;
  /// 1 still engages the sharded code path (useful for tests).
  unsigned shards = 1;

  /// Worker threads driving the shard fan-outs.  0 resolves through the
  /// process-wide `runtime::WorkerBudget`, which nested
  /// `ParallelTrialRunner` sweeps share so trials x shards never exceeds
  /// hardware concurrency; explicit values are honoured as given.
  /// Clamped to `shards` either way.
  unsigned workers = 0;

  /// Precompute slab: churned lifecycle chains are extended this far
  /// ahead of the clock whenever a peer's buffered chain runs dry, which
  /// bounds buffer memory on 14-day runs.  Must be > 0.  The slab length
  /// never changes output bytes — only when the precompute work happens.
  common::SimDuration slab = 6 * common::kHour;
};

/// Campaign configuration.
struct CampaignConfig {
  PeriodSpec period = PeriodSpec::P4();
  PopulationSpec population = PopulationSpec::paper_scale();
  std::uint64_t seed = 20211203;

  /// Probability that a given remote peer's DHT position brings it into
  /// contact with a given vantage identity at all (§III-C's horizon).
  double vantage_visibility = 0.93;

  bool enable_crawler = true;
  common::SimDuration crawl_interval = 8 * common::kHour;

  /// §IV-B dynamics: version changes and kad/autonat flapping.
  bool enable_metadata_dynamics = true;

  /// Outbound dial rate of a DHT-client vantage (P3's behaviour), per hour.
  double client_dials_per_hour = 1980.0;

  /// Optional network-condition model (net/conditions.hpp, DESIGN.md §9):
  /// zones, dial-failure/loss, NAT reachability classes and scheduled
  /// disturbances.  Engaged, it gates remote->vantage contact attempts,
  /// vantage->remote dials and active-crawl reachability through pure
  /// hash verdicts seeded from `seed`.  nullopt leaves the engine's
  /// behaviour bit-for-bit identical to the pre-conditions code path
  /// (enforced by tests/integration/golden_determinism_test.cpp).
  std::optional<net::ConditionSpec> conditions;

  /// Optional session-level churn model (scenario/churn.hpp, DESIGN.md
  /// §10): per-category session/intersession distributions plus diurnal
  /// modulation, driving first-class join/leave events for *every*
  /// category.  Engaged, it replaces the static per-category session
  /// machinery — peers genuinely arrive and depart on the simulation
  /// clock, and the engine publishes `measure::PopulationSample`s (the
  /// observed-vs-true baseline).  nullopt leaves the engine's behaviour
  /// bit-for-bit identical to the pre-churn code path (hash-pinned by
  /// tests/integration/golden_determinism_test.cpp).
  std::optional<ChurnSpec> churn;

  /// Optional content-routing workload (scenario/content.hpp, DESIGN.md
  /// §11): publish → provide → republish → expire chains driving
  /// `dht::RecordStore`s at the server vantages, plus live Bitswap
  /// want/block fetch traffic over a dedicated message-level network.
  /// Engaged, the engine publishes `measure::ProvideSample` /
  /// `FetchSample` / `ContentSample` streams (records-at-vantage vs
  /// ground truth).  nullopt leaves the engine's behaviour bit-for-bit
  /// identical to the pre-content code path (hash-pinned by
  /// tests/integration/golden_determinism_test.cpp).
  std::optional<ContentSpec> content;

  /// Optional time-varying workload program (scenario/phases.hpp,
  /// DESIGN.md §14): piecewise rate multipliers — ramps, bursts, flash
  /// crowds — folded into the engine's per-draw sampling sites.  Every
  /// modulated draw stays a pure function of (node, index, phase, seed),
  /// so sweeps and sharded runs remain byte-identical at any worker or
  /// shard count.  nullopt leaves every rate constant: behaviour is
  /// bit-for-bit identical to the pre-phases code path (hash-pinned by
  /// tests/integration/golden_determinism_test.cpp).
  std::optional<PhaseProgramSpec> phases;

  /// Optional intra-trial sharding (DESIGN.md §13).  nullopt runs the
  /// classic sequential engine; engaged, the export stays byte-identical
  /// at any `shards`/`workers` (hash-pinned by `ctest -L shard`), so this
  /// is purely an execution knob — scenario JSON never carries it, the
  /// `ipfs_sim --shards` flag and `runtime::ShardedCampaignRunner` do.
  std::optional<ShardPlan> sharding;
};

/// Datasets and baselines produced by a campaign run (the all-in-memory
/// compatibility shape; streaming consumers implement MeasurementSink).
struct CampaignResult {
  std::optional<measure::Dataset> go_ipfs;
  std::vector<measure::Dataset> hydra_heads;
  std::optional<measure::Dataset> hydra_union;
  std::vector<CrawlSnapshot> crawls;
  /// True-population samples (churned campaigns only; empty otherwise).
  std::vector<measure::PopulationSample> population_samples;
  /// Content-workload streams (content-enabled campaigns only).
  std::vector<measure::ProvideSample> provide_samples;
  std::vector<measure::FetchSample> fetch_samples;
  std::vector<measure::ContentSample> content_samples;

  std::size_t population_size = 0;
  std::size_t events_executed = 0;

  /// Crawler min/max of reached servers across snapshots (Fig. 2 band).
  [[nodiscard]] std::pair<std::size_t, std::size_t> crawler_min_max() const;
};

/// Compatibility adapter: rebuilds the monolithic `CampaignResult` from the
/// sink event stream.
class CampaignResultSink final : public measure::MeasurementSink {
 public:
  void on_crawl(const measure::CrawlObservation& crawl) override;
  void on_population(const measure::PopulationSample& sample) override;
  void on_provide(const measure::ProvideSample& sample) override;
  void on_fetch(const measure::FetchSample& sample) override;
  void on_content(const measure::ContentSample& sample) override;
  void on_dataset(measure::DatasetRole role, measure::Dataset dataset) override;
  void on_run_end(const measure::RunSummary& summary) override;

  [[nodiscard]] CampaignResult take_result() { return std::move(result_); }

 private:
  CampaignResult result_;
};

/// Runs one campaign.  Use a fresh engine per run.
///
/// Engines are thread-confined (one virtual clock, one RNG tree — no
/// internal locking) but fully independent of each other: running
/// distinct engines on distinct threads is safe and deterministic, which
/// is how `runtime::ParallelTrialRunner` executes sweeps (DESIGN.md §7).
class CampaignEngine {
 public:
  /// Why `config` cannot run, or nullopt when it is valid.
  [[nodiscard]] static std::optional<std::string> validate(
      const CampaignConfig& config);

  /// Config-validating factory — the only way to obtain an engine.
  [[nodiscard]] static std::expected<CampaignEngine, std::string> create(
      CampaignConfig config);

  CampaignEngine(CampaignEngine&&) noexcept;
  CampaignEngine& operator=(CampaignEngine&&) noexcept;
  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;
  ~CampaignEngine();

  /// Execute the full period, streaming observations into `sink`.
  void run(measure::MeasurementSink& sink);

  /// Execute the full period and collect the monolithic result (adapter
  /// over `run(sink)` via CampaignResultSink).
  [[nodiscard]] CampaignResult run();

  /// The simulation clock (exposed for tests that step manually).
  [[nodiscard]] sim::Simulation& simulation();

 private:
  explicit CampaignEngine(CampaignConfig config);

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ipfs::scenario
