// Declarative scenario specifications (DESIGN.md §8).
//
// A `ScenarioSpec` is the JSON-serialisable description of one measurement
// campaign: the period knobs of `PeriodSpec`, the population shape of
// `PopulationSpec` (counts, scale, per-category behaviour overrides), the
// campaign settings of `CampaignConfig` plus sweep controls (trials,
// workers), and the output selection of `measure::JsonExportSink`.  The
// paper's Table I periods ship as builtin specs *and* as editable
// `scenarios/*.json` files; `PeriodSpec::P0()..P4()` are thin wrappers over
// the builtins, so compiled presets and checked-in JSON cannot drift apart.
//
// Parsing is strict: `from_json` rejects unknown fields, out-of-range
// values and malformed documents with a field-path error ("period.go_ipfs:
// low_water must be >= 0"), and `to_json` round-trips exactly —
// `from_json(to_json(spec)) == spec` for every representable spec.
//
// The `ipfs_sim` CLI (tools/ipfs_sim.cpp) is the scenario driver:
//
//   ipfs_sim run scenarios/p4.json --out results.json --workers 4
//   ipfs_sim validate scenarios/*.json
//   ipfs_sim list
//
// See docs/SCENARIOS.md for the field-by-field schema and a cookbook of
// shipped workloads.
#pragma once

#include <expected>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "measure/sink.hpp"
#include "net/conditions.hpp"
#include "scenario/campaign.hpp"
#include "scenario/churn.hpp"
#include "scenario/content.hpp"
#include "scenario/period.hpp"
#include "scenario/phases.hpp"
#include "scenario/population_spec.hpp"

namespace ipfs::scenario {

/// Campaign-level settings: everything `CampaignConfig` carries beyond the
/// period and population, plus the sweep controls consumed by
/// `runtime::ParallelTrialRunner`.
struct CampaignSettings {
  std::uint64_t seed = 20211203;
  /// Trials run seeds `seed, seed+1, …, seed+trials-1` (a seed sweep).
  std::uint32_t trials = 1;
  /// Worker threads for multi-trial runs; 0 = hardware concurrency.
  std::uint32_t workers = 0;

  double vantage_visibility = 0.93;
  bool enable_crawler = true;
  common::SimDuration crawl_interval = 8 * common::kHour;
  bool enable_metadata_dynamics = true;
  double client_dials_per_hour = 1980.0;

  [[nodiscard]] bool operator==(const CampaignSettings&) const = default;
};

/// Where campaign observations go: options for the JSON export sink.
struct OutputSettings {
  bool pretty = true;
  bool include_connections = false;
  /// When set, only datasets with this role are exported.
  std::optional<measure::DatasetRole> role_filter;

  [[nodiscard]] measure::JsonExportSink::Options export_options() const {
    measure::JsonExportSink::Options options;
    options.include_connections = include_connections;
    options.pretty = pretty;
    options.role_filter = role_filter;
    return options;
  }

  [[nodiscard]] bool operator==(const OutputSettings&) const = default;
};

/// One fully declarative scenario.
struct ScenarioSpec {
  std::string name;         ///< machine name ("p4", "nat-heavy", …)
  std::string description;  ///< one-line human summary

  PeriodSpec period;
  PopulationSpec population;
  /// The optional `"network"` section: a declarative condition model
  /// (net/conditions.hpp) — zones, loss, NAT classes, disturbances.  When
  /// absent the campaign runs on the legacy flat fabric, byte-for-byte
  /// (the section is also omitted from `to_json`, so pre-conditions
  /// scenario files round-trip unchanged).
  std::optional<net::ConditionSpec> network;
  /// The optional `"churn"` section: a session-level lifecycle model
  /// (scenario/churn.hpp) — per-category session/intersession
  /// distributions and diurnal modulation.  Absent, the static session
  /// machinery runs unchanged (byte-for-byte; omitted from `to_json`).
  std::optional<ChurnSpec> churn;
  /// The optional `"content"` section: a content-routing workload
  /// (scenario/content.hpp) — publish/provide/republish chains over a
  /// keyspace plus Bitswap fetch traffic.  Absent, the engine runs the
  /// pre-content code path (byte-for-byte; omitted from `to_json`).
  std::optional<ContentSpec> content;
  /// The optional `"phases"` section: a time-varying workload program
  /// (scenario/phases.hpp) — ramps, bursts, and flash crowds over the
  /// other sections' rates.  Absent, every rate stays constant for the
  /// run (byte-for-byte legacy; omitted from `to_json`).
  std::optional<PhaseProgramSpec> phases;
  CampaignSettings campaign;
  OutputSettings output;

  [[nodiscard]] bool operator==(const ScenarioSpec&) const = default;

  // ---- (de)serialisation ----------------------------------------------------

  /// Parse and validate a scenario document.  On failure the error names
  /// the offending field path and rule.
  [[nodiscard]] static std::expected<ScenarioSpec, std::string> from_json(
      std::string_view text);

  /// `from_json` over a file's contents; IO errors mention the path.
  [[nodiscard]] static std::expected<ScenarioSpec, std::string> from_file(
      const std::string& path);

  /// Serialise the complete spec (every field explicit, so the output is
  /// self-documenting and round-trips exactly).
  void to_json(common::JsonWriter& writer) const;

  /// Pretty-printed document with trailing newline — the byte-exact format
  /// of the checked-in `scenarios/*.json` files.
  [[nodiscard]] std::string to_json_string() const;

  // ---- validation -----------------------------------------------------------

  /// Why this spec cannot run, or nullopt when valid.  Includes every
  /// `CampaignEngine::validate` rule plus spec-level rules (non-empty name,
  /// trials >= 1, probabilities in range).
  [[nodiscard]] static std::optional<std::string> validate(
      const ScenarioSpec& spec);

  // ---- execution ------------------------------------------------------------

  /// The engine configuration for trial 0 (seed = `campaign.seed`).
  [[nodiscard]] CampaignConfig to_campaign_config() const;

  /// The seed of each trial of the sweep, in trial order.
  [[nodiscard]] std::vector<std::uint64_t> trial_seeds() const;

  // ---- builtins -------------------------------------------------------------

  /// All builtin scenarios: the Table I periods p0..p4, the 14-day Fig. 6
  /// run, and the extra workloads shipped under scenarios/.
  [[nodiscard]] static const std::vector<ScenarioSpec>& builtins();

  /// Builtin by name, nullopt when unknown.
  [[nodiscard]] static std::optional<ScenarioSpec> builtin(std::string_view name);
};

}  // namespace ipfs::scenario
