#include "scenario/phases.hpp"

#include <cmath>
#include <limits>

namespace ipfs::scenario {

using common::SimDuration;
using common::SimTime;

std::string_view to_string(PhaseMode mode) noexcept {
  switch (mode) {
    case PhaseMode::kHold:
      return "hold";
    case PhaseMode::kRamp:
      return "ramp";
    case PhaseMode::kBurst:
      return "burst";
    case PhaseMode::kFlashCrowd:
      return "flash_crowd";
  }
  return "hold";
}

std::optional<PhaseMode> phase_mode_from_string(std::string_view text) noexcept {
  if (text == "hold") return PhaseMode::kHold;
  if (text == "ramp") return PhaseMode::kRamp;
  if (text == "burst") return PhaseMode::kBurst;
  if (text == "flash_crowd") return PhaseMode::kFlashCrowd;
  return std::nullopt;
}

SimDuration PhaseProgramSpec::total_duration() const noexcept {
  SimDuration total = 0;
  for (const PhaseSpec& phase : program) total += phase.hold;
  return total;
}

bool PhaseProgramSpec::modulates_churn() const noexcept {
  for (const PhaseSpec& phase : program) {
    if (phase.churn_rate != 1.0 || phase.population != 1.0) return true;
  }
  return false;
}

bool PhaseProgramSpec::modulates_content() const noexcept {
  for (const PhaseSpec& phase : program) {
    if (phase.fetch_rate != 1.0 || phase.publish_rate != 1.0) return true;
    if (phase.mode == PhaseMode::kFlashCrowd) return true;
  }
  return false;
}

bool PhaseProgramSpec::modulates_crawl() const noexcept {
  for (const PhaseSpec& phase : program) {
    if (phase.crawl_rate != 1.0) return true;
  }
  return false;
}

namespace {

bool positive_finite(double v) noexcept {
  return std::isfinite(v) && v > 0.0;
}

}  // namespace

std::optional<std::string> PhaseProgramSpec::validate(
    const PhaseProgramSpec& spec) {
  if (spec.program.empty()) {
    return "phases.program: must contain at least one phase";
  }
  for (std::size_t i = 0; i < spec.program.size(); ++i) {
    const PhaseSpec& phase = spec.program[i];
    const std::string at = "phases.program[" + std::to_string(i) + "]";
    if (phase.hold <= 0) return at + ": hold_ms must be > 0";
    if (!positive_finite(phase.churn_rate)) {
      return at + ": churn_rate must be > 0 and finite";
    }
    if (!positive_finite(phase.fetch_rate)) {
      return at + ": fetch_rate must be > 0 and finite";
    }
    if (!positive_finite(phase.publish_rate)) {
      return at + ": publish_rate must be > 0 and finite";
    }
    if (!positive_finite(phase.crawl_rate)) {
      return at + ": crawl_rate must be > 0 and finite";
    }
    if (!(phase.population > 0.0) || phase.population > 1.0) {
      return at + ": population must be in (0, 1]";
    }
    if (phase.mode == PhaseMode::kBurst) {
      if (phase.switch_interval <= 0) {
        return at + ": switch_ms must be > 0";
      }
    } else if (phase.switch_interval != 0) {
      return at + ": switch_ms applies to \"burst\" phases only";
    }
    if (phase.mode == PhaseMode::kFlashCrowd) {
      if (!positive_finite(phase.spike)) {
        return at + ": spike must be > 0 and finite";
      }
      if (!(phase.hot_fraction >= 0.0) || phase.hot_fraction > 1.0) {
        return at + ": hot_fraction must be in [0, 1]";
      }
    } else if (phase.spike != 1.0 || phase.hot_fraction != 1.0 ||
               phase.hot_key != 0) {
      return at + ": hot_key/spike/hot_fraction apply to \"flash_crowd\" "
                  "phases only";
    }
  }
  return std::nullopt;
}

PhaseProgram::PhaseProgram(PhaseProgramSpec spec) : spec_(std::move(spec)) {
  starts_.reserve(spec_.program.size());
  SimTime at = 0;
  for (const PhaseSpec& phase : spec_.program) {
    starts_.push_back(at);
    at += phase.hold;
  }
  total_ = at;
}

SimTime PhaseProgram::phase_start(std::size_t index) const noexcept {
  return starts_[index];
}

std::size_t PhaseProgram::phase_index_at(SimTime at) const noexcept {
  // Programs are a handful of phases; a linear scan beats a binary search
  // at these sizes and keeps the lookup branch-predictable.
  std::size_t index = 0;
  while (index + 1 < starts_.size() && at >= starts_[index + 1]) ++index;
  return index;
}

namespace {

/// The plain multiplier tuple a phase settles at — a flash crowd's spike
/// and redirect stay local to the phase (file comment in phases.hpp).
PhaseRates endpoint_of(const PhaseSpec& phase) noexcept {
  PhaseRates rates;
  rates.churn = phase.churn_rate;
  rates.fetch = phase.fetch_rate;
  rates.publish = phase.publish_rate;
  rates.crawl = phase.crawl_rate;
  rates.population = phase.population;
  return rates;
}

}  // namespace

PhaseRates PhaseProgram::rates_at(SimTime at) const noexcept {
  const std::size_t index = phase_index_at(at);
  const PhaseSpec& phase = spec_.program[index];
  const PhaseRates from =
      index == 0 ? PhaseRates{} : endpoint_of(spec_.program[index - 1]);
  const PhaseRates to = endpoint_of(phase);
  if (at >= total_) return to;  // tail: hold at the last endpoint

  switch (phase.mode) {
    case PhaseMode::kHold:
      return to;
    case PhaseMode::kRamp: {
      const double f = static_cast<double>(at - starts_[index]) /
                       static_cast<double>(phase.hold);
      PhaseRates rates;
      rates.churn = from.churn + (to.churn - from.churn) * f;
      rates.fetch = from.fetch + (to.fetch - from.fetch) * f;
      rates.publish = from.publish + (to.publish - from.publish) * f;
      rates.crawl = from.crawl + (to.crawl - from.crawl) * f;
      rates.population = from.population + (to.population - from.population) * f;
      return rates;
    }
    case PhaseMode::kBurst: {
      // Left-closed half-cycles starting hi: [start, start+switch) is hi,
      // the next window lo, and so on — edges land exactly on multiples of
      // `switch_interval` past the phase start.
      const auto cycle = static_cast<std::uint64_t>(
          (at - starts_[index]) / phase.switch_interval);
      return (cycle % 2 == 0) ? to : from;
    }
    case PhaseMode::kFlashCrowd: {
      PhaseRates rates = to;
      rates.fetch *= phase.spike;
      rates.flash = true;
      rates.hot_key = phase.hot_key;
      rates.hot_fraction = phase.hot_fraction;
      return rates;
    }
  }
  return to;
}

}  // namespace ipfs::scenario
