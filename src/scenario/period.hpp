// Measurement-period parameters and the paper's Table I presets.
//
// The presets here are thin wrappers over `scenario::ScenarioSpec`
// builtins (scenario_spec.hpp) — the spec layer is the single source of
// truth, and the same periods ship as editable `scenarios/*.json` files
// runnable via the `ipfs_sim` CLI (`ipfs_sim run scenarios/p4.json`).
//
//   Period  Dates                    Low   High  go-ipfs  Hydra heads
//   P0      2021-12-03 – 2021-12-06  600   900   Server   3 (1.2k/1.8k)
//   P1      2021-12-09 – 2021-12-10  2k    4k    Server   2
//   P2      2021-12-13 – 2021-12-14  18k   20k   Server   2
//   P3      2022-02-16 – 2022-02-17  18k   20k   Client   –
//   P4      2021-12-10 – 2021-12-13  18k   20k   Server   –
// plus the ≈14-day run (2022-03-29 – 2022-04-12) behind Fig. 6.
#pragma once

#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "dht/kad.hpp"
#include "p2p/conn_manager.hpp"

namespace ipfs::scenario {

/// Configuration of one measurement period.
struct PeriodSpec {
  std::string name;
  std::string dates;  ///< documentation only (simulated clocks start at 0)
  common::SimDuration duration = common::kDay;

  bool go_ipfs_present = true;
  dht::Mode go_ipfs_mode = dht::Mode::kServer;
  int go_low_water = 600;
  int go_high_water = 900;

  int hydra_heads = 0;  ///< 0 = hydra absent
  int hydra_low_water = 1200;
  int hydra_high_water = 1800;

  [[nodiscard]] bool operator==(const PeriodSpec&) const = default;

  [[nodiscard]] static PeriodSpec P0();
  [[nodiscard]] static PeriodSpec P1();
  [[nodiscard]] static PeriodSpec P2();
  [[nodiscard]] static PeriodSpec P3();
  [[nodiscard]] static PeriodSpec P4();
  /// The ~14-day PID-growth measurement behind Fig. 6.
  [[nodiscard]] static PeriodSpec Long14d();

  /// All Table I periods in order.
  [[nodiscard]] static std::vector<PeriodSpec> table1();
};

}  // namespace ipfs::scenario
