// Population specification: the synthetic December-2021 IPFS network.
//
// Every constant here is calibrated against a number the paper reports:
//   - category sizes     → Table IV class counts + §IV-B agent tallies
//   - agent tables       → Fig. 3 (323 agent strings, 263 go-ipfs versions)
//   - protocol sets      → Fig. 4 (101 protocols, kad 18'845, bitswap 44'463)
//   - IP policies        → §V-A grouping (56'536 IPs, hydra 11-IP clusters,
//                          one IP with 2'156 rotating PIDs)
//   - session/contact    → Table II churn magnitudes and Fig. 7 CDF shapes
// The builder produces concrete `RemotePeer`s; scenario::CampaignEngine
// animates them against the vantage nodes.
//
// Populations are configured two ways: directly in C++ (the calibrated
// defaults below plus per-category `overrides`), or declaratively through a
// `scenario::ScenarioSpec` JSON file run by the `ipfs_sim` CLI — see
// docs/SCENARIOS.md for the schema.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "p2p/multiaddr.hpp"
#include "p2p/peer_id.hpp"

namespace ipfs::scenario {

using common::SimDuration;

/// Behavioural category of a simulated remote peer.
enum class Category : std::uint8_t {
  kHydra,           ///< remote hydra-booster heads (1'028 PIDs on 11 IPs)
  kCoreServer,      ///< always-on go-ipfs DHT servers
  kCoreClient,      ///< always-on go-ipfs DHT clients (the core user base)
  kNormalUser,      ///< one multi-hour session per period
  kLightServer,     ///< recurring flaky servers (incl. disguised storm)
  kLightClient,     ///< recurring experimental clients
  kCrawler,         ///< active crawlers: very many short connections
  kOneTime,         ///< connect once or twice, never return
  kRotatingPid,     ///< one operator cycling PIDs behind one IP
  kEphemeral,       ///< so short-lived identify never completes ("missing")
  kEthereum,        ///< the paper's lone go-ethereum curiosity
};

[[nodiscard]] std::string_view to_string(Category category) noexcept;
/// Inverse of `to_string`; nullopt for unknown names (spec validation).
[[nodiscard]] std::optional<Category> category_from_string(
    std::string_view name) noexcept;
inline constexpr std::size_t kCategoryCount = 11;

/// How a peer's sessions recur.
enum class SessionKind : std::uint8_t {
  kAlwaysOn,   ///< online for the entire measurement
  kRecurring,  ///< alternating online/offline periods
  kOneShot,    ///< single session at a random time, then gone
};

[[nodiscard]] std::string_view to_string(SessionKind kind) noexcept;
[[nodiscard]] std::optional<SessionKind> session_kind_from_string(
    std::string_view name) noexcept;

/// Per-category behaviour parameters.
struct CategoryParams {
  Category category = Category::kOneTime;
  SessionKind session = SessionKind::kAlwaysOn;
  SimDuration mean_session = 0;  ///< session length (recurring / one-shot)
  SimDuration mean_gap = 0;      ///< offline gap (recurring)

  bool dht_server = false;       ///< announces /ipfs/kad/1.0.0
  /// Probability of keeping a *maintained* connection per server vantage.
  double maintain_probability = 0.0;
  /// How long the remote side retains a maintained connection before its
  /// own connection manager trims it (exponential mean).
  SimDuration retention_mean = 0;
  /// Rate of short query connections while online (per hour, Poisson).
  double queries_per_hour = 0.0;
  /// Median of the lognormal query-connection duration.
  SimDuration query_duration_median = 80 * common::kSecond;
  /// After the vantage trims a maintained connection: reconnect?
  bool reconnect_after_trim = false;
  SimDuration reconnect_backoff_mean = 25 * common::kMinute;
  /// Fraction of this category reachable by an active crawler when online
  /// (NAT'd servers hide from crawls; §III-C).
  double crawl_visibility = 0.92;

  [[nodiscard]] bool operator==(const CategoryParams&) const = default;
};

/// A fully materialised remote peer.
struct RemotePeer {
  std::uint32_t index = 0;
  Category category = Category::kOneTime;
  p2p::PeerId pid;
  p2p::IpAddress ip;
  /// Some peers (dual-homed / address-churning) connect from a second IP;
  /// this is what makes §V-A's group count smaller than its IP count.
  p2p::IpAddress alt_ip;
  bool has_alt_ip = false;
  std::uint16_t port = 4001;
  std::string agent;  ///< empty: identify never completes ("missing")
  std::vector<std::string> protocols;
  bool dht_server = false;
  /// Pre-sampled one-shot session window (kOneShot only).
  common::SimTime session_start = 0;
  SimDuration session_length = 0;
};

/// Absolute-count knobs (3-day baseline, scaled by `scale`).
struct PopulationCounts {
  // §IV-B / §V-A anchored counts.
  std::uint32_t hydra_heads = 1028;
  std::uint32_t core_servers = 420;
  std::uint32_t core_clients = 9500;
  std::uint32_t normal_users = 15900;
  std::uint32_t light_servers = 9755;  ///< incl. disguised_storm below
  std::uint32_t disguised_storm = 7498;
  std::uint32_t light_clients = 6539;
  std::uint32_t crawlers = 586;
  /// One-shot arrivals per *day* (fuels Fig. 6 PID growth).
  std::uint32_t one_time_per_day = 6400;
  std::uint32_t ephemeral_per_day = 1020;  ///< the "missing agent" stream
  /// The §V-A mega-group: new PIDs per day behind one IP.
  std::uint32_t rotating_pids_per_day = 773;
  std::uint32_t ethereum_nodes = 1;
  /// NAT households / small clouds sharing IPs (other multi-PID groups).
  std::uint32_t nat_groups = 2500;
  std::uint32_t nat_group_min = 2;
  std::uint32_t nat_group_max = 8;

  [[nodiscard]] bool operator==(const PopulationCounts&) const = default;
};

/// The full specification: counts + behaviour + metadata tables.
struct PopulationSpec {
  PopulationCounts counts;
  double scale = 1.0;  ///< scales every count (tests use small scales)

  /// Per-category behaviour overrides; unset slots use `default_params`.
  /// This is how declarative scenarios reshape session/contact
  /// distributions (e.g. the diurnal weekend workload) without recompiling.
  std::array<std::optional<CategoryParams>, kCategoryCount> overrides{};

  [[nodiscard]] static PopulationSpec paper_scale() { return {}; }
  [[nodiscard]] static PopulationSpec test_scale(double scale_factor) {
    PopulationSpec spec;
    spec.scale = scale_factor;
    return spec;
  }

  /// The behaviour of `category` under this spec: the override when one is
  /// set, the calibrated default otherwise.  Population and CampaignEngine
  /// read all behaviour through this accessor.
  [[nodiscard]] const CategoryParams& params(Category category) const;

  void set_override(Category category, CategoryParams params) {
    overrides[static_cast<std::size_t>(category)] = params;
  }

  [[nodiscard]] bool operator==(const PopulationSpec&) const = default;
};

/// Behaviour table (shared by all specs; see the calibration notes above).
[[nodiscard]] const CategoryParams& default_params(Category category);

/// Sample a go-ipfs agent string following Fig. 3's version mix.  `dirty`
/// builds carry a "-dirty" commit suffix.
[[nodiscard]] std::string sample_go_ipfs_agent(common::Rng& rng);

/// Sample a non-go-ipfs agent string (Fig. 3's "other" mix: storm, ioi,
/// go-qkfile, ant, …).
[[nodiscard]] std::string sample_other_agent(common::Rng& rng);

/// Protocol sets per role (Fig. 4).
[[nodiscard]] std::vector<std::string> protocols_for(Category category,
                                                     bool dht_server,
                                                     const std::string& agent,
                                                     common::Rng& rng);

}  // namespace ipfs::scenario
