// Time-varying workload programs: ramps, bursts, and flash crowds
// (DESIGN.md §14).
//
// `PhaseProgramSpec` is the declarative description of a piecewise
// schedule: an ordered list of phases, each holding for a fixed duration
// and carrying target multipliers for churn rates, content publish/fetch
// rates, crawler cadence, and the admitted population fraction.
// `PhaseProgram` is the compiled runtime form: it answers "what are the
// effective rate multipliers at simulation time t?" for
// `scenario::CampaignEngine`, which folds them into its per-draw sampling
// sites when a scenario file carries a `"phases"` section
// (docs/SCENARIOS.md).
//
// Phase modes:
//   - hold:        the target multipliers apply for the whole phase.
//   - ramp:        each multiplier interpolates linearly from the previous
//                  phase's endpoint (the neutral 1.0 baseline for the first
//                  phase) to this phase's target over the hold window.
//   - burst:       a square wave toggling between the target ("hi") and the
//                  previous phase's endpoint ("lo") every `switch_interval`,
//                  starting hi at the phase start; edges are left-closed so
//                  with `switch_interval` equal to a shard slab they land
//                  exactly on slab boundaries.
//   - flash_crowd: a hold whose fetch traffic is additionally multiplied by
//                  `spike` and redirected to `hot_key` with probability
//                  `hot_fraction` (a pure per-(node, fetch) hash).
//
// A phase's *endpoint* is its plain target multiplier tuple — a flash
// crowd's spike and redirect are local to the phase and never leak into a
// following ramp or burst baseline.  After the program ends the run
// continues as a hold at the last phase's endpoint (no oscillation, no
// flash redirect).
//
// Determinism contract (DESIGN.md §5/§14): `rates_at` is a pure function
// of the query time and the spec — no mutable state — so every engine
// sampling site stays a pure function of (node, index, phase, seed) and
// `runtime::ParallelTrialRunner` sweeps and `ShardPlan` runs remain
// byte-identical at any worker or shard count.  The program clock is the
// absolute simulation clock: phase boundaries sit at cumulative hold
// offsets from t = 0 and never rebase `churn.diurnal`'s `phase_ms` offset
// (see `ChurnModel::rate_multiplier`); combining a churn-modulating
// program with a diurnal section therefore requires the explicit
// `"diurnal_clock": "absolute"` acknowledgement.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/sim_time.hpp"

namespace ipfs::scenario {

enum class PhaseMode : std::uint8_t {
  kHold,
  kRamp,
  kBurst,
  kFlashCrowd,
};

[[nodiscard]] std::string_view to_string(PhaseMode mode) noexcept;
[[nodiscard]] std::optional<PhaseMode> phase_mode_from_string(
    std::string_view text) noexcept;

/// One phase of a program.  All multipliers are targets (endpoints); how
/// they apply across the hold window depends on `mode` (file comment).
struct PhaseSpec {
  std::string name;  ///< optional label for exports ("" = unnamed)
  PhaseMode mode = PhaseMode::kHold;
  common::SimDuration hold = common::kHour;  ///< phase length, > 0

  // Target multipliers.  Rates divide the model's sampled intervals (a
  // multiplier of 2 doubles the event rate); `population` is the admitted
  // fraction of the churned population in (0, 1].
  double churn_rate = 1.0;
  double fetch_rate = 1.0;
  double publish_rate = 1.0;
  double crawl_rate = 1.0;
  double population = 1.0;

  // burst only: square-wave half-period, > 0.
  common::SimDuration switch_interval = 0;

  // flash_crowd only.
  std::uint32_t hot_key = 0;  ///< key index the crowd converges on
  double spike = 1.0;         ///< extra fetch-rate multiplier, > 0
  double hot_fraction = 1.0;  ///< fraction of fetches redirected, [0, 1]

  bool operator==(const PhaseSpec&) const = default;
};

/// The declarative `"phases"` section: an ordered program plus the
/// explicit diurnal-clock acknowledgement (satellite of DESIGN.md §14).
struct PhaseProgramSpec {
  std::vector<PhaseSpec> program;

  /// True when the scenario carried `"diurnal_clock": "absolute"` — the
  /// only defined composition with `churn.diurnal`: both modulations read
  /// the absolute simulation clock and multiply.  Required whenever the
  /// program modulates churn while a diurnal section is engaged.
  bool diurnal_clock_absolute = false;

  /// Sum of every phase's hold.
  [[nodiscard]] common::SimDuration total_duration() const noexcept;

  /// True when any phase's churn or population target is not neutral.
  [[nodiscard]] bool modulates_churn() const noexcept;

  /// True when any phase's fetch/publish target, spike, or mode touches
  /// the content workload.
  [[nodiscard]] bool modulates_content() const noexcept;

  /// True when any phase's crawl target is not neutral.
  [[nodiscard]] bool modulates_crawl() const noexcept;

  /// Structural validation with `phases.`-prefixed field paths; section
  /// interactions (churn/content/diurnal presence) live in
  /// `CampaignEngine::validate`.
  [[nodiscard]] static std::optional<std::string> validate(
      const PhaseProgramSpec& spec);

  bool operator==(const PhaseProgramSpec&) const = default;
};

/// Instantaneous multipliers at one simulation time.
struct PhaseRates {
  double churn = 1.0;
  double fetch = 1.0;  ///< includes a flash crowd's spike
  double publish = 1.0;
  double crawl = 1.0;
  double population = 1.0;
  bool flash = false;  ///< a flash_crowd phase is active
  std::uint32_t hot_key = 0;
  double hot_fraction = 0.0;

  bool operator==(const PhaseRates&) const = default;
};

/// Compiled program: cumulative phase offsets plus the pure time lookup.
class PhaseProgram {
 public:
  explicit PhaseProgram(PhaseProgramSpec spec);

  [[nodiscard]] const PhaseProgramSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return spec_.program.size();
  }

  /// Absolute start of phase `index` (cumulative holds before it).
  [[nodiscard]] common::SimTime phase_start(std::size_t index) const noexcept;

  /// Index of the phase covering `at` (left-closed windows); times past
  /// the program clamp to the last phase.
  [[nodiscard]] std::size_t phase_index_at(common::SimTime at) const noexcept;

  /// The effective multipliers at `at`.  Pure: same input, same output,
  /// any thread.
  [[nodiscard]] PhaseRates rates_at(common::SimTime at) const noexcept;

  [[nodiscard]] common::SimDuration total_duration() const noexcept {
    return total_;
  }

 private:
  PhaseProgramSpec spec_;
  std::vector<common::SimTime> starts_;  ///< per-phase absolute starts
  common::SimDuration total_ = 0;
};

}  // namespace ipfs::scenario
