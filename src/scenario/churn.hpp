// Session-level churn models (DESIGN.md §10).
//
// `ChurnSpec` is the declarative description of a peer lifecycle process:
// per-category session-length and intersession-gap distributions
// (exponential, Weibull, lognormal — the shapes reported for P2P churn)
// plus optional diurnal rate modulation.  `ChurnModel` is the compiled
// runtime form: it answers "how long is node n's session number s?" and
// "how long does n stay away after it?" for the consumers that animate
// lifecycles on the simulation clock — `scenario::CampaignEngine` when a
// scenario file carries a `"churn"` section (docs/SCENARIOS.md), and
// `runtime::Testbed` for protocol-fidelity nodes registered through
// `TestbedBuilder::churn`.
//
// Determinism contract (DESIGN.md §5): every draw is a *pure function* of
// (node, session-index, model seed) — a fresh generator is derived per
// draw, no mutable RNG state is kept — so draws are independent of call
// order and `runtime::ParallelTrialRunner` sweeps stay byte-identical at
// any worker count.  Diurnal modulation additionally reads the simulation
// time the gap starts at, which is itself a deterministic function of the
// same seed chain.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "scenario/population_spec.hpp"

namespace ipfs::scenario {

/// Probability that a dual-homed peer presents its alternate IP — shared
/// by the per-connection alternation (campaign dial addresses) and the
/// per-session redraw on churned rejoins, so the two rules cannot drift.
inline constexpr double kDualHomeAlternateProbability = 0.35;

/// A positive session/intersession length distribution.  The three shapes
/// are the ones the churn literature fits to measured P2P session traces;
/// parameters are in milliseconds so specs round-trip exactly.
struct SessionDistribution {
  enum class Kind : std::uint8_t {
    kExponential,  ///< memoryless baseline; parameter `mean_ms`
    kWeibull,      ///< heavy-tailed for shape < 1; `shape`, `scale_ms`
    kLognormal,    ///< multiplicative dynamics; `median_ms`, `sigma`
  };

  Kind kind = Kind::kExponential;
  double mean_ms = 0.0;    ///< exponential only: mean
  double shape = 0.0;      ///< weibull only: k > 0
  double scale_ms = 0.0;   ///< weibull only: lambda > 0
  double median_ms = 0.0;  ///< lognormal only: exp(mu) > 0
  double sigma = 0.0;      ///< lognormal only: underlying-normal sigma >= 0

  [[nodiscard]] static SessionDistribution exponential(double mean_ms) {
    SessionDistribution d;
    d.kind = Kind::kExponential;
    d.mean_ms = mean_ms;
    return d;
  }
  [[nodiscard]] static SessionDistribution weibull(double shape, double scale_ms) {
    SessionDistribution d;
    d.kind = Kind::kWeibull;
    d.shape = shape;
    d.scale_ms = scale_ms;
    return d;
  }
  [[nodiscard]] static SessionDistribution lognormal(double median_ms,
                                                     double sigma) {
    SessionDistribution d;
    d.kind = Kind::kLognormal;
    d.median_ms = median_ms;
    d.sigma = sigma;
    return d;
  }

  /// One draw (milliseconds, >= 0) consuming `rng`.  Callers wanting the
  /// pure-function contract derive a fresh generator per draw
  /// (`ChurnModel` does).
  [[nodiscard]] double sample(common::Rng& rng) const noexcept;

  /// Analytic mean / median in milliseconds (property-test oracles).
  [[nodiscard]] double analytic_mean() const noexcept;
  [[nodiscard]] double analytic_median() const noexcept;

  [[nodiscard]] bool operator==(const SessionDistribution&) const = default;
};

[[nodiscard]] std::string_view to_string(SessionDistribution::Kind kind) noexcept;
[[nodiscard]] std::optional<SessionDistribution::Kind>
distribution_kind_from_string(std::string_view name) noexcept;

/// Sinusoidal arrival-rate modulation: intersession gaps are divided by
/// `1 + amplitude * cos(2*pi * (t - phase) / period)`, so rejoins cluster
/// around `phase` (+ multiples of `period`) and thin out half a period
/// away — the day/night pattern of user-operated nodes.
struct DiurnalSpec {
  double amplitude = 0.0;                ///< modulation depth, [0, 1)
  common::SimDuration period = common::kDay;
  common::SimDuration phase = 0;         ///< peak offset, [0, period)

  [[nodiscard]] bool operator==(const DiurnalSpec&) const = default;
};

/// Per-category distribution override; unset categories use the spec's
/// top-level `session` / `gap`.
struct ChurnCategorySpec {
  Category category = Category::kNormalUser;
  SessionDistribution session;
  SessionDistribution gap;

  [[nodiscard]] bool operator==(const ChurnCategorySpec&) const = default;
};

/// The full declarative churn description — the `"churn"` section of a
/// scenario file, or the argument of `TestbedBuilder::churn`.
struct ChurnSpec {
  /// Default session length: ~3.5 h heavy-tailed (Weibull shape < 1), the
  /// regime the paper's Fig. 7 session CDF sits in.
  SessionDistribution session = SessionDistribution::weibull(0.55, 7'200'000.0);
  /// Default intersession gap: lognormal around 2 h.
  SessionDistribution gap = SessionDistribution::lognormal(7'200'000.0, 1.1);
  std::vector<ChurnCategorySpec> categories;
  std::optional<DiurnalSpec> diurnal;

  /// Probability that a node is inside a session when the run begins.
  double initial_online = 0.6;
  /// Cadence of the true-population samples a churned campaign publishes
  /// (`measure::PopulationSample`, the observed-vs-true baseline).
  common::SimDuration sample_interval = common::kHour;

  /// Why this spec cannot run, or nullopt when valid.  Errors carry the
  /// scenario-file field path ("churn.session: mean_ms must be > 0").
  [[nodiscard]] static std::optional<std::string> validate(const ChurnSpec& spec);

  [[nodiscard]] bool operator==(const ChurnSpec&) const = default;
};

/// The compiled runtime form of a `ChurnSpec`: pure per-(node, session)
/// sampling of session lengths, gaps, initial state and address redraws.
/// Cheap to copy; thread-safe because it is immutable after construction.
class ChurnModel {
 public:
  /// `seed` decorrelates lifecycle draws from every other RNG-tree branch;
  /// the spec is assumed valid (callers run `ChurnSpec::validate` first —
  /// the scenario layer always does).
  explicit ChurnModel(ChurnSpec spec = {}, std::uint64_t seed = 0);

  [[nodiscard]] const ChurnSpec& spec() const noexcept { return spec_; }

  /// Length of node `node`'s session number `session` (>= 0 ms; consumers
  /// clamp to their own floor).  Category-less overload for testbed nodes.
  [[nodiscard]] common::SimDuration session_length(std::uint32_t node,
                                                   std::uint32_t session) const;
  [[nodiscard]] common::SimDuration session_length(std::uint32_t node,
                                                   std::uint32_t session,
                                                   Category category) const;

  /// Offline gap following session `session`, with diurnal modulation
  /// evaluated at `at` (the gap's start on the simulation clock).
  [[nodiscard]] common::SimDuration gap_length(std::uint32_t node,
                                               std::uint32_t session,
                                               common::SimTime at) const;
  [[nodiscard]] common::SimDuration gap_length(std::uint32_t node,
                                               std::uint32_t session,
                                               common::SimTime at,
                                               Category category) const;

  /// Whether `node` starts the run inside a session (stable hash vs
  /// `spec().initial_online`).
  [[nodiscard]] bool initially_online(std::uint32_t node) const noexcept;

  /// Whether a rejoin re-draws the node's dial address (dual-homed peers
  /// come back from their other IP with the same probability the
  /// per-connection alternation uses).
  [[nodiscard]] bool redraw_address(std::uint32_t node,
                                    std::uint32_t session) const noexcept;

  /// The arrival-rate multiplier at `at` (1.0 without a diurnal spec).
  [[nodiscard]] double rate_multiplier(common::SimTime at) const noexcept;

 private:
  [[nodiscard]] const SessionDistribution& session_for(Category category) const;
  [[nodiscard]] const SessionDistribution& gap_for(Category category) const;
  [[nodiscard]] common::Rng draw_rng(std::uint64_t salt, std::uint32_t node,
                                     std::uint32_t session) const noexcept;

  ChurnSpec spec_;
  std::uint64_t seed_ = 0;
  /// Category -> override slot (or -1), compiled from `spec_.categories`.
  std::array<std::int32_t, kCategoryCount> override_slot_{};
};

}  // namespace ipfs::scenario
