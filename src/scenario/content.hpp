// Content-routing workload models (DESIGN.md §11).
//
// `ContentSpec` is the declarative description of a content workload:
// per-category publish volumes over a configurable keyspace, the
// provider-record TTL / republish cycle (go-ipfs defaults: 24 h record
// validity, 12 h republish), the bucket-refresh cadence that sweeps
// expired records, and Bitswap fetch traffic rates.  `ContentModel` is
// the compiled runtime form: it answers "which keys does node n provide,
// and when?", "when does n fetch next, and what?" for the consumers that
// animate content flows on the simulation clock —
// `scenario::CampaignEngine` when a scenario file carries a `"content"`
// section (docs/SCENARIOS.md), and `runtime::Testbed` for
// protocol-fidelity nodes registered through `TestbedBuilder::content`.
//
// Determinism contract (DESIGN.md §5): every draw is a *pure function*
// of (node, key/slot, cycle-index, model seed) — a fresh generator is
// derived per draw, no mutable RNG state is kept — so draws are
// independent of call order and `runtime::ParallelTrialRunner` sweeps
// stay byte-identical at any worker count.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "p2p/peer_id.hpp"
#include "scenario/population_spec.hpp"

namespace ipfs::scenario {

/// Per-category workload override; unset categories use the spec's
/// top-level `publishes_per_peer` / `fetches_per_hour`.
struct ContentCategorySpec {
  Category category = Category::kNormalUser;
  double publishes_per_peer = 0.0;
  double fetches_per_hour = 0.0;

  [[nodiscard]] bool operator==(const ContentCategorySpec&) const = default;
};

/// The full declarative content-workload description — the `"content"`
/// section of a scenario file, or the argument of
/// `TestbedBuilder::content`.
struct ContentSpec {
  /// Size of the keyspace before population scaling; the engine scales it
  /// by `PopulationSpec::scale` (floor 1) so smoke runs stay cheap.
  std::uint32_t keys = 512;

  /// How many keys each online peer provides.  The integer part is
  /// guaranteed; the fractional part is a per-node probability of one
  /// extra key.
  double publishes_per_peer = 2.0;
  /// Poisson-like Bitswap fetch rate per online peer.
  double fetches_per_hour = 1.0;

  /// Provider-record validity (go-ipfs: 24 h).
  common::SimDuration provider_ttl = 24 * common::kHour;
  /// Republish cadence (go-ipfs: 12 h, half the validity window).
  common::SimDuration republish_interval = 12 * common::kHour;
  /// Initial publishes and republish cycles are jittered uniformly over
  /// this window so provide storms never synchronise.
  common::SimDuration publish_spread = common::kHour;
  /// Cadence of the vantage maintenance task: `dht::RecordStore::sweep`
  /// plus bounded replacement-cache eviction of expired blocks.
  common::SimDuration bucket_refresh_interval = 10 * common::kMinute;
  /// Expired blocks evicted per vantage per refresh pass (the replacement
  /// cache keeps that many candidates warm between passes).
  std::uint32_t replacement_cache_size = 16;
  /// Cadence of the records-at-vantage samples a content-enabled
  /// campaign publishes (`measure::ContentSample`).
  common::SimDuration sample_interval = common::kHour;

  /// Probability that a fetch whose provider lookup succeeded is actually
  /// served a block (models dead providers / unreachable hosts).
  double fetch_success = 0.97;

  std::vector<ContentCategorySpec> categories;

  /// Why this spec cannot run, or nullopt when valid.  Errors carry the
  /// scenario-file field path ("content: keys must be >= 1").
  [[nodiscard]] static std::optional<std::string> validate(const ContentSpec& spec);

  [[nodiscard]] bool operator==(const ContentSpec&) const = default;
};

/// The compiled runtime form of a `ContentSpec`: pure per-(node, slot,
/// cycle) sampling of publish schedules, fetch arrivals and service
/// outcomes.  Cheap to copy; thread-safe because it is immutable after
/// construction.
class ContentModel {
 public:
  /// `seed` decorrelates content draws from every other RNG-tree branch;
  /// the spec is assumed valid (callers run `ContentSpec::validate`
  /// first — the scenario layer always does).
  explicit ContentModel(ContentSpec spec = {}, std::uint64_t seed = 0);

  [[nodiscard]] const ContentSpec& spec() const noexcept { return spec_; }

  /// How many keys node `node` provides: the integer part of the
  /// category's `publishes_per_peer` plus a stable-hash coin for the
  /// fractional part.
  [[nodiscard]] std::uint32_t publish_count(std::uint32_t node,
                                            Category category) const noexcept;

  /// The keyspace index node `node` provides in publish slot `slot`
  /// (uniform over `keyspace`; distinct slots may collide, as real
  /// providers of popular content do).
  [[nodiscard]] std::uint32_t key_for(std::uint32_t node, std::uint32_t slot,
                                      std::uint32_t keyspace) const noexcept;

  /// Delay from the start of a node's session to its first provide of
  /// slot `slot`, uniform in [0, publish_spread).
  [[nodiscard]] common::SimDuration initial_publish_delay(
      std::uint32_t node, std::uint32_t slot) const noexcept;

  /// Jitter added to republish cycle `cycle` of slot `slot`, uniform in
  /// [0, publish_spread) — keeps the 12 h cadence from synchronising.
  [[nodiscard]] common::SimDuration republish_jitter(
      std::uint32_t node, std::uint32_t slot, std::uint32_t cycle) const noexcept;

  /// Exponential inter-fetch gap before node `node`'s fetch number
  /// `fetch` (>= 0 ms; 0 when the category's rate is zero — consumers
  /// must check `fetch_rate` first).
  [[nodiscard]] common::SimDuration fetch_gap(std::uint32_t node,
                                              std::uint32_t fetch,
                                              Category category) const;

  /// The keyspace index node `node` requests in fetch number `fetch`.
  /// Popularity-biased: low key indices are fetched quadratically more
  /// often, the skew real content catalogues show.
  [[nodiscard]] std::uint32_t fetch_key(std::uint32_t node, std::uint32_t fetch,
                                        std::uint32_t keyspace) const noexcept;

  /// Whether fetch number `fetch` is actually served once a provider was
  /// found (stable hash vs `spec().fetch_success`).
  [[nodiscard]] bool fetch_served(std::uint32_t node,
                                  std::uint32_t fetch) const noexcept;

  /// Per-category effective rates (override or top-level).
  [[nodiscard]] double publish_rate(Category category) const noexcept;
  [[nodiscard]] double fetch_rate(Category category) const noexcept;

  /// The deterministic CID of keyspace index `key` — stable across runs
  /// for one seed, so provider records and Bitswap blocks line up.
  [[nodiscard]] p2p::PeerId key_cid(std::uint32_t key) const noexcept;

 private:
  [[nodiscard]] common::Rng draw_rng(std::uint64_t salt, std::uint32_t node,
                                     std::uint32_t index) const noexcept;

  ContentSpec spec_;
  std::uint64_t seed_ = 0;
  /// Category -> override slot (or -1), compiled from `spec_.categories`.
  std::array<std::int32_t, kCategoryCount> override_slot_{};
};

}  // namespace ipfs::scenario
