#include "scenario/scenario_spec.hpp"

#include <fstream>
#include <limits>
#include <sstream>

namespace ipfs::scenario {

using common::JsonValue;
using common::JsonWriter;
using common::kDay;
using common::kHour;
using common::kMinute;
using common::kSecond;
using common::SimDuration;

namespace {

/// Parse-stage error: nullopt means the extraction succeeded.
using ParseError = std::optional<std::string>;

std::string join(const std::string& path, std::string_view key) {
  return path.empty() ? std::string(key) : path + "." + std::string(key);
}

ParseError expect_object(const JsonValue& value, const std::string& path) {
  if (value.is_object()) return std::nullopt;
  return path + ": expected an object, got " + std::string(value.type_name());
}

/// Strict schemas: any member not in `allowed` is an error, so typos fail
/// `ipfs_sim validate` instead of being silently ignored.
ParseError check_keys(const JsonValue& value, const std::string& path,
                      std::initializer_list<std::string_view> allowed) {
  for (const JsonValue::Member& member : value.as_object()) {
    bool known = false;
    for (const std::string_view key : allowed) {
      if (member.first == key) {
        known = true;
        break;
      }
    }
    if (!known) return path + ": unknown field '" + member.first + "'";
  }
  return std::nullopt;
}

ParseError get_bool(const JsonValue& object, std::string_view key,
                    const std::string& path, bool& out) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return std::nullopt;
  if (!value->is_bool()) {
    return join(path, key) + ": expected true or false";
  }
  out = value->as_bool();
  return std::nullopt;
}

ParseError get_double(const JsonValue& object, std::string_view key,
                      const std::string& path, double& out) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return std::nullopt;
  if (!value->is_number()) return join(path, key) + ": expected a number";
  out = value->as_double();
  return std::nullopt;
}

ParseError get_string(const JsonValue& object, std::string_view key,
                      const std::string& path, std::string& out) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return std::nullopt;
  if (!value->is_string()) return join(path, key) + ": expected a string";
  out = value->as_string();
  return std::nullopt;
}

ParseError get_u64(const JsonValue& object, std::string_view key,
                   const std::string& path, std::uint64_t& out) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return std::nullopt;
  const auto parsed = value->as_uint64();
  if (!parsed) return join(path, key) + ": expected a non-negative integer";
  out = *parsed;
  return std::nullopt;
}

ParseError get_u32(const JsonValue& object, std::string_view key,
                   const std::string& path, std::uint32_t& out) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return std::nullopt;
  const auto parsed = value->as_uint64();
  if (!parsed || *parsed > 0xffffffffULL) {
    return join(path, key) + ": expected an integer in [0, 2^32)";
  }
  out = static_cast<std::uint32_t>(*parsed);
  return std::nullopt;
}

ParseError get_int(const JsonValue& object, std::string_view key,
                   const std::string& path, int& out) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return std::nullopt;
  const auto parsed = value->as_int64();
  if (!parsed || *parsed < std::numeric_limits<int>::min() ||
      *parsed > std::numeric_limits<int>::max()) {
    return join(path, key) + ": expected an integer";
  }
  out = static_cast<int>(*parsed);
  return std::nullopt;
}

/// Durations are integer milliseconds (the library's SimTime unit), so
/// specs round-trip without floating-point drift.
ParseError get_duration_ms(const JsonValue& object, std::string_view key,
                           const std::string& path, SimDuration& out) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return std::nullopt;
  const auto parsed = value->as_int64();
  if (!parsed) {
    return join(path, key) + ": expected an integer number of milliseconds";
  }
  out = *parsed;
  return std::nullopt;
}

// ---- section parsers --------------------------------------------------------

ParseError parse_go_ipfs(const JsonValue& value, const std::string& path,
                         PeriodSpec& period) {
  if (auto error = expect_object(value, path)) return error;
  if (auto error = check_keys(value, path,
                              {"present", "mode", "low_water", "high_water"})) {
    return error;
  }
  if (auto error = get_bool(value, "present", path, period.go_ipfs_present)) {
    return error;
  }
  std::string mode;
  if (auto error = get_string(value, "mode", path, mode)) return error;
  if (!mode.empty()) {
    if (mode == "server") {
      period.go_ipfs_mode = dht::Mode::kServer;
    } else if (mode == "client") {
      period.go_ipfs_mode = dht::Mode::kClient;
    } else {
      return join(path, "mode") + ": expected \"server\" or \"client\"";
    }
  }
  if (auto error = get_int(value, "low_water", path, period.go_low_water)) {
    return error;
  }
  if (auto error = get_int(value, "high_water", path, period.go_high_water)) {
    return error;
  }
  return std::nullopt;
}

ParseError parse_hydra(const JsonValue& value, const std::string& path,
                       PeriodSpec& period) {
  if (auto error = expect_object(value, path)) return error;
  if (auto error = check_keys(value, path, {"heads", "low_water", "high_water"})) {
    return error;
  }
  if (auto error = get_int(value, "heads", path, period.hydra_heads)) return error;
  if (auto error = get_int(value, "low_water", path, period.hydra_low_water)) {
    return error;
  }
  if (auto error = get_int(value, "high_water", path, period.hydra_high_water)) {
    return error;
  }
  return std::nullopt;
}

ParseError parse_period(const JsonValue& value, const std::string& path,
                        PeriodSpec& period) {
  if (auto error = expect_object(value, path)) return error;
  if (auto error = check_keys(value, path,
                              {"name", "dates", "duration_ms", "go_ipfs", "hydra"})) {
    return error;
  }
  if (auto error = get_string(value, "name", path, period.name)) return error;
  if (auto error = get_string(value, "dates", path, period.dates)) return error;
  if (auto error = get_duration_ms(value, "duration_ms", path, period.duration)) {
    return error;
  }
  if (const JsonValue* go = value.find("go_ipfs")) {
    if (auto error = parse_go_ipfs(*go, join(path, "go_ipfs"), period)) return error;
  }
  if (const JsonValue* hydra = value.find("hydra")) {
    if (auto error = parse_hydra(*hydra, join(path, "hydra"), period)) return error;
  }
  return std::nullopt;
}

ParseError parse_counts(const JsonValue& value, const std::string& path,
                        PopulationCounts& counts) {
  if (auto error = expect_object(value, path)) return error;
  if (auto error = check_keys(
          value, path,
          {"hydra_heads", "core_servers", "core_clients", "normal_users",
           "light_servers", "disguised_storm", "light_clients", "crawlers",
           "one_time_per_day", "ephemeral_per_day", "rotating_pids_per_day",
           "ethereum_nodes", "nat_groups", "nat_group_min", "nat_group_max"})) {
    return error;
  }
  if (auto e = get_u32(value, "hydra_heads", path, counts.hydra_heads)) return e;
  if (auto e = get_u32(value, "core_servers", path, counts.core_servers)) return e;
  if (auto e = get_u32(value, "core_clients", path, counts.core_clients)) return e;
  if (auto e = get_u32(value, "normal_users", path, counts.normal_users)) return e;
  if (auto e = get_u32(value, "light_servers", path, counts.light_servers)) return e;
  if (auto e = get_u32(value, "disguised_storm", path, counts.disguised_storm)) {
    return e;
  }
  if (auto e = get_u32(value, "light_clients", path, counts.light_clients)) return e;
  if (auto e = get_u32(value, "crawlers", path, counts.crawlers)) return e;
  if (auto e = get_u32(value, "one_time_per_day", path, counts.one_time_per_day)) {
    return e;
  }
  if (auto e = get_u32(value, "ephemeral_per_day", path, counts.ephemeral_per_day)) {
    return e;
  }
  if (auto e = get_u32(value, "rotating_pids_per_day", path,
                       counts.rotating_pids_per_day)) {
    return e;
  }
  if (auto e = get_u32(value, "ethereum_nodes", path, counts.ethereum_nodes)) {
    return e;
  }
  if (auto e = get_u32(value, "nat_groups", path, counts.nat_groups)) return e;
  if (auto e = get_u32(value, "nat_group_min", path, counts.nat_group_min)) return e;
  if (auto e = get_u32(value, "nat_group_max", path, counts.nat_group_max)) return e;
  return std::nullopt;
}

ParseError parse_category_params(const JsonValue& value, const std::string& path,
                                 Category category, CategoryParams& params) {
  if (auto error = expect_object(value, path)) return error;
  if (auto error = check_keys(
          value, path,
          {"session", "mean_session_ms", "mean_gap_ms", "dht_server",
           "maintain_probability", "retention_mean_ms", "queries_per_hour",
           "query_duration_median_ms", "reconnect_after_trim",
           "reconnect_backoff_mean_ms", "crawl_visibility"})) {
    return error;
  }
  params = default_params(category);  // absent fields keep the calibrated value
  std::string session;
  if (auto error = get_string(value, "session", path, session)) return error;
  if (!session.empty()) {
    const auto kind = session_kind_from_string(session);
    if (!kind) {
      return join(path, "session") +
             ": expected \"always-on\", \"recurring\" or \"one-shot\"";
    }
    params.session = *kind;
  }
  if (auto e = get_duration_ms(value, "mean_session_ms", path, params.mean_session)) {
    return e;
  }
  if (auto e = get_duration_ms(value, "mean_gap_ms", path, params.mean_gap)) return e;
  if (auto e = get_bool(value, "dht_server", path, params.dht_server)) return e;
  if (auto e = get_double(value, "maintain_probability", path,
                          params.maintain_probability)) {
    return e;
  }
  if (auto e = get_duration_ms(value, "retention_mean_ms", path,
                               params.retention_mean)) {
    return e;
  }
  if (auto e = get_double(value, "queries_per_hour", path, params.queries_per_hour)) {
    return e;
  }
  if (auto e = get_duration_ms(value, "query_duration_median_ms", path,
                               params.query_duration_median)) {
    return e;
  }
  if (auto e = get_bool(value, "reconnect_after_trim", path,
                        params.reconnect_after_trim)) {
    return e;
  }
  if (auto e = get_duration_ms(value, "reconnect_backoff_mean_ms", path,
                               params.reconnect_backoff_mean)) {
    return e;
  }
  if (auto e = get_double(value, "crawl_visibility", path, params.crawl_visibility)) {
    return e;
  }
  return std::nullopt;
}

ParseError parse_population(const JsonValue& value, const std::string& path,
                            PopulationSpec& population) {
  if (auto error = expect_object(value, path)) return error;
  if (auto error = check_keys(value, path, {"scale", "counts", "categories"})) {
    return error;
  }
  if (auto error = get_double(value, "scale", path, population.scale)) return error;
  if (const JsonValue* counts = value.find("counts")) {
    if (auto error = parse_counts(*counts, join(path, "counts"), population.counts)) {
      return error;
    }
  }
  if (const JsonValue* categories = value.find("categories")) {
    const std::string categories_path = join(path, "categories");
    if (auto error = expect_object(*categories, categories_path)) return error;
    for (const JsonValue::Member& member : categories->as_object()) {
      const auto category = category_from_string(member.first);
      if (!category) {
        return categories_path + ": unknown category name '" + member.first + "'";
      }
      CategoryParams params;
      if (auto error = parse_category_params(
              member.second, join(categories_path, member.first), *category,
              params)) {
        return error;
      }
      params.category = *category;
      population.set_override(*category, params);
    }
  }
  return std::nullopt;
}

// ---- the "network" section (net::ConditionSpec) -----------------------------

ParseError parse_network_latency(const JsonValue& value, const std::string& path,
                                 net::LatencyModel& latency) {
  if (auto error = expect_object(value, path)) return error;
  if (auto error = check_keys(value, path,
                              {"flat_min_ms", "flat_max_ms", "jitter_fraction"})) {
    return error;
  }
  if (auto e = get_duration_ms(value, "flat_min_ms", path, latency.min_one_way)) {
    return e;
  }
  if (auto e = get_duration_ms(value, "flat_max_ms", path, latency.max_one_way)) {
    return e;
  }
  if (auto e = get_double(value, "jitter_fraction", path, latency.jitter_fraction)) {
    return e;
  }
  return std::nullopt;
}

ParseError parse_network_zone(const JsonValue& value, const std::string& path,
                              net::ZoneSpec& zone) {
  if (auto error = expect_object(value, path)) return error;
  if (auto error = check_keys(value, path,
                              {"name", "weight", "intra_min_ms", "intra_max_ms"})) {
    return error;
  }
  if (auto e = get_string(value, "name", path, zone.name)) return e;
  if (auto e = get_double(value, "weight", path, zone.weight)) return e;
  if (auto e = get_duration_ms(value, "intra_min_ms", path, zone.intra_min)) return e;
  if (auto e = get_duration_ms(value, "intra_max_ms", path, zone.intra_max)) return e;
  return std::nullopt;
}

ParseError parse_network_link(const JsonValue& value, const std::string& path,
                              net::ZoneLinkSpec& link) {
  if (auto error = expect_object(value, path)) return error;
  if (auto error = check_keys(value, path, {"from", "to", "min_ms", "max_ms"})) {
    return error;
  }
  if (auto e = get_string(value, "from", path, link.from)) return e;
  if (auto e = get_string(value, "to", path, link.to)) return e;
  if (auto e = get_duration_ms(value, "min_ms", path, link.min_one_way)) return e;
  if (auto e = get_duration_ms(value, "max_ms", path, link.max_one_way)) return e;
  return std::nullopt;
}

ParseError parse_network_nat(const JsonValue& value, const std::string& path,
                             net::NatSpec& nat) {
  if (auto error = expect_object(value, path)) return error;
  if (auto error = check_keys(value, path, {"classes", "categories"})) return error;
  if (const JsonValue* classes = value.find("classes")) {
    const std::string classes_path = join(path, "classes");
    if (!classes->is_array()) return classes_path + ": expected an array";
    for (std::size_t i = 0; i < classes->as_array().size(); ++i) {
      const std::string item_path = classes_path + "[" + std::to_string(i) + "]";
      const JsonValue& item = classes->as_array()[i];
      if (auto error = expect_object(item, item_path)) return error;
      if (auto error = check_keys(item, item_path,
                                  {"name", "weight", "accepts_inbound"})) {
        return error;
      }
      net::NatClassSpec nat_class;
      if (auto e = get_string(item, "name", item_path, nat_class.name)) return e;
      if (auto e = get_double(item, "weight", item_path, nat_class.weight)) return e;
      if (auto e = get_bool(item, "accepts_inbound", item_path,
                            nat_class.accepts_inbound)) {
        return e;
      }
      nat.classes.push_back(std::move(nat_class));
    }
  }
  if (const JsonValue* categories = value.find("categories")) {
    const std::string categories_path = join(path, "categories");
    if (auto error = expect_object(*categories, categories_path)) return error;
    for (const JsonValue::Member& member : categories->as_object()) {
      if (!category_from_string(member.first)) {
        return categories_path + ": unknown category name '" + member.first + "'";
      }
      if (!member.second.is_string()) {
        return join(categories_path, member.first) + ": expected a class name";
      }
      nat.categories.emplace_back(member.first, member.second.as_string());
    }
  }
  return std::nullopt;
}

ParseError parse_network_disturbance(const JsonValue& value, const std::string& path,
                                     net::DisturbanceSpec& disturbance) {
  if (auto error = expect_object(value, path)) return error;
  std::string kind;
  if (auto e = get_string(value, "kind", path, kind)) return e;
  const auto parsed_kind = net::disturbance_kind_from_string(kind);
  if (!parsed_kind) {
    return join(path, "kind") + ": expected \"outage\", \"partition\" or \"degrade\"";
  }
  disturbance.kind = *parsed_kind;
  // Key sets are per kind, so e.g. a latency_factor on an outage is a typo
  // caught at validate time, not silently ignored.
  switch (disturbance.kind) {
    case net::DisturbanceSpec::Kind::kOutage:
      if (auto error = check_keys(value, path,
                                  {"kind", "zone", "from_ms", "until_ms",
                                   "period_ms"})) {
        return error;
      }
      break;
    case net::DisturbanceSpec::Kind::kPartition:
      if (auto error = check_keys(value, path,
                                  {"kind", "zones", "from_ms", "until_ms",
                                   "period_ms"})) {
        return error;
      }
      break;
    case net::DisturbanceSpec::Kind::kDegrade:
      if (auto error = check_keys(value, path,
                                  {"kind", "zone", "from_ms", "until_ms",
                                   "period_ms", "latency_factor", "extra_loss"})) {
        return error;
      }
      break;
  }
  if (auto e = get_string(value, "zone", path, disturbance.zone)) return e;
  if (const JsonValue* zones = value.find("zones")) {
    const std::string zones_path = join(path, "zones");
    if (!zones->is_array()) return zones_path + ": expected an array of zone names";
    for (const JsonValue& zone : zones->as_array()) {
      if (!zone.is_string()) return zones_path + ": expected an array of zone names";
      disturbance.zones.push_back(zone.as_string());
    }
  }
  if (auto e = get_duration_ms(value, "from_ms", path, disturbance.from)) return e;
  if (auto e = get_duration_ms(value, "until_ms", path, disturbance.until)) return e;
  if (auto e = get_duration_ms(value, "period_ms", path, disturbance.period)) {
    return e;
  }
  if (auto e = get_double(value, "latency_factor", path,
                          disturbance.latency_factor)) {
    return e;
  }
  if (auto e = get_double(value, "extra_loss", path, disturbance.extra_loss)) {
    return e;
  }
  return std::nullopt;
}

ParseError parse_network(const JsonValue& value, const std::string& path,
                         net::ConditionSpec& network) {
  if (auto error = expect_object(value, path)) return error;
  if (auto error = check_keys(value, path,
                              {"latency", "symmetric", "zones", "default_link",
                               "links", "loss", "nat", "disturbances"})) {
    return error;
  }
  if (const JsonValue* latency = value.find("latency")) {
    if (auto error = parse_network_latency(*latency, join(path, "latency"),
                                           network.latency)) {
      return error;
    }
  }
  if (auto e = get_bool(value, "symmetric", path, network.symmetric)) return e;
  if (const JsonValue* zones = value.find("zones")) {
    const std::string zones_path = join(path, "zones");
    if (!zones->is_array()) return zones_path + ": expected an array";
    for (std::size_t i = 0; i < zones->as_array().size(); ++i) {
      net::ZoneSpec zone;
      if (auto error = parse_network_zone(
              zones->as_array()[i], zones_path + "[" + std::to_string(i) + "]",
              zone)) {
        return error;
      }
      network.zones.push_back(std::move(zone));
    }
  }
  if (const JsonValue* default_link = value.find("default_link")) {
    const std::string link_path = join(path, "default_link");
    if (auto error = expect_object(*default_link, link_path)) return error;
    if (auto error = check_keys(*default_link, link_path, {"min_ms", "max_ms"})) {
      return error;
    }
    if (auto e = get_duration_ms(*default_link, "min_ms", link_path,
                                 network.default_link.min_one_way)) {
      return e;
    }
    if (auto e = get_duration_ms(*default_link, "max_ms", link_path,
                                 network.default_link.max_one_way)) {
      return e;
    }
  }
  if (const JsonValue* links = value.find("links")) {
    const std::string links_path = join(path, "links");
    if (!links->is_array()) return links_path + ": expected an array";
    for (std::size_t i = 0; i < links->as_array().size(); ++i) {
      net::ZoneLinkSpec link;
      if (auto error = parse_network_link(
              links->as_array()[i], links_path + "[" + std::to_string(i) + "]",
              link)) {
        return error;
      }
      network.links.push_back(std::move(link));
    }
  }
  if (const JsonValue* loss = value.find("loss")) {
    const std::string loss_path = join(path, "loss");
    if (auto error = expect_object(*loss, loss_path)) return error;
    if (auto error = check_keys(*loss, loss_path,
                                {"dial_failure", "message_loss"})) {
      return error;
    }
    if (auto e = get_double(*loss, "dial_failure", loss_path,
                            network.loss.dial_failure)) {
      return e;
    }
    if (auto e = get_double(*loss, "message_loss", loss_path,
                            network.loss.message_loss)) {
      return e;
    }
  }
  if (const JsonValue* nat = value.find("nat")) {
    if (auto error = parse_network_nat(*nat, join(path, "nat"), network.nat)) {
      return error;
    }
  }
  if (const JsonValue* disturbances = value.find("disturbances")) {
    const std::string d_path = join(path, "disturbances");
    if (!disturbances->is_array()) return d_path + ": expected an array";
    for (std::size_t i = 0; i < disturbances->as_array().size(); ++i) {
      net::DisturbanceSpec disturbance;
      if (auto error = parse_network_disturbance(
              disturbances->as_array()[i], d_path + "[" + std::to_string(i) + "]",
              disturbance)) {
        return error;
      }
      network.disturbances.push_back(std::move(disturbance));
    }
  }
  return std::nullopt;
}

// ---- the "churn" section (scenario::ChurnSpec) ------------------------------

ParseError parse_distribution(const JsonValue& value, const std::string& path,
                              SessionDistribution& distribution) {
  if (auto error = expect_object(value, path)) return error;
  std::string kind;
  if (auto e = get_string(value, "kind", path, kind)) return e;
  const auto parsed_kind = distribution_kind_from_string(kind);
  if (!parsed_kind) {
    return join(path, "kind") +
           ": expected \"exponential\", \"weibull\" or \"lognormal\"";
  }
  // Key sets are per kind, so e.g. a weibull `shape` on an exponential is
  // a typo caught at validate time, not silently ignored.
  SessionDistribution parsed;
  parsed.kind = *parsed_kind;
  switch (parsed.kind) {
    case SessionDistribution::Kind::kExponential:
      if (auto error = check_keys(value, path, {"kind", "mean_ms"})) return error;
      if (auto e = get_double(value, "mean_ms", path, parsed.mean_ms)) return e;
      break;
    case SessionDistribution::Kind::kWeibull:
      if (auto error = check_keys(value, path, {"kind", "shape", "scale_ms"})) {
        return error;
      }
      if (auto e = get_double(value, "shape", path, parsed.shape)) return e;
      if (auto e = get_double(value, "scale_ms", path, parsed.scale_ms)) return e;
      break;
    case SessionDistribution::Kind::kLognormal:
      if (auto error = check_keys(value, path, {"kind", "median_ms", "sigma"})) {
        return error;
      }
      if (auto e = get_double(value, "median_ms", path, parsed.median_ms)) return e;
      if (auto e = get_double(value, "sigma", path, parsed.sigma)) return e;
      break;
  }
  distribution = parsed;
  return std::nullopt;
}

ParseError parse_churn(const JsonValue& value, const std::string& path,
                       ChurnSpec& churn) {
  if (auto error = expect_object(value, path)) return error;
  if (auto error = check_keys(value, path,
                              {"session", "gap", "initial_online",
                               "sample_interval_ms", "diurnal", "categories"})) {
    return error;
  }
  if (const JsonValue* session = value.find("session")) {
    if (auto error = parse_distribution(*session, join(path, "session"),
                                        churn.session)) {
      return error;
    }
  }
  if (const JsonValue* gap = value.find("gap")) {
    if (auto error = parse_distribution(*gap, join(path, "gap"), churn.gap)) {
      return error;
    }
  }
  if (auto e = get_double(value, "initial_online", path, churn.initial_online)) {
    return e;
  }
  if (auto e = get_duration_ms(value, "sample_interval_ms", path,
                               churn.sample_interval)) {
    return e;
  }
  if (const JsonValue* diurnal = value.find("diurnal")) {
    const std::string diurnal_path = join(path, "diurnal");
    if (auto error = expect_object(*diurnal, diurnal_path)) return error;
    if (auto error = check_keys(*diurnal, diurnal_path,
                                {"amplitude", "period_ms", "phase_ms"})) {
      return error;
    }
    DiurnalSpec parsed;
    if (auto e = get_double(*diurnal, "amplitude", diurnal_path,
                            parsed.amplitude)) {
      return e;
    }
    if (auto e = get_duration_ms(*diurnal, "period_ms", diurnal_path,
                                 parsed.period)) {
      return e;
    }
    if (auto e = get_duration_ms(*diurnal, "phase_ms", diurnal_path,
                                 parsed.phase)) {
      return e;
    }
    churn.diurnal = parsed;
  }
  if (const JsonValue* categories = value.find("categories")) {
    const std::string categories_path = join(path, "categories");
    if (auto error = expect_object(*categories, categories_path)) return error;
    for (const JsonValue::Member& member : categories->as_object()) {
      const auto category = category_from_string(member.first);
      if (!category) {
        return categories_path + ": unknown category name '" + member.first + "'";
      }
      const std::string entry_path = join(categories_path, member.first);
      if (auto error = expect_object(member.second, entry_path)) return error;
      if (auto error = check_keys(member.second, entry_path, {"session", "gap"})) {
        return error;
      }
      ChurnCategorySpec entry;
      entry.category = *category;
      // Absent fields inherit the spec's top-level distributions.
      entry.session = churn.session;
      entry.gap = churn.gap;
      if (const JsonValue* session = member.second.find("session")) {
        if (auto error = parse_distribution(*session, join(entry_path, "session"),
                                            entry.session)) {
          return error;
        }
      }
      if (const JsonValue* gap = member.second.find("gap")) {
        if (auto error = parse_distribution(*gap, join(entry_path, "gap"),
                                            entry.gap)) {
          return error;
        }
      }
      churn.categories.push_back(std::move(entry));
    }
  }
  return std::nullopt;
}

// ---- the "content" section (scenario::ContentSpec) --------------------------

ParseError parse_content(const JsonValue& value, const std::string& path,
                         ContentSpec& content) {
  if (auto error = expect_object(value, path)) return error;
  if (auto error = check_keys(
          value, path,
          {"keys", "publishes_per_peer", "fetches_per_hour", "provider_ttl_ms",
           "republish_interval_ms", "publish_spread_ms",
           "bucket_refresh_interval_ms", "replacement_cache_size",
           "sample_interval_ms", "fetch_success", "categories"})) {
    return error;
  }
  if (auto e = get_u32(value, "keys", path, content.keys)) return e;
  if (auto e = get_double(value, "publishes_per_peer", path,
                          content.publishes_per_peer)) {
    return e;
  }
  if (auto e = get_double(value, "fetches_per_hour", path,
                          content.fetches_per_hour)) {
    return e;
  }
  if (auto e = get_duration_ms(value, "provider_ttl_ms", path,
                               content.provider_ttl)) {
    return e;
  }
  if (auto e = get_duration_ms(value, "republish_interval_ms", path,
                               content.republish_interval)) {
    return e;
  }
  if (auto e = get_duration_ms(value, "publish_spread_ms", path,
                               content.publish_spread)) {
    return e;
  }
  if (auto e = get_duration_ms(value, "bucket_refresh_interval_ms", path,
                               content.bucket_refresh_interval)) {
    return e;
  }
  if (auto e = get_u32(value, "replacement_cache_size", path,
                       content.replacement_cache_size)) {
    return e;
  }
  if (auto e = get_duration_ms(value, "sample_interval_ms", path,
                               content.sample_interval)) {
    return e;
  }
  if (auto e = get_double(value, "fetch_success", path, content.fetch_success)) {
    return e;
  }
  if (const JsonValue* categories = value.find("categories")) {
    const std::string categories_path = join(path, "categories");
    if (auto error = expect_object(*categories, categories_path)) return error;
    for (const JsonValue::Member& member : categories->as_object()) {
      const auto category = category_from_string(member.first);
      if (!category) {
        return categories_path + ": unknown category name '" + member.first + "'";
      }
      const std::string entry_path = join(categories_path, member.first);
      if (auto error = expect_object(member.second, entry_path)) return error;
      if (auto error = check_keys(member.second, entry_path,
                                  {"publishes_per_peer", "fetches_per_hour"})) {
        return error;
      }
      ContentCategorySpec entry;
      entry.category = *category;
      // Absent fields inherit the spec's top-level rates.
      entry.publishes_per_peer = content.publishes_per_peer;
      entry.fetches_per_hour = content.fetches_per_hour;
      if (auto e = get_double(member.second, "publishes_per_peer", entry_path,
                              entry.publishes_per_peer)) {
        return e;
      }
      if (auto e = get_double(member.second, "fetches_per_hour", entry_path,
                              entry.fetches_per_hour)) {
        return e;
      }
      content.categories.push_back(std::move(entry));
    }
  }
  return std::nullopt;
}

// ---- the "phases" section (scenario::PhaseProgramSpec) ----------------------

ParseError parse_phase(const JsonValue& value, const std::string& path,
                       PhaseSpec& phase) {
  if (auto error = expect_object(value, path)) return error;
  const JsonValue* mode = value.find("mode");
  if (mode == nullptr) return path + ": mode is required";
  if (!mode->is_string()) return join(path, "mode") + ": expected a string";
  const auto parsed_mode = phase_mode_from_string(mode->as_string());
  if (!parsed_mode) {
    return join(path, "mode") +
           ": expected \"hold\", \"ramp\", \"burst\" or \"flash_crowd\"";
  }
  phase.mode = *parsed_mode;
  // Mode-specific key sets, like the network disturbance kinds: a burst
  // field on a hold phase is a schema error, not dead configuration.
  switch (phase.mode) {
    case PhaseMode::kBurst:
      if (auto error = check_keys(value, path,
                                  {"name", "mode", "hold_ms", "churn_rate",
                                   "fetch_rate", "publish_rate", "crawl_rate",
                                   "population", "switch_ms"})) {
        return error;
      }
      break;
    case PhaseMode::kFlashCrowd:
      if (auto error = check_keys(value, path,
                                  {"name", "mode", "hold_ms", "churn_rate",
                                   "fetch_rate", "publish_rate", "crawl_rate",
                                   "population", "hot_key", "spike",
                                   "hot_fraction"})) {
        return error;
      }
      break;
    case PhaseMode::kHold:
    case PhaseMode::kRamp:
      if (auto error = check_keys(value, path,
                                  {"name", "mode", "hold_ms", "churn_rate",
                                   "fetch_rate", "publish_rate", "crawl_rate",
                                   "population"})) {
        return error;
      }
      break;
  }
  if (auto e = get_string(value, "name", path, phase.name)) return e;
  if (auto e = get_duration_ms(value, "hold_ms", path, phase.hold)) return e;
  if (phase.hold <= 0) return path + ": hold_ms must be > 0";
  if (auto e = get_double(value, "churn_rate", path, phase.churn_rate)) return e;
  if (auto e = get_double(value, "fetch_rate", path, phase.fetch_rate)) return e;
  if (auto e = get_double(value, "publish_rate", path, phase.publish_rate)) {
    return e;
  }
  if (auto e = get_double(value, "crawl_rate", path, phase.crawl_rate)) return e;
  if (auto e = get_double(value, "population", path, phase.population)) return e;
  if (phase.mode == PhaseMode::kBurst) {
    if (auto e = get_duration_ms(value, "switch_ms", path,
                                 phase.switch_interval)) {
      return e;
    }
    if (phase.switch_interval <= 0) return path + ": switch_ms must be > 0";
  }
  if (phase.mode == PhaseMode::kFlashCrowd) {
    if (auto e = get_u32(value, "hot_key", path, phase.hot_key)) return e;
    if (auto e = get_double(value, "spike", path, phase.spike)) return e;
    if (auto e = get_double(value, "hot_fraction", path, phase.hot_fraction)) {
      return e;
    }
  }
  return std::nullopt;
}

ParseError parse_phases(const JsonValue& value, const std::string& path,
                        PhaseProgramSpec& phases) {
  if (auto error = expect_object(value, path)) return error;
  if (auto error = check_keys(value, path, {"diurnal_clock", "program"})) {
    return error;
  }
  if (const JsonValue* clock = value.find("diurnal_clock")) {
    if (!clock->is_string() || clock->as_string() != "absolute") {
      return join(path, "diurnal_clock") + ": expected \"absolute\"";
    }
    phases.diurnal_clock_absolute = true;
  }
  const JsonValue* program = value.find("program");
  if (program == nullptr) {
    return join(path, "program") + ": required";
  }
  if (!program->is_array()) {
    return join(path, "program") + ": expected an array";
  }
  for (std::size_t i = 0; i < program->as_array().size(); ++i) {
    PhaseSpec phase;
    if (auto error = parse_phase(program->as_array()[i],
                                 join(path, "program") + "[" +
                                     std::to_string(i) + "]",
                                 phase)) {
      return error;
    }
    phases.program.push_back(std::move(phase));
  }
  // Value-range rules (positivity, population in (0, 1], flash bounds):
  // one source of truth for files and programmatic specs alike.
  if (auto error = PhaseProgramSpec::validate(phases)) return error;
  return std::nullopt;
}

ParseError parse_campaign(const JsonValue& value, const std::string& path,
                          CampaignSettings& campaign) {
  if (auto error = expect_object(value, path)) return error;
  if (auto error = check_keys(value, path,
                              {"seed", "trials", "workers", "vantage_visibility",
                               "crawler", "metadata_dynamics",
                               "client_dials_per_hour"})) {
    return error;
  }
  if (auto e = get_u64(value, "seed", path, campaign.seed)) return e;
  if (auto e = get_u32(value, "trials", path, campaign.trials)) return e;
  if (auto e = get_u32(value, "workers", path, campaign.workers)) return e;
  if (auto e = get_double(value, "vantage_visibility", path,
                          campaign.vantage_visibility)) {
    return e;
  }
  if (const JsonValue* crawler = value.find("crawler")) {
    const std::string crawler_path = join(path, "crawler");
    if (auto error = expect_object(*crawler, crawler_path)) return error;
    if (auto error = check_keys(*crawler, crawler_path, {"enabled", "interval_ms"})) {
      return error;
    }
    if (auto e = get_bool(*crawler, "enabled", crawler_path,
                          campaign.enable_crawler)) {
      return e;
    }
    if (auto e = get_duration_ms(*crawler, "interval_ms", crawler_path,
                                 campaign.crawl_interval)) {
      return e;
    }
  }
  if (auto e = get_bool(value, "metadata_dynamics", path,
                        campaign.enable_metadata_dynamics)) {
    return e;
  }
  if (auto e = get_double(value, "client_dials_per_hour", path,
                          campaign.client_dials_per_hour)) {
    return e;
  }
  return std::nullopt;
}

ParseError parse_output(const JsonValue& value, const std::string& path,
                        OutputSettings& output) {
  if (auto error = expect_object(value, path)) return error;
  if (auto error = check_keys(value, path,
                              {"pretty", "include_connections", "role_filter"})) {
    return error;
  }
  if (auto e = get_bool(value, "pretty", path, output.pretty)) return e;
  if (auto e = get_bool(value, "include_connections", path,
                        output.include_connections)) {
    return e;
  }
  if (const JsonValue* filter = value.find("role_filter")) {
    if (filter->is_null()) {
      output.role_filter = std::nullopt;
    } else if (filter->is_string()) {
      const auto role = measure::role_from_string(filter->as_string());
      if (!role) {
        return join(path, "role_filter") + ": unknown dataset role '" +
               filter->as_string() + "'";
      }
      output.role_filter = role;
    } else {
      return join(path, "role_filter") + ": expected a string or null";
    }
  }
  return std::nullopt;
}

// ---- validation helpers -----------------------------------------------------

std::optional<std::string> validate_category(const CategoryParams& params,
                                             Category category) {
  const std::string prefix =
      "population.categories." + std::string(to_string(category)) + ": ";
  if (params.mean_session < 0) return prefix + "mean_session_ms must be >= 0";
  if (params.mean_gap < 0) return prefix + "mean_gap_ms must be >= 0";
  if (params.retention_mean < 0) return prefix + "retention_mean_ms must be >= 0";
  if (params.query_duration_median < 0) {
    return prefix + "query_duration_median_ms must be >= 0";
  }
  if (params.reconnect_backoff_mean < 0) {
    return prefix + "reconnect_backoff_mean_ms must be >= 0";
  }
  if (params.maintain_probability < 0.0 || params.maintain_probability > 1.0) {
    return prefix + "maintain_probability must be in [0, 1]";
  }
  if (params.crawl_visibility < 0.0 || params.crawl_visibility > 1.0) {
    return prefix + "crawl_visibility must be in [0, 1]";
  }
  if (params.queries_per_hour < 0.0) return prefix + "queries_per_hour must be >= 0";
  if (params.session == SessionKind::kRecurring && params.mean_session <= 0) {
    return prefix + "recurring sessions need mean_session_ms > 0";
  }
  return std::nullopt;
}

// ---- builtin catalogue ------------------------------------------------------

PeriodSpec period_p0() {
  PeriodSpec spec;
  spec.name = "P0";
  spec.dates = "2021-12-03 - 2021-12-06";
  spec.duration = 3 * kDay;
  spec.go_low_water = 600;
  spec.go_high_water = 900;
  spec.hydra_heads = 3;
  spec.hydra_low_water = 1200;
  spec.hydra_high_water = 1800;
  return spec;
}

PeriodSpec period_p1() {
  PeriodSpec spec;
  spec.name = "P1";
  spec.dates = "2021-12-09 - 2021-12-10";
  spec.duration = 1 * kDay;
  spec.go_low_water = 2000;
  spec.go_high_water = 4000;
  spec.hydra_heads = 2;
  spec.hydra_low_water = 2000;
  spec.hydra_high_water = 4000;
  return spec;
}

PeriodSpec period_p2() {
  PeriodSpec spec;
  spec.name = "P2";
  spec.dates = "2021-12-13 - 2021-12-14";
  spec.duration = 1 * kDay;
  spec.go_low_water = 18000;
  spec.go_high_water = 20000;
  spec.hydra_heads = 2;
  spec.hydra_low_water = 18000;
  spec.hydra_high_water = 20000;
  return spec;
}

PeriodSpec period_p3() {
  PeriodSpec spec;
  spec.name = "P3";
  spec.dates = "2022-02-16 - 2022-02-17";
  spec.duration = 1 * kDay;
  spec.go_ipfs_mode = dht::Mode::kClient;
  spec.go_low_water = 18000;
  spec.go_high_water = 20000;
  spec.hydra_heads = 0;
  return spec;
}

PeriodSpec period_p4() {
  PeriodSpec spec;
  spec.name = "P4";
  spec.dates = "2021-12-10 - 2021-12-13";
  spec.duration = 3 * kDay;
  spec.go_low_water = 18000;
  spec.go_high_water = 20000;
  spec.hydra_heads = 0;
  return spec;
}

PeriodSpec period_long14d() {
  PeriodSpec spec;
  spec.name = "LONG14D";
  spec.dates = "2022-03-29 - 2022-04-12";
  spec.duration = 14 * kDay;
  spec.go_low_water = 18000;
  spec.go_high_water = 20000;
  spec.hydra_heads = 0;
  return spec;
}

ScenarioSpec make_builtin(std::string name, std::string description,
                          PeriodSpec period) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.period = std::move(period);
  spec.population = PopulationSpec::paper_scale();
  return spec;
}

/// NAT-heavy population: most of the user base sits behind shared
/// household/small-cloud IPs and hides from active crawls — the §V-A
/// IP-grouping stress test.
ScenarioSpec builtin_nat_heavy() {
  PeriodSpec period;
  period.name = "NAT-HEAVY";
  period.dates = "";
  period.duration = 1 * kDay;
  period.go_low_water = 18000;
  period.go_high_water = 20000;
  period.hydra_heads = 0;
  ScenarioSpec spec = make_builtin(
      "nat-heavy",
      "NAT-heavy population: 9k shared-IP groups of up to 24 peers and "
      "sharply reduced crawl visibility; stresses the Sec. V-A IP grouping "
      "and widens the passive-vs-crawl gap of Fig. 2",
      period);
  spec.population.counts.nat_groups = 9000;
  spec.population.counts.nat_group_max = 24;
  spec.population.counts.core_clients = 14000;
  spec.population.counts.light_clients = 12000;
  spec.population.counts.one_time_per_day = 9000;
  CategoryParams normal = default_params(Category::kNormalUser);
  normal.crawl_visibility = 0.45;
  spec.population.set_override(Category::kNormalUser, normal);
  CategoryParams light_server = default_params(Category::kLightServer);
  light_server.crawl_visibility = 0.35;
  spec.population.set_override(Category::kLightServer, light_server);
  return spec;
}

/// Crawler storm: an order of magnitude more crawler agents, each sweeping
/// much faster — the short-connection regime of §IV-A pushed to the limit.
ScenarioSpec builtin_crawler_storm() {
  PeriodSpec period;
  period.name = "CRAWLER-STORM";
  period.dates = "";
  period.duration = 12 * kHour;
  period.go_low_water = 18000;
  period.go_high_water = 20000;
  period.hydra_heads = 0;
  ScenarioSpec spec = make_builtin(
      "crawler-storm",
      "Crawler storm: ~10x the crawler population sweeping at 30 visits/h "
      "with 20 s median contacts; floods the vantage with the short "
      "query-connection regime of Sec. IV-A",
      period);
  spec.population.counts.crawlers = 5000;
  CategoryParams crawler = default_params(Category::kCrawler);
  crawler.queries_per_hour = 30.0;
  crawler.query_duration_median = 20 * kSecond;
  spec.population.set_override(Category::kCrawler, crawler);
  return spec;
}

/// Weekend diurnal pattern: the standing user base switches to recurring
/// day-length sessions with long overnight gaps.
ScenarioSpec builtin_weekend_diurnal() {
  PeriodSpec period;
  period.name = "WEEKEND";
  period.dates = "";
  period.duration = 2 * kDay;
  period.go_low_water = 18000;
  period.go_high_water = 20000;
  period.hydra_heads = 0;
  ScenarioSpec spec = make_builtin(
      "weekend-diurnal",
      "Diurnal weekend pattern over 2 days: normal users and light clients "
      "run recurring ~7 h / ~4 h sessions with long overnight gaps, "
      "shifting the Fig. 7 session-CDF mass toward daily cycles",
      period);
  CategoryParams normal = default_params(Category::kNormalUser);
  normal.session = SessionKind::kRecurring;
  normal.mean_session = 7 * kHour;
  normal.mean_gap = 17 * kHour;
  spec.population.set_override(Category::kNormalUser, normal);
  CategoryParams light_client = default_params(Category::kLightClient);
  light_client.mean_session = 4 * kHour;
  light_client.mean_gap = 20 * kHour;
  spec.population.set_override(Category::kLightClient, light_client);
  return spec;
}

/// A trim-free 1-day server period shared by the condition-model workloads.
PeriodSpec period_conditions(std::string name) {
  PeriodSpec period;
  period.name = std::move(name);
  period.dates = "";
  period.duration = 1 * kDay;
  period.go_low_water = 18000;
  period.go_high_water = 20000;
  period.hydra_heads = 0;
  return period;
}

/// Four geographic zones with an explicit inter-zone latency matrix — the
/// condition-model showcase (DESIGN.md §9).
ScenarioSpec builtin_geo_zones() {
  ScenarioSpec spec = make_builtin(
      "geo-zones",
      "Four geo zones (eu/na/ap/sa) with an inter-zone latency matrix and "
      "1% dial failure; query durations and identify latency stretch with "
      "the pair's RTT, spreading the Fig. 7 contact-duration CDF by "
      "geography",
      period_conditions("GEO-ZONES"));
  net::ConditionSpec network;
  network.zones = {
      {.name = "eu", .weight = 0.35, .intra_min = 8, .intra_max = 28},
      {.name = "na", .weight = 0.30, .intra_min = 10, .intra_max = 32},
      {.name = "ap", .weight = 0.25, .intra_min = 12, .intra_max = 36},
      {.name = "sa", .weight = 0.10, .intra_min = 14, .intra_max = 40},
  };
  network.default_link = {.min_one_way = 100, .max_one_way = 200};
  network.links = {
      {.from = "eu", .to = "na", .min_one_way = 40, .max_one_way = 70},
      {.from = "eu", .to = "ap", .min_one_way = 120, .max_one_way = 180},
      {.from = "na", .to = "ap", .min_one_way = 90, .max_one_way = 150},
      {.from = "eu", .to = "sa", .min_one_way = 95, .max_one_way = 140},
      {.from = "na", .to = "sa", .min_one_way = 75, .max_one_way = 120},
  };
  network.loss.dial_failure = 0.01;
  spec.network = std::move(network);
  return spec;
}

/// Loss-heavy fabric with NAT classes and a diurnal degradation window —
/// the paper's short-lived-connection and NAT-reachability observations,
/// turned up.
ScenarioSpec builtin_flaky_links() {
  ScenarioSpec spec = make_builtin(
      "flaky-links",
      "Flaky fabric: 12% dial failure, 5% message loss, 65% of users "
      "behind inbound-refusing NAT classes, and a recurring 6 h degradation "
      "window every 24 h adding 15% loss at 2.5x latency — diurnal churn "
      "from network conditions alone",
      period_conditions("FLAKY-LINKS"));
  net::ConditionSpec network;
  network.loss.dial_failure = 0.12;
  network.loss.message_loss = 0.05;
  network.nat.classes = {
      {.name = "public", .weight = 0.35, .accepts_inbound = true},
      {.name = "eim-nat", .weight = 0.45, .accepts_inbound = false},
      {.name = "symmetric-nat", .weight = 0.20, .accepts_inbound = false},
  };
  network.nat.categories = {
      {"normal-user", "eim-nat"},
      {"light-client", "eim-nat"},
      {"one-time", "symmetric-nat"},
      // Server populations are publicly reachable by the paper's premise
      // (DHT server mode requires inbound reachability) — pin them so the
      // weighted hash cannot put them behind NAT.
      {"core-server", "public"},
      {"light-server", "public"},
      {"hydra", "public"},
      {"ethereum", "public"},
  };
  net::DisturbanceSpec diurnal;
  diurnal.kind = net::DisturbanceSpec::Kind::kDegrade;
  diurnal.from = 2 * kHour;
  diurnal.until = 8 * kHour;
  diurnal.period = 24 * kHour;
  diurnal.latency_factor = 2.5;
  diurnal.extra_loss = 0.15;
  network.disturbances = {diurnal};
  spec.network = std::move(network);
  return spec;
}

/// A zone partition plus a short total outage — the scheduled-disturbance
/// machinery driven hard enough to leave a visible dent in every dataset.
ScenarioSpec builtin_zone_partition() {
  ScenarioSpec spec = make_builtin(
      "zone-partition",
      "Three zones; 'ap' is partitioned from the rest for hours 8-16 and "
      "'na' suffers a full 1 h outage at hour 20 — connection gaps and "
      "recovery surges driven entirely by the simulation clock",
      period_conditions("ZONE-PARTITION"));
  net::ConditionSpec network;
  network.zones = {
      {.name = "eu", .weight = 0.40, .intra_min = 8, .intra_max = 28},
      {.name = "na", .weight = 0.35, .intra_min = 10, .intra_max = 32},
      {.name = "ap", .weight = 0.25, .intra_min = 12, .intra_max = 36},
  };
  network.default_link = {.min_one_way = 60, .max_one_way = 160};
  network.loss.dial_failure = 0.02;
  net::DisturbanceSpec partition;
  partition.kind = net::DisturbanceSpec::Kind::kPartition;
  partition.zones = {"ap"};
  partition.from = 8 * kHour;
  partition.until = 16 * kHour;
  net::DisturbanceSpec outage;
  outage.kind = net::DisturbanceSpec::Kind::kOutage;
  outage.zone = "na";
  outage.from = 20 * kHour;
  outage.until = 21 * kHour;
  network.disturbances = {partition, outage};
  spec.network = std::move(network);
  return spec;
}

/// Session-level churn driven hard enough to dominate the dataset: every
/// category — the always-on core included — joins and leaves on
/// heavy-tailed Weibull sessions (DESIGN.md §10).
ScenarioSpec builtin_churn_baseline() {
  ScenarioSpec spec = make_builtin(
      "churn-baseline",
      "Session-level churn for every category: Weibull(0.55) ~2 h sessions "
      "with lognormal ~2 h gaps, core servers churning an order of "
      "magnitude slower; the vantage observes genuine first/last-seen "
      "session traces and the engine publishes observed-vs-true "
      "population samples",
      period_conditions("CHURN-BASELINE"));
  ChurnSpec churn;  // the defaults are the showcase
  // The stable backbone churns too, just far slower — routing-table
  // staleness becomes real without the network falling over.
  ChurnCategorySpec core_server;
  core_server.category = Category::kCoreServer;
  core_server.session = SessionDistribution::weibull(0.9, 86'400'000.0);
  core_server.gap = SessionDistribution::exponential(3'600'000.0);
  ChurnCategorySpec hydra;
  hydra.category = Category::kHydra;
  hydra.session = SessionDistribution::weibull(0.9, 86'400'000.0);
  hydra.gap = SessionDistribution::exponential(1'800'000.0);
  churn.categories = {core_server, hydra};
  spec.churn = std::move(churn);
  return spec;
}

/// Diurnal churn: exponential sessions with lognormal gaps whose rejoin
/// rate swings by ±80 % over a 24 h cycle — availability-over-time shows
/// the day/night wave of user-operated nodes.
ScenarioSpec builtin_diurnal_churn() {
  PeriodSpec period = period_conditions("DIURNAL-CHURN");
  period.duration = 2 * kDay;
  ScenarioSpec spec = make_builtin(
      "diurnal-churn",
      "Two days of diurnally modulated churn: ~5 h exponential sessions, "
      "lognormal ~3 h gaps, rejoin rate swinging +/-80% over a 24 h cycle "
      "peaking at noon — availability-over-time traces the day/night wave",
      period);
  ChurnSpec churn;
  churn.session = SessionDistribution::exponential(18'000'000.0);
  churn.gap = SessionDistribution::lognormal(10'800'000.0, 1.0);
  churn.initial_online = 0.5;
  DiurnalSpec diurnal;
  diurnal.amplitude = 0.8;
  diurnal.period = 24 * kHour;
  diurnal.phase = 12 * kHour;
  churn.diurnal = diurnal;
  spec.churn = std::move(churn);
  return spec;
}

/// The content-workload showcase: go-ipfs publish/republish cadence over a
/// modest keyspace with steady Bitswap fetch traffic (DESIGN.md §11).
ScenarioSpec builtin_content_baseline() {
  ScenarioSpec spec = make_builtin(
      "content-baseline",
      "Content-routing baseline: every peer provides ~2 keys of a 512-key "
      "space on the go-ipfs 24 h validity / 12 h republish cycle and "
      "fetches ~1 block/h over Bitswap; the vantage record store tracks "
      "provider availability against ground truth",
      period_conditions("CONTENT-BASELINE"));
  ContentSpec content;  // the go-ipfs defaults are the showcase
  // Servers publish more and fetch less; one-time visitors only fetch.
  ContentCategorySpec core_server;
  core_server.category = Category::kCoreServer;
  core_server.publishes_per_peer = 8.0;
  core_server.fetches_per_hour = 0.25;
  ContentCategorySpec one_time;
  one_time.category = Category::kOneTime;
  one_time.publishes_per_peer = 0.0;
  one_time.fetches_per_hour = 2.0;
  content.categories = {core_server, one_time};
  spec.content = std::move(content);
  return spec;
}

/// Flash crowd: a small hot keyspace fetched an order of magnitude harder
/// than it is provided — replacement caches and record TTLs under load.
ScenarioSpec builtin_flash_fetch() {
  ScenarioSpec spec = make_builtin(
      "flash-fetch",
      "Flash fetch crowd: a hot 64-key space, short 2 h records republished "
      "hourly, and ~12 fetches/h per peer hammering the popular keys — "
      "stress for record sweeps, replacement caches and Bitswap ledgers",
      period_conditions("FLASH-FETCH"));
  ContentSpec content;
  content.keys = 64;
  content.publishes_per_peer = 1.0;
  content.fetches_per_hour = 12.0;
  content.provider_ttl = 2 * kHour;
  content.republish_interval = 1 * kHour;
  content.publish_spread = 15 * kMinute;
  content.bucket_refresh_interval = 5 * kMinute;
  content.replacement_cache_size = 8;
  content.sample_interval = 30 * kMinute;
  content.fetch_success = 0.9;
  spec.content = std::move(content);
  return spec;
}

/// Flash crowd over time: a calm content baseline, then six hours of an
/// 8x fetch spike converging on one hot key, then a cooldown — the
/// `"phases"` showcase (DESIGN.md §14).
ScenarioSpec builtin_flash_crowd() {
  ScenarioSpec spec = make_builtin(
      "flash-crowd",
      "Phased flash crowd: 6 h of the content baseline, then 6 h with "
      "fetch traffic spiked 8x and 90% of fetches converging on one hot "
      "key, then a 12 h cooldown — record caches and provider TTLs under "
      "a moving load",
      period_conditions("FLASH-CROWD"));
  ContentSpec content;
  content.keys = 256;
  content.publishes_per_peer = 2.0;
  content.fetches_per_hour = 2.0;
  content.sample_interval = 30 * kMinute;
  spec.content = std::move(content);
  PhaseProgramSpec phases;
  PhaseSpec calm;
  calm.name = "calm";
  calm.mode = PhaseMode::kHold;
  calm.hold = 6 * kHour;
  PhaseSpec flash;
  flash.name = "flash";
  flash.mode = PhaseMode::kFlashCrowd;
  flash.hold = 6 * kHour;
  flash.hot_key = 3;
  flash.spike = 8.0;
  flash.hot_fraction = 0.9;
  PhaseSpec cooldown;
  cooldown.name = "cooldown";
  cooldown.mode = PhaseMode::kHold;
  cooldown.hold = 12 * kHour;
  phases.program = {calm, flash, cooldown};
  spec.phases = std::move(phases);
  return spec;
}

/// Load ramp: the population and its fetch appetite climb linearly to a
/// plateau and ease back down — phase-boundary continuity on display.
ScenarioSpec builtin_load_ramp() {
  ScenarioSpec spec = make_builtin(
      "load-ramp",
      "Phased load ramp: 2 h at 60% population, a 10 h linear climb to "
      "full population with fetch traffic tripling, an 8 h plateau, and "
      "a 4 h ramp back down — churned admission and content rates moving "
      "together",
      period_conditions("LOAD-RAMP"));
  spec.churn = ChurnSpec{};     // the session-churn defaults
  spec.content = ContentSpec{};  // the go-ipfs content defaults
  PhaseProgramSpec phases;
  PhaseSpec quiet;
  quiet.name = "quiet";
  quiet.mode = PhaseMode::kHold;
  quiet.hold = 2 * kHour;
  quiet.population = 0.6;
  PhaseSpec climb;
  climb.name = "climb";
  climb.mode = PhaseMode::kRamp;
  climb.hold = 10 * kHour;
  climb.fetch_rate = 3.0;
  PhaseSpec plateau;
  plateau.name = "plateau";
  plateau.mode = PhaseMode::kHold;
  plateau.hold = 8 * kHour;
  plateau.fetch_rate = 3.0;
  PhaseSpec ease;
  ease.name = "ease";
  ease.mode = PhaseMode::kRamp;
  ease.hold = 4 * kHour;
  ease.population = 0.6;
  phases.program = {quiet, climb, plateau, ease};
  spec.phases = std::move(phases);
  return spec;
}

/// Burst storm: a square wave of fetch load with the crawler cadence
/// doubled during the storm — burst edges land on 2 h boundaries.
ScenarioSpec builtin_burst_storm() {
  ScenarioSpec spec = make_builtin(
      "burst-storm",
      "Phased burst storm: 4 h calm, then a 12 h square wave toggling "
      "fetch traffic between 1x and 5x every 2 h with the crawler running "
      "twice as often, then an 8 h recovery — load edges aligned to shard "
      "slab boundaries",
      period_conditions("BURST-STORM"));
  spec.churn = ChurnSpec{};     // the session-churn defaults
  spec.content = ContentSpec{};  // the go-ipfs content defaults
  PhaseProgramSpec phases;
  PhaseSpec calm;
  calm.name = "calm";
  calm.mode = PhaseMode::kHold;
  calm.hold = 4 * kHour;
  PhaseSpec storm;
  storm.name = "storm";
  storm.mode = PhaseMode::kBurst;
  storm.hold = 12 * kHour;
  storm.switch_interval = 2 * kHour;
  storm.fetch_rate = 5.0;
  storm.crawl_rate = 2.0;
  PhaseSpec recovery;
  recovery.name = "recovery";
  recovery.mode = PhaseMode::kHold;
  recovery.hold = 8 * kHour;
  phases.program = {calm, storm, recovery};
  spec.phases = std::move(phases);
  return spec;
}

}  // namespace

// ---- (de)serialisation ------------------------------------------------------

std::expected<ScenarioSpec, std::string> ScenarioSpec::from_json(
    std::string_view text) {
  auto document = JsonValue::parse(text);
  if (!document) return std::unexpected(std::move(document).error());
  const JsonValue& root = *document;
  if (auto error = expect_object(root, "document")) {
    return std::unexpected(std::move(*error));
  }
  if (auto error = check_keys(root, "document",
                              {"name", "description", "period", "population",
                               "network", "churn", "content", "phases",
                               "campaign", "output"})) {
    return std::unexpected(std::move(*error));
  }

  ScenarioSpec spec;
  if (auto error = get_string(root, "name", "", spec.name)) {
    return std::unexpected(std::move(*error));
  }
  if (auto error = get_string(root, "description", "", spec.description)) {
    return std::unexpected(std::move(*error));
  }
  if (const JsonValue* period = root.find("period")) {
    if (auto error = parse_period(*period, "period", spec.period)) {
      return std::unexpected(std::move(*error));
    }
  }
  if (const JsonValue* population = root.find("population")) {
    if (auto error = parse_population(*population, "population", spec.population)) {
      return std::unexpected(std::move(*error));
    }
  }
  if (const JsonValue* network = root.find("network")) {
    spec.network.emplace();
    if (auto error = parse_network(*network, "network", *spec.network)) {
      return std::unexpected(std::move(*error));
    }
  }
  if (const JsonValue* churn = root.find("churn")) {
    spec.churn.emplace();
    if (auto error = parse_churn(*churn, "churn", *spec.churn)) {
      return std::unexpected(std::move(*error));
    }
  }
  if (const JsonValue* content = root.find("content")) {
    spec.content.emplace();
    if (auto error = parse_content(*content, "content", *spec.content)) {
      return std::unexpected(std::move(*error));
    }
  }
  if (const JsonValue* phases = root.find("phases")) {
    spec.phases.emplace();
    if (auto error = parse_phases(*phases, "phases", *spec.phases)) {
      return std::unexpected(std::move(*error));
    }
  }
  if (const JsonValue* campaign = root.find("campaign")) {
    if (auto error = parse_campaign(*campaign, "campaign", spec.campaign)) {
      return std::unexpected(std::move(*error));
    }
  }
  if (const JsonValue* output = root.find("output")) {
    if (auto error = parse_output(*output, "output", spec.output)) {
      return std::unexpected(std::move(*error));
    }
  }
  if (auto error = validate(spec)) return std::unexpected(std::move(*error));
  return spec;
}

std::expected<ScenarioSpec, std::string> ScenarioSpec::from_file(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::unexpected(path + ": cannot open file");
  std::ostringstream contents;
  contents << in.rdbuf();
  auto spec = from_json(contents.str());
  if (!spec) return std::unexpected(path + ": " + std::move(spec).error());
  return spec;
}

void ScenarioSpec::to_json(JsonWriter& writer) const {
  writer.begin_object();
  writer.field("name", name);
  writer.field("description", description);

  writer.key("period");
  writer.begin_object();
  writer.field("name", period.name);
  writer.field("dates", period.dates);
  writer.field("duration_ms", static_cast<std::int64_t>(period.duration));
  writer.key("go_ipfs");
  writer.begin_object();
  writer.field("present", period.go_ipfs_present);
  writer.field("mode",
               period.go_ipfs_mode == dht::Mode::kServer ? "server" : "client");
  writer.field("low_water", period.go_low_water);
  writer.field("high_water", period.go_high_water);
  writer.end_object();
  writer.key("hydra");
  writer.begin_object();
  writer.field("heads", period.hydra_heads);
  writer.field("low_water", period.hydra_low_water);
  writer.field("high_water", period.hydra_high_water);
  writer.end_object();
  writer.end_object();

  writer.key("population");
  writer.begin_object();
  writer.field("scale", population.scale);
  writer.key("counts");
  writer.begin_object();
  const PopulationCounts& counts = population.counts;
  writer.field("hydra_heads", static_cast<std::uint64_t>(counts.hydra_heads));
  writer.field("core_servers", static_cast<std::uint64_t>(counts.core_servers));
  writer.field("core_clients", static_cast<std::uint64_t>(counts.core_clients));
  writer.field("normal_users", static_cast<std::uint64_t>(counts.normal_users));
  writer.field("light_servers", static_cast<std::uint64_t>(counts.light_servers));
  writer.field("disguised_storm",
               static_cast<std::uint64_t>(counts.disguised_storm));
  writer.field("light_clients", static_cast<std::uint64_t>(counts.light_clients));
  writer.field("crawlers", static_cast<std::uint64_t>(counts.crawlers));
  writer.field("one_time_per_day",
               static_cast<std::uint64_t>(counts.one_time_per_day));
  writer.field("ephemeral_per_day",
               static_cast<std::uint64_t>(counts.ephemeral_per_day));
  writer.field("rotating_pids_per_day",
               static_cast<std::uint64_t>(counts.rotating_pids_per_day));
  writer.field("ethereum_nodes", static_cast<std::uint64_t>(counts.ethereum_nodes));
  writer.field("nat_groups", static_cast<std::uint64_t>(counts.nat_groups));
  writer.field("nat_group_min", static_cast<std::uint64_t>(counts.nat_group_min));
  writer.field("nat_group_max", static_cast<std::uint64_t>(counts.nat_group_max));
  writer.end_object();
  writer.key("categories");
  writer.begin_object();
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    const auto& overridden = population.overrides[i];
    if (!overridden) continue;
    const CategoryParams& params = *overridden;
    writer.key(to_string(static_cast<Category>(i)));
    writer.begin_object();
    writer.field("session", to_string(params.session));
    writer.field("mean_session_ms", static_cast<std::int64_t>(params.mean_session));
    writer.field("mean_gap_ms", static_cast<std::int64_t>(params.mean_gap));
    writer.field("dht_server", params.dht_server);
    writer.field("maintain_probability", params.maintain_probability);
    writer.field("retention_mean_ms",
                 static_cast<std::int64_t>(params.retention_mean));
    writer.field("queries_per_hour", params.queries_per_hour);
    writer.field("query_duration_median_ms",
                 static_cast<std::int64_t>(params.query_duration_median));
    writer.field("reconnect_after_trim", params.reconnect_after_trim);
    writer.field("reconnect_backoff_mean_ms",
                 static_cast<std::int64_t>(params.reconnect_backoff_mean));
    writer.field("crawl_visibility", params.crawl_visibility);
    writer.end_object();
  }
  writer.end_object();
  writer.end_object();

  // The "network" section is written only when engaged: pre-conditions
  // scenario files must keep exporting byte-identically.
  if (network) {
    const net::ConditionSpec& spec = *network;
    writer.key("network");
    writer.begin_object();
    writer.key("latency");
    writer.begin_object();
    writer.field("flat_min_ms", static_cast<std::int64_t>(spec.latency.min_one_way));
    writer.field("flat_max_ms", static_cast<std::int64_t>(spec.latency.max_one_way));
    writer.field("jitter_fraction", spec.latency.jitter_fraction);
    writer.end_object();
    writer.field("symmetric", spec.symmetric);
    writer.key("zones");
    writer.begin_array();
    for (const net::ZoneSpec& zone : spec.zones) {
      writer.begin_object();
      writer.field("name", zone.name);
      writer.field("weight", zone.weight);
      writer.field("intra_min_ms", static_cast<std::int64_t>(zone.intra_min));
      writer.field("intra_max_ms", static_cast<std::int64_t>(zone.intra_max));
      writer.end_object();
    }
    writer.end_array();
    writer.key("default_link");
    writer.begin_object();
    writer.field("min_ms", static_cast<std::int64_t>(spec.default_link.min_one_way));
    writer.field("max_ms", static_cast<std::int64_t>(spec.default_link.max_one_way));
    writer.end_object();
    writer.key("links");
    writer.begin_array();
    for (const net::ZoneLinkSpec& link : spec.links) {
      writer.begin_object();
      writer.field("from", link.from);
      writer.field("to", link.to);
      writer.field("min_ms", static_cast<std::int64_t>(link.min_one_way));
      writer.field("max_ms", static_cast<std::int64_t>(link.max_one_way));
      writer.end_object();
    }
    writer.end_array();
    writer.key("loss");
    writer.begin_object();
    writer.field("dial_failure", spec.loss.dial_failure);
    writer.field("message_loss", spec.loss.message_loss);
    writer.end_object();
    writer.key("nat");
    writer.begin_object();
    writer.key("classes");
    writer.begin_array();
    for (const net::NatClassSpec& nat_class : spec.nat.classes) {
      writer.begin_object();
      writer.field("name", nat_class.name);
      writer.field("weight", nat_class.weight);
      writer.field("accepts_inbound", nat_class.accepts_inbound);
      writer.end_object();
    }
    writer.end_array();
    writer.key("categories");
    writer.begin_object();
    for (const auto& [category, class_name] : spec.nat.categories) {
      writer.field(category, class_name);
    }
    writer.end_object();
    writer.end_object();
    writer.key("disturbances");
    writer.begin_array();
    for (const net::DisturbanceSpec& disturbance : spec.disturbances) {
      writer.begin_object();
      writer.field("kind", net::to_string(disturbance.kind));
      switch (disturbance.kind) {
        case net::DisturbanceSpec::Kind::kOutage:
          writer.field("zone", disturbance.zone);
          break;
        case net::DisturbanceSpec::Kind::kPartition:
          writer.key("zones");
          writer.begin_array();
          for (const std::string& zone : disturbance.zones) writer.value(zone);
          writer.end_array();
          break;
        case net::DisturbanceSpec::Kind::kDegrade:
          if (!disturbance.zone.empty()) writer.field("zone", disturbance.zone);
          break;
      }
      writer.field("from_ms", static_cast<std::int64_t>(disturbance.from));
      writer.field("until_ms", static_cast<std::int64_t>(disturbance.until));
      writer.field("period_ms", static_cast<std::int64_t>(disturbance.period));
      if (disturbance.kind == net::DisturbanceSpec::Kind::kDegrade) {
        writer.field("latency_factor", disturbance.latency_factor);
        writer.field("extra_loss", disturbance.extra_loss);
      }
      writer.end_object();
    }
    writer.end_array();
    writer.end_object();
  }

  // The "churn" section is likewise written only when engaged: pre-churn
  // scenario files must keep exporting byte-identically.
  if (churn) {
    const auto write_distribution = [&writer](const SessionDistribution& d) {
      writer.begin_object();
      writer.field("kind", to_string(d.kind));
      switch (d.kind) {
        case SessionDistribution::Kind::kExponential:
          writer.field("mean_ms", d.mean_ms);
          break;
        case SessionDistribution::Kind::kWeibull:
          writer.field("shape", d.shape);
          writer.field("scale_ms", d.scale_ms);
          break;
        case SessionDistribution::Kind::kLognormal:
          writer.field("median_ms", d.median_ms);
          writer.field("sigma", d.sigma);
          break;
      }
      writer.end_object();
    };
    writer.key("churn");
    writer.begin_object();
    writer.key("session");
    write_distribution(churn->session);
    writer.key("gap");
    write_distribution(churn->gap);
    writer.field("initial_online", churn->initial_online);
    writer.field("sample_interval_ms",
                 static_cast<std::int64_t>(churn->sample_interval));
    if (churn->diurnal) {
      writer.key("diurnal");
      writer.begin_object();
      writer.field("amplitude", churn->diurnal->amplitude);
      writer.field("period_ms", static_cast<std::int64_t>(churn->diurnal->period));
      writer.field("phase_ms", static_cast<std::int64_t>(churn->diurnal->phase));
      writer.end_object();
    }
    writer.key("categories");
    writer.begin_object();
    for (const ChurnCategorySpec& entry : churn->categories) {
      writer.key(to_string(entry.category));
      writer.begin_object();
      writer.key("session");
      write_distribution(entry.session);
      writer.key("gap");
      write_distribution(entry.gap);
      writer.end_object();
    }
    writer.end_object();
    writer.end_object();
  }

  // The "content" section follows the same only-when-engaged rule:
  // pre-content scenario files must keep exporting byte-identically.
  if (content) {
    writer.key("content");
    writer.begin_object();
    writer.field("keys", static_cast<std::uint64_t>(content->keys));
    writer.field("publishes_per_peer", content->publishes_per_peer);
    writer.field("fetches_per_hour", content->fetches_per_hour);
    writer.field("provider_ttl_ms",
                 static_cast<std::int64_t>(content->provider_ttl));
    writer.field("republish_interval_ms",
                 static_cast<std::int64_t>(content->republish_interval));
    writer.field("publish_spread_ms",
                 static_cast<std::int64_t>(content->publish_spread));
    writer.field("bucket_refresh_interval_ms",
                 static_cast<std::int64_t>(content->bucket_refresh_interval));
    writer.field("replacement_cache_size",
                 static_cast<std::uint64_t>(content->replacement_cache_size));
    writer.field("sample_interval_ms",
                 static_cast<std::int64_t>(content->sample_interval));
    writer.field("fetch_success", content->fetch_success);
    writer.key("categories");
    writer.begin_object();
    for (const ContentCategorySpec& entry : content->categories) {
      writer.key(to_string(entry.category));
      writer.begin_object();
      writer.field("publishes_per_peer", entry.publishes_per_peer);
      writer.field("fetches_per_hour", entry.fetches_per_hour);
      writer.end_object();
    }
    writer.end_object();
    writer.end_object();
  }

  // The "phases" section follows the same only-when-engaged rule:
  // pre-phases scenario files must keep exporting byte-identically.
  if (phases) {
    writer.key("phases");
    writer.begin_object();
    if (phases->diurnal_clock_absolute) {
      writer.field("diurnal_clock", "absolute");
    }
    writer.key("program");
    writer.begin_array();
    for (const PhaseSpec& phase : phases->program) {
      writer.begin_object();
      if (!phase.name.empty()) writer.field("name", phase.name);
      writer.field("mode", to_string(phase.mode));
      writer.field("hold_ms", static_cast<std::int64_t>(phase.hold));
      writer.field("churn_rate", phase.churn_rate);
      writer.field("fetch_rate", phase.fetch_rate);
      writer.field("publish_rate", phase.publish_rate);
      writer.field("crawl_rate", phase.crawl_rate);
      writer.field("population", phase.population);
      switch (phase.mode) {
        case PhaseMode::kBurst:
          writer.field("switch_ms",
                       static_cast<std::int64_t>(phase.switch_interval));
          break;
        case PhaseMode::kFlashCrowd:
          writer.field("hot_key", static_cast<std::uint64_t>(phase.hot_key));
          writer.field("spike", phase.spike);
          writer.field("hot_fraction", phase.hot_fraction);
          break;
        case PhaseMode::kHold:
        case PhaseMode::kRamp:
          break;
      }
      writer.end_object();
    }
    writer.end_array();
    writer.end_object();
  }

  writer.key("campaign");
  writer.begin_object();
  writer.field("seed", campaign.seed);
  writer.field("trials", static_cast<std::uint64_t>(campaign.trials));
  writer.field("workers", static_cast<std::uint64_t>(campaign.workers));
  writer.field("vantage_visibility", campaign.vantage_visibility);
  writer.key("crawler");
  writer.begin_object();
  writer.field("enabled", campaign.enable_crawler);
  writer.field("interval_ms", static_cast<std::int64_t>(campaign.crawl_interval));
  writer.end_object();
  writer.field("metadata_dynamics", campaign.enable_metadata_dynamics);
  writer.field("client_dials_per_hour", campaign.client_dials_per_hour);
  writer.end_object();

  writer.key("output");
  writer.begin_object();
  writer.field("pretty", output.pretty);
  writer.field("include_connections", output.include_connections);
  writer.key("role_filter");
  if (output.role_filter) {
    writer.value(measure::to_string(*output.role_filter));
  } else {
    writer.null();
  }
  writer.end_object();

  writer.end_object();
}

std::string ScenarioSpec::to_json_string() const {
  std::ostringstream out;
  JsonWriter writer(out, /*pretty=*/true);
  to_json(writer);
  out << "\n";
  return out.str();
}

// ---- validation -------------------------------------------------------------

std::optional<std::string> ScenarioSpec::validate(const ScenarioSpec& spec) {
  if (spec.name.empty()) return "name must be non-empty";
  if (spec.campaign.trials == 0) return "campaign.trials must be >= 1";
  const PopulationCounts& counts = spec.population.counts;
  if (counts.nat_group_min < 1) {
    return "population.counts.nat_group_min must be >= 1";
  }
  if (counts.nat_group_max < counts.nat_group_min) {
    return "population.counts: nat_group_max must be >= nat_group_min";
  }
  if (counts.disguised_storm > counts.light_servers) {
    return "population.counts: disguised_storm cannot exceed light_servers";
  }
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    const auto& overridden = spec.population.overrides[i];
    if (!overridden) continue;
    if (overridden->category != static_cast<Category>(i)) {
      return "population.categories." +
             std::string(to_string(static_cast<Category>(i))) +
             ": override stored under the wrong category slot";
    }
    if (auto error = validate_category(*overridden, static_cast<Category>(i))) {
      return error;
    }
  }
  if (spec.network) {
    // `ConditionSpec::validate` (run by the engine check below) treats NAT
    // category keys as opaque; only the scenario layer knows the alphabet.
    for (const auto& [category, class_name] : spec.network->nat.categories) {
      if (!category_from_string(category)) {
        return "network.nat.categories: unknown category name '" + category + "'";
      }
    }
  }
  // Everything the engine itself would refuse (duration, watermarks,
  // visibility, crawl interval, dial rate, scale, network conditions,
  // phase programs) — checked before the horizon rules below so a
  // structurally broken section reports its own error first.
  if (auto error = CampaignEngine::validate(spec.to_campaign_config())) {
    return error;
  }
  // Schedule-fits-horizon rules: a cadence or window that cannot fire
  // within `period.duration` is a broken schedule, not a quiet no-op.
  // This is what `ipfs_sim run --duration` re-validates after shortening
  // the horizon, so truncated schedules fail loudly with the field that
  // no longer fits.
  if (spec.churn && spec.churn->sample_interval > spec.period.duration) {
    return "churn.sample_interval_ms: exceeds period.duration_ms — no "
           "population sample would ever fire";
  }
  if (spec.content) {
    if (spec.content->sample_interval > spec.period.duration) {
      return "content.sample_interval_ms: exceeds period.duration_ms — no "
             "content sample would ever fire";
    }
    if (spec.content->republish_interval > spec.period.duration) {
      return "content.republish_interval_ms: exceeds period.duration_ms — no "
             "republish cycle would ever fire";
    }
  }
  if (spec.network) {
    for (std::size_t i = 0; i < spec.network->disturbances.size(); ++i) {
      if (spec.network->disturbances[i].from >= spec.period.duration) {
        return "network.disturbances[" + std::to_string(i) +
               "].from_ms: begins at or after period.duration_ms — the "
               "window would never open";
      }
    }
  }
  return std::nullopt;
}

// ---- execution --------------------------------------------------------------

CampaignConfig ScenarioSpec::to_campaign_config() const {
  CampaignConfig config;
  config.period = period;
  config.population = population;
  config.seed = campaign.seed;
  config.vantage_visibility = campaign.vantage_visibility;
  config.enable_crawler = campaign.enable_crawler;
  config.crawl_interval = campaign.crawl_interval;
  config.enable_metadata_dynamics = campaign.enable_metadata_dynamics;
  config.client_dials_per_hour = campaign.client_dials_per_hour;
  config.conditions = network;
  config.churn = churn;
  config.content = content;
  config.phases = phases;
  return config;
}

std::vector<std::uint64_t> ScenarioSpec::trial_seeds() const {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(campaign.trials);
  for (std::uint32_t i = 0; i < campaign.trials; ++i) {
    seeds.push_back(campaign.seed + i);
  }
  return seeds;
}

// ---- builtins ---------------------------------------------------------------

const std::vector<ScenarioSpec>& ScenarioSpec::builtins() {
  static const std::vector<ScenarioSpec> kBuiltins = [] {
    std::vector<ScenarioSpec> all;
    all.push_back(make_builtin(
        "p0",
        "Table I period P0: 3-day run, go-ipfs server vantage with 600/900 "
        "watermarks plus 3 hydra heads at 1200/1800 (2021-12-03)",
        period_p0()));
    all.push_back(make_builtin(
        "p1",
        "Table I period P1: 1-day run, go-ipfs server at 2k/4k plus 2 hydra "
        "heads (2021-12-09)",
        period_p1()));
    all.push_back(make_builtin(
        "p2",
        "Table I period P2: 1-day run, go-ipfs server at 18k/20k plus 2 "
        "hydra heads (2021-12-13)",
        period_p2()));
    all.push_back(make_builtin(
        "p3",
        "Table I period P3: 1-day run, go-ipfs *client* vantage at 18k/20k, "
        "no hydra (2022-02-16)",
        period_p3()));
    all.push_back(make_builtin(
        "p4",
        "Table I period P4: 3-day run, go-ipfs server at 18k/20k, no hydra "
        "(2021-12-10) — the paper's primary churn dataset",
        period_p4()));
    all.push_back(make_builtin(
        "long14d",
        "The ~14-day PID-growth measurement behind Fig. 6 (2022-03-29 - "
        "2022-04-12), go-ipfs server at 18k/20k",
        period_long14d()));
    all.push_back(builtin_nat_heavy());
    all.push_back(builtin_crawler_storm());
    all.push_back(builtin_weekend_diurnal());
    all.push_back(builtin_geo_zones());
    all.push_back(builtin_flaky_links());
    all.push_back(builtin_zone_partition());
    all.push_back(builtin_churn_baseline());
    all.push_back(builtin_diurnal_churn());
    all.push_back(builtin_content_baseline());
    all.push_back(builtin_flash_fetch());
    all.push_back(builtin_flash_crowd());
    all.push_back(builtin_load_ramp());
    all.push_back(builtin_burst_storm());
    return all;
  }();
  return kBuiltins;
}

std::optional<ScenarioSpec> ScenarioSpec::builtin(std::string_view name) {
  for (const ScenarioSpec& spec : builtins()) {
    if (spec.name == name) return spec;
  }
  return std::nullopt;
}

}  // namespace ipfs::scenario
